package clx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/unifi"
)

// SavedProgram is a verified transformation serialized for later use:
// synthesize and verify once during wrangling, then ship the program to a
// pipeline and apply it without re-synthesis. The JSON form is
// human-auditable — it is the same Replace-operation content the user
// verified.
type SavedProgram struct {
	target pattern.Pattern
	prog   unifi.GuardedProgram
	// compiled and targetM bind the program's matchers once at load, so
	// the per-row hot path of Apply never rebuilds compile-cache keys.
	compiled *unifi.CompiledGuardedProgram
	targetM  *rematch.Compiled
	// Workers bounds the goroutine fan-out of Transform: 0 uses one worker
	// per CPU, 1 runs serially. Output is identical for every setting.
	Workers int
}

type savedJSON struct {
	Target string          `json:"target"`
	Cases  json.RawMessage `json:"cases"`
}

// Export serializes the transformation (with any repairs and guarded cases
// applied) for LoadProgram.
func (t *Transformation) Export() ([]byte, error) {
	var progBuf bytes.Buffer
	progEnc := json.NewEncoder(&progBuf)
	progEnc.SetEscapeHTML(false)
	if err := progEnc.Encode(t.guardedProgram()); err != nil {
		return nil, err
	}
	progRaw := progBuf.Bytes()
	var pj struct {
		Cases json.RawMessage `json:"cases"`
	}
	if err := json.Unmarshal(progRaw, &pj); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(savedJSON{
		Target: t.res.Target.String(),
		Cases:  pj.Cases,
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadProgram deserializes a program produced by Export.
func LoadProgram(data []byte) (*SavedProgram, error) {
	var sj savedJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, err
	}
	target, err := pattern.Parse(sj.Target)
	if err != nil {
		return nil, fmt.Errorf("clx: bad target in saved program: %w", err)
	}
	var prog unifi.GuardedProgram
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"cases":%s}`, sj.Cases)), &prog); err != nil {
		return nil, err
	}
	return &SavedProgram{
		target:   target,
		prog:     prog,
		compiled: prog.Compile(),
		targetM:  rematch.CompileCached(target.Tokens()),
	}, nil
}

// Target returns the program's target pattern.
func (sp *SavedProgram) Target() Pattern { return sp.target }

// Sources returns the source patterns the program's cases cover, in case
// order with duplicates removed (guarded cases share a source). Together
// with Target they are the program's recorded format profile: a row
// matching none of them is invisible to the program — the drift signal a
// registry reports at serving time.
func (sp *SavedProgram) Sources() []Pattern {
	seen := make(map[string]bool, len(sp.prog.Cases))
	out := make([]Pattern, 0, len(sp.prog.Cases))
	for _, c := range sp.prog.Cases {
		k := c.Source.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c.Source)
	}
	return out
}

// Apply transforms one value: already-clean values pass through, values of
// a known format are transformed, anything else is returned unchanged with
// ok=false.
func (sp *SavedProgram) Apply(s string) (string, bool) {
	if sp.targetM.Matches(s) {
		return s, true
	}
	out, err := sp.compiled.Apply(s)
	if err != nil {
		return s, false
	}
	return out, true
}

// AppendApply is Apply into a caller-owned buffer: the transformed value
// (or, for uncovered rows, the input itself) is appended to dst with no
// per-row string allocation. The appended bytes and the ok flag are
// byte-for-byte the Apply result — the invariant the streaming bulk-apply
// engine's differential suite pins against Transform.
func (sp *SavedProgram) AppendApply(dst []byte, s string) ([]byte, bool) {
	if sp.targetM.Matches(s) {
		return append(dst, s...), true
	}
	mark := len(dst)
	out, err := sp.compiled.AppendApply(dst, s)
	if err != nil {
		return append(out[:mark], s...), false
	}
	return out, true
}

// Transform applies the program to a column, returning the output and the
// indices of rows left unchanged for review. Rows are applied across
// sp.Workers goroutines; output order and flagged order are identical to a
// serial scan for every worker count.
func (sp *SavedProgram) Transform(rows []string) (out []string, flagged []int) {
	defer func(t0 time.Time) { obsApplyDur.Observe(time.Since(t0)) }(time.Now())
	out = make([]string, len(rows))
	flagged = parallel.Gather(sp.Workers, len(rows), func(lo, hi int, emit func(int)) {
		for i := lo; i < hi; i++ {
			v, ok := sp.Apply(rows[i])
			out[i] = v
			if !ok {
				emit(i)
			}
		}
	})
	return out, flagged
}
