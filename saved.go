package clx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"clx/internal/automaton"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/unifi"
)

// SavedProgram is a verified transformation serialized for later use:
// synthesize and verify once during wrangling, then ship the program to a
// pipeline and apply it without re-synthesis. The JSON form is
// human-auditable — it is the same Replace-operation content the user
// verified.
type SavedProgram struct {
	target pattern.Pattern
	prog   unifi.GuardedProgram
	// compiled and targetM bind the program's matchers once at load, so
	// the per-row hot path of Apply never rebuilds compile-cache keys.
	compiled *unifi.CompiledGuardedProgram
	targetM  *rematch.Compiled
	// auto is the program fused into a single byte automaton (target
	// identity case + every guarded case, one scan per row), built once at
	// load. nil when the compiler can't lower the program; the
	// backtracking engine above then serves it — counted in
	// automaton.GlobalStats.
	auto *automaton.Machine
	// Workers bounds the goroutine fan-out of Transform: 0 uses one worker
	// per CPU, 1 runs serially. Output is identical for every setting.
	Workers int
}

type savedJSON struct {
	Target string          `json:"target"`
	Cases  json.RawMessage `json:"cases"`
}

// Export serializes the transformation (with any repairs and guarded cases
// applied) for LoadProgram.
func (t *Transformation) Export() ([]byte, error) {
	var progBuf bytes.Buffer
	progEnc := json.NewEncoder(&progBuf)
	progEnc.SetEscapeHTML(false)
	if err := progEnc.Encode(t.guardedProgram()); err != nil {
		return nil, err
	}
	progRaw := progBuf.Bytes()
	var pj struct {
		Cases json.RawMessage `json:"cases"`
	}
	if err := json.Unmarshal(progRaw, &pj); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	enc.SetIndent("", "  ")
	if err := enc.Encode(savedJSON{
		Target: t.res.Target.String(),
		Cases:  pj.Cases,
	}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadProgram deserializes a program produced by Export.
func LoadProgram(data []byte) (*SavedProgram, error) {
	var sj savedJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, err
	}
	target, err := pattern.Parse(sj.Target)
	if err != nil {
		return nil, fmt.Errorf("clx: bad target in saved program: %w", err)
	}
	var prog unifi.GuardedProgram
	if err := json.Unmarshal([]byte(fmt.Sprintf(`{"cases":%s}`, sj.Cases)), &prog); err != nil {
		return nil, err
	}
	sp := &SavedProgram{
		target:   target,
		prog:     prog,
		compiled: prog.Compile(),
		targetM:  rematch.CompileCached(target.Tokens()),
	}
	// Best effort: a program the automaton compiler can't lower (counted
	// in the fallback metric) is served by the backtracking engine with
	// identical results.
	if m, err := automaton.CompileSaved(target, prog); err == nil {
		sp.auto = m
	}
	return sp, nil
}

// HasAutomaton reports whether the program compiled to the fused byte
// automaton; false means the backtracking reference engine serves it (the
// clx_automaton_fallback_total counter records why loads got here).
func (sp *SavedProgram) HasAutomaton() bool { return sp.auto != nil }

// DisableAutomaton forces every apply path onto the backtracking
// reference engine — the differential layer's handle for comparing the
// two engines on the same loaded program.
func (sp *SavedProgram) DisableAutomaton() { sp.auto = nil }

// autoArenas pools automaton scratch across rows, chunks, and programs;
// Machine scratch is program-independent, so one pool serves all.
var autoArenas = sync.Pool{New: func() any { return new(automaton.Arena) }}

// Target returns the program's target pattern.
func (sp *SavedProgram) Target() Pattern { return sp.target }

// Sources returns the source patterns the program's cases cover, in case
// order with duplicates removed (guarded cases share a source). Together
// with Target they are the program's recorded format profile: a row
// matching none of them is invisible to the program — the drift signal a
// registry reports at serving time.
func (sp *SavedProgram) Sources() []Pattern {
	seen := make(map[string]bool, len(sp.prog.Cases))
	out := make([]Pattern, 0, len(sp.prog.Cases))
	for _, c := range sp.prog.Cases {
		k := c.Source.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c.Source)
	}
	return out
}

// Apply transforms one value: already-clean values pass through, values of
// a known format are transformed, anything else is returned unchanged with
// ok=false.
func (sp *SavedProgram) Apply(s string) (string, bool) {
	if sp.auto != nil {
		// One fused scan: the identity (target) case and every guarded
		// case dispatch together, so a clean row costs the same single
		// pass as a transformed one.
		out, err := sp.auto.Apply(s)
		if err != nil {
			return s, false
		}
		return out, true
	}
	if sp.targetM.Matches(s) {
		return s, true
	}
	out, err := sp.compiled.Apply(s)
	if err != nil {
		return s, false
	}
	return out, true
}

// AppendApply is Apply into a caller-owned buffer: the transformed value
// (or, for uncovered rows, the input itself) is appended to dst with no
// per-row string allocation. The appended bytes and the ok flag are
// byte-for-byte the Apply result — the invariant the streaming bulk-apply
// engine's differential suite pins against Transform.
func (sp *SavedProgram) AppendApply(dst []byte, s string) ([]byte, bool) {
	if sp.auto != nil {
		a := autoArenas.Get().(*automaton.Arena)
		out, ok := sp.autoAppendApply(a, dst, s)
		autoArenas.Put(a)
		return out, ok
	}
	if sp.targetM.Matches(s) {
		return append(dst, s...), true
	}
	mark := len(dst)
	out, err := sp.compiled.AppendApply(dst, s)
	if err != nil {
		return append(out[:mark], s...), false
	}
	return out, true
}

// autoAppendApply is AppendApply on the automaton with caller-held
// scratch: uncovered rows and plan errors truncate back to the mark and
// pass the input through, exactly like the reference path above.
func (sp *SavedProgram) autoAppendApply(a *automaton.Arena, dst []byte, s string) ([]byte, bool) {
	mark := len(dst)
	out, err := sp.auto.AppendApply(dst, s, a)
	if err != nil {
		return append(out[:mark], s...), false
	}
	return out, true
}

// ChunkApplier implements the streaming engine's arena fast path
// (stream.ArenaApplier): the returned apply is AppendApply bound to
// chunk-scoped automaton scratch, acquired once here instead of once per
// row, which is what makes the steady-state streaming path allocation
// free. Without an automaton it degrades to the plain AppendApply method.
func (sp *SavedProgram) ChunkApplier() (apply func(dst []byte, s string) ([]byte, bool), release func()) {
	if sp.auto == nil {
		return sp.AppendApply, func() {}
	}
	a := autoArenas.Get().(*automaton.Arena)
	return func(dst []byte, s string) ([]byte, bool) {
		return sp.autoAppendApply(a, dst, s)
	}, func() { autoArenas.Put(a) }
}

// Transform applies the program to a column, returning the output and the
// indices of rows left unchanged for review. Rows are applied across
// sp.Workers goroutines; output order and flagged order are identical to a
// serial scan for every worker count.
func (sp *SavedProgram) Transform(rows []string) (out []string, flagged []int) {
	defer func(t0 time.Time) { obsApplyDur.Observe(time.Since(t0)) }(time.Now())
	out = make([]string, len(rows))
	flagged = parallel.Gather(sp.Workers, len(rows), func(lo, hi int, emit func(int)) {
		for i := lo; i < hi; i++ {
			v, ok := sp.Apply(rows[i])
			out[i] = v
			if !ok {
				emit(i)
			}
		}
	})
	return out, flagged
}
