// Differential layer for the fused byte-automaton apply engine: over the
// whole 47-task benchmark suite, a loaded program applied through the
// automaton must be indistinguishable from the same program applied
// through the retained backtracking engine — same output bytes, same
// flagged-row sets — in the in-memory Transform path and in the streaming
// path for chunk sizes spanning one-row chunks through chunks larger than
// any task column, and worker counts spanning serial through
// oversubscribed. DisableAutomaton is the switch that turns one loaded
// program into the reference arm.
package clx_test

import (
	"bytes"
	"testing"

	clx "clx"
	"clx/internal/benchsuite"
	"clx/internal/simuser"
	"clx/internal/stream"
)

// exportTaskProgram synthesizes and exports a program for the task's first
// labelable selected target, mirroring the stream differential test.
func exportTaskProgram(t *testing.T, inputs, outputs []string) []byte {
	t.Helper()
	for _, target := range simuser.SelectTargets(inputs, outputs) {
		tr, err := clx.NewSession(inputs).Label(target)
		if err != nil {
			continue
		}
		raw, err := tr.Export()
		if err != nil {
			continue
		}
		return raw
	}
	return nil
}

func TestAutomatonDifferentialBenchSuite(t *testing.T) {
	tasks := benchsuite.Tasks()
	if len(tasks) < 47 {
		t.Fatalf("benchmark suite has %d tasks, want >= 47", len(tasks))
	}
	programs, automata := 0, 0
	// Skips are counted, not silent: the summary below names every task
	// that fell out of the differential, so coverage erosion shows up in
	// the log long before it trips a floor.
	var noTarget, notLowerable []string
	for _, task := range tasks {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			raw := exportTaskProgram(t, task.Inputs, task.Outputs)
			if raw == nil {
				noTarget = append(noTarget, task.Name)
				t.Skip("no selected target labels this task")
			}
			programs++
			auto, err := clx.LoadProgram(raw)
			if err != nil {
				t.Fatalf("exported program does not load: %v", err)
			}
			ref, err := clx.LoadProgram(raw)
			if err != nil {
				t.Fatalf("exported program does not load: %v", err)
			}
			ref.DisableAutomaton()
			if !auto.HasAutomaton() {
				// A fallback program runs the reference engine on both arms;
				// nothing to differentiate, but count it against the floor.
				notLowerable = append(notLowerable, task.Name)
				t.Skip("program not lowerable to an automaton")
			}
			automata++

			wantOut, wantFlagged := ref.Transform(task.Inputs)
			gotOut, gotFlagged := auto.Transform(task.Inputs)
			for i := range wantOut {
				if wantOut[i] != gotOut[i] {
					t.Fatalf("row %d (%q): reference %q, automaton %q",
						i, task.Inputs[i], wantOut[i], gotOut[i])
				}
			}
			if !equalIndices(wantFlagged, gotFlagged) {
				t.Fatalf("flagged rows: reference %v, automaton %v", wantFlagged, gotFlagged)
			}

			var want bytes.Buffer
			for _, v := range wantOut {
				want.WriteString(v)
				want.WriteByte('\n')
			}
			for _, chunk := range []int{1, 7, 1024} {
				for _, workers := range []int{1, 4, 8} {
					var got bytes.Buffer
					var flagged []int
					st, err := stream.Run(auto, stream.NewSliceReader(task.Inputs),
						stream.LineEncoder{}, &got, stream.Options{
							ChunkSize: chunk, Workers: workers,
							OnFlagged: func(row int) { flagged = append(flagged, row) }})
					if err != nil {
						t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
					}
					if got.String() != want.String() {
						t.Fatalf("chunk=%d workers=%d: automaton stream diverges from reference:\n%s",
							chunk, workers, firstDiff(want.String(), got.String()))
					}
					if !equalIndices(flagged, wantFlagged) {
						t.Fatalf("chunk=%d workers=%d: flagged %v, want %v",
							chunk, workers, flagged, wantFlagged)
					}
					if st.Window < 1 {
						t.Fatalf("chunk=%d workers=%d: stats window %d, want >= 1", chunk, workers, st.Window)
					}
				}
			}
		})
	}
	t.Logf("differential coverage: %d/%d tasks produced programs, %d/%d lowered to automata",
		programs, len(tasks), automata, programs)
	if len(noTarget) > 0 {
		t.Logf("no labelable target (%d): %v", len(noTarget), noTarget)
	}
	if len(notLowerable) > 0 {
		t.Logf("not lowerable to an automaton (%d): %v", len(notLowerable), notLowerable)
	}
	if programs < 40 {
		t.Fatalf("only %d/%d tasks produced a program (no target: %v); the differential layer lost coverage",
			programs, len(tasks), noTarget)
	}
	if automata < programs {
		t.Fatalf("only %d/%d programs compiled to automata (fell back: %v); suite programs should all lower",
			automata, programs, notLowerable)
	}
}
