package clx_test

// Session-level tests for the incremental profile API: AppendAndReprofile
// must be observably indistinguishable from NewSession over the
// concatenated column, across one and many appends, while transformations
// labeled before an append keep operating on their snapshot.

import (
	"reflect"
	"testing"

	clx "clx"
	"clx/internal/dataset"
)

// sameProfile asserts two sessions expose identical public profile state:
// data, clusters, and every hierarchy level.
func sameProfile(t *testing.T, got, want *clx.Session, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Data(), want.Data()) {
		t.Errorf("%s: Data diverges (%d vs %d rows)", label, len(got.Data()), len(want.Data()))
	}
	if !reflect.DeepEqual(got.Clusters(), want.Clusters()) {
		t.Errorf("%s: Clusters diverge", label)
	}
	if got.Levels() != want.Levels() {
		t.Fatalf("%s: Levels = %d, want %d", label, got.Levels(), want.Levels())
	}
	for l := 0; l < want.Levels(); l++ {
		if !reflect.DeepEqual(got.Level(l), want.Level(l)) {
			t.Errorf("%s: level %d diverges", label, l)
		}
	}
}

func TestAppendAndReprofileMatchesFresh(t *testing.T) {
	rows, _ := dataset.Phones(600, 6, 41)
	for _, cuts := range [][]int{{300}, {150, 300, 450}, {0, 600}} {
		sess := clx.NewSession(rows[:cuts[0]])
		prev := cuts[0]
		for _, cut := range cuts[1:] {
			sess.AppendAndReprofile(rows[prev:cut])
			prev = cut
		}
		st := sess.AppendAndReprofile(rows[prev:])
		if st.Rows != len(rows) || !st.Sharded {
			t.Fatalf("cuts %v: stats = %+v, want Rows=%d Sharded=true", cuts, st, len(rows))
		}
		sameProfile(t, sess, clx.NewSession(rows), "append schedule")
	}
}

func TestAppendAndReprofileEmptyAppend(t *testing.T) {
	sess := clx.NewSession(phones)
	st := sess.AppendAndReprofile(nil)
	if st.Rows != len(phones) {
		t.Fatalf("Rows = %d, want %d", st.Rows, len(phones))
	}
	sameProfile(t, sess, clx.NewSession(phones), "empty append")
}

// TestLabelAfterAppend: labeling after an append synthesizes over the
// grown column, and the transformation covers every row of it.
func TestLabelAfterAppend(t *testing.T) {
	sess := clx.NewSession(phones[:4])
	sess.AppendAndReprofile(phones[4:])
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	out, flagged := tr.Run()
	if len(out) != len(phones) {
		t.Fatalf("Run over %d rows, want %d", len(out), len(phones))
	}
	want := []string{
		"734-645-8397", "734-586-7252", "734-422-8073",
		"734-236-3466", "313-263-1192", "N/A",
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("out = %v, want %v", out, want)
	}
	if !reflect.DeepEqual(flagged, []int{5}) {
		t.Errorf("flagged = %v, want [5]", flagged)
	}
}

// TestTransformationSnapshotSurvivesAppend: a transformation labeled
// before an append keeps running over the column it was labeled against,
// even after the session grows past it.
func TestTransformationSnapshotSurvivesAppend(t *testing.T) {
	sess := clx.NewSession(phones[:5]) // all transformable rows
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := tr.Run()
	preview := tr.ExplainWithPreview(2)

	sess.AppendAndReprofile(phones[5:])

	after, _ := tr.Run()
	if !reflect.DeepEqual(after, before) {
		t.Errorf("append changed a labeled transformation's output: %v vs %v", after, before)
	}
	if len(after) != 5 {
		t.Errorf("snapshot run covers %d rows, want 5", len(after))
	}
	if got := tr.ExplainWithPreview(2); got != preview {
		t.Error("append changed a labeled transformation's preview")
	}
	if got := len(sess.Data()); got != len(phones) {
		t.Errorf("session Data has %d rows, want %d", got, len(phones))
	}
}

// TestProfileIndexStatsCounters: the process-wide profile counters move
// when sessions profile and append.
func TestProfileIndexStatsCounters(t *testing.T) {
	before := clx.ProfileIndexStats()
	sess := clx.NewSession(phones)
	sess.AppendAndReprofile(phones[:2])
	after := clx.ProfileIndexStats()

	if d := after.Profiles - before.Profiles; d != 2 {
		t.Errorf("Profiles advanced by %d, want 2", d)
	}
	if d := after.IncrementalProfiles - before.IncrementalProfiles; d != 1 {
		t.Errorf("IncrementalProfiles advanced by %d, want 1", d)
	}
	if d := after.AppendedRows - before.AppendedRows; d != 2 {
		t.Errorf("AppendedRows advanced by %d, want 2", d)
	}
	if d := after.RowsProfiled - before.RowsProfiled; d != int64(2*len(phones)+2) {
		t.Errorf("RowsProfiled advanced by %d, want %d", d, 2*len(phones)+2)
	}
}
