// Differential cluster-parity harness: a CLX cluster — N clxd nodes
// behind the routing proxy with WAL replication from the leader — must
// be indistinguishable from a single node. For every routing policy ×
// node count × benchmark task, registering a program through the proxy
// and applying it (buffered and streaming) must produce byte-identical
// answers to the single-node reference, no matter which node the policy
// routed each request to. The fault-injection cases then break the
// cluster on purpose: a follower killed mid-replication must converge
// from snapshot∘WAL on restart, and a routed node killed mid-stream
// must surface the pinned error-frame contract to the client, not a
// hang.
//
// The full policy × {1,2,4} × all-tasks matrix runs under
// CLX_CLUSTER_PARITY=full (the `make cluster-parity` target); the
// default run sweeps every policy over {1,2} nodes and a task subset so
// tier-1 stays fast.
package clx_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	clx "clx"
	"clx/internal/benchsuite"
	"clx/internal/fleet/fleettest"
	"clx/internal/fleet/routing"
	"clx/internal/simuser"
)

// clusterTask is one benchmark task prepared for HTTP registration: a
// stable explicit program id (so every cluster configuration stores the
// program under the same id) and the target pattern in its parseable
// compact notation.
type clusterTask struct {
	ID     string
	Name   string
	Target string
	Inputs []string
}

var (
	clusterTasksOnce sync.Once
	clusterTasksAll  []clusterTask
)

// clusterTasks derives the registerable subset of the benchmark suite
// once per test binary: tasks with a selected target that labels,
// exports, and whose notation survives the parse round trip the HTTP
// API performs.
func clusterTasks(t *testing.T) []clusterTask {
	t.Helper()
	clusterTasksOnce.Do(func() {
		for i, task := range benchsuite.Tasks() {
			for _, target := range simuser.SelectTargets(task.Inputs, task.Outputs) {
				tr, err := clx.NewSession(task.Inputs).Label(target)
				if err != nil {
					continue
				}
				if _, err := tr.Export(); err != nil {
					continue
				}
				if _, err := clx.ParseAnyPattern(target.String()); err != nil {
					continue
				}
				clusterTasksAll = append(clusterTasksAll, clusterTask{
					ID:     fmt.Sprintf("task%03d", i),
					Name:   task.Name,
					Target: target.String(),
					Inputs: task.Inputs,
				})
				break
			}
		}
	})
	if len(clusterTasksAll) < 40 {
		t.Fatalf("only %d benchmark tasks are registerable over HTTP; the parity matrix lost coverage", len(clusterTasksAll))
	}
	return clusterTasksAll
}

// clusterPost sends one JSON POST and returns status and body.
func clusterPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, out
}

// registerTask registers ct through the cluster front, returning the
// register status (the parity invariant: identical across every
// configuration, success or failure).
func registerTask(t *testing.T, base string, ct clusterTask) int {
	t.Helper()
	status, _ := clusterPost(t, base+"/v1/programs", map[string]any{
		"rows":   ct.Inputs,
		"target": ct.Target,
		"id":     ct.ID,
		"name":   ct.Name,
	})
	return status
}

// applyTask runs the buffered apply and returns status plus the exact
// response bytes.
func applyTask(t *testing.T, base string, ct clusterTask) (int, string) {
	t.Helper()
	status, body := clusterPost(t, base+"/v1/programs/"+ct.ID+"/apply", map[string]any{
		"rows": ct.Inputs,
	})
	return status, string(body)
}

// streamTask runs the streaming apply and splits the NDJSON response
// into the payload (every line before the trailer, byte-preserved) and
// the parsed trailer with the wall-clock-dependent rows_per_sec field
// removed — the only field that legitimately differs across runs.
func streamTask(t *testing.T, base string, ct clusterTask) (status int, payload string, trailer map[string]any) {
	t.Helper()
	body := strings.Join(ct.Inputs, "\n") + "\n"
	resp, err := http.Post(base+"/v1/programs/"+ct.ID+"/apply/stream?chunk=3", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("stream POST: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, string(raw), nil
	}
	cut := strings.LastIndexByte(strings.TrimRight(string(raw), "\n"), '\n')
	if cut < 0 {
		cut = -1 // trailer-only response (empty payload)
	}
	payload = string(raw)[:cut+1]
	if err := json.Unmarshal([]byte(string(raw)[cut+1:]), &trailer); err != nil {
		t.Fatalf("stream trailer not JSON: %v\nbody tail: %q", err, string(raw)[cut+1:])
	}
	delete(trailer, "rows_per_sec")
	return resp.StatusCode, payload, trailer
}

// refAnswer is the single-node ground truth for one task.
type refAnswer struct {
	registerStatus int
	applyStatus    int
	applyBody      string
	streamStatus   int
	streamPayload  string
	streamTrailer  map[string]any
}

func TestClusterParityDifferential(t *testing.T) {
	full := os.Getenv("CLX_CLUSTER_PARITY") == "full"
	tasks := clusterTasks(t)
	nodeCounts := []int{1, 2, 4}
	if !full {
		nodeCounts = []int{1, 2}
		if len(tasks) > 12 {
			tasks = tasks[:12]
		}
	}

	// Single-node ground truth, captured through a 1-node cluster so the
	// reference bytes also traverse the proxy machinery.
	ref := make(map[string]*refAnswer, len(tasks))
	refCluster := fleettest.New(t, fleettest.Options{Nodes: 1})
	registered := 0
	for _, ct := range tasks {
		a := &refAnswer{registerStatus: registerTask(t, refCluster.URL(), ct)}
		if a.registerStatus == http.StatusCreated {
			registered++
			a.applyStatus, a.applyBody = applyTask(t, refCluster.URL(), ct)
			a.streamStatus, a.streamPayload, a.streamTrailer = streamTask(t, refCluster.URL(), ct)
		}
		ref[ct.ID] = a
	}
	if registered < len(tasks)*3/4 {
		t.Fatalf("only %d/%d tasks registered on the reference node; the matrix lost coverage", registered, len(tasks))
	}
	refCluster.Close()

	for _, policy := range routing.Names {
		for _, n := range nodeCounts {
			t.Run(fmt.Sprintf("%s/nodes=%d", policy, n), func(t *testing.T) {
				c := fleettest.New(t, fleettest.Options{Nodes: n, Policy: policy})
				for _, ct := range tasks {
					want := ref[ct.ID]
					if got := registerTask(t, c.URL(), ct); got != want.registerStatus {
						t.Fatalf("%s: register status %d, single-node %d", ct.Name, got, want.registerStatus)
					}
				}
				// Registration is replicated synchronously; Converge just
				// proves it, fingerprint-equal across all nodes.
				c.Converge(10 * time.Second)
				for _, ct := range tasks {
					want := ref[ct.ID]
					if want.registerStatus != http.StatusCreated {
						continue
					}
					status, body := applyTask(t, c.URL(), ct)
					if status != want.applyStatus {
						t.Fatalf("%s: apply status %d, single-node %d\nbody: %s", ct.Name, status, want.applyStatus, body)
					}
					if body != want.applyBody {
						t.Fatalf("%s: apply response diverges from single-node\ncluster: %s\nsingle:  %s", ct.Name, body, want.applyBody)
					}
					status, payload, trailer := streamTask(t, c.URL(), ct)
					if status != want.streamStatus {
						t.Fatalf("%s: stream status %d, single-node %d", ct.Name, status, want.streamStatus)
					}
					if payload != want.streamPayload {
						t.Fatalf("%s: stream payload diverges from single-node\ncluster: %q\nsingle:  %q", ct.Name, payload, want.streamPayload)
					}
					if !reflect.DeepEqual(trailer, want.streamTrailer) {
						t.Fatalf("%s: stream trailer diverges (rows_per_sec excluded)\ncluster: %v\nsingle:  %v", ct.Name, trailer, want.streamTrailer)
					}
				}
			})
		}
	}
}

// TestClusterFollowerKilledMidReplication kills a durable follower
// between two batches of writes. The leader keeps acknowledging writes
// (one dead follower must not fail the fleet), and on restart the
// follower recovers its pre-crash state from snapshot∘WAL, then the
// replicator's resync brings it to the leader's exact fingerprint.
func TestClusterFollowerKilledMidReplication(t *testing.T) {
	tasks := clusterTasks(t)
	if len(tasks) < 8 {
		t.Fatalf("need at least 8 registerable tasks, have %d", len(tasks))
	}
	c := fleettest.New(t, fleettest.Options{Nodes: 2, Durable: true})

	for _, ct := range tasks[:4] {
		if status := registerTask(t, c.URL(), ct); status != http.StatusCreated {
			t.Fatalf("%s: register status %d before kill", ct.Name, status)
		}
	}
	c.Converge(10 * time.Second)

	c.Kill(1)
	for _, ct := range tasks[4:8] {
		if status := registerTask(t, c.URL(), ct); status != http.StatusCreated {
			t.Fatalf("%s: register status %d with follower down (leader must keep accepting writes)", ct.Name, status)
		}
	}
	if got := c.Leader().Store.Len(); got != 8 {
		t.Fatalf("leader holds %d programs, want 8", got)
	}

	c.Restart(1)
	// The restarted store must have recovered the replicated pre-crash
	// batch from its own disk before any resync traffic.
	if got := c.Nodes[1].Store.Len(); got != 4 {
		t.Fatalf("restarted follower recovered %d programs from snapshot∘WAL, want the 4 replicated before the crash", got)
	}
	c.Converge(10 * time.Second)
	if got := c.Nodes[1].Store.Len(); got != 8 {
		t.Fatalf("converged follower holds %d programs, want 8", got)
	}
}

// TestClusterRoutedNodeKilledMidStream pins the mid-stream failure
// contract through the proxy: when the node serving a streaming apply
// dies after rows have been flushed, the client's response stays
// well-formed NDJSON ending in a {"done":false,"error":...} frame — it
// must not hang and must not end in a torn line.
func TestClusterRoutedNodeKilledMidStream(t *testing.T) {
	tasks := clusterTasks(t)
	c := fleettest.New(t, fleettest.Options{Nodes: 2, Policy: "affinity"})

	// Find a task whose program the affinity policy pins to the follower,
	// so we know exactly which node to kill.
	backends := []routing.Backend{{ID: "node-0"}, {ID: "node-1"}}
	var ct clusterTask
	found := false
	for _, cand := range tasks {
		if (routing.Affinity{}).Pick(cand.ID, backends) == 1 {
			ct = cand
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no task hashes to node 1; widen the task set")
	}
	if status := registerTask(t, c.URL(), ct); status != http.StatusCreated {
		t.Fatalf("register status %d", status)
	}

	// Stream with a body that never ends: a goroutine keeps feeding rows
	// through a pipe, so the stream is guaranteed live when the node dies.
	// (The daemon only flushes response headers with the first output
	// chunk, so the feeder must run before Do can return.)
	pr, pw := io.Pipe()
	stopFeed := make(chan struct{})
	go func() {
		defer pw.Close()
		for {
			select {
			case <-stopFeed:
				return
			default:
			}
			if _, err := io.WriteString(pw, ct.Inputs[0]+"\n"); err != nil {
				return // downstream died; the main goroutine owns the assertions
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stopFeed)
	req, err := http.NewRequest("POST", c.URL()+"/v1/programs/"+ct.ID+"/apply/stream?chunk=1", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200", resp.StatusCode)
	}

	// Wait for a transformed line: proof the stream is flowing end to end
	// before the kill.
	lines := newLineScanner(resp.Body)
	first, err := lines.next(5 * time.Second)
	if err != nil {
		t.Fatalf("no output line before kill: %v", err)
	}
	if !json.Valid([]byte(first)) {
		t.Fatalf("payload line is not JSON: %q", first)
	}

	c.Kill(1)

	// The pinned contract: the stream ends with a well-formed error frame,
	// within a bounded wait, with no torn bytes in between.
	deadline := time.Now().Add(10 * time.Second)
	var last string
	for {
		line, err := lines.next(time.Until(deadline))
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading stream after kill: %v (last line %q)", err, last)
		}
		last = line
	}
	var frame struct {
		Done  bool   `json:"done"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &frame); err != nil {
		t.Fatalf("final line is not a JSON frame: %v\nline: %q", err, last)
	}
	if frame.Done || frame.Error == "" {
		t.Fatalf("final frame %q: want done=false with a non-empty error", last)
	}
}

// lineScanner reads newline-terminated lines with a deadline, so a
// hung stream fails the test instead of wedging it.
type lineScanner struct {
	lines chan string
	errs  chan error
}

func newLineScanner(r io.Reader) *lineScanner {
	ls := &lineScanner{lines: make(chan string, 64), errs: make(chan error, 1)}
	go func() {
		buf := make([]byte, 0, 4096)
		one := make([]byte, 1)
		for {
			n, err := r.Read(one)
			if n > 0 {
				if one[0] == '\n' {
					ls.lines <- string(buf)
					buf = buf[:0]
				} else {
					buf = append(buf, one[0])
				}
			}
			if err != nil {
				if err == io.EOF && len(buf) > 0 {
					// A torn final line is a contract violation; surface it.
					ls.errs <- fmt.Errorf("stream ended mid-line: %q", buf)
					return
				}
				ls.errs <- err
				return
			}
		}
	}()
	return ls
}

func (ls *lineScanner) next(timeout time.Duration) (string, error) {
	select {
	case l := <-ls.lines:
		return l, nil
	case err := <-ls.errs:
		return "", err
	case <-time.After(timeout):
		return "", fmt.Errorf("no line within %v (stream hang)", timeout)
	}
}
