package rematch

import (
	"fmt"
	"sync"
	"testing"

	"clx/internal/token"
)

func phonePattern() []token.Token {
	return []token.Token{
		token.Base(token.Digit, 3), token.Lit("-"),
		token.Base(token.Digit, 3), token.Lit("-"),
		token.Base(token.Digit, 4),
	}
}

func TestCompileCachedShares(t *testing.T) {
	a := CompileCached(phonePattern())
	b := CompileCached(phonePattern())
	if a != b {
		t.Error("equal patterns should share one cached matcher")
	}
	if !a.Matches("734-645-8397") || a.Matches("7346458397") {
		t.Error("cached matcher has wrong semantics")
	}
}

// TestCompileCachedDefensiveCopy is the aliasing regression test: mutating
// the caller's token slice after CompileCached must not corrupt the cached
// matcher (Compile documents "the slice is not copied"; the cache must).
func TestCompileCachedDefensiveCopy(t *testing.T) {
	toks := phonePattern()
	c := CompileCached(toks)
	if !c.Matches("734-645-8397") {
		t.Fatal("matcher rejects a valid phone")
	}
	// Clobber the live slice the way a buggy caller could.
	for i := range toks {
		toks[i] = token.Lit("X")
	}
	if !c.Matches("734-645-8397") {
		t.Error("cached matcher aliased the caller's mutated slice")
	}
	// A fresh lookup of the original pattern still matches too.
	if !CompileCached(phonePattern()).Matches("734-645-8397") {
		t.Error("cache entry corrupted by caller mutation")
	}
}

func TestCompileCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := CompileCached(phonePattern())
				if !c.Matches("734-645-8397") {
					t.Error("concurrent cached match failed")
					return
				}
				// Distinct per-goroutine patterns churn the cache at the
				// same time.
				p := []token.Token{token.Lit(fmt.Sprintf("g%d-%d", g, i))}
				if !CompileCached(p).Matches(fmt.Sprintf("g%d-%d", g, i)) {
					t.Error("per-goroutine cached match failed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCompileCachedLimitReset(t *testing.T) {
	// Overflow the cache with distinct patterns; matching must keep working
	// through the reset and the shared entry must be recoverable after.
	for i := 0; i < cacheLimit+64; i++ {
		p := []token.Token{token.Lit(fmt.Sprintf("k%d", i))}
		if !CompileCached(p).Matches(fmt.Sprintf("k%d", i)) {
			t.Fatalf("entry %d mismatched", i)
		}
	}
	if !CompileCached(phonePattern()).Matches("734-645-8397") {
		t.Error("cache unusable after limit reset")
	}
}

func TestCompileCachedEmptyPattern(t *testing.T) {
	c := CompileCached(nil)
	if !c.Matches("") || c.Matches("x") {
		t.Error("empty pattern must match exactly the empty string")
	}
}
