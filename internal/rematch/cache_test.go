package rematch

import (
	"fmt"
	"sync"
	"testing"

	"clx/internal/token"
)

func phonePattern() []token.Token {
	return []token.Token{
		token.Base(token.Digit, 3), token.Lit("-"),
		token.Base(token.Digit, 3), token.Lit("-"),
		token.Base(token.Digit, 4),
	}
}

func TestCompileCachedShares(t *testing.T) {
	a := CompileCached(phonePattern())
	b := CompileCached(phonePattern())
	if a != b {
		t.Error("equal patterns should share one cached matcher")
	}
	if !a.Matches("734-645-8397") || a.Matches("7346458397") {
		t.Error("cached matcher has wrong semantics")
	}
}

// TestCompileCachedDefensiveCopy is the aliasing regression test: mutating
// the caller's token slice after CompileCached must not corrupt the cached
// matcher (Compile documents "the slice is not copied"; the cache must).
func TestCompileCachedDefensiveCopy(t *testing.T) {
	toks := phonePattern()
	c := CompileCached(toks)
	if !c.Matches("734-645-8397") {
		t.Fatal("matcher rejects a valid phone")
	}
	// Clobber the live slice the way a buggy caller could.
	for i := range toks {
		toks[i] = token.Lit("X")
	}
	if !c.Matches("734-645-8397") {
		t.Error("cached matcher aliased the caller's mutated slice")
	}
	// A fresh lookup of the original pattern still matches too.
	if !CompileCached(phonePattern()).Matches("734-645-8397") {
		t.Error("cache entry corrupted by caller mutation")
	}
}

func TestCompileCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := CompileCached(phonePattern())
				if !c.Matches("734-645-8397") {
					t.Error("concurrent cached match failed")
					return
				}
				// Distinct per-goroutine patterns churn the cache at the
				// same time.
				p := []token.Token{token.Lit(fmt.Sprintf("g%d-%d", g, i))}
				if !CompileCached(p).Matches(fmt.Sprintf("g%d-%d", g, i)) {
					t.Error("per-goroutine cached match failed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCompileCachedLimitReset(t *testing.T) {
	// Overflow the cache with distinct patterns; matching must keep working
	// through the reset and the shared entry must be recoverable after.
	for i := 0; i < int(cacheLimit)+64; i++ {
		p := []token.Token{token.Lit(fmt.Sprintf("k%d", i))}
		if !CompileCached(p).Matches(fmt.Sprintf("k%d", i)) {
			t.Fatalf("entry %d mismatched", i)
		}
	}
	if !CompileCached(phonePattern()).Matches("734-645-8397") {
		t.Error("cache unusable after limit reset")
	}
}

// TestCacheStatsCounters pins the observable cache accounting: a first
// compile is a miss, a repeat is a hit, and overflowing the (lowered) size
// cap books the retired generation's entries as evictions.
func TestCacheStatsCounters(t *testing.T) {
	old := cacheLimit
	cacheLimit = 8
	defer func() { cacheLimit = old; ResetCache() }()
	ResetCache()

	s0 := Stats()
	p := phonePattern()
	CompileCached(p)
	CompileCached(p)
	s1 := Stats()
	if got := s1.Misses - s0.Misses; got < 1 {
		t.Errorf("misses grew by %d, want >= 1", got)
	}
	if got := s1.Hits - s0.Hits; got < 1 {
		t.Errorf("hits grew by %d, want >= 1", got)
	}

	for i := 0; i < 4*int(cacheLimit); i++ {
		v := fmt.Sprintf("e%d", i)
		if !CompileCached([]token.Token{token.Lit(v)}).Matches(v) {
			t.Fatalf("entry %d mismatched", i)
		}
	}
	s2 := Stats()
	if s2.Evictions <= s1.Evictions {
		t.Errorf("evictions did not grow past the size cap: %d -> %d",
			s1.Evictions, s2.Evictions)
	}
	if got := s2.Misses - s1.Misses; got < 4*cacheLimit {
		t.Errorf("distinct patterns produced %d misses, want >= %d", got, 4*cacheLimit)
	}
}

// TestCacheEvictionConservation is the PR-5 drift regression: hammer
// CompileCached with unique patterns across many forced generation swaps
// and assert the counters conserve entries exactly. Every unique pattern
// is inserted once (misses == inserts); after the final reset retires the
// last generation, every insert must be booked as an eviction — including
// inserts that landed in a generation after a concurrent swap retired it,
// which the old accounting (Load instead of Swap at retirement, no
// late-insert booking) silently dropped. Run under -race this also pins
// the retirement protocol itself.
func TestCacheEvictionConservation(t *testing.T) {
	old := cacheLimit
	cacheLimit = 32 // force frequent generation swaps
	defer func() { cacheLimit = old; ResetCache() }()
	ResetCache()

	s0 := Stats()
	const goroutines, perG = 8, 800
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := fmt.Sprintf("c%d-%d", g, i)
				if !CompileCached([]token.Token{token.Lit(v)}).Matches(v) {
					t.Error("cached match failed during swap churn")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Retire the final generation so nothing is left live; conservation is
	// then exact: evictions must equal inserts.
	ResetCache()

	s1 := Stats()
	if got := s1.Hits - s0.Hits; got != 0 {
		t.Errorf("unique patterns produced %d hits, want 0", got)
	}
	inserts := s1.Misses - s0.Misses
	if inserts != goroutines*perG {
		t.Fatalf("misses = %d, want %d (unique patterns miss exactly once)", inserts, goroutines*perG)
	}
	if evicted := s1.Evictions - s0.Evictions; evicted != inserts {
		t.Errorf("eviction drift: %d inserts but %d evictions booked", inserts, evicted)
	}
}

func TestCompileCachedEmptyPattern(t *testing.T) {
	c := CompileCached(nil)
	if !c.Matches("") || c.Matches("x") {
		t.Error("empty pattern must match exactly the empty string")
	}
}
