package rematch

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"clx/internal/token"
	"clx/internal/tokenize"
)

func mustMatch(t *testing.T, p []token.Token, s string) []Span {
	t.Helper()
	spans, ok := Match(p, s)
	if !ok {
		t.Fatalf("Match(%v, %q) = false, want true", p, s)
	}
	return spans
}

func TestMatchFixed(t *testing.T) {
	p := []token.Token{
		token.Lit("("), token.Base(token.Digit, 3), token.Lit(")"),
		token.Lit(" "), token.Base(token.Digit, 3), token.Lit("-"),
		token.Base(token.Digit, 4),
	}
	spans := mustMatch(t, p, "(734) 645-8397")
	want := []Span{{0, 1}, {1, 4}, {4, 5}, {5, 6}, {6, 9}, {9, 10}, {10, 14}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
	for _, bad := range []string{"(734 645-8397", "(7345) 645-8397", "", "(734) 645-839", "(734) 645-83977"} {
		if Matches(p, bad) {
			t.Errorf("Matches(%q) = true, want false", bad)
		}
	}
}

func TestMatchPlus(t *testing.T) {
	p := []token.Token{
		token.Base(token.Upper, token.Plus), token.Lit("-"),
		token.Base(token.Digit, token.Plus),
	}
	spans := mustMatch(t, p, "CPT-00350")
	want := []Span{{0, 3}, {3, 4}, {4, 9}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
}

func TestMatchOverlappingClassesBacktrack(t *testing.T) {
	// <AN>+ overlaps digits; greedy must backtrack so <D>4 can match.
	p := []token.Token{
		token.Base(token.AlphaNum, token.Plus), token.Lit("."),
		token.Base(token.Digit, 4),
	}
	spans := mustMatch(t, p, "abc123.2019")
	want := []Span{{0, 6}, {6, 7}, {7, 11}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}

	// Adjacent overlapping plus-tokens: <AN>+<D>+ on "ab12": AN takes "ab1",
	// digits take "2" (greedy with backtracking yields longest AN first).
	p2 := []token.Token{
		token.Base(token.AlphaNum, token.Plus),
		token.Base(token.Digit, token.Plus),
	}
	spans = mustMatch(t, p2, "ab12")
	want = []Span{{0, 3}, {3, 4}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
}

func TestMatchLiteralPlus(t *testing.T) {
	p := []token.Token{
		{Class: token.Literal, Lit: "ab", Quant: token.Plus},
		token.Base(token.Digit, 1),
	}
	spans := mustMatch(t, p, "ababab1")
	want := []Span{{0, 6}, {6, 7}}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
	if Matches(p, "aba1") {
		t.Error("Matches(aba1) = true, want false (partial literal repeat)")
	}
}

func TestMatchEmpty(t *testing.T) {
	if _, ok := Match(nil, ""); !ok {
		t.Error("empty pattern should match empty string")
	}
	if _, ok := Match(nil, "x"); ok {
		t.Error("empty pattern should not match non-empty string")
	}
}

func TestMatchAnchored(t *testing.T) {
	p := []token.Token{token.Base(token.Digit, 3)}
	for _, bad := range []string{"1234", "a123", "123a", "12"} {
		if Matches(p, bad) {
			t.Errorf("Matches(%q) = true, want false (must be anchored)", bad)
		}
	}
	if !Matches(p, "123") {
		t.Error("Matches(123) = false, want true")
	}
}

// Property: tokenizing any string yields a pattern that matches it, with
// spans exactly reconstructing the string in order.
func TestTokenizedPatternMatchesSelf(t *testing.T) {
	f := func(s string) bool {
		toks := tokenize.Tokenize(s)
		spans, ok := Match(toks, s)
		if !ok {
			return false
		}
		var b strings.Builder
		prev := 0
		for _, sp := range spans {
			if sp.Start != prev {
				return false
			}
			b.WriteString(s[sp.Start:sp.End])
			prev = sp.End
		}
		return prev == len(s) && b.String() == s
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(v []reflect.Value, r *rand.Rand) {
		n := r.Intn(40)
		b := make([]byte, n)
		const alphabet = "abcXYZ019 -_.@/()+,:"
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		v[0] = reflect.ValueOf(string(b))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: spans returned by Match always tile the subject string
// contiguously, for generalized patterns too.
func TestSpansTile(t *testing.T) {
	pats := [][]token.Token{
		{token.Base(token.AlphaNum, token.Plus)},
		{token.Base(token.Alpha, token.Plus), token.Base(token.Digit, token.Plus)},
		{token.Base(token.AlphaNum, token.Plus), token.Lit("@"), token.Base(token.AlphaNum, token.Plus), token.Lit("."), token.Base(token.AlphaNum, token.Plus)},
	}
	subjects := []string{"Excel2013", "Bob123@gmail.com", "a1@b2.c3", "x@y.z", "ab-cd_ef@g h.ij"}
	for _, p := range pats {
		for _, s := range subjects {
			spans, ok := Match(p, s)
			if !ok {
				continue
			}
			prev := 0
			for _, sp := range spans {
				if sp.Start != prev || sp.End < sp.Start {
					t.Errorf("pattern %v on %q: spans not contiguous: %v", p, s, spans)
				}
				prev = sp.End
			}
			if prev != len(s) {
				t.Errorf("pattern %v on %q: spans do not cover string: %v", p, s, spans)
			}
		}
	}
}

func TestPathologicalBacktracking(t *testing.T) {
	// Many overlapping '+' tokens over a long non-matching string must not
	// blow up thanks to failure memoization.
	var p []token.Token
	for i := 0; i < 12; i++ {
		p = append(p, token.Base(token.AlphaNum, token.Plus))
	}
	p = append(p, token.Lit("!"))
	s := strings.Repeat("a", 200)
	if Matches(p, s) {
		t.Error("pattern requiring '!' matched plain letters")
	}
	if !Matches(p[:12], s[:12]) {
		t.Error("12 <AN>+ tokens should match 12 chars")
	}
}
