package rematch

import (
	"reflect"
	"sync"
	"testing"

	"clx/internal/token"
	"clx/internal/tokenize"
)

func TestCompiledEquivalentToMatch(t *testing.T) {
	patterns := [][]token.Token{
		tokenize.Tokenize("(734) 645-8397"),
		tokenize.Tokenize("CPT-00350"),
		{token.Base(token.AlphaNum, token.Plus), token.Lit("@"), token.Base(token.AlphaNum, token.Plus)},
		{token.Base(token.Upper, token.Plus), token.Lit("-"), token.Base(token.Digit, token.Plus)},
		nil,
	}
	subjects := []string{
		"(734) 645-8397", "(313) 263-1192", "CPT-00350", "XYZ-42",
		"a b@c d", "nope", "", "734-422-8073", "CPT-0035", "CPT-003500",
	}
	for _, p := range patterns {
		c := Compile(p)
		for _, s := range subjects {
			wantSpans, wantOK := Match(p, s)
			gotSpans, gotOK := c.Match(s)
			if wantOK != gotOK || !reflect.DeepEqual(wantSpans, gotSpans) {
				t.Errorf("pattern %v on %q: compiled (%v,%v) != one-shot (%v,%v)",
					p, s, gotSpans, gotOK, wantSpans, wantOK)
			}
			if c.Matches(s) != wantOK {
				t.Errorf("pattern %v on %q: Matches disagrees", p, s)
			}
		}
	}
}

func TestCompiledQuickRejects(t *testing.T) {
	p := tokenize.Tokenize("(734) 645-8397")
	c := Compile(p)
	// Fixed-length pattern: wrong lengths rejected without backtracking.
	if c.Matches("(734) 645-839") || c.Matches("(734) 645-83977") {
		t.Error("length quick-reject failed")
	}
	// Literal prefix/suffix rejects.
	if c.Matches("[734) 645-8397") {
		t.Error("prefix quick-reject failed")
	}
	p2 := []token.Token{token.Lit("["), token.Base(token.Digit, token.Plus), token.Lit("]")}
	c2 := Compile(p2)
	if c2.Matches("[123)") {
		t.Error("suffix quick-reject failed")
	}
	if !c2.Matches("[123]") {
		t.Error("valid subject rejected")
	}
}

func TestCompiledConcurrent(t *testing.T) {
	p := []token.Token{
		token.Base(token.AlphaNum, token.Plus), token.Lit("."),
		token.Base(token.Digit, 4),
	}
	c := Compile(p)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				spans, ok := c.Match("abc123.2019")
				if !ok || len(spans) != 3 || spans[2] != (Span{7, 11}) {
					t.Errorf("concurrent match wrong: %v %v", spans, ok)
					return
				}
				if c.Matches("nope") {
					t.Error("concurrent false positive")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func BenchmarkCompiledVsOneShot(b *testing.B) {
	p := tokenize.Tokenize("(734) 645-8397")
	subject := "(313) 263-1192"
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Matches(p, subject)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		c := Compile(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Matches(subject)
		}
	})
}

// MatchInto agrees with Match on spans and verdicts, reuses a buffer with
// capacity in place, and grows an undersized one.
func TestMatchInto(t *testing.T) {
	patterns := [][]token.Token{
		tokenize.Tokenize("(734) 645-8397"),
		{token.Base(token.AlphaNum, token.Plus), token.Lit("@"), token.Base(token.AlphaNum, token.Plus)},
		nil,
	}
	subjects := []string{"(734) 645-8397", "a b@c d", "nope", ""}
	var buf []Span
	for _, p := range patterns {
		c := Compile(p)
		for _, s := range subjects {
			wantSpans, wantOK := Match(p, s)
			gotSpans, gotOK := c.MatchInto(s, buf)
			if cap(gotSpans) > cap(buf) {
				buf = gotSpans
			}
			if wantOK != gotOK {
				t.Fatalf("pattern %v on %q: MatchInto ok=%v, Match ok=%v", p, s, gotOK, wantOK)
			}
			if wantOK && len(p) > 0 && !reflect.DeepEqual(wantSpans, gotSpans[:len(p)]) {
				t.Errorf("pattern %v on %q: MatchInto %v != Match %v", p, s, gotSpans[:len(p)], wantSpans)
			}
		}
	}
	// A buffer with capacity must be returned, filled, without allocating.
	p := patterns[0]
	c := Compile(p)
	big := make([]Span, len(p)+4)
	got, ok := c.MatchInto("(313) 263-1192", big)
	if !ok || len(got) != len(p) || cap(got) != cap(big) {
		t.Errorf("MatchInto did not reuse the caller buffer: ok=%v len=%d cap=%d", ok, len(got), cap(got))
	}
}
