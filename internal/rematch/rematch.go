// Package rematch is a small backtracking matcher for CLX token patterns.
//
// It plays the role of the regular-expression engine executing the Replace
// operations CLX generates (paper §5). Go's built-in RE2 engine cannot
// produce the per-token submatch spans the UniFi evaluator needs for
// patterns whose generalized classes overlap (e.g. <AN>+ followed by <D>+),
// so matching is implemented directly over the token sequence with
// backtracking and memoized failure states; replacements are then evaluated
// over the returned spans (see DESIGN.md, substitutions).
//
// For repeated matching of the same pattern — applying a transformation to
// a whole column — Compile returns a reusable matcher with precomputed
// quick-reject checks and pooled backtracking state.
package rematch

import (
	"strings"
	"sync"

	"clx/internal/token"
)

// Span is a half-open byte range [Start, End) of the subject string matched
// by one token of a pattern.
type Span struct {
	Start, End int
}

// Match reports whether s is an exact (anchored) match of the token sequence
// p, and if so returns one span per token covering s. When p is ambiguous,
// the match is greedy: each '+' token takes the longest extent that still
// allows the remaining tokens to match.
//
// Matching is byte-oriented; CLX token classes are all ASCII, and non-ASCII
// bytes can only be matched by literal tokens.
func Match(p []token.Token, s string) ([]Span, bool) {
	if len(p) == 0 {
		return nil, s == ""
	}
	var m matcher
	m.reset(p, s)
	spans := make([]Span, len(p))
	if !m.match(0, 0, spans) {
		return nil, false
	}
	return spans, true
}

// Matches reports whether s is an exact match of p without materializing
// spans.
func Matches(p []token.Token, s string) bool {
	if len(p) == 0 {
		return s == ""
	}
	var m matcher
	m.reset(p, s)
	return m.match(0, 0, m.scratch(len(p)))
}

// Compiled is a pattern prepared for repeated matching. It is safe for
// concurrent use.
type Compiled struct {
	toks   []token.Token
	minLen int
	// fixedLen is the exact subject length when no token has a '+'
	// quantifier, else -1.
	fixedLen int
	// prefix/suffix are required literal bounds, when the first/last token
	// is a fixed literal.
	prefix, suffix string
	pool           sync.Pool
}

// Compile prepares a token sequence for matching. The slice is not copied;
// callers must not mutate it afterwards.
func Compile(p []token.Token) *Compiled {
	c := &Compiled{toks: p, fixedLen: 0}
	for _, t := range p {
		c.minLen += t.MinLen()
		if c.fixedLen >= 0 {
			if l, ok := t.FixedLen(); ok {
				c.fixedLen += l
			} else {
				c.fixedLen = -1
			}
		}
	}
	if len(p) > 0 {
		if t := p[0]; t.IsLiteral() && t.Quant != token.Plus {
			c.prefix = t.Expand()
		}
		if t := p[len(p)-1]; t.IsLiteral() && t.Quant != token.Plus {
			c.suffix = t.Expand()
		}
	}
	c.pool.New = func() any { return &matcher{} }
	return c
}

// Tokens returns the compiled token sequence. The caller must not mutate it.
func (c *Compiled) Tokens() []token.Token { return c.toks }

// Match reports whether s is an exact match and returns per-token spans.
func (c *Compiled) Match(s string) ([]Span, bool) {
	if !c.quick(s) {
		return nil, false
	}
	if len(c.toks) == 0 {
		return nil, s == ""
	}
	m := c.pool.Get().(*matcher)
	m.reset(c.toks, s)
	spans := make([]Span, len(c.toks))
	ok := m.match(0, 0, spans)
	c.pool.Put(m)
	if !ok {
		return nil, false
	}
	return spans, true
}

// MatchInto is Match with a caller-owned span buffer: buf is grown (or
// allocated) to one span per token and returned filled on a match,
// sparing the per-call span allocation on bulk-apply hot paths. The
// returned slice aliases buf when it had capacity; callers reuse it
// across calls.
func (c *Compiled) MatchInto(s string, buf []Span) ([]Span, bool) {
	if !c.quick(s) {
		return buf, false
	}
	if len(c.toks) == 0 {
		return buf, s == ""
	}
	if cap(buf) < len(c.toks) {
		buf = make([]Span, len(c.toks))
	}
	spans := buf[:len(c.toks)]
	m := c.pool.Get().(*matcher)
	m.reset(c.toks, s)
	ok := m.match(0, 0, spans)
	c.pool.Put(m)
	return spans, ok
}

// Matches reports whether s is an exact match without materializing spans.
func (c *Compiled) Matches(s string) bool {
	if !c.quick(s) {
		return false
	}
	if len(c.toks) == 0 {
		return s == ""
	}
	m := c.pool.Get().(*matcher)
	m.reset(c.toks, s)
	ok := m.match(0, 0, m.scratch(len(c.toks)))
	c.pool.Put(m)
	return ok
}

// quick applies the precomputed rejects.
func (c *Compiled) quick(s string) bool {
	if len(s) < c.minLen {
		return false
	}
	if c.fixedLen >= 0 && len(s) != c.fixedLen {
		return false
	}
	if c.prefix != "" && !strings.HasPrefix(s, c.prefix) {
		return false
	}
	if c.suffix != "" && !strings.HasSuffix(s, c.suffix) {
		return false
	}
	return true
}

type matcher struct {
	pat []token.Token
	s   string
	// fail memoizes failed (token, position) states as a flat bitset.
	fail    []bool
	width   int
	spanBuf []Span
}

func (m *matcher) reset(pat []token.Token, s string) {
	m.pat, m.s = pat, s
	m.width = len(s) + 1
	need := len(pat) * m.width
	if cap(m.fail) < need {
		m.fail = make([]bool, need)
	} else {
		m.fail = m.fail[:need]
		clear(m.fail)
	}
}

func (m *matcher) scratch(n int) []Span {
	if cap(m.spanBuf) < n {
		m.spanBuf = make([]Span, n)
	}
	return m.spanBuf[:n]
}

// match tries to match pat[ti:] against s[pos:], filling spans[ti:].
func (m *matcher) match(ti, pos int, spans []Span) bool {
	if ti == len(m.pat) {
		return pos == len(m.s)
	}
	idx := ti*m.width + pos
	if m.fail[idx] {
		return false
	}
	t := m.pat[ti]
	if t.Quant != token.Plus {
		// Fixed-length token: single possible extent.
		if end, ok := m.fixed(t, pos); ok {
			spans[ti] = Span{pos, end}
			if m.match(ti+1, end, spans) {
				return true
			}
		}
		m.fail[idx] = true
		return false
	}
	// '+' token: longest extent first (greedy), backtrack shorter.
	max := m.maxRun(t, pos)
	unit := 1
	if t.IsLiteral() {
		unit = len(t.Lit)
	}
	for end := max; end >= pos+unit; end -= unit {
		spans[ti] = Span{pos, end}
		if m.match(ti+1, end, spans) {
			return true
		}
	}
	m.fail[idx] = true
	return false
}

// fixed returns the end position of a fixed-quantifier token matched at pos.
func (m *matcher) fixed(t token.Token, pos int) (int, bool) {
	if t.IsLiteral() {
		lit := t.Expand()
		end := pos + len(lit)
		if end > len(m.s) || m.s[pos:end] != lit {
			return 0, false
		}
		return end, true
	}
	end := pos + t.Quant
	if end > len(m.s) {
		return 0, false
	}
	for i := pos; i < end; i++ {
		if !t.Class.Contains(rune(m.s[i])) {
			return 0, false
		}
	}
	return end, true
}

// maxRun returns the furthest position reachable by repeating t from pos.
func (m *matcher) maxRun(t token.Token, pos int) int {
	if t.IsLiteral() {
		end := pos
		for strings.HasPrefix(m.s[end:], t.Lit) {
			end += len(t.Lit)
		}
		return end
	}
	end := pos
	for end < len(m.s) && t.Class.Contains(rune(m.s[end])) {
		end++
	}
	return end
}
