// Process-wide compiled-matcher cache.
//
// The same handful of patterns is compiled over and over across the system:
// the synthesizer compiles the target once per Synthesize call, every
// unifi.Program.Compile recompiles its case sources, replace.Op.Apply
// historically re-matched from scratch per row, and the clxd server repeats
// all of that per request. CompileCached memoizes Compile results under the
// canonical pattern string so one *Compiled — with its pooled backtracking
// state and precomputed quick rejects — is shared across ops, sessions and
// concurrent request handlers.
package rematch

import (
	"strings"
	"sync"
	"sync/atomic"

	"clx/internal/token"
)

// cacheLimit bounds the number of cached matchers. Patterns arrive from
// user data, so an unbounded memo would grow with every distinct column a
// long-lived server sees; past the limit the whole cache is dropped and
// rebuilt (correctness is unaffected — the cache is a pure memo). A var so
// tests can exercise eviction without compiling thousands of patterns.
var cacheLimit int64 = 8192

// CacheStats is a snapshot of the compiled-matcher cache counters: lookup
// hits, misses (each miss compiles), and entries discarded by generation
// swaps when the size cap is hit. Counters are process-lifetime monotonic;
// ResetCache drops entries but leaves the counters (a reset is itself an
// eviction event). A long-lived clxd exposes them at GET /v1/stats.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

var cacheStats struct {
	hits, misses, evictions atomic.Int64
}

// Stats returns the current cache counters.
func Stats() CacheStats {
	return CacheStats{
		Hits:      cacheStats.hits.Load(),
		Misses:    cacheStats.misses.Load(),
		Evictions: cacheStats.evictions.Load(),
	}
}

// cacheMap is one generation of the memo; overflow swaps in a fresh
// generation rather than deleting entries one by one.
type cacheMap struct {
	m sync.Map // canonical pattern string -> *Compiled
	n atomic.Int64
}

var cache atomic.Pointer[cacheMap]

func init() { cache.Store(new(cacheMap)) }

// CompileCached returns a shared Compiled for p, memoized process-wide by
// the canonical pattern string (token.Token.String concatenation, the same
// key pattern.Pattern.Key uses, so equal patterns always share a matcher).
//
// Unlike Compile — which borrows the caller's slice and forbids later
// mutation — CompileCached copies p before compiling. A cached matcher can
// outlive any session, so it must never alias a token slice the caller (or
// cluster generalization, which rewrites token buffers it owns) might still
// touch.
func CompileCached(p []token.Token) *Compiled {
	k := cacheKey(p)
	cm := cache.Load()
	if c, ok := cm.m.Load(k); ok {
		cacheStats.hits.Add(1)
		return c.(*Compiled)
	}
	cacheStats.misses.Add(1)
	own := make([]token.Token, len(p))
	copy(own, p)
	c, loaded := cm.m.LoadOrStore(k, Compile(own))
	if !loaded && cm.n.Add(1) > cacheLimit {
		// Retire this generation; concurrent readers of cm finish
		// harmlessly against the old map. Only the winning swap books the
		// retired entries as evictions.
		if cache.CompareAndSwap(cm, new(cacheMap)) {
			cacheStats.evictions.Add(cm.n.Load())
		}
	}
	return c.(*Compiled)
}

// ResetCache drops every memoized matcher, forcing subsequent
// CompileCached calls to recompile. Correctness never depends on cache
// contents; the only callers are benchmarks measuring cold-start cost
// (e.g. the first apply after a daemon restart) against the warm steady
// state.
func ResetCache() {
	cm := cache.Load()
	if cache.CompareAndSwap(cm, new(cacheMap)) {
		cacheStats.evictions.Add(cm.n.Load())
	}
}

func cacheKey(p []token.Token) string {
	var b strings.Builder
	for _, t := range p {
		b.WriteString(t.String())
	}
	return b.String()
}
