// Process-wide compiled-matcher cache.
//
// The same handful of patterns is compiled over and over across the system:
// the synthesizer compiles the target once per Synthesize call, every
// unifi.Program.Compile recompiles its case sources, replace.Op.Apply
// historically re-matched from scratch per row, and the clxd server repeats
// all of that per request. CompileCached memoizes Compile results under the
// canonical pattern string so one *Compiled — with its pooled backtracking
// state and precomputed quick rejects — is shared across ops, sessions and
// concurrent request handlers.
package rematch

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"clx/internal/obs"
	"clx/internal/token"
)

// cacheLimit bounds the number of cached matchers. Patterns arrive from
// user data, so an unbounded memo would grow with every distinct column a
// long-lived server sees; past the limit the whole cache is dropped and
// rebuilt (correctness is unaffected — the cache is a pure memo). A var so
// tests can exercise eviction without compiling thousands of patterns.
var cacheLimit int64 = 8192

// CacheStats is a snapshot of the compiled-matcher cache counters: lookup
// hits, misses (each miss compiles), and entries discarded by generation
// swaps when the size cap is hit. Counters are process-lifetime monotonic;
// ResetCache drops entries but leaves the counters (a reset is itself an
// eviction event). The counters live in internal/obs — a long-lived clxd
// exposes them both at GET /v1/stats and as clx_rematch_cache_* series at
// GET /metrics.
//
// Conservation invariant (the PR-5 bugfix): once the cache is quiescent,
// every entry ever inserted is either live in the current generation or
// booked as an eviction — including inserts that land in a generation
// *after* a concurrent overflow retired it, which previously vanished
// unbooked and made hits+misses-evictions drift on a busy daemon.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

var (
	cacheHits = obs.NewCounter("clx_rematch_cache_hits_total",
		"Compiled-matcher cache lookups served from the memo.")
	cacheMisses = obs.NewCounter("clx_rematch_cache_misses_total",
		"Compiled-matcher cache lookups that compiled a new matcher.")
	cacheEvictions = obs.NewCounter("clx_rematch_cache_evictions_total",
		"Compiled matchers discarded by generation swaps (size cap or reset).")
)

// Stats returns the current cache counters.
func Stats() CacheStats {
	return CacheStats{
		Hits:      cacheHits.Value(),
		Misses:    cacheMisses.Value(),
		Evictions: cacheEvictions.Value(),
	}
}

// cacheMap is one generation of the memo; overflow swaps in a fresh
// generation rather than deleting entries one by one.
//
// n counts inserted entries while the generation is live. Retirement
// claims the count atomically: the swap winner Swap-poisons n to
// retiredGen and books the returned value as evictions. An insert whose
// Add lands after the poison sees a negative result — proof its entry was
// not in the booked count — and books itself as one eviction, so every
// entry is booked exactly once no matter how the race interleaves.
type cacheMap struct {
	m sync.Map // canonical pattern string -> *Compiled
	n atomic.Int64
}

// retiredGen is the poison value marking a retired generation's counter.
// Far enough below zero that any realistic number of late Add(1)s keeps
// the counter negative.
const retiredGen = math.MinInt64 / 2

var cache atomic.Pointer[cacheMap]

func init() { cache.Store(new(cacheMap)) }

// CompileCached returns a shared Compiled for p, memoized process-wide by
// the canonical pattern string (token.Token.String concatenation, the same
// key pattern.Pattern.Key uses, so equal patterns always share a matcher).
//
// Unlike Compile — which borrows the caller's slice and forbids later
// mutation — CompileCached copies p before compiling. A cached matcher can
// outlive any session, so it must never alias a token slice the caller (or
// cluster generalization, which rewrites token buffers it owns) might still
// touch.
func CompileCached(p []token.Token) *Compiled {
	k := cacheKey(p)
	cm := cache.Load()
	if c, ok := cm.m.Load(k); ok {
		cacheHits.Inc()
		return c.(*Compiled)
	}
	cacheMisses.Inc()
	own := make([]token.Token, len(p))
	copy(own, p)
	c, loaded := cm.m.LoadOrStore(k, Compile(own))
	if !loaded {
		switch n := cm.n.Add(1); {
		case n < 0:
			// cm was retired (and its count booked) between our Load above
			// and this Add: the entry sits in a dead map, invisible to the
			// retirement booking and to future lookups. Book it here so the
			// eviction counter still conserves inserted entries.
			cacheEvictions.Add(1)
		case n > cacheLimit:
			// Retire this generation; concurrent readers of cm finish
			// harmlessly against the old map. Only the winning swap claims
			// the insert count (Swap poisons it so later inserts book
			// themselves) and books it as evictions.
			if cache.CompareAndSwap(cm, new(cacheMap)) {
				cacheEvictions.Add(cm.n.Swap(retiredGen))
			}
		}
	}
	return c.(*Compiled)
}

// ResetCache drops every memoized matcher, forcing subsequent
// CompileCached calls to recompile. Correctness never depends on cache
// contents; the only callers are benchmarks measuring cold-start cost
// (e.g. the first apply after a daemon restart) against the warm steady
// state.
func ResetCache() {
	cm := cache.Load()
	if cache.CompareAndSwap(cm, new(cacheMap)) {
		cacheEvictions.Add(cm.n.Swap(retiredGen))
	}
}

func cacheKey(p []token.Token) string {
	var b strings.Builder
	for _, t := range p {
		b.WriteString(t.String())
	}
	return b.String()
}
