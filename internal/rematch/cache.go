// Process-wide compiled-matcher cache.
//
// The same handful of patterns is compiled over and over across the system:
// the synthesizer compiles the target once per Synthesize call, every
// unifi.Program.Compile recompiles its case sources, replace.Op.Apply
// historically re-matched from scratch per row, and the clxd server repeats
// all of that per request. CompileCached memoizes Compile results under the
// canonical pattern string so one *Compiled — with its pooled backtracking
// state and precomputed quick rejects — is shared across ops, sessions and
// concurrent request handlers.
package rematch

import (
	"strings"
	"sync"
	"sync/atomic"

	"clx/internal/token"
)

// cacheLimit bounds the number of cached matchers. Patterns arrive from
// user data, so an unbounded memo would grow with every distinct column a
// long-lived server sees; past the limit the whole cache is dropped and
// rebuilt (correctness is unaffected — the cache is a pure memo).
const cacheLimit = 8192

// cacheMap is one generation of the memo; overflow swaps in a fresh
// generation rather than deleting entries one by one.
type cacheMap struct {
	m sync.Map // canonical pattern string -> *Compiled
	n atomic.Int64
}

var cache atomic.Pointer[cacheMap]

func init() { cache.Store(new(cacheMap)) }

// CompileCached returns a shared Compiled for p, memoized process-wide by
// the canonical pattern string (token.Token.String concatenation, the same
// key pattern.Pattern.Key uses, so equal patterns always share a matcher).
//
// Unlike Compile — which borrows the caller's slice and forbids later
// mutation — CompileCached copies p before compiling. A cached matcher can
// outlive any session, so it must never alias a token slice the caller (or
// cluster generalization, which rewrites token buffers it owns) might still
// touch.
func CompileCached(p []token.Token) *Compiled {
	k := cacheKey(p)
	cm := cache.Load()
	if c, ok := cm.m.Load(k); ok {
		return c.(*Compiled)
	}
	own := make([]token.Token, len(p))
	copy(own, p)
	c, loaded := cm.m.LoadOrStore(k, Compile(own))
	if !loaded && cm.n.Add(1) > cacheLimit {
		// Retire this generation; concurrent readers of cm finish
		// harmlessly against the old map.
		cache.CompareAndSwap(cm, new(cacheMap))
	}
	return c.(*Compiled)
}

// ResetCache drops every memoized matcher, forcing subsequent
// CompileCached calls to recompile. Correctness never depends on cache
// contents; the only callers are benchmarks measuring cold-start cost
// (e.g. the first apply after a daemon restart) against the warm steady
// state.
func ResetCache() { cache.Store(new(cacheMap)) }

func cacheKey(p []token.Token) string {
	var b strings.Builder
	for _, t := range p {
		b.WriteString(t.String())
	}
	return b.String()
}
