package simuser

import (
	"testing"

	"clx/internal/benchsuite"
	"clx/internal/dataset"
)

func TestSimulateCLXPhones(t *testing.T) {
	in, want := dataset.Phones(60, 4, 42)
	res := SimulateCLX(in, want, DefaultOptions())
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.Selections != 1 {
		t.Errorf("selections = %d, want 1", res.Selections)
	}
	if res.Repairs != 0 {
		t.Errorf("repairs = %d, want 0 for phones", res.Repairs)
	}
	if res.Steps() != 1 {
		t.Errorf("steps = %d, want 1", res.Steps())
	}
	for i := range want {
		if res.Outputs[i] != want[i] {
			t.Errorf("out[%d] = %q, want %q", i, res.Outputs[i], want[i])
		}
	}
}

func TestSimulateCLXMedical(t *testing.T) {
	task, _ := benchsuite.ByName("bf-ex3-medical")
	res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
	if !res.Perfect() {
		t.Fatalf("failed rows: %v (outputs %v)", res.FailedRows, res.Outputs)
	}
	if res.Selections != 1 {
		t.Errorf("selections = %d, want 1", res.Selections)
	}
}

func TestSimulateCLXDateNeedsRepair(t *testing.T) {
	task, _ := benchsuite.ByName("ff-ex10-dates")
	res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.Repairs == 0 {
		t.Error("date swap should require a repair (the §6.4 ambiguity)")
	}
}

func TestSimulateCLXConditionalFails(t *testing.T) {
	task, _ := benchsuite.ByName("ff-ex13-picture")
	res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
	if res.Perfect() {
		t.Error("UniFi cannot express the content conditional; task should fail")
	}
}

func TestSimulateCLXUnrepresentativeFails(t *testing.T) {
	for _, name := range []string{"pp-ex2-mcmillan", "prose-ex2-email"} {
		task, _ := benchsuite.ByName(name)
		res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		if res.Perfect() {
			t.Errorf("%s: expected a representativeness failure", name)
		}
		// Only the unrepresentative rows fail, not the whole task.
		if len(res.FailedRows) == len(task.Inputs) {
			t.Errorf("%s: all rows failed; expected partial success", name)
		}
	}
}

func TestSelectTargets(t *testing.T) {
	// All outputs share a leaf pattern: one target at level 0.
	_, want := dataset.Phones(20, 3, 7)
	targets := SelectTargets(nil, want)
	if len(targets) != 1 || targets[0].String() != "<D>3'-'<D>3'-'<D>4" {
		t.Errorf("targets = %v", targets)
	}
	// Mixed-length codes generalize to one '+' target.
	targets = SelectTargets(nil, []string{"[CPT-00350]", "[CPT-115]"})
	if len(targets) != 1 || targets[0].String() != "'['<U>+'-'<D>+']'" {
		t.Errorf("targets = %v", targets)
	}
	// Structurally different outputs stay separate.
	targets = SelectTargets(nil, []string{"eran yahav", "mary ann lee"})
	if len(targets) != 2 {
		t.Errorf("targets = %v, want 2", targets)
	}
}

func TestSimulateFlashFillPhones(t *testing.T) {
	in, want := dataset.Phones(30, 3, 99)
	res := SimulateFlashFill(in, want)
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if len(res.Examples) == 0 {
		t.Fatal("no examples provided")
	}
	// Interactions grow with heterogeneity: at least one example per messy
	// format.
	if len(res.Examples) < 2 {
		t.Errorf("examples = %d, want >= 2 for 3 formats", len(res.Examples))
	}
	// Scan lengths recorded for each interaction plus the final pass.
	if len(res.ScanLengths) != len(res.Examples)+1 {
		t.Errorf("scan lengths = %d, want %d", len(res.ScanLengths), len(res.Examples)+1)
	}
	if last := res.ScanLengths[len(res.ScanLengths)-1]; last != len(in) {
		t.Errorf("final scan = %d, want full pass %d", last, len(in))
	}
}

func TestSimulateFlashFillConditionalStalls(t *testing.T) {
	task, _ := benchsuite.ByName("ff-ex13-picture")
	res := SimulateFlashFill(task.Inputs, task.Outputs)
	// Our pattern-partitioned FlashFill cannot separate same-pattern
	// content conditionals; the session must terminate (no infinite loop)
	// and report failures.
	if res.Perfect() {
		t.Log("FlashFill solved the conditional task; paper's FlashFill also could")
	} else if len(res.FailedRows) == 0 {
		t.Error("imperfect result must report failed rows")
	}
}

func TestSimulateFlashFillAlreadyClean(t *testing.T) {
	in := []string{"a-1", "b-2"}
	res := SimulateFlashFill(in, in)
	if !res.Perfect() || len(res.Examples) != 0 {
		t.Errorf("clean column should need no examples: %+v", res)
	}
	if res.Steps() != 0 {
		t.Errorf("steps = %d, want 0", res.Steps())
	}
}

func TestSimulateCLXAlreadyClean(t *testing.T) {
	in := []string{"111-222-3333", "444-555-6666"}
	res := SimulateCLX(in, in, DefaultOptions())
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.Steps() != 1 { // one selection, nothing to repair
		t.Errorf("steps = %d, want 1", res.Steps())
	}
}

// The headline §7.4 expressivity shape: CLX solves ~90% of the suite,
// failing exactly the designed conditional + representativeness tasks.
func TestExpressivityShape(t *testing.T) {
	perfectCLX := 0
	var failures []string
	for _, task := range benchsuite.Tasks() {
		res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		if res.Perfect() {
			perfectCLX++
		} else {
			failures = append(failures, task.Name)
			if !task.NeedsConditional && !task.UnrepresentativeTarget {
				t.Logf("unexpected CLX failure on %s (%d rows failed)",
					task.Name, len(res.FailedRows))
			}
		}
	}
	t.Logf("CLX perfect on %d/47; failures: %v", perfectCLX, failures)
	if perfectCLX < 40 || perfectCLX > 44 {
		t.Errorf("CLX perfect on %d/47, want ~42 (40-44)", perfectCLX)
	}
}

// Determinism: the simulated sessions are pure functions of the task.
func TestSimulationDeterministic(t *testing.T) {
	for _, task := range benchsuite.Tasks()[:12] {
		a := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		b := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		if a.Steps() != b.Steps() || a.Selections != b.Selections ||
			a.Repairs != b.Repairs || len(a.FailedRows) != len(b.FailedRows) {
			t.Errorf("%s: non-deterministic CLX simulation", task.Name)
		}
		fa := SimulateFlashFill(task.Inputs, task.Outputs)
		fb := SimulateFlashFill(task.Inputs, task.Outputs)
		if fa.Steps() != fb.Steps() || len(fa.Examples) != len(fb.Examples) {
			t.Errorf("%s: non-deterministic FlashFill simulation", task.Name)
		}
		ra := SimulateRegexReplace(task.Inputs, task.Outputs)
		rb := SimulateRegexReplace(task.Inputs, task.Outputs)
		if ra.Steps() != rb.Steps() {
			t.Errorf("%s: non-deterministic RegexReplace simulation", task.Name)
		}
	}
}

// Effort stays bounded on every task: even the designed failures never
// degenerate into per-row patching for CLX.
func TestStepsBounded(t *testing.T) {
	for _, task := range benchsuite.Tasks() {
		res := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		bound := 12 + len(res.FailedRows) // selections+repairs small; punishment explicit
		if res.Steps() > bound {
			t.Errorf("%s: steps = %d exceeds bound %d", task.Name, res.Steps(), bound)
		}
	}
}
