// Package simuser implements the simulated "lazy approach" user of paper
// §7.4 (after Harris & Gulwani) for all three systems:
//
//   - CLX: the user selects the target pattern(s) among the profiled input
//     patterns, then verifies each suggested atomic transformation plan and
//     repairs it from the ranked alternatives when the default is wrong.
//   - FlashFill: the user provides the first positive example on the first
//     record in a non-standard format, then iteratively provides a positive
//     example for the first record the synthesized program still gets wrong.
//   - RegexReplace: delegated to internal/regexreplace's oracle.
//
// Step accounting follows §7.4's metrics exactly, including the punishment
// term (one Step per record left incorrectly transformed).
package simuser

import (
	"sort"

	"clx/internal/cluster"
	"clx/internal/flashfill"
	"clx/internal/pattern"
	"clx/internal/regexreplace"
	"clx/internal/synth"
	"clx/internal/unifi"
)

// CLXResult is the outcome of a simulated CLX session.
type CLXResult struct {
	// Selections is the number of target patterns the user chose.
	Selections int
	// Repairs is the number of source plans repaired from the ranked list.
	Repairs int
	// PlansVerified counts the (target, source) plan cards the user
	// inspected — the interaction count of §7.2 minus the labeling step.
	PlansVerified int
	// FailedRows are rows no selected target + plan could fix.
	FailedRows []int
	// Targets are the selected target patterns.
	Targets []pattern.Pattern
	// InputClusters is the number of leaf pattern clusters shown.
	InputClusters int
	// PostClusters is the number of leaf pattern clusters after the
	// transformation — the post-transform verification view (Fig. 2).
	PostClusters int
	// PlanEvents records each plan-verification interaction in order.
	PlanEvents []PlanEvent
	// Cases are the accepted (source, plan) pairs of the final program, in
	// acceptance order.
	Cases []unifi.Case
	// Outputs is the final transformed column.
	Outputs []string
}

// Apply transforms a novel input with the session's final program: inputs
// already matching a selected target stay unchanged, the first matching
// case's plan applies otherwise, and unmatched inputs are left as-is
// (flagged in a real session, §6.1).
func (r CLXResult) Apply(s string) string {
	for _, tgt := range r.Targets {
		if tgt.Matches(s) {
			return s
		}
	}
	prog := unifi.Program{Cases: r.Cases}
	out, err := prog.Apply(s)
	if err != nil {
		return s
	}
	return out
}

// PlanEvent is one plan-verification interaction of a CLX session.
type PlanEvent struct {
	// Repaired is true when the user replaced the default plan (or
	// rejected all plans of a node and drilled into its children).
	Repaired bool
}

// Steps returns the §7.4 Steps: selections + repairs + punishment.
func (r CLXResult) Steps() int { return r.Selections + r.Repairs + len(r.FailedRows) }

// Perfect reports whether the final program transformed every row correctly.
func (r CLXResult) Perfect() bool { return len(r.FailedRows) == 0 }

// Interactions returns the §7.2 interaction count: one labeling interaction
// plus one per verified plan.
func (r CLXResult) Interactions() int { return 1 + r.PlansVerified }

// Options configure the simulated CLX session.
type Options struct {
	// Synth configures the underlying synthesizer.
	Synth synth.Options
	// Cluster configures profiling.
	Cluster cluster.Options
	// ContentConditionals enables the §7.4 guard extension: when no plan
	// of a leaf pattern fits all its rows, the user may split them on a
	// distinguishing token value (one repair per guarded case).
	ContentConditionals bool
}

// DefaultOptions returns the prototype configuration.
func DefaultOptions() Options {
	return Options{Synth: synth.DefaultOptions(), Cluster: cluster.DefaultOptions()}
}

// SimulateCLX runs the lazy CLX user on a column with known ground truth.
func SimulateCLX(inputs, want []string, opts Options) CLXResult {
	var res CLXResult
	h := cluster.Profile(inputs, opts.Cluster)
	res.InputClusters = len(h.Clusters)
	res.Outputs = append([]string(nil), inputs...)

	// Label: derive the target patterns from the desired outputs by
	// generalizing their leaf patterns just enough to minimize the number
	// of selections (§3.2 Labeling; the prototype requires each selected
	// pattern to describe at least one existing input record).
	targets := SelectTargets(inputs, want)
	// Keep only targets supported by an already-correct input record; rows
	// whose format has no such record cannot be labeled (the §7.4
	// representativeness failures).
	supported := targets[:0:0]
	for _, tgt := range targets {
		ok := false
		for i := range inputs {
			if inputs[i] == want[i] && tgt.Matches(inputs[i]) {
				ok = true
				break
			}
		}
		if ok {
			supported = append(supported, tgt)
		}
	}
	res.Targets = supported
	res.Selections = len(supported)

	// Route each dirty row to the first selected target its desired output
	// matches.
	targetOf := make([]int, len(inputs))
	for i := range inputs {
		targetOf[i] = -1
		if inputs[i] == want[i] {
			continue
		}
		for j, tgt := range supported {
			if tgt.Matches(want[i]) {
				targetOf[i] = j
				break
			}
		}
	}

	// Solve each target over the hierarchy, drilling down on verification
	// failure: when no plan of a node fits all its routed rows, the user
	// rejects the suggestion (one repair) and inspects the child patterns,
	// exactly as the hierarchical pattern display of §4.2 affords.
	used := 0
	for j, tgt := range supported {
		var rows []int
		for ri := range inputs {
			if targetOf[ri] == j {
				rows = append(rows, ri)
			}
		}
		if len(rows) == 0 {
			continue // an unneeded selection is never made
		}
		used++
		for _, root := range h.Roots() {
			res.solveNode(root, rowsIn(root, rows), tgt, inputs, want, opts)
		}
	}
	if used == 0 && len(supported) > 0 {
		used = 1 // labeling happens even when the column is already clean
	}
	res.Selections = used
	for i := range inputs {
		if res.Outputs[i] != want[i] {
			res.FailedRows = append(res.FailedRows, i)
		}
	}
	res.PostClusters = len(cluster.Initial(res.Outputs, opts.Cluster))
	return res
}

// rowsIn filters rows to those covered by the node.
func rowsIn(n *cluster.Node, rows []int) []int {
	member := make(map[int]bool)
	for _, leaf := range n.Leaves {
		for _, ri := range leaf.Rows {
			member[ri] = true
		}
	}
	var out []int
	for _, ri := range rows {
		if member[ri] {
			out = append(out, ri)
		}
	}
	return out
}

// solveNode verifies the suggested plans for one hierarchy node against the
// routed rows, repairing from alternatives or drilling into child patterns.
func (r *CLXResult) solveNode(n *cluster.Node, rows []int, tgt pattern.Pattern,
	inputs, want []string, opts Options) {
	if len(rows) == 0 {
		return
	}
	descend := func(userDriven bool) {
		if len(n.Children) == 0 {
			if opts.ContentConditionals {
				r.tryConditional(n.Pattern, rows, inputs, want, opts)
			}
			return // otherwise rows stay broken
		}
		if userDriven {
			r.Repairs++ // the user rejects the suggestion and drills down
			r.PlanEvents = append(r.PlanEvents, PlanEvent{Repaired: true})
		}
		for _, c := range n.Children {
			r.solveNode(c, rowsIn(c, rows), tgt, inputs, want, opts)
		}
	}
	plans := synth.PlansFor(n.Pattern, tgt, opts.Synth)
	if len(plans) == 0 {
		// The system itself rejects the pattern (validate / incomplete
		// alignment): descent is automatic, no user effort.
		descend(false)
		return
	}
	r.PlansVerified++
	for pi, ranked := range plans {
		ok := true
		for _, ri := range rows {
			out, err := ranked.Plan.Apply(n.Pattern, inputs[ri])
			if err != nil || out != want[ri] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if pi > 0 {
			r.Repairs++
		}
		r.PlanEvents = append(r.PlanEvents, PlanEvent{Repaired: pi > 0})
		r.Cases = append(r.Cases, unifi.Case{Source: n.Pattern, Plan: ranked.Plan})
		for _, ri := range rows {
			out, _ := ranked.Plan.Apply(n.Pattern, inputs[ri])
			r.Outputs[ri] = out
		}
		return
	}
	descend(true)
}

// tryConditional attempts the §7.4 guard extension on a failed leaf: split
// the rows on a distinguishing token value and pick one plan per group.
// Each guarded case the user specifies counts as one repair.
func (r *CLXResult) tryConditional(src pattern.Pattern, rows []int, inputs, want []string, opts Options) {
	ins := make([]string, len(rows))
	outs := make([]string, len(rows))
	for k, ri := range rows {
		ins[k] = inputs[ri]
		outs[k] = want[ri]
	}
	cases, ok := synth.ConditionalSplit(src, ins, outs, opts.Synth)
	if !ok {
		return
	}
	prog := unifi.GuardedProgram{Cases: cases}
	for _, ri := range rows {
		out, err := prog.Apply(inputs[ri])
		if err != nil {
			return
		}
		r.Outputs[ri] = out
	}
	r.Repairs += len(cases)
	r.PlanEvents = append(r.PlanEvents, PlanEvent{Repaired: true})
}

// SelectTargets derives the labeled target patterns from the desired
// outputs: profile the outputs (with constant-token discovery, so shared
// prefixes like 'Dr' stay literal), then generalize through the §4.2
// strategies while doing so reduces the number of distinct patterns.
// Targets are returned most specific first, the order the routing uses.
func SelectTargets(inputs, want []string) []pattern.Pattern {
	// Only rows that actually need changing tell the user what the desired
	// format is; noise records that stay as-is ("N/A") are not format
	// evidence. A fully clean column falls back to all rows.
	var evidence []string
	if len(inputs) == len(want) {
		for i := range want {
			if inputs[i] != want[i] {
				evidence = append(evidence, want[i])
			}
		}
	}
	if len(evidence) == 0 {
		evidence = want
	}
	pats := distinctPatterns(evidence)
	// Only the quantifier strategy is used: a user labels a format like
	// "<D>3-<D>3-<D>4" or "[CPT-<D>+]", never a class-folded blob like
	// "<AN>+','<AN>+" — and class-folded targets are untransformable-to
	// anyway (no source token aligns with <A>/<AN> targets).
	if next := distinctGeneralized(pats, cluster.QuantToPlus); len(next) < len(pats) {
		pats = next
	}
	sort.SliceStable(pats, func(a, b int) bool {
		la, lb := literalTokens(pats[a]), literalTokens(pats[b])
		if la != lb {
			return la > lb
		}
		return pats[a].Len() > pats[b].Len()
	})
	return pats
}

func literalTokens(p pattern.Pattern) int {
	n := 0
	for _, t := range p.Tokens() {
		if t.IsLiteral() {
			n++
		}
	}
	return n
}

func distinctPatterns(rows []string) []pattern.Pattern {
	var out []pattern.Pattern
	for _, c := range cluster.Initial(rows, cluster.DefaultOptions()) {
		out = append(out, c.Pattern)
	}
	return out
}

func distinctGeneralized(pats []pattern.Pattern, g cluster.Strategy) []pattern.Pattern {
	seen := make(map[string]bool)
	var out []pattern.Pattern
	for _, p := range pats {
		gp := cluster.Generalize(p, g)
		if k := gp.Key(); !seen[k] {
			seen[k] = true
			out = append(out, gp)
		}
	}
	return out
}

// FFResult is the outcome of a simulated FlashFill session.
type FFResult struct {
	// Examples are the provided input-output examples, in order.
	Examples []flashfill.Example
	// ScanLengths[k] is the number of records the user read after the k-th
	// interaction to find the next wrong record (or confirm none): the
	// instance-level verification work of §7.2.
	ScanLengths []int
	// FailedRows are rows still wrong when the session ended.
	FailedRows []int
	// Outputs is the final transformed column.
	Outputs []string
	// Program is the final learned program (nil when no example was
	// needed).
	Program *flashfill.Program
}

// Steps returns the §7.4 Steps: examples + punishment.
func (r FFResult) Steps() int { return len(r.Examples) + len(r.FailedRows) }

// Perfect reports whether every row ended correct.
func (r FFResult) Perfect() bool { return len(r.FailedRows) == 0 }

// Interactions returns the number of examples provided (§7.2's definition
// for FlashFill).
func (r FFResult) Interactions() int { return len(r.Examples) }

// SimulateFlashFill runs the lazy FlashFill user: provide an example for the
// first wrong record, re-synthesize, repeat until perfect or no progress.
func SimulateFlashFill(inputs, want []string) FFResult {
	var res FFResult
	var learner flashfill.Learner
	given := make(map[int]bool)
	current := make([]string, len(inputs))
	copy(current, inputs)

	refresh := func() {
		prog, err := learner.Program()
		if err != nil {
			copy(current, inputs)
			return
		}
		for i := range inputs {
			out, err := prog.Apply(inputs[i])
			if err != nil {
				// FlashFill fills every cell with its best program's
				// output; a failed evaluation leaves a blank cell the
				// user has to notice and correct — it does not silently
				// preserve the input.
				current[i] = ""
				continue
			}
			current[i] = out
		}
	}
	firstWrong := func() (int, int) {
		for i := range inputs {
			if current[i] != want[i] {
				return i, i + 1 // scanned i+1 records to find it
			}
		}
		return -1, len(inputs)
	}

	for {
		i, scanned := firstWrong()
		res.ScanLengths = append(res.ScanLengths, scanned)
		if i < 0 {
			break // perfect
		}
		if given[i] {
			break // no progress: example already given for this record
		}
		given[i] = true
		ex := flashfill.Example{In: inputs[i], Out: want[i]}
		res.Examples = append(res.Examples, ex)
		if err := learner.Add(ex); err != nil {
			break
		}
		refresh()
	}
	res.Outputs = current
	for i := range inputs {
		if current[i] != want[i] {
			res.FailedRows = append(res.FailedRows, i)
		}
	}
	if prog, err := learner.Program(); err == nil {
		res.Program = prog
	}
	return res
}

// RRResult aliases the RegexReplace oracle result.
type RRResult = regexreplace.Result

// SimulateRegexReplace runs the manual-replace oracle.
func SimulateRegexReplace(inputs, want []string) RRResult {
	return regexreplace.Simulate(inputs, want)
}
