package simuser

import (
	"testing"

	"clx/internal/benchsuite"
)

// The §7.4 guard extension lets extended CLX solve the content-conditional
// task that plain UniFi cannot express.
func TestExtendedSolvesConditionalTask(t *testing.T) {
	task, _ := benchsuite.ByName("ff-ex13-picture")

	plain := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
	if plain.Perfect() {
		t.Fatal("plain CLX should fail the conditional task")
	}

	opts := DefaultOptions()
	opts.ContentConditionals = true
	ext := SimulateCLX(task.Inputs, task.Outputs, opts)
	if !ext.Perfect() {
		t.Fatalf("extended CLX failed: %d rows wrong", len(ext.FailedRows))
	}
	// The guards cost repairs: one per guarded case.
	if ext.Repairs < 2 {
		t.Errorf("repairs = %d, want >= 2 (one per keyword group)", ext.Repairs)
	}
}

// The extension never regresses tasks plain CLX already solves, and
// improves overall expressivity by exactly the conditional task (the four
// representativeness failures are about missing target evidence, which no
// conditional can invent).
func TestExtendedExpressivity(t *testing.T) {
	opts := DefaultOptions()
	opts.ContentConditionals = true
	plainPerfect, extPerfect := 0, 0
	for _, task := range benchsuite.Tasks() {
		plain := SimulateCLX(task.Inputs, task.Outputs, DefaultOptions())
		ext := SimulateCLX(task.Inputs, task.Outputs, opts)
		if plain.Perfect() {
			plainPerfect++
			if !ext.Perfect() {
				t.Errorf("%s: extension regressed a solved task", task.Name)
			}
		}
		if ext.Perfect() {
			extPerfect++
		}
	}
	if extPerfect <= plainPerfect {
		t.Errorf("extended perfect = %d, plain = %d; extension should add coverage",
			extPerfect, plainPerfect)
	}
	t.Logf("expressivity: plain %d/47, extended %d/47", plainPerfect, extPerfect)
}
