package userstudy

import (
	"testing"
)

func TestParticipantsDeterministicAndSpread(t *testing.T) {
	a := Participants(NumParticipants)
	b := Participants(NumParticipants)
	if len(a) != NumParticipants {
		t.Fatalf("participants = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Participants is not deterministic")
		}
	}
	if a[0] != DefaultCosts() {
		t.Error("participant 0 should be the default profile")
	}
	// Profiles actually differ.
	same := 0
	for i := 1; i < len(a); i++ {
		if a[i] == a[0] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d participants identical to default", same)
	}
	// All constants stay positive and within the documented band.
	d := DefaultCosts()
	for i, c := range a {
		if c.ReadRecord < 0.5*d.ReadRecord || c.ReadRecord > 1.7*d.ReadRecord {
			t.Errorf("participant %d ReadRecord %.2f out of band", i, c.ReadRecord)
		}
		if c.WriteRegex <= 0 || c.TypeExample <= 0 {
			t.Errorf("participant %d has non-positive costs", i)
		}
	}
}

// The §7.2 headline shape — CLX verification nearly flat, FlashFill
// verification growing an order of magnitude — must hold for every
// participant profile, not just the default calibration.
func TestShapeRobustAcrossParticipants(t *testing.T) {
	for pi, costs := range Participants(NumParticipants) {
		res := RunVerificationStudy(costs)
		clxGrowth := Growth(res, func(r CaseResult) float64 { return r.CLX.VerificationTime() })
		ffGrowth := Growth(res, func(r CaseResult) float64 { return r.FF.VerificationTime() })
		if clxGrowth > 3 {
			t.Errorf("participant %d: CLX verification growth %.1fx", pi, clxGrowth)
		}
		if ffGrowth < 3*clxGrowth {
			t.Errorf("participant %d: FF growth %.1fx not >> CLX growth %.1fx",
				pi, ffGrowth, clxGrowth)
		}
		// CLX is the cheapest system at 300(6) for everyone.
		last := res[2]
		if last.CLX.Total() >= last.FF.Total() || last.CLX.Total() >= last.RR.Total() {
			t.Errorf("participant %d: CLX not cheapest at 300(6): clx=%.0f ff=%.0f rr=%.0f",
				pi, last.CLX.Total(), last.FF.Total(), last.RR.Total())
		}
	}
}

func TestRunVerificationPanel(t *testing.T) {
	panel := RunVerificationPanel(NumParticipants)
	if len(panel) != 3 {
		t.Fatalf("cases = %d", len(panel))
	}
	for _, pr := range panel {
		for si := range pr.MeanTotal {
			if pr.MeanTotal[si] <= 0 || pr.MeanVerify[si] > pr.MeanTotal[si] {
				t.Errorf("case %s system %d: total %.1f verify %.1f",
					pr.Case.Name, si, pr.MeanTotal[si], pr.MeanVerify[si])
			}
		}
	}
	// Panel means preserve the ordering at 300(6): CLX < FF < RR or
	// CLX < RR < FF — CLX cheapest either way.
	last := panel[2]
	if last.MeanTotal[2] >= last.MeanTotal[1] || last.MeanTotal[2] >= last.MeanTotal[0] {
		t.Errorf("panel means at 300(6): rr=%.0f ff=%.0f clx=%.0f — CLX should be cheapest",
			last.MeanTotal[0], last.MeanTotal[1], last.MeanTotal[2])
	}
}
