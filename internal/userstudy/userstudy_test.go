package userstudy

import (
	"math"
	"testing"

	"clx/internal/dataset"
	"clx/internal/simuser"
)

func TestScanCost(t *testing.T) {
	c := Costs{ReadRecord: 2, SkimAfter: 10, SkimFactor: 0.5}
	if got := c.scanCost(5); got != 10 {
		t.Errorf("scanCost(5) = %v, want 10", got)
	}
	if got := c.scanCost(10); got != 20 {
		t.Errorf("scanCost(10) = %v, want 20", got)
	}
	if got := c.scanCost(20); got != 20+10 {
		t.Errorf("scanCost(20) = %v, want 30", got)
	}
	// No skim configured: linear.
	c2 := Costs{ReadRecord: 2}
	if got := c2.scanCost(100); got != 200 {
		t.Errorf("scanCost without skim = %v, want 200", got)
	}
}

func TestSessionAccounting(t *testing.T) {
	var s Session
	s.push("a", 2, 3)
	s.push("b", 1, 4)
	s.push("final-check", 0, 5)
	if got := s.Total(); got != 15 {
		t.Errorf("Total = %v, want 15", got)
	}
	if got := s.VerificationTime(); got != 12 {
		t.Errorf("VerificationTime = %v, want 12", got)
	}
	if got := s.SpecificationTime(); got != 3 {
		t.Errorf("SpecificationTime = %v, want 3", got)
	}
	if got := s.CountedInteractions(); got != 2 {
		t.Errorf("CountedInteractions = %v, want 2", got)
	}
	// Timestamps are cumulative and monotone.
	prev := 0.0
	for _, it := range s.Interactions {
		if it.At < prev {
			t.Errorf("timestamps not monotone: %v", s.Interactions)
		}
		prev = it.At
	}
}

func TestEmptySession(t *testing.T) {
	var s Session
	if s.Total() != 0 || s.VerificationTime() != 0 {
		t.Error("empty session should cost nothing")
	}
}

// §7.2 headline: verification time on CLX grows far slower than on
// FlashFill as data size and heterogeneity grow 30×.
func TestVerificationStudyShape(t *testing.T) {
	res := RunVerificationStudy(DefaultCosts())
	if len(res) != 3 {
		t.Fatalf("cases = %d, want 3", len(res))
	}
	clxGrowth := Growth(res, func(r CaseResult) float64 { return r.CLX.VerificationTime() })
	ffGrowth := Growth(res, func(r CaseResult) float64 { return r.FF.VerificationTime() })
	if clxGrowth > 3 {
		t.Errorf("CLX verification growth = %.1fx, want ~1.3x (< 3x)", clxGrowth)
	}
	if ffGrowth < 4 {
		t.Errorf("FlashFill verification growth = %.1fx, want ~11x (> 4x)", ffGrowth)
	}
	if ffGrowth < 2.5*clxGrowth {
		t.Errorf("FF growth (%.1fx) should far exceed CLX growth (%.1fx)", ffGrowth, clxGrowth)
	}
	// At 300(6) CLX is the cheapest system overall (Fig 11a).
	last := res[2]
	if last.CLX.Total() >= last.FF.Total() || last.CLX.Total() >= last.RR.Total() {
		t.Errorf("at 300(6): CLX %.0fs, FF %.0fs, RR %.0fs — CLX should be cheapest",
			last.CLX.Total(), last.FF.Total(), last.RR.Total())
	}
	// Manual regexp writing costs significantly more than CLX everywhere
	// (§7.2 observation 1).
	for _, r := range res {
		if r.RR.Total() <= r.CLX.Total() {
			t.Errorf("%s: RR %.0fs <= CLX %.0fs", r.Case.Name, r.RR.Total(), r.CLX.Total())
		}
	}
}

// Fig 11c: FlashFill's interaction gaps grow toward the end of the session;
// CLX's stay stable.
func TestInteractionTimestamps(t *testing.T) {
	res := RunVerificationStudy(DefaultCosts())
	ff := res[2].FF
	if len(ff.Interactions) < 3 {
		t.Skip("too few FF interactions to compare gaps")
	}
	first := ff.Interactions[0].At
	lastGap := ff.Interactions[len(ff.Interactions)-1].At -
		ff.Interactions[len(ff.Interactions)-2].At
	if lastGap <= first {
		t.Errorf("FF final gap %.0fs should exceed first interaction %.0fs", lastGap, first)
	}
	clx := res[2].CLX
	for i := 1; i < len(clx.Interactions)-1; i++ {
		gap := clx.Interactions[i].At - clx.Interactions[i-1].At
		if gap > 60 {
			t.Errorf("CLX mid-session gap %.0fs too large (plan verification should be stable)", gap)
		}
	}
}

// Fig 13: CLX users answer almost perfectly; FlashFill users get about half
// as much right; RegexReplace users match CLX.
func TestQuizShape(t *testing.T) {
	res := RunQuiz()
	if len(res) != 3 {
		t.Fatalf("systems = %d", len(res))
	}
	byName := map[string]QuizResult{}
	for _, r := range res {
		byName[r.System] = r
	}
	clx, ff, rr := byName["CLX"], byName["FlashFill"], byName["RegexReplace"]
	if clx.Overall < 0.85 {
		t.Errorf("CLX overall = %.2f, want near-perfect", clx.Overall)
	}
	if rr.Overall < 0.85 {
		t.Errorf("RegexReplace overall = %.2f, want near CLX", rr.Overall)
	}
	if ff.Overall > 0.65 {
		t.Errorf("FlashFill overall = %.2f, want about half of CLX", ff.Overall)
	}
	if ratio := clx.Overall / ff.Overall; ratio < 1.5 || ratio > 3.5 {
		t.Errorf("CLX/FF ratio = %.2f, paper reports about 2x", ratio)
	}
}

func TestQuestionsWellFormed(t *testing.T) {
	qs := AppCQuestions()
	if len(qs) != 9 {
		t.Fatalf("questions = %d, want 9 (Appendix C)", len(qs))
	}
	perTask := map[int]int{}
	for _, q := range qs {
		perTask[q.Task]++
		if q.Input == "" || q.Desired == "" {
			t.Errorf("question %+v incomplete", q)
		}
		if q.Task < 0 || q.Task > 2 {
			t.Errorf("question task %d out of range", q.Task)
		}
	}
	for ti := 0; ti < 3; ti++ {
		if perTask[ti] != 3 {
			t.Errorf("task %d has %d questions, want 3", ti, perTask[ti])
		}
	}
}

func TestChoiceOf(t *testing.T) {
	q := Question{Choices: [3]string{"a", "b", "c"}}
	if q.choiceOf("b") != 1 {
		t.Error("choiceOf(b) != 1")
	}
	if q.choiceOf("zzz") != NoneOfTheAbove {
		t.Error("unknown output should map to None of the above")
	}
}

// Fig 14: per-task completion times exist and CLX beats FlashFill on the
// large task 3 (100 records), the paper's ~60% saving case.
func TestTaskSessions(t *testing.T) {
	sessions := TaskSessions(DefaultCosts())
	for ti := range sessions {
		for si, s := range sessions[ti] {
			if s.Total() <= 0 {
				t.Errorf("task %d system %d: zero total", ti, si)
			}
		}
	}
	task3 := sessions[2]
	if clx, ff := task3[0].Total(), task3[1].Total(); clx >= ff {
		t.Errorf("task 3: CLX %.0fs should beat FF %.0fs on large data", clx, ff)
	}
}

func TestRRSessionScanTrace(t *testing.T) {
	in, want := dataset.Phones(40, 3, 5)
	rr := simuser.SimulateRegexReplace(in, want)
	s := RRSession(rr, len(in), DefaultCosts())
	if got := s.CountedInteractions(); got != rr.Interactions() {
		t.Errorf("session interactions = %d, want %d", got, rr.Interactions())
	}
	if s.SpecificationTime() != float64(rr.Interactions())*2*DefaultCosts().WriteRegex {
		t.Errorf("specification time should be 2 regexps per op")
	}
}

func TestGrowthEdgeCases(t *testing.T) {
	if g := Growth(nil, func(CaseResult) float64 { return 1 }); g != 1 {
		t.Errorf("Growth(nil) = %v, want 1", g)
	}
	res := []CaseResult{{}, {}}
	if g := Growth(res, func(CaseResult) float64 { return 0 }); g != 0 {
		t.Errorf("Growth with zero base = %v, want 0", g)
	}
}

func TestCLXSessionStructure(t *testing.T) {
	in, want := dataset.Phones(50, 4, 11)
	res := simuser.SimulateCLX(in, want, simuser.DefaultOptions())
	s := CLXSession(res, DefaultCosts())
	if s.Interactions[0].Kind != "label" {
		t.Error("first interaction should be labeling")
	}
	if last := s.Interactions[len(s.Interactions)-1]; last.Kind != "final-check" {
		t.Error("last interaction should be the final pattern check")
	}
	if got := s.CountedInteractions(); got != res.Interactions() {
		t.Errorf("session interactions = %d, simuser says %d", got, res.Interactions())
	}
	// Verification is pattern-level: total verify time is independent of
	// row count — check by scaling rows 10x with same formats.
	in2, want2 := dataset.Phones(500, 4, 11)
	res2 := simuser.SimulateCLX(in2, want2, simuser.DefaultOptions())
	s2 := CLXSession(res2, DefaultCosts())
	if math.Abs(s2.VerificationTime()-s.VerificationTime()) > 0.5*s.VerificationTime() {
		t.Errorf("CLX verification should be ~row-count independent: %.0f vs %.0f",
			s.VerificationTime(), s2.VerificationTime())
	}
}
