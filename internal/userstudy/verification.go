// The §7.2 verification-effort study: three samples of the (simulated)
// Times Square Food & Beverage phone column at growing size and
// heterogeneity, each solved on all three systems with the cost model.
package userstudy

import (
	"clx/internal/dataset"
)

// StudyCase is one of the §7.2 test cases, e.g. "300(6)" = 300 records in 6
// patterns.
type StudyCase struct {
	Name    string
	Rows    int
	Formats int
}

// StudyCases returns the paper's three cases.
func StudyCases() []StudyCase {
	return []StudyCase{
		{"10(2)", 10, 2},
		{"100(4)", 100, 4},
		{"300(6)", 300, 6},
	}
}

// CaseResult holds the three sessions for one study case.
type CaseResult struct {
	Case StudyCase
	CLX  Session
	FF   Session
	RR   Session
}

// Sessions returns the sessions in the paper's plotting order
// (RegexReplace, FlashFill, CLX).
func (c CaseResult) Sessions() []Session { return []Session{c.RR, c.FF, c.CLX} }

// RunVerificationStudy runs the §7.2 study: the task is to transform every
// phone number into <D>3-<D>3-<D>4.
func RunVerificationStudy(c Costs) []CaseResult {
	var out []CaseResult
	for _, sc := range StudyCases() {
		in, want := dataset.Phones(sc.Rows, sc.Formats, 73300+int64(sc.Rows))
		clx, ff, rr := Run(in, want, c)
		out = append(out, CaseResult{Case: sc, CLX: clx, FF: ff, RR: rr})
	}
	return out
}

// Growth returns t(last)/t(first) for a metric across the study cases — the
// paper's headline "verification time grew by 1.3× (CLX) vs 11.4×
// (FlashFill)" statistic.
func Growth(results []CaseResult, metric func(CaseResult) float64) float64 {
	if len(results) < 2 {
		return 1
	}
	first := metric(results[0])
	last := metric(results[len(results)-1])
	if first == 0 {
		return 0
	}
	return last / first
}
