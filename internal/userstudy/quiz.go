// The §7.3 explainability study: the nine Appendix-C questions, the three
// user strategies as algorithms, and the grading harness producing the
// Figure 13 correct rates.
package userstudy

import (
	"clx/internal/benchsuite"
	"clx/internal/cluster"
	"clx/internal/pattern"
	"clx/internal/simuser"
)

// Question is one Appendix-C multiple-choice question. The Desired field is
// the normatively correct transformation — what a user who simply trusts
// the tool expects; grading compares each strategy's prediction with the
// tool's *actual* behavior on the input.
type Question struct {
	// Task indexes Table 5's tasks (0 = FlashFill Example 11, 1 = PredProg
	// Example 3, 2 = SyGus phone-10-long).
	Task int
	// Input is the probe string x.
	Input string
	// Choices are options A–C; "None of the above" is implicit choice 3.
	Choices [3]string
	// Desired is the normatively correct output.
	Desired string
}

// NoneOfTheAbove is the implicit fourth choice index.
const NoneOfTheAbove = 3

// AppCQuestions returns the nine questions of Appendix C.
func AppCQuestions() []Question {
	return []Question{
		// Task 1: names to "Last, First [Middle]".
		{Task: 0, Input: "Barack Obama",
			Choices: [3]string{"Obama", "Barack, Obama", "Obama, Barack"},
			Desired: "Obama, Barack"},
		{Task: 0, Input: "Barack Hussein Obama",
			Choices: [3]string{"Obama, Barack Hussein", "Obama, Barack", "Obama, Hussein"},
			Desired: "Obama, Barack Hussein"},
		{Task: 0, Input: "Obama, Barack Hussein",
			Choices: [3]string{"Obama, Barack Hussein", "Obama, Barack", "Obama, Hussein"},
			Desired: "Obama, Barack Hussein"},
		// Task 2: addresses to city.
		{Task: 1, Input: "155 Main St, San Diego, CA 92173",
			Choices: [3]string{"San", "San Diego", "St, San"},
			Desired: "San Diego"},
		{Task: 1, Input: "14820 NE 36th Street, Redmond, WA 98052",
			Choices: [3]string{"Redmond", "WA", "Street, Redmond"},
			Desired: "Redmond"},
		{Task: 1, Input: "12 South Michigan Ave, Chicago",
			Choices: [3]string{"South Michigan", "Chicago", "Ave, Chicago"},
			Desired: "Chicago"},
		// Task 3: international phones to "+N (NNN) NNN-NNN".
		{Task: 2, Input: "+1 (844) 332-282",
			Choices: [3]string{"+1 (844) 282-332", "+1 (844) 332-282", "+1 (844)332-282"},
			Desired: "+1 (844) 332-282"},
		{Task: 2, Input: "844.332.282",
			Choices: [3]string{"+844 (332)-282", "+844 (332) 332-282", "+1 (844) 332-282"},
			Desired: "+1 (844) 332-282"},
		{Task: 2, Input: "+1 (844) 332-282 ext57",
			Choices: [3]string{"+1 (844) 322-282", "+1 (844) 332-282 ext57", "+1 (844) 282-282 ext57"},
			Desired: "+1 (844) 332-282 ext57"},
	}
}

// choiceOf maps an output string to the choice index it corresponds to.
func (q Question) choiceOf(out string) int {
	for i, c := range q.Choices {
		if out == c {
			return i
		}
	}
	return NoneOfTheAbove
}

// QuizResult holds the Figure 13 outcome for one system.
type QuizResult struct {
	System string
	// CorrectByTask is the per-task correct rate over its 3 questions.
	CorrectByTask [3]float64
	// Overall is the rate over all 9 questions.
	Overall float64
}

// taskUser bundles, for one system on one task, the tool's actual behavior
// on novel inputs and the user strategy predicting it.
type taskUser struct {
	actual  func(string) string
	predict func(Question) string
}

// clxUser and rrUser mentally execute the explained Replace operations: the
// prediction *is* the tool's behavior.
func clxUser(in, want []string) taskUser {
	res := simuser.SimulateCLX(in, want, simuser.DefaultOptions())
	return taskUser{actual: res.Apply, predict: func(q Question) string { return res.Apply(q.Input) }}
}

func rrUser(in, want []string) taskUser {
	res := simuser.SimulateRegexReplace(in, want)
	actual := func(s string) string {
		if out, ok := res.Ops.Apply(s); ok {
			return out
		}
		return s
	}
	return taskUser{actual: actual, predict: func(q Question) string { return actual(q.Input) }}
}

// ffUser reasons by analogy — the only strategy an opaque program affords.
// The mental model anchors on the defining first example they typed
// (anchoring: later examples are corrections absorbed into invisible
// program state): for an input matching the anchor's format they predict
// the desired transformation; for anything else they cannot tell what the
// program will do and fall back to "None of the above". This is the
// behavioral model behind the paper's observation that FlashFill users
// "have inadequate insights on how the logic will work" (§7.3).
func ffUser(in, want []string) taskUser {
	res := simuser.SimulateFlashFill(in, want)
	actual := func(s string) string {
		if res.Program == nil {
			return s
		}
		out, err := res.Program.Apply(s)
		if err != nil {
			return ""
		}
		return out
	}
	var anchor pattern.Pattern
	if len(res.Examples) > 0 {
		anchor = cluster.Generalize(pattern.FromString(res.Examples[0].In), cluster.QuantToPlus)
	}
	predict := func(q Question) string {
		if len(res.Examples) > 0 && anchor.Matches(q.Input) {
			return q.Desired
		}
		return "" // "None of the above"
	}
	return taskUser{actual: actual, predict: predict}
}

// RunQuiz runs the §7.3 study: each Table 5 task is first solved with each
// system (producing its actual program), then the Appendix-C questions are
// answered with the strategy the system affords and graded against the
// actual tool behavior.
func RunQuiz() []QuizResult {
	tasks := benchsuite.ExplainabilityTasks()
	questions := AppCQuestions()

	systems := []struct {
		name string
		run  func(in, want []string) taskUser
	}{
		{"CLX", clxUser},
		{"FlashFill", ffUser},
		{"RegexReplace", rrUser},
	}

	var out []QuizResult
	for _, sys := range systems {
		r := QuizResult{System: sys.name}
		var perTask [3]taskUser
		for ti := range tasks {
			perTask[ti] = sys.run(tasks[ti].Inputs, tasks[ti].Outputs)
		}
		var taskCorrect, taskTotal [3]int
		for _, q := range questions {
			u := perTask[q.Task]
			got := q.choiceOf(u.actual(q.Input))
			want := q.choiceOf(u.predict(q))
			taskTotal[q.Task]++
			if got == want {
				taskCorrect[q.Task]++
			}
		}
		total, correct := 0, 0
		for ti := 0; ti < 3; ti++ {
			r.CorrectByTask[ti] = float64(taskCorrect[ti]) / float64(taskTotal[ti])
			total += taskTotal[ti]
			correct += taskCorrect[ti]
		}
		r.Overall = float64(correct) / float64(total)
		out = append(out, r)
	}
	return out
}

// TaskSessions runs the Table 5 tasks on all three systems with the cost
// model, for the Figure 14 completion-time comparison.
func TaskSessions(c Costs) [3][3]Session {
	tasks := benchsuite.ExplainabilityTasks()
	var out [3][3]Session
	for ti, task := range tasks {
		clx, ff, rr := Run(task.Inputs, task.Outputs, c)
		out[ti] = [3]Session{clx, ff, rr}
	}
	return out
}
