// Package userstudy reproduces the paper's two user studies (§7.2
// verification effort, §7.3 explainability) as behavioral cost models.
//
// The interaction *traces* — how many examples a FlashFill user provides,
// where the next wrong record sits, how many pattern cards and plan
// previews a CLX user inspects, how many Replace operations a Trifacta user
// authors — come from running the real synthesizers via internal/simuser.
// Only the per-action human costs (seconds to read a record, type an
// example, write a regexp, …) are calibrated constants; see DESIGN.md's
// substitution table for why this preserves the paper's claims, which are
// about growth *shape*, not absolute seconds.
package userstudy

import (
	"clx/internal/simuser"
)

// Costs are the per-action human time constants, in seconds.
type Costs struct {
	// ReadRecord is the time to read one transformed record and judge its
	// correctness (instance-level verification, §7.2).
	ReadRecord float64
	// ReadPattern is the time to read one pattern card in the cluster
	// display (pattern-level verification).
	ReadPattern float64
	// Orient is the fixed time to take in a pattern-based display before
	// judging individual cards.
	Orient float64
	// TypeExample is the time to type one input-output example.
	TypeExample float64
	// SelectTarget is the time to choose the desired pattern.
	SelectTarget float64
	// VerifyPlan is the time to read one suggested Replace operation and
	// its preview.
	VerifyPlan float64
	// RepairPlan is the time to open the alternative plans and pick one.
	RepairPlan float64
	// WriteRegex is the time to write one regular expression by hand.
	WriteRegex float64
	// SkimAfter is the number of consecutive correct records after which a
	// scanning user stops reading carefully and skims.
	SkimAfter int
	// SkimFactor scales ReadRecord while skimming.
	SkimFactor float64
}

// scanCost is the verification time for reading n records in one scan,
// with attention decaying to a skim after Costs.SkimAfter records.
func (c Costs) scanCost(n int) float64 {
	if n <= c.SkimAfter || c.SkimAfter <= 0 {
		return c.ReadRecord * float64(n)
	}
	return c.ReadRecord*float64(c.SkimAfter) +
		c.ReadRecord*c.SkimFactor*float64(n-c.SkimAfter)
}

// DefaultCosts returns the calibrated constants. They are deliberately
// round numbers in plausible human ranges; all Figure 11/12/14 claims are
// about relative growth, which the traces determine.
func DefaultCosts() Costs {
	return Costs{
		ReadRecord:   1.5,
		ReadPattern:  4,
		Orient:       20,
		TypeExample:  25,
		SelectTarget: 5,
		VerifyPlan:   8,
		RepairPlan:   15,
		WriteRegex:   30,
		SkimAfter:    60,
		SkimFactor:   0.2,
	}
}

// Interaction is one user interaction with timing breakdown.
type Interaction struct {
	// Kind labels the interaction ("label", "plan", "example", "replace",
	// "final-check").
	Kind string
	// Specify is the input time (typing, selecting) in seconds.
	Specify float64
	// Verify is the verification time in seconds.
	Verify float64
	// At is the session timestamp at the *end* of the interaction.
	At float64
}

// Session is a full simulated user session.
type Session struct {
	System       string
	Interactions []Interaction
}

// Total returns the session's completion time.
func (s Session) Total() float64 {
	if len(s.Interactions) == 0 {
		return 0
	}
	return s.Interactions[len(s.Interactions)-1].At
}

// VerificationTime returns the summed verification component (§7.2's
// metric).
func (s Session) VerificationTime() float64 {
	v := 0.0
	for _, it := range s.Interactions {
		v += it.Verify
	}
	return v
}

// SpecificationTime returns the summed input component.
func (s Session) SpecificationTime() float64 {
	v := 0.0
	for _, it := range s.Interactions {
		v += it.Specify
	}
	return v
}

// CountedInteractions returns the §7.2 interaction count (the final
// confirmation pass is verification, not an interaction).
func (s Session) CountedInteractions() int {
	n := 0
	for _, it := range s.Interactions {
		if it.Kind != "final-check" {
			n++
		}
	}
	return n
}

func (s *Session) push(kind string, specify, verify float64) {
	at := specify + verify
	if n := len(s.Interactions); n > 0 {
		at += s.Interactions[n-1].At
	}
	s.Interactions = append(s.Interactions, Interaction{Kind: kind, Specify: specify, Verify: verify, At: at})
}

// CLXSession builds the timed session for a CLX run.
//
// The labeling interaction verifies the pattern-cluster display (orient +
// one card per cluster) and selects the target(s). Each plan interaction
// verifies one suggested Replace operation, plus a repair when the default
// was wrong. The final check re-reads the post-transform pattern display —
// pattern-level verification, independent of row count (the paper's core
// mechanism).
func CLXSession(res simuser.CLXResult, c Costs) Session {
	s := Session{System: "CLX"}
	s.push("label",
		c.SelectTarget*float64(res.Selections),
		c.Orient+c.ReadPattern*float64(res.InputClusters))
	for _, ev := range res.PlanEvents {
		specify := 0.0
		if ev.Repaired {
			specify = c.RepairPlan
		}
		s.push("plan", specify, c.VerifyPlan)
	}
	s.push("final-check", 0, c.Orient+c.ReadPattern*float64(res.PostClusters))
	return s
}

// FFSession builds the timed session for a FlashFill run. Each example
// interaction types the example and then scans the refreshed column until
// the next wrong record (or all the way through when none remains) — the
// instance-level verification whose cost grows with data size.
func FFSession(res simuser.FFResult, c Costs) Session {
	s := Session{System: "FlashFill"}
	for k := range res.Examples {
		scan := 0
		if k < len(res.ScanLengths) {
			scan = res.ScanLengths[k]
		}
		s.push("example", c.TypeExample, c.scanCost(scan))
	}
	if n := len(res.ScanLengths); n > len(res.Examples) {
		s.push("final-check", 0, c.scanCost(res.ScanLengths[n-1]))
	}
	return s
}

// RRSession builds the timed session for a RegexReplace run. Each operation
// scans forward from the previous trigger row to find the next ill-formatted
// record, then writes two regexps. The final pass re-reads the whole column.
func RRSession(res simuser.RRResult, rows int, c Costs) Session {
	s := Session{System: "RegexReplace"}
	prev := 0
	for _, at := range res.TriggerRows {
		scan := at - prev + 1
		if scan < 1 {
			scan = 1
		}
		prev = at
		s.push("replace", 2*c.WriteRegex, c.scanCost(scan))
	}
	s.push("final-check", 0, c.scanCost(rows))
	return s
}

// Run simulates one task on all three systems and returns the sessions.
func Run(inputs, want []string, c Costs) (clx, ff, rr Session) {
	clxRes := simuser.SimulateCLX(inputs, want, simuser.DefaultOptions())
	ffRes := simuser.SimulateFlashFill(inputs, want)
	rrRes := simuser.SimulateRegexReplace(inputs, want)
	return CLXSession(clxRes, c), FFSession(ffRes, c), RRSession(rrRes, len(inputs), c)
}
