// Simulated participants. The paper's studies had nine human participants;
// individual pace varies, the claimed effects must not depend on one
// calibration point. Participants generates nine deterministic cost
// profiles spread around the defaults (fast readers, slow typists, …) so
// the experiments can report means and check that the growth shapes hold
// for every profile.
package userstudy

import (
	"math/rand"
)

// NumParticipants matches the paper's study size.
const NumParticipants = 9

// Participants returns n cost profiles. Profile 0 is DefaultCosts; the
// rest scale each per-action constant by a deterministic factor in
// [0.6, 1.6].
func Participants(n int) []Costs {
	out := make([]Costs, 0, n)
	r := rand.New(rand.NewSource(1909)) // the year of the first wrangler
	for i := 0; i < n; i++ {
		c := DefaultCosts()
		if i > 0 {
			f := func() float64 { return 0.6 + r.Float64() }
			c.ReadRecord *= f()
			c.ReadPattern *= f()
			c.Orient *= f()
			c.TypeExample *= f()
			c.SelectTarget *= f()
			c.VerifyPlan *= f()
			c.RepairPlan *= f()
			c.WriteRegex *= f()
		}
		out = append(out, c)
	}
	return out
}

// PanelResult aggregates one study case over the participant panel.
type PanelResult struct {
	Case StudyCase
	// Mean totals and verification times per system (RR, FF, CLX order).
	MeanTotal  [3]float64
	MeanVerify [3]float64
}

// RunVerificationPanel runs the §7.2 study once per participant and
// averages. The interaction traces are identical across participants (they
// come from the synthesizers); only the per-action seconds differ.
func RunVerificationPanel(n int) []PanelResult {
	panel := Participants(n)
	var out []PanelResult
	for ci, sc := range StudyCases() {
		pr := PanelResult{Case: sc}
		for _, costs := range panel {
			res := RunVerificationStudy(costs)[ci]
			for si, s := range res.Sessions() {
				pr.MeanTotal[si] += s.Total()
				pr.MeanVerify[si] += s.VerificationTime()
			}
		}
		for si := range pr.MeanTotal {
			pr.MeanTotal[si] /= float64(len(panel))
			pr.MeanVerify[si] /= float64(len(panel))
		}
		out = append(out, pr)
	}
	return out
}
