package tokenize

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"clx/internal/token"
)

// TestAppendTokenizeMatchesTokenize pins the hot-path contract: for every
// input, AppendTokenize(nil, s) and Tokenize(s) yield identical tokens —
// including the empty string, multi-byte runes inside literal runs, invalid
// UTF-8 bytes, and very long single-class runs.
func TestAppendTokenizeMatchesTokenize(t *testing.T) {
	cases := []string{
		"",
		"Bob123@gmail.com",
		"(734) 645-8397",
		"N/A",
		"   ",
		"aé9",
		"é",
		"日本語123",
		"naïve-Café_№42",
		"\xffé\xfe",
		"a\x80b",
		strings.Repeat("a", 100000),
		strings.Repeat("7", 100000),
		strings.Repeat("Z", 65536),
		strings.Repeat("-", 4096),
		strings.Repeat("aB3.", 25000),
	}
	for _, s := range cases {
		got := AppendTokenize(nil, s)
		want := Tokenize(s)
		if !reflect.DeepEqual(got, want) {
			name := s
			if len(name) > 40 {
				name = name[:37] + "..."
			}
			t.Errorf("AppendTokenize(nil, %q) diverges from Tokenize (%d vs %d tokens)",
				name, len(got), len(want))
		}
	}
}

// TestAppendTokenizeReuse checks the buffer-reuse semantics: truncating and
// refilling one scratch buffer across many inputs produces the same tokens
// as fresh calls, and never grows the buffer when capacity suffices.
func TestAppendTokenizeReuse(t *testing.T) {
	inputs := []string{
		"(734) 645-8397", "", "CPT-00350", "aé9", strings.Repeat("x1", 200),
	}
	buf := make([]token.Token, 0, 8)
	for _, s := range inputs {
		buf = AppendTokenize(buf[:0], s)
		want := Tokenize(s)
		// want is nil for "", buf[:0] is an empty non-nil slice; compare
		// contents, not nil-ness.
		if len(buf) != len(want) {
			t.Fatalf("reuse: %q gave %d tokens, want %d", s, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Errorf("reuse: %q token %d = %v, want %v", s, i, buf[i], want[i])
			}
		}
	}
	// Appending after existing elements preserves the prefix.
	prefix := []token.Token{token.Lit("!")}
	out := AppendTokenize(prefix, "ab12")
	if out[0] != token.Lit("!") {
		t.Error("AppendTokenize clobbered existing elements before len(dst)")
	}
	if len(out) != 1+len(Tokenize("ab12")) {
		t.Errorf("appended %d tokens after prefix, want %d", len(out)-1, len(Tokenize("ab12")))
	}
}

// TestAppendTokenizeZeroAlloc verifies the whole point of the API: with a
// warm buffer of sufficient capacity, tokenizing allocates nothing.
func TestAppendTokenizeZeroAlloc(t *testing.T) {
	buf := make([]token.Token, 0, 32)
	s := "(734) 645-8397"
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendTokenize(buf[:0], s)
	})
	if allocs != 0 {
		t.Errorf("AppendTokenize with warm buffer allocates %.1f/op, want 0", allocs)
	}
}

// Property: AppendTokenize ≡ Tokenize over random byte strings, including
// bytes that are not valid UTF-8.
func TestAppendTokenizeQuick(t *testing.T) {
	f := func(s string) bool {
		return reflect.DeepEqual(AppendTokenize(nil, s), Tokenize(s))
	}
	cfg := &quick.Config{MaxCount: 500, Values: func(v []reflect.Value, r *rand.Rand) {
		n := r.Intn(200)
		b := make([]byte, n)
		r.Read(b)
		v[0] = reflect.ValueOf(string(b))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// BenchmarkTokenize measures the allocating entry point against the
// buffer-reusing one over a representative phone value; the allocs/op
// columns are the contract the profile hot path depends on.
func BenchmarkTokenize(b *testing.B) {
	const s = "(734) 645-8397"
	b.Run("Tokenize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Tokenize(s)
		}
	})
	b.Run("AppendTokenizeReuse", func(b *testing.B) {
		buf := make([]token.Token, 0, 32)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendTokenize(buf[:0], s)
		}
	})
}
