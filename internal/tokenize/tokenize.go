// Package tokenize implements the tokenization phase of CLX pattern
// profiling (paper §4.1): a string is split into maximal runs of characters
// of the most precise base class, with every non-alphanumeric character
// emitted as an individual literal token.
package tokenize

import (
	"unicode/utf8"

	"clx/internal/token"
)

// Tokenize splits s into the initial token sequence following the rules of
// §4.1:
//
//   - each non-alphanumeric character is an individual literal token;
//   - maximal runs of digits, lowercase, or uppercase letters become base
//     tokens of the most precise class (digit, lower, upper);
//   - quantifiers are always natural numbers (the run length).
//
// For example, "Bob123@gmail.com" tokenizes to
// [<U>, <L>2, <D>3, '@', <L>5, '.', <L>3]. The empty string yields nil.
//
// Non-ASCII characters become individual literal tokens carrying their
// exact bytes; an invalid UTF-8 byte becomes a one-byte literal, so the
// derived pattern always matches the source string byte for byte.
func Tokenize(s string) []token.Token {
	return AppendTokenize(nil, s)
}

// AppendTokenize appends the token sequence of s to dst and returns the
// extended slice, exactly as Tokenize but without allocating a fresh slice
// per call: when dst has sufficient capacity nothing is allocated, which is
// the profiling hot path's contract — one pooled buffer per worker,
// truncated (dst[:0]) and refilled per row. Tokens hold sub-strings of s,
// never copies, so appending allocates no byte data either.
func AppendTokenize(dst []token.Token, s string) []token.Token {
	for i := 0; i < len(s); {
		b := s[i]
		if b < 0x80 {
			c := asciiClass[b]
			if c == token.Literal {
				dst = append(dst, token.Lit(s[i:i+1]))
				i++
				continue
			}
			j := i + 1
			for j < len(s) && s[j] < 0x80 && asciiClass[s[j]] == c {
				j++
			}
			dst = append(dst, token.Base(c, j-i))
			i = j
			continue
		}
		_, size := utf8.DecodeRuneInString(s[i:])
		// A valid multi-byte rune keeps its bytes together; an invalid
		// byte (size 1) is kept verbatim.
		dst = append(dst, token.Lit(s[i:i+size]))
		i += size
	}
	return dst
}

// asciiClass maps every ASCII code point to its most precise base class
// (token.Literal for non-alphanumerics). classify sits on the per-byte hot
// path of Tokenize — one lookup per input byte across the whole column — so
// the class is precomputed instead of re-branching per rune.
var asciiClass = func() (tbl [128]token.Class) {
	for r := range tbl {
		switch {
		case r >= '0' && r <= '9':
			tbl[r] = token.Digit
		case r >= 'a' && r <= 'z':
			tbl[r] = token.Lower
		case r >= 'A' && r <= 'Z':
			tbl[r] = token.Upper
		default:
			tbl[r] = token.Literal
		}
	}
	return tbl
}()

// classify returns the most precise base class describing r, or
// token.Literal when r is not alphanumeric. ASCII resolves through the
// precomputed table. Non-ASCII runes are always literals: CLX base classes
// are ASCII-only (token.Class.Contains), so a rune the unicode tables deem
// a digit or letter must still be a literal for the derived pattern to
// match the source byte for byte. (A unicode.IsDigit/IsLetter fallback was
// considered and rejected for exactly that reason — it could only disagree
// with the matcher; see DESIGN.md §7.)
func classify(r rune) token.Class {
	if r >= 0 && r < 128 {
		return asciiClass[r]
	}
	return token.Literal
}
