package tokenize

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clx/internal/token"
)

func pat(toks ...token.Token) []token.Token { return toks }

func TestTokenizeExamples(t *testing.T) {
	tests := []struct {
		in   string
		want []token.Token
	}{
		// Paper Example 3.
		{"Bob123@gmail.com", pat(
			token.Base(token.Upper, 1), token.Base(token.Lower, 2),
			token.Base(token.Digit, 3), token.Lit("@"),
			token.Base(token.Lower, 5), token.Lit("."),
			token.Base(token.Lower, 3),
		)},
		{"(734) 645-8397", pat(
			token.Lit("("), token.Base(token.Digit, 3), token.Lit(")"),
			token.Lit(" "), token.Base(token.Digit, 3), token.Lit("-"),
			token.Base(token.Digit, 4),
		)},
		{"734.236.3466", pat(
			token.Base(token.Digit, 3), token.Lit("."),
			token.Base(token.Digit, 3), token.Lit("."),
			token.Base(token.Digit, 4),
		)},
		{"CPT-00350", pat(
			token.Base(token.Upper, 3), token.Lit("-"),
			token.Base(token.Digit, 5),
		)},
		{"N/A", pat(
			token.Base(token.Upper, 1), token.Lit("/"),
			token.Base(token.Upper, 1),
		)},
		{"", nil},
		{"   ", pat(token.Lit(" "), token.Lit(" "), token.Lit(" "))},
		{"a1A", pat(
			token.Base(token.Lower, 1), token.Base(token.Digit, 1),
			token.Base(token.Upper, 1),
		)},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeNonASCII(t *testing.T) {
	// Non-ASCII runes become individual literal tokens.
	got := Tokenize("aé")
	want := pat(token.Base(token.Lower, 1), token.Lit("é"))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize(aé) = %v, want %v", got, want)
	}
}

// Property: concatenating the matched content of the tokens reconstructs the
// input — i.e. tokenization is lossless on content length and order.
func TestTokenizeLossless(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		n := 0
		for _, tk := range toks {
			if l, ok := tk.FixedLen(); ok {
				n += l
			} else {
				return false // tokenizer never emits '+'
			}
		}
		return n == len(s)
	}
	cfg := &quick.Config{Values: func(v []reflect.Value, r *rand.Rand) {
		// ASCII-heavy strings exercise the class logic better than
		// arbitrary unicode.
		n := r.Intn(30)
		b := make([]byte, n)
		const alphabet = "abcXYZ019 -_.@/()"
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		v[0] = reflect.ValueOf(string(b))
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: adjacent base tokens never share a class (runs are maximal), and
// quantifiers are always natural numbers.
func TestTokenizeMaximalRuns(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for i, tk := range toks {
			if tk.Quant < 1 {
				return false
			}
			if i > 0 && !tk.IsLiteral() && toks[i-1].Class == tk.Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every emitted base token's content characters belong to the
// token's class, checked by re-deriving spans from fixed lengths.
func TestTokenizeClassesCorrect(t *testing.T) {
	check := func(s string) bool {
		toks := Tokenize(s)
		pos := 0
		for _, tk := range toks {
			l, _ := tk.FixedLen()
			seg := s[pos : pos+l]
			if tk.IsLiteral() {
				if seg != tk.Expand() {
					return false
				}
			} else {
				for _, r := range seg {
					if !tk.Class.Contains(r) {
						return false
					}
				}
			}
			pos += l
		}
		return true
	}
	for _, s := range []string{
		"Bob123@gmail.com", "(734) 645-8397", "N/A", "Dr. Eran Yahav",
		"[CPT-11536]", "155 Main St, San Diego, CA 92173",
	} {
		if !check(s) {
			t.Errorf("class mismatch tokenizing %q", s)
		}
	}
}

func TestTokenizeRunBoundaries(t *testing.T) {
	// Case transitions split runs; class transitions split runs; repeats
	// of the same punctuation stay separate tokens.
	tests := []struct {
		in   string
		want string
	}{
		{"aaBB", "<L>2<U>2"},
		{"a1b2", "<L><D><L><D>"},
		{"--", "'-''-'"},
		{"a  b", "<L>' '' '<L>"},
		{"A", "<U>"},
		{"2019years", "<D>4<L>5"},
	}
	for _, tc := range tests {
		var got string
		for _, tk := range Tokenize(tc.in) {
			got += tk.String()
		}
		if got != tc.want {
			t.Errorf("Tokenize(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeInvalidUTF8(t *testing.T) {
	// Each invalid byte is its own literal; valid multi-byte runes stay
	// whole.
	toks := Tokenize("\xffé\xfe")
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Lit != "\xff" || toks[1].Lit != "é" || toks[2].Lit != "\xfe" {
		t.Errorf("tokens = %q %q %q", toks[0].Lit, toks[1].Lit, toks[2].Lit)
	}
}
