package tokenize

import (
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"

	"clx/internal/token"
)

// classifyReference is the original per-rune switch that the asciiClass
// lookup table replaced; the tests below pin the table to it.
func classifyReference(r rune) token.Class {
	switch {
	case r >= '0' && r <= '9':
		return token.Digit
	case r >= 'a' && r <= 'z':
		return token.Lower
	case r >= 'A' && r <= 'Z':
		return token.Upper
	default:
		return token.Literal
	}
}

// tokenizeReference is Tokenize written against classifyReference, used to
// pin the table-driven tokenizer over real corpus data.
func tokenizeReference(s string) []token.Token {
	var out []token.Token
	for i := 0; i < len(s); {
		b := s[i]
		if b < 0x80 {
			c := classifyReference(rune(b))
			if c == token.Literal {
				out = append(out, token.Lit(s[i:i+1]))
				i++
				continue
			}
			j := i + 1
			for j < len(s) && s[j] < 0x80 && classifyReference(rune(s[j])) == c {
				j++
			}
			out = append(out, token.Base(c, j-i))
			i = j
			continue
		}
		_, size := utf8.DecodeRuneInString(s[i:])
		out = append(out, token.Lit(s[i:i+size]))
		i += size
	}
	return out
}

func TestClassifyTableMatchesSwitch(t *testing.T) {
	// Every ASCII code point, plus a spread of non-ASCII runes including
	// unicode digits/letters (which must stay literals) and the
	// replacement rune.
	for r := rune(0); r < 128; r++ {
		if got, want := classify(r), classifyReference(r); got != want {
			t.Errorf("classify(%q) = %v, want %v", r, got, want)
		}
	}
	for _, r := range []rune{'é', 'Ω', 'ß', '٣', '１', '五', 0x2603, utf8.RuneError, 0x10FFFF} {
		if got := classify(r); got != token.Literal {
			t.Errorf("classify(%q) = %v, want Literal (base classes are ASCII-only)", r, got)
		}
	}
}

// TestClassifyIdenticalOverTestdata tokenizes every file under the repo's
// testdata/ tree (fuzz corpus inputs included) with both the table-driven
// tokenizer and the reference switch implementation and requires identical
// token sequences.
func TestClassifyIdenticalOverTestdata(t *testing.T) {
	root := filepath.Join("..", "..", "testdata")
	var files int
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files++
		// The whole file content plus each line exercises both the run
		// coalescing and the per-byte classification.
		inputs := append([]string{string(raw)}, splitLines(string(raw))...)
		for _, s := range inputs {
			got, want := Tokenize(s), tokenizeReference(s)
			if len(got) != len(want) {
				t.Fatalf("%s: %d tokens, reference %d for %q", path, len(got), len(want), s)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: token %d = %v, reference %v for %q", path, i, got[i], want[i], s)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files == 0 {
		t.Fatal("no testdata files found — test is vacuous")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
