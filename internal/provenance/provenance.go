// Package provenance stamps benchmark reports with the facts needed to
// compare them across machines and commits: toolchain version, CPU
// budget, the git commit the binary was built from, and a UTC timestamp.
// Every BENCH_*.json the repo commits embeds one of these, so a reviewer
// reading two reports side by side can tell whether a delta is a code
// change, a machine change, or a stale file — without out-of-band notes.
package provenance

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Provenance is the per-report build/environment stamp.
type Provenance struct {
	// GoVersion is the toolchain that built the reporting binary
	// (runtime.Version()), e.g. "go1.24.0".
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform the report was produced on.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS is the CPU budget the run executed under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count — GOMAXPROCS may be
	// lower (taskset, GOMAXPROCS env), and throughput numbers only
	// compare like-for-like when both match.
	NumCPU int `json:"num_cpu"`
	// GitCommit is the hash the binary was built from: the module build
	// info's vcs.revision when the toolchain stamped one, otherwise the
	// working tree's HEAD via git. Empty when neither is available.
	GitCommit string `json:"git_commit,omitempty"`
	// GitDirty reports uncommitted changes at build/run time; a dirty
	// report is not attributable to GitCommit alone.
	GitDirty bool `json:"git_dirty,omitempty"`
	// GeneratedUTC is the report creation time in RFC 3339 UTC.
	GeneratedUTC string `json:"generated_utc"`
}

// Collect gathers the stamp for a report generated now. It never fails:
// fields that cannot be determined (no git binary, no VCS stamp) are
// left empty rather than aborting a benchmark that already ran.
func Collect() Provenance {
	p := Provenance{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		GeneratedUTC: time.Now().UTC().Format(time.RFC3339),
	}
	p.GitCommit, p.GitDirty = gitState()
	return p
}

// gitState resolves the commit hash and dirty flag, preferring the VCS
// stamp the Go toolchain embeds at build time (exact for the built
// binary) and falling back to asking git about the working tree (the
// `go run` path, which does not stamp VCS info).
func gitState() (commit string, dirty bool) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				commit = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if commit != "" {
		return commit, dirty
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	commit = strings.TrimSpace(string(out))
	status, err := exec.Command("git", "status", "--porcelain").Output()
	if err == nil && len(strings.TrimSpace(string(status))) > 0 {
		dirty = true
	}
	return commit, dirty
}
