package provenance

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestCollectFields(t *testing.T) {
	p := Collect()
	if p.GoVersion == "" || !strings.HasPrefix(p.GoVersion, "go") {
		t.Errorf("GoVersion = %q", p.GoVersion)
	}
	if p.GOOS != runtime.GOOS || p.GOARCH != runtime.GOARCH {
		t.Errorf("platform = %s/%s, want %s/%s", p.GOOS, p.GOARCH, runtime.GOOS, runtime.GOARCH)
	}
	if p.GOMAXPROCS < 1 || p.NumCPU < 1 {
		t.Errorf("GOMAXPROCS=%d NumCPU=%d, want >= 1", p.GOMAXPROCS, p.NumCPU)
	}
	ts, err := time.Parse(time.RFC3339, p.GeneratedUTC)
	if err != nil {
		t.Fatalf("GeneratedUTC %q does not parse as RFC 3339: %v", p.GeneratedUTC, err)
	}
	if ts.Location() != time.UTC {
		t.Errorf("GeneratedUTC %q is not UTC", p.GeneratedUTC)
	}
	// The repo under test is a git checkout, so one of the two resolution
	// paths must yield a commit.
	if p.GitCommit == "" {
		t.Log("GitCommit empty (no VCS stamp and no git binary?) — tolerated, but unexpected in CI")
	}
}

// TestJSONShape pins the embedded field names other tooling greps for.
func TestJSONShape(t *testing.T) {
	b, err := json.Marshal(Collect())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"go_version"`, `"goos"`, `"goarch"`, `"gomaxprocs"`, `"num_cpu"`, `"generated_utc"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("marshalled provenance missing %s: %s", key, b)
		}
	}
}
