package benchsuite

import (
	"strings"
	"testing"
)

func TestSuiteShape(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 47 {
		t.Fatalf("tasks = %d, want 47", len(tasks))
	}
	bySource := map[string]int{}
	for _, task := range tasks {
		bySource[task.Source]++
	}
	want := map[string]int{
		"SyGus": 27, "FlashFill": 10, "BlinkFill": 4, "PredProg": 3, "Prose": 3,
	}
	for src, n := range want {
		if bySource[src] != n {
			t.Errorf("%s tasks = %d, want %d", src, bySource[src], n)
		}
	}
}

func TestTasksValid(t *testing.T) {
	seen := map[string]bool{}
	for _, task := range Tasks() {
		if err := task.Validate(); err != nil {
			t.Errorf("%v", err)
		}
		if seen[task.Name] {
			t.Errorf("duplicate task name %s", task.Name)
		}
		seen[task.Name] = true
		if task.DataType == "" {
			t.Errorf("task %s has no data type", task.Name)
		}
	}
}

func TestFailureModesPresent(t *testing.T) {
	cond, unrep := 0, 0
	for _, task := range Tasks() {
		if task.NeedsConditional {
			cond++
		}
		if task.UnrepresentativeTarget {
			unrep++
		}
	}
	if cond != 1 {
		t.Errorf("conditional tasks = %d, want 1 (the Example-13 analogue)", cond)
	}
	if unrep != 4 {
		t.Errorf("unrepresentative-target tasks = %d, want 4 (§7.4)", unrep)
	}
}

func TestTable6Shape(t *testing.T) {
	rows := Table6()
	if len(rows) != 6 {
		t.Fatalf("Table6 rows = %d, want 6 (5 sources + overall)", len(rows))
	}
	if rows[0].Source != "SyGus" || rows[0].Tests != 27 {
		t.Errorf("row 0 = %+v, want SyGus with 27 tests", rows[0])
	}
	overall := rows[len(rows)-1]
	if overall.Source != "Overall" || overall.Tests != 47 {
		t.Errorf("overall = %+v", overall)
	}
	// Shape of Table 6: SyGus tasks are the largest on average, the
	// overall mean row count is dozens not thousands.
	if rows[0].AvgSize < 40 || rows[0].AvgSize > 110 {
		t.Errorf("SyGus avg size = %.1f, want ~63", rows[0].AvgSize)
	}
	if overall.AvgSize < 25 || overall.AvgSize > 90 {
		t.Errorf("overall avg size = %.1f, want ~44", overall.AvgSize)
	}
	if overall.AvgLen < 8 || overall.AvgLen > 25 {
		t.Errorf("overall avg len = %.1f, want ~13", overall.AvgLen)
	}
}

func TestExplainabilityTasks(t *testing.T) {
	tasks := ExplainabilityTasks()
	if tasks[0].Name != "ff-ex11-names" || tasks[1].Name != "pp-ex3-address" ||
		tasks[2].Name != "sygus-phone-10-long" {
		t.Fatalf("tasks = %v", []string{tasks[0].Name, tasks[1].Name, tasks[2].Name})
	}
	// Table 5 shape: task 1 and 2 have 10 rows, task 3 has 100.
	if tasks[0].Size() != 10 || tasks[1].Size() != 10 || tasks[2].Size() != 100 {
		t.Errorf("sizes = %d, %d, %d; want 10, 10, 100",
			tasks[0].Size(), tasks[1].Size(), tasks[2].Size())
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("bf-ex3-medical"); !ok {
		t.Error("bf-ex3-medical missing")
	}
	if _, ok := ByName("no-such-task"); ok {
		t.Error("ByName returned a phantom task")
	}
}

func TestGroundTruthSanity(t *testing.T) {
	task, _ := ByName("bf-ex3-medical")
	for i, in := range task.Inputs {
		out := task.Outputs[i]
		if !strings.HasPrefix(out, "[CPT-") || !strings.HasSuffix(out, "]") {
			t.Errorf("medical output %q malformed", out)
		}
		_ = in
	}
	task, _ = ByName("ff-ex10-dates")
	for i, in := range task.Inputs {
		if in == task.Outputs[i] {
			continue
		}
		// DD/MM/YYYY -> MM-DD-YYYY keeps the year.
		if in[6:10] != task.Outputs[i][6:10] {
			t.Errorf("date %q -> %q year mismatch", in, task.Outputs[i])
		}
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a := Tasks()
	b := Tasks()
	if &a[0] != &b[0] {
		t.Error("Tasks should be cached")
	}
}
