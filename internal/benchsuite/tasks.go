// The 47 benchmark task definitions (Table 6, Appendix D). Tasks are
// re-authored from the canonical examples of the source suites; rows are
// deterministic. Every task contains at least one row already in the target
// format, mirroring the paper's benchmark construction.
package benchsuite

import (
	"fmt"
	"strings"
	"sync"

	"clx/internal/dataset"
)

var (
	tasksOnce sync.Once
	allTasks  []Task
)

// Tasks returns the 47 benchmark tasks, built once.
func Tasks() []Task {
	tasksOnce.Do(func() { allTasks = buildTasks() })
	return allTasks
}

// pairTask assembles a task from aligned input/output rows.
func pairTask(name, source, dtype string, in, out []string) Task {
	if len(in) != len(out) {
		panic("benchsuite: misaligned rows in " + name)
	}
	return Task{Name: name, Source: source, DataType: dtype, Inputs: in, Outputs: out}
}

// mapped builds rows by applying f to each generated input.
func mapped(inputs []string, f func(string) string) (in, out []string) {
	out = make([]string, len(inputs))
	for i, s := range inputs {
		out[i] = f(s)
	}
	return inputs, out
}

// withIdentity appends rows already in the target format.
func withIdentity(in, out []string, idRows ...string) ([]string, []string) {
	for _, r := range idRows {
		in = append(in, r)
		out = append(out, r)
	}
	return in, out
}

// firstField returns the text before the first occurrence of sep.
func firstField(s, sep string) string {
	if i := strings.Index(s, sep); i >= 0 {
		return s[:i]
	}
	return s
}

// lastField returns the text after the last occurrence of sep.
func lastField(s, sep string) string {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[i+len(sep):]
	}
	return s
}

func buildTasks() []Task {
	var ts []Task
	add := func(t Task) {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		ts = append(ts, t)
	}

	for _, t := range sygusTasks() {
		add(t)
	}
	for _, t := range flashfillTasks() {
		add(t)
	}
	for _, t := range blinkfillTasks() {
		add(t)
	}
	for _, t := range predprogTasks() {
		add(t)
	}
	for _, t := range proseTasks() {
		add(t)
	}
	if len(ts) != 47 {
		panic(fmt.Sprintf("benchsuite: %d tasks, want 47", len(ts)))
	}
	return ts
}

func sygusTasks() []Task {
	var ts []Task

	// Phone scenarios.
	phones := func(n, k int, seed int64) ([]string, []string) {
		return dataset.Phones(n, k, seed)
	}

	{ // sygus-phone-1: extract the area code from heterogeneous formats.
		rows, want := phones(60, 3, 101)
		in, out := mapped(rows, func(s string) string { return s[:3] })
		for i := range out {
			out[i] = want[i][:3]
		}
		in, out = withIdentity(in, out, "415", "917", "734")
		ts = append(ts, pairTask("sygus-phone-1", "SyGus", "phone number", in, out))
	}
	{ // sygus-phone-2: extract the exchange (middle block) from two formats.
		rows, want := phones(60, 2, 102)
		in, out := mapped(rows, func(s string) string { return s })
		for i := range out {
			out[i] = want[i][4:7]
		}
		in, out = withIdentity(in, out, "645", "263", "422")
		ts = append(ts, pairTask("sygus-phone-2", "SyGus", "phone number", in, out))
	}
	{ // sygus-phone-3: normalize 4 formats to dashes.
		in, out := phones(63, 4, 103)
		ts = append(ts, pairTask("sygus-phone-3", "SyGus", "phone number", in, out))
	}
	{ // sygus-phone-4: mixed separator formats to dots. (The SyGus suite
		// also has strip-to-plain-digits tasks, but those require splitting
		// a token run, which UniFi's token-granularity model excludes by
		// construction — Appendix D's loop exclusion analogue.)
		rows, want := phones(63, 5, 104)
		out := make([]string, len(rows))
		for i := range rows {
			out[i] = strings.ReplaceAll(want[i], "-", ".")
		}
		ts = append(ts, pairTask("sygus-phone-4", "SyGus", "phone number", rows, out))
	}
	{ // sygus-phone-5: space-separated to dashes.
		rows, want := phones(60, 1, 105)
		in := make([]string, len(rows))
		for i := range rows {
			in[i] = strings.ReplaceAll(rows[i], "-", " ")
		}
		in, want = withIdentity(in, want, "555-010-2030")
		ts = append(ts, pairTask("sygus-phone-5", "SyGus", "phone number", in, want))
	}
	{ // sygus-phone-6: dots to dashes.
		rows, want := phones(60, 1, 106)
		in := make([]string, len(rows))
		for i := range rows {
			in[i] = strings.ReplaceAll(rows[i], "-", ".")
		}
		in, want = withIdentity(in, want, "555-010-2030", "777-888-9999")
		ts = append(ts, pairTask("sygus-phone-6", "SyGus", "phone number", in, want))
	}
	{ // sygus-phone-7: drop the "+1 " country prefix.
		rows, _ := phones(60, 1, 107)
		in := make([]string, len(rows))
		for i := range rows {
			in[i] = "+1 " + rows[i]
		}
		in, out := withIdentity(in, rows, "555-010-2030", "777-888-9999", "123-456-7890")
		ts = append(ts, pairTask("sygus-phone-7", "SyGus", "phone number", in, out))
	}
	{ // sygus-phone-10-long: "+NNN NNN-NNN-NNN" -> "+NNN (NNN) NNN-NNN";
		// 100 rows (Table 5, task 3).
		rows, _ := phones(96, 1, 110)
		in := make([]string, len(rows))
		out := make([]string, len(rows))
		for i, r := range rows {
			cc := fmt.Sprintf("%d", 100+i%80)
			in[i] = "+" + cc + " " + r[:3] + "-" + r[4:7] + "-" + r[8:11]
			out[i] = "+" + cc + " (" + r[:3] + ") " + r[4:7] + "-" + r[8:11]
		}
		in, out = withIdentity(in, out, "+106 (769) 858-438", "+129 (466) 131-309", "+144 (322) 290-414")
		ts = append(ts, pairTask("sygus-phone-10-long", "SyGus", "phone number", in, out))
	}

	// Name scenarios.
	nameRows := func(n int, seed int64) (first, last []string) {
		return dataset.NameParts(n, seed)
	}
	{ // sygus-name-combine-1: "First Last" (or "Dr. First Last") -> "F. Last".
		f, l := nameRows(60, 111)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			if i%4 == 3 {
				in[i] = "Dr. " + in[i]
			}
			out[i] = f[i][:1] + ". " + l[i]
		}
		in, out = withIdentity(in, out, "E. Yahav", "K. Fisher", "B. Gates")
		ts = append(ts, pairTask("sygus-name-combine-1", "SyGus", "human name", in, out))
	}
	{ // sygus-name-combine-2: "First Last" -> "Last, First".
		f, l := nameRows(60, 112)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			out[i] = l[i] + ", " + f[i]
		}
		in, out = withIdentity(in, out, "Yahav, Eran", "Fisher, Kate", "Gates, Bill")
		ts = append(ts, pairTask("sygus-name-combine-2", "SyGus", "human name", in, out))
	}
	{ // sygus-name-combine-3: "First Last" -> "F.L.".
		f, l := nameRows(60, 113)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			out[i] = f[i][:1] + "." + l[i][:1] + "."
		}
		in, out = withIdentity(in, out, "E.Y.", "K.F.", "B.G.")
		ts = append(ts, pairTask("sygus-name-combine-3", "SyGus", "human name", in, out))
	}
	{ // sygus-name-combine-4: "First Last" -> "Last, F.".
		f, l := nameRows(60, 114)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			out[i] = l[i] + ", " + f[i][:1] + "."
		}
		in, out = withIdentity(in, out, "Yahav, E.", "Fisher, K.", "Gates, B.")
		ts = append(ts, pairTask("sygus-name-combine-4", "SyGus", "human name", in, out))
	}
	{ // sygus-initials-middle: "First Middle Last" -> "F.M.L.".
		f, l := nameRows(60, 115)
		_, m := nameRows(60, 1150)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + m[i] + " " + l[i]
			out[i] = f[i][:1] + "." + m[i][:1] + "." + l[i][:1] + "."
		}
		in, out = withIdentity(in, out, "E.A.Y.", "K.B.F.", "B.C.G.")
		ts = append(ts, pairTask("sygus-initials-middle", "SyGus", "human name", in, out))
	}
	{ // sygus-lastname: with and without a middle initial.
		names := dataset.Names(60, 116)
		for i := range names {
			if i%3 == 2 {
				parts := strings.SplitN(names[i], " ", 2)
				names[i] = parts[0] + " " + string('A'+byte(i%26)) + " " + parts[1]
			}
		}
		in, out := mapped(names, func(s string) string { return lastField(s, " ") })
		in, out = withIdentity(in, out, "Yahav", "Fisher", "Gates")
		ts = append(ts, pairTask("sygus-lastname", "SyGus", "human name", in, out))
	}
	{ // sygus-firstname: with and without an honorific.
		names := dataset.Names(60, 117)
		for i := range names {
			if i%3 == 2 {
				names[i] = "Dr. " + names[i]
			}
		}
		in, out := mapped(names, func(s string) string {
			s = strings.TrimPrefix(s, "Dr. ")
			return firstField(s, " ")
		})
		in, out = withIdentity(in, out, "Eran", "Kate", "Bill")
		ts = append(ts, pairTask("sygus-firstname", "SyGus", "human name", in, out))
	}
	{ // sygus-name-hyphen: hyphenated last names missing from the target
		// examples — the "McMillan"-style representativeness failure.
		f, l := nameRows(57, 118)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			out[i] = l[i] + ", " + f[i][:1] + "."
		}
		in = append(in, "Mary Smith-Jones", "Luis Diaz-Perez", "Ana Cruz-Lopez")
		out = append(out, "Smith-Jones, M.", "Diaz-Perez, L.", "Cruz-Lopez, A.")
		in, out = withIdentity(in, out, "Yahav, E.", "Fisher, K.", "Gates, B.")
		t := pairTask("sygus-name-hyphen", "SyGus", "human name", in, out)
		t.UnrepresentativeTarget = true
		ts = append(ts, t)
	}
	{ // sygus-dr-name: "First Last" -> "Dr. Last".
		names := dataset.Names(60, 119)
		in, out := mapped(names, func(s string) string { return "Dr. " + lastField(s, " ") })
		in, out = withIdentity(in, out, "Dr. Yahav", "Dr. Fisher", "Dr. Gates")
		ts = append(ts, pairTask("sygus-dr-name", "SyGus", "human name", in, out))
	}

	// University scenarios.
	{ // sygus-univ-1: extract the institution city; long and abbreviated
		// university prefixes.
		rows := dataset.Universities(60, 120)
		for i := range rows {
			if i%3 == 2 {
				rows[i] = "Univ. of" + strings.TrimPrefix(rows[i], "University of")
			}
		}
		in, out := mapped(rows, func(s string) string {
			c := firstField(s, ",")
			c = strings.TrimPrefix(c, "University of ")
			c = strings.TrimPrefix(c, "Univ. of ")
			return c
		})
		in, out = withIdentity(in, out, "Austin", "Boston", "San Diego")
		ts = append(ts, pairTask("sygus-univ-1", "SyGus", "university name", in, out))
	}
	{ // sygus-univ-2: extract the state.
		rows := dataset.Universities(60, 121)
		in, out := mapped(rows, func(s string) string { return lastField(s, ", ") })
		in, out = withIdentity(in, out, "TX", "MA", "CA")
		ts = append(ts, pairTask("sygus-univ-2", "SyGus", "university name", in, out))
	}
	{ // sygus-univ-3: "University of X, ST" -> "X, ST".
		rows := dataset.Universities(60, 122)
		in, out := mapped(rows, func(s string) string {
			return strings.TrimPrefix(s, "University of ")
		})
		in, out = withIdentity(in, out, "Austin, TX", "Boston, MA", "San Diego, CA")
		ts = append(ts, pairTask("sygus-univ-3", "SyGus", "university name", in, out))
	}

	// Car model scenarios.
	{ // sygus-car-1: extract the make; dash- and colon-separated ids.
		rows := dataset.CarModels(60, 123)
		for i := range rows {
			if i%3 == 2 {
				rows[i] = strings.ReplaceAll(rows[i], "-", ":")
			}
		}
		in, out := mapped(rows, func(s string) string {
			return firstField(firstField(s, "-"), ":")
		})
		in, out = withIdentity(in, out, "BMW", "AUDI", "KIA")
		ts = append(ts, pairTask("sygus-car-1", "SyGus", "car model id", in, out))
	}
	{ // sygus-car-2: extract the model year; dash- and colon-separated ids.
		rows := dataset.CarModels(60, 124)
		for i := range rows {
			if i%3 == 2 {
				rows[i] = strings.ReplaceAll(rows[i], "-", ":")
			}
		}
		in, out := mapped(rows, func(s string) string {
			return lastField(lastField(s, "-"), ":")
		})
		in, out = withIdentity(in, out, "2016", "2020", "2009")
		ts = append(ts, pairTask("sygus-car-2", "SyGus", "car model id", in, out))
	}
	{ // sygus-car-3: "MAKE-trim-year" -> "MAKE trim".
		rows := dataset.CarModels(60, 125)
		in, out := mapped(rows, func(s string) string {
			i := strings.Index(s, "-")
			j := strings.LastIndex(s, "-")
			return s[:i] + " " + s[i+1:j]
		})
		in, out = withIdentity(in, out, "BMW 320i", "VW golf", "KIA ev6")
		ts = append(ts, pairTask("sygus-car-3", "SyGus", "car model id", in, out))
	}

	// Address scenarios.
	{ // sygus-address-1: extract the city.
		rows := dataset.Addresses(60, 126)
		in, out := mapped(rows, dataset.AddressCity)
		in, out = withIdentity(in, out, "Austin", "Denver", "San Diego")
		ts = append(ts, pairTask("sygus-address-1", "SyGus", "address", in, out))
	}
	{ // sygus-address-2: extract the zip code; full and short addresses.
		rows := dataset.Addresses(60, 127)
		for i := range rows {
			if i%3 == 2 {
				rows[i] = lastField(rows[i], ", ") // "ST zip" only
			}
		}
		in, out := mapped(rows, func(s string) string { return lastField(s, " ") })
		in, out = withIdentity(in, out, "92173", "98052", "60606")
		ts = append(ts, pairTask("sygus-address-2", "SyGus", "address", in, out))
	}
	{ // sygus-address-3: extract the state.
		rows := dataset.Addresses(60, 128)
		in, out := mapped(rows, func(s string) string {
			f := lastField(s, ", ")
			return firstField(f, " ")
		})
		in, out = withIdentity(in, out, "CA", "WA", "IL")
		ts = append(ts, pairTask("sygus-address-3", "SyGus", "address", in, out))
	}
	{ // sygus-bikes: "Speedster 29er 2016" -> "Speedster (2016)".
		models := []string{"Speedster", "Roadster", "Tracker", "Climber", "Cruiser", "Racer"}
		sizes := []string{"29er", "26er", "275er"}
		var in, out []string
		for i := 0; i < 60; i++ {
			m := models[i%len(models)]
			y := 2008 + i%12
			row := fmt.Sprintf("%s %s %d", m, sizes[i%len(sizes)], y)
			if i%4 == 3 {
				row = strings.ReplaceAll(row, " ", "-")
			}
			in = append(in, row)
			out = append(out, fmt.Sprintf("%s (%d)", m, y))
		}
		in, out = withIdentity(in, out, "Speedster (2016)", "Racer (2011)")
		ts = append(ts, pairTask("sygus-bikes", "SyGus", "car model id", in, out))
	}
	// Real columns carry noise records that must be left untouched (§6.1's
	// "N/A" example); every SyGus-style task gets one.
	for i := range ts {
		ts[i].Inputs = append(ts[i].Inputs, "N/A")
		ts[i].Outputs = append(ts[i].Outputs, "N/A")
	}
	return ts
}

func flashfillTasks() []Task {
	var ts []Task
	{ // ff-ex1-log: extract the page name from a log entry.
		rows := dataset.LogLines(8, 201)
		in, out := mapped(rows, func(s string) string {
			p := lastField(firstField(s, ".html"), "/")
			return p
		})
		in, out = withIdentity(in, out, "idx", "cart")
		ts = append(ts, pairTask("ff-ex1-log", "FlashFill", "log entry", in, out))
	}
	{ // ff-ex2-dir: path minus the file name.
		in := []string{
			"src/lib/util/index.html",
			"src/lib/main/page.html",
			"docs/api/spec.html",
			"docs/ref/list.html",
			"web/img/pic.html",
			"app/ui/view.html",
			"app/db/conn.html",
			"etc/conf/base.html",
		}
		_, out := mapped(in, func(s string) string {
			return s[:strings.LastIndex(s, "/")+1]
		})
		in, out = withIdentity(in, out, "src/lib/util/", "docs/api/")
		ts = append(ts, pairTask("ff-ex2-dir", "FlashFill", "file directory", in, out))
	}
	{ // ff-ex3-quantity: extract the number.
		items := []string{"Alpha", "Beta", "Gamma", "Delta", "Sigma", "Omega", "Kappa", "Theta"}
		var in, out []string
		for i, it := range items {
			q := 5 + i*7
			in = append(in, fmt.Sprintf("%s %d units", it, q))
			out = append(out, fmt.Sprintf("%d", q))
		}
		in, out = withIdentity(in, out, "10", "47")
		ts = append(ts, pairTask("ff-ex3-quantity", "FlashFill", "product name", in, out))
	}
	{ // ff-ex7-mixed: single- or two-word names, keep the last word.
		in := []string{
			"Juan Gonzalez", "Mary Li", "Greta Svensson", "Omar Haddad",
			"Cher", "Adele", "Ravi Gupta", "Bono", "Tessa Hale", "Yo Ma",
		}
		_, out := mapped(in, func(s string) string { return lastField(s, " ") })
		ts = append(ts, pairTask("ff-ex7-mixed", "FlashFill", "human name", in, out))
	}
	{ // ff-ex8-phone: normalize three phone formats.
		rows, want := dataset.Phones(10, 3, 208)
		ts = append(ts, pairTask("ff-ex8-phone", "FlashFill", "phone number", rows, want))
	}
	{ // ff-ex9-names: the paper's Example 6 (Table 4) plus similar rows.
		in := []string{
			"Dr. Eran Yahav", "Fisher, K.", "Bill Gates, Sr.", "Oege de Moor",
			"Dr. Ada Byron", "Dr. Rosa Cole", "Tom Ford, Jr.", "Ana de Luca",
			"Miller, B.", "Keller, T.",
		}
		out := []string{
			"Yahav, E.", "Fisher, K.", "Gates, B.", "Moor, O.",
			"Byron, A.", "Cole, R.", "Ford, T.", "Luca, A.",
			"Miller, B.", "Keller, T.",
		}
		ts = append(ts, pairTask("ff-ex9-names", "FlashFill", "human name", in, out))
	}
	{ // ff-ex10-dates: DD/MM/YYYY -> MM-DD-YYYY.
		rows, want := dataset.Dates(9, 210)
		in, out := withIdentity(rows, want, "12-31-2019")
		ts = append(ts, pairTask("ff-ex10-dates", "FlashFill", "date", in, out))
	}
	{ // ff-ex11-names: Table 5 task 1 — reorder to "Last, First [Middle]".
		in := []string{
			"Barack Obama", "Ada Lovelace", "Grace Hopper",
			"Alan M Turing", "Kurt F Godel",
			"Obama, Barack", "Curie, Marie",
			"Noether, Emmy A", "Emmy Noether", "Tim Lee",
		}
		out := []string{
			"Obama, Barack", "Lovelace, Ada", "Hopper, Grace",
			"Turing, Alan M", "Godel, Kurt F",
			"Obama, Barack", "Curie, Marie",
			"Noether, Emmy A", "Noether, Emmy", "Lee, Tim",
		}
		ts = append(ts, pairTask("ff-ex11-names", "FlashFill", "human name", in, out))
	}
	{ // ff-ex12-product: file base name before the extension.
		rows := dataset.ProductIDs(8, 212)
		var in, out []string
		for _, r := range rows {
			in = append(in, r+".MP4")
			out = append(out, r)
		}
		in, out = withIdentity(in, out, "GOPR6231", "SONY0042")
		ts = append(ts, pairTask("ff-ex12-product", "FlashFill", "product name", in, out))
	}
	{ // ff-ex13-picture: advanced content conditional (same pattern, output
		// depends on a keyword) — inexpressible in UniFi (§7.4).
		var in, out []string
		for i := 0; i < 4; i++ {
			in = append(in, fmt.Sprintf("picture %03d", i+1))
			out = append(out, fmt.Sprintf("PIC-%03d", i+1))
			in = append(in, fmt.Sprintf("invoice %03d", i+1))
			out = append(out, fmt.Sprintf("DOC-%03d", i+1))
		}
		in, out = withIdentity(in, out, "PIC-777", "DOC-888")
		t := pairTask("ff-ex13-picture", "FlashFill", "product name", in, out)
		t.NeedsConditional = true
		ts = append(ts, t)
	}
	return ts
}

func blinkfillTasks() []Task {
	var ts []Task
	{ // bf-ex3-medical: the paper's Example 5 (Table 3) plus similar rows.
		in := []string{
			"CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115",
			"CPT-20110", "[CPT-33417", "CPT909", "[CPT-51200]",
			"CPT-70553", "[CPT-80061", "CPT775",
		}
		out := []string{
			"[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]",
			"[CPT-20110]", "[CPT-33417]", "[CPT-909]", "[CPT-51200]",
			"[CPT-70553]", "[CPT-80061]", "[CPT-775]",
		}
		ts = append(ts, pairTask("bf-ex3-medical", "BlinkFill", "product id", in, out))
	}
	{ // bf-ex1-cities: "City, Country" -> "Country".
		in := []string{
			"Mumbai, India", "Paris, France", "Lima, Peru", "Oslo, Norway",
			"Cairo, Egypt", "Quito, Ecuador", "Seoul, Korea", "Lagos, Nigeria",
			"Kyoto, Japan", "Milan, Italy",
		}
		_, out := mapped(in, func(s string) string { return lastField(s, ", ") })
		in, out = withIdentity(in, out, "India")
		ts = append(ts, pairTask("bf-ex1-cities", "BlinkFill", "city name and country", in, out))
	}
	{ // bf-ex2-titles: strip honorifics; the lowercase-particle rows have no
		// representative target example (representativeness failure).
		in := []string{
			"Mr. John Smith", "Ms. Jane Roe", "Mr. Omar Sy", "Ms. Amy Tan",
			"Dr. Sam Wu", "Mr. Leo Cruz", "Ms. Ada Diaz", "Dr. Max Koch",
			"Ludwig von Mises", "Lars de Wit",
		}
		out := []string{
			"John Smith", "Jane Roe", "Omar Sy", "Amy Tan",
			"Sam Wu", "Leo Cruz", "Ada Diaz", "Max Koch",
			"von Mises", "de Wit",
		}
		in, out = withIdentity(in, out, "John Smith")
		t := pairTask("bf-ex2-titles", "BlinkFill", "human name", in, out)
		t.UnrepresentativeTarget = true
		ts = append(ts, t)
	}
	{ // bf-ex4-product: extract the numeric part of a product id.
		rows := dataset.ProductIDs(10, 304)
		in, out := mapped(rows, func(s string) string { return s[4:] })
		in, out = withIdentity(in, out, "6231", "0042")
		ts = append(ts, pairTask("bf-ex4-product", "BlinkFill", "product id", in, out))
	}
	return ts
}

func predprogTasks() []Task {
	var ts []Task
	{ // pp-ex1-names: "First Last" -> "Last F.".
		f, l := dataset.NameParts(8, 401)
		in := make([]string, len(f))
		out := make([]string, len(f))
		for i := range f {
			in[i] = f[i] + " " + l[i]
			out[i] = l[i] + " " + f[i][:1] + "."
		}
		in, out = withIdentity(in, out, "Yahav E.", "Fisher K.")
		ts = append(ts, pairTask("pp-ex1-names", "PredProg", "human name", in, out))
	}
	{ // pp-ex2-mcmillan: the paper's §7.4 failure example — "McMillan" has
		// no representative row in the target format.
		in := []string{
			"John Doe", "Amy Poe", "Max Ray", "Ben Cho", "Kim Day",
			"Ada Fox", "Rob McMillan", "Liz McCarthy",
		}
		out := []string{
			"Doe, J.", "Poe, A.", "Ray, M.", "Cho, B.", "Day, K.",
			"Fox, A.", "McMillan, R.", "McCarthy, L.",
		}
		in, out = withIdentity(in, out, "Smith, J.", "Jones, K.")
		t := pairTask("pp-ex2-mcmillan", "PredProg", "human name", in, out)
		t.UnrepresentativeTarget = true
		ts = append(ts, t)
	}
	{ // pp-ex3-address: Table 5 task 2 — extract the city from
		// heterogeneous addresses (App C questions 4–6).
		in := []string{
			"155 Main St, San Diego, CA 92173",
			"14820 NE 36th Street, Redmond, WA 98052",
			"12 South Michigan Ave, Chicago",
			"870 Market St, San Francisco, CA 94102",
			"3600 Forbes Ave, Pittsburgh, PA 15213",
			"77 West Wacker Dr, Chicago",
			"500 Oak Rd, Denver, CO 80014",
			"9 Elm Ct, Boston, MA 02108",
		}
		out := []string{
			"San Diego", "Redmond", "Chicago", "San Francisco",
			"Pittsburgh", "Chicago", "Denver", "Boston",
		}
		in, out = withIdentity(in, out, "Denver", "San Jose")
		ts = append(ts, pairTask("pp-ex3-address", "PredProg", "address", in, out))
	}
	return ts
}

func proseTasks() []Task {
	var ts []Task
	{ // prose-ex1-country: "Country NN" -> "NN (Country)".
		countries := []string{
			"France", "Spain", "Italy", "Norway", "Peru", "Chile",
			"Kenya", "Ghana", "Japan", "Korea", "India", "Egypt",
		}
		var in, out []string
		for i := 0; i < 36; i++ {
			c := countries[i%len(countries)]
			code := 20 + i*3%80
			in = append(in, fmt.Sprintf("%s %d", c, code))
			out = append(out, fmt.Sprintf("%d (%s)", code, c))
		}
		in, out = withIdentity(in, out, "33 (France)", "81 (Japan)", "51 (Peru)")
		ts = append(ts, pairTask("prose-ex1-country", "Prose", "country and number", in, out))
	}
	{ // prose-ex2-email: local part to words; three-segment local parts
		// have no representative target example (representativeness
		// failure).
		f, l := dataset.NameParts(33, 502)
		var in, out []string
		for i := range f {
			in = append(in, strings.ToLower(f[i])+"."+strings.ToLower(l[i])+"@acme.com")
			out = append(out, strings.ToLower(f[i])+" "+strings.ToLower(l[i]))
		}
		in = append(in, "mary.ann.lee@acme.com", "jo.el.kim@acme.com")
		out = append(out, "mary ann lee", "jo el kim")
		in, out = withIdentity(in, out, "eran yahav", "kate fisher", "bill gates")
		t := pairTask("prose-ex2-email", "Prose", "email", in, out)
		t.UnrepresentativeTarget = true
		ts = append(ts, t)
	}
	{ // prose-ex3-popl13: affiliations between commas — names, orgs and
		// countries share no distinctive syntax, so CLX needs several
		// target selections and repairs (App E's costly case).
		people := []string{
			"John Smith, INRIA, France",
			"Ada Byron, MIT, USA",
			"Tom Ford, Univ. of Madison, USA",
			"Kim Day, ETH Zurich, Suisse",
			"Bob Roe, CMU, USA",
			"Ana Cruz, Univ. of Boston, USA",
			"Max Koch, ETH Zurich, Suisse",
			"Joe Poe, IBM, USA",
			"Amy Tan, Univ. of Austin, USA",
			"Rob Fox, KTH, Sweden",
			"Sam Wu, NEC Labs, Japan",
			"Liz Ray, SAP, Germany",
		}
		var in, out []string
		for i := 0; i < 33; i++ {
			row := people[i%len(people)]
			parts := strings.Split(row, ", ")
			in = append(in, row)
			out = append(out, parts[1])
		}
		in, out = withIdentity(in, out, "INRIA", "Univ. of Madison", "ETH Zurich", "NEC Labs")
		ts = append(ts, pairTask("prose-ex3-popl13", "Prose", "human name and affiliation", in, out))
	}
	return ts
}
