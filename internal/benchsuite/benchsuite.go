// Package benchsuite defines the 47-task data pattern transformation
// benchmark of paper §7.4 (Table 6, Appendix D): 27 tasks in the style of
// the SyGus 2017 PBE track, 10 from the FlashFill paper, 4 from BlinkFill,
// 3 from PredProg and 3 from Microsoft PROSE. Tasks are re-authored from
// the canonical examples of those sources with deterministic generated rows
// at the sizes Table 6 reports (see DESIGN.md, substitutions).
//
// Following Appendix D, every task's input contains at least one record
// already in the target format (the CLX prototype requires it), loop tasks
// are excluded, and the suite deliberately contains one task requiring an
// advanced content conditional plus four tasks whose target-format rows are
// not representative enough — the failure modes §7.4 reports.
package benchsuite

import (
	"fmt"
	"sort"
)

// Task is one benchmark test case.
type Task struct {
	// Name identifies the task, e.g. "sygus-phone-3".
	Name string
	// Source is the origin suite: "SyGus", "FlashFill", "BlinkFill",
	// "PredProg" or "Prose".
	Source string
	// DataType describes the rows for Table 5/6, e.g. "phone number".
	DataType string
	// Inputs are the raw rows; Outputs the ground-truth transformations.
	// Rows where Inputs[i] == Outputs[i] are already in the target format.
	Inputs, Outputs []string
	// NeedsConditional marks the advanced-content-conditional task that
	// UniFi cannot express (§7.4, FlashFill "Example 13").
	NeedsConditional bool
	// UnrepresentativeTarget marks tasks whose target-format rows miss a
	// structural variant needed by some input (§7.4: the "McMillan"
	// failure mode).
	UnrepresentativeTarget bool
}

// Size returns the number of rows.
func (t Task) Size() int { return len(t.Inputs) }

// AvgLen returns the mean input length.
func (t Task) AvgLen() float64 {
	if len(t.Inputs) == 0 {
		return 0
	}
	total := 0
	for _, s := range t.Inputs {
		total += len(s)
	}
	return float64(total) / float64(len(t.Inputs))
}

// MaxLen returns the maximum input length.
func (t Task) MaxLen() int {
	m := 0
	for _, s := range t.Inputs {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// Validate checks the task's internal consistency: aligned rows and at
// least one row already in target format.
func (t Task) Validate() error {
	if len(t.Inputs) == 0 {
		return fmt.Errorf("benchsuite: task %s has no rows", t.Name)
	}
	if len(t.Inputs) != len(t.Outputs) {
		return fmt.Errorf("benchsuite: task %s has %d inputs but %d outputs",
			t.Name, len(t.Inputs), len(t.Outputs))
	}
	for i := range t.Inputs {
		if t.Inputs[i] == t.Outputs[i] {
			return nil
		}
	}
	return fmt.Errorf("benchsuite: task %s has no row already in target format", t.Name)
}

// ByName returns the named task.
func ByName(name string) (Task, bool) {
	for _, t := range Tasks() {
		if t.Name == name {
			return t, true
		}
	}
	return Task{}, false
}

// SourceStats is one row of Table 6.
type SourceStats struct {
	Source  string
	Tests   int
	AvgSize float64
	AvgLen  float64
	MaxLen  int
}

// Table6 computes the benchmark statistics of Table 6, one row per source
// plus an "Overall" row.
func Table6() []SourceStats {
	tasks := Tasks()
	agg := make(map[string]*SourceStats)
	var order []string
	for _, t := range tasks {
		s := agg[t.Source]
		if s == nil {
			s = &SourceStats{Source: t.Source}
			agg[t.Source] = s
			order = append(order, t.Source)
		}
		s.Tests++
		s.AvgSize += float64(t.Size())
		s.AvgLen += t.AvgLen()
		if m := t.MaxLen(); m > s.MaxLen {
			s.MaxLen = m
		}
	}
	sort.Slice(order, func(a, b int) bool { return agg[order[a]].Tests > agg[order[b]].Tests })
	out := make([]SourceStats, 0, len(order)+1)
	overall := SourceStats{Source: "Overall"}
	for _, src := range order {
		s := agg[src]
		overall.Tests += s.Tests
		overall.AvgSize += s.AvgSize
		overall.AvgLen += s.AvgLen
		if s.MaxLen > overall.MaxLen {
			overall.MaxLen = s.MaxLen
		}
		s.AvgSize /= float64(s.Tests)
		s.AvgLen /= float64(s.Tests)
		out = append(out, *s)
	}
	overall.AvgSize /= float64(overall.Tests)
	overall.AvgLen /= float64(overall.Tests)
	out = append(out, overall)
	return out
}

// ExplainabilityTasks returns the three Table 5 tasks used by the §7.3
// comprehension study: FlashFill Example 11 (task 1), PredProg Example 3
// (task 2), and SyGus "phone-10-long" (task 3).
func ExplainabilityTasks() [3]Task {
	t1, ok1 := ByName("ff-ex11-names")
	t2, ok2 := ByName("pp-ex3-address")
	t3, ok3 := ByName("sygus-phone-10-long")
	if !ok1 || !ok2 || !ok3 {
		panic("benchsuite: explainability tasks missing")
	}
	return [3]Task{t1, t2, t3}
}
