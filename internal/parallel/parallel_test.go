package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d", n, got)
		}
	}
}

func TestEffectiveCapsAtGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	if got := Effective(1); got != 1 {
		t.Errorf("Effective(1) = %d, want 1", got)
	}
	if got := Effective(8); got != 2 {
		t.Errorf("Effective(8) = %d at GOMAXPROCS 2, want 2", got)
	}
	// Auto resolution (0) is GOMAXPROCS, which is never above the cap.
	if got := Effective(0); got != 2 {
		t.Errorf("Effective(0) = %d at GOMAXPROCS 2, want 2", got)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8, 100} {
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 101} {
			chunks := Chunks(workers, n)
			next := 0
			for _, ch := range chunks {
				if ch[0] != next {
					t.Fatalf("Chunks(%d,%d): gap/overlap at %v, expected start %d", workers, n, ch, next)
				}
				if ch[1] <= ch[0] {
					t.Fatalf("Chunks(%d,%d): empty or inverted chunk %v", workers, n, ch)
				}
				next = ch[1]
			}
			if next != n {
				t.Fatalf("Chunks(%d,%d): covered [0,%d), want [0,%d)", workers, n, next, n)
			}
			if len(chunks) > workers && workers >= 1 {
				t.Fatalf("Chunks(%d,%d): %d chunks exceeds worker count", workers, n, len(chunks))
			}
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 1000
		var visits [n]int32
		For(workers, n, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -5, func(int) { called = true })
	if called {
		t.Error("For called fn for empty range")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 513)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 3, 8} {
		out := Map(workers, in, func(v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if Map(4, nil, func(v int) int { return v }) != nil {
		t.Error("Map(nil) should be nil")
	}
}

func TestGatherMatchesSerialScan(t *testing.T) {
	// Emit every third index; the gathered list must equal the serial scan
	// regardless of worker count.
	const n = 1001
	var want []int
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			want = append(want, i)
		}
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got := Gather(workers, n, func(lo, hi int, emit func(int)) {
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					emit(i)
				}
			}
		})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d values, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestGatherEmpty(t *testing.T) {
	if got := Gather(4, 0, func(lo, hi int, emit func(int)) { emit(1) }); got != nil {
		t.Errorf("Gather over empty range = %v, want nil", got)
	}
}

// Stream must deliver results in admission order for every worker count,
// even when per-job latency is wildly uneven.
func TestStreamOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 200
		src := 0
		next := func() (int, bool, error) {
			if src == n {
				return 0, false, nil
			}
			src++
			return src - 1, true, nil
		}
		fn := func(j int) int {
			if j%7 == 0 { // stagger: early jobs finish late
				for i := 0; i < 10000; i++ {
					_ = i * i
				}
			}
			return j * 2
		}
		var got []int
		emit := func(r int) error { got = append(got, r); return nil }
		if err := Stream(workers, 0, next, fn, emit); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

// At most inFlight jobs may be admitted and unemitted.
func TestStreamBoundedInFlight(t *testing.T) {
	const inFlight = 3
	var cur, peak atomic.Int64
	src := 0
	next := func() (int, bool, error) {
		if src == 100 {
			return 0, false, nil
		}
		src++
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return src, true, nil
	}
	emit := func(r int) error { cur.Add(-1); return nil }
	if err := Stream(4, inFlight, next, func(j int) int { return j }, emit); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > inFlight {
		t.Fatalf("peak in-flight %d exceeds bound %d", p, inFlight)
	}
}

// A source error stops admission but still emits every admitted job's
// result, in order, before surfacing.
func TestStreamSourceError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		src := 0
		next := func() (int, bool, error) {
			if src == 10 {
				return 0, false, errBoom
			}
			src++
			return src - 1, true, nil
		}
		var got []int
		err := Stream(workers, 0, next, func(j int) int { return j }, func(r int) error {
			got = append(got, r)
			return nil
		})
		if err != errBoom {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: emitted %d results, want all 10 admitted", workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out of order at %d", workers, i)
			}
		}
	}
}

// An emit error cancels the stream: admission stops promptly, no further
// emits happen, and the emit error wins.
func TestStreamEmitErrorCancels(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var admitted atomic.Int64
		next := func() (int, bool, error) {
			admitted.Add(1)
			return 1, true, nil // endless source
		}
		emits := 0
		err := Stream(workers, 4, next, func(j int) int { return j }, func(r int) error {
			emits++
			if emits == 5 {
				return errBoom
			}
			return nil
		})
		if err != errBoom {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if emits != 5 {
			t.Fatalf("workers=%d: emit called %d times after error", workers, emits)
		}
		// Admission is bounded by the window, not by the endless source.
		if a := admitted.Load(); a > 5+8+2 {
			t.Fatalf("workers=%d: %d jobs admitted after cancel", workers, a)
		}
	}
}

var errBoom = errors.New("boom")
