// Package parallel provides the bounded, deterministic fan-out primitives
// behind CLX's data-parallel hot paths (profiling, synthesis, transform).
//
// The three pipeline stages are data parallel in the obvious way — rows are
// independent during tokenization and transformation, and source-pattern
// syntheses are independent of one another — but CLX's contract with the
// user is stronger than "eventually the same answer": cluster order, plan
// ranking and flagged-row order are part of the verifiable interface, so
// every primitive here is order-preserving. Work is split into contiguous
// index chunks with boundaries that depend only on (workers, n); callers
// write results by index or reduce per-chunk partials in chunk order, which
// makes the parallel output byte-identical to the serial one for any worker
// count.
//
// Workers semantics, used uniformly across clx.Options, cluster.Options and
// synth.Options: 0 (or negative) means auto — one worker per available CPU
// (GOMAXPROCS); 1 reproduces the serial execution exactly, on the calling
// goroutine, with no goroutines spawned.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a configured worker count: n <= 0 selects one worker per
// available CPU (runtime.GOMAXPROCS), n >= 1 is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Effective resolves a configured worker count to the fan-out that can
// actually run in parallel: Workers(n) clamped to GOMAXPROCS. Requested
// workers beyond the scheduler's processor count add goroutine-switch and
// chunk-bookkeeping overhead without adding throughput (the same reasoning
// as Window's admission bound), so data-parallel stages that choose between
// a serial and a sharded execution plan size the plan off Effective, not
// off the raw request. Output determinism never depends on this value —
// it only picks how much real parallelism to provision.
func Effective(n int) int {
	w := Workers(n)
	if p := runtime.GOMAXPROCS(0); w > p {
		return p
	}
	return w
}

// Chunks splits the index range [0, n) into at most Workers(workers)
// contiguous half-open chunks of near-equal size, in ascending order.
// Boundaries depend only on the resolved worker count and n, so a reduction
// over per-chunk partials in chunk order is deterministic. n <= 0 yields no
// chunks; empty chunks are never returned.
func Chunks(workers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// ForChunks runs body over every chunk of [0, n), chunks concurrently. With
// a resolved worker count of 1 the single chunk runs on the calling
// goroutine — the serial path, no goroutines, no synchronization.
func ForChunks(workers, n int, body func(lo, hi int)) {
	chunks := Chunks(workers, n)
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		body(chunks[0][0], chunks[0][1])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for _, ch := range chunks {
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(ch[0], ch[1])
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines.
// fn must be safe to call concurrently for distinct indices and should
// communicate results by writing to its own index of a preallocated slice.
func For(workers, n int, fn func(i int)) {
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map applies fn to every element of in and returns the results in input
// order. fn must be safe to call concurrently.
func Map[T, R any](workers int, in []T, fn func(T) R) []R {
	if in == nil {
		return nil
	}
	out := make([]R, len(in))
	For(workers, len(in), func(i int) { out[i] = fn(in[i]) })
	return out
}

// Window resolves Stream's in-flight admission bound. An explicit
// inFlight >= 1 is honored as given; otherwise the window is twice the
// *effective* parallelism — min(Workers(workers), GOMAXPROCS) — rather
// than twice the requested worker count. Workers beyond the CPU count add
// no throughput, but a window sized off them admits chunks that can only
// queue, growing memory and scheduler churn: on a 1-CPU machine, 8
// requested workers used to get a 16-chunk window and ran measurably
// slower than serial on mid-size columns.
func Window(workers, inFlight int) int {
	if inFlight >= 1 {
		return inFlight
	}
	w := Workers(workers)
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	return 2 * w
}

// Stream pulls jobs from a sequential source, fans them across workers,
// and hands results to a sequential sink in source order — the bounded
// pipeline shape behind chunked bulk-apply, where the column does not fit
// in memory and only a window of chunks may be in flight at once.
//
// next is called from a single goroutine until it reports done or an
// error; fn runs concurrently over admitted jobs; emit is called on the
// caller's goroutine, once per admitted job, in admission order. At most
// inFlight jobs are admitted and not yet emitted (inFlight <= 0 selects
// the Window default; a positive bound below the worker count is honored
// — it just leaves workers idle), which is the memory bound:
// source and sink never drift further apart than inFlight jobs no matter
// how uneven the per-job work is.
//
// A next error stops admission; results of previously admitted jobs are
// still emitted, then the error is returned. An emit error cancels the
// stream: admission stops, in-flight work is drained without further
// emits, and the emit error is returned. With a resolved worker count of
// 1 the whole pipeline runs on the calling goroutine — no goroutines, no
// synchronization, the serial reference execution.
func Stream[J, R any](workers, inFlight int, next func() (J, bool, error), fn func(J) R, emit func(R) error) error {
	w := Workers(workers)
	if w == 1 {
		for {
			j, ok, err := next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := emit(fn(j)); err != nil {
				return err
			}
		}
	}
	inFlight = Window(workers, inFlight)

	type job struct {
		j   J
		res chan R
	}
	jobs := make(chan job)
	ring := make(chan chan R, inFlight) // admission-ordered result slots
	sem := make(chan struct{}, inFlight)
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for jb := range jobs {
				jb.res <- fn(jb.j) // res is buffered; never blocks
			}
		}()
	}

	// Dispatcher: owns next. A semaphore slot is held from before the
	// next call until the job's emit returns, so at no instant are more
	// than inFlight jobs admitted and unemitted. Writes srcErr strictly
	// before close(ring), so the emitter's read after draining is ordered.
	var srcErr error
	go func() {
		defer close(ring)
		defer close(jobs)
		for {
			select {
			case sem <- struct{}{}: // blocks while inFlight jobs are unemitted
			case <-stop:
				return
			}
			j, ok, err := next()
			if err != nil {
				srcErr = err
				return
			}
			if !ok {
				return
			}
			res := make(chan R, 1)
			ring <- res // capacity inFlight; the semaphore keeps it free
			select {
			case jobs <- job{j: j, res: res}:
			case <-stop:
				close(res) // admitted but never dispatched
				return
			}
		}
	}()

	var emitErr error
	for res := range ring {
		r, ok := <-res
		if !ok {
			break // cancelled before dispatch; nothing follows
		}
		if emitErr == nil {
			if err := emit(r); err != nil {
				emitErr = err
				cancel()
			}
		}
		<-sem
	}
	wg.Wait()
	if emitErr != nil {
		return emitErr
	}
	return srcErr
}

// Gather runs body over every chunk of [0, n), collecting each chunk's
// emitted values, and returns the concatenation in chunk order. It is the
// order-preserving way to build a result of unpredictable size — e.g. the
// flagged-row index list of a transform — under fan-out: emissions within a
// chunk keep their order, and chunks concatenate low to high, so the result
// is identical to a serial left-to-right scan.
func Gather[R any](workers, n int, body func(lo, hi int, emit func(R))) []R {
	chunks := Chunks(workers, n)
	if len(chunks) == 0 {
		return nil
	}
	parts := make([][]R, len(chunks))
	For(workers, len(chunks), func(ci int) {
		body(chunks[ci][0], chunks[ci][1], func(r R) {
			parts[ci] = append(parts[ci], r)
		})
	})
	var out []R
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
