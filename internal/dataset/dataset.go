// Package dataset generates the deterministic synthetic datasets used by the
// experiments. The paper's §7.2 study uses the phone-number column of the
// NYC OpenData "Times Square Food & Beverage Locations" set (331 messy
// rows); that data is reproduced here as a generator emitting the same six
// real-world formats in realistic proportions (see DESIGN.md,
// substitutions). Additional generators provide the sized inputs of the
// 47-task benchmark suite.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// PhoneFormat identifies one of the messy phone formats of Figures 1 and 3.
type PhoneFormat int

const (
	// PhoneDashes is "734-422-8073" — the §7.2 target format.
	PhoneDashes PhoneFormat = iota
	// PhoneParenSpace is "(734) 645-8397".
	PhoneParenSpace
	// PhoneParen is "(734)586-7252".
	PhoneParen
	// PhoneDots is "734.236.3466".
	PhoneDots
	// PhoneSpaces is "734 236 3466".
	PhoneSpaces
	// PhonePlus is "+1 734-236-3466" (the paper's motivating-example
	// format).
	PhonePlus
	// PhonePlain is "7342363466".
	PhonePlain
	numPhoneFormats
)

// NumPhoneFormats is the number of distinct phone formats available.
const NumPhoneFormats = int(numPhoneFormats)

// FormatPhone renders the ten digits d (d[0] is the leading area-code digit)
// in the given format.
func FormatPhone(f PhoneFormat, d [10]byte) string {
	s := make([]byte, 10)
	for i, v := range d {
		s[i] = '0' + v
	}
	a, b, c := string(s[0:3]), string(s[3:6]), string(s[6:10])
	switch f {
	case PhoneDashes:
		return a + "-" + b + "-" + c
	case PhoneParenSpace:
		return "(" + a + ") " + b + "-" + c
	case PhoneParen:
		return "(" + a + ")" + b + "-" + c
	case PhoneDots:
		return a + "." + b + "." + c
	case PhoneSpaces:
		return a + " " + b + " " + c
	case PhonePlus:
		return "+1 " + a + "-" + b + "-" + c
	default:
		return a + b + c
	}
}

// CanonicalPhone renders d in the study's target format <D>3-<D>3-<D>4.
func CanonicalPhone(d [10]byte) string { return FormatPhone(PhoneDashes, d) }

func randDigits(r *rand.Rand) [10]byte {
	var d [10]byte
	for i := range d {
		d[i] = byte(r.Intn(10))
	}
	if d[0] == 0 {
		d[0] = 2 + byte(r.Intn(8)) // area codes do not start with 0
	}
	return d
}

// Phones generates n phone numbers drawn from the first k formats, seeded
// deterministically. Rows cycle through the k formats so every format is
// present; the digits vary per row. The returned want slice holds the
// canonical (dash) rendering of each row.
func Phones(n, k int, seed int64) (rows, want []string) {
	if k < 1 {
		k = 1
	}
	if k > NumPhoneFormats {
		k = NumPhoneFormats
	}
	r := rand.New(rand.NewSource(seed))
	rows = make([]string, n)
	want = make([]string, n)
	for i := 0; i < n; i++ {
		d := randDigits(r)
		f := PhoneFormat(i % k)
		rows[i] = FormatPhone(f, d)
		want[i] = CanonicalPhone(d)
	}
	return rows, want
}

// TimesSquarePhones reproduces the §7.2 study input: 331 messy phone
// numbers across six formats, with the cluster-size skew of Figure 3
// (parenthesized-space dominant, then dashes, dots, and a tail), plus a few
// "N/A" noise rows as discussed in §6.1.
func TimesSquarePhones() (rows, want []string) {
	r := rand.New(rand.NewSource(20170331))
	counts := map[PhoneFormat]int{
		PhoneParenSpace: 112,
		PhoneDashes:     89,
		PhoneDots:       52,
		PhoneParen:      38,
		PhoneSpaces:     18,
		PhonePlus:       10,
		PhonePlain:      8,
	}
	const noise = 4 // "N/A" rows
	for f := PhoneFormat(0); f < numPhoneFormats; f++ {
		for i := 0; i < counts[f]; i++ {
			d := randDigits(r)
			rows = append(rows, FormatPhone(f, d))
			want = append(want, CanonicalPhone(d))
		}
	}
	for i := 0; i < noise; i++ {
		rows = append(rows, "N/A")
		want = append(want, "N/A")
	}
	// Deterministic shuffle so formats interleave as in a real column.
	r.Shuffle(len(rows), func(i, j int) {
		rows[i], rows[j] = rows[j], rows[i]
		want[i], want[j] = want[j], want[i]
	})
	return rows, want
}

var (
	firstNames = []string{
		"Eran", "Bill", "Oege", "Sumit", "Rishabh", "Alice", "Carol",
		"David", "Grace", "Henry", "Irene", "Kevin", "Laura", "Martin",
		"Nina", "Oscar", "Paula", "Quinn", "Rosa", "Steve",
	}
	lastNames = []string{
		"Yahav", "Gates", "Moor", "Gulwani", "Singh", "Baker", "Chen",
		"Davis", "Evans", "Fischer", "Garcia", "Hopper", "Iverson",
		"Jones", "Keller", "Lopez", "Miller", "Nolan", "Olsen", "Parker",
	}
	streets = []string{
		"Main St", "Oak Ave", "Pine Rd", "Maple Dr", "Cedar Ln",
		"2nd Ave", "Park Blvd", "Lake View", "Hill Ct", "Bay St",
	}
	cities = []string{
		"San Diego", "Redmond", "Chicago", "Austin", "Denver",
		"Boston", "Seattle", "Portland", "Madison", "Ann Arbor",
	}
	states = []string{"CA", "WA", "IL", "TX", "CO", "MA", "OR", "MI", "NY", "WI"}
)

// Names generates n "First Last" names.
func Names(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = firstNames[r.Intn(len(firstNames))] + " " + lastNames[r.Intn(len(lastNames))]
	}
	return out
}

// NameParts generates n names and returns the first/last components.
func NameParts(n int, seed int64) (first, last []string) {
	r := rand.New(rand.NewSource(seed))
	first = make([]string, n)
	last = make([]string, n)
	for i := 0; i < n; i++ {
		first[i] = firstNames[r.Intn(len(firstNames))]
		last[i] = lastNames[r.Intn(len(lastNames))]
	}
	return first, last
}

// Addresses generates n "num street, City, ST zip" addresses.
func Addresses(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d %s, %s, %s %05d",
			1+r.Intn(9999), streets[r.Intn(len(streets))],
			cities[r.Intn(len(cities))], states[r.Intn(len(states))],
			10000+r.Intn(89999))
	}
	return out
}

// AddressCity returns the city component of an address produced by
// Addresses.
func AddressCity(addr string) string {
	parts := strings.Split(addr, ", ")
	if len(parts) < 2 {
		return ""
	}
	return parts[1]
}

// Dates generates n dates; each row is returned in DD/MM/YYYY order along
// with the MM-DD-YYYY ground truth.
func Dates(n int, seed int64) (rows, want []string) {
	r := rand.New(rand.NewSource(seed))
	rows = make([]string, n)
	want = make([]string, n)
	for i := 0; i < n; i++ {
		d, m, y := 1+r.Intn(28), 1+r.Intn(12), 1980+r.Intn(45)
		rows[i] = fmt.Sprintf("%02d/%02d/%04d", d, m, y)
		want[i] = fmt.Sprintf("%02d-%02d-%04d", m, d, y)
	}
	return rows, want
}

// ProductIDs generates n BlinkFill-style product ids like "GOPR6231".
func ProductIDs(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	prefixes := []string{"GOPR", "CANN", "NIKO", "SONY", "FUJI", "PANA"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%04d", prefixes[r.Intn(len(prefixes))], r.Intn(10000))
	}
	return out
}

// CarModels generates SyGus-style car model ids like "BMW-320i-2016".
func CarModels(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	makes := []string{"BMW", "AUDI", "FORD", "KIA", "VW", "FIAT"}
	trims := []string{"320i", "a4", "gt", "ev6", "golf", "500e"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%s-%d",
			makes[r.Intn(len(makes))], trims[r.Intn(len(trims))], 2005+r.Intn(20))
	}
	return out
}

// Universities generates SyGus-style "University of X, ST" rows.
func Universities(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("University of %s, %s",
			cities[r.Intn(len(cities))], states[r.Intn(len(states))])
	}
	return out
}

// LogLines generates FlashFill-style log entries
// "203.12.1.45 - GET /idx.html [21/Jun/2019]".
func LogLines(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	pages := []string{"idx", "home", "cart", "list", "item", "help"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d.%d.%d.%d - GET /%s.html [%02d/Jun/2019]",
			1+r.Intn(254), r.Intn(256), r.Intn(256), 1+r.Intn(254),
			pages[r.Intn(len(pages))], 1+r.Intn(28))
	}
	return out
}

// URLs generates FlashFill-style urls "https://www.host.com/path/page".
func URLs(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	hosts := []string{"example", "shopping", "research", "weather", "news"}
	paths := []string{"a", "docs", "img", "cgi", "x"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("https://www.%s.com/%s/p%d",
			hosts[r.Intn(len(hosts))], paths[r.Intn(len(paths))], r.Intn(100))
	}
	return out
}

// Mix interleaves several row sets deterministically: rows are taken round
// robin until all sets are exhausted.
func Mix(sets ...[]string) []string {
	var out []string
	for i := 0; ; i++ {
		advanced := false
		for _, s := range sets {
			if i < len(s) {
				out = append(out, s[i])
				advanced = true
			}
		}
		if !advanced {
			return out
		}
	}
}
