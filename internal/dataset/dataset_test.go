package dataset

import (
	"reflect"
	"strings"
	"testing"

	"clx/internal/pattern"
)

func TestFormatPhone(t *testing.T) {
	d := [10]byte{7, 3, 4, 4, 2, 2, 8, 0, 7, 3}
	tests := map[PhoneFormat]string{
		PhoneDashes:     "734-422-8073",
		PhoneParenSpace: "(734) 422-8073",
		PhoneParen:      "(734)422-8073",
		PhoneDots:       "734.422.8073",
		PhoneSpaces:     "734 422 8073",
		PhonePlain:      "7344228073",
	}
	for f, want := range tests {
		if got := FormatPhone(f, d); got != want {
			t.Errorf("FormatPhone(%d) = %q, want %q", f, got, want)
		}
	}
}

func TestPhonesDeterministicAndSized(t *testing.T) {
	rows1, want1 := Phones(100, 4, 1)
	rows2, want2 := Phones(100, 4, 1)
	if !reflect.DeepEqual(rows1, rows2) || !reflect.DeepEqual(want1, want2) {
		t.Error("Phones is not deterministic")
	}
	if len(rows1) != 100 || len(want1) != 100 {
		t.Fatalf("sizes: %d, %d", len(rows1), len(want1))
	}
	// Exactly 4 distinct patterns.
	pats := make(map[string]bool)
	for _, r := range rows1 {
		pats[pattern.FromString(r).Key()] = true
	}
	if len(pats) != 4 {
		t.Errorf("distinct patterns = %d, want 4", len(pats))
	}
	// Ground truth is the canonical format with the same digits.
	for i, r := range rows1 {
		digits := strings.Map(func(c rune) rune {
			if c >= '0' && c <= '9' {
				return c
			}
			return -1
		}, r)
		wantDigits := strings.ReplaceAll(want1[i], "-", "")
		if digits != wantDigits {
			t.Errorf("row %d: digits %q, want %q", i, digits, wantDigits)
		}
	}
}

func TestPhonesClampsK(t *testing.T) {
	rows, _ := Phones(10, 99, 1)
	if len(rows) != 10 {
		t.Fatal("size")
	}
	rows, _ = Phones(3, 0, 1)
	if len(rows) != 3 {
		t.Fatal("size with k=0")
	}
}

func TestTimesSquarePhones(t *testing.T) {
	rows, want := TimesSquarePhones()
	if len(rows) != 331 {
		t.Fatalf("rows = %d, want 331", len(rows))
	}
	if len(want) != len(rows) {
		t.Fatalf("want rows mismatch")
	}
	pats := make(map[string]int)
	for _, r := range rows {
		pats[pattern.FromString(r).Key()]++
	}
	// 6 phone formats + N/A noise pattern = 7 distinct patterns.
	if len(pats) != 8 {
		t.Errorf("distinct patterns = %d, want 8", len(pats))
	}
	na := 0
	for i, r := range rows {
		if r == "N/A" {
			na++
			if want[i] != "N/A" {
				t.Error("noise row should map to itself")
			}
		}
	}
	if na != 4 {
		t.Errorf("noise rows = %d, want 4", na)
	}
	// Deterministic across calls.
	rows2, _ := TimesSquarePhones()
	if !reflect.DeepEqual(rows, rows2) {
		t.Error("TimesSquarePhones is not deterministic")
	}
}

func TestDates(t *testing.T) {
	rows, want := Dates(50, 7)
	for i := range rows {
		d, m, y := rows[i][0:2], rows[i][3:5], rows[i][6:10]
		if want[i] != m+"-"+d+"-"+y {
			t.Errorf("row %d: %q -> %q", i, rows[i], want[i])
		}
	}
}

func TestAddressCity(t *testing.T) {
	addrs := Addresses(20, 3)
	for _, a := range addrs {
		city := AddressCity(a)
		if city == "" || !strings.Contains(a, ", "+city+", ") {
			t.Errorf("AddressCity(%q) = %q", a, city)
		}
	}
	if AddressCity("garbage") != "" {
		t.Error("AddressCity on garbage should be empty")
	}
}

func TestGeneratorsNonEmptyAndDeterministic(t *testing.T) {
	gens := map[string]func() []string{
		"Names":        func() []string { return Names(10, 1) },
		"Addresses":    func() []string { return Addresses(10, 1) },
		"ProductIDs":   func() []string { return ProductIDs(10, 1) },
		"CarModels":    func() []string { return CarModels(10, 1) },
		"Universities": func() []string { return Universities(10, 1) },
		"LogLines":     func() []string { return LogLines(10, 1) },
		"URLs":         func() []string { return URLs(10, 1) },
	}
	for name, g := range gens {
		a, b := g(), g()
		if len(a) != 10 {
			t.Errorf("%s: %d rows", name, len(a))
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s is not deterministic", name)
		}
		for _, s := range a {
			if s == "" {
				t.Errorf("%s produced empty row", name)
			}
		}
	}
}

func TestMix(t *testing.T) {
	got := Mix([]string{"a", "b", "c"}, []string{"1"}, []string{"x", "y"})
	want := []string{"a", "1", "x", "b", "y", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Mix = %v, want %v", got, want)
	}
	if Mix() != nil {
		t.Error("Mix() should be nil")
	}
}

func TestNameParts(t *testing.T) {
	first, last := NameParts(5, 9)
	if len(first) != 5 || len(last) != 5 {
		t.Fatal("sizes")
	}
	for i := range first {
		if first[i] == "" || last[i] == "" {
			t.Error("empty name part")
		}
	}
}

func TestPhonePlusFormat(t *testing.T) {
	d := [10]byte{7, 3, 4, 2, 3, 6, 3, 4, 6, 6}
	if got := FormatPhone(PhonePlus, d); got != "+1 734-236-3466" {
		t.Errorf("PhonePlus = %q", got)
	}
}

func TestPhonesGroundTruthAligned(t *testing.T) {
	rows, want := Phones(30, 6, 77)
	for i := range rows {
		if rows[i] == "" || want[i] == "" {
			t.Fatalf("row %d empty", i)
		}
		// Canonical form is always dashes with the same digit count.
		if len(want[i]) != 12 {
			t.Errorf("want[%d] = %q", i, want[i])
		}
	}
}

func TestTimesSquareSkew(t *testing.T) {
	rows, _ := TimesSquarePhones()
	pats := map[string]int{}
	for _, r := range rows {
		pats[pattern.FromString(r).Key()]++
	}
	// The parenthesized-space format dominates, as in Figure 3.
	if pats["'('<D>3')'' '<D>3'-'<D>4"] != 112 {
		t.Errorf("dominant format count = %d, want 112", pats["'('<D>3')'' '<D>3'-'<D>4"])
	}
}
