package tablex

import (
	"reflect"
	"testing"
)

// Three organizations' contact tables: different column orders, header
// spellings, and value formats.
func orgTables() []Table {
	return []Table{
		{
			Name:    "org-a",
			Headers: []string{"Name", "Phone", "City"},
			Rows: [][]string{
				{"Eran Yahav", "734-645-8397", "Ann Arbor"},
				{"Kate Fisher", "313-263-1192", "Detroit"},
				{"Bill Gates", "425-555-0100", "Seattle"},
			},
		},
		{
			Name:    "org-b",
			Headers: []string{"phone", "name", "city"},
			Rows: [][]string{
				{"(734) 645-0001", "Rosa Cole", "Lansing"},
				{"(517) 555-2222", "Omar Sy", "Flint"},
				{"(313) 444-3333", "Amy Tan", "Warren"},
			},
		},
		{
			Name:    "org-c",
			Headers: []string{"Name", "City", "Phone "},
			Rows: [][]string{
				{"Max Koch", "Novi", "734.555.1234"},
				{"Ada Diaz", "Troy", "248.555.8888"},
				{"Leo Cruz", "Saline", "734.555.9999"},
			},
		},
	}
}

func TestSchemaOf(t *testing.T) {
	s := SchemaOf(orgTables()[0])
	if len(s.Columns) != 3 {
		t.Fatalf("columns = %d", len(s.Columns))
	}
	if s.Columns[0].Header != "name" || s.Columns[1].Header != "phone" {
		t.Errorf("headers = %v", s.Columns)
	}
	if got := s.Columns[1].Pattern.String(); got != "<D>+'-'<D>+'-'<D>+" {
		t.Errorf("phone pattern = %s", got)
	}
	if s.Columns[1].Coverage != 1 {
		t.Errorf("coverage = %v", s.Columns[1].Coverage)
	}
}

func TestSchemaOfMixedColumn(t *testing.T) {
	tb := Table{
		Headers: []string{"v"},
		Rows:    [][]string{{"123"}, {"456"}, {"abc"}, {""}},
	}
	s := SchemaOf(tb)
	if got := s.Columns[0].Pattern.String(); got != "<D>+" {
		t.Errorf("dominant pattern = %s", got)
	}
	// Empty cells excluded: 2 of 3 non-empty match.
	if s.Columns[0].Coverage < 0.6 || s.Columns[0].Coverage > 0.7 {
		t.Errorf("coverage = %v", s.Columns[0].Coverage)
	}
}

func TestClusterTables(t *testing.T) {
	tables := orgTables()
	tables = append(tables, Table{
		Name:    "inventory",
		Headers: []string{"sku", "qty"},
		Rows:    [][]string{{"A-1", "4"}},
	})
	groups := ClusterTables(tables)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if !reflect.DeepEqual(groups[0], []int{0, 1, 2}) {
		t.Errorf("contact group = %v", groups[0])
	}
	if !reflect.DeepEqual(groups[1], []int{3}) {
		t.Errorf("inventory group = %v", groups[1])
	}
}

func TestAlignTables(t *testing.T) {
	tables := orgTables()
	m := AlignTables(tables[1], tables[0])
	if len(m.Columns) != 3 {
		t.Fatalf("mapped columns = %d (%+v)", len(m.Columns), m)
	}
	// org-b's column order is phone,name,city; target is name,phone,city.
	want := map[int]int{0: 1, 1: 0, 2: 2} // src -> dst
	for _, cm := range m.Columns {
		if want[cm.Src] != cm.Dst {
			t.Errorf("column %d mapped to %d, want %d", cm.Src, cm.Dst, want[cm.Src])
		}
		if cm.Score <= 0 {
			t.Errorf("column %d score %v", cm.Src, cm.Score)
		}
	}
	if len(m.UnmappedTarget) != 0 || len(m.DroppedSource) != 0 {
		t.Errorf("unmapped=%v dropped=%v", m.UnmappedTarget, m.DroppedSource)
	}
}

func TestTransformTable(t *testing.T) {
	tables := orgTables()
	out, m, flagged, err := TransformTable(tables[1], tables[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Headers, tables[0].Headers) {
		t.Errorf("headers = %v", out.Headers)
	}
	wantRows := [][]string{
		{"Rosa Cole", "734-645-0001", "Lansing"},
		{"Omar Sy", "517-555-2222", "Flint"},
		{"Amy Tan", "313-444-3333", "Warren"},
	}
	if !reflect.DeepEqual(out.Rows, wantRows) {
		t.Errorf("rows = %v, want %v", out.Rows, wantRows)
	}
	if len(flagged) != 0 {
		t.Errorf("flagged = %v", flagged)
	}
	// The phone column carries a synthesized transformation; name and city
	// do not.
	for _, cm := range m.Columns {
		if cm.Dst == 1 && cm.Transform == nil {
			t.Error("phone column should carry a transformation")
		}
		if cm.Dst == 0 && cm.Transform != nil {
			t.Error("name column should not need a transformation")
		}
	}
}

func TestUnify(t *testing.T) {
	tables := orgTables()
	out, _, err := Unify(tables, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range out {
		if !reflect.DeepEqual(tb.Headers, tables[0].Headers) {
			t.Errorf("table %d headers = %v", i, tb.Headers)
		}
		// Every phone lands in the target's dash format.
		s := SchemaOf(tb)
		if got := s.Columns[1].Pattern.String(); got != "<D>+'-'<D>+'-'<D>+" {
			t.Errorf("table %d phone pattern = %s", i, got)
		}
	}
	if _, _, err := Unify(tables, 99); err == nil {
		t.Error("bad target index should error")
	}
}

func TestTransformTableUnmappable(t *testing.T) {
	src := Table{
		Name:    "weird",
		Headers: []string{"zzz"},
		Rows:    [][]string{{"???"}},
	}
	dst := orgTables()[0]
	out, m, _, err := TransformTable(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Columns) != 0 || len(m.DroppedSource) != 1 || len(m.UnmappedTarget) != 3 {
		t.Errorf("mapping = %+v", m)
	}
	for _, row := range out.Rows {
		for _, cell := range row {
			if cell != "" {
				t.Errorf("unmapped cells should be empty, got %q", cell)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	bad := Table{Headers: []string{"a", "b"}, Rows: [][]string{{"only one"}}}
	if bad.Validate() == nil {
		t.Error("ragged table should fail validation")
	}
	if _, _, _, err := TransformTable(bad, orgTables()[0]); err == nil {
		t.Error("TransformTable should reject ragged input")
	}
}

func TestNormalizeHeader(t *testing.T) {
	cases := map[string]string{
		" Phone ":   "phone",
		"PHONE_NUM": "phonenum",
		"e-mail":    "email",
		"":          "",
	}
	for in, want := range cases {
		if got := normalizeHeader(in); got != want {
			t.Errorf("normalizeHeader(%q) = %q, want %q", in, got, want)
		}
	}
}
