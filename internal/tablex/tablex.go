// Package tablex is a second instantiation of the CLX paradigm, the one
// the paper names as future work (§9): "given a set of heterogeneous
// spreadsheet tables storing the same information from different
// organizations, CLX can be used to synthesize programs converting all
// tables into the same standard format."
//
// The Cluster–Label–Transform phases lift from strings to tables:
//
//   - Cluster: each table is fingerprinted by its Schema — normalized
//     header names plus the dominant generalized value pattern per column —
//     and tables with compatible schemas group together;
//   - Label: the user picks the target table (or schema);
//   - Transform: for every other table, columns are aligned to the target
//     by header and value-pattern evidence, and columns whose value
//     formats differ get a string-level CLX transformation synthesized for
//     them. Unmappable columns are reported, not guessed.
package tablex

import (
	"fmt"
	"sort"
	"strings"

	"clx/internal/cluster"
	"clx/internal/pattern"
)

// Table is one spreadsheet-like table.
type Table struct {
	// Name identifies the table in reports.
	Name string
	// Headers are the column names.
	Headers []string
	// Rows hold the cells; every row must have len(Headers) cells.
	Rows [][]string
}

// Column returns the values of column j.
func (t Table) Column(j int) []string {
	out := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		out[i] = row[j]
	}
	return out
}

// Validate checks the table's shape.
func (t Table) Validate() error {
	for i, row := range t.Rows {
		if len(row) != len(t.Headers) {
			return fmt.Errorf("tablex: table %s row %d has %d cells, want %d",
				t.Name, i, len(row), len(t.Headers))
		}
	}
	return nil
}

// Column is one column of a schema fingerprint.
type SchemaColumn struct {
	// Header is the normalized column name.
	Header string
	// Pattern is the dominant '+'-generalized value pattern.
	Pattern pattern.Pattern
	// Coverage is the fraction of values matching Pattern.
	Coverage float64
}

// Schema is a table's structural fingerprint.
type Schema struct {
	Columns []SchemaColumn
}

// String renders the schema compactly.
func (s Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = fmt.Sprintf("%s:%s", c.Header, c.Pattern)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// normalizeHeader lowercases and strips non-alphanumeric characters.
func normalizeHeader(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(h)) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SchemaOf fingerprints a table: per column, the most common
// '+'-generalized value pattern among non-empty cells.
func SchemaOf(t Table) Schema {
	s := Schema{Columns: make([]SchemaColumn, len(t.Headers))}
	for j, h := range t.Headers {
		col := SchemaColumn{Header: normalizeHeader(h)}
		counts := map[string]int{}
		pats := map[string]pattern.Pattern{}
		total := 0
		for _, v := range t.Column(j) {
			if v == "" {
				continue
			}
			total++
			p := cluster.Generalize(pattern.FromString(v), cluster.QuantToPlus)
			counts[p.Key()]++
			pats[p.Key()] = p
		}
		bestKey, best := "", 0
		for k, n := range counts {
			if n > best || (n == best && k < bestKey) {
				bestKey, best = k, n
			}
		}
		if total > 0 {
			col.Pattern = pats[bestKey]
			col.Coverage = float64(best) / float64(total)
		}
		s.Columns[j] = col
	}
	return s
}

// ClusterTables groups tables whose schemas describe the same information:
// identical normalized header multisets, order-insensitive. Groups keep
// first-seen order.
func ClusterTables(tables []Table) [][]int {
	key := func(t Table) string {
		hs := make([]string, len(t.Headers))
		for i, h := range t.Headers {
			hs[i] = normalizeHeader(h)
		}
		sort.Strings(hs)
		return strings.Join(hs, "\x00")
	}
	byKey := map[string][]int{}
	var order []string
	for i, t := range tables {
		k := key(t)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}
