// Column alignment and table transformation: mapping a source table onto
// the labeled target schema, synthesizing string-level CLX transformations
// for columns whose value formats differ.
package tablex

import (
	"fmt"
	"sort"
	"strings"

	"clx/internal/cluster"
	"clx/internal/synth"
)

// ColumnMap is one aligned column pair.
type ColumnMap struct {
	// Src and Dst are column indices in the source and target tables.
	Src, Dst int
	// Score is the alignment evidence in [0, 1].
	Score float64
	// Transform is the synthesized string-level transformation for the
	// column's values; nil when the formats already agree.
	Transform *synth.Result
}

// Mapping is a full source-to-target column alignment.
type Mapping struct {
	// Columns are the aligned pairs, one per target column, ordered by
	// target column index.
	Columns []ColumnMap
	// UnmappedTarget lists target columns with no source evidence; the
	// transformed table carries empty cells there.
	UnmappedTarget []int
	// DroppedSource lists source columns mapped to no target.
	DroppedSource []int
}

// headerScore measures header-name evidence for a column pair.
func headerScore(src, dst string) float64 {
	switch {
	case src == dst && src != "":
		return 1
	case src != "" && dst != "" && (strings.HasPrefix(src, dst) || strings.HasPrefix(dst, src)):
		return 0.7
	case src != "" && dst != "" && (strings.Contains(src, dst) || strings.Contains(dst, src)):
		return 0.5
	default:
		return 0
	}
}

// patternScore measures value-pattern evidence: identical dominant patterns
// are strong evidence; a synthesizable relationship (validate passes both
// ways at the class-count level) is weaker evidence.
func patternScore(src, dst SchemaColumn) float64 {
	if src.Pattern.IsEmpty() || dst.Pattern.IsEmpty() {
		return 0
	}
	if src.Pattern.Equal(dst.Pattern) {
		return 1
	}
	if synth.Validate(src.Pattern, dst.Pattern, false) {
		return 0.4
	}
	return 0
}

// AlignTables aligns src's columns onto dst's, greedily by combined header
// and pattern evidence. Pairs with no evidence at all stay unmapped.
func AlignTables(src, dst Table) Mapping {
	ss, ds := SchemaOf(src), SchemaOf(dst)
	type cand struct {
		i, j  int
		score float64
	}
	var cands []cand
	for i, sc := range ss.Columns {
		for j, dc := range ds.Columns {
			score := 0.6*headerScore(sc.Header, dc.Header) + 0.4*patternScore(sc, dc)
			if score > 0 {
				cands = append(cands, cand{i, j, score})
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].j != cands[b].j {
			return cands[a].j < cands[b].j
		}
		return cands[a].i < cands[b].i
	})
	usedSrc := map[int]bool{}
	usedDst := map[int]bool{}
	var m Mapping
	for _, c := range cands {
		if usedSrc[c.i] || usedDst[c.j] {
			continue
		}
		usedSrc[c.i] = true
		usedDst[c.j] = true
		m.Columns = append(m.Columns, ColumnMap{Src: c.i, Dst: c.j, Score: c.score})
	}
	sort.Slice(m.Columns, func(a, b int) bool { return m.Columns[a].Dst < m.Columns[b].Dst })
	for j := range dst.Headers {
		if !usedDst[j] {
			m.UnmappedTarget = append(m.UnmappedTarget, j)
		}
	}
	for i := range src.Headers {
		if !usedSrc[i] {
			m.DroppedSource = append(m.DroppedSource, i)
		}
	}
	return m
}

// TransformTable converts src into dst's format: columns are aligned, and
// for every aligned column whose values do not already match the target
// column's dominant pattern, a string-level CLX transformation is
// synthesized from the source values toward that pattern. Cell values that
// match no source candidate are copied through; their positions are
// returned as flagged (row, targetColumn) pairs.
func TransformTable(src, dst Table) (Table, Mapping, [][2]int, error) {
	if err := src.Validate(); err != nil {
		return Table{}, Mapping{}, nil, err
	}
	if err := dst.Validate(); err != nil {
		return Table{}, Mapping{}, nil, err
	}
	m := AlignTables(src, dst)
	out := Table{
		Name:    src.Name,
		Headers: append([]string(nil), dst.Headers...),
		Rows:    make([][]string, len(src.Rows)),
	}
	for i := range out.Rows {
		out.Rows[i] = make([]string, len(dst.Headers))
	}
	var flagged [][2]int
	ds := SchemaOf(dst)
	for ci := range m.Columns {
		cm := &m.Columns[ci]
		values := src.Column(cm.Src)
		target := ds.Columns[cm.Dst].Pattern
		transformed := values
		if !target.IsEmpty() && !allMatch(values, target) {
			h := cluster.Profile(values, cluster.DefaultOptions())
			res := synth.Synthesize(h, target, synth.DefaultOptions())
			cm.Transform = res
			var flaggedRows []int
			transformed, flaggedRows = res.Transform()
			for _, ri := range flaggedRows {
				flagged = append(flagged, [2]int{ri, cm.Dst})
			}
		}
		for ri := range out.Rows {
			out.Rows[ri][cm.Dst] = transformed[ri]
		}
	}
	if err := out.Validate(); err != nil {
		return Table{}, Mapping{}, nil, fmt.Errorf("tablex: internal shape error: %w", err)
	}
	return out, m, flagged, nil
}

func allMatch(values []string, p interface{ Matches(string) bool }) bool {
	for _, v := range values {
		if v != "" && !p.Matches(v) {
			return false
		}
	}
	return true
}

// Unify converts every table of a group into the target table's format.
// The target itself is returned unchanged in place.
func Unify(tables []Table, targetIdx int) ([]Table, []Mapping, error) {
	if targetIdx < 0 || targetIdx >= len(tables) {
		return nil, nil, fmt.Errorf("tablex: target index %d out of range", targetIdx)
	}
	dst := tables[targetIdx]
	out := make([]Table, len(tables))
	maps := make([]Mapping, len(tables))
	for i, t := range tables {
		if i == targetIdx {
			out[i] = t
			continue
		}
		tt, m, _, err := TransformTable(t, dst)
		if err != nil {
			return nil, nil, err
		}
		out[i], maps[i] = tt, m
	}
	return out, maps, nil
}
