// Chunked column readers: incremental sources that yield the values of a
// string column a bounded batch at a time, never materializing the input.
// All three formats the CLI and daemon speak are covered — raw lines, NDJSON
// (one JSON string per line, the lossless format), and CSV with a column
// selector — and every reader is built for arbitrary byte streams: values
// split across internal read buffers, CRLF/LF mixes, empty records, and
// multi-byte UTF-8 runes cut at a buffer boundary are all reassembled
// exactly, which FuzzStreamReader pins down.
package stream

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Reader yields successive values of a column. Implementations are not safe
// for concurrent use; the engine calls Next from a single goroutine.
type Reader interface {
	// Next returns the next batch of at most max values. It returns a nil
	// or shorter batch together with io.EOF when the input is exhausted
	// (the final batch may carry both values and io.EOF).
	Next(max int) ([]string, error)
}

// defaultReadBuf is the byte-read granularity of the line-based readers.
// Tests and the fuzz target shrink it to force value splits at every
// possible byte boundary, including mid-rune.
const defaultReadBuf = 64 << 10

// lineScanner reassembles newline-terminated records from fixed-size byte
// reads. Splitting happens only at '\n' bytes, so a multi-byte UTF-8 rune
// cut by the read buffer is reunited before the record is surfaced. A
// single trailing '\r' is stripped (CRLF input), and a final record without
// its newline still counts.
type lineScanner struct {
	r    io.Reader
	buf  []byte // fixed read buffer
	data []byte // unconsumed bytes of the last read
	pend []byte // partial record carried across reads
	eof  bool
}

func newLineScanner(r io.Reader, bufSize int) *lineScanner {
	if bufSize <= 0 {
		bufSize = defaultReadBuf
	}
	return &lineScanner{r: r, buf: make([]byte, bufSize)}
}

// nextLine returns the next record. ok=false with err=nil means the input
// is exhausted.
func (s *lineScanner) nextLine() (line []byte, ok bool, err error) {
	for {
		// Look for a record end in the unconsumed window.
		for i, b := range s.data {
			if b == '\n' {
				rec := s.data[:i]
				s.data = s.data[i+1:]
				if len(s.pend) > 0 {
					rec = append(s.pend, rec...)
					s.pend = s.pend[:0]
				}
				return trimCR(rec), true, nil
			}
		}
		// No newline: the window is a partial record. Copy it out of the
		// read buffer before refilling.
		if len(s.data) > 0 {
			s.pend = append(s.pend, s.data...)
			s.data = nil
		}
		if s.eof {
			if len(s.pend) > 0 {
				rec := trimCR(s.pend)
				s.pend = nil
				return rec, true, nil
			}
			return nil, false, nil
		}
		n, rerr := s.r.Read(s.buf)
		s.data = s.buf[:n]
		if rerr == io.EOF {
			s.eof = true
			continue
		}
		if rerr != nil {
			return nil, false, rerr
		}
		if n == 0 {
			// A Reader may return 0, nil; loop (io.Reader contract allows
			// it, and retrying is the portable response).
			continue
		}
	}
}

func trimCR(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		return b[:n-1]
	}
	return b
}

// LineReader reads one raw value per line. It is the format of the clx
// CLI's plain input: values must not themselves contain newlines (use
// NDJSON for those).
type lineReader struct {
	sc *lineScanner
}

// NewLineReader returns a Reader over one-value-per-line input.
func NewLineReader(r io.Reader) Reader { return &lineReader{sc: newLineScanner(r, 0)} }

// newLineReaderSize is NewLineReader with an explicit read-buffer size, for
// boundary-split tests.
func newLineReaderSize(r io.Reader, bufSize int) Reader {
	return &lineReader{sc: newLineScanner(r, bufSize)}
}

func (lr *lineReader) Next(max int) ([]string, error) {
	if max <= 0 {
		max = 1
	}
	var out []string
	for len(out) < max {
		line, ok, err := lr.sc.nextLine()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, io.EOF
		}
		out = append(out, string(line))
	}
	return out, nil
}

// ndjsonReader reads one JSON string per line. Blank lines are tolerated
// (trailing newlines, CRLF artifacts); any other JSON value is an error —
// the column is a string column.
type ndjsonReader struct {
	sc  *lineScanner
	row int // 1-based data rows: blank separator lines do not count
}

// NewNDJSONReader returns a Reader over NDJSON input: one JSON string per
// line. NDJSON is the lossless format — values may contain newlines, any
// Unicode, or bytes that raw lines cannot carry.
func NewNDJSONReader(r io.Reader) Reader { return &ndjsonReader{sc: newLineScanner(r, 0)} }

func newNDJSONReaderSize(r io.Reader, bufSize int) Reader {
	return &ndjsonReader{sc: newLineScanner(r, bufSize)}
}

func (nr *ndjsonReader) Next(max int) ([]string, error) {
	if max <= 0 {
		max = 1
	}
	var out []string
	for len(out) < max {
		line, ok, err := nr.sc.nextLine()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, io.EOF
		}
		if len(line) == 0 {
			continue // blank line between records
		}
		nr.row++
		var v string
		if err := json.Unmarshal(line, &v); err != nil {
			return out, fmt.Errorf("stream: ndjson row %d: %w", nr.row, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// csvReader selects one column of a CSV stream. encoding/csv carries the
// quoting rules (embedded newlines, doubled quotes, CRLF) and reports
// malformed quoting as an error rather than guessing.
type csvReader struct {
	cr     *csv.Reader
	col    int
	header bool // skip the first record
	first  bool
	row    int // 1-based data rows: a skipped header record does not count
}

// NewCSVReader returns a Reader over the col'th field (0-based) of CSV
// input. With header set the first record is skipped.
func NewCSVReader(r io.Reader, col int, header bool) Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = false
	return &csvReader{cr: cr, col: col, header: header, first: true}
}

func (cr *csvReader) Next(max int) ([]string, error) {
	if max <= 0 {
		max = 1
	}
	var out []string
	for len(out) < max {
		rec, err := cr.cr.Read()
		if err == io.EOF {
			return out, io.EOF
		}
		if err != nil {
			return out, err
		}
		if cr.first && cr.header {
			cr.first = false
			continue
		}
		cr.first = false
		cr.row++
		if cr.col < 0 || cr.col >= len(rec) {
			return out, fmt.Errorf("stream: csv row %d has %d columns, want index %d",
				cr.row, len(rec), cr.col)
		}
		out = append(out, rec[cr.col])
	}
	return out, nil
}

// sliceReader serves an in-memory column — the reference source for
// differential tests and benchmarks, where reader parsing must not be a
// variable.
type sliceReader struct {
	rows []string
	pos  int
}

// NewSliceReader returns a Reader over an in-memory column.
func NewSliceReader(rows []string) Reader { return &sliceReader{rows: rows} }

func (sr *sliceReader) Next(max int) ([]string, error) {
	if max <= 0 {
		max = 1
	}
	if sr.pos >= len(sr.rows) {
		return nil, io.EOF
	}
	end := sr.pos + max
	if end > len(sr.rows) {
		end = len(sr.rows)
	}
	out := sr.rows[sr.pos:end]
	sr.pos = end
	if sr.pos == len(sr.rows) {
		return out, io.EOF
	}
	return out, nil
}
