// Chunk-output encoders: append one value at a time into a caller-owned
// buffer, record terminator included, with no per-value allocation. The
// engine encodes a whole chunk into one payload buffer on the worker, so
// the in-order emitter only writes bytes.
package stream

import (
	"unicode/utf8"
)

// Encoder appends one encoded value (terminator included) to dst.
// Implementations must be safe for concurrent use — chunks encode on
// worker goroutines.
type Encoder interface {
	AppendValue(dst []byte, v []byte) []byte
}

// LineEncoder writes raw values, one per line — the inverse of
// NewLineReader. Values containing newlines are not representable; use
// NDJSONEncoder for those.
type LineEncoder struct{}

func (LineEncoder) AppendValue(dst []byte, v []byte) []byte {
	dst = append(dst, v...)
	return append(dst, '\n')
}

// NDJSONEncoder writes each value as a JSON string on its own line — the
// inverse of NewNDJSONReader and the lossless format. Invalid UTF-8 is
// replaced with U+FFFD exactly as encoding/json does, so written output
// always re-reads to the same values (write ∘ read is idempotent).
type NDJSONEncoder struct{}

func (NDJSONEncoder) AppendValue(dst []byte, v []byte) []byte {
	dst = appendJSONString(dst, v)
	return append(dst, '\n')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends v as a quoted JSON string. Control characters
// are \u-escaped, quote and backslash are backslash-escaped, valid UTF-8
// passes through verbatim, and invalid bytes become U+FFFD — the same
// observable encoding as encoding/json.Marshal minus its HTML escaping.
func appendJSONString(dst []byte, v []byte) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(v); {
		b := v[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"':
				dst = append(dst, '\\', '"')
			case b == '\\':
				dst = append(dst, '\\', '\\')
			case b == '\n':
				dst = append(dst, '\\', 'n')
			case b == '\r':
				dst = append(dst, '\\', 'r')
			case b == '\t':
				dst = append(dst, '\\', 't')
			case b < 0x20:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			default:
				dst = append(dst, b)
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(v[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, "�"...)
			i++
			continue
		}
		dst = append(dst, v[i:i+size]...)
		i += size
	}
	return append(dst, '"')
}
