package stream_test

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	clx "clx"
	"clx/internal/stream"
)

// upperApplier is a deterministic toy program: uppercases letters-only
// values, flags anything containing a digit.
type upperApplier struct{}

func (upperApplier) Apply(s string) (string, bool) {
	for _, r := range s {
		if r >= '0' && r <= '9' {
			return s, false
		}
	}
	return strings.ToUpper(s), true
}

// phoneProgram synthesizes a real verified program over messy phone rows
// and reloads it through the Export/LoadProgram round trip — the same
// artifact the daemon streams against.
func phoneProgram(t testing.TB) *clx.SavedProgram {
	t.Helper()
	rows := []string{"(734) 645-8397", "(734)586-7252", "734.236.3466", "734-422-8073"}
	sess := clx.NewSession(rows)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := clx.LoadProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func genPhones(n int) []string {
	formats := []string{"(%03d) %03d-%04d", "%03d.%03d.%04d", "%03d-%03d-%04d"}
	rows := make([]string, n)
	for i := range rows {
		rows[i] = fmt.Sprintf(formats[i%len(formats)], 200+i%700, i%1000, i%10000)
	}
	return rows
}

// The engine output must equal the in-memory Transform byte for byte —
// values, order, and flagged indices — for every chunk size and worker
// count, including chunks of one row and chunks larger than the column.
func TestRunMatchesTransform(t *testing.T) {
	sp := phoneProgram(t)
	rows := genPhones(531)
	rows = append(rows, "N/A", "", "not a phone")
	wantOut, wantFlagged := sp.Transform(rows)
	var want bytes.Buffer
	for _, v := range wantOut {
		want.WriteString(v)
		want.WriteByte('\n')
	}
	for _, chunk := range []int{1, 7, 64, 4096} {
		for _, workers := range []int{1, 2, 4, 8} {
			var got bytes.Buffer
			var flagged []int
			st, err := stream.Run(sp, stream.NewSliceReader(rows), stream.LineEncoder{}, &got,
				stream.Options{ChunkSize: chunk, Workers: workers,
					OnFlagged: func(row int) { flagged = append(flagged, row) }})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
			}
			if got.String() != want.String() {
				t.Fatalf("chunk=%d workers=%d: output diverges from Transform", chunk, workers)
			}
			if !reflect.DeepEqual(flagged, wantFlagged) {
				t.Fatalf("chunk=%d workers=%d: flagged %v, want %v", chunk, workers, flagged, wantFlagged)
			}
			if st.Rows != int64(len(rows)) || st.Flagged != int64(len(wantFlagged)) {
				t.Fatalf("chunk=%d workers=%d: stats %+v", chunk, workers, st)
			}
			wantChunks := int64((len(rows) + chunk - 1) / chunk)
			if st.Chunks != wantChunks {
				t.Fatalf("chunk=%d workers=%d: chunks %d, want %d", chunk, workers, st.Chunks, wantChunks)
			}
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	var got bytes.Buffer
	st, err := stream.Run(upperApplier{}, stream.NewLineReader(strings.NewReader("")),
		stream.LineEncoder{}, &got, stream.Options{Workers: 4})
	if err != nil || got.Len() != 0 || st.Rows != 0 || st.Chunks != 0 {
		t.Fatalf("empty input: %+v, %v, %q", st, err, got.String())
	}
}

// flushCounter counts per-chunk flushes.
func TestRunFlushesPerChunk(t *testing.T) {
	var flushes int
	var got bytes.Buffer
	st, err := stream.Run(upperApplier{}, stream.NewSliceReader([]string{"a", "b", "c", "d", "e"}),
		stream.LineEncoder{}, &got,
		stream.Options{ChunkSize: 2, Workers: 1, Flush: func() error { flushes++; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if int64(flushes) != st.Chunks || flushes != 3 {
		t.Fatalf("flushes = %d, chunks = %d", flushes, st.Chunks)
	}
}

// The in-flight window never exceeds MaxInFlight even when the sink is
// much slower than the source and workers.
func TestRunBoundedInFlight(t *testing.T) {
	rows := genPhones(2000)
	slow := &slowWriter{}
	st, err := stream.Run(upperApplier{}, stream.NewSliceReader(rows), stream.LineEncoder{}, slow,
		stream.Options{ChunkSize: 10, Workers: 4, MaxInFlight: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakInFlight > 5 {
		t.Fatalf("peak in-flight %d exceeds MaxInFlight 5", st.PeakInFlight)
	}
	if st.PeakInFlight < 2 {
		t.Fatalf("peak in-flight %d: backpressure test never filled the window", st.PeakInFlight)
	}
}

type slowWriter struct{ n int }

func (w *slowWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n%20 == 0 {
		time.Sleep(time.Millisecond)
	}
	return len(p), nil
}

// A write error (client disconnect) aborts the stream promptly: no
// further writes, the error surfaces, and no worker goroutines survive.
func TestRunWriteErrorAborts(t *testing.T) {
	before := runtime.NumGoroutine()
	rows := genPhones(10000)
	fw := &failingWriter{failAt: 3}
	_, err := stream.Run(upperApplier{}, stream.NewSliceReader(rows), stream.LineEncoder{}, fw,
		stream.Options{ChunkSize: 16, Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "client gone") {
		t.Fatalf("err = %v", err)
	}
	if fw.writes > fw.failAt {
		t.Fatalf("writer called %d times after failing at %d", fw.writes, fw.failAt)
	}
	waitForGoroutines(t, before)
}

type failingWriter struct{ writes, failAt int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes >= w.failAt {
		return 0, fmt.Errorf("client gone")
	}
	return len(p), nil
}

// A reader error mid-stream emits every chunk admitted before it, then
// surfaces the error; nothing leaks.
func TestRunReaderErrorSurfaces(t *testing.T) {
	before := runtime.NumGoroutine()
	var got bytes.Buffer
	fr := &failingReader{rows: genPhones(100), failAfter: 50}
	_, err := stream.Run(upperApplier{}, fr, stream.LineEncoder{}, &got,
		stream.Options{ChunkSize: 10, Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "torn input") {
		t.Fatalf("err = %v", err)
	}
	if n := bytes.Count(got.Bytes(), []byte{'\n'}); n != 50 {
		t.Fatalf("emitted %d rows before the reader error, want 50", n)
	}
	waitForGoroutines(t, before)
}

type failingReader struct {
	rows      []string
	pos       int
	failAfter int
}

func (r *failingReader) Next(max int) ([]string, error) {
	if r.pos >= r.failAfter {
		return nil, fmt.Errorf("torn input")
	}
	end := r.pos + max
	if end > r.failAfter {
		end = r.failAfter
	}
	out := r.rows[r.pos:end]
	r.pos = end
	return out, nil
}

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// countingReader generates phone rows on the fly — the million-row source
// that never materializes the column.
type countingReader struct {
	n, total int
	formats  []string
}

func newCountingReader(total int) *countingReader {
	return &countingReader{total: total,
		formats: []string{"(%03d) %03d-%04d", "%03d.%03d.%04d", "%03d-%03d-%04d"}}
}

func (r *countingReader) Next(max int) ([]string, error) {
	if r.n >= r.total {
		return nil, io.EOF
	}
	if r.n+max > r.total {
		max = r.total - r.n
	}
	out := make([]string, max)
	for i := range out {
		k := r.n + i
		out[i] = fmt.Sprintf(r.formats[k%3], 200+k%700, k%1000, k%10000)
	}
	r.n += max
	return out, nil
}

// The acceptance bound: a 1M-row apply through a real verified program
// stays within a fixed chunk-budget memory window. The materialized
// column plus its output would occupy well over 60 MB; the stream must
// hold only MaxInFlight×ChunkSize rows, so sampled live heap growth stays
// far below that.
func TestMillionRowBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row memory-bound run skipped in -short mode")
	}
	sp := phoneProgram(t)
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		for {
			select {
			case <-stopSampler:
				return
			case <-time.After(2 * time.Millisecond):
			}
			runtime.ReadMemStats(&ms)
			for {
				p := peak.Load()
				if ms.HeapAlloc <= p || peak.CompareAndSwap(p, ms.HeapAlloc) {
					break
				}
			}
		}
	}()

	const rows = 1_000_000
	st, err := stream.Run(sp, newCountingReader(rows), stream.LineEncoder{}, io.Discard,
		stream.Options{ChunkSize: 1024, Workers: 4})
	close(stopSampler)
	<-samplerDone
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != rows {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Flagged != 0 {
		t.Fatalf("flagged = %d, want 0", st.Flagged)
	}
	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	const bound = 32 << 20
	if growth > bound {
		t.Fatalf("peak heap growth %d MiB exceeds the %d MiB chunk budget (materializing would need > 60 MiB)",
			growth>>20, bound>>20)
	}
	t.Logf("1M rows: %.0f rows/sec, peak in-flight %d, heap growth %d KiB",
		st.RowsPerSec, st.PeakInFlight, growth>>10)
}

// Global counters accumulate across runs.
func TestGlobalCounters(t *testing.T) {
	stream.ResetGlobalStats()
	var got bytes.Buffer
	if _, err := stream.Run(upperApplier{}, stream.NewSliceReader([]string{"a", "1"}),
		stream.LineEncoder{}, &got, stream.Options{ChunkSize: 1, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	_, _ = stream.Run(upperApplier{}, &failingReader{}, stream.LineEncoder{}, &got,
		stream.Options{Workers: 1})
	c := stream.GlobalStats()
	if c.Streams != 2 || c.Errors != 1 || c.Rows != 2 || c.Chunks != 2 || c.Flagged != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
