package stream

import (
	"io"
	"strings"
	"testing"
)

// readAll drains a Reader in batches of max.
func readAll(t *testing.T, r Reader, max int) []string {
	t.Helper()
	var out []string
	for {
		batch, err := r.Next(max)
		out = append(out, batch...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
}

// Every read-buffer size must reassemble the same values: records split
// across reads, CRLF and LF mixed, empty records, a final record without
// its newline, and multi-byte UTF-8 cut at any byte boundary.
func TestLineReaderBufferBoundaries(t *testing.T) {
	input := "plain\r\ncafé 12\n日本語123\n\n\r\nlast without newline"
	want := []string{"plain", "café 12", "日本語123", "", "", "last without newline"}
	for _, bufSize := range []int{1, 2, 3, 5, 7, 64, defaultReadBuf} {
		for _, max := range []int{1, 2, 100} {
			r := newLineReaderSize(strings.NewReader(input), bufSize)
			got := readAll(t, r, max)
			if len(got) != len(want) {
				t.Fatalf("buf=%d max=%d: %d values, want %d: %q", bufSize, max, len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("buf=%d max=%d: value %d = %q, want %q", bufSize, max, i, got[i], want[i])
				}
			}
		}
	}
}

func TestLineReaderEmptyAndSingle(t *testing.T) {
	if got := readAll(t, NewLineReader(strings.NewReader("")), 8); len(got) != 0 {
		t.Fatalf("empty input: %q", got)
	}
	if got := readAll(t, NewLineReader(strings.NewReader("\n")), 8); len(got) != 1 || got[0] != "" {
		t.Fatalf("single newline: %q", got)
	}
	if got := readAll(t, NewLineReader(strings.NewReader("a")), 8); len(got) != 1 || got[0] != "a" {
		t.Fatalf("no trailing newline: %q", got)
	}
}

func TestNDJSONReader(t *testing.T) {
	input := "\"plain\"\n\"with\\nnewline\"\n\n\"café\"\r\n\"\\u00e9\"\n"
	want := []string{"plain", "with\nnewline", "café", "é"}
	for _, bufSize := range []int{1, 3, 64} {
		got := readAll(t, newNDJSONReaderSize(strings.NewReader(input), bufSize), 2)
		if len(got) != len(want) {
			t.Fatalf("buf=%d: %d values, want %d: %q", bufSize, len(got), len(want), got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("buf=%d: value %d = %q, want %q", bufSize, i, got[i], want[i])
			}
		}
	}
}

func TestNDJSONReaderRejectsNonStrings(t *testing.T) {
	for _, input := range []string{"42\n", "{\"a\":1}\n", "\"ok\"\nnot json\n"} {
		r := NewNDJSONReader(strings.NewReader(input))
		var err error
		for err == nil {
			_, err = r.Next(8)
		}
		if err == io.EOF {
			t.Errorf("input %q: accepted", input)
		}
	}
}

func TestCSVReader(t *testing.T) {
	input := "name,phone\r\n\"Fisher, Kate\",313-263-1192\n\"multi\nline\",734-645-8397\n"
	got := readAll(t, NewCSVReader(strings.NewReader(input), 0, true), 10)
	want := []string{"Fisher, Kate", "multi\nline"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("column 0 = %q, want %q", got, want)
	}
	got = readAll(t, NewCSVReader(strings.NewReader(input), 1, true), 1)
	if len(got) != 2 || got[0] != "313-263-1192" {
		t.Fatalf("column 1 = %q", got)
	}
}

func TestCSVReaderErrors(t *testing.T) {
	// Malformed quoting is an error, not a panic.
	r := NewCSVReader(strings.NewReader("ok\n\"unterminated\n"), 0, false)
	var err error
	for err == nil {
		_, err = r.Next(8)
	}
	if err == io.EOF {
		t.Error("malformed quoting accepted")
	}
	// Column out of range names the row.
	r = NewCSVReader(strings.NewReader("a,b\nc\n"), 1, false)
	_, err = r.Next(1)
	if err != nil {
		t.Fatalf("first row: %v", err)
	}
	if _, err = r.Next(1); err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("short row error = %v", err)
	}
}

// Row numbers in error messages are 1-based data rows for both framings: a
// skipped CSV header does not count, and neither do blank NDJSON separator
// lines, so "row N" always names the N'th value of the column.
func TestReaderErrorRowNumbering(t *testing.T) {
	// CSV with header: the first data row (physical record 2) is "row 1".
	r := NewCSVReader(strings.NewReader("name,phone\nonly-one-field\n"), 1, true)
	_, err := r.Next(8)
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Errorf("csv header-skip error = %v, want row 1", err)
	}
	// CSV without header: same input, but now the short record is data row 2.
	r = NewCSVReader(strings.NewReader("name,phone\nonly-one-field\n"), 1, false)
	var last error
	for last == nil {
		_, last = r.Next(8)
	}
	if !strings.Contains(last.Error(), "row 2") {
		t.Errorf("csv no-header error = %v, want row 2", last)
	}
	// NDJSON: blank separator lines (physical lines 1, 3) do not count;
	// the malformed physical line 4 is data row 2.
	r = NewNDJSONReader(strings.NewReader("\n\"ok\"\n\nnot json\n"))
	last = nil
	for last == nil {
		_, last = r.Next(8)
	}
	if !strings.Contains(last.Error(), "ndjson row 2") {
		t.Errorf("ndjson error = %v, want ndjson row 2", last)
	}
}

func TestSliceReaderBatches(t *testing.T) {
	rows := []string{"a", "b", "c", "d", "e"}
	r := NewSliceReader(rows)
	b1, err := r.Next(2)
	if err != nil || len(b1) != 2 {
		t.Fatalf("batch 1 = %q, %v", b1, err)
	}
	b2, err := r.Next(2)
	if err != nil || len(b2) != 2 {
		t.Fatalf("batch 2 = %q, %v", b2, err)
	}
	b3, err := r.Next(2)
	if err != io.EOF || len(b3) != 1 || b3[0] != "e" {
		t.Fatalf("batch 3 = %q, %v", b3, err)
	}
}

// The encoders invert their readers: read(write(values)) == values for any
// valid UTF-8 values (lines additionally require newline-free values).
func TestEncoderRoundTrip(t *testing.T) {
	values := []string{"plain", "", "café 12", "日本語123", "  spaced  ", `quotes " and \ back`}
	var buf []byte
	for _, v := range values {
		buf = NDJSONEncoder{}.AppendValue(buf, []byte(v))
	}
	got := readAll(t, NewNDJSONReader(strings.NewReader(string(buf))), 3)
	if len(got) != len(values) {
		t.Fatalf("round trip: %d values, want %d", len(got), len(values))
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("value %d = %q, want %q", i, got[i], values[i])
		}
	}
	withNewline := append(values, "a\nb")
	buf = buf[:0]
	for _, v := range withNewline {
		buf = NDJSONEncoder{}.AppendValue(buf, []byte(v))
	}
	got = readAll(t, NewNDJSONReader(strings.NewReader(string(buf))), 100)
	if got[len(got)-1] != "a\nb" {
		t.Fatalf("ndjson lost the newline value: %q", got)
	}

	buf = buf[:0]
	for _, v := range values {
		buf = LineEncoder{}.AppendValue(buf, []byte(v))
	}
	got = readAll(t, NewLineReader(strings.NewReader(string(buf))), 4)
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("lines value %d = %q, want %q", i, got[i], values[i])
		}
	}
}
