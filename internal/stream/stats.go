// Process-wide streaming counters, the GET /v1/stats surface: every Run
// folds its per-stream stats in here, so a deployment can watch bulk-apply
// throughput and failure counts without scraping per-request logs.
package stream

import "sync/atomic"

// Counters is a snapshot of the process-wide streaming totals.
type Counters struct {
	// Streams counts completed runs; Errors the runs that ended with a
	// reader or writer error (aborted client included).
	Streams int64 `json:"streams"`
	Errors  int64 `json:"errors"`
	// Rows, Chunks and Flagged accumulate over all runs.
	Rows    int64 `json:"rows"`
	Chunks  int64 `json:"chunks"`
	Flagged int64 `json:"flagged"`
	// PeakInFlight is the maximum in-flight chunk window any run reached.
	PeakInFlight int64 `json:"peak_in_flight"`
}

var global struct {
	streams, errors, rows, chunks, flagged, peak atomic.Int64
}

// record folds one run into the process counters.
func record(st Stats, err error) {
	global.streams.Add(1)
	if err != nil {
		global.errors.Add(1)
	}
	global.rows.Add(st.Rows)
	global.chunks.Add(st.Chunks)
	global.flagged.Add(st.Flagged)
	for {
		p := global.peak.Load()
		if int64(st.PeakInFlight) <= p || global.peak.CompareAndSwap(p, int64(st.PeakInFlight)) {
			break
		}
	}
}

// GlobalStats returns a snapshot of the process-wide streaming counters.
func GlobalStats() Counters {
	return Counters{
		Streams:      global.streams.Load(),
		Errors:       global.errors.Load(),
		Rows:         global.rows.Load(),
		Chunks:       global.chunks.Load(),
		Flagged:      global.flagged.Load(),
		PeakInFlight: global.peak.Load(),
	}
}

// ResetGlobalStats zeroes the process counters (tests and benchmarks).
func ResetGlobalStats() {
	global.streams.Store(0)
	global.errors.Store(0)
	global.rows.Store(0)
	global.chunks.Store(0)
	global.flagged.Store(0)
	global.peak.Store(0)
}
