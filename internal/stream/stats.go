// Process-wide streaming counters, backed by internal/obs so one set of
// numbers serves both surfaces: every Run folds its per-stream stats in
// here, GET /v1/stats reports them as the JSON Counters document, and
// GET /metrics exposes the same series (clx_stream_*) in Prometheus text
// format — no dual bookkeeping to drift.
package stream

import "clx/internal/obs"

// Counters is a snapshot of the process-wide streaming totals.
type Counters struct {
	// Streams counts completed runs; Errors the runs that ended with a
	// reader or writer error (aborted client included).
	Streams int64 `json:"streams"`
	Errors  int64 `json:"errors"`
	// Rows, Chunks and Flagged accumulate over all runs.
	Rows    int64 `json:"rows"`
	Chunks  int64 `json:"chunks"`
	Flagged int64 `json:"flagged"`
	// PeakInFlight is the maximum in-flight chunk window any run reached.
	PeakInFlight int64 `json:"peak_in_flight"`
}

var (
	mStreams = obs.NewCounter("clx_streams_total",
		"Completed streaming bulk-apply runs (errored runs included).")
	mStreamErrors = obs.NewCounter("clx_stream_errors_total",
		"Streaming runs that ended with a reader or writer error.")
	mStreamRows = obs.NewCounter("clx_stream_rows_total",
		"Rows emitted by streaming bulk-apply runs.")
	mStreamChunks = obs.NewCounter("clx_stream_chunks_total",
		"Chunks emitted by streaming bulk-apply runs.")
	mStreamFlagged = obs.NewCounter("clx_stream_flagged_total",
		"Streamed rows left unchanged because no recorded pattern covers them.")
	mStreamPeak = obs.NewGauge("clx_stream_peak_in_flight",
		"High-water mark of admitted-but-unemitted chunks across all runs.")
	mChunkDur = obs.NewHistogram("clx_stream_chunk_duration_seconds",
		"Per-chunk transform latency inside the streaming engine.", nil)
)

// record folds one run into the process counters.
func record(st Stats, err error) {
	mStreams.Inc()
	if err != nil {
		mStreamErrors.Inc()
	}
	mStreamRows.Add(st.Rows)
	mStreamChunks.Add(st.Chunks)
	mStreamFlagged.Add(st.Flagged)
	mStreamPeak.Max(int64(st.PeakInFlight))
}

// GlobalStats returns a snapshot of the process-wide streaming counters.
func GlobalStats() Counters {
	return Counters{
		Streams:      mStreams.Value(),
		Errors:       mStreamErrors.Value(),
		Rows:         mStreamRows.Value(),
		Chunks:       mStreamChunks.Value(),
		Flagged:      mStreamFlagged.Value(),
		PeakInFlight: mStreamPeak.Value(),
	}
}

// ResetGlobalStats zeroes the process counters (tests and benchmarks).
func ResetGlobalStats() {
	mStreams.Reset()
	mStreamErrors.Reset()
	mStreamRows.Reset()
	mStreamChunks.Reset()
	mStreamFlagged.Reset()
	mStreamPeak.Reset()
	mChunkDur.Reset()
}
