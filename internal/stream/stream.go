// Package stream is the bounded-memory bulk-apply engine: it pulls a
// column through a verified program chunk by chunk, fanning chunks across
// the shared worker pool and re-emitting results in input order, so a
// million-row apply holds only a fixed window of chunks in memory instead
// of the whole column (paper §5 Transform, scaled past one slice).
//
// Determinism is inherited, not re-proven: each worker transforms its
// chunk with the same per-row Apply the in-memory SavedProgram.Transform
// uses, chunk boundaries depend only on ChunkSize, and parallel.Stream
// emits chunks in admission order — so the concatenated output is
// byte-identical to the in-memory path for every chunk size and worker
// count, which the differential suite checks over the whole 47-task
// benchmark. Backpressure is structural: at most MaxInFlight chunks are
// admitted and unemitted, so a slow sink stalls the reader rather than
// growing a buffer.
package stream

import (
	"io"
	"sync/atomic"
	"time"

	"clx/internal/parallel"
)

// Applier transforms one value; ok=false means the value was left
// unchanged (no recorded pattern covers it). clx.SavedProgram satisfies
// this. Implementations must be safe for concurrent use.
type Applier interface {
	Apply(s string) (string, bool)
}

// appendApplier is the allocation-free fast path: transform straight into
// a caller buffer. clx.SavedProgram implements it; the engine falls back
// to Apply for plain Appliers.
type appendApplier interface {
	AppendApply(dst []byte, s string) ([]byte, bool)
}

// ArenaApplier is the zero-allocation fast path over appendApplier: the
// engine acquires one row-apply function per chunk, so the applier can
// bind chunk-scoped scratch (span buffers, automaton state) once and
// amortize it across every row of the chunk instead of paying per-row
// pool traffic. release returns the scratch after the chunk is encoded;
// the returned apply must not be called after release, and distinct
// ChunkApplier results must be independently usable (chunks run
// concurrently). clx.SavedProgram implements this when its program
// compiled to a byte automaton.
type ArenaApplier interface {
	ChunkApplier() (apply func(dst []byte, s string) ([]byte, bool), release func())
}

// Options configure one streaming run.
type Options struct {
	// ChunkSize is the number of rows per chunk (default 1024). It is the
	// unit of parallelism, ordering, and flushing.
	ChunkSize int
	// Workers bounds the chunk fan-out with the parallel.Workers
	// semantics: 0 = one per CPU, 1 = serial on the calling goroutine.
	Workers int
	// MaxInFlight bounds the chunks admitted and not yet emitted (default
	// 2× the resolved worker count). MaxInFlight × ChunkSize rows is the
	// engine's memory window.
	MaxInFlight int
	// OnFlagged, if set, is called in row order with the global index of
	// every row left unchanged — the streaming counterpart of Transform's
	// flagged list.
	OnFlagged func(row int)
	// Flush, if set, runs after each chunk's payload is written — wire it
	// to http.Flusher so clients see progress per chunk.
	Flush func() error
}

// DefaultChunkSize is the chunk size when Options.ChunkSize is 0.
const DefaultChunkSize = 1024

// Stats describes one completed (or aborted) streaming run.
type Stats struct {
	// Rows and Chunks are the emitted totals; Flagged counts rows left
	// unchanged.
	Rows    int64 `json:"rows"`
	Chunks  int64 `json:"chunks"`
	Flagged int64 `json:"flagged"`
	// PeakInFlight is the high-water mark of admitted-but-unemitted
	// chunks — at most Window by construction.
	PeakInFlight int `json:"peak_in_flight"`
	// Window is the resolved admission bound the run used (MaxInFlight,
	// or the parallel.Window default sized off effective parallelism).
	Window int `json:"window"`
	// Duration and RowsPerSec time the run end to end.
	Duration   time.Duration `json:"duration_ns"`
	RowsPerSec float64       `json:"rows_per_sec"`
}

// chunkOut is one transformed chunk: the encoded payload plus the local
// indices of flagged rows.
type chunkOut struct {
	payload []byte
	flagged []int
	rows    int
}

// Run pulls every value of r through prog, encodes results with enc, and
// writes them to w in input order, flushing per chunk. It returns the
// run's stats along with the first reader or writer error; on error the
// output ends cleanly at a chunk boundary (chunks before the failure are
// complete, nothing after it is written). Process-wide counters are
// updated either way (see Counters).
func Run(prog Applier, r Reader, enc Encoder, w io.Writer, opts Options) (Stats, error) {
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	ca, arenaPath := prog.(ArenaApplier)
	aa, fastPath := prog.(appendApplier)

	var (
		st       Stats
		inFlight atomic.Int64
		peak     atomic.Int64
		srcDone  bool
	)
	start := time.Now()

	next := func() ([]string, bool, error) {
		if srcDone {
			return nil, false, nil
		}
		rows, err := r.Next(chunkSize)
		if err == io.EOF {
			srcDone = true
			err = nil
		}
		if err != nil {
			return nil, false, err
		}
		if len(rows) == 0 {
			return nil, false, nil
		}
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		return rows, true, nil
	}

	apply := func(rows []string) chunkOut {
		defer func(t0 time.Time) { mChunkDur.Observe(time.Since(t0)) }(time.Now())
		out := chunkOut{rows: len(rows), payload: make([]byte, 0, 16*len(rows))}
		if arenaPath {
			applyRow, release := ca.ChunkApplier()
			defer release()
			var val []byte
			for i, s := range rows {
				var ok bool
				val, ok = applyRow(val[:0], s)
				if !ok {
					out.flagged = append(out.flagged, i)
				}
				out.payload = enc.AppendValue(out.payload, val)
			}
			return out
		}
		if fastPath {
			var val []byte
			for i, s := range rows {
				var ok bool
				val, ok = aa.AppendApply(val[:0], s)
				if !ok {
					out.flagged = append(out.flagged, i)
				}
				out.payload = enc.AppendValue(out.payload, val)
			}
			return out
		}
		for i, s := range rows {
			v, ok := prog.Apply(s)
			if !ok {
				out.flagged = append(out.flagged, i)
			}
			out.payload = enc.AppendValue(out.payload, []byte(v))
		}
		return out
	}

	emit := func(c chunkOut) error {
		inFlight.Add(-1)
		if opts.OnFlagged != nil {
			for _, li := range c.flagged {
				opts.OnFlagged(int(st.Rows) + li)
			}
		}
		if _, err := w.Write(c.payload); err != nil {
			return err
		}
		st.Rows += int64(c.rows)
		st.Chunks++
		st.Flagged += int64(len(c.flagged))
		if opts.Flush != nil {
			if err := opts.Flush(); err != nil {
				return err
			}
		}
		return nil
	}

	st.Window = parallel.Window(opts.Workers, opts.MaxInFlight)
	err := parallel.Stream(opts.Workers, st.Window, next, apply, emit)
	st.PeakInFlight = int(peak.Load())
	st.Duration = time.Since(start)
	if s := st.Duration.Seconds(); s > 0 {
		st.RowsPerSec = float64(st.Rows) / s
	}
	record(st, err)
	return st, err
}
