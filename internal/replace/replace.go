// Package replace implements the program explanation of paper §5: a
// synthesized UniFi program is presented to the user as a set of regexp
// Replace operations parameterized by Wrangler-style natural-language
// regexps (Figure 4). Consecutive extracted tokens are merged into a single
// capture group, ConstStr text appears verbatim in the replacement, and
// Extract operations become $k group references.
//
// The rendered regexp strings are for the user; execution goes through the
// span-based matcher (internal/rematch via pattern.Match), which has
// identical semantics for these anchored patterns.
package replace

import (
	"fmt"
	"strings"

	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/unifi"
)

// Op is one Replace operation: "Replace 'Regex' in column with
// 'Replacement'".
type Op struct {
	// Source is the matched pattern.
	Source pattern.Pattern
	// Groups are the token ranges of Source captured as $1..$n, half-open
	// zero-based [start, end) ranges in ascending order.
	Groups [][2]int
	// Replacement is the replacement template with $k references.
	Replacement string
	// Where is an optional content-condition description appended to the
	// rendering ("token 1 is \"picture\"") — the §7.4 guard extension.
	Where string
	// Plan is the underlying atomic transformation plan.
	Plan unifi.Plan
}

// Program is an ordered set of Replace operations; the first operation whose
// pattern matches a string is applied.
type Program []Op

// Explain converts a UniFi program into its Replace-operation presentation.
func Explain(prog unifi.Program) Program {
	out := make(Program, 0, len(prog.Cases))
	for _, c := range prog.Cases {
		out = append(out, ExplainCase(c))
	}
	return out
}

// ExplainCase converts one (Match, Plan) case into a Replace operation,
// merging consecutive extracted tokens into a single group ("if multiple
// consecutive tokens are extracted in p, we merge them as one component",
// §5).
func ExplainCase(c unifi.Case) Op {
	// Collect extract ranges in plan order, merging adjacent plan ops that
	// extract contiguous source tokens.
	type piece struct {
		isConst bool
		text    string // const text
		rng     [2]int // 1-based inclusive token range for extracts
	}
	var pieces []piece
	for _, op := range c.Plan.Ops {
		switch op := op.(type) {
		case unifi.ConstStr:
			pieces = append(pieces, piece{isConst: true, text: op.S})
		case unifi.Extract:
			if n := len(pieces); n > 0 && !pieces[n-1].isConst && pieces[n-1].rng[1]+1 == op.I {
				pieces[n-1].rng[1] = op.J
				continue
			}
			pieces = append(pieces, piece{rng: [2]int{op.I, op.J}})
		}
	}
	// Assign group numbers to distinct extract ranges in source order, so
	// the groups read left to right in the regexp. Overlapping ranges are
	// kept as separate groups only if identical; distinct overlapping
	// ranges fall back to per-piece groups in plan order.
	ranges := make(map[[2]int]int)
	var ordered [][2]int
	for _, pc := range pieces {
		if pc.isConst {
			continue
		}
		if _, ok := ranges[pc.rng]; !ok {
			ranges[pc.rng] = 0
			ordered = append(ordered, pc.rng)
		}
	}
	sortRanges(ordered)
	groups := make([][2]int, 0, len(ordered))
	if nonOverlapping(ordered) {
		for i, r := range ordered {
			ranges[r] = i + 1
			groups = append(groups, [2]int{r[0] - 1, r[1]}) // to 0-based half-open
		}
	} else {
		// Rare: overlapping distinct ranges; number groups in plan order.
		ordered = ordered[:0]
		for _, pc := range pieces {
			if pc.isConst {
				continue
			}
			if ranges[pc.rng] == 0 {
				ranges[pc.rng] = len(ordered) + 1
				ordered = append(ordered, pc.rng)
				groups = append(groups, [2]int{pc.rng[0] - 1, pc.rng[1]})
			}
		}
	}
	var repl strings.Builder
	for _, pc := range pieces {
		if pc.isConst {
			repl.WriteString(strings.ReplaceAll(pc.text, "$", "$$"))
			continue
		}
		fmt.Fprintf(&repl, "$%d", ranges[pc.rng])
	}
	return Op{
		Source:      c.Source,
		Groups:      groups,
		Replacement: repl.String(),
		Plan:        c.Plan,
	}
}

func sortRanges(rs [][2]int) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j][0] < rs[j-1][0]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func nonOverlapping(rs [][2]int) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i][0] <= rs[i-1][1] {
			return false
		}
	}
	return true
}

// NLRegex renders the operation's match pattern as a Wrangler-style regexp
// with capture groups, e.g. "/^\(({digit}{3})\)({digit}{3})\-({digit}{4})$/".
func (op Op) NLRegex() string { return op.Source.GroupedNLRegex(op.Groups) }

// Regex renders the operation's match pattern as a POSIX-style regexp with
// capture groups.
func (op Op) Regex() string { return op.Source.GroupedRegex(op.Groups) }

// String renders the full operation as presented in Figure 4.
func (op Op) String() string {
	s := fmt.Sprintf("Replace %s in column with '%s'", op.NLRegex(), op.Replacement)
	if op.Where != "" {
		s += " where " + op.Where
	}
	return s
}

// Apply applies the replace operation to s. ok is false when s does not
// match the operation's pattern. Matching goes through the process-wide
// compile cache: applying one operation row by row — the preview table, the
// saved-program path, the CLI — reuses a single prepared matcher instead of
// rebuilding backtracking state per row.
func (op Op) Apply(s string) (string, bool) {
	spans, match := rematch.CompileCached(op.Source.Tokens()).Match(s)
	if !match {
		return "", false
	}
	var b strings.Builder
	repl := op.Replacement
	for i := 0; i < len(repl); {
		if repl[i] != '$' || i+1 >= len(repl) {
			b.WriteByte(repl[i])
			i++
			continue
		}
		if repl[i+1] == '$' {
			b.WriteByte('$')
			i += 2
			continue
		}
		j := i + 1
		n := 0
		for j < len(repl) && repl[j] >= '0' && repl[j] <= '9' {
			n = n*10 + int(repl[j]-'0')
			j++
		}
		if j == i+1 || n < 1 || n > len(op.Groups) {
			b.WriteByte(repl[i])
			i++
			continue
		}
		g := op.Groups[n-1]
		b.WriteString(s[spans[g[0]].Start:spans[g[1]-1].End])
		i = j
	}
	return b.String(), true
}

// Apply applies the first matching operation, returning ok=false when none
// matches.
func (p Program) Apply(s string) (string, bool) {
	for _, op := range p {
		if out, ok := op.Apply(s); ok {
			return out, true
		}
	}
	return "", false
}

// String renders the program as the numbered operation list of Figure 4.
func (p Program) String() string {
	var b strings.Builder
	for i, op := range p {
		fmt.Fprintf(&b, "%d %s\n", i+1, op.String())
	}
	return b.String()
}
