package replace

import (
	"strings"
	"testing"

	"clx/internal/cluster"
	"clx/internal/pattern"
	"clx/internal/synth"
	"clx/internal/unifi"
)

// Paper Figure 4, operation 2: the dash-format phone source.
func TestExplainFigure4(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("<D>3'-'<D>3'-'<D>4"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.ConstStr{S: "("}, unifi.Extract{I: 1, J: 1},
			unifi.ConstStr{S: ")"}, unifi.ConstStr{S: " "},
			unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "-"},
			unifi.Extract{I: 5, J: 5},
		}},
	}
	op := ExplainCase(c)
	wantRegex := `/^({digit}{3})\-({digit}{3})\-({digit}{4})$/`
	if got := op.NLRegex(); got != wantRegex {
		t.Errorf("NLRegex = %q, want %q", got, wantRegex)
	}
	if op.Replacement != "($1) $2-$3" {
		t.Errorf("Replacement = %q, want ($1) $2-$3", op.Replacement)
	}
	got, ok := op.Apply("734-422-8073")
	if !ok || got != "(734) 422-8073" {
		t.Errorf("Apply = %q, %v", got, ok)
	}
	if _, ok := op.Apply("(734) 422-8073"); ok {
		t.Error("Apply matched a non-matching string")
	}
	if !strings.HasPrefix(op.String(), "Replace /^") {
		t.Errorf("String() = %q", op.String())
	}
}

// Consecutive extracts merge into a single group (§5 "Program Explanation").
func TestExplainMergesConsecutiveExtracts(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("'['<U>+'-'<D>+"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.Extract{I: 1, J: 2}, unifi.Extract{I: 3, J: 4}, unifi.ConstStr{S: "]"},
		}},
	}
	op := ExplainCase(c)
	if len(op.Groups) != 1 {
		t.Fatalf("groups = %v, want one merged group", op.Groups)
	}
	if op.Replacement != "$1]" {
		t.Errorf("Replacement = %q, want $1]", op.Replacement)
	}
	got, ok := op.Apply("[CPT-00340")
	if !ok || got != "[CPT-00340]" {
		t.Errorf("Apply = %q, %v", got, ok)
	}
}

// Groups are numbered in source order even when the plan reorders fields
// (the date swap).
func TestExplainGroupNumbersInSourceOrder(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("<D>2'/'<D>2'/'<D>4"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "-"},
			unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: "-"},
			unifi.Extract{I: 5, J: 5},
		}},
	}
	op := ExplainCase(c)
	if op.Replacement != "$2-$1-$3" {
		t.Errorf("Replacement = %q, want $2-$1-$3", op.Replacement)
	}
	got, ok := op.Apply("31/12/2019")
	if !ok || got != "12-31-2019" {
		t.Errorf("Apply = %q, %v", got, ok)
	}
}

// A group reused twice in the plan keeps one capture group referenced twice.
func TestExplainReusedGroup(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("<D>2"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: ":"}, unifi.Extract{I: 1, J: 1},
		}},
	}
	op := ExplainCase(c)
	if len(op.Groups) != 1 || op.Replacement != "$1:$1" {
		t.Errorf("groups = %v replacement = %q", op.Groups, op.Replacement)
	}
	got, ok := op.Apply("42")
	if !ok || got != "42:42" {
		t.Errorf("Apply = %q, %v", got, ok)
	}
}

func TestDollarEscaping(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("<D>2"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.ConstStr{S: "$"}, unifi.Extract{I: 1, J: 1},
		}},
	}
	op := ExplainCase(c)
	if op.Replacement != "$$$1" {
		t.Errorf("Replacement = %q, want $$$1", op.Replacement)
	}
	got, ok := op.Apply("42")
	if !ok || got != "$42" {
		t.Errorf("Apply = %q, %v", got, ok)
	}
}

// Replace program semantics are identical to the UniFi program they explain.
func TestExplainEquivalentToUniFi(t *testing.T) {
	data := []string{
		"(734) 645-8397", "(734)586-7252", "734.236.3466",
		"734-422-8073", "248 555 1234",
	}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	res := synth.Synthesize(cluster.Profile(data, cluster.DefaultOptions()), target, synth.DefaultOptions())
	uni := res.Program()
	rep := Explain(uni)
	if len(rep) != len(uni.Cases) {
		t.Fatalf("replace ops = %d, uni cases = %d", len(rep), len(uni.Cases))
	}
	for _, s := range data {
		wantOut, wantErr := uni.Apply(s)
		gotOut, ok := rep.Apply(s)
		if (wantErr == nil) != ok {
			t.Errorf("Apply(%q): uni err=%v, replace ok=%v", s, wantErr, ok)
			continue
		}
		if ok && gotOut != wantOut {
			t.Errorf("Apply(%q): replace %q != uni %q", s, gotOut, wantOut)
		}
	}
	if _, ok := rep.Apply("no match"); ok {
		t.Error("replace program matched garbage")
	}
}

func TestProgramString(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("<D>3'-'<D>3'-'<D>4"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.ConstStr{S: "("}, unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: ") "},
			unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "-"}, unifi.Extract{I: 5, J: 5},
		}},
	}
	p := Explain(unifi.Program{Cases: []unifi.Case{c}})
	s := p.String()
	if !strings.HasPrefix(s, "1 Replace /^") || !strings.Contains(s, "with '($1) $2-$3'") {
		t.Errorf("Program.String() = %q", s)
	}
}

func TestRegexRendering(t *testing.T) {
	c := unifi.Case{
		Source: pattern.MustParse("'('<D>3')'' '<D>3'-'<D>4"),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.Extract{I: 2, J: 2}, unifi.ConstStr{S: "-"},
			unifi.Extract{I: 5, J: 5}, unifi.ConstStr{S: "-"},
			unifi.Extract{I: 7, J: 7},
		}},
	}
	op := ExplainCase(c)
	want := `^\(([0-9]{3})\) ([0-9]{3})\-([0-9]{4})$`
	if got := op.Regex(); got != want {
		t.Errorf("Regex = %q, want %q", got, want)
	}
}
