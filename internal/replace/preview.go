// The Preview Table of paper Figure 8: a before/after sample visualizing a
// Replace operation's effect, shown next to each suggested operation so the
// user can verify it at a glance.
package replace

import (
	"fmt"
	"strings"
)

// PreviewRow is one before/after pair of a preview table.
type PreviewRow struct {
	Input, Output string
}

// Preview samples up to max rows of data that the operation matches and
// returns their transformations (paper Fig. 8).
func (op Op) Preview(data []string, max int) []PreviewRow {
	if max <= 0 {
		max = 3
	}
	var rows []PreviewRow
	for _, s := range data {
		out, ok := op.Apply(s)
		if !ok {
			continue
		}
		rows = append(rows, PreviewRow{Input: s, Output: out})
		if len(rows) == max {
			break
		}
	}
	return rows
}

// PreviewTable renders the program with a preview table per operation:
//
//	1 Replace /^.../ in column with '...'
//	     734-422-8073   ->  (734) 422-8073
//	     313-263-1192   ->  (313) 263-1192
func (p Program) PreviewTable(data []string, perOp int) string {
	var b strings.Builder
	width := 0
	for _, s := range data {
		if len(s) > width {
			width = len(s)
		}
	}
	for i, op := range p {
		fmt.Fprintf(&b, "%d %s\n", i+1, op.String())
		for _, row := range op.Preview(data, perOp) {
			fmt.Fprintf(&b, "     %-*s  ->  %s\n", width, row.Input, row.Output)
		}
	}
	return b.String()
}
