// Handlers for stateful interactive sessions: the paper's cluster →
// label → transform → verify → repair loop held server-side across
// requests (ROADMAP item 3). The sessionstore owns lifecycle and
// locking; these handlers translate HTTP to the clx.Session/
// clx.Transformation API and enforce the staleness protocol — a
// transformation labeled before an append answers 409 until the client
// re-labels, instead of silently transforming the old snapshot.
//
// Admission mirrors streaming: past MaxSessions, create answers 429 with
// a Retry-After estimating the next TTL expiry.
package daemon

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	clx "clx"
	"clx/internal/obs"
	"clx/internal/progstore"
	"clx/internal/sessionstore"
)

// Per-stage latency of the session endpoints, one labeled series per
// stage, exported on /metrics and summarized under /v1/stats sessions.
var (
	sessCreateDur = obs.NewHistogram("clx_session_stage_duration_seconds",
		"Session endpoint latency by stage.", nil, "stage", "create")
	sessAppendDur = obs.NewHistogram("clx_session_stage_duration_seconds",
		"Session endpoint latency by stage.", nil, "stage", "append")
	sessLabelDur = obs.NewHistogram("clx_session_stage_duration_seconds",
		"Session endpoint latency by stage.", nil, "stage", "label")
	sessRepairDur = obs.NewHistogram("clx_session_stage_duration_seconds",
		"Session endpoint latency by stage.", nil, "stage", "repair")
	sessCommitDur = obs.NewHistogram("clx_session_stage_duration_seconds",
		"Session endpoint latency by stage.", nil, "stage", "commit")

	sessRepairsTotal = obs.NewCounter("clx_session_repairs_total",
		"Repairs applied through session endpoints (ranked picks and example feedback).")
	sessCommitsTotal = obs.NewCounter("clx_session_commits_total",
		"Session transformations committed into the program registry.")
)

// sessionJSON is the wire form of one session's state.
type sessionJSON struct {
	ID             string    `json:"id"`
	Rows           int       `json:"rows"`
	DistinctValues int       `json:"distinct_values"`
	LeafPatterns   int       `json:"leaf_patterns"`
	Levels         int       `json:"levels"`
	// Generation counts the column-changing appends; it pairs with the
	// label response's generation to explain a 409.
	Generation uint64 `json:"generation"`
	// Labeled reports an installed transformation; Stale that it predates
	// the latest append and repair/commit will answer 409.
	Labeled  bool      `json:"labeled"`
	Stale    bool      `json:"stale,omitempty"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// sessionJSONOf renders h. Caller holds the handle lock.
func sessionJSONOf(h *sessionstore.Handle) sessionJSON {
	sess := h.Session()
	st := sess.ProfileStats()
	j := sessionJSON{
		ID:             h.ID(),
		Rows:           st.Rows,
		DistinctValues: st.DistinctValues,
		LeafPatterns:   st.LeafPatterns,
		Levels:         sess.Levels(),
		Generation:     sess.Generation(),
		Created:        h.CreatedAt(),
		LastUsed:       h.LastUsed(),
	}
	if tr := h.Transformation(); tr != nil {
		j.Labeled = true
		j.Stale = tr.Stale()
	}
	return j
}

// acquireSession resolves {id}, locks the session, and writes the 404
// envelope itself on a miss. Callers must run release when done.
func (s *server) acquireSession(w http.ResponseWriter, r *http.Request) (*sessionstore.Handle, func(), bool) {
	id := r.PathValue("id")
	h, release, err := s.sessions.Acquire(id)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("session %s not found (expired or never created)", id))
		return nil, nil, false
	}
	return h, release, true
}

// sessionCreateRequest is the POST /v1/sessions body.
type sessionCreateRequest struct {
	// Rows is the column the session profiles and grows.
	Rows []string `json:"rows"`
}

// handleSessionCreate registers a session over the uploaded column and
// returns its id and profile. The routing proxy pins the id via
// X-Session-ID so rendezvous routing of follow-up requests lands here;
// direct clients get a minted id.
func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) { sessCreateDur.Observe(time.Since(t0)) }(time.Now())
	req, ok := decode[sessionCreateRequest](w, r)
	if !ok {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing rows"))
		return
	}
	h, err := s.sessions.Create(r.Header.Get("X-Session-ID"), req.Rows, s.opts)
	if errors.Is(err, sessionstore.ErrFull) {
		w.Header().Set("Retry-After",
			strconv.Itoa(int(s.sessions.RetryAfter().Round(time.Second).Seconds())))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("session limit reached; retry later or delete a session"))
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	_, release, err := s.sessions.Acquire(h.ID())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer release()
	writeJSON(w, http.StatusCreated, sessionJSONOf(h))
}

type sessionListResponse struct {
	Sessions []sessionstore.Info `json:"sessions"`
}

func (s *server) handleSessionList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sessionListResponse{Sessions: s.sessions.List()})
}

func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	writeJSON(w, http.StatusOK, sessionJSONOf(h))
}

func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("session %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleSessionClusters serves the pattern hierarchy: without ?level=N
// the top-level clusters with member rows, with it the requested level
// (0 = leaves).
func (s *server) handleSessionClusters(w http.ResponseWriter, r *http.Request) {
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	sess := h.Session()
	q := r.URL.Query().Get("level")
	if q == "" {
		writeJSON(w, http.StatusOK, clusterResponse{Clusters: toClusterJSON(sess.Clusters(), true)})
		return
	}
	level, err := strconv.Atoi(q)
	if err != nil || level < 0 || level >= sess.Levels() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("level %q out of range [0,%d)", q, sess.Levels()))
		return
	}
	writeJSON(w, http.StatusOK, clusterResponse{Clusters: toClusterJSON(sess.Level(level), false)})
}

// sessionAppendRequest is the POST /v1/sessions/{id}/append body.
type sessionAppendRequest struct {
	Rows []string `json:"rows"`
}

type sessionAppendResponse struct {
	sessionJSON
	// Appended echoes the accepted row count; the profile re-ran
	// incrementally over just these rows (empty appends are no-ops).
	Appended int `json:"appended"`
}

func (s *server) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) { sessAppendDur.Observe(time.Since(t0)) }(time.Now())
	req, ok := decode[sessionAppendRequest](w, r)
	if !ok {
		return
	}
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	h.Session().AppendAndReprofile(req.Rows)
	writeJSON(w, http.StatusOK, sessionAppendResponse{
		sessionJSON: sessionJSONOf(h),
		Appended:    len(req.Rows),
	})
}

// sessionLabelRequest is the POST /v1/sessions/{id}/label body.
type sessionLabelRequest struct {
	// Target is the desired pattern, compact or NL notation.
	Target string `json:"target"`
	// PreviewRows controls before/after samples per operation (default 3,
	// 0 disables).
	PreviewRows *int `json:"preview_rows,omitempty"`
}

// sessionSourceJSON summarizes one source pattern of a labeled
// transformation: its index (the handle for repair), pattern, and how
// many ranked plans the repair endpoint can score.
type sessionSourceJSON struct {
	Index   int    `json:"index"`
	Pattern string `json:"pattern"`
	Plans   int    `json:"plans"`
}

type sessionLabelResponse struct {
	Ops     []opJSON            `json:"ops"`
	Sources []sessionSourceJSON `json:"sources"`
	Flagged []int               `json:"flagged,omitempty"`
	Clean   []int               `json:"clean,omitempty"`
	// Generation is the column generation this transformation covers; an
	// append bumps the session past it and repair/commit answer 409
	// until a re-label.
	Generation uint64 `json:"generation"`
}

// handleSessionLabel synthesizes (or re-synthesizes, after appends) the
// transformation to the target pattern and installs it as the session's
// current one.
func (s *server) handleSessionLabel(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) { sessLabelDur.Observe(time.Since(t0)) }(time.Now())
	req, ok := decode[sessionLabelRequest](w, r)
	if !ok {
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing target pattern"))
		return
	}
	target, err := clx.ParseAnyPattern(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	tr, err := h.Session().Label(target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	h.SetTransformation(tr)
	h.SetMeta(nil) // repairs recorded against a previous labeling are void
	previewRows := 3
	if req.PreviewRows != nil {
		previewRows = *req.PreviewRows
	}
	writeJSON(w, http.StatusOK, s.labelResponse(h, previewRows))
}

// labelResponse renders the session's current transformation. Caller
// holds the handle lock.
func (s *server) labelResponse(h *sessionstore.Handle, previewRows int) sessionLabelResponse {
	tr := h.Transformation()
	rows := h.Session().Data()
	resp := sessionLabelResponse{Generation: tr.Generation()}
	for i, op := range tr.Replaces() {
		j := opJSON{
			NL:          op.NLRegex(),
			Regex:       op.Regex(),
			Replacement: op.Replacement,
			Source:      op.Source.String(),
		}
		if previewRows > 0 {
			for _, p := range op.Preview(rows, previewRows) {
				j.Preview = append(j.Preview, previewJSON{Input: p.Input, Output: p.Output})
			}
		}
		for _, alt := range tr.Alternatives(i) {
			j.Alternatives = append(j.Alternatives, alt.Replacement)
		}
		resp.Ops = append(resp.Ops, j)
	}
	for i, src := range tr.Sources() {
		resp.Sources = append(resp.Sources, sessionSourceJSON{
			Index:   i,
			Pattern: src.String(),
			Plans:   len(tr.RepairCandidates(i)),
		})
	}
	_, resp.Flagged = tr.Run()
	resp.Clean = tr.Clean()
	return resp
}

// currentTransformation fetches the session's transformation, writing
// the 409 envelope when there is none or it is stale. Caller holds the
// handle lock.
func currentTransformation(w http.ResponseWriter, h *sessionstore.Handle) (*clx.Transformation, bool) {
	tr := h.Transformation()
	if tr == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("session %s has no labeled transformation; POST label first", h.ID()))
		return nil, false
	}
	if tr.Stale() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("transformation is stale: labeled at generation %d, session is at %d after appends; re-label",
				tr.Generation(), h.Session().Generation()))
		return nil, false
	}
	return tr, true
}

// repairCandidateJSON is one scored alternative plan.
type repairCandidateJSON struct {
	Source      int    `json:"source"`
	Alt         int    `json:"alt"`
	NL          string `json:"nl"`
	Regex       string `json:"regex"`
	Replacement string `json:"replacement"`
	// The quantitative objectives, in ranking order: rows the plan still
	// leaves flagged, op-level edit distance from the plan in effect, and
	// the paper's description length as tie-break. Score folds them into
	// one ascending scalar for display.
	Residual     int     `json:"residual"`
	EditDistance int     `json:"edit_distance"`
	DL           float64 `json:"dl"`
	Score        float64 `json:"score"`
	Selected     bool    `json:"selected"`
}

type repairCandidatesResponse struct {
	Source     int                   `json:"source"`
	Candidates []repairCandidateJSON `json:"candidates"`
}

func toCandidatesJSON(cands []clx.RepairCandidate) []repairCandidateJSON {
	out := make([]repairCandidateJSON, 0, len(cands))
	for _, c := range cands {
		out = append(out, repairCandidateJSON{
			Source:       c.Source,
			Alt:          c.Alt,
			NL:           c.Op.NLRegex(),
			Regex:        c.Op.Regex(),
			Replacement:  c.Op.Replacement,
			Residual:     c.Residual,
			EditDistance: c.EditDistance,
			DL:           c.DL,
			Score:        c.Score,
			Selected:     c.Selected,
		})
	}
	return out
}

// handleSessionRepairCandidates serves GET .../repair?source=N: the
// source's ranked plans scored best-first by (residual rows, edit
// distance, description length).
func (s *server) handleSessionRepairCandidates(w http.ResponseWriter, r *http.Request) {
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	tr, ok := currentTransformation(w, h)
	if !ok {
		return
	}
	src, err := strconv.Atoi(r.URL.Query().Get("source"))
	if err != nil || src < 0 || src >= len(tr.Sources()) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("source %q out of range [0,%d)", r.URL.Query().Get("source"), len(tr.Sources())))
		return
	}
	writeJSON(w, http.StatusOK, repairCandidatesResponse{
		Source:     src,
		Candidates: toCandidatesJSON(tr.RepairCandidates(src)),
	})
}

// sessionRepairRequest is the POST .../repair body: either a ranked pick
// (source+alt, as scored by GET .../repair) or example feedback
// (input → expected output pairs, §6.4's user-provided examples).
type sessionRepairRequest struct {
	Source   *int              `json:"source,omitempty"`
	Alt      int               `json:"alt,omitempty"`
	Examples map[string]string `json:"examples,omitempty"`
	// PreviewRows as in label.
	PreviewRows *int `json:"preview_rows,omitempty"`
}

func (s *server) handleSessionRepair(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) { sessRepairDur.Observe(time.Since(t0)) }(time.Now())
	req, ok := decode[sessionRepairRequest](w, r)
	if !ok {
		return
	}
	if req.Source == nil && len(req.Examples) == 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`missing repair: send {"source":i,"alt":j} or {"examples":{...}}`))
		return
	}
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	tr, ok := currentTransformation(w, h)
	if !ok {
		return
	}
	if req.Source != nil {
		if err := tr.Repair(*req.Source, req.Alt); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Ledger the pick so commit records it in the registry metadata.
		repairs, _ := h.Meta().([]progstore.Repair)
		h.SetMeta(append(repairs, progstore.Repair{Source: *req.Source, Alt: req.Alt}))
	}
	if len(req.Examples) > 0 {
		if err := tr.RepairWithExamples(req.Examples); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	sessRepairsTotal.Inc()
	s.sessionRepairs.Add(1)
	previewRows := 3
	if req.PreviewRows != nil {
		previewRows = *req.PreviewRows
	}
	writeJSON(w, http.StatusOK, s.labelResponse(h, previewRows))
}

// sessionCommitRequest is the POST .../commit body.
type sessionCommitRequest struct {
	// Name is an optional human label for the registry entry.
	Name string `json:"name,omitempty"`
	// ID re-registers an existing program, bumping its version.
	ID string `json:"id,omitempty"`
}

// handleSessionCommit exports the session's verified transformation and
// registers it durably; the response entry's id serves
// /v1/programs/{id}/apply with byte-identical output.
func (s *server) handleSessionCommit(w http.ResponseWriter, r *http.Request) {
	defer func(t0 time.Time) { sessCommitDur.Observe(time.Since(t0)) }(time.Now())
	req, ok := decode[sessionCommitRequest](w, r)
	if !ok {
		return
	}
	h, release, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer release()
	tr, ok := currentTransformation(w, h)
	if !ok {
		return
	}
	raw, err := tr.Export()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	repairs, _ := h.Meta().([]progstore.Repair)
	entry, err := s.store.Register(raw, progstore.Meta{
		ID:       req.ID,
		Name:     req.Name,
		RowCount: h.Session().ProfileStats().Rows,
		Repairs:  repairs,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.flushReplication()
	sessCommitsTotal.Inc()
	s.sessionCommits.Add(1)
	resp := toEntryJSON(entry, true)
	resp.Flagged = tr.Unmatched()
	writeJSON(w, http.StatusCreated, resp)
}
