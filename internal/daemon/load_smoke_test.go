// The load-smoke gate (make load-smoke): a short fixed-seed open-loop
// run from internal/loadgen against the real daemon handler over
// httptest. It exists so the load harness itself cannot rot — if the
// generator, the endpoints, or the admission path drift apart, this
// fails in `make gate`, not in the next capacity study. Budgets are
// deliberately generous (this is a correctness smoke, not a benchmark):
// zero transport errors, every arrival accounted for as 200 or 429, and
// a p99 that only a hung server would miss.
package daemon

import (
	"context"
	"testing"
	"time"

	"clx/internal/loadgen"
)

func TestLoadSmoke(t *testing.T) {
	baseURL, id := startStressServer(t, 2*4) // fixed slot count, machine-independent
	tgt := loadgen.Target{
		BaseURL:   baseURL,
		ProgramID: id,
		Client:    loadgen.NewClient(10 * time.Second),
	}

	// Fixed seed, fixed schedule: ~200 arrivals over ~1s of mixed
	// register/apply/stream traffic.
	const seed = 20250808
	sched := loadgen.BuildSchedule(loadgen.NewPoisson(200, 200, seed), loadgen.WorkloadOptions{
		Mix:  loadgen.Mix{Apply: 8, Stream: 2, Register: 1},
		Rows: loadgen.RowsDist{Min: 10, Max: 80},
		Seed: seed,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := loadgen.Run(ctx, tgt, sched)
	if err != nil {
		t.Fatal(err)
	}
	s := loadgen.Summarize(res)

	if s.Errors != 0 {
		for _, sm := range res.Samples {
			if !sm.OK && sm.Status != 429 {
				t.Logf("failed sample: op=%v status=%d err=%s", sm.Op, sm.Status, sm.Err)
			}
		}
		t.Fatalf("%d transport/protocol errors in smoke run: %+v", s.Errors, s)
	}
	if s.OK+s.Rejected != s.Arrivals {
		t.Fatalf("OK %d + 429 %d != arrivals %d", s.OK, s.Rejected, s.Arrivals)
	}
	if s.OK == 0 {
		t.Fatalf("nothing succeeded: %+v", s)
	}
	// Generous p99 budget: an in-process httptest round trip over
	// 10–80-row columns sits well under 100ms even on a loaded CI box;
	// 2s only catches a wedged server.
	if s.P99MS > 2000 {
		t.Fatalf("smoke p99 = %.1fms over the 2000ms budget: %+v", s.P99MS, s)
	}
	if s.GoodputRowsPerSec <= 0 {
		t.Fatalf("no goodput measured: %+v", s)
	}
}

// TestLoadSmokeTraceReplay pins the determinism contract end to end at
// the daemon: the same trace and seed produce the same request sequence
// (fingerprint equality), and replaying it against the live handler
// accounts for every arrival.
func TestLoadSmokeTraceReplay(t *testing.T) {
	baseURL, id := startStressServer(t, 8)
	records := []loadgen.TraceRecord{
		{At: 0, Op: loadgen.OpApply, Rows: 12},
		{At: 5 * time.Millisecond, Op: loadgen.OpStream, Rows: 40},
		{At: 10 * time.Millisecond, Op: loadgen.OpApply, Rows: 7},
		{At: 20 * time.Millisecond, Op: loadgen.OpRegister, Rows: 6},
		{At: 30 * time.Millisecond, Op: loadgen.OpStream, Rows: 25},
	}
	a := loadgen.ScheduleFromTrace(records, 99, 6)
	b := loadgen.ScheduleFromTrace(records, 99, 6)
	if loadgen.Fingerprint(a) != loadgen.Fingerprint(b) {
		t.Fatal("trace replay is not deterministic")
	}
	res, err := loadgen.Run(context.Background(), loadgen.Target{
		BaseURL: baseURL, ProgramID: id, Client: loadgen.NewClient(10 * time.Second),
	}, a)
	if err != nil {
		t.Fatal(err)
	}
	s := loadgen.Summarize(res)
	if s.Errors != 0 || s.OK+s.Rejected != len(records) {
		t.Fatalf("trace replay summary = %+v", s)
	}
}
