// Streaming-apply admission policies. Each stream pins a chunk-window of
// memory for its whole lifetime, so admission must be bounded; how it is
// bounded is a policy choice the operator A/Bs under real load (clxload's
// bursty process is built for exactly that):
//
//   - semaphore: at most N streams in flight, acquire-or-429. Hard memory
//     bound; under a burst the head is admitted and the tail rejected
//     regardless of how idle the server was beforehand.
//   - tokenbucket: admission at a sustained rate with a burst allowance.
//     Idle time banks credit, so a burst after a quiet period is absorbed
//     up to the bucket size; memory is bounded in expectation (rate ×
//     stream duration), not absolutely.
//
// The policy is selected by the -admission flag, and both sides of every
// decision are counted (clx_streams_admitted_total /
// clx_streams_rejected_total), so client-observed 200/429 counts can be
// reconciled exactly against the server's accounting.
package daemon

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admissionPolicy gates one streaming request. Admit returns whether the
// request may proceed and, when it may, a release to call exactly once
// when the stream ends (a no-op func for policies with nothing to give
// back — never nil).
type admissionPolicy interface {
	Admit() (release func(), ok bool)
	Name() string
}

// semaphoreAdmission is the original policy: a counting semaphore with a
// non-blocking acquire.
type semaphoreAdmission struct {
	sem chan struct{}
}

func newSemaphoreAdmission(slots int) *semaphoreAdmission {
	if slots < 1 {
		slots = 1
	}
	return &semaphoreAdmission{sem: make(chan struct{}, slots)}
}

func (a *semaphoreAdmission) Admit() (func(), bool) {
	select {
	case a.sem <- struct{}{}:
		return func() { <-a.sem }, true
	default:
		return nil, false
	}
}

func (a *semaphoreAdmission) Name() string { return "semaphore" }

// slots reports the configured capacity (for error messages and stats).
func (a *semaphoreAdmission) slots() int { return cap(a.sem) }

// tokenBucketAdmission admits at a sustained rate with a burst
// allowance: the bucket holds up to burst tokens, refills at rate
// tokens/second, and each admitted stream spends one. Release is a no-op
// — the bucket shapes arrival rate, not concurrency.
type tokenBucketAdmission struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable clock for tests
}

func newTokenBucketAdmission(rate, burst float64) *tokenBucketAdmission {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	tb := &tokenBucketAdmission{rate: rate, burst: burst, now: time.Now}
	// A fresh daemon starts with a full bucket: the first burst after
	// boot is as admissible as one after any idle period.
	tb.tokens = burst
	tb.last = tb.now()
	return tb
}

func (a *tokenBucketAdmission) Admit() (func(), bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	if dt := now.Sub(a.last).Seconds(); dt > 0 {
		a.tokens = math.Min(a.burst, a.tokens+dt*a.rate)
	}
	a.last = now
	if a.tokens >= 1 {
		a.tokens--
		return func() {}, true
	}
	return nil, false
}

func (a *tokenBucketAdmission) Name() string { return "tokenbucket" }

// newAdmissionPolicy is the -admission flag factory.
func newAdmissionPolicy(mode string, slots int, rate, burst float64) (admissionPolicy, error) {
	switch mode {
	case "", "semaphore":
		return newSemaphoreAdmission(slots), nil
	case "tokenbucket":
		return newTokenBucketAdmission(rate, burst), nil
	default:
		return nil, fmt.Errorf("unknown admission policy %q (want semaphore or tokenbucket)", mode)
	}
}

// durationEWMA is an exponentially weighted moving average over
// durations, updated lock-free. It backs the Retry-After hint on 429: a
// rejected client is told to come back after roughly one typical stream
// duration, because that is when a slot (or token) is likely to free —
// a fixed "1" underestimates backoff whenever streams run long.
type durationEWMA struct {
	bits atomic.Uint64 // float64 seconds; 0 = no observations yet
}

// ewmaAlpha weights the newest observation: 0.2 ≈ a 5-observation
// memory, enough to track load shifts without chasing single outliers.
const ewmaAlpha = 0.2

// Observe folds one duration into the average.
func (e *durationEWMA) Observe(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		return
	}
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = s // first observation seeds the average
		} else {
			prev := math.Float64frombits(old)
			next = (1-ewmaAlpha)*prev + ewmaAlpha*s
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			nb = 1 // 0.0 is the "unset" sentinel; clamp to the smallest denormal
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Seconds returns the current average, 0 before any observation.
func (e *durationEWMA) Seconds() float64 {
	return math.Float64frombits(e.bits.Load())
}

// retryAfterSeconds renders the EWMA as a Retry-After value: the average
// stream duration rounded up to whole seconds, floored at 1 (HTTP's
// minimum useful hint) and capped at 30 (past that, the hint is "shed
// load elsewhere", not "poll slower").
func (e *durationEWMA) retryAfterSeconds() int {
	s := e.Seconds()
	if s <= 0 {
		return 1
	}
	secs := int(math.Ceil(s))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}
