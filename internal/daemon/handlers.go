// JSON request/response types and handlers for the clxd API.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	clx "clx"
	"clx/tables"
)

// clusterRequest is the POST /v1/cluster body.
type clusterRequest struct {
	// Rows is the string column to profile.
	Rows []string `json:"rows"`
	// Levels includes the full pattern hierarchy in the response.
	Levels bool `json:"levels,omitempty"`
}

// clusterJSON is one pattern cluster.
type clusterJSON struct {
	// Pattern is the compact notation, NL the display regexp.
	Pattern string `json:"pattern"`
	NL      string `json:"nl"`
	Count   int    `json:"count"`
	Sample  string `json:"sample"`
	Rows    []int  `json:"rows,omitempty"`
}

type clusterResponse struct {
	Clusters []clusterJSON   `json:"clusters"`
	Levels   [][]clusterJSON `json:"levels,omitempty"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[clusterRequest](w, r)
	if !ok {
		return
	}
	sess := clx.NewSession(req.Rows, s.opts)
	resp := clusterResponse{Clusters: toClusterJSON(sess.Clusters(), true)}
	if req.Levels {
		for l := 0; l < sess.Levels(); l++ {
			resp.Levels = append(resp.Levels, toClusterJSON(sess.Level(l), false))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func toClusterJSON(cs []clx.Cluster, withRows bool) []clusterJSON {
	out := make([]clusterJSON, 0, len(cs))
	for _, c := range cs {
		j := clusterJSON{
			Pattern: c.Pattern.String(),
			NL:      c.Pattern.NLRegex(),
			Count:   c.Count,
			Sample:  c.Sample,
		}
		if withRows {
			j.Rows = c.Rows
		}
		out = append(out, j)
	}
	return out
}

// repairJSON selects alternative Alt for source Source.
type repairJSON struct {
	Source int `json:"source"`
	Alt    int `json:"alt"`
}

// transformRequest is the POST /v1/transform body.
type transformRequest struct {
	Rows []string `json:"rows"`
	// Target is the desired pattern, compact or NL notation.
	Target string `json:"target"`
	// Repairs selects ranked alternatives before applying (§6.4).
	Repairs []repairJSON `json:"repairs,omitempty"`
	// PreviewRows controls how many before/after samples each operation
	// carries (default 3, 0 disables).
	PreviewRows *int `json:"preview_rows,omitempty"`
}

// opJSON is one Replace operation with its verification aids.
type opJSON struct {
	// NL and Regex render the match pattern; Replacement is the template.
	NL          string `json:"nl"`
	Regex       string `json:"regex"`
	Replacement string `json:"replacement"`
	// Source is the matched pattern in compact notation.
	Source string `json:"source"`
	// Preview holds before/after samples from the submitted rows.
	Preview []previewJSON `json:"preview,omitempty"`
	// Alternatives are the ranked replacement templates (index 0 is in
	// effect; repair by resubmitting with {"source":i,"alt":j}).
	Alternatives []string `json:"alternatives,omitempty"`
}

type previewJSON struct {
	Input  string `json:"input"`
	Output string `json:"output"`
}

type transformResponse struct {
	Ops     []opJSON `json:"ops"`
	Output  []string `json:"output"`
	Flagged []int    `json:"flagged,omitempty"`
	Clean   []int    `json:"clean,omitempty"`
	// Program is the exported verified program, ready for /v1/apply.
	Program json.RawMessage `json:"program"`
}

// tableJSON is the wire form of a table.
type tableJSON struct {
	Name    string     `json:"name,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// unifyRequest is the POST /v1/tables/unify body: convert every table into
// the format of Tables[Target].
type unifyRequest struct {
	Tables []tableJSON `json:"tables"`
	Target int         `json:"target"`
}

type unifyResponse struct {
	Tables []tableJSON `json:"tables"`
	// Mappings describe, per table, how its columns were aligned
	// ("src -> dst (transformed)").
	Mappings [][]string `json:"mappings"`
}

func (s *server) handleUnify(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[unifyRequest](w, r)
	if !ok {
		return
	}
	ts := make([]tables.Table, len(req.Tables))
	for i, tj := range req.Tables {
		ts[i] = tables.Table{Name: tj.Name, Headers: tj.Headers, Rows: tj.Rows}
		if err := ts[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	unified, maps, err := tables.Unify(ts, req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := unifyResponse{}
	for i, t := range unified {
		resp.Tables = append(resp.Tables, tableJSON{Name: t.Name, Headers: t.Headers, Rows: t.Rows})
		var desc []string
		for _, cm := range maps[i].Columns {
			d := fmt.Sprintf("%s -> %s", ts[i].Headers[cm.Src], unified[i].Headers[cm.Dst])
			if cm.Transform != nil {
				d += " (transformed)"
			}
			desc = append(desc, d)
		}
		resp.Mappings = append(resp.Mappings, desc)
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyRequest is the POST /v1/apply body: run a previously exported
// program (the "program" field is the JSON produced by Export / the
// transform response's "program") over new rows.
type applyRequest struct {
	Rows    []string        `json:"rows"`
	Program json.RawMessage `json:"program"`
}

type applyResponse struct {
	Output  []string `json:"output"`
	Flagged []int    `json:"flagged,omitempty"`
}

func (s *server) handleApply(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[applyRequest](w, r)
	if !ok {
		return
	}
	sp, err := clx.LoadProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sp.Workers = s.opts.Workers
	out, flagged := sp.Transform(req.Rows)
	writeJSON(w, http.StatusOK, applyResponse{Output: out, Flagged: flagged})
}

func (s *server) handleTransform(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[transformRequest](w, r)
	if !ok {
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing target pattern"))
		return
	}
	target, err := clx.ParseAnyPattern(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := clx.NewSession(req.Rows, s.opts)
	tr, err := sess.Label(target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, rep := range req.Repairs {
		if err := tr.Repair(rep.Source, rep.Alt); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	previewRows := 3
	if req.PreviewRows != nil {
		previewRows = *req.PreviewRows
	}
	resp := transformResponse{}
	for i, op := range tr.Replaces() {
		j := opJSON{
			NL:          op.NLRegex(),
			Regex:       op.Regex(),
			Replacement: op.Replacement,
			Source:      op.Source.String(),
		}
		if previewRows > 0 {
			for _, p := range op.Preview(req.Rows, previewRows) {
				j.Preview = append(j.Preview, previewJSON{Input: p.Input, Output: p.Output})
			}
		}
		for _, alt := range tr.Alternatives(i) {
			j.Alternatives = append(j.Alternatives, alt.Replacement)
		}
		resp.Ops = append(resp.Ops, j)
	}
	resp.Output, resp.Flagged = tr.Run()
	resp.Clean = tr.Clean()
	if raw, err := tr.Export(); err == nil {
		resp.Program = raw
	}
	writeJSON(w, http.StatusOK, resp)
}
