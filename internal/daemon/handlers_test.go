package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func request(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	rec, body := request(t, testMux(t), "GET", "/healthz", "")
	if rec.Code != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, body)
	}
}

func TestClusterEndpoint(t *testing.T) {
	rec, body := request(t, testMux(t), "POST", "/v1/cluster",
		`{"rows":["(734) 645-8397","734.236.3466","(313) 263-1192"],"levels":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp clusterResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(resp.Clusters))
	}
	if resp.Clusters[0].Pattern != "'('<D>3')'' '<D>3'-'<D>4" {
		t.Errorf("pattern = %q", resp.Clusters[0].Pattern)
	}
	if resp.Clusters[0].Count != 2 || resp.Clusters[0].Sample != "(734) 645-8397" {
		t.Errorf("cluster 0 = %+v", resp.Clusters[0])
	}
	if !strings.HasPrefix(resp.Clusters[0].NL, "/^") {
		t.Errorf("NL = %q", resp.Clusters[0].NL)
	}
	if len(resp.Levels) != 4 {
		t.Errorf("levels = %d, want 4", len(resp.Levels))
	}
}

func TestTransformEndpoint(t *testing.T) {
	rec, body := request(t, testMux(t), "POST", "/v1/transform",
		`{"rows":["(734) 645-8397","734.236.3466","N/A"],"target":"{digit}{3}-{digit}{3}-{digit}{4}"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp transformResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Output) != 3 || resp.Output[0] != "734-645-8397" || resp.Output[1] != "734-236-3466" {
		t.Errorf("output = %v", resp.Output)
	}
	if len(resp.Flagged) != 1 || resp.Flagged[0] != 2 {
		t.Errorf("flagged = %v", resp.Flagged)
	}
	if len(resp.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(resp.Ops))
	}
	op := resp.Ops[0]
	if op.Replacement == "" || !strings.HasPrefix(op.NL, "/^") || op.Regex == "" {
		t.Errorf("op = %+v", op)
	}
	if len(op.Preview) == 0 || op.Preview[0].Output != "734-645-8397" {
		t.Errorf("preview = %+v", op.Preview)
	}
	if len(op.Alternatives) == 0 || op.Alternatives[0] != op.Replacement {
		t.Errorf("alternatives = %v", op.Alternatives)
	}
}

func TestTransformWithRepair(t *testing.T) {
	body0 := `{"rows":["31/12/2019","28/02/2020","12-31-2019"],"target":"<D>2'-'<D>2'-'<D>4"}`
	_, raw0 := request(t, testMux(t), "POST", "/v1/transform", body0)
	var resp0 transformResponse
	if err := json.Unmarshal(raw0, &resp0); err != nil {
		t.Fatal(err)
	}
	body1 := `{"rows":["31/12/2019","28/02/2020","12-31-2019"],"target":"<D>2'-'<D>2'-'<D>4","repairs":[{"source":0,"alt":1}]}`
	_, raw1 := request(t, testMux(t), "POST", "/v1/transform", body1)
	var resp1 transformResponse
	if err := json.Unmarshal(raw1, &resp1); err != nil {
		t.Fatal(err)
	}
	if resp0.Output[0] == resp1.Output[0] {
		t.Error("repair had no effect")
	}
	if resp1.Output[0] != "12-31-2019" {
		t.Errorf("repaired output = %q", resp1.Output[0])
	}
}

func TestTransformErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"rows":["a"],"bogus":1}`,
		`{"rows":["a"]}`,                   // missing target
		`{"rows":["a"],"target":"{nope}"}`, // bad pattern
		`{"rows":["a"],"target":"<D>","repairs":[{"source":9,"alt":0}]}`, // bad repair
	}
	for _, body := range cases {
		rec, _ := request(t, testMux(t), "POST", "/v1/transform", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

func TestPreviewRowsZeroDisables(t *testing.T) {
	_, raw := request(t, testMux(t), "POST", "/v1/transform",
		`{"rows":["(734) 645-8397"],"target":"<D>3'-'<D>3'-'<D>4","preview_rows":0}`)
	var resp transformResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ops) > 0 && len(resp.Ops[0].Preview) != 0 {
		t.Error("preview_rows=0 should disable previews")
	}
}

func TestMethodRouting(t *testing.T) {
	rec, _ := request(t, testMux(t), "GET", "/v1/transform", "")
	if rec.Code == http.StatusOK {
		t.Error("GET /v1/transform should not be routed")
	}
}

func TestUnifyEndpoint(t *testing.T) {
	body := `{"tables":[
		{"name":"std","headers":["Name","Phone"],"rows":[["Kate Fisher","313-263-1192"]]},
		{"name":"legacy","headers":["phone","name"],"rows":[["(734) 645-0001","Rosa Cole"]]}
	],"target":0}`
	rec, raw := request(t, testMux(t), "POST", "/v1/tables/unify", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, raw)
	}
	var resp unifyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 2 {
		t.Fatalf("tables = %d", len(resp.Tables))
	}
	got := resp.Tables[1].Rows[0]
	if got[0] != "Rosa Cole" || got[1] != "734-645-0001" {
		t.Errorf("unified row = %v", got)
	}
	if len(resp.Mappings[1]) != 2 {
		t.Errorf("mappings = %v", resp.Mappings)
	}
	found := false
	for _, m := range resp.Mappings[1] {
		if strings.Contains(m, "(transformed)") {
			found = true
		}
	}
	if !found {
		t.Errorf("phone mapping should be marked transformed: %v", resp.Mappings[1])
	}
}

func TestUnifyEndpointErrors(t *testing.T) {
	cases := []string{
		`{"tables":[{"headers":["a"],"rows":[["x","y"]]}],"target":0}`, // ragged
		`{"tables":[{"headers":["a"],"rows":[["x"]]}],"target":5}`,     // bad target
	}
	for _, body := range cases {
		rec, _ := request(t, testMux(t), "POST", "/v1/tables/unify", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, rec.Code)
		}
	}
}

func TestApplyEndpoint(t *testing.T) {
	// Synthesize + export via /v1/transform, then run the program on new
	// rows via /v1/apply.
	_, raw := request(t, testMux(t), "POST", "/v1/transform",
		`{"rows":["(734) 645-8397","734.236.3466"],"target":"<D>3'-'<D>3'-'<D>4"}`)
	var tresp transformResponse
	if err := json.Unmarshal(raw, &tresp); err != nil {
		t.Fatal(err)
	}
	if len(tresp.Program) == 0 {
		t.Fatal("transform response missing program")
	}
	body, _ := json.Marshal(applyRequest{
		Rows:    []string{"(917) 555-0100", "N/A"},
		Program: tresp.Program,
	})
	rec, raw2 := request(t, testMux(t), "POST", "/v1/apply", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, raw2)
	}
	var aresp applyResponse
	if err := json.Unmarshal(raw2, &aresp); err != nil {
		t.Fatal(err)
	}
	if aresp.Output[0] != "917-555-0100" || aresp.Output[1] != "N/A" {
		t.Errorf("output = %v", aresp.Output)
	}
	if len(aresp.Flagged) != 1 || aresp.Flagged[0] != 1 {
		t.Errorf("flagged = %v", aresp.Flagged)
	}
	// Bad program errors.
	rec, _ = request(t, testMux(t), "POST", "/v1/apply", `{"rows":["x"],"program":{"bad":1}}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad program status = %d", rec.Code)
	}
}

// TestStatsProfileIndexCounters: a cluster request advances the process
// profile-index counters surfaced under /v1/stats.
func TestStatsProfileIndexCounters(t *testing.T) {
	mux := testMux(t)
	rec, raw := request(t, mux, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var before statsResponse
	if err := json.Unmarshal(raw, &before); err != nil {
		t.Fatal(err)
	}

	rec, body := request(t, mux, "POST", "/v1/cluster",
		`{"rows":["(734) 645-8397","734.236.3466","(313) 263-1192"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster status %d: %s", rec.Code, body)
	}

	_, raw = request(t, mux, "GET", "/v1/stats", "")
	var after statsResponse
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if d := after.ProfileIndex.Profiles - before.ProfileIndex.Profiles; d < 1 {
		t.Errorf("profiles advanced by %d, want >= 1", d)
	}
	if d := after.ProfileIndex.RowsProfiled - before.ProfileIndex.RowsProfiled; d < 3 {
		t.Errorf("rows_profiled advanced by %d, want >= 3", d)
	}
}
