// Daemon-side observability: the middleware every clxd request passes
// through. It mints (or propagates) a request ID, carries it via context
// into structured access logs and pprof goroutine labels — worker
// goroutines inherit the labels of the handler that spawned them, so a
// CPU profile slices by request_id and path — and feeds the HTTP-level
// metric series served at GET /metrics.
package daemon

import (
	"context"
	"net/http"
	"runtime/pprof"
	"time"

	"clx/internal/obs"
)

var (
	httpRequests = obs.NewCounter("clx_http_requests_total",
		"HTTP requests served by clxd (all endpoints).")
	httpDur = obs.NewHistogram("clx_http_request_duration_seconds",
		"End-to-end clxd request latency, middleware included.", nil)
	streamsInFlight = obs.NewGauge("clx_streams_in_flight",
		"Streaming bulk-apply requests currently holding an admission slot.")
	streamsAdmitted = obs.NewCounter("clx_streams_admitted_total",
		"Streaming bulk-apply requests admitted by the admission policy.")
	streamsRejected = obs.NewCounter("clx_streams_rejected_total",
		"Streaming bulk-apply requests turned away with 429 (admission policy).")
	streamReqDur = obs.NewHistogram("clx_stream_request_duration_seconds",
		"End-to-end admitted streaming-apply duration (admission to trailer flush).", nil)
)

// withObs wraps next with request tracing, access logging, and HTTP
// metrics. The request ID comes from an incoming X-Request-ID header when
// the client supplies one (so a proxy's ID survives end to end) and is
// minted otherwise; either way it is echoed back in the response header.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		t0 := time.Now()
		// pprof.Do labels this goroutine for the duration of the handler;
		// goroutines the handler spawns (the parallel pipeline, streaming
		// chunk workers) inherit the labels, so profiles attribute worker
		// CPU to the request that caused it.
		pprof.Do(ctx, pprof.Labels("request_id", id, "path", r.URL.Path), func(ctx context.Context) {
			next.ServeHTTP(sw, r.WithContext(ctx))
		})
		d := time.Since(t0)

		httpRequests.Inc()
		httpDur.Observe(d)
		s.logger.Log(ctx, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(d.Microseconds())/1e3,
		)
	})
}

// statusWriter captures the status code and body size for the access log
// while passing flushes through — the streaming endpoint depends on
// per-chunk flushes reaching the client.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush satisfies http.Flusher so the stream handler's flusher probe finds
// it; a non-flushing underlying writer makes it a no-op.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
