// Unit tests of the admission policies and the EWMA-derived Retry-After
// hint: bucket refill arithmetic under a fake clock, the policy factory,
// the EWMA computation, and the 429 header carrying the derived value.
package daemon

import (
	"math"
	"net/http"
	"strconv"
	"testing"
	"time"

	"clx/internal/progstore"
)

func TestSemaphoreAdmission(t *testing.T) {
	a := newSemaphoreAdmission(2)
	r1, ok1 := a.Admit()
	r2, ok2 := a.Admit()
	if !ok1 || !ok2 {
		t.Fatal("first two admits rejected")
	}
	if _, ok := a.Admit(); ok {
		t.Fatal("third admit over a 2-slot semaphore accepted")
	}
	r1()
	if _, ok := a.Admit(); !ok {
		t.Fatal("admit after release rejected")
	}
	r2()
	if a.Name() != "semaphore" || a.slots() != 2 {
		t.Errorf("name=%q slots=%d", a.Name(), a.slots())
	}
}

func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(0, 0)
	tb := newTokenBucketAdmission(10, 3) // 10 tokens/s, burst 3
	tb.now = func() time.Time { return now }
	tb.tokens = 3 // full bucket at t=0
	tb.last = now

	// Burst drains the bucket: 3 admits pass, the 4th rejects.
	for i := 0; i < 3; i++ {
		if _, ok := tb.Admit(); !ok {
			t.Fatalf("admit %d of burst rejected", i)
		}
	}
	if _, ok := tb.Admit(); ok {
		t.Fatal("admit over empty bucket accepted")
	}

	// 100ms refills exactly one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if _, ok := tb.Admit(); !ok {
		t.Fatal("admit after one-token refill rejected")
	}
	if _, ok := tb.Admit(); ok {
		t.Fatal("second admit after one-token refill accepted")
	}

	// A long idle period banks at most the burst capacity.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if _, ok := tb.Admit(); !ok {
			t.Fatalf("admit %d after idle rejected (burst should be banked)", i)
		}
	}
	if _, ok := tb.Admit(); ok {
		t.Fatal("bucket banked more than its burst capacity")
	}
	if tb.Name() != "tokenbucket" {
		t.Errorf("name = %q", tb.Name())
	}
}

func TestTokenBucketReleaseIsNoop(t *testing.T) {
	tb := newTokenBucketAdmission(1, 1)
	now := time.Unix(0, 0)
	tb.now = func() time.Time { return now }
	tb.tokens, tb.last = 1, now
	release, ok := tb.Admit()
	if !ok {
		t.Fatal("admit rejected")
	}
	release() // must not refund the token
	if _, ok := tb.Admit(); ok {
		t.Fatal("release refunded a token — bucket shapes rate, not concurrency")
	}
}

func TestNewAdmissionPolicyFactory(t *testing.T) {
	for mode, want := range map[string]string{
		"": "semaphore", "semaphore": "semaphore", "tokenbucket": "tokenbucket",
	} {
		p, err := newAdmissionPolicy(mode, 4, 10, 20)
		if err != nil || p.Name() != want {
			t.Errorf("mode %q -> %v, %v", mode, p, err)
		}
	}
	if _, err := newAdmissionPolicy("leakybucket", 4, 10, 20); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDurationEWMAComputation(t *testing.T) {
	var e durationEWMA
	if e.Seconds() != 0 {
		t.Fatalf("unseeded EWMA = %v", e.Seconds())
	}
	// First observation seeds the average exactly.
	e.Observe(10 * time.Second)
	if got := e.Seconds(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("after seed: %v, want 10", got)
	}
	// Second observation folds in at alpha=0.2: 0.8*10 + 0.2*0 = 8.
	e.Observe(0)
	if got := e.Seconds(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("after 0s observation: %v, want 8", got)
	}
	// 0.8*8 + 0.2*3 = 7.
	e.Observe(3 * time.Second)
	if got := e.Seconds(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("after 3s observation: %v, want 7", got)
	}
}

func TestRetryAfterSecondsClamps(t *testing.T) {
	cases := []struct {
		observe time.Duration
		want    int
	}{
		{0, 1},                       // never observed → floor
		{50 * time.Millisecond, 1},   // sub-second → floor 1
		{1400 * time.Millisecond, 2}, // rounds up
		{7 * time.Second, 7},
		{5 * time.Minute, 30}, // cap
	}
	for _, tc := range cases {
		var e durationEWMA
		if tc.observe > 0 {
			e.Observe(tc.observe)
		}
		if got := e.retryAfterSeconds(); got != tc.want {
			t.Errorf("retryAfterSeconds after %v = %d, want %d", tc.observe, got, tc.want)
		}
	}
}

// TestRetryAfterHeaderTracksEWMA pins the header end to end: a server
// whose stream EWMA says 7s must send Retry-After: 7 on 429, and a fresh
// server must send the 1s floor.
func TestRetryAfterHeaderTracksEWMA(t *testing.T) {
	old := maxStreams
	maxStreams = 1
	defer func() { maxStreams = old }()
	mux, srv := testMuxServer(t)
	id := registerPhones(t, mux)

	check := func(want int) {
		t.Helper()
		// Hold the only slot, then trigger a rejection.
		release, ok := srv.admission.Admit()
		if !ok {
			t.Fatal("could not hold the slot")
		}
		defer release()
		rec, _ := request(t, mux, "POST", "/v1/programs/"+id+"/apply/stream", "x\n")
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", rec.Code)
		}
		got, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil || got != want {
			t.Fatalf("Retry-After = %q, want %d", rec.Header().Get("Retry-After"), want)
		}
	}

	check(1) // fresh server: floor
	srv.streamEWMA.Observe(7 * time.Second)
	check(7) // tracks the EWMA
	for i := 0; i < 40; i++ {
		srv.streamEWMA.Observe(10 * time.Minute)
	}
	check(30) // cap
}

// testMuxServer is testMux exposing the server for EWMA/admission poking.
func testMuxServer(t *testing.T) (http.Handler, *server) {
	t.Helper()
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st)
	return srv.handler(), srv
}
