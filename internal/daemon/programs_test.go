// End-to-end tests of the program registry endpoints: register, restart
// recovery, hot apply with drift, and the uniform error envelope.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	clx "clx"
	"clx/internal/benchsuite"
	"clx/internal/progstore"
	"clx/internal/simuser"
	"clx/internal/synth"
)

// testMux builds the full daemon handler (middleware included) over an
// ephemeral registry, so every endpoint test also exercises tracing.
func testMux(t *testing.T) http.Handler {
	t.Helper()
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return newServer(st).handler()
}

// openMux builds the daemon handler over a persistent registry in dir; the
// returned store lets tests simulate a daemon restart by closing it.
func openMux(t *testing.T, dir string) (http.Handler, *progstore.Store) {
	t.Helper()
	st, err := progstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(st).handler(), st
}

func TestProgramRegistryLifecycle(t *testing.T) {
	mux := testMux(t)

	// Register.
	rec, raw := request(t, mux, "POST", "/v1/programs",
		`{"rows":["(734) 645-8397","734.236.3466"],"target":"<D>3'-'<D>3'-'<D>4","name":"phones"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register status %d: %s", rec.Code, raw)
	}
	var entry programEntryJSON
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.ID == "" || entry.Version != 1 || entry.Name != "phones" ||
		entry.Target != "<D>3'-'<D>3'-'<D>4" || len(entry.Sources) != 2 ||
		entry.RowCount != 2 || len(entry.Program) == 0 {
		t.Fatalf("entry = %+v", entry)
	}

	// List carries metadata but not the program body.
	_, raw = request(t, mux, "GET", "/v1/programs", "")
	var list programListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Programs) != 1 || list.Programs[0].ID != entry.ID || len(list.Programs[0].Program) != 0 {
		t.Fatalf("list = %+v", list)
	}

	// Get returns the auditable program.
	rec, raw = request(t, mux, "GET", "/v1/programs/"+entry.ID, "")
	var got programEntryJSON
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || len(got.Program) == 0 {
		t.Fatalf("get status %d, entry %+v", rec.Code, got)
	}

	// Re-register under the same id bumps the version.
	rec, raw = request(t, mux, "POST", "/v1/programs",
		fmt.Sprintf(`{"rows":["(734) 645-8397"],"target":"<D>3'-'<D>3'-'<D>4","id":%q}`, entry.ID))
	if rec.Code != http.StatusCreated {
		t.Fatalf("re-register status %d: %s", rec.Code, raw)
	}
	var v2 programEntryJSON
	if err := json.Unmarshal(raw, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.ID != entry.ID || v2.Version != 2 || v2.Name != "phones" {
		t.Fatalf("v2 = %+v", v2)
	}

	// Delete, then every id route 404s.
	rec, _ = request(t, mux, "DELETE", "/v1/programs/"+entry.ID, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete status %d", rec.Code)
	}
	for _, probe := range [][2]string{
		{"GET", "/v1/programs/" + entry.ID},
		{"DELETE", "/v1/programs/" + entry.ID},
		{"POST", "/v1/programs/" + entry.ID + "/apply"},
	} {
		body := ""
		if probe[0] == "POST" {
			body = `{"rows":["x"]}`
		}
		rec, raw := request(t, mux, probe[0], probe[1], body)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe[0], probe[1], rec.Code)
		}
		var e errorJSON
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: missing error envelope: %s", probe[0], probe[1], raw)
		}
	}
}

// The acceptance path: a program registered over a benchmark task,
// recovered after a simulated daemon restart, applies by id with output
// byte-identical to a fresh clx Transform over the same rows — and the
// apply performs no Algorithm-2 synthesis.
func TestProgramApplyMatchesFreshTransformAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mux, st := openMux(t, dir)

	type regged struct {
		id   string
		task benchsuite.Task
		want []string // fresh clx Transform output
	}
	var cases []regged
	for _, task := range benchsuite.Tasks() {
		if len(cases) == 6 {
			break
		}
		targets := simuser.SelectTargets(nil, task.Outputs)
		if len(targets) != 1 {
			continue // single-target tasks keep the fixture simple
		}
		target := targets[0]

		// Fresh in-process Transform: the ground truth for byte identity.
		sess := clx.NewSession(task.Inputs)
		tr, err := sess.Label(target)
		if err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		want, _ := tr.Run()

		body, _ := json.Marshal(registerRequest{
			Rows: task.Inputs, Target: target.String(), Name: task.Name,
		})
		rec, raw := request(t, mux, "POST", "/v1/programs", string(body))
		if rec.Code != http.StatusCreated {
			t.Fatalf("%s: register status %d: %s", task.Name, rec.Code, raw)
		}
		var entry programEntryJSON
		if err := json.Unmarshal(raw, &entry); err != nil {
			t.Fatal(err)
		}
		cases = append(cases, regged{id: entry.ID, task: task, want: want})
	}
	if len(cases) < 5 {
		t.Fatalf("only %d single-target benchmark tasks; need >= 5", len(cases))
	}

	// Simulated daemon restart: close the store, reopen from disk.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	mux2, st2 := openMux(t, dir)
	defer st2.Close()

	synthBefore := synth.SynthesizeCalls()
	for _, c := range cases {
		body, _ := json.Marshal(programApplyRequest{Rows: c.task.Inputs})
		rec, raw := request(t, mux2, "POST", "/v1/programs/"+c.id+"/apply", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: apply status %d: %s", c.task.Name, rec.Code, raw)
		}
		var res progstore.ApplyResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Output, c.want) {
			t.Errorf("%s: recovered apply differs from fresh Transform", c.task.Name)
		}
		if res.Drift.Checked != len(c.task.Inputs) {
			t.Errorf("%s: drift.checked = %d, want %d", c.task.Name, res.Drift.Checked, len(c.task.Inputs))
		}
	}
	if calls := synth.SynthesizeCalls() - synthBefore; calls != 0 {
		t.Errorf("apply path ran Algorithm 2 %d times; the hot path must never synthesize", calls)
	}
}

func TestProgramApplyDriftReport(t *testing.T) {
	mux := testMux(t)
	_, raw := request(t, mux, "POST", "/v1/programs",
		`{"rows":["(734) 645-8397","734.236.3466"],"target":"<D>3'-'<D>3'-'<D>4"}`)
	var entry programEntryJSON
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	rec, raw := request(t, mux, "POST", "/v1/programs/"+entry.ID+"/apply",
		`{"rows":["(917) 555-0100","+1 917 555 0177","+1 212 555 0123","917-555-0199"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("apply status %d: %s", rec.Code, raw)
	}
	var res progstore.ApplyResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "917-555-0100" || res.Output[3] != "917-555-0199" {
		t.Fatalf("output = %v", res.Output)
	}
	if res.Drift.Checked != 4 || res.Drift.Drifted != 2 || len(res.Drift.Clusters) != 1 {
		t.Fatalf("drift = %+v", res.Drift)
	}
	c := res.Drift.Clusters[0]
	if c.Count != 2 || len(c.Samples) != 2 || !c.Resynthesizable {
		t.Fatalf("drift cluster = %+v", c)
	}
	if !strings.Contains(c.NL, "{digit}") {
		t.Errorf("cluster NL = %q", c.NL)
	}
}

// The error envelope is uniform: 400 for malformed bodies and bad
// synthesis inputs, 404 for unknown ids, 413 past the body cap — all as
// {"error": "..."} JSON.
func TestProgramErrorEnvelope(t *testing.T) {
	mux := testMux(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/programs", `{`, http.StatusBadRequest},
		{"POST", "/v1/programs", `{"rows":["a"],"bogus":1}`, http.StatusBadRequest},
		{"POST", "/v1/programs", `{"rows":["a"]}`, http.StatusBadRequest},                   // missing target
		{"POST", "/v1/programs", `{"rows":["a"],"target":"{nope}"}`, http.StatusBadRequest}, // bad pattern
		{"POST", "/v1/programs", `{"rows":["a"],"target":"<D>3","repairs":[{"source":9,"alt":0}]}`, http.StatusBadRequest},
		{"GET", "/v1/programs/nope", "", http.StatusNotFound},
		{"DELETE", "/v1/programs/nope", "", http.StatusNotFound},
		{"POST", "/v1/programs/nope/apply", `{"rows":["x"]}`, http.StatusNotFound},
		{"POST", "/v1/programs/nope/apply", `{`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, raw := request(t, mux, c.method, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("%s %s %q: status %d, want %d", c.method, c.path, c.body, rec.Code, c.want)
		}
		var e errorJSON
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: body %q is not the error envelope", c.method, c.path, raw)
		}
	}
}

// Oversized bodies get 413 with the envelope, on every POST route.
func TestRequestBodyCap(t *testing.T) {
	old := maxBody
	maxBody = 256
	defer func() { maxBody = old }()
	mux := testMux(t)
	big := `{"rows":["` + strings.Repeat("x", 512) + `"]}`
	for _, path := range []string{"/v1/cluster", "/v1/transform", "/v1/apply", "/v1/programs", "/v1/programs/nope/apply"} {
		rec, raw := request(t, mux, "POST", path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s: status %d, want 413", path, rec.Code)
		}
		var e errorJSON
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: body %q is not the error envelope", path, raw)
		}
	}
}
