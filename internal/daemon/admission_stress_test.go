// Admission under real concurrency: N held slots, M > N simultaneous
// streams over a live HTTP server, and exact accounting afterwards —
// every request is either admitted or rejected (admitted + rejected ==
// fired), the client-observed 200/429 split matches the server counters
// exactly, the in-flight gauge returns to zero, and a client that
// disconnects mid-stream gives its slot back. Run under -race by the
// race tier of make gate.
package daemon

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clx/internal/progstore"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startStressServer builds a live HTTP server over the daemon handler
// with maxStreams slots and returns its base URL and registered program.
func startStressServer(t *testing.T, slots int) (baseURL, programID string) {
	t.Helper()
	old := maxStreams
	maxStreams = slots
	t.Cleanup(func() { maxStreams = old })
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st)
	hs := httptest.NewServer(srv.handler())
	t.Cleanup(hs.Close)
	mux := srv.handler()
	return hs.URL, registerPhones(t, mux)
}

func TestAdmissionStressExactAccounting(t *testing.T) {
	const slots = 4
	const contenders = 24
	baseURL, id := startStressServer(t, slots)
	streamURL := baseURL + "/v1/programs/" + id + "/apply/stream"
	client := &http.Client{}

	admitted0, rejected0 := streamsAdmitted.Value(), streamsRejected.Value()

	// Phase 1: pin all N slots with held-open streams. Each holder runs
	// in its own goroutine (headers may not flush to the client until the
	// stream makes progress) and reports its final outcome on a channel;
	// the in-flight gauge is the synchronization point.
	holderDone := make(chan error, slots)
	var holderBodies []*io.PipeWriter
	for i := 0; i < slots; i++ {
		pr, pw := io.Pipe()
		holderBodies = append(holderBodies, pw)
		go func(i int) {
			resp, err := client.Post(streamURL, "text/plain", pr)
			if err != nil {
				holderDone <- fmt.Errorf("holder %d: %v", i, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case err != nil:
				holderDone <- fmt.Errorf("holder %d drain: %v", i, err)
			case resp.StatusCode != http.StatusOK:
				holderDone <- fmt.Errorf("holder %d status %d", i, resp.StatusCode)
			case !strings.Contains(string(body), `"done":true`):
				holderDone <- fmt.Errorf("holder %d stream did not finish cleanly: %s", i, body)
			default:
				holderDone <- nil
			}
		}(i)
	}
	waitFor(t, "all slots held", func() bool { return streamsInFlight.Value() == slots })

	// Phase 2: M concurrent contenders against a full semaphore — every
	// one must come back 429, and the server must count each decision.
	var wg sync.WaitGroup
	statuses := make([]int, contenders)
	errs := make([]error, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Post(streamURL, "text/plain", strings.NewReader("(313) 263-1192\n"))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	var got429 int
	for i := 0; i < contenders; i++ {
		if errs[i] != nil {
			t.Fatalf("contender %d transport error: %v", i, errs[i])
		}
		if statuses[i] == http.StatusTooManyRequests {
			got429++
		} else {
			t.Errorf("contender %d status %d, want 429 (all slots held)", i, statuses[i])
		}
	}

	// Phase 3: release the holders and collect their outcomes.
	for _, pw := range holderBodies {
		if _, err := pw.Write([]byte("(313) 263-1192\n")); err != nil {
			t.Fatal(err)
		}
		pw.Close()
	}
	for i := 0; i < slots; i++ {
		if err := <-holderDone; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "slots all released", func() bool { return streamsInFlight.Value() == 0 })

	// Exact accounting: fired = holders + contenders, every one counted
	// on exactly one side, and the sides match what clients observed.
	admittedD := streamsAdmitted.Value() - admitted0
	rejectedD := streamsRejected.Value() - rejected0
	fired := int64(slots + contenders)
	if admittedD+rejectedD != fired {
		t.Errorf("admitted %d + rejected %d != fired %d", admittedD, rejectedD, fired)
	}
	if admittedD != int64(slots) {
		t.Errorf("admitted = %d, want %d (the holders)", admittedD, slots)
	}
	if rejectedD != int64(got429) {
		t.Errorf("rejected = %d, client-observed 429s = %d", rejectedD, got429)
	}
}

// TestAdmissionContendedMix fires M concurrent streams with nothing held:
// some are admitted, some rejected, and accounting still reconciles
// exactly with the client-observed 200/429 split.
func TestAdmissionContendedMix(t *testing.T) {
	const contenders = 32
	baseURL, id := startStressServer(t, 2)
	streamURL := baseURL + "/v1/programs/" + id + "/apply/stream"
	client := &http.Client{}

	admitted0, rejected0 := streamsAdmitted.Value(), streamsRejected.Value()
	var wg sync.WaitGroup
	statuses := make([]int, contenders)
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A multi-row body so streams overlap long enough to contend.
			body := strings.Repeat("(313) 263-1192\n", 200)
			resp, err := client.Post(streamURL, "text/plain", strings.NewReader(body))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok200, got429 int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			got429++
		default:
			t.Fatalf("contender %d status %d", i, st)
		}
	}
	if ok200+got429 != contenders {
		t.Fatalf("200s %d + 429s %d != %d", ok200, got429, contenders)
	}
	if ok200 == 0 {
		t.Error("no stream was admitted at all")
	}
	admittedD := streamsAdmitted.Value() - admitted0
	rejectedD := streamsRejected.Value() - rejected0
	if admittedD != int64(ok200) || rejectedD != int64(got429) {
		t.Errorf("server admitted/rejected = %d/%d, clients observed %d/%d",
			admittedD, rejectedD, ok200, got429)
	}
	waitFor(t, "in-flight back to zero", func() bool { return streamsInFlight.Value() == 0 })
}

// TestAdmissionSlotReleasedOnDisconnect cancels a client mid-stream and
// checks the slot comes back: the gauge returns to zero and a follow-up
// stream over a 1-slot server is admitted.
func TestAdmissionSlotReleasedOnDisconnect(t *testing.T) {
	baseURL, id := startStressServer(t, 1)
	streamURL := baseURL + "/v1/programs/" + id + "/apply/stream"
	client := &http.Client{}

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", streamURL, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	clientGone := make(chan struct{})
	go func() {
		defer close(clientGone)
		resp, err := client.Do(req)
		if err != nil {
			return // cancellation is the expected outcome
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if _, err := pw.Write([]byte("(313) 263-1192\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream holding the slot", func() bool { return streamsInFlight.Value() == 1 })

	// Client walks away mid-stream.
	cancel()
	pw.CloseWithError(fmt.Errorf("client gone"))
	<-clientGone
	waitFor(t, "slot released after disconnect", func() bool { return streamsInFlight.Value() == 0 })

	// The single slot is usable again.
	resp2, err := client.Post(streamURL, "text/plain", strings.NewReader("(313) 263-1192\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), `"done":true`) {
		t.Fatalf("post-disconnect stream: status %d body %s", resp2.StatusCode, body)
	}
}
