// The streaming bulk-apply endpoint: POST /v1/programs/{id}/apply/stream
// runs a registered program over a request body too large to buffer,
// chunk by chunk, with bounded memory on the server no matter the column
// size. Input framing is selected by query parameters, output is NDJSON —
// one JSON string per transformed row, in input order, then a single
// trailer object carrying the stream stats (or an error frame if the
// source turned out malformed mid-stream, after the 200 was committed).
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"clx/internal/progstore"
	"clx/internal/stream"
)

// streamFlaggedCap bounds the flagged-row indices carried in the trailer;
// the full count is always reported.
const streamFlaggedCap = 10000

// streamTrailer is the final NDJSON frame of a streaming apply. Done is
// true iff every input row was read, transformed, and written; otherwise
// Error names what stopped the stream.
type streamTrailer struct {
	Done    bool   `json:"done"`
	Error   string `json:"error,omitempty"`
	ID      string `json:"id,omitempty"`
	Version int    `json:"version,omitempty"`
	Rows    int64  `json:"rows"`
	Chunks  int64  `json:"chunks"`
	Flagged int64  `json:"flagged"`
	// FlaggedRows lists the first streamFlaggedCap flagged indices;
	// FlaggedTruncated reports when the list was cut.
	FlaggedRows      []int   `json:"flagged_rows,omitempty"`
	FlaggedTruncated bool    `json:"flagged_truncated,omitempty"`
	RowsPerSec       float64 `json:"rows_per_sec"`
}

// handleProgramApplyStream is the chunked hot path. Everything that can
// be validated before the first byte of output — program id, query
// parameters, a Content-Length over the body cap — fails with the uniform
// JSON error envelope; once rows are flowing, failures become a trailer
// error frame, which is all HTTP allows after the status line.
func (s *server) handleProgramApplyStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, version, err := s.store.Load(id)
	if err == progstore.ErrNotFound {
		writeError(w, http.StatusNotFound, fmt.Errorf("program %s not found", id))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if r.ContentLength > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body %d bytes exceeds the %d-byte cap", r.ContentLength, maxBody))
		return
	}
	// Admission control: each stream pins a chunk × MaxInFlight window of
	// memory for its whole lifetime, so admission is bounded by the
	// configured policy (semaphore or token bucket — see admission.go).
	// The decision is non-blocking — turning a burst away immediately
	// with 429 beats queueing it against the server's write timeout. The
	// Retry-After hint is an EWMA of recent stream durations: roughly
	// when the next slot or token frees, instead of a hardcoded guess.
	release, admitted := s.admission.Admit()
	if !admitted {
		streamsRejected.Inc()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.streamEWMA.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("too many concurrent streams (%s admission); retry later", s.admission.Name()))
		return
	}
	streamsAdmitted.Inc()
	s.admitted.Add(1)
	defer release()
	streamsInFlight.Add(1)
	s.inFlight.Add(1)
	defer func() {
		streamsInFlight.Add(-1)
		s.inFlight.Add(-1)
	}()
	streamStart := time.Now()
	defer func() {
		d := time.Since(streamStart)
		s.streamEWMA.Observe(d)
		streamReqDur.Observe(d)
	}()
	q := r.URL.Query()
	chunk, err := intParam(q, "chunk", stream.DefaultChunkSize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	workers, err := intParam(q, "workers", s.opts.Workers)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Chunked request bodies bypass the Content-Length check above;
	// MaxBytesReader still enforces the cap, surfacing as a mid-stream
	// reader error once the limit is crossed.
	body := http.MaxBytesReader(w, r.Body, maxBody)
	var rd stream.Reader
	switch in := q.Get("input"); in {
	case "", "lines":
		rd = stream.NewLineReader(body)
	case "ndjson":
		rd = stream.NewNDJSONReader(body)
	case "csv":
		col, err := intParam(q, "col", 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rd = stream.NewCSVReader(body, col, q.Get("header") == "1" || q.Get("header") == "true")
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown input format %q (want lines, ndjson, or csv)", in))
		return
	}

	// The endpoint is bidirectional: clients may still be producing rows
	// while results flow back. Without full-duplex mode the server drains
	// up to 256KiB of unread request body before releasing the response
	// headers — a slow producer would deadlock against its own unsent
	// rows, and the drained rows would vanish from the apply. Best-effort:
	// writers that don't support it (test recorders) don't drain either.
	http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	trailer := streamTrailer{ID: id, Version: version}
	st, runErr := stream.Run(sp, rd, stream.NDJSONEncoder{}, w, stream.Options{
		ChunkSize: chunk,
		Workers:   workers,
		OnFlagged: func(row int) {
			if len(trailer.FlaggedRows) < streamFlaggedCap {
				trailer.FlaggedRows = append(trailer.FlaggedRows, row)
			} else {
				trailer.FlaggedTruncated = true
			}
		},
		Flush: func() error {
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		},
	})
	trailer.Rows = st.Rows
	trailer.Chunks = st.Chunks
	trailer.Flagged = st.Flagged
	trailer.RowsPerSec = st.RowsPerSec
	if runErr != nil {
		// A write error means the client is gone — the trailer write below
		// fails silently, which is fine. A reader error reaches a live
		// client as an explicit error frame in place of the done trailer.
		trailer.Error = runErr.Error()
	} else {
		trailer.Done = true
	}
	writeNDJSONFrame(w, trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// writeNDJSONFrame writes one JSON object frame and a newline.
func writeNDJSONFrame(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // Encode appends the newline
}

// intParam parses an optional integer query parameter.
func intParam(q map[string][]string, name string, def int) (int, error) {
	vals := q[name]
	if len(vals) == 0 || vals[0] == "" {
		return def, nil
	}
	n, err := strconv.Atoi(vals[0])
	if err != nil {
		return 0, fmt.Errorf("query parameter %s: %v", name, err)
	}
	return n, nil
}
