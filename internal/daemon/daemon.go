// Package daemon is the clxd HTTP server as an importable library: the
// route mux, the JSON envelopes, the streaming admission machinery, and
// the replication endpoints that make a node a WAL-replication follower.
// Command clxd is a thin flag wrapper over New/Handler; the in-process
// cluster fixtures (internal/fleet/fleettest) run N of these servers in
// one test binary, which is what makes the differential cluster-parity
// harness cheap enough to sweep every routing policy × node count.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	clx "clx"
	"clx/internal/automaton"
	"clx/internal/fleet"
	"clx/internal/obs"
	"clx/internal/progstore"
	"clx/internal/rematch"
	"clx/internal/sessionstore"
	"clx/internal/stream"
)

// maxStreams caps concurrent streaming applies under the semaphore
// policy. Each stream holds up to chunk × MaxInFlight rows, so admission
// must be bounded for the engine's fixed-memory guarantee to survive a
// request burst. ~2 streams per CPU keeps the workers busy without
// stacking windows. A var so tests can override it before newServer;
// external callers size it via Config.MaxStreams.
var maxStreams = 2 * runtime.GOMAXPROCS(0)

// Admission policy defaults (see admission.go). Vars so tests can
// override them before newServer; external callers use Config.
var (
	admissionMode  = "semaphore"
	admissionRate  = 100.0 // tokenbucket: sustained streams/sec
	admissionBurst = 0.0   // tokenbucket: burst size (<=0: 2 x maxStreams)
)

// maxBody caps every request body; oversized bodies get the 413 envelope.
// A var so tests can shrink it.
var maxBody int64 = 32 << 20

// Interactive-session defaults (see sessionstore). Vars so tests can
// override them before newServer; external callers use Config.
var (
	sessionTTL     = 15 * time.Minute
	sessionMax     = 256
	sessionNowFunc func() time.Time // nil = time.Now
)

// Config sizes one daemon server. The zero value is a working
// single-node daemon: default options, semaphore admission at 2× CPUs,
// no logging, no replication.
type Config struct {
	// Workers is the per-request goroutine fan-out (0 = one per CPU).
	Workers int
	// MaxStreams caps in-flight streaming applies (semaphore admission);
	// 0 means 2× GOMAXPROCS.
	MaxStreams int
	// Admission selects the streaming admission policy: "" or
	// "semaphore", or "tokenbucket" with AdmissionRate/AdmissionBurst.
	Admission      string
	AdmissionRate  float64
	AdmissionBurst float64
	// Logger receives structured access logs; nil logs nothing.
	Logger *obs.Logger
	// Replicator, when set, makes this node a replication leader: every
	// registry write is flushed to the followers before the client is
	// acknowledged, and the leader's shipping ledger joins /v1/stats.
	Replicator *fleet.Replicator
	// SessionTTL is the idle lifetime of interactive sessions: 0 means
	// the 15m default, negative disables TTL eviction.
	SessionTTL time.Duration
	// MaxSessions bounds live interactive sessions (creates past it get
	// 429 + Retry-After): 0 means the default of 256, negative unbounded.
	MaxSessions int
	// SessionNow injects the session-store clock for deterministic
	// eviction tests; nil means time.Now.
	SessionNow func() time.Time
}

// Server is one clxd node: the program registry plus everything around
// it — admission, observability, and (optionally) a replication role.
type Server = server

// server carries the shared daemon state: the program registry, the
// request logger, the streaming admission policy, the stream-duration
// EWMA behind the Retry-After hint, an optional leader-side replicator,
// and this node's own admission ledger (the process-global obs counters
// sum over every node in the process; these don't, which is what lets an
// in-process cluster fixture reconcile per-node 200/429 splits exactly).
type server struct {
	store      *progstore.Store
	opts       clx.Options
	logger     *obs.Logger // nil logs nothing (tests)
	admission  admissionPolicy
	streamEWMA durationEWMA
	repl       *fleet.Replicator
	sessions   *sessionstore.Store

	admitted atomic.Int64
	rejected atomic.Int64
	inFlight atomic.Int64

	sessionRepairs atomic.Int64
	sessionCommits atomic.Int64
}

// newSessionStore resolves the session config defaults: ttl 0 → 15m,
// negative → eviction off; max 0 → 256, negative → unbounded.
func newSessionStore(ttl time.Duration, max int, now func() time.Time) *sessionstore.Store {
	switch {
	case ttl == 0:
		ttl = 15 * time.Minute
	case ttl < 0:
		ttl = 0
	}
	switch {
	case max == 0:
		max = 256
	case max < 0:
		max = 0
	}
	return sessionstore.New(sessionstore.Config{TTL: ttl, MaxSessions: max, Now: now})
}

// New builds a server over st from cfg.
func New(st *progstore.Store, cfg Config) (*Server, error) {
	slots := cfg.MaxStreams
	if slots <= 0 {
		slots = 2 * runtime.GOMAXPROCS(0)
	}
	rate := cfg.AdmissionRate
	if rate <= 0 {
		rate = admissionRate
	}
	burst := cfg.AdmissionBurst
	if burst <= 0 {
		burst = float64(2 * slots)
	}
	pol, err := newAdmissionPolicy(cfg.Admission, slots, rate, burst)
	if err != nil {
		return nil, err
	}
	opts := clx.DefaultOptions()
	opts.Workers = cfg.Workers
	return &server{
		store:     st,
		opts:      opts,
		logger:    cfg.Logger,
		admission: pol,
		repl:      cfg.Replicator,
		sessions:  newSessionStore(cfg.SessionTTL, cfg.MaxSessions, cfg.SessionNow),
	}, nil
}

// newServer is the test-side constructor: it reads the package-level
// default vars, which the admission and body-cap tests override in place.
func newServer(st *progstore.Store) *server {
	burst := admissionBurst
	if burst <= 0 {
		burst = float64(2 * maxStreams)
	}
	pol, err := newAdmissionPolicy(admissionMode, maxStreams, admissionRate, burst)
	if err != nil {
		// New validates configs from the outside; reaching this is a
		// programmer error in tests.
		panic(err)
	}
	return &server{
		store:     st,
		opts:      clx.DefaultOptions(),
		admission: pol,
		sessions:  newSessionStore(sessionTTL, sessionMax, sessionNowFunc),
	}
}

// Handler is the complete daemon handler: the route mux wrapped in the
// tracing/logging/metrics middleware.
func (s *server) Handler() http.Handler { return s.handler() }

func (s *server) handler() http.Handler { return s.withObs(s.mux()) }

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", obs.Handler())
	mux.HandleFunc("POST /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/transform", s.handleTransform)
	mux.HandleFunc("POST /v1/tables/unify", s.handleUnify)
	mux.HandleFunc("POST /v1/apply", s.handleApply)
	mux.HandleFunc("POST /v1/programs", s.handleProgramRegister)
	mux.HandleFunc("GET /v1/programs", s.handleProgramList)
	mux.HandleFunc("GET /v1/programs/{id}", s.handleProgramGet)
	mux.HandleFunc("DELETE /v1/programs/{id}", s.handleProgramDelete)
	mux.HandleFunc("POST /v1/programs/{id}/apply", s.handleProgramApply)
	mux.HandleFunc("POST /v1/programs/{id}/apply/stream", s.handleProgramApplyStream)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/sessions/{id}/clusters", s.handleSessionClusters)
	mux.HandleFunc("POST /v1/sessions/{id}/append", s.handleSessionAppend)
	mux.HandleFunc("POST /v1/sessions/{id}/label", s.handleSessionLabel)
	mux.HandleFunc("GET /v1/sessions/{id}/repair", s.handleSessionRepairCandidates)
	mux.HandleFunc("POST /v1/sessions/{id}/repair", s.handleSessionRepair)
	mux.HandleFunc("POST /v1/sessions/{id}/commit", s.handleSessionCommit)
	mux.HandleFunc("POST /v1/replication/wal", s.handleReplicationWAL)
	mux.HandleFunc("POST /v1/replication/snapshot", s.handleReplicationSnapshot)
	mux.HandleFunc("GET /v1/replication/status", s.handleReplicationStatus)
	return mux
}

// flushReplication pushes a just-committed registry write to every
// follower before the client is acknowledged. Synchronous-at-the-handler
// is the property the cluster-parity harness leans on: when the leader's
// response reaches the proxy, any node can serve the program.
func (s *server) flushReplication() {
	if s.repl != nil {
		s.repl.Flush()
	}
}

// handleReplicationWAL is the follower half of WAL shipping: apply a
// contiguous batch of the leader's log records through the same code
// path crash recovery replays them. A gap or position mismatch gets 409
// plus this node's actual position, telling the leader to resync by
// snapshot; duplicates (at-least-once delivery) are acknowledged as
// already applied.
func (s *server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fleet.WALShipRequest](w, r)
	if !ok {
		return
	}
	for _, rec := range req.Records {
		if err := s.store.ApplyRecord(rec); err != nil {
			if errors.Is(err, progstore.ErrOutOfOrder) {
				writeJSON(w, http.StatusConflict, fleet.ReplResponse{
					LastIdx: s.store.LastIdx(), Error: err.Error(),
				})
				return
			}
			writeJSON(w, http.StatusInternalServerError, fleet.ReplResponse{
				LastIdx: s.store.LastIdx(), Error: err.Error(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, fleet.ReplResponse{LastIdx: s.store.LastIdx()})
}

// handleReplicationSnapshot installs a full leader state, replacing
// whatever this node held — the resync path for followers that joined
// late, restarted empty, or fell behind a WAL compaction.
func (s *server) handleReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	st, ok := decode[progstore.State](w, r)
	if !ok {
		return
	}
	if err := s.store.InstallState(st); err != nil {
		writeJSON(w, http.StatusInternalServerError, fleet.ReplResponse{
			LastIdx: s.store.LastIdx(), Error: err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, fleet.ReplResponse{LastIdx: s.store.LastIdx()})
}

// replicationStatus is the GET /v1/replication/status document: the
// node's log position and a fingerprint of its full registry state, the
// two values convergence checks compare across nodes.
type replicationStatus struct {
	Fingerprint string `json:"fingerprint"`
	progstore.ReplicationStats
}

func (s *server) handleReplicationStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, replicationStatus{
		Fingerprint:      s.store.Fingerprint(),
		ReplicationStats: s.store.ReplicationStats(),
	})
}

// statsResponse is the GET /v1/stats document: process-level counters a
// deployment scrapes to watch the daemon — the compiled-matcher cache
// (hit/miss/evict), the streaming bulk-apply totals, the automaton
// compilation totals, this node's streaming admission ledger (which
// policy is in force and both sides of every decision, counted per node
// so a cluster proxy or load generator can reconcile each node's
// observed 200/429 split exactly), the profile-index counters, and the
// node's replication position — plus, on a leader, the follower
// shipping ledger.
type statsResponse struct {
	MatcherCache rematch.CacheStats       `json:"matcher_cache"`
	Streaming    stream.Counters          `json:"streaming"`
	Automaton    automaton.Counters       `json:"automaton"`
	Admission    admissionStats           `json:"admission"`
	ProfileIndex clx.ProfileIndexCounters `json:"profile_index"`
	Sessions     sessionsStats            `json:"sessions"`
	Replication  replicationSection       `json:"replication"`
}

// sessionsStats is the interactive-sessions section of /v1/stats: this
// node's session-store lifecycle ledger (active = created - evicted -
// deleted, exactly) plus the repair/commit activity its handlers served.
type sessionsStats struct {
	sessionstore.Counters
	Repairs int64 `json:"repairs"`
	Commits int64 `json:"commits"`
}

// admissionStats is the admission section of /v1/stats. The counters are
// this server's own, not the process totals: an in-process multi-node
// fixture gets an exact per-node ledger.
type admissionStats struct {
	// Policy is the admission mode in force.
	Policy string `json:"policy"`
	// Admitted and Rejected count every decision on this node;
	// admitted + rejected equals the streaming requests that reached
	// admission, and rejected equals the 429s clients saw from it.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// InFlight is this node's streams-in-flight gauge — the load signal
	// the least-loaded routing policy scrapes.
	InFlight int64 `json:"in_flight"`
	// RetryAfterSeconds is the hint the next 429 would carry (EWMA of
	// recent stream durations, floor 1s, cap 30s).
	RetryAfterSeconds int `json:"retry_after_seconds"`
}

// replicationSection is the replication slice of /v1/stats: every node
// reports its own log position and apply/install counters; a leader
// additionally reports its shipping ledger.
type replicationSection struct {
	LastIdx            int64                  `json:"last_idx"`
	RecordsApplied     int64                  `json:"records_applied"`
	SnapshotsInstalled int64                  `json:"snapshots_installed"`
	Leader             *fleet.ReplicatorStats `json:"leader,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	rs := s.store.ReplicationStats()
	repl := replicationSection{
		LastIdx:            rs.LastIdx,
		RecordsApplied:     rs.RecordsApplied,
		SnapshotsInstalled: rs.SnapshotsInstalled,
	}
	if s.repl != nil {
		ls := s.repl.Stats()
		repl.Leader = &ls
	}
	writeJSON(w, http.StatusOK, statsResponse{
		MatcherCache: rematch.Stats(),
		Streaming:    stream.GlobalStats(),
		Automaton:    automaton.GlobalStats(),
		Admission: admissionStats{
			Policy:            s.admission.Name(),
			Admitted:          s.admitted.Load(),
			Rejected:          s.rejected.Load(),
			InFlight:          s.inFlight.Load(),
			RetryAfterSeconds: s.streamEWMA.retryAfterSeconds(),
		},
		ProfileIndex: clx.ProfileIndexStats(),
		Sessions: sessionsStats{
			Counters: s.sessions.Stats(),
			Repairs:  s.sessionRepairs.Load(),
			Commits:  s.sessionCommits.Load(),
		},
		Replication: repl,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	_ = enc.Encode(v)
}

// errorJSON is the uniform error envelope every failure path returns.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return v, false
	}
	return v, true
}
