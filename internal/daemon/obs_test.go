// Tests of the daemon observability layer: the /metrics exposition, the
// streaming admission cap (429 + Retry-After), request-ID propagation,
// and the structured access log.
package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clx/internal/obs"
	"clx/internal/progstore"
)

// TestMetricsEndpoint drives traffic through the daemon and checks that
// GET /metrics serves the pipeline, cache, stream, and HTTP series in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	mux := testMux(t)
	// Exercise the pipeline and a stream so the series carry values.
	request(t, mux, "POST", "/v1/transform",
		`{"rows":["(734) 645-8397","734.236.3466"],"target":"<D>3'-'<D>3'-'<D>4"}`)
	id := registerPhones(t, mux)
	request(t, mux, "POST", "/v1/programs/"+id+"/apply/stream", "(313) 263-1192\n")

	rec, raw := request(t, mux, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)
	series := []string{
		"clx_http_requests_total",
		"clx_http_request_duration_seconds_bucket",
		"clx_streams_in_flight",
		"clx_streams_rejected_total",
		"clx_streams_total",
		"clx_stream_rows_total",
		"clx_stream_chunks_total",
		"clx_stream_flagged_total",
		"clx_stream_chunk_duration_seconds_sum",
		"clx_stage_duration_seconds_bucket{stage=\"profile\"",
		"clx_stage_duration_seconds_bucket{stage=\"synthesize\"",
		"clx_rematch_cache_hits_total",
		"clx_rematch_cache_misses_total",
		"clx_rematch_cache_evictions_total",
		"clx_wal_appends_total",
	}
	for _, s := range series {
		if !strings.Contains(body, s) {
			t.Errorf("metrics output missing series %q", s)
		}
	}
	// Traffic actually moved the HTTP counter.
	if !strings.Contains(body, "# TYPE clx_http_requests_total counter") {
		t.Errorf("missing TYPE line for clx_http_requests_total")
	}
}

// TestStreamAdmissionCap holds one stream slot open and checks that the
// next stream gets 429 with Retry-After and the uniform error envelope,
// while non-stream endpoints stay unaffected.
func TestStreamAdmissionCap(t *testing.T) {
	old := maxStreams
	maxStreams = 1
	defer func() { maxStreams = old }()
	mux := testMux(t)
	id := registerPhones(t, mux)

	// First stream: the body reader blocks until released, pinning the
	// single admission slot.
	bodyR, bodyW := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest("POST", "/v1/programs/"+id+"/apply/stream", bodyR)
		mux.ServeHTTP(httptest.NewRecorder(), req)
	}()
	if _, err := bodyW.Write([]byte("(313) 263-1192\n")); err != nil {
		t.Fatal(err)
	}

	// Second stream while the first holds the slot: 429.
	rec, raw := request(t, mux, "POST", "/v1/programs/"+id+"/apply/stream", "x\n")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, raw)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var env errorJSON
	if err := json.Unmarshal(raw, &env); err != nil || !strings.Contains(env.Error, "concurrent streams") {
		t.Fatalf("not the uniform envelope: %s", raw)
	}

	// Non-stream endpoints are not subject to the cap.
	if rec, _ := request(t, mux, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz under stream load: %d", rec.Code)
	}

	// Release the first stream; the slot frees and streaming works again.
	bodyW.Close()
	<-done
	rec, raw = request(t, mux, "POST", "/v1/programs/"+id+"/apply/stream", "(313) 263-1192\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release stream status %d: %s", rec.Code, raw)
	}
	if _, trailer := parseStream(t, string(raw)); !trailer.Done {
		t.Fatalf("post-release trailer = %+v", trailer)
	}
}

// TestRequestIDPropagation checks both directions: a minted ID is echoed
// back, and a client-supplied X-Request-ID survives end to end.
func TestRequestIDPropagation(t *testing.T) {
	mux := testMux(t)
	rec, _ := request(t, mux, "GET", "/healthz", "")
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatalf("no minted X-Request-ID on response")
	}

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "proxy-abc-123")
	rec2 := httptest.NewRecorder()
	mux.ServeHTTP(rec2, req)
	if got := rec2.Header().Get("X-Request-ID"); got != "proxy-abc-123" {
		t.Fatalf("client request ID not propagated: %q", got)
	}
}

// TestAccessLogJSON wires a buffer logger and checks one structured line
// per request with the expected fields.
func TestAccessLogJSON(t *testing.T) {
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st)
	var buf bytes.Buffer
	srv.logger = obs.NewLogger(&buf, "json")
	h := srv.handler()

	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-me")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON object: %q", buf.String())
	}
	if line["request_id"] != "trace-me" || line["path"] != "/healthz" ||
		line["method"] != "GET" || line["status"] != float64(http.StatusOK) {
		t.Fatalf("access log line = %v", line)
	}
	if _, ok := line["duration_ms"]; !ok {
		t.Fatalf("access log line missing duration_ms: %v", line)
	}
}
