// Tests of the streaming bulk-apply endpoint: frame protocol, input
// framings, the error envelope before the first byte vs the error frame
// after it, the body cap, client disconnects, and goroutine hygiene.
package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// registerPhones registers the standard phone program and returns its id.
func registerPhones(t *testing.T, mux http.Handler) string {
	t.Helper()
	rec, raw := request(t, mux, "POST", "/v1/programs",
		`{"rows":["(734) 645-8397","(734)586-7252","734.236.3466","734-422-8073"],`+
			`"target":"<D>3'-'<D>3'-'<D>4","name":"phones"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register status %d: %s", rec.Code, raw)
	}
	var entry programEntryJSON
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	return entry.ID
}

// parseStream splits an NDJSON response into data rows and the trailer.
func parseStream(t *testing.T, body string) (rows []string, trailer streamTrailer) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatalf("empty stream response")
	}
	for _, ln := range lines[:len(lines)-1] {
		var v string
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("data frame %q is not a JSON string: %v", ln, err)
		}
		rows = append(rows, v)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer %q: %v", lines[len(lines)-1], err)
	}
	return rows, trailer
}

func TestStreamApplyLines(t *testing.T) {
	mux := testMux(t)
	id := registerPhones(t, mux)
	body := "(313) 263-1192\nN/A\n734.236.3466"
	rec, raw := request(t, mux, "POST", "/v1/programs/"+id+"/apply/stream?chunk=2&workers=2", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, raw)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	rows, trailer := parseStream(t, string(raw))
	want := []string{"313-263-1192", "N/A", "734-236-3466"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %q, want %q", rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, rows[i], want[i])
		}
	}
	if !trailer.Done || trailer.Error != "" || trailer.Rows != 3 || trailer.Chunks != 2 ||
		trailer.Flagged != 1 || len(trailer.FlaggedRows) != 1 || trailer.FlaggedRows[0] != 1 {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.ID != id || trailer.Version != 1 {
		t.Fatalf("trailer identity = %s v%d", trailer.ID, trailer.Version)
	}
}

func TestStreamApplyCSV(t *testing.T) {
	mux := testMux(t)
	id := registerPhones(t, mux)
	body := "name,phone\n\"Fisher, Kate\",(313) 263-1192\nBob,734.236.3466\n"
	rec, raw := request(t, mux, "POST",
		"/v1/programs/"+id+"/apply/stream?input=csv&col=1&header=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, raw)
	}
	rows, trailer := parseStream(t, string(raw))
	if len(rows) != 2 || rows[0] != "313-263-1192" || rows[1] != "734-236-3466" {
		t.Fatalf("rows = %q", rows)
	}
	if !trailer.Done || trailer.Rows != 2 || trailer.Flagged != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
}

// Pre-stream failures use the uniform JSON error envelope with the right
// status; nothing of the NDJSON protocol leaks into them.
func TestStreamApplyErrorEnvelope(t *testing.T) {
	mux := testMux(t)
	id := registerPhones(t, mux)
	oldMax := maxBody
	maxBody = 64
	defer func() { maxBody = oldMax }()

	cases := []struct {
		name, path, body string
		status           int
		errSubstr        string
	}{
		{"unknown-id", "/v1/programs/nope/apply/stream", "x", http.StatusNotFound, "not found"},
		{"body-over-cap", "/v1/programs/" + id + "/apply/stream",
			strings.Repeat("7342368073\n", 20), http.StatusRequestEntityTooLarge, "cap"},
		{"bad-input-format", "/v1/programs/" + id + "/apply/stream?input=xml", "x",
			http.StatusBadRequest, "unknown input format"},
		{"bad-chunk", "/v1/programs/" + id + "/apply/stream?chunk=many", "x",
			http.StatusBadRequest, "chunk"},
		{"bad-workers", "/v1/programs/" + id + "/apply/stream?workers=-x", "x",
			http.StatusBadRequest, "workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, raw := request(t, mux, "POST", tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, raw)
			}
			var env errorJSON
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("not an error envelope: %s", raw)
			}
			if !strings.Contains(env.Error, tc.errSubstr) {
				t.Fatalf("error %q does not mention %q", env.Error, tc.errSubstr)
			}
		})
	}
}

// A source that turns malformed after the 200 is committed surfaces as an
// error frame in place of the done trailer; rows admitted before the
// error still arrive.
func TestStreamApplyMidStreamErrorFrame(t *testing.T) {
	mux := testMux(t)
	id := registerPhones(t, mux)
	body := "\"(313) 263-1192\"\nnot json\n\"734.236.3466\"\n"
	rec, raw := request(t, mux, "POST",
		"/v1/programs/"+id+"/apply/stream?input=ndjson&chunk=1&workers=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, raw)
	}
	rows, trailer := parseStream(t, string(raw))
	if len(rows) != 1 || rows[0] != "313-263-1192" {
		t.Fatalf("rows before the error = %q", rows)
	}
	if trailer.Done || !strings.Contains(trailer.Error, "ndjson row 2") {
		t.Fatalf("trailer = %+v", trailer)
	}
}

// disconnectWriter fails every write after the first — the shape of a
// client that went away mid-stream.
type disconnectWriter struct {
	h      http.Header
	writes int
}

func (w *disconnectWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *disconnectWriter) WriteHeader(int) {}
func (w *disconnectWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, fmt.Errorf("broken pipe")
	}
	return len(p), nil
}

// A disconnect aborts the pipeline without leaking worker goroutines and
// counts as a stream error in /v1/stats.
func TestStreamApplyClientDisconnect(t *testing.T) {
	mux := testMux(t)
	id := registerPhones(t, mux)
	var column strings.Builder
	for i := 0; i < 50000; i++ {
		column.WriteString("(313) 263-1192\n")
	}
	before := runtime.NumGoroutine()
	req := httptest.NewRequest("POST",
		"/v1/programs/"+id+"/apply/stream?chunk=64&workers=4", strings.NewReader(column.String()))
	dw := &disconnectWriter{}
	mux.ServeHTTP(dw, req)
	if dw.writes < 2 {
		t.Fatalf("writer saw %d writes; the stream never started", dw.writes)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: %d before, %d after disconnect", before, n)
	}

	rec, raw := request(t, mux, "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	var stats statsResponse
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Streaming.Streams < 1 || stats.Streaming.Errors < 1 {
		t.Fatalf("streaming counters = %+v", stats.Streaming)
	}
}

// TestStreamApplyFullDuplexTrickle pins the bidirectional contract over a
// real connection: response headers and the first result frame must reach
// a client that is still trickling request rows. Without full-duplex mode
// the server drains 256KiB of unread request body before releasing the
// headers (net/http's post-handler drain), which stalls a slow producer
// behind its own unsent rows for over a minute — and silently discards
// the drained rows from the apply.
func TestStreamApplyFullDuplexTrickle(t *testing.T) {
	mux, _ := testMuxServer(t)
	hs := httptest.NewServer(mux)
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/programs", "application/json",
		strings.NewReader(`{"rows":["(734) 645-8397","(734)586-7252"],`+
			`"target":"<D>3'-'<D>3'-'<D>4","id":"duplex"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}

	// Trickle one row every 2ms through a chunked body that only ends
	// once the test has what it needs.
	pr, pw := io.Pipe()
	stop := make(chan struct{})
	var stopOnce sync.Once
	stopFeed := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		defer pw.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := io.WriteString(pw, "(313) 263-1192\n"); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer stopFeed()

	req, err := http.NewRequest("POST", hs.URL+"/v1/programs/duplex/apply/stream?chunk=1", pr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp2.StatusCode)
	}
	line, err := bufio.NewReader(resp2.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("first frame took %v; the stream is not full-duplex", elapsed)
	}
	var row string
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatalf("first frame %q: %v", line, err)
	}
	if row != "313-263-1192" {
		t.Fatalf("first frame = %q, want %q", row, "313-263-1192")
	}
	stopFeed()
	io.Copy(io.Discard, resp2.Body)
}
