// Tests of the interactive-session endpoints: the end-to-end smoke loop
// (make session-smoke runs TestSessionSmoke under -race), the staleness
// 409 protocol, capacity admission, and TTL eviction over HTTP with an
// injected clock.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	clx "clx"
	"clx/internal/progstore"
)

// sessionRequest is the request helper plus the X-Session-ID pinning
// header the routing proxy uses.
func sessionRequest(t *testing.T, h http.Handler, method, path, body, pinID string) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if pinID != "" {
		req.Header.Set("X-Session-ID", pinID)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes(), w.Header()
}

func mustJSON[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, body, err)
	}
	return v
}

// TestSessionSmoke is the full paper loop over HTTP — create → browse
// clusters → append → label → scored repair candidates → repair →
// commit — ending with counter reconciliation against /v1/stats and a
// byte-parity check: the committed program applied via
// /v1/programs/{id}/apply must reproduce the library-level
// transformation exactly, repair included.
func TestSessionSmoke(t *testing.T) {
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st)
	h := srv.handler()

	seed := []string{"31/12/2019", "28/02/2020", "12-31-2019"}
	appended := []string{"01/07/2021", "15/08/2021"}
	const target = "<D>2'-'<D>2'-'<D>4"

	// Create, with a proxy-style pinned id.
	code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions",
		`{"rows":["31/12/2019","28/02/2020","12-31-2019"]}`, "s-pin-1")
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	info := mustJSON[sessionJSON](t, body)
	if info.ID != "s-pin-1" || info.Rows != len(seed) || info.Labeled {
		t.Fatalf("create info = %+v", info)
	}

	// Browse the hierarchy: top clusters, then an explicit level.
	code, body, _ = sessionRequest(t, h, "GET", "/v1/sessions/s-pin-1/clusters", "", "")
	if code != http.StatusOK {
		t.Fatalf("clusters: %d %s", code, body)
	}
	top := mustJSON[clusterResponse](t, body)
	if len(top.Clusters) == 0 || top.Clusters[0].Pattern == "" {
		t.Fatalf("clusters = %+v", top)
	}
	code, body, _ = sessionRequest(t, h, "GET", "/v1/sessions/s-pin-1/clusters?level=0", "", "")
	if code != http.StatusOK {
		t.Fatalf("clusters level 0: %d %s", code, body)
	}
	if code, body, _ := sessionRequest(t, h, "GET", "/v1/sessions/s-pin-1/clusters?level=99", "", ""); code != http.StatusBadRequest {
		t.Fatalf("clusters level 99: %d %s", code, body)
	}

	// Append grows the column incrementally.
	code, body, _ = sessionRequest(t, h, "POST", "/v1/sessions/s-pin-1/append",
		`{"rows":["01/07/2021","15/08/2021"]}`, "")
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, body)
	}
	ap := mustJSON[sessionAppendResponse](t, body)
	if ap.Rows != len(seed)+len(appended) || ap.Appended != len(appended) || ap.Generation == 0 {
		t.Fatalf("append = %+v", ap)
	}

	// Label over the grown column.
	code, body, _ = sessionRequest(t, h, "POST", "/v1/sessions/s-pin-1/label",
		fmt.Sprintf(`{"target":"%s"}`, strings.ReplaceAll(target, `"`, `\"`)), "")
	if code != http.StatusOK {
		t.Fatalf("label: %d %s", code, body)
	}
	lab := mustJSON[sessionLabelResponse](t, body)
	if len(lab.Ops) == 0 || len(lab.Sources) == 0 || lab.Sources[0].Plans < 2 {
		t.Fatalf("label = %+v", lab)
	}

	// Scored repair candidates for source 0, best-first.
	code, body, _ = sessionRequest(t, h, "GET", "/v1/sessions/s-pin-1/repair?source=0", "", "")
	if code != http.StatusOK {
		t.Fatalf("candidates: %d %s", code, body)
	}
	cands := mustJSON[repairCandidatesResponse](t, body)
	if len(cands.Candidates) != lab.Sources[0].Plans {
		t.Fatalf("candidates = %d, label said %d", len(cands.Candidates), lab.Sources[0].Plans)
	}
	pick := repairCandidateJSON{Alt: -1}
	for _, c := range cands.Candidates {
		if c.Selected {
			if c.EditDistance != 0 {
				t.Errorf("selected candidate edit distance = %d", c.EditDistance)
			}
		} else if pick.Alt < 0 {
			pick = c
		}
	}
	if pick.Alt < 0 {
		t.Fatal("no non-selected candidate to repair with")
	}

	// Apply the ranked pick.
	code, body, _ = sessionRequest(t, h, "POST", "/v1/sessions/s-pin-1/repair",
		fmt.Sprintf(`{"source":%d,"alt":%d}`, pick.Source, pick.Alt), "")
	if code != http.StatusOK {
		t.Fatalf("repair: %d %s", code, body)
	}

	// Commit into the program registry.
	code, body, _ = sessionRequest(t, h, "POST", "/v1/sessions/s-pin-1/commit",
		`{"name":"dates"}`, "")
	if code != http.StatusCreated {
		t.Fatalf("commit: %d %s", code, body)
	}
	entry := mustJSON[programEntryJSON](t, body)
	if entry.ID == "" || entry.Name != "dates" || len(entry.Program) == 0 {
		t.Fatalf("commit entry = %+v", entry)
	}
	if len(entry.Repairs) != 1 || entry.Repairs[0].Source != pick.Source || entry.Repairs[0].Alt != pick.Alt {
		t.Fatalf("commit repairs = %+v, want the session's pick", entry.Repairs)
	}

	// Byte-parity: the registered program must reproduce the library path
	// (same data, same label, same repair) exactly.
	sess := clx.NewSession(append(append([]string(nil), seed...), appended...))
	tr, err := sess.Label(clx.MustParsePattern(target))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Repair(pick.Source, pick.Alt); err != nil {
		t.Fatal(err)
	}
	wantOut, _ := tr.Run()

	code, body, _ = sessionRequest(t, h, "POST", "/v1/programs/"+entry.ID+"/apply",
		`{"rows":["31/12/2019","28/02/2020","12-31-2019","01/07/2021","15/08/2021"]}`, "")
	if code != http.StatusOK {
		t.Fatalf("program apply: %d %s", code, body)
	}
	applied := mustJSON[progstore.ApplyResult](t, body)
	if len(applied.Output) != len(wantOut) {
		t.Fatalf("apply output = %d rows, want %d", len(applied.Output), len(wantOut))
	}
	for i := range wantOut {
		if applied.Output[i] != wantOut[i] {
			t.Fatalf("apply parity broken at %d: %q != %q", i, applied.Output[i], wantOut[i])
		}
	}

	// Counter reconciliation: this server saw exactly one session created,
	// one repair, one commit; the session is still live.
	code, body, _ = sessionRequest(t, h, "GET", "/v1/stats", "", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	stats := mustJSON[statsResponse](t, body)
	ss := stats.Sessions
	if ss.Created != 1 || ss.Active != 1 || ss.Evicted != 0 || ss.Deleted != 0 ||
		ss.Repairs != 1 || ss.Commits != 1 {
		t.Fatalf("sessions stats = %+v", ss)
	}

	// Delete closes the loop; conservation must hold exactly.
	if code, body, _ := sessionRequest(t, h, "DELETE", "/v1/sessions/s-pin-1", "", ""); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	_, body, _ = sessionRequest(t, h, "GET", "/v1/stats", "", "")
	ss = mustJSON[statsResponse](t, body).Sessions
	if ss.Created-ss.Evicted-ss.Deleted != ss.Active || ss.Active != 0 {
		t.Fatalf("conservation violated after delete: %+v", ss)
	}
	if code, body, _ := sessionRequest(t, h, "GET", "/v1/sessions/s-pin-1", "", ""); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d %s", code, body)
	}
}

// TestSessionStale409 pins the staleness protocol: a transformation
// labeled before an append answers 409 on repair and commit until the
// client re-labels; repair before any label is also 409.
func TestSessionStale409(t *testing.T) {
	h := testMux(t)

	code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions",
		`{"rows":["31/12/2019","28/02/2020","12-31-2019"]}`, "s-stale")
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	// Repair before label: 409.
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/repair",
		`{"source":0,"alt":1}`, ""); code != http.StatusConflict {
		t.Fatalf("repair before label: %d %s", code, body)
	}

	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/label",
		`{"target":"<D>2'-'<D>2'-'<D>4"}`, ""); code != http.StatusOK {
		t.Fatalf("label: %d %s", code, body)
	}

	// An empty append is a no-op and must NOT invalidate the label.
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/append",
		`{"rows":[]}`, ""); code != http.StatusOK {
		t.Fatalf("empty append: %d %s", code, body)
	}
	if code, body, _ := sessionRequest(t, h, "GET", "/v1/sessions/s-stale/repair?source=0", "", ""); code != http.StatusOK {
		t.Fatalf("candidates after empty append: %d %s", code, body)
	}

	// A real append makes the transformation stale: 409 everywhere.
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/append",
		`{"rows":["01/07/2021"]}`, ""); code != http.StatusOK {
		t.Fatalf("append: %d %s", code, body)
	}
	for _, probe := range []struct{ method, path, body string }{
		{"GET", "/v1/sessions/s-stale/repair?source=0", ""},
		{"POST", "/v1/sessions/s-stale/repair", `{"source":0,"alt":1}`},
		{"POST", "/v1/sessions/s-stale/commit", `{}`},
	} {
		code, body, _ := sessionRequest(t, h, probe.method, probe.path, probe.body, "")
		if code != http.StatusConflict {
			t.Fatalf("%s %s after append: %d %s, want 409", probe.method, probe.path, code, body)
		}
		env := mustJSON[errorJSON](t, body)
		if !strings.Contains(env.Error, "stale") && !strings.Contains(env.Error, "label") {
			t.Fatalf("409 envelope not explanatory: %q", env.Error)
		}
	}

	// The session doc reports the stale flag, and re-labeling clears it.
	_, body, _ = sessionRequest(t, h, "GET", "/v1/sessions/s-stale", "", "")
	if info := mustJSON[sessionJSON](t, body); !info.Labeled || !info.Stale {
		t.Fatalf("session doc = %+v, want labeled+stale", info)
	}
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/label",
		`{"target":"<D>2'-'<D>2'-'<D>4"}`, ""); code != http.StatusOK {
		t.Fatalf("re-label: %d %s", code, body)
	}
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-stale/repair",
		`{"source":0,"alt":1}`, ""); code != http.StatusOK {
		t.Fatalf("repair after re-label: %d %s", code, body)
	}
}

// TestSessionCapacity429 pins the admission envelope: creates past
// MaxSessions answer 429 with Retry-After, and deleting frees the slot.
func TestSessionCapacity429(t *testing.T) {
	oldMax := sessionMax
	sessionMax = 1
	defer func() { sessionMax = oldMax }()
	h := testMux(t)

	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions",
		`{"rows":["a1"]}`, "s-cap-1"); code != http.StatusCreated {
		t.Fatalf("create 1: %d %s", code, body)
	}
	code, body, hdr := sessionRequest(t, h, "POST", "/v1/sessions", `{"rows":["a1"]}`, "s-cap-2")
	if code != http.StatusTooManyRequests {
		t.Fatalf("create past cap: %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if env := mustJSON[errorJSON](t, body); !strings.Contains(env.Error, "session limit") {
		t.Fatalf("429 envelope: %q", env.Error)
	}
	if code, body, _ := sessionRequest(t, h, "DELETE", "/v1/sessions/s-cap-1", "", ""); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions",
		`{"rows":["a1"]}`, "s-cap-3"); code != http.StatusCreated {
		t.Fatalf("create after delete: %d %s", code, body)
	}
}

// TestSessionTTLEvictionOverHTTP drives the injected clock past the TTL
// and watches the session disappear with the evicted counter moving.
func TestSessionTTLEvictionOverHTTP(t *testing.T) {
	var mu sync.Mutex
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	oldTTL, oldNow := sessionTTL, sessionNowFunc
	sessionTTL = time.Hour
	sessionNowFunc = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	defer func() { sessionTTL, sessionNowFunc = oldTTL, oldNow }()
	h := testMux(t)

	if code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions",
		`{"rows":["a1","b2"]}`, "s-ttl"); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	if code, _, _ := sessionRequest(t, h, "GET", "/v1/sessions/s-ttl", "", ""); code != http.StatusOK {
		t.Fatalf("get before expiry: %d", code)
	}

	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()

	// The next request's lazy sweep evicts it.
	if code, body, _ := sessionRequest(t, h, "GET", "/v1/sessions/s-ttl", "", ""); code != http.StatusNotFound {
		t.Fatalf("get after expiry: %d %s", code, body)
	}
	_, body, _ := sessionRequest(t, h, "GET", "/v1/stats", "", "")
	ss := mustJSON[statsResponse](t, body).Sessions
	if ss.Evicted != 1 || ss.Active != 0 || ss.Created != 1 {
		t.Fatalf("stats after eviction = %+v", ss)
	}
}

// TestSessionValidation covers the plain-4xx edges: empty rows, missing
// target, unknown session, bad repair body.
func TestSessionValidation(t *testing.T) {
	h := testMux(t)
	if code, _, _ := sessionRequest(t, h, "POST", "/v1/sessions", `{"rows":[]}`, ""); code != http.StatusBadRequest {
		t.Fatalf("empty rows: %d", code)
	}
	if code, _, _ := sessionRequest(t, h, "GET", "/v1/sessions/nope", "", ""); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d", code)
	}
	code, body, _ := sessionRequest(t, h, "POST", "/v1/sessions", `{"rows":["a1"]}`, "s-val")
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	if code, _, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-val/label", `{}`, ""); code != http.StatusBadRequest {
		t.Fatalf("missing target: %d", code)
	}
	if code, _, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-val/label",
		`{"target":"{digit"}`, ""); code != http.StatusBadRequest {
		t.Fatalf("bad target: %d", code)
	}
	if code, _, _ := sessionRequest(t, h, "POST", "/v1/sessions/s-val/repair", `{}`, ""); code != http.StatusBadRequest {
		t.Fatalf("empty repair: %d", code)
	}
	// Duplicate pinned id conflicts.
	if code, _, _ := sessionRequest(t, h, "POST", "/v1/sessions", `{"rows":["a1"]}`, "s-val"); code != http.StatusConflict {
		t.Fatalf("duplicate id: %d", code)
	}
}
