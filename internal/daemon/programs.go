// Handlers for the persistent program registry: synthesize-and-register,
// inspect, delete, and the hot apply-by-id path with drift reporting.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	clx "clx"
	"clx/internal/progstore"
)

// registerRequest is the POST /v1/programs body: the same synthesis
// inputs as /v1/transform plus registry metadata.
type registerRequest struct {
	Rows []string `json:"rows"`
	// Target is the desired pattern, compact or NL notation.
	Target string `json:"target"`
	// Repairs selects ranked alternatives before export (§6.4); they are
	// recorded in the entry's synthesis metadata.
	Repairs []repairJSON `json:"repairs,omitempty"`
	// Name is an optional human label.
	Name string `json:"name,omitempty"`
	// ID re-registers an existing program, bumping its version.
	ID string `json:"id,omitempty"`
}

// programEntryJSON is the wire form of a registry entry. Program is
// omitted in listings and carried on registration/get, where the
// auditable artifact is the point.
type programEntryJSON struct {
	ID            string          `json:"id"`
	Version       int             `json:"version"`
	CreatedAtUnix int64           `json:"created_at_unix"`
	Name          string          `json:"name,omitempty"`
	Target        string          `json:"target"`
	Sources       []string        `json:"sources"`
	RowCount      int             `json:"row_count,omitempty"`
	Repairs       []repairJSON    `json:"repairs,omitempty"`
	Program       json.RawMessage `json:"program,omitempty"`
	Flagged       []int           `json:"flagged,omitempty"`
}

func toEntryJSON(e progstore.Entry, withProgram bool) programEntryJSON {
	j := programEntryJSON{
		ID:            e.ID,
		Version:       e.Version,
		CreatedAtUnix: e.CreatedAtUnix,
		Name:          e.Name,
		Target:        e.Target,
		Sources:       e.Sources,
		RowCount:      e.RowCount,
	}
	for _, r := range e.Repairs {
		j.Repairs = append(j.Repairs, repairJSON{Source: r.Source, Alt: r.Alt})
	}
	if withProgram {
		j.Program = e.Program
	}
	return j
}

// handleProgramRegister synthesizes a program for rows→target (the
// expensive Algorithm-2 path), applies any repairs, and registers the
// exported artifact durably. Subsequent applies by id never synthesize.
func (s *server) handleProgramRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[registerRequest](w, r)
	if !ok {
		return
	}
	if req.Target == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing target pattern"))
		return
	}
	target, err := clx.ParseAnyPattern(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := clx.NewSession(req.Rows, s.opts)
	tr, err := sess.Label(target)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var repairs []progstore.Repair
	for _, rep := range req.Repairs {
		if err := tr.Repair(rep.Source, rep.Alt); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		repairs = append(repairs, progstore.Repair{Source: rep.Source, Alt: rep.Alt})
	}
	raw, err := tr.Export()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entry, err := s.store.Register(raw, progstore.Meta{
		ID:       req.ID,
		Name:     req.Name,
		RowCount: len(req.Rows),
		Repairs:  repairs,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The write is on every healthy follower before the client hears 201.
	s.flushReplication()
	resp := toEntryJSON(entry, true)
	// Unmatched rows of the synthesis column: the registered program will
	// flag these same formats at serving time, so surface them now.
	resp.Flagged = tr.Unmatched()
	writeJSON(w, http.StatusCreated, resp)
}

type programListResponse struct {
	Programs []programEntryJSON `json:"programs"`
}

func (s *server) handleProgramList(w http.ResponseWriter, _ *http.Request) {
	resp := programListResponse{Programs: []programEntryJSON{}}
	for _, e := range s.store.List() {
		resp.Programs = append(resp.Programs, toEntryJSON(e, false))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleProgramGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("program %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, toEntryJSON(e, true))
}

func (s *server) handleProgramDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok, err := s.store.Delete(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("program %s not found", id))
		return
	}
	s.flushReplication()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// programApplyRequest is the POST /v1/programs/{id}/apply body.
type programApplyRequest struct {
	Rows []string `json:"rows"`
}

// handleProgramApply is the hot path: no profiling, no synthesis — the
// stored program (decoded once per version) runs over the rows via the
// process-wide compiled-matcher cache and the worker pool, and the
// response reports any format drift among the uncovered rows.
func (s *server) handleProgramApply(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	req, ok := decode[programApplyRequest](w, r)
	if !ok {
		return
	}
	res, err := s.store.Apply(id, req.Rows, s.opts.Workers)
	if err == progstore.ErrNotFound {
		writeError(w, http.StatusNotFound, fmt.Errorf("program %s not found", id))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
