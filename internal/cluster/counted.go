// Counted profiling: the §4.1 hot path reworked around distinct values and
// interned patterns. Real columns repeat — a 20k-row phone column has a
// handful of shapes and often far fewer distinct strings — so the column is
// first collapsed into a counted multiset (distinct value → row count +
// member rows), each distinct value is tokenized exactly once into a pooled
// buffer, and the resulting token sequence is hash-consed into a dense
// intern.PatternID. Everything downstream (grouping, constant discovery,
// refinement) then works per distinct value or per pattern id instead of
// per row, while the user-facing outputs — first-seen cluster order,
// per-row index lists, frozen constants — remain byte-identical to the
// original per-row scan (see DESIGN.md §9 and the reference-equivalence
// tests).
package cluster

import (
	"time"

	"clx/internal/intern"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/token"
	"clx/internal/tokenize"
)

// Stats reports what one Profile pass saw and where the time went, for the
// clxbench profile experiment and callers that monitor profiling cost.
type Stats struct {
	// Rows is the input column size; DistinctValues the number of unique
	// strings in it; LeafPatterns the number of initial clusters.
	Rows, DistinctValues, LeafPatterns int
	// Per-phase wall time: value de-duplication, tokenize+intern over
	// distinct values, cluster grouping, constant discovery, hierarchy
	// refinement. On the sharded path, Index and Tokenize cover the
	// routing and absorption phases of Index.Add.
	Index, Tokenize, Group, Constants, Refine time.Duration
	// Sharded reports which execution plan ran: the sharded mergeable
	// index (true) or the serial counted scan (false). Output is
	// byte-identical either way; the flag exists for monitoring and for
	// the auto-collapse threshold tests.
	Sharded bool
}

// valueIndex is the counted view of a column: the distinct values in
// first-seen order, how many rows carry each, which distinct slot each row
// resolves to, and the interned initial pattern of each distinct value.
type valueIndex struct {
	values []string
	counts []int
	slotOf []int32
	ids    []intern.PatternID
	table  *intern.Table
}

// indexColumn collapses data into its distinct values. The scan is serial
// and left-to-right: first-seen distinct order is what makes the counted
// cluster order provably identical to the per-row scan's.
func indexColumn(data []string) *valueIndex {
	vi := &valueIndex{slotOf: make([]int32, len(data))}
	slots := make(map[string]int32, len(data))
	for i, s := range data {
		d, ok := slots[s]
		if !ok {
			d = int32(len(vi.values))
			slots[s] = d
			vi.values = append(vi.values, s)
			vi.counts = append(vi.counts, 0)
		}
		vi.counts[d]++
		vi.slotOf[i] = d
	}
	return vi
}

// tokenizeAll derives and interns the initial pattern of every distinct
// value. Each worker reuses one token buffer across its chunk, so a value
// whose pattern is already interned costs zero allocations.
func (vi *valueIndex) tokenizeAll(workers int, tbl *intern.Table) {
	vi.table = tbl
	vi.ids = make([]intern.PatternID, len(vi.values))
	parallel.ForChunks(workers, len(vi.values), func(lo, hi int) {
		buf := make([]token.Token, 0, 32)
		for d := lo; d < hi; d++ {
			buf = tokenize.AppendTokenize(buf[:0], vi.values[d])
			vi.ids[d] = tbl.Intern(buf)
		}
	})
}

// initialCounted is Initial over the counted view: it returns the clusters
// in first-seen order plus, per cluster, its member distinct slots (for the
// constant-discovery pass). st, when non-nil, receives phase timings.
func initialCounted(data []string, opts Options, tbl *intern.Table, st *Stats) ([]*Cluster, *valueIndex, [][]int32) {
	t0 := time.Now()
	vi := indexColumn(data)
	t1 := time.Now()
	vi.tokenizeAll(opts.Workers, tbl)
	t2 := time.Now()

	// Group distinct values by pattern id. Distinct values are in
	// first-row-seen order, so the first distinct value with a given
	// pattern is also the first *row* with it: cluster order and Sample
	// match the per-row scan exactly.
	clusterOf := make(map[intern.PatternID]int32, 64)
	var order []*Cluster
	var members [][]int32
	slotCluster := make([]int32, len(vi.values))
	for d, id := range vi.ids {
		ci, ok := clusterOf[id]
		if !ok {
			ci = int32(len(order))
			clusterOf[id] = ci
			order = append(order, &Cluster{
				Pattern: pattern.Of(tbl.Tokens(id)...),
				Sample:  vi.values[d],
			})
			members = append(members, nil)
		}
		members[ci] = append(members[ci], int32(d))
		slotCluster[d] = ci
	}
	// Per-row membership comes from a serial row-order scan — Rows lists
	// stay in ascending row order, the user-facing contract.
	for i := range data {
		c := order[slotCluster[vi.slotOf[i]]]
		c.Rows = append(c.Rows, i)
	}
	t3 := time.Now()
	if opts.DiscoverConstants {
		discoverConstants(order, members, vi, opts)
		// Constant substitution can only refine labels, never merge
		// clusters, so the partition is unchanged.
	}
	if st != nil {
		st.Rows = len(data)
		st.DistinctValues = len(vi.values)
		st.LeafPatterns = len(order)
		st.Index = t1.Sub(t0)
		st.Tokenize = t2.Sub(t1)
		st.Group = t3.Sub(t2)
		st.Constants = time.Since(t3)
	}
	return order, vi, members
}

// discoverConstants rewrites base tokens whose value is constant across all
// cluster members into literal tokens, following §4.1 (statistics over
// tokenized strings), operating per distinct value with row counts.
//
// Initial patterns carry only natural-number quantifiers (tokenize never
// emits '+'), so every token's span is fixed and shared by all members:
// spans come from a cumulative FixedLen walk, with no per-row matching.
func discoverConstants(clusters []*Cluster, members [][]int32, vi *valueIndex, opts Options) {
	// Corpus statistics: in how many rows does each base-token value occur?
	// Each worker accumulates a shard-local map over its distinct-value
	// chunk, weighted by row counts; integer addition commutes, so the
	// merged counts are independent of shard boundaries — and identical to
	// the per-row accumulation, since equal rows contribute equal sets.
	//
	// Values longer than MaxConstantLen are never candidates for freezing
	// (the FixedLen cap below), so their counts are never consulted and
	// they are skipped here.
	chunks := parallel.Chunks(opts.Workers, len(vi.values))
	partials := make([]map[string]int, len(chunks))
	parallel.For(opts.Workers, len(chunks), func(ci int) {
		local := make(map[string]int)
		var vals []string // per-value distinct substrings, reused
		for d := chunks[ci][0]; d < chunks[ci][1]; d++ {
			s := vi.values[d]
			vals = vals[:0]
			off := 0
			for _, t := range vi.table.Tokens(vi.ids[d]) {
				n, _ := t.FixedLen()
				if !t.IsLiteral() && n <= opts.MaxConstantLen {
					v := s[off : off+n]
					dup := false
					for _, u := range vals {
						if u == v {
							dup = true
							break
						}
					}
					if !dup {
						vals = append(vals, v)
					}
				}
				off += n
			}
			for _, v := range vals {
				local[v] += vi.counts[d]
			}
		}
		partials[ci] = local
	})
	rowsWith := make(map[string]int)
	for _, local := range partials {
		for v, n := range local {
			rowsWith[v] += n
		}
	}
	frequent := func(v string) bool {
		return float64(rowsWith[v]) >= opts.MinConstantRatio*float64(len(vi.slotOf))
	}
	// Per-cluster discovery writes only its own cluster's pattern and reads
	// the now-frozen rowsWith map — independent per cluster.
	parallel.For(opts.Workers, len(clusters), func(i int) {
		freezeClusterConstants(clusters[i], members[i], vi, frequent, opts)
	})
}

// freezeClusterConstants freezes the constant base tokens of one cluster,
// checking candidate positions across the cluster's distinct values only —
// identical rows can neither create nor break constancy.
func freezeClusterConstants(c *Cluster, members []int32, vi *valueIndex, frequent func(string) bool, opts Options) {
	if c.Count() < opts.MinConstantSupport {
		return
	}
	toks := c.Pattern.Tokens()
	first := vi.values[members[0]]
	newToks := make([]token.Token, len(toks))
	copy(newToks, toks)
	changed := false
	off := 0
	for ti, t := range toks {
		l, _ := t.FixedLen() // initial patterns are fully fixed
		start := off
		off += l
		if t.IsLiteral() || l > opts.MaxConstantLen {
			continue
		}
		val := first[start : start+l]
		constant := true
		for _, d := range members[1:] {
			if vi.values[d][start:start+l] != val {
				constant = false
				break
			}
		}
		if constant && frequent(val) {
			newToks[ti] = token.Lit(val)
			changed = true
		}
	}
	if changed {
		c.Pattern = pattern.Of(coalesceConstants(newToks)...)
	}
}
