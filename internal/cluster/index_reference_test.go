package cluster

// Differential suite for the sharded, mergeable, incremental index: every
// combination of shard count, worker count, and append schedule must
// reproduce the reference per-row profile bit for bit — the same
// discipline the automaton and stream engines are held to. `make gate`
// runs this under the race detector via the profile-parity target.

import (
	"runtime"
	"testing"

	"clx/internal/dataset"
)

// pinGOMAXPROCS raises the scheduler's processor count for the test so the
// sharded plan actually runs concurrently (and the race tier sees real
// interleavings) even on a one-CPU CI container.
func pinGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// increments splits rows into parts contiguous, non-empty-where-possible
// append batches: the schedules the incremental API must be invariant to.
func increments(rows []string, parts int) [][]string {
	out := make([][]string, 0, parts)
	for p := 0; p < parts; p++ {
		lo, hi := p*len(rows)/parts, (p+1)*len(rows)/parts
		out = append(out, rows[lo:hi])
	}
	return out
}

// TestShardedIndexMatchesReference is the central equivalence theorem of
// the sharded-index rewrite: for every corpus, option set, shard count,
// worker count, and append schedule (everything at once vs four
// increments), Index.Profile emits a hierarchy byte-identical to the
// reference per-row implementation — including after every intermediate
// increment, where the index must match the reference profile of the
// prefix added so far.
func TestShardedIndexMatchesReference(t *testing.T) {
	pinGOMAXPROCS(t, 4)
	for name, rows := range referenceColumns() {
		for _, discover := range []bool{true, false} {
			opts := DefaultOptions()
			opts.DiscoverConstants = discover
			opts.Workers = 1

			// Reference fingerprints per prefix length, computed lazily:
			// the full column for the all-at-once schedule, each prefix for
			// the incremental one.
			refAt := map[int]string{}
			ref := func(n int) string {
				if fp, ok := refAt[n]; ok {
					return fp
				}
				fp := hierarchyFingerprint(referenceProfile(rows[:n], opts))
				refAt[n] = fp
				return fp
			}

			for _, shards := range []int{1, 4, 16} {
				for _, w := range []int{1, 2, 4, 8} {
					ixOpts := opts
					ixOpts.Workers = w

					// All at once.
					ix := NewIndexShards(ixOpts, shards)
					ix.Add(rows)
					if got := hierarchyFingerprint(ix.Profile()); got != ref(len(rows)) {
						t.Errorf("%s discover=%v shards=%d workers=%d: all-at-once diverges from reference",
							name, discover, shards, w)
					}

					// Four increments, profiling after each.
					ix = NewIndexShards(ixOpts, shards)
					added := 0
					for _, inc := range increments(rows, 4) {
						ix.Add(inc)
						added += len(inc)
						if got := hierarchyFingerprint(ix.Profile()); got != ref(added) {
							t.Errorf("%s discover=%v shards=%d workers=%d: profile after %d/%d rows diverges from reference",
								name, discover, shards, w, added, len(rows))
						}
					}
				}
			}
		}
	}
}

// TestProfileAutoCollapse pins the plan-selection rule: the sharded plan
// runs only when effective parallelism is at least 2 AND the column is at
// least shardedMinRows — so a one-CPU machine, a serial request, or a
// small column all take the serial counted path and can never regress
// behind it.
func TestProfileAutoCollapse(t *testing.T) {
	big, _ := dataset.Phones(shardedMinRows, 6, 77)
	small := big[:shardedMinRows/8]
	cases := []struct {
		name        string
		gomaxprocs  int
		workers     int
		rows        []string
		wantSharded bool
	}{
		{"parallel-large", 4, 4, big, true},
		{"auto-workers-large", 4, 0, big, true},
		{"one-cpu-many-workers", 1, 8, big, false},
		{"serial-request-large", 4, 1, big, false},
		{"parallel-small", 4, 8, small, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pinGOMAXPROCS(t, tc.gomaxprocs)
			opts := DefaultOptions()
			opts.Workers = tc.workers
			_, st := ProfileWithStats(tc.rows, opts)
			if st.Sharded != tc.wantSharded {
				t.Errorf("GOMAXPROCS=%d workers=%d rows=%d: Sharded=%v, want %v",
					tc.gomaxprocs, tc.workers, len(tc.rows), st.Sharded, tc.wantSharded)
			}
		})
	}

	// Whichever plan runs, the bytes match.
	opts := DefaultOptions()
	opts.Workers = 1
	want := hierarchyFingerprint(Profile(big, opts))
	pinGOMAXPROCS(t, 4)
	opts.Workers = 4
	if got := hierarchyFingerprint(Profile(big, opts)); got != want {
		t.Error("sharded plan diverges from serial plan on the same column")
	}
}

// TestIndexIncrementalState pins the index bookkeeping across appends: row
// and distinct-value accounting, conservation of shard counts, and that a
// re-profile with no intervening Add reports zero pending Add time.
func TestIndexIncrementalState(t *testing.T) {
	rows, _ := dataset.Phones(1000, 6, 77)
	ix := NewIndex(DefaultOptions())
	ix.Add(rows[:600])
	ix.Add(rows[600:])

	if got := ix.Rows(); got != len(rows) {
		t.Fatalf("Rows = %d, want %d", got, len(rows))
	}
	serial := make(map[string]int)
	for _, v := range rows {
		serial[v]++
	}
	merged := ix.DistinctCounts()
	if len(merged) != len(serial) || ix.DistinctValues() != len(serial) {
		t.Fatalf("distinct values = %d (map %d), want %d", ix.DistinctValues(), len(merged), len(serial))
	}
	total := 0
	for v, n := range merged {
		if serial[v] != n {
			t.Errorf("count[%q] = %d, want %d", v, n, serial[v])
		}
		total += n
	}
	if total != len(rows) {
		t.Errorf("shard counts sum to %d, want %d", total, len(rows))
	}

	_, st := ix.ProfileWithStats()
	if st.Rows != len(rows) || !st.Sharded {
		t.Errorf("stats = %+v, want Rows=%d Sharded=true", st, len(rows))
	}
	// Re-profile without an Add: the pending Add timings were consumed.
	_, st2 := ix.ProfileWithStats()
	if st2.Index != 0 || st2.Tokenize != 0 {
		t.Errorf("re-profile reports pending Add time (index=%v tokenize=%v), want zero", st2.Index, st2.Tokenize)
	}
	if st2.Rows != st.Rows || st2.LeafPatterns != st.LeafPatterns {
		t.Errorf("re-profile changed sizes: %+v vs %+v", st2, st)
	}
}

// TestIndexReturnedHierarchyImmutable: a hierarchy materialized before an
// append must not change when the index grows.
func TestIndexReturnedHierarchyImmutable(t *testing.T) {
	rows, _ := dataset.Phones(500, 6, 77)
	ix := NewIndex(DefaultOptions())
	ix.Add(rows[:400])
	before := ix.Profile()
	fp := hierarchyFingerprint(before)
	ix.Add(rows[400:])
	ix.Profile()
	if hierarchyFingerprint(before) != fp {
		t.Error("append mutated a previously returned hierarchy")
	}
}

// TestNewIndexShardsValidation: shard counts must be powers of two.
func TestNewIndexShardsValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewIndexShards(%d) did not panic", bad)
				}
			}()
			NewIndexShards(DefaultOptions(), bad)
		}()
	}
	for _, ok := range []int{1, 2, 8, 16} {
		if got := len(NewIndexShards(DefaultOptions(), ok).shards); got != ok {
			t.Errorf("NewIndexShards(%d) has %d shards", ok, got)
		}
	}
}

// TestIndexEmptyAndDegenerate covers the shapes that break off-by-ones:
// no rows at all, empty-string rows, and a single row.
func TestIndexEmptyAndDegenerate(t *testing.T) {
	for _, rows := range [][]string{{}, {""}, {"", "", ""}, {"only-one-row"}} {
		opts := DefaultOptions()
		want := hierarchyFingerprint(referenceProfile(rows, opts))
		ix := NewIndex(opts)
		ix.Add(rows)
		if got := hierarchyFingerprint(ix.Profile()); got != want {
			t.Errorf("rows=%q: index diverges from reference", rows)
		}
	}
	// Add of an empty batch is a no-op.
	ix := NewIndex(DefaultOptions())
	ix.Add(nil)
	if ix.Rows() != 0 || ix.DistinctValues() != 0 {
		t.Errorf("Add(nil) changed state: rows=%d distinct=%d", ix.Rows(), ix.DistinctValues())
	}
}

func BenchmarkIndexIncrementalReprofile(b *testing.B) {
	rows, _ := dataset.Phones(20000, 6, 77)
	cut := len(rows) * 95 / 100
	opts := DefaultOptions()
	opts.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := NewIndex(opts)
		ix.Add(rows[:cut])
		ix.Profile()
		b.StartTimer()
		ix.Add(rows[cut:])
		ix.Profile()
	}
}
