// Package cluster implements CLX pattern profiling (paper §4): initial
// clustering of raw strings by their tokenized patterns, constant-token
// discovery, and the agglomerative refinement (Algorithm 1) that builds the
// pattern cluster hierarchy of Figure 6.
package cluster

import (
	"sort"
	"time"

	"clx/internal/intern"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/token"
)

// Cluster is a group of input rows sharing one data pattern.
type Cluster struct {
	// Pattern is the cluster's pattern label.
	Pattern pattern.Pattern
	// Rows are the indices into the input data of the cluster's members,
	// in first-seen order.
	Rows []int
	// Sample is the first member string, for display.
	Sample string
}

// Count returns the number of rows in the cluster.
func (c *Cluster) Count() int { return len(c.Rows) }

// Options configure profiling.
type Options struct {
	// DiscoverConstants enables constant-token discovery (§4.1 "Find
	// Constant Tokens"): within an initial cluster, a base-token position
	// whose value is identical across all members becomes a literal token.
	DiscoverConstants bool
	// MinConstantSupport is the minimum cluster size for constant-token
	// discovery; singleton clusters would otherwise freeze every token.
	MinConstantSupport int
	// MaxConstantLen caps the length of a discovered constant, so that a
	// cluster of two identical long strings does not collapse to a literal.
	MaxConstantLen int
	// MinConstantRatio is the fraction of all input rows that must contain
	// the candidate value before it is frozen. The paper's motivation is
	// corpus-level ("if most entities in a faculty name list contain
	// 'Dr.'"); without this, a name that happens to repeat inside one
	// small cluster would freeze and lose its extractable structure.
	MinConstantRatio float64
	// Workers bounds the goroutine fan-out of the data-parallel profiling
	// stages (tokenization, constant-token statistics and discovery): 0
	// means one worker per CPU, 1 runs serially. Output is byte-identical
	// for every worker count.
	Workers int
}

// DefaultOptions returns the options used by the CLX prototype.
func DefaultOptions() Options {
	return Options{
		DiscoverConstants:  true,
		MinConstantSupport: 3,
		MaxConstantLen:     12,
		MinConstantRatio:   0.3,
	}
}

// Initial tokenizes every string in data and groups equal patterns into
// clusters (§4.1), in first-seen order. With opts.DiscoverConstants set,
// constant base tokens are rewritten to literal tokens afterwards.
//
// Profiling runs on the counted path (counted.go): identical rows are
// tokenized once and patterns are hash-consed into intern ids, with output
// byte-identical to a per-row scan for any worker count.
func Initial(data []string, opts Options) []*Cluster {
	clusters, _, _ := initialCounted(data, opts, intern.NewTable(), nil)
	return clusters
}

// coalesceConstants merges runs of adjacent fixed literal tokens with
// purely alphanumeric content into a single literal, so that e.g. the
// frozen 'D','r' tokens render as 'Dr' (paper §4.1). Punctuation literals
// stay separate: they both preserve the Fig. 3 style patterns and keep the
// constant extractable into base target tokens (a merged 'CPT-' could no
// longer produce a <U>+).
func coalesceConstants(toks []token.Token) []token.Token {
	alnum := func(s string) bool {
		for _, r := range s {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return false
			}
		}
		return true
	}
	mergeable := func(t token.Token) bool {
		return t.IsLiteral() && t.Quant == 1 && alnum(t.Lit)
	}
	out := make([]token.Token, 0, len(toks))
	for i := 0; i < len(toks); {
		if !mergeable(toks[i]) {
			out = append(out, toks[i])
			i++
			continue
		}
		j := i
		lit := ""
		for j < len(toks) && mergeable(toks[j]) {
			lit += toks[j].Lit
			j++
		}
		if j > i+1 {
			out = append(out, token.Lit(lit))
		} else {
			out = append(out, toks[i])
		}
		i = j
	}
	return out
}

// Strategy is one generalization strategy g̃ of §4.2.
type Strategy int

const (
	// QuantToPlus turns every natural-number quantifier into '+'
	// (strategy 1).
	QuantToPlus Strategy = iota + 1
	// LettersToAlpha turns <L> and <U> tokens into <A> (strategy 2).
	LettersToAlpha
	// AllToAlphaNum turns <A>, <D> and the literals '-', ' ' and '_' into
	// <AN> (strategy 3).
	AllToAlphaNum
)

// Generalize returns the parent pattern of p under strategy g (the
// getParent of Algorithm 1). After class rewriting, adjacent tokens of the
// same base class are merged into a single '+' token, as in Figure 6.
func Generalize(p pattern.Pattern, g Strategy) pattern.Pattern {
	in := p.Tokens()
	out := make([]token.Token, 0, len(in))
	for _, t := range in {
		switch g {
		case QuantToPlus:
			if !t.IsLiteral() {
				t = token.Base(t.Class, token.Plus)
			}
		case LettersToAlpha:
			if t.Class == token.Lower || t.Class == token.Upper {
				t = token.Base(token.Alpha, t.Quant)
			}
		case AllToAlphaNum:
			if t.Class == token.Alpha || t.Class == token.Digit ||
				t.Class == token.Lower || t.Class == token.Upper {
				t = token.Base(token.AlphaNum, token.Plus)
			} else if t.IsLiteral() && (t.Lit == "-" || t.Lit == " " || t.Lit == "_") {
				t = token.Base(token.AlphaNum, token.Plus)
			}
		}
		// Merge adjacent base tokens of the same class into a single '+'
		// token (Fig. 6: <U>+<L>+ becomes one <A>+ under strategy 2).
		if n := len(out); n > 0 && !t.IsLiteral() && out[n-1].Class == t.Class {
			out[n-1] = token.Base(t.Class, token.Plus)
			continue
		}
		out = append(out, t)
	}
	return pattern.Of(out...)
}

// Node is one pattern cluster in the hierarchy: a pattern plus the leaf
// clusters it covers and its child nodes from the level below.
type Node struct {
	Pattern  pattern.Pattern
	Children []*Node
	// Level is 0 for leaves (initial clusters) up to 3 for the most
	// generic layer.
	Level int
	// Leaves are the initial clusters covered by this node.
	Leaves []*Cluster
}

// Rows returns the total number of input rows covered by the node.
func (n *Node) Rows() int {
	total := 0
	for _, c := range n.Leaves {
		total += c.Count()
	}
	return total
}

// Hierarchy is the pattern cluster hierarchy of §4.2: Levels[0] holds the
// leaf nodes (initial clusters) and each subsequent level the parent
// patterns produced by one refinement round. Roots are the nodes of the top
// level.
type Hierarchy struct {
	Levels [][]*Node
	// Clusters are the initial clusters, in first-seen order.
	Clusters []*Cluster
	// Data is the profiled input data.
	Data []string
}

// Roots returns the nodes of the most generic level.
func (h *Hierarchy) Roots() []*Node { return h.Levels[len(h.Levels)-1] }

// Profile runs the full two-phase profiling of §4: tokenization-based
// initial clustering followed by three rounds of agglomerative refinement
// with strategies 1–3.
func Profile(data []string, opts Options) *Hierarchy {
	h, _ := ProfileWithStats(data, opts)
	return h
}

// ProfileWithStats is Profile with per-phase timing and size statistics,
// for benchmarking and monitoring callers.
//
// Two execution plans produce the same bytes: the serial counted scan
// (counted.go) and the sharded mergeable index (index.go). The sharded
// plan only pays for itself when real parallelism is available and the
// column is large enough to amortize shard bookkeeping, so it is selected
// by effective parallelism — min(resolved workers, GOMAXPROCS) — never by
// the raw worker request: eight requested workers on a one-CPU machine
// collapse to the serial plan instead of regressing behind it.
func ProfileWithStats(data []string, opts Options) (*Hierarchy, *Stats) {
	if parallel.Effective(opts.Workers) >= 2 && len(data) >= shardedMinRows {
		ix := NewIndex(opts)
		ix.Add(data)
		return ix.ProfileWithStats()
	}
	st := &Stats{}
	tbl := intern.NewTable()
	clusters, _, _ := initialCounted(data, opts, tbl, st)
	leaves := make([]*Node, len(clusters))
	for i, c := range clusters {
		leaves[i] = &Node{Pattern: c.Pattern, Level: 0, Leaves: []*Cluster{c}}
	}
	h := &Hierarchy{Levels: [][]*Node{leaves}, Clusters: clusters, Data: data}
	t0 := time.Now()
	for level, g := range []Strategy{QuantToPlus, LettersToAlpha, AllToAlphaNum} {
		h.Levels = append(h.Levels, refine(h.Levels[level], g, level+1, tbl))
	}
	st.Refine = time.Since(t0)
	return h, st
}

// refine is Algorithm 1: it clusters the patterns of one level into parent
// patterns under strategy g, keeping parents in decreasing order of how many
// children they cover. Parent identity is an interned pattern id, so the
// counted merge compares integers, never rendered pattern strings.
func refine(children []*Node, g Strategy, level int, tbl *intern.Table) []*Node {
	parentOf := make([]intern.PatternID, len(children))
	count := make(map[intern.PatternID]int)
	byID := make(map[intern.PatternID]*Node)
	var order []intern.PatternID
	for i, c := range children {
		pp := Generalize(c.Pattern, g)
		id := tbl.Intern(pp.Tokens())
		parentOf[i] = id
		if count[id] == 0 {
			order = append(order, id)
			byID[id] = &Node{Pattern: pp, Level: level}
		}
		count[id] += len(c.Leaves) // weight by covered leaf patterns
	}
	// Rank parent patterns by coverage, high to low (Alg 1 line 7); ties
	// keep first-seen order for determinism.
	sort.SliceStable(order, func(a, b int) bool {
		return count[order[a]] > count[order[b]]
	})
	for i, c := range children {
		p := byID[parentOf[i]]
		p.Children = append(p.Children, c)
		p.Leaves = append(p.Leaves, c.Leaves...)
	}
	out := make([]*Node, len(order))
	for i, id := range order {
		out[i] = byID[id]
	}
	return out
}

// FindLevel returns the hierarchy node with the given pattern at the given
// level, or nil.
func (h *Hierarchy) FindLevel(level int, p pattern.Pattern) *Node {
	if level < 0 || level >= len(h.Levels) {
		return nil
	}
	for _, n := range h.Levels[level] {
		if n.Pattern.Equal(p) {
			return n
		}
	}
	return nil
}

// Find returns the first node matching p at any level, searching leaves
// first.
func (h *Hierarchy) Find(p pattern.Pattern) *Node {
	for level := range h.Levels {
		if n := h.FindLevel(level, p); n != nil {
			return n
		}
	}
	return nil
}
