// Package cluster implements CLX pattern profiling (paper §4): initial
// clustering of raw strings by their tokenized patterns, constant-token
// discovery, and the agglomerative refinement (Algorithm 1) that builds the
// pattern cluster hierarchy of Figure 6.
package cluster

import (
	"sort"

	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/token"
)

// Cluster is a group of input rows sharing one data pattern.
type Cluster struct {
	// Pattern is the cluster's pattern label.
	Pattern pattern.Pattern
	// Rows are the indices into the input data of the cluster's members,
	// in first-seen order.
	Rows []int
	// Sample is the first member string, for display.
	Sample string
}

// Count returns the number of rows in the cluster.
func (c *Cluster) Count() int { return len(c.Rows) }

// Options configure profiling.
type Options struct {
	// DiscoverConstants enables constant-token discovery (§4.1 "Find
	// Constant Tokens"): within an initial cluster, a base-token position
	// whose value is identical across all members becomes a literal token.
	DiscoverConstants bool
	// MinConstantSupport is the minimum cluster size for constant-token
	// discovery; singleton clusters would otherwise freeze every token.
	MinConstantSupport int
	// MaxConstantLen caps the length of a discovered constant, so that a
	// cluster of two identical long strings does not collapse to a literal.
	MaxConstantLen int
	// MinConstantRatio is the fraction of all input rows that must contain
	// the candidate value before it is frozen. The paper's motivation is
	// corpus-level ("if most entities in a faculty name list contain
	// 'Dr.'"); without this, a name that happens to repeat inside one
	// small cluster would freeze and lose its extractable structure.
	MinConstantRatio float64
	// Workers bounds the goroutine fan-out of the data-parallel profiling
	// stages (tokenization, constant-token statistics and discovery): 0
	// means one worker per CPU, 1 runs serially. Output is byte-identical
	// for every worker count.
	Workers int
}

// DefaultOptions returns the options used by the CLX prototype.
func DefaultOptions() Options {
	return Options{
		DiscoverConstants:  true,
		MinConstantSupport: 3,
		MaxConstantLen:     12,
		MinConstantRatio:   0.3,
	}
}

// Initial tokenizes every string in data and groups equal patterns into
// clusters (§4.1), in first-seen order. With opts.DiscoverConstants set,
// constant base tokens are rewritten to literal tokens afterwards.
func Initial(data []string, opts Options) []*Cluster {
	// Tokenization is the per-row hot loop and rows are independent: shard
	// it across workers. Keys are derived in the same pass — rendering the
	// pattern string is itself a per-row cost worth parallelizing.
	pats := make([]pattern.Pattern, len(data))
	keys := make([]string, len(data))
	parallel.For(opts.Workers, len(data), func(i int) {
		pats[i] = pattern.FromString(data[i])
		keys[i] = pats[i].Key()
	})
	// Grouping stays a serial left-to-right scan: first-seen cluster order
	// is part of the user-facing contract.
	byKey := make(map[string]*Cluster)
	var order []*Cluster
	for i, s := range data {
		c, ok := byKey[keys[i]]
		if !ok {
			c = &Cluster{Pattern: pats[i], Sample: s}
			byKey[keys[i]] = c
			order = append(order, c)
		}
		c.Rows = append(c.Rows, i)
	}
	if opts.DiscoverConstants {
		discoverConstants(order, data, pats, opts)
		// Constant substitution can only refine labels, never merge
		// clusters, so the partition is unchanged.
	}
	return order
}

// discoverConstants rewrites base tokens whose value is constant across all
// cluster members into literal tokens, following §4.1 (statistics over
// tokenized strings). Positions and structure are preserved. pats carries
// the per-row patterns Initial already derived, so no row is re-tokenized.
func discoverConstants(clusters []*Cluster, data []string, pats []pattern.Pattern, opts Options) {
	// Corpus statistics: in how many rows does each base-token value occur?
	// Counts are additive across rows, so each worker accumulates a shard-
	// local map and the shards merge afterwards; integer addition commutes,
	// making the merged counts independent of shard boundaries.
	chunks := parallel.Chunks(opts.Workers, len(data))
	partials := make([]map[string]int, len(chunks))
	parallel.For(opts.Workers, len(chunks), func(ci int) {
		local := make(map[string]int)
		for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
			s := data[i]
			spans, ok := pats[i].Match(s)
			if !ok {
				continue
			}
			seen := make(map[string]bool)
			for ti, t := range pats[i].Tokens() {
				if t.IsLiteral() {
					continue
				}
				seen[s[spans[ti].Start:spans[ti].End]] = true
			}
			for v := range seen {
				local[v]++
			}
		}
		partials[ci] = local
	})
	rowsWith := make(map[string]int)
	for _, local := range partials {
		for v, n := range local {
			rowsWith[v] += n
		}
	}
	frequent := func(v string) bool {
		return float64(rowsWith[v]) >= opts.MinConstantRatio*float64(len(data))
	}
	// Per-cluster discovery writes only its own cluster's pattern and reads
	// the now-frozen rowsWith map — independent per cluster.
	parallel.For(opts.Workers, len(clusters), func(i int) {
		discoverClusterConstants(clusters[i], data, frequent, opts)
	})
}

// discoverClusterConstants freezes the constant base tokens of one cluster.
func discoverClusterConstants(c *Cluster, data []string, frequent func(string) bool, opts Options) {
	if c.Count() < opts.MinConstantSupport {
		return
	}
	toks := c.Pattern.Tokens()
	// Token spans are identical across members because every member
	// has the same fixed-quantifier pattern.
	spans, ok := c.Pattern.Match(data[c.Rows[0]])
	if !ok {
		return
	}
	newToks := make([]token.Token, len(toks))
	copy(newToks, toks)
	changed := false
	for ti, t := range toks {
		if t.IsLiteral() {
			continue
		}
		if l, fixed := t.FixedLen(); !fixed || l > opts.MaxConstantLen {
			continue
		}
		val := data[c.Rows[0]][spans[ti].Start:spans[ti].End]
		constant := true
		for _, ri := range c.Rows[1:] {
			if data[ri][spans[ti].Start:spans[ti].End] != val {
				constant = false
				break
			}
		}
		if constant && frequent(val) {
			newToks[ti] = token.Lit(val)
			changed = true
		}
	}
	if changed {
		c.Pattern = pattern.Of(coalesceConstants(newToks)...)
	}
}

// coalesceConstants merges runs of adjacent fixed literal tokens with
// purely alphanumeric content into a single literal, so that e.g. the
// frozen 'D','r' tokens render as 'Dr' (paper §4.1). Punctuation literals
// stay separate: they both preserve the Fig. 3 style patterns and keep the
// constant extractable into base target tokens (a merged 'CPT-' could no
// longer produce a <U>+).
func coalesceConstants(toks []token.Token) []token.Token {
	alnum := func(s string) bool {
		for _, r := range s {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return false
			}
		}
		return true
	}
	mergeable := func(t token.Token) bool {
		return t.IsLiteral() && t.Quant == 1 && alnum(t.Lit)
	}
	out := make([]token.Token, 0, len(toks))
	for i := 0; i < len(toks); {
		if !mergeable(toks[i]) {
			out = append(out, toks[i])
			i++
			continue
		}
		j := i
		lit := ""
		for j < len(toks) && mergeable(toks[j]) {
			lit += toks[j].Lit
			j++
		}
		if j > i+1 {
			out = append(out, token.Lit(lit))
		} else {
			out = append(out, toks[i])
		}
		i = j
	}
	return out
}

// Strategy is one generalization strategy g̃ of §4.2.
type Strategy int

const (
	// QuantToPlus turns every natural-number quantifier into '+'
	// (strategy 1).
	QuantToPlus Strategy = iota + 1
	// LettersToAlpha turns <L> and <U> tokens into <A> (strategy 2).
	LettersToAlpha
	// AllToAlphaNum turns <A>, <D> and the literals '-', ' ' and '_' into
	// <AN> (strategy 3).
	AllToAlphaNum
)

// Generalize returns the parent pattern of p under strategy g (the
// getParent of Algorithm 1). After class rewriting, adjacent tokens of the
// same base class are merged into a single '+' token, as in Figure 6.
func Generalize(p pattern.Pattern, g Strategy) pattern.Pattern {
	in := p.Tokens()
	out := make([]token.Token, 0, len(in))
	for _, t := range in {
		switch g {
		case QuantToPlus:
			if !t.IsLiteral() {
				t = token.Base(t.Class, token.Plus)
			}
		case LettersToAlpha:
			if t.Class == token.Lower || t.Class == token.Upper {
				t = token.Base(token.Alpha, t.Quant)
			}
		case AllToAlphaNum:
			if t.Class == token.Alpha || t.Class == token.Digit ||
				t.Class == token.Lower || t.Class == token.Upper {
				t = token.Base(token.AlphaNum, token.Plus)
			} else if t.IsLiteral() && (t.Lit == "-" || t.Lit == " " || t.Lit == "_") {
				t = token.Base(token.AlphaNum, token.Plus)
			}
		}
		// Merge adjacent base tokens of the same class into a single '+'
		// token (Fig. 6: <U>+<L>+ becomes one <A>+ under strategy 2).
		if n := len(out); n > 0 && !t.IsLiteral() && out[n-1].Class == t.Class {
			out[n-1] = token.Base(t.Class, token.Plus)
			continue
		}
		out = append(out, t)
	}
	return pattern.Of(out...)
}

// Node is one pattern cluster in the hierarchy: a pattern plus the leaf
// clusters it covers and its child nodes from the level below.
type Node struct {
	Pattern  pattern.Pattern
	Children []*Node
	// Level is 0 for leaves (initial clusters) up to 3 for the most
	// generic layer.
	Level int
	// Leaves are the initial clusters covered by this node.
	Leaves []*Cluster
}

// Rows returns the total number of input rows covered by the node.
func (n *Node) Rows() int {
	total := 0
	for _, c := range n.Leaves {
		total += c.Count()
	}
	return total
}

// Hierarchy is the pattern cluster hierarchy of §4.2: Levels[0] holds the
// leaf nodes (initial clusters) and each subsequent level the parent
// patterns produced by one refinement round. Roots are the nodes of the top
// level.
type Hierarchy struct {
	Levels [][]*Node
	// Clusters are the initial clusters, in first-seen order.
	Clusters []*Cluster
	// Data is the profiled input data.
	Data []string
}

// Roots returns the nodes of the most generic level.
func (h *Hierarchy) Roots() []*Node { return h.Levels[len(h.Levels)-1] }

// Profile runs the full two-phase profiling of §4: tokenization-based
// initial clustering followed by three rounds of agglomerative refinement
// with strategies 1–3.
func Profile(data []string, opts Options) *Hierarchy {
	clusters := Initial(data, opts)
	leaves := make([]*Node, len(clusters))
	for i, c := range clusters {
		leaves[i] = &Node{Pattern: c.Pattern, Level: 0, Leaves: []*Cluster{c}}
	}
	h := &Hierarchy{Levels: [][]*Node{leaves}, Clusters: clusters, Data: data}
	for level, g := range []Strategy{QuantToPlus, LettersToAlpha, AllToAlphaNum} {
		h.Levels = append(h.Levels, refine(h.Levels[level], g, level+1))
	}
	return h
}

// refine is Algorithm 1: it clusters the patterns of one level into parent
// patterns under strategy g, keeping parents in decreasing order of how many
// children they cover.
func refine(children []*Node, g Strategy, level int) []*Node {
	parentOf := make([]pattern.Pattern, len(children))
	count := make(map[string]int)
	byKey := make(map[string]*Node)
	var order []string
	for i, c := range children {
		pp := Generalize(c.Pattern, g)
		parentOf[i] = pp
		k := pp.Key()
		if count[k] == 0 {
			order = append(order, k)
			byKey[k] = &Node{Pattern: pp, Level: level}
		}
		count[k] += len(c.Leaves) // weight by covered leaf patterns
	}
	// Rank parent patterns by coverage, high to low (Alg 1 line 7); ties
	// keep first-seen order for determinism.
	sort.SliceStable(order, func(a, b int) bool {
		return count[order[a]] > count[order[b]]
	})
	for i, c := range children {
		p := byKey[parentOf[i].Key()]
		p.Children = append(p.Children, c)
		p.Leaves = append(p.Leaves, c.Leaves...)
	}
	out := make([]*Node, len(order))
	for i, k := range order {
		out[i] = byKey[k]
	}
	return out
}

// FindLevel returns the hierarchy node with the given pattern at the given
// level, or nil.
func (h *Hierarchy) FindLevel(level int, p pattern.Pattern) *Node {
	if level < 0 || level >= len(h.Levels) {
		return nil
	}
	for _, n := range h.Levels[level] {
		if n.Pattern.Equal(p) {
			return n
		}
	}
	return nil
}

// Find returns the first node matching p at any level, searching leaves
// first.
func (h *Hierarchy) Find(p pattern.Pattern) *Node {
	for level := range h.Levels {
		if n := h.FindLevel(level, p); n != nil {
			return n
		}
	}
	return nil
}
