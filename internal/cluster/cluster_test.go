package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clx/internal/pattern"
)

var phones = []string{
	"(734) 645-8397",
	"(734)586-7252",
	"734-422-8073",
	"734.236.3466",
	"(313) 263-1192",
	"313-263-1192",
}

func TestInitialClustering(t *testing.T) {
	cs := Initial(phones, Options{})
	wantPatterns := []string{
		"'('<D>3')'' '<D>3'-'<D>4",
		"'('<D>3')'<D>3'-'<D>4",
		"<D>3'-'<D>3'-'<D>4",
		"<D>3'.'<D>3'.'<D>4",
	}
	if len(cs) != len(wantPatterns) {
		t.Fatalf("got %d clusters, want %d", len(cs), len(wantPatterns))
	}
	for i, want := range wantPatterns {
		if got := cs[i].Pattern.String(); got != want {
			t.Errorf("cluster %d pattern = %q, want %q", i, got, want)
		}
	}
	if got := cs[0].Rows; !reflect.DeepEqual(got, []int{0, 4}) {
		t.Errorf("cluster 0 rows = %v, want [0 4]", got)
	}
	if got := cs[2].Rows; !reflect.DeepEqual(got, []int{2, 5}) {
		t.Errorf("cluster 2 rows = %v, want [2 5]", got)
	}
	if cs[0].Sample != "(734) 645-8397" {
		t.Errorf("cluster 0 sample = %q", cs[0].Sample)
	}
}

// Property: clusters partition the dataset — every row in exactly one
// cluster, and every row matches its cluster's pattern.
func TestInitialPartition(t *testing.T) {
	gen := func(v []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(40)
		data := make([]string, n)
		for i := range data {
			m := r.Intn(12)
			b := make([]byte, m)
			const alphabet = "ab01X .-(@"
			for j := range b {
				b[j] = alphabet[r.Intn(len(alphabet))]
			}
			data[i] = string(b)
		}
		v[0] = reflect.ValueOf(data)
	}
	f := func(data []string) bool {
		for _, opts := range []Options{{}, DefaultOptions()} {
			cs := Initial(data, opts)
			seen := make(map[int]bool)
			for _, c := range cs {
				for _, ri := range c.Rows {
					if seen[ri] {
						return false
					}
					seen[ri] = true
					if !c.Pattern.Matches(data[ri]) {
						return false
					}
				}
			}
			if len(seen) != len(data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Values: gen}); err != nil {
		t.Error(err)
	}
}

func TestDiscoverConstants(t *testing.T) {
	data := []string{
		"Dr. Alice", "Dr. Bobby", "Dr. Carol",
	}
	cs := Initial(data, DefaultOptions())
	if len(cs) != 1 {
		t.Fatalf("got %d clusters, want 1", len(cs))
	}
	// <U><L>'.'' '<U><L>4 with constant "Dr" discovered and coalesced; the
	// '.' and ' ' literals stay separate so they remain plain punctuation
	// tokens.
	got := cs[0].Pattern.String()
	want := "'Dr''.'' '<U><L>4"
	if got != want {
		t.Errorf("constant pattern = %q, want %q", got, want)
	}
	for _, s := range data {
		if !cs[0].Pattern.Matches(s) {
			t.Errorf("constant pattern does not match %q", s)
		}
	}
}

func TestDiscoverConstantsMinSupport(t *testing.T) {
	data := []string{"Dr. Alice", "Dr. Bobby"}
	cs := Initial(data, DefaultOptions()) // support 3 > 2 members
	if got := cs[0].Pattern.String(); got != "<U><L>'.'' '<U><L>4" {
		t.Errorf("pattern = %q, constants should not be discovered below MinConstantSupport", got)
	}
}

func TestDiscoverConstantsMaxLen(t *testing.T) {
	opts := DefaultOptions()
	data := []string{"abcdefghijklmn", "abcdefghijklmn", "abcdefghijklmn"}
	cs := Initial(data, opts)
	if got := cs[0].Pattern.String(); got != "<L>14" {
		t.Errorf("pattern = %q, long constants should not be frozen", got)
	}
}

func TestGeneralizeStrategies(t *testing.T) {
	tests := []struct {
		in   string
		g    Strategy
		want string
	}{
		// Figure 6 chain.
		{"<U><L>2<D>3'@'<L>5'.'<L>3", QuantToPlus, "<U>+<L>+<D>+'@'<L>+'.'<L>+"},
		{"<U>+<L>+<D>+'@'<L>+'.'<L>+", LettersToAlpha, "<A>+<D>+'@'<A>+'.'<A>+"},
		{"<A>+<D>+'@'<A>+'.'<A>+", AllToAlphaNum, "<AN>+'@'<AN>+'.'<AN>+"},
		// Literal '-' and ' ' fold into <AN>.
		{"<A>+'-'<D>+", AllToAlphaNum, "<AN>+"},
		{"<A>+' '<A>+", AllToAlphaNum, "<AN>+"},
		{"<A>+'.'<A>+", AllToAlphaNum, "<AN>+'.'<AN>+"},
		// Strategy 1 leaves literals alone.
		{"'('<D>3')'", QuantToPlus, "'('<D>+')'"},
	}
	for _, tc := range tests {
		got := Generalize(pattern.MustParse(tc.in), tc.g).String()
		if got != tc.want {
			t.Errorf("Generalize(%q, %d) = %q, want %q", tc.in, tc.g, got, tc.want)
		}
	}
}

// Property: a generalized pattern matches everything its child matched.
func TestGeneralizeSubsumes(t *testing.T) {
	samples := []string{
		"Bob123@gmail.com", "(734) 645-8397", "CPT-00350", "Dr. Eran Yahav",
		"a-b c_d", "X9",
	}
	for _, s := range samples {
		p := pattern.FromString(s)
		for _, g := range []Strategy{QuantToPlus, LettersToAlpha, AllToAlphaNum} {
			p = Generalize(p, g)
			if !p.Matches(s) {
				t.Errorf("after strategy %d, %q no longer matches %q", g, p, s)
			}
		}
	}
}

func TestProfileHierarchy(t *testing.T) {
	h := Profile(phones, DefaultOptions())
	if len(h.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(h.Levels))
	}
	if len(h.Levels[0]) != 4 {
		t.Errorf("leaf nodes = %d, want 4", len(h.Levels[0]))
	}
	// Level 1: quantifiers -> '+' keeps 4 distinct structures.
	if len(h.Levels[1]) != 4 {
		t.Errorf("level-1 nodes = %d, want 4", len(h.Levels[1]))
	}
	// Level 3: '-' folds into <AN>: "(ddd) ddd-dddd" -> '('<AN>+')'<AN>+,
	// "(ddd)ddd-dddd" -> same, "ddd-ddd-dddd" -> <AN>+,
	// "ddd.ddd.dddd" -> <AN>+'.'<AN>+'.'<AN>+.
	roots := h.Roots()
	if len(roots) != 3 {
		t.Fatalf("roots = %d (%v), want 3", len(roots), roots)
	}
	// Root ranking: the '(' family covers 2 leaf patterns and comes first.
	if got := roots[0].Pattern.String(); got != "'('<AN>+')'<AN>+" {
		t.Errorf("top root = %q, want '('<AN>+')'<AN>+", got)
	}
	if len(roots[0].Children) != 2 {
		t.Errorf("top root children = %d, want 2", len(roots[0].Children))
	}
	// Every root's leaves' rows sum to the dataset size across roots.
	total := 0
	for _, r := range roots {
		total += r.Rows()
	}
	if total != len(phones) {
		t.Errorf("root coverage = %d rows, want %d", total, len(phones))
	}
}

// Property: every parent node's pattern generalizes (token-wise or
// semantically) each of its children's patterns — checked semantically via
// member strings.
func TestHierarchyParentCoversChildren(t *testing.T) {
	data := append([]string{}, phones...)
	data = append(data, "Bob123@gmail.com", "alice@web.de", "N/A", "X-1", "12345")
	h := Profile(data, DefaultOptions())
	for _, level := range h.Levels[1:] {
		for _, n := range level {
			for _, leaf := range n.Leaves {
				for _, ri := range leaf.Rows {
					if !n.Pattern.Matches(data[ri]) {
						t.Errorf("level-%d pattern %q does not match covered row %q",
							n.Level, n.Pattern, data[ri])
					}
				}
			}
		}
	}
}

// Property: each level covers all leaves exactly once.
func TestHierarchyLevelsPartitionLeaves(t *testing.T) {
	data := append([]string{}, phones...)
	data = append(data, "a@b.c", "1-2-3", "hello world")
	h := Profile(data, DefaultOptions())
	for li, level := range h.Levels {
		seen := make(map[*Cluster]bool)
		for _, n := range level {
			for _, leaf := range n.Leaves {
				if seen[leaf] {
					t.Errorf("level %d: leaf %q covered twice", li, leaf.Pattern)
				}
				seen[leaf] = true
			}
		}
		if len(seen) != len(h.Clusters) {
			t.Errorf("level %d covers %d leaves, want %d", li, len(seen), len(h.Clusters))
		}
	}
}

func TestFind(t *testing.T) {
	h := Profile(phones, DefaultOptions())
	p := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	n := h.Find(p)
	if n == nil || n.Level != 0 {
		t.Fatalf("Find(%q) = %v", p, n)
	}
	if h.Find(pattern.MustParse("'x'")) != nil {
		t.Error("Find of absent pattern returned a node")
	}
	if h.FindLevel(99, p) != nil {
		t.Error("FindLevel out of range returned a node")
	}
}

func TestEmptyData(t *testing.T) {
	h := Profile(nil, DefaultOptions())
	if len(h.Clusters) != 0 || len(h.Roots()) != 0 {
		t.Error("empty data should produce empty hierarchy")
	}
}

func TestEmptyStringsCluster(t *testing.T) {
	h := Profile([]string{"", "", "a"}, DefaultOptions())
	if len(h.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2 (empty pattern + <L>)", len(h.Clusters))
	}
	if !h.Clusters[0].Pattern.IsEmpty() {
		t.Error("first cluster should be the empty pattern")
	}
}
