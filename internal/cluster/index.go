// The sharded, mergeable, incremental distinct-value index behind Profile.
//
// counted.go collapses a column into its distinct values with one serial
// left-to-right scan; that scan — and the constant-frequency statistics
// built over it — is what kept profiling flat as workers grew. Index
// partitions the distinct-value space by a hash of the value bytes into N
// independent shards (the same 16-way design as internal/intern), so
// deduplication, tokenization, pattern interning, row counting, and the
// count-weighted constant-frequency map all run shard-parallel and merge
// without coordination:
//
//   - per-value row counts live in exactly one shard, so the merged
//     multiset is a concatenation, never a reconciliation;
//   - the constant-frequency map is integer-valued and increments commute,
//     so per-shard maps never need merging at all — a frequency query sums
//     one lookup per shard;
//   - pattern identity is an intern.PatternID, already stable under
//     concurrent interning.
//
// The one thing sharding destroys is first-seen order, which is part of
// the user contract (cluster order, samples, row lists). Profile restores
// it with a serial walk over per-row shard/slot references — an array
// scan, not a re-hash — and that walk is also what makes the index
// *incremental*: rows already folded into the cached grouping are never
// revisited, so Add(rows); Profile() after an append costs O(new rows)
// plus the (sub-millisecond) refinement rounds, not a full re-profile.
// Output is byte-identical to the serial counted path — and therefore to
// referenceProfile — for every shard count, worker count, and append
// schedule (see index_reference_test.go).
package cluster

import (
	"time"

	"clx/internal/intern"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/token"
	"clx/internal/tokenize"
)

const (
	// defaultIndexShards mirrors intern's fan-out: enough shards that
	// profile workers rarely collide, few enough that per-shard maps stay
	// cache-friendly.
	defaultIndexShards = 16
	// shardedMinRows is the column size under which ProfileWithStats keeps
	// the serial counted path: below it, shard bookkeeping (per-row hashes,
	// per-chunk bucket lists, goroutine handoff) costs more than the serial
	// scan it replaces. See TestProfileAutoCollapse.
	shardedMinRows = 4096
)

// slotRef names one distinct value: the shard owning it and its slot there.
type slotRef struct {
	shard, slot int32
}

// indexShard is one partition of the distinct-value space. All fields are
// owned by a single worker during Add (rows are routed to exactly one
// shard) and read-only during Profile.
type indexShard struct {
	// buckets maps a value hash to the first slot carrying it; further
	// slots with the same hash chain through next (collisions resolved by
	// string comparison). Value and chain are pointer-free, so the dedup
	// structures are invisible to the garbage collector and inserting a
	// distinct value allocates nothing beyond amortized slice growth.
	buckets map[uint64]int32
	next    []int32
	// values, counts, ids are the shard's distinct values in local
	// insertion order, their row counts, and their interned patterns.
	values []string
	counts []int
	ids    []intern.PatternID
	// groupOf caches, per slot, the global cluster index assigned by the
	// serial first-seen walk (-1 until the slot has been walked).
	groupOf []int32
	// cfreq is the count-weighted constant-frequency map over this shard's
	// values: cfreq[v] = rows whose value contains candidate substring v.
	// Nil when constant discovery is off.
	cfreq map[string]int
	// stamp marks, per slot, the last Add batch (epoch) that touched it —
	// an O(1) array probe instead of a per-row map op when batching the
	// cfreq updates of one append.
	stamp []int32
	epoch int32
}

// group is the cached grouping state of one cluster: its pattern id, its
// member distinct values in first-seen order, and its member rows in
// ascending row order. Grown incrementally; never shrinks.
type group struct {
	id      intern.PatternID
	members []slotRef
	rows    []int
}

// Index is a sharded, mergeable, incrementally-updatable profile of one
// growing column. Add appends rows (safe to call repeatedly); Profile
// materializes the same hierarchy cluster.Profile would produce on the
// concatenation of every Add so far, reusing all per-shard state so a
// small append re-profiles in time proportional to the appended rows.
//
// An Index is not safe for concurrent use by multiple goroutines; it is
// the session-scoped state behind Session.AppendAndReprofile.
type Index struct {
	opts   Options
	mask   uint64
	table  *intern.Table
	shards []indexShard
	data   []string
	rowRef []slotRef

	// Cached grouping state: rows [0, grouped) are folded in.
	grouped   int
	clusterOf map[intern.PatternID]int32
	groups    []*group

	// Add timings pending attribution to the next ProfileWithStats.
	pendIndex, pendTokenize time.Duration
}

// NewIndex returns an empty index with the default 16-way sharding.
func NewIndex(opts Options) *Index { return NewIndexShards(opts, defaultIndexShards) }

// NewIndexShards is NewIndex with an explicit shard count, which must be a
// power of two (the differential suite pins output equality across 1, 4,
// and 16 shards; production callers want the default).
func NewIndexShards(opts Options, shards int) *Index {
	if shards <= 0 || shards&(shards-1) != 0 {
		panic("cluster: shard count must be a power of two")
	}
	ix := &Index{
		opts:      opts,
		mask:      uint64(shards - 1),
		table:     intern.NewTable(),
		shards:    make([]indexShard, shards),
		clusterOf: make(map[intern.PatternID]int32, 64),
	}
	for s := range ix.shards {
		ix.shards[s].buckets = make(map[uint64]int32)
		if opts.DiscoverConstants {
			ix.shards[s].cfreq = make(map[string]int)
		}
	}
	return ix
}

// Rows returns the number of rows added so far.
func (ix *Index) Rows() int { return len(ix.data) }

// Data returns the concatenation of every Add, in order. The slice is the
// index's backing store; callers must not mutate it.
func (ix *Index) Data() []string { return ix.data }

// DistinctValues returns the merged distinct-value count across shards.
func (ix *Index) DistinctValues() int {
	n := 0
	for s := range ix.shards {
		n += len(ix.shards[s].values)
	}
	return n
}

// DistinctCounts returns the merged counted multiset: every distinct value
// with the number of rows carrying it. It exists for conservation checks
// (fuzzing, stats endpoints); the hot paths never materialize this merge.
func (ix *Index) DistinctCounts() map[string]int {
	out := make(map[string]int, ix.DistinctValues())
	for s := range ix.shards {
		sh := &ix.shards[s]
		for d, v := range sh.values {
			out[v] += sh.counts[d]
		}
	}
	return out
}

// Add appends rows to the indexed column. Work is two parallel phases:
// route (hash every row to its shard) and absorb (each shard deduplicates
// its rows, tokenizes and interns values it has never seen, and bumps row
// counts and constant-frequency statistics). A value that already exists
// costs one hash, one bucket probe, and one count increment — O(new
// distinct values) of tokenize/intern work per append, not O(rows).
func (ix *Index) Add(rows []string) {
	if len(rows) == 0 {
		return
	}
	t0 := time.Now()
	base := len(ix.data)
	ix.data = append(ix.data, rows...)
	ix.rowRef = append(ix.rowRef, make([]slotRef, len(rows))...)

	workers := parallel.Effective(ix.opts.Workers)
	nshards := len(ix.shards)

	// Route: hash each appended row and bucket it per (chunk, shard).
	// Chunk-major lists let every shard consume its rows in global row
	// order without any cross-worker handoff — though nothing downstream
	// depends on that order; first-seen semantics come from the walk in
	// Profile, never from shard-local insertion order.
	chunks := parallel.Chunks(workers, len(rows))
	hashes := make([]uint64, len(rows))
	routed := make([][][]int32, len(chunks))
	parallel.For(workers, len(chunks), func(ci int) {
		lists := make([][]int32, nshards)
		for i := chunks[ci][0]; i < chunks[ci][1]; i++ {
			h := intern.HashString(rows[i])
			hashes[i] = h
			s := h & ix.mask
			lists[s] = append(lists[s], int32(i))
		}
		routed[ci] = lists
	})
	t1 := time.Now()

	// Absorb: shards are independent, so this is a map over shards with no
	// locks except inside the intern table (which is itself sharded, and
	// fronted by a per-worker memo). The constant-frequency update is
	// batched per distinct slot — each slot touched by this append
	// contributes its candidate substrings once, weighted by how many
	// appended rows carried it — so duplicate-heavy appends never re-walk a
	// value's tokens per row. Touched slots are tracked with an epoch stamp
	// per slot, so the per-row cost is one array probe, not a map op.
	parallel.For(workers, nshards, func(s int) {
		sh := &ix.shards[s]
		buf := make([]token.Token, 0, 32)
		loc := intern.NewLocal(ix.table)
		sh.epoch++
		var touched []int32
		var prevCounts []int
		for ci := range routed {
			for _, ri := range routed[ci][s] {
				i := int(ri)
				h := hashes[i]
				v := ix.data[base+i]
				head, ok := sh.buckets[h]
				slot := int32(-1)
				if ok {
					for cand := head; cand >= 0; cand = sh.next[cand] {
						if sh.values[cand] == v {
							slot = cand
							break
						}
					}
				}
				if slot < 0 {
					slot = int32(len(sh.values))
					if !ok {
						head = -1
					}
					sh.next = append(sh.next, head)
					sh.buckets[h] = slot
					sh.values = append(sh.values, v)
					sh.counts = append(sh.counts, 0)
					sh.groupOf = append(sh.groupOf, -1)
					sh.stamp = append(sh.stamp, 0)
					buf = tokenize.AppendTokenize(buf[:0], v)
					sh.ids = append(sh.ids, loc.Intern(buf))
				}
				if sh.cfreq != nil && sh.stamp[slot] != sh.epoch {
					sh.stamp[slot] = sh.epoch
					touched = append(touched, slot)
					prevCounts = append(prevCounts, sh.counts[slot])
				}
				sh.counts[slot]++
				ix.rowRef[base+i] = slotRef{shard: int32(s), slot: slot}
			}
		}
		var vals []string
		for k, slot := range touched {
			vals = ix.constantCandidates(vals[:0], sh.values[slot], sh.ids[slot])
			delta := sh.counts[slot] - prevCounts[k]
			for _, cv := range vals {
				sh.cfreq[cv] += delta
			}
		}
	})
	ix.pendIndex += t1.Sub(t0)
	ix.pendTokenize += time.Since(t1)
}

// constantCandidates appends the distinct candidate substrings of value s
// under pattern id — the values of non-literal tokens no longer than
// MaxConstantLen, exactly the substrings discoverConstants counts on the
// serial path. Initial patterns carry only fixed quantifiers, so spans are
// a cumulative FixedLen walk.
func (ix *Index) constantCandidates(vals []string, s string, id intern.PatternID) []string {
	off := 0
	for _, t := range ix.table.Tokens(id) {
		n, _ := t.FixedLen()
		if !t.IsLiteral() && n <= ix.opts.MaxConstantLen {
			v := s[off : off+n]
			dup := false
			for _, u := range vals {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				vals = append(vals, v)
			}
		}
		off += n
	}
	return vals
}

// frequent reports whether candidate v clears the corpus-frequency bar —
// the mergeable-map payoff: one integer lookup per shard, summed, instead
// of a merged map built per profile.
func (ix *Index) frequent(v string) bool {
	n := 0
	for s := range ix.shards {
		n += ix.shards[s].cfreq[v]
	}
	return float64(n) >= ix.opts.MinConstantRatio*float64(len(ix.data))
}

// walk folds rows [grouped, len(data)) into the cached grouping. The scan
// is serial and in global row order — the first row carrying a pattern
// still defines its cluster's position and sample, exactly as the serial
// counted path's first-seen scan does — but it touches only appended rows:
// per row, one array read and one int append; per *new* distinct value,
// one map probe on its pattern id.
func (ix *Index) walk() {
	for i := ix.grouped; i < len(ix.data); i++ {
		r := ix.rowRef[i]
		sh := &ix.shards[r.shard]
		ci := sh.groupOf[r.slot]
		if ci < 0 {
			id := sh.ids[r.slot]
			gi, ok := ix.clusterOf[id]
			if !ok {
				gi = int32(len(ix.groups))
				ix.clusterOf[id] = gi
				ix.groups = append(ix.groups, &group{id: id})
			}
			ci = gi
			sh.groupOf[r.slot] = ci
			g := ix.groups[ci]
			g.members = append(g.members, r)
		}
		g := ix.groups[ci]
		g.rows = append(g.rows, i)
	}
	ix.grouped = len(ix.data)
}

// Profile materializes the pattern hierarchy of everything added so far.
func (ix *Index) Profile() *Hierarchy {
	h, _ := ix.ProfileWithStats()
	return h
}

// ProfileWithStats is Profile with the per-phase timing breakdown. Index
// and Tokenize report the routing and absorption cost of the Adds since
// the previous profile (zero for a pure re-profile), so an incremental
// re-profile's stats show only the work the append actually caused.
func (ix *Index) ProfileWithStats() (*Hierarchy, *Stats) {
	st := &Stats{
		Sharded:  true,
		Index:    ix.pendIndex,
		Tokenize: ix.pendTokenize,
	}
	ix.pendIndex, ix.pendTokenize = 0, 0
	t0 := time.Now()
	ix.walk()

	// Materialize fresh clusters from the cached grouping: patterns start
	// from the interned base tokens every time (constant discovery below
	// may specialize them, and an append can break a previously-discovered
	// constant), and row lists are copied so hierarchies returned earlier
	// stay immutable as the index grows.
	workers := parallel.Effective(ix.opts.Workers)
	clusters := make([]*Cluster, len(ix.groups))
	parallel.For(workers, len(ix.groups), func(i int) {
		g := ix.groups[i]
		first := g.members[0]
		rows := make([]int, len(g.rows))
		copy(rows, g.rows)
		clusters[i] = &Cluster{
			Pattern: pattern.Of(ix.table.Tokens(g.id)...),
			Rows:    rows,
			Sample:  ix.shards[first.shard].values[first.slot],
		}
	})
	t1 := time.Now()
	if ix.opts.DiscoverConstants {
		parallel.For(workers, len(clusters), func(i int) {
			ix.freezeConstants(clusters[i], ix.groups[i])
		})
	}
	t2 := time.Now()

	st.Rows = len(ix.data)
	st.DistinctValues = ix.DistinctValues()
	st.LeafPatterns = len(clusters)
	st.Group = t1.Sub(t0)
	st.Constants = t2.Sub(t1)

	leaves := make([]*Node, len(clusters))
	for i, c := range clusters {
		leaves[i] = &Node{Pattern: c.Pattern, Level: 0, Leaves: []*Cluster{c}}
	}
	h := &Hierarchy{Levels: [][]*Node{leaves}, Clusters: clusters, Data: ix.data}
	for level, g := range []Strategy{QuantToPlus, LettersToAlpha, AllToAlphaNum} {
		h.Levels = append(h.Levels, refine(h.Levels[level], g, level+1, ix.table))
	}
	st.Refine = time.Since(t2)
	return h, st
}

// freezeConstants rewrites c's constant base tokens to literals, checking
// constancy across the group's distinct members and frequency against the
// sharded count maps — the same decisions, in the same order, as
// freezeClusterConstants on the serial path.
func (ix *Index) freezeConstants(c *Cluster, g *group) {
	if len(g.rows) < ix.opts.MinConstantSupport {
		return
	}
	toks := c.Pattern.Tokens()
	first := ix.shards[g.members[0].shard].values[g.members[0].slot]
	newToks := make([]token.Token, len(toks))
	copy(newToks, toks)
	changed := false
	off := 0
	for ti, t := range toks {
		l, _ := t.FixedLen() // initial patterns are fully fixed
		start := off
		off += l
		if t.IsLiteral() || l > ix.opts.MaxConstantLen {
			continue
		}
		val := first[start : start+l]
		constant := true
		for _, m := range g.members[1:] {
			if ix.shards[m.shard].values[m.slot][start:start+l] != val {
				constant = false
				break
			}
		}
		if constant && ix.frequent(val) {
			newToks[ti] = token.Lit(val)
			changed = true
		}
	}
	if changed {
		c.Pattern = pattern.Of(coalesceConstants(newToks)...)
	}
}
