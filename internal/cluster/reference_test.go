package cluster

// The reference implementation: the per-row, string-keyed profiling path
// this package shipped before pattern interning and counted clustering.
// It is kept verbatim (serialized where the original fanned out) as the
// executable specification the optimized path must reproduce bit for bit —
// every equivalence test below diffs full hierarchies against it.

import (
	"fmt"
	"strings"
	"testing"

	"clx/internal/dataset"
	"clx/internal/pattern"
	"clx/internal/token"
)

// referenceInitial is the pre-interning Initial: tokenize every row,
// group by rendered pattern key, then rewrite constant tokens.
func referenceInitial(data []string, opts Options) []*Cluster {
	pats := make([]pattern.Pattern, len(data))
	keys := make([]string, len(data))
	for i := range data {
		pats[i] = pattern.FromString(data[i])
		keys[i] = pats[i].Key()
	}
	byKey := make(map[string]*Cluster)
	var order []*Cluster
	for i, s := range data {
		c, ok := byKey[keys[i]]
		if !ok {
			c = &Cluster{Pattern: pats[i], Sample: s}
			byKey[keys[i]] = c
			order = append(order, c)
		}
		c.Rows = append(c.Rows, i)
	}
	if opts.DiscoverConstants {
		referenceDiscoverConstants(order, data, pats, opts)
	}
	return order
}

func referenceDiscoverConstants(clusters []*Cluster, data []string, pats []pattern.Pattern, opts Options) {
	rowsWith := make(map[string]int)
	for i, s := range data {
		spans, ok := pats[i].Match(s)
		if !ok {
			continue
		}
		seen := make(map[string]bool)
		for ti, t := range pats[i].Tokens() {
			if t.IsLiteral() {
				continue
			}
			seen[s[spans[ti].Start:spans[ti].End]] = true
		}
		for v := range seen {
			rowsWith[v]++
		}
	}
	frequent := func(v string) bool {
		return float64(rowsWith[v]) >= opts.MinConstantRatio*float64(len(data))
	}
	for _, c := range clusters {
		referenceClusterConstants(c, data, frequent, opts)
	}
}

func referenceClusterConstants(c *Cluster, data []string, frequent func(string) bool, opts Options) {
	if c.Count() < opts.MinConstantSupport {
		return
	}
	toks := c.Pattern.Tokens()
	spans, ok := c.Pattern.Match(data[c.Rows[0]])
	if !ok {
		return
	}
	newToks := make([]token.Token, len(toks))
	copy(newToks, toks)
	changed := false
	for ti, t := range toks {
		if t.IsLiteral() {
			continue
		}
		if l, fixed := t.FixedLen(); !fixed || l > opts.MaxConstantLen {
			continue
		}
		val := data[c.Rows[0]][spans[ti].Start:spans[ti].End]
		constant := true
		for _, ri := range c.Rows[1:] {
			if data[ri][spans[ti].Start:spans[ti].End] != val {
				constant = false
				break
			}
		}
		if constant && frequent(val) {
			newToks[ti] = token.Lit(val)
			changed = true
		}
	}
	if changed {
		c.Pattern = pattern.Of(coalesceConstants(newToks)...)
	}
}

// referenceProfile is the pre-interning Profile: referenceInitial plus the
// string-keyed refine rounds.
func referenceProfile(data []string, opts Options) *Hierarchy {
	clusters := referenceInitial(data, opts)
	leaves := make([]*Node, len(clusters))
	for i, c := range clusters {
		leaves[i] = &Node{Pattern: c.Pattern, Level: 0, Leaves: []*Cluster{c}}
	}
	h := &Hierarchy{Levels: [][]*Node{leaves}, Clusters: clusters, Data: data}
	for level, g := range []Strategy{QuantToPlus, LettersToAlpha, AllToAlphaNum} {
		h.Levels = append(h.Levels, referenceRefine(h.Levels[level], g, level+1))
	}
	return h
}

func referenceRefine(children []*Node, g Strategy, level int) []*Node {
	parentOf := make([]pattern.Pattern, len(children))
	count := make(map[string]int)
	byKey := make(map[string]*Node)
	var order []string
	for i, c := range children {
		pp := Generalize(c.Pattern, g)
		parentOf[i] = pp
		k := pp.Key()
		if count[k] == 0 {
			order = append(order, k)
			byKey[k] = &Node{Pattern: pp, Level: level}
		}
		count[k] += len(c.Leaves)
	}
	for i := 1; i < len(order); i++ { // insertion sort = stable rank by coverage
		for j := i; j > 0 && count[order[j]] > count[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for i, c := range children {
		p := byKey[parentOf[i].Key()]
		p.Children = append(p.Children, c)
		p.Leaves = append(p.Leaves, c.Leaves...)
	}
	out := make([]*Node, len(order))
	for i, k := range order {
		out[i] = byKey[k]
	}
	return out
}

// hierarchyFingerprint serializes everything user-visible about a
// hierarchy: per-level node order, patterns, child/leaf wiring, and every
// cluster's exact row indices and sample.
func hierarchyFingerprint(h *Hierarchy) string {
	var b strings.Builder
	for i, c := range h.Clusters {
		fmt.Fprintf(&b, "cluster %d %s sample=%q rows=%v\n", i, c.Pattern.Key(), c.Sample, c.Rows)
	}
	for li, level := range h.Levels {
		for ni, n := range level {
			fmt.Fprintf(&b, "L%d[%d] %s level=%d children=%d leaves=[", li, ni, n.Pattern.Key(), n.Level, len(n.Children))
			for _, leaf := range n.Leaves {
				fmt.Fprintf(&b, " %s(%d)", leaf.Pattern.Key(), leaf.Count())
			}
			b.WriteString(" ]\n")
		}
	}
	return b.String()
}

// referenceColumns are the corpora the equivalence suite diffs over:
// dup-heavy, all-distinct, constant-rich, unicode, and degenerate shapes.
func referenceColumns() map[string][]string {
	tsRows, _ := dataset.TimesSquarePhones()
	dupHeavy := make([]string, 0, 10*len(tsRows))
	for i := 0; i < 10; i++ {
		dupHeavy = append(dupHeavy, tsRows...)
	}
	phones, _ := dataset.Phones(500, 6, 77)
	cols := map[string][]string{
		"phones":     phones,
		"timessq":    tsRows,
		"dup-heavy":  dupHeavy,
		"names":      dataset.Names(300, 3),
		"addresses":  dataset.Addresses(200, 9),
		"productids": dataset.ProductIDs(250, 5),
		"mixed": dataset.Mix(phones[:100], dataset.Names(100, 3),
			dataset.LogLines(50, 4)),
		"empties": {"", "", "a", "", "a1", ""},
		"unicode": {"café 12", "naïve 34", "café 12", "日本 999", "café 56"},
		"single":  {"only-one-row"},
		"empty":   {},
	}
	return cols
}

// TestCountedMatchesReference is the central equivalence theorem of the
// counted-profiling rewrite: for every corpus, option set, and worker
// count, the optimized Profile emits a hierarchy byte-identical to the
// reference per-row implementation.
func TestCountedMatchesReference(t *testing.T) {
	for name, rows := range referenceColumns() {
		for _, discover := range []bool{true, false} {
			opts := DefaultOptions()
			opts.DiscoverConstants = discover
			opts.Workers = 1
			want := hierarchyFingerprint(referenceProfile(rows, opts))
			for _, w := range []int{1, 2, 4, 8} {
				opts.Workers = w
				got := hierarchyFingerprint(Profile(rows, opts))
				if got != want {
					t.Errorf("%s discover=%v workers=%d: counted profile diverges from reference\ngot:\n%s\nwant:\n%s",
						name, discover, w, got, want)
				}
			}
		}
	}
}

// TestInitialMatchesReference covers Initial alone (the API surface synth
// and the daemon cluster endpoint use without the hierarchy).
func TestInitialMatchesReference(t *testing.T) {
	for name, rows := range referenceColumns() {
		opts := DefaultOptions()
		want := referenceInitial(rows, opts)
		got := Initial(rows, opts)
		if len(got) != len(want) {
			t.Errorf("%s: %d clusters, reference %d", name, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i].Pattern.Key() != want[i].Pattern.Key() ||
				got[i].Sample != want[i].Sample ||
				fmt.Sprint(got[i].Rows) != fmt.Sprint(want[i].Rows) {
				t.Errorf("%s cluster %d: got {%s %q %v}, want {%s %q %v}", name, i,
					got[i].Pattern.Key(), got[i].Sample, got[i].Rows,
					want[i].Pattern.Key(), want[i].Sample, want[i].Rows)
			}
		}
	}
}

// benchRows is the benchmark corpus: the 20k-row phone column the pipeline
// experiment uses, which is also adversarial for the counted path (random
// digits make nearly every row distinct).
func benchRows(b *testing.B) []string {
	b.Helper()
	rows, _ := dataset.Phones(20000, 6, 77)
	return rows
}

func BenchmarkProfileCounted(b *testing.B) {
	rows := benchRows(b)
	opts := DefaultOptions()
	opts.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Profile(rows, opts)
	}
}

func BenchmarkProfileReference(b *testing.B) {
	rows := benchRows(b)
	opts := DefaultOptions()
	opts.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceProfile(rows, opts)
	}
}
