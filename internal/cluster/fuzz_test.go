package cluster

// Fuzz target for the sharded distinct-value index (wired into
// `make fuzz-smoke`):
//
//	go test -fuzz FuzzShardedIndexConservation -fuzztime 30s ./internal/cluster
//
// Values are split on the ASCII unit separator (0x1f) so the fuzzer can
// place newlines, CRLF pairs, and multi-byte UTF-8 *inside* values — the
// byte shapes most likely to land unevenly across shard hash boundaries.

import (
	"strings"
	"testing"
)

// FuzzShardedIndexConservation checks the conservation invariants of the
// sharded index against a serial dedup, for arbitrary values, shard
// counts, worker counts, and a two-batch append split: shard-local row
// counts must sum to the input size, the merged distinct multiset must
// equal the serial one, and the profiled hierarchy must be byte-identical
// to the serial counted path's.
func FuzzShardedIndexConservation(f *testing.F) {
	sep := "\x1f"
	f.Add("a"+sep+"b"+sep+"a", uint8(2), uint8(4), uint8(1))
	f.Add(""+sep+""+sep+"x", uint8(0), uint8(1), uint8(0))
	f.Add("line1\r\nline2"+sep+"line1\nline2"+sep+"\r\n", uint8(4), uint8(2), uint8(2))
	f.Add("café 12"+sep+"naïve 34"+sep+"日本 999"+sep+"café 12", uint8(1), uint8(8), uint8(3))
	f.Add("(734) 645-8397"+sep+"734.236.3466"+sep+"N/A"+sep+"N/A", uint8(3), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, blob string, shardSel, workerSel, splitSel uint8) {
		rows := strings.Split(blob, sep)
		if len(rows) > 64 {
			rows = rows[:64]
		}
		shards := 1 << (int(shardSel) % 5) // 1, 2, 4, 8, 16
		opts := DefaultOptions()
		opts.Workers = 1 + int(workerSel)%8

		ix := NewIndexShards(opts, shards)
		split := int(splitSel) % (len(rows) + 1)
		ix.Add(rows[:split])
		ix.Add(rows[split:])

		// Conservation: shard counts sum to the input size and the merged
		// distinct multiset equals a serial dedup.
		serial := make(map[string]int, len(rows))
		for _, v := range rows {
			serial[v]++
		}
		merged := ix.DistinctCounts()
		if len(merged) != len(serial) {
			t.Fatalf("merged distinct set has %d values, serial dedup %d", len(merged), len(serial))
		}
		total := 0
		for v, n := range merged {
			if serial[v] != n {
				t.Fatalf("count[%q] = %d across shards, serial dedup says %d", v, n, serial[v])
			}
			total += n
		}
		if total != len(rows) {
			t.Fatalf("shard counts sum to %d rows, input has %d", total, len(rows))
		}
		if ix.Rows() != len(rows) || ix.DistinctValues() != len(serial) {
			t.Fatalf("index reports rows=%d distinct=%d, want %d/%d",
				ix.Rows(), ix.DistinctValues(), len(rows), len(serial))
		}

		// Differential: the sharded, incrementally-built profile matches
		// the serial counted path (itself pinned to the reference
		// implementation) byte for byte.
		serialOpts := opts
		serialOpts.Workers = 1
		want := hierarchyFingerprint(Profile(rows, serialOpts))
		if got := hierarchyFingerprint(ix.Profile()); got != want {
			t.Fatalf("sharded profile diverges from serial path\ngot:\n%s\nwant:\n%s", got, want)
		}
	})
}
