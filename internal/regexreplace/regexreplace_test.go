package regexreplace

import (
	"testing"

	"clx/internal/benchsuite"
)

func TestSimulatePhones(t *testing.T) {
	in := []string{
		"(734) 645-8397", "(313) 263-1192",
		"734.236.3466", "313.555.0101",
		"734-422-8073", // already correct
	}
	out := []string{
		"734-645-8397", "313-263-1192",
		"734-236-3466", "313-555-0101",
		"734-422-8073",
	}
	res := Simulate(in, out)
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.PatternOps != 2 || res.ExactOps != 0 {
		t.Errorf("ops = %d pattern + %d exact, want 2 + 0", res.PatternOps, res.ExactOps)
	}
	if res.Steps() != 4 {
		t.Errorf("steps = %d, want 4", res.Steps())
	}
	for i := range out {
		if res.Outputs[i] != out[i] {
			t.Errorf("out[%d] = %q, want %q", i, res.Outputs[i], out[i])
		}
	}
}

func TestSimulateConditionalFallsBackToExactOps(t *testing.T) {
	task, ok := benchsuite.ByName("ff-ex13-picture")
	if !ok {
		t.Fatal("task missing")
	}
	res := Simulate(task.Inputs, task.Outputs)
	if !res.Perfect() {
		t.Fatalf("oracle should fix the conditional task row by row; failed %v", res.FailedRows)
	}
	if res.ExactOps == 0 {
		t.Error("conditional task should require exact-string operations")
	}
	// Cost is high: close to one op per ill-formatted row.
	if res.Steps() < 10 {
		t.Errorf("steps = %d, expected expensive session", res.Steps())
	}
}

func TestSimulateConflictingDuplicatesFail(t *testing.T) {
	in := []string{"x1", "x1", "ok"}
	out := []string{"a", "b", "ok"}
	res := Simulate(in, out)
	if res.Perfect() {
		t.Error("conflicting duplicates cannot be fixed")
	}
	if len(res.FailedRows) == 0 {
		t.Error("failed rows missing")
	}
}

func TestSimulateAlreadyClean(t *testing.T) {
	in := []string{"a-1", "b-2"}
	res := Simulate(in, in)
	if !res.Perfect() || res.Steps() != 0 || res.Interactions() != 0 {
		t.Errorf("clean column should cost nothing: %+v", res)
	}
}

func TestSimulateWholeSuiteCoverage(t *testing.T) {
	perfect := 0
	tasks := benchsuite.Tasks()
	for _, task := range tasks {
		res := Simulate(task.Inputs, task.Outputs)
		if res.Perfect() {
			perfect++
		} else if !task.NeedsConditional && !task.UnrepresentativeTarget {
			t.Logf("task %s imperfect: %d failed rows", task.Name, len(res.FailedRows))
		}
	}
	// §7.4: RegexReplace covered 46/47 (~98%); the oracle with exact-string
	// fallback should cover at least that many.
	if perfect < 45 {
		t.Errorf("RegexReplace perfect on %d/47 tasks, want >= 45", perfect)
	}
}

func TestSplitOpHandlesDigitRuns(t *testing.T) {
	// A hand-written regexp can split a plain digit run into groups —
	// beyond the token-granularity pattern language (see splitOp).
	in := []string{"7344228073", "3132631192", "734-422-9999"}
	out := []string{"734-422-8073", "313-263-1192", "734-422-9999"}
	res := Simulate(in, out)
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.ExactOps != 0 {
		t.Errorf("exact ops = %d, want 0 (split op should cover)", res.ExactOps)
	}
	if res.PatternOps != 1 {
		t.Errorf("pattern ops = %d, want 1", res.PatternOps)
	}
}

func TestSplitOpInsertsParens(t *testing.T) {
	in := []string{"7342363466", "(734) 999-8888"}
	out := []string{"(734) 236-3466", "(734) 999-8888"}
	res := Simulate(in, out)
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
}

func TestTriggerRowsRecorded(t *testing.T) {
	in := []string{"ok-1", "(734) 645-0001", "ok-2", "734.111.2222"}
	out := []string{"ok-1", "734-645-0001", "ok-2", "734-111-2222"}
	res := Simulate(in, out)
	if !res.Perfect() {
		t.Fatalf("failed: %v", res.FailedRows)
	}
	if len(res.TriggerRows) != res.Interactions() {
		t.Fatalf("triggers = %v, interactions = %d", res.TriggerRows, res.Interactions())
	}
	want := []int{1, 3}
	for i, tr := range res.TriggerRows {
		if tr != want[i] {
			t.Errorf("trigger %d = %d, want %d", i, tr, want[i])
		}
	}
}

func TestGeneralizedOpCoversAllLengths(t *testing.T) {
	// One '+'-quantified op covers names of any length.
	in := []string{"Bob Li", "Alexandra Fernandez", "Li, B.", "Kim Cho"}
	out := []string{"Li, B.", "Fernandez, A.", "Li, B.", "Cho, K."}
	res := Simulate(in, out)
	if !res.Perfect() {
		t.Fatalf("failed rows: %v", res.FailedRows)
	}
	if res.PatternOps != 1 {
		t.Errorf("pattern ops = %d, want 1 generalized op", res.PatternOps)
	}
}
