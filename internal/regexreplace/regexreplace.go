// Package regexreplace implements the RegexReplace baseline of paper §7.1:
// the Trifacta Wrangler feature letting a user manually author Replace
// operations with simple natural-language-like regexps. The simulated user
// is an oracle — a skilled human who always writes a correct operation —
// but pays two Steps per operation (§7.4 metrics): one regexp for the match
// pattern and one for the replacement.
//
// The oracle prefers pattern-level operations (one per source format); when
// no pattern-level replacement is correct for every row of a format (the
// advanced-conditional case), it falls back to exact-string operations for
// individual records, as the paper notes Trifacta users can ("replacing the
// exact string of an individual data record into its desired form").
package regexreplace

import (
	"clx/internal/align"
	"clx/internal/cluster"
	"clx/internal/mdl"
	"clx/internal/pattern"
	"clx/internal/replace"
	"clx/internal/token"
	"clx/internal/unifi"
)

// Result is the outcome of the simulated manual-replace session.
type Result struct {
	// Ops are the authored Replace operations, in authoring order.
	Ops replace.Program
	// PatternOps and ExactOps split the operation count by kind.
	PatternOps, ExactOps int
	// TriggerRows records, per authored operation, the row index whose
	// incorrectness prompted it — the user's scan position trace.
	TriggerRows []int
	// FailedRows are row indices the session could not fix (conflicting
	// duplicates).
	FailedRows []int
	// Outputs is the final transformed column.
	Outputs []string
}

// Steps returns the §7.4 user-effort Steps: two per authored operation plus
// one per row left incorrect.
func (r Result) Steps() int {
	return 2*(r.PatternOps+r.ExactOps) + len(r.FailedRows)
}

// Perfect reports whether every row ended up correct.
func (r Result) Perfect() bool { return len(r.FailedRows) == 0 }

// Interactions returns the number of user interactions (one per authored
// operation).
func (r Result) Interactions() int { return r.PatternOps + r.ExactOps }

// Simulate runs the oracle user over the column: walk rows in order; for the
// first row still incorrect under the authored operations, write a new
// operation (pattern-level if one fixes the row's whole format, else
// exact-string) and continue.
func Simulate(inputs, outputs []string) Result {
	var res Result
	current := func(s string) string {
		if out, ok := res.Ops.Apply(s); ok {
			return out
		}
		return s
	}
	for i := range inputs {
		if current(inputs[i]) == outputs[i] {
			continue
		}
		// Author an operation for this row's format. A real user writes
		// '+'-quantified regexps covering the whole format family, so the
		// generalized pattern is tried before the exact-length one.
		res.TriggerRows = append(res.TriggerRows, i)
		leaf := pattern.FromString(inputs[i])
		gen := cluster.Generalize(leaf, cluster.QuantToPlus)
		if op, ok := patternOp(gen, inputs, outputs); ok {
			res.Ops = append(res.Ops, op)
			res.PatternOps++
		} else if op, ok := patternOp(leaf, inputs, outputs); ok {
			res.Ops = append(res.Ops, op)
			res.PatternOps++
		} else if op, ok := splitOp(inputs[i], outputs[i], inputs, outputs); ok {
			res.Ops = append(res.Ops, op)
			res.PatternOps++
		} else {
			res.Ops = append(res.Ops, exactOp(inputs[i], outputs[i]))
			res.ExactOps++
		}
		if current(inputs[i]) != outputs[i] {
			// Even the authored op cannot fix this row (conflicting
			// duplicate inputs): the row fails.
			res.FailedRows = append(res.FailedRows, i)
		}
	}
	res.Outputs = make([]string, len(inputs))
	for i := range inputs {
		res.Outputs[i] = current(inputs[i])
		if res.Outputs[i] != outputs[i] && !contains(res.FailedRows, i) {
			res.FailedRows = append(res.FailedRows, i)
		}
	}
	return res
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// patternOp tries to author one Replace operation correct for every row of
// the source format. The oracle can write any regexp replacement a human
// could, modeled as a search over the alignment version space against the
// format's desired output pattern.
func patternOp(src pattern.Pattern, inputs, outputs []string) (replace.Op, bool) {
	// Collect the rows of this format and their expected outputs.
	var rows []int
	for i, in := range inputs {
		if src.Matches(in) {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return replace.Op{}, false
	}
	// Candidate replacement shapes: a human writes the desired output
	// format with constant text spelled out ("Dr. $1"), so the outputs of
	// the format's rows are profiled with constant discovery and their
	// '+'-generalized patterns tried in turn.
	outs := make([]string, len(rows))
	for k, i := range rows {
		outs[k] = outputs[i]
	}
	copts := cluster.DefaultOptions()
	copts.MinConstantSupport = 2
	copts.MinConstantRatio = 0.5
	var targets []pattern.Pattern
	seen := map[string]bool{}
	for _, c := range cluster.Initial(outs, copts) {
		for _, tgt := range []pattern.Pattern{c.Pattern, cluster.Generalize(c.Pattern, cluster.QuantToPlus)} {
			if k := tgt.Key(); !seen[k] {
				seen[k] = true
				targets = append(targets, tgt)
			}
		}
	}
	for _, tgt := range targets {
		dag := align.Align(tgt, src)
		if !dag.Complete() {
			continue
		}
		for _, r := range mdl.TopK(dag, src, 64) {
			ok := true
			for _, i := range rows {
				out, err := r.Plan.Apply(src, inputs[i])
				if err != nil || out != outputs[i] {
					ok = false
					break
				}
			}
			if ok {
				return replace.ExplainCase(unifi.Case{Source: src, Plan: r.Plan}), true
			}
		}
	}
	return replace.Op{}, false
}

// splitOp handles formats the token-granularity pattern language cannot:
// a hand-written regexp can split a character run into fixed-width groups,
// e.g. /^(\d{3})(\d{3})(\d{4})$/ -> "$1-$2-$3". The source pattern is
// derived from the desired output's shape: each base token of the output
// consumes its width from the input, literal output tokens are either
// consumed (when the input carries them) or inserted as constants.
func splitOp(in, out string, inputs, outputs []string) (replace.Op, bool) {
	tgt := pattern.FromString(out)
	var src []token.Token
	var ops []unifi.Op
	pos := 0
	for _, t := range tgt.Tokens() {
		w, fixed := t.FixedLen()
		if !fixed {
			return replace.Op{}, false
		}
		if t.IsLiteral() {
			lit := t.Expand()
			if pos+len(lit) <= len(in) && in[pos:pos+len(lit)] == lit {
				src = append(src, t)
				ops = append(ops, unifi.Extract{I: len(src), J: len(src)})
				pos += len(lit)
			} else {
				ops = append(ops, unifi.ConstStr{S: lit})
			}
			continue
		}
		if pos+w > len(in) {
			return replace.Op{}, false
		}
		for k := pos; k < pos+w; k++ {
			if !t.Class.Contains(rune(in[k])) {
				return replace.Op{}, false
			}
		}
		src = append(src, token.Base(t.Class, w))
		ops = append(ops, unifi.Extract{I: len(src), J: len(src)})
		pos += w
	}
	if pos != len(in) || len(src) == 0 {
		return replace.Op{}, false
	}
	srcPat := pattern.Of(src...)
	plan := unifi.Plan{Ops: ops}
	// Verify against every row the split pattern matches.
	for i := range inputs {
		if !srcPat.Matches(inputs[i]) {
			continue
		}
		got, err := plan.Apply(srcPat, inputs[i])
		if err != nil || got != outputs[i] {
			return replace.Op{}, false
		}
	}
	return replace.ExplainCase(unifi.Case{Source: srcPat, Plan: plan}), true
}

// exactOp authors a whole-string replacement for a single record.
func exactOp(in, out string) replace.Op {
	src := pattern.Of(token.Lit(in))
	plan := unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: out}}}
	return replace.ExplainCase(unifi.Case{Source: src, Plan: plan})
}
