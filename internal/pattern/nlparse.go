// Parsing of Wrangler-style natural-language regexps — the format CLX
// displays to the user (paper Fig. 4). ParseNL is its inverse, so a user
// can also type the desired pattern in the familiar display syntax, e.g.
// "/^{digit}{3}-{digit}{3}-{digit}{4}$/" or "{upper}{lower}+, {upper}.".
package pattern

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"clx/internal/token"
)

// ParseNL parses a natural-language-like regexp into a Pattern. The
// surrounding "/^…$/" anchors are optional. Class tokens are written
// {digit}, {lower}, {upper}, {alpha}, {alnum}, each optionally followed by
// a {n} count or '+'. Any other character is a literal; a backslash
// escapes the next character.
func ParseNL(s string) (Pattern, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "/^") && strings.HasSuffix(s, "$/") && len(s) >= 4 {
		s = s[2 : len(s)-2]
	}
	var toks []token.Token
	i := 0
	for i < len(s) {
		switch {
		case s[i] == '{':
			j := strings.IndexByte(s[i:], '}')
			if j < 0 {
				return Pattern{}, fmt.Errorf("pattern.ParseNL: unterminated '{' at %d in %q", i, s)
			}
			name := s[i+1 : i+j]
			c, ok := classByNLName(name)
			if !ok {
				// "{3}" after a class is handled below; a brace group
				// that is neither a class nor a count is an error.
				return Pattern{}, fmt.Errorf("pattern.ParseNL: unknown token class %q in %q", name, s)
			}
			i += j + 1
			q, n, err := parseNLQuant(s[i:])
			if err != nil {
				return Pattern{}, err
			}
			i += n
			toks = append(toks, token.Base(c, q))
		case s[i] == '\\' && i+1 < len(s):
			lit, size := decodeLiteral(s[i+1:])
			toks = appendLiteral(toks, lit)
			i += 1 + size
		default:
			lit, size := decodeLiteral(s[i:])
			toks = appendLiteral(toks, lit)
			i += size
		}
	}
	return Pattern{toks: toks}, nil
}

// MustParseNL is ParseNL but panics on error.
func MustParseNL(s string) Pattern {
	p, err := ParseNL(s)
	if err != nil {
		panic(err)
	}
	return p
}

func classByNLName(name string) (token.Class, bool) {
	switch name {
	case "digit":
		return token.Digit, true
	case "lower":
		return token.Lower, true
	case "upper":
		return token.Upper, true
	case "alpha":
		return token.Alpha, true
	case "alnum":
		return token.AlphaNum, true
	}
	return token.Literal, false
}

// parseNLQuant parses an optional "{n}" or "+" quantifier.
func parseNLQuant(s string) (q, n int, err error) {
	if s == "" {
		return 1, 0, nil
	}
	if s[0] == '+' {
		return token.Plus, 1, nil
	}
	if s[0] != '{' {
		return 1, 0, nil
	}
	j := strings.IndexByte(s, '}')
	if j < 0 {
		return 0, 0, fmt.Errorf("pattern.ParseNL: unterminated quantifier in %q", s)
	}
	body := s[1:j]
	q = 0
	for _, r := range body {
		if r < '0' || r > '9' {
			// Not a count — e.g. "{digit}{lower}": leave for the caller.
			return 1, 0, nil
		}
		q = q*10 + int(r-'0')
		if q > maxQuant {
			return 0, 0, fmt.Errorf("pattern.ParseNL: quantifier %q too large", body)
		}
	}
	if q < 1 {
		return 0, 0, fmt.Errorf("pattern.ParseNL: quantifier %q must be >= 1", body)
	}
	return q, j + 1, nil
}

// decodeLiteral returns the next literal character's exact bytes: a whole
// UTF-8 rune when valid, the single raw byte otherwise (mirroring the
// tokenizer, so NL renderings of arbitrary byte strings round-trip).
func decodeLiteral(s string) (lit string, size int) {
	if s == "" {
		return "", 0
	}
	if s[0] < 0x80 {
		return s[:1], 1
	}
	_, size = utf8.DecodeRuneInString(s)
	return s[:size], size
}

// appendLiteral appends a one-character literal token. Consecutive literal
// characters stay separate tokens, matching the tokenizer's output for
// punctuation; alphanumeric literal characters merge into one constant so
// "Dr" round-trips as a single literal.
func appendLiteral(toks []token.Token, lit string) []token.Token {
	if lit == "" {
		return toks
	}
	if n := len(toks); n > 0 && isAlnumLit(lit) {
		last := toks[n-1]
		if last.IsLiteral() && last.Quant == 1 && isAlnumLit(last.Lit) {
			toks[n-1] = token.Lit(last.Lit + lit)
			return toks
		}
	}
	return append(toks, token.Lit(lit))
}

func isAlnumLit(s string) bool {
	for _, r := range s {
		if !((r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}
