package pattern_test

import (
	"math/rand"
	"regexp"
	"testing"

	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/token"
)

// Differential test: the POSIX-style regex strings CLX displays
// (Pattern.Regex) must agree with the span matcher that actually executes
// the Replace operations. Go's regexp engine is the independent referee.
//
// This is exactly the guarantee the user relies on when they read the
// shown regexp and trust it describes what will happen.
func TestMatcherAgreesWithRegexp(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	classes := []token.Class{token.Digit, token.Lower, token.Upper, token.Alpha, token.AlphaNum}
	puncts := []string{"-", ".", " ", "(", ")", "/", "+", "@"}

	randPattern := func() pattern.Pattern {
		n := 1 + r.Intn(6)
		var toks []token.Token
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				toks = append(toks, token.Lit(puncts[r.Intn(len(puncts))]))
				continue
			}
			q := 1 + r.Intn(3)
			if r.Intn(3) == 0 {
				q = token.Plus
			}
			toks = append(toks, token.Base(classes[r.Intn(len(classes))], q))
		}
		return pattern.Of(toks...)
	}
	randSubject := func() string {
		const alphabet = "abcXYZ019 -._()/@+"
		n := r.Intn(14)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}

	for trial := 0; trial < 400; trial++ {
		p := randPattern()
		re, err := regexp.Compile(p.Regex())
		if err != nil {
			t.Fatalf("displayed regex %q does not compile: %v", p.Regex(), err)
		}
		for probe := 0; probe < 20; probe++ {
			s := randSubject()
			want := re.MatchString(s)
			got := rematch.Matches(p.Tokens(), s)
			if got != want {
				t.Fatalf("pattern %s (regex %q) on %q: matcher=%v regexp=%v",
					p, p.Regex(), s, got, want)
			}
		}
	}
}

// The grouped form with capture groups compiles and captures the same
// fragments the span matcher extracts.
func TestGroupedRegexAgreesWithSpans(t *testing.T) {
	cases := []struct {
		pat    string
		groups [][2]int
		input  string
	}{
		{"'('<D>3')'' '<D>3'-'<D>4", [][2]int{{1, 2}, {4, 5}, {6, 7}}, "(734) 645-8397"},
		{"<U>+'-'<D>+", [][2]int{{0, 1}, {2, 3}}, "CPT-00350"},
		{"<L>+'@'<L>+'.'<L>+", [][2]int{{0, 3}}, "bob@gmail.com"},
	}
	for _, tc := range cases {
		p := pattern.MustParse(tc.pat)
		re, err := regexp.Compile(p.GroupedRegex(tc.groups))
		if err != nil {
			t.Fatalf("grouped regex %q: %v", p.GroupedRegex(tc.groups), err)
		}
		m := re.FindStringSubmatch(tc.input)
		if m == nil {
			t.Fatalf("regexp did not match %q", tc.input)
		}
		spans, ok := rematch.Match(p.Tokens(), tc.input)
		if !ok {
			t.Fatalf("matcher did not match %q", tc.input)
		}
		for gi, g := range tc.groups {
			want := tc.input[spans[g[0]].Start:spans[g[1]-1].End]
			if m[gi+1] != want {
				t.Errorf("pattern %s group %d: regexp %q, spans %q", tc.pat, gi+1, m[gi+1], want)
			}
		}
	}
}
