package pattern

import (
	"testing"
)

func TestParseNL(t *testing.T) {
	tests := []struct {
		in   string
		want string // compact notation
	}{
		{"/^{digit}{3}-{digit}{3}-{digit}{4}$/", "<D>3'-'<D>3'-'<D>4"},
		{"{digit}{3}-{digit}{4}", "<D>3'-'<D>4"},
		{`/^\({digit}{3}\) {digit}{3}\-{digit}{4}$/`, "'('<D>3')'' '<D>3'-'<D>4"},
		{"{upper}{lower}+, {upper}.", "<U><L>+','' '<U>'.'"},
		{"{alnum}+@{alnum}+", "<AN>+'@'<AN>+"},
		{"[{upper}+-{digit}+]", "'['<U>+'-'<D>+']'"},
		{"Dr. {upper}{lower}+", "'Dr''.'' '<U><L>+"},
		{"{digit}", "<D>"},
		{"{digit}{lower}", "<D><L>"}, // brace group that is a class, not a count
	}
	for _, tc := range tests {
		p, err := ParseNL(tc.in)
		if err != nil {
			t.Errorf("ParseNL(%q): %v", tc.in, err)
			continue
		}
		if got := p.String(); got != tc.want {
			t.Errorf("ParseNL(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestParseNLErrors(t *testing.T) {
	for _, s := range []string{"{digit", "{bogus}", "{digit}{0}", "{digit}{"} {
		if _, err := ParseNL(s); err == nil {
			t.Errorf("ParseNL(%q) succeeded, want error", s)
		}
	}
}

// Round trip: rendering a pattern as an NL regexp and parsing it back
// yields a pattern matching the same strings.
func TestParseNLRoundTrip(t *testing.T) {
	samples := []string{
		"(734) 645-8397", "CPT-00350", "Bob123@gmail.com", "Dr. Eran Yahav",
		"[CPT-115]", "a_b-c d",
	}
	for _, s := range samples {
		p := FromString(s)
		q, err := ParseNL(p.NLRegex())
		if err != nil {
			t.Errorf("round trip of %q: %v", s, err)
			continue
		}
		if !q.Matches(s) {
			t.Errorf("round-tripped pattern %s does not match %q (original %s)", q, s, p)
		}
	}
}

func TestMustParseNLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseNL on garbage did not panic")
		}
	}()
	MustParseNL("{nope}")
}
