// Package pattern defines CLX data patterns: sequences of quantified tokens
// describing the structure of a string (paper §3.1). It provides the three
// renderings used throughout the system — the compact notation of the paper,
// the Wrangler-style natural-language regexp shown to end users, and a
// POSIX-style regular expression — together with anchored matching and the
// token-frequency statistic used by the synthesizer's validate step.
package pattern

import (
	"fmt"
	"strings"

	"clx/internal/rematch"
	"clx/internal/token"
	"clx/internal/tokenize"
)

// Pattern is a string pattern: a sequence of tokens, each with a quantifier.
// Patterns are immutable by convention; operations return new Patterns.
type Pattern struct {
	toks []token.Token
}

// Of constructs a pattern from a token sequence. The slice is not copied;
// callers must not mutate it afterwards.
func Of(toks ...token.Token) Pattern { return Pattern{toks: toks} }

// FromString derives the initial pattern of s by tokenization (paper §4.1).
func FromString(s string) Pattern { return Pattern{toks: tokenize.Tokenize(s)} }

// Tokens returns the pattern's token sequence. The caller must not mutate it.
func (p Pattern) Tokens() []token.Token { return p.toks }

// Len returns the number of tokens in the pattern.
func (p Pattern) Len() int { return len(p.toks) }

// At returns the i-th token (zero-based).
func (p Pattern) At(i int) token.Token { return p.toks[i] }

// IsEmpty reports whether the pattern has no tokens (pattern of "").
func (p Pattern) IsEmpty() bool { return len(p.toks) == 0 }

// String renders the pattern in the paper's compact notation, e.g.
// "<U><L>2<D>3'@'<L>5'.'<L>3".
func (p Pattern) String() string {
	var b strings.Builder
	for _, t := range p.toks {
		b.WriteString(t.String())
	}
	return b.String()
}

// Key returns a canonical map key identifying the pattern. Two patterns have
// equal keys iff they are Equal.
func (p Pattern) Key() string { return p.String() }

// Equal reports whether p and q consist of identical token sequences.
func (p Pattern) Equal(q Pattern) bool {
	if len(p.toks) != len(q.toks) {
		return false
	}
	for i, t := range p.toks {
		if t != q.toks[i] {
			return false
		}
	}
	return true
}

// NLRegex renders the pattern as an anchored natural-language-like regular
// expression in the style Wrangler presents to non-technical users (paper
// Fig. 4), e.g. "/^\({digit}{3}\) {digit}{3}-{digit}{4}$/".
func (p Pattern) NLRegex() string {
	var b strings.Builder
	b.WriteString("/^")
	for _, t := range p.toks {
		b.WriteString(t.NLRegex())
	}
	b.WriteString("$/")
	return b.String()
}

// Regex renders the pattern as an anchored POSIX-style regular expression,
// e.g. "^\([0-9]{3}\) [0-9]{3}-[0-9]{4}$".
func (p Pattern) Regex() string {
	var b strings.Builder
	b.WriteString("^")
	for _, t := range p.toks {
		b.WriteString(t.Regex())
	}
	b.WriteString("$")
	return b.String()
}

// GroupedNLRegex renders the pattern as an NL regexp with capture groups.
// groups lists half-open token ranges [start, end) (zero-based) to surround
// with parentheses; ranges must be non-overlapping and in ascending order.
func (p Pattern) GroupedNLRegex(groups [][2]int) string {
	return p.grouped(groups, token.Token.NLRegex, "/^", "$/")
}

// GroupedRegex is like GroupedNLRegex but in POSIX style.
func (p Pattern) GroupedRegex(groups [][2]int) string {
	return p.grouped(groups, token.Token.Regex, "^", "$")
}

func (p Pattern) grouped(groups [][2]int, render func(token.Token) string, pre, post string) string {
	var b strings.Builder
	b.WriteString(pre)
	g := 0
	for i, t := range p.toks {
		if g < len(groups) && groups[g][0] == i {
			b.WriteString("(")
		}
		b.WriteString(render(t))
		if g < len(groups) && groups[g][1] == i+1 {
			b.WriteString(")")
			g++
		}
	}
	b.WriteString(post)
	return b.String()
}

// Match reports whether s is an exact match of p and returns the per-token
// spans of s when it is.
func (p Pattern) Match(s string) ([]rematch.Span, bool) {
	return rematch.Match(p.toks, s)
}

// Matches reports whether s is an exact match of p.
func (p Pattern) Matches(s string) bool { return rematch.Matches(p.toks, s) }

// Freq computes the token frequency Q(<t>, p) of base class c in p (paper
// Eq. 1): the sum of quantifiers of all base tokens of exactly class c, with
// '+' counted as 1.
func (p Pattern) Freq(c token.Class) int {
	q := 0
	for _, t := range p.toks {
		if t.Class != c {
			continue
		}
		if t.Quant == token.Plus {
			q++
		} else {
			q += t.Quant
		}
	}
	return q
}

// FreqWithLiterals is Freq extended for constant-token discovery (§4.1): it
// also counts the characters inside fixed literal tokens toward their most
// precise base class, so a source pattern like ['CPT-', <D>5] still
// satisfies a target needing <U> tokens. Used for the source side of the
// synthesizer's validate; the target side keeps the paper's base-token-only
// count (target literals are produced by ConstStr, not extraction).
func (p Pattern) FreqWithLiterals(c token.Class) int {
	q := p.Freq(c)
	for _, t := range p.toks {
		if !t.IsLiteral() || t.Quant == token.Plus {
			continue
		}
		for _, r := range t.Expand() {
			if mostPrecise(r) == c {
				q++
			}
		}
	}
	return q
}

func mostPrecise(r rune) token.Class {
	switch {
	case r >= '0' && r <= '9':
		return token.Digit
	case r >= 'a' && r <= 'z':
		return token.Lower
	case r >= 'A' && r <= 'Z':
		return token.Upper
	default:
		return token.Literal
	}
}

// FreqHierarchical is like Freq but also credits tokens of classes that c
// generalizes (e.g. <U> and <L> tokens count toward <A>). This is the
// optional HierarchicalCount variant discussed in DESIGN.md; the paper's
// validate uses exact class counting.
func (p Pattern) FreqHierarchical(c token.Class) int {
	q := 0
	for _, t := range p.toks {
		if t.IsLiteral() || !c.Generalizes(t.Class) {
			continue
		}
		if t.Quant == token.Plus {
			q++
		} else {
			q += t.Quant
		}
	}
	return q
}

// BaseTokens returns the number of base (non-literal) tokens in p.
func (p Pattern) BaseTokens() int {
	n := 0
	for _, t := range p.toks {
		if !t.IsLiteral() {
			n++
		}
	}
	return n
}

// MinLen returns the minimum length of a string matching p.
func (p Pattern) MinLen() int {
	n := 0
	for _, t := range p.toks {
		n += t.MinLen()
	}
	return n
}

// Generalizes reports whether every string matching q also matches p, using
// a conservative token-wise check: the patterns must have the same length
// and every token of p must subsume the corresponding token of q. This is
// the "isChild" relation of Algorithm 1 for patterns produced by the
// generalization strategies of §4.2 (which preserve token structure except
// for merging, handled by the cluster package).
func (p Pattern) Generalizes(q Pattern) bool {
	if len(p.toks) != len(q.toks) {
		return false
	}
	for i, tp := range p.toks {
		if !tokenGeneralizes(tp, q.toks[i]) {
			return false
		}
	}
	return true
}

func tokenGeneralizes(g, c token.Token) bool {
	if g.IsLiteral() {
		return c.IsLiteral() && g.Lit == c.Lit && (g.Quant == c.Quant || g.Quant == token.Plus)
	}
	if c.IsLiteral() {
		// A base class token generalizes a literal whose every rune is in
		// the class (e.g. <AN>+ generalizes '-').
		if g.Quant != token.Plus && g.Quant != c.MinLen() {
			return false
		}
		for _, r := range c.Lit {
			if !g.Class.Contains(r) {
				return false
			}
		}
		return true
	}
	if !g.Class.Generalizes(c.Class) {
		return false
	}
	return g.Quant == c.Quant || g.Quant == token.Plus
}

// Parse parses the compact notation produced by String, e.g.
// "<U><L>2<D>+'@'<L>5". It is the inverse of String for valid patterns and
// is used by tests, the CLI, and benchmark definitions.
func Parse(s string) (Pattern, error) {
	var toks []token.Token
	i := 0
	for i < len(s) {
		switch s[i] {
		case '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return Pattern{}, fmt.Errorf("pattern.Parse: unterminated class at %d in %q", i, s)
			}
			name := s[i+1 : i+j]
			var c token.Class
			switch name {
			case "D":
				c = token.Digit
			case "L":
				c = token.Lower
			case "U":
				c = token.Upper
			case "A":
				c = token.Alpha
			case "AN":
				c = token.AlphaNum
			default:
				return Pattern{}, fmt.Errorf("pattern.Parse: unknown class %q in %q", name, s)
			}
			i += j + 1
			q, n := parseQuant(s[i:])
			if q == 0 {
				return Pattern{}, fmt.Errorf("pattern.Parse: quantifier must be >= 1 at %d in %q", i, s)
			}
			i += n
			toks = append(toks, token.Base(c, q))
		case '\'':
			var lit strings.Builder
			j := i + 1
			closed := false
			for j < len(s) {
				switch {
				case s[j] == '\\' && j+1 < len(s):
					lit.WriteByte(s[j+1])
					j += 2
				case s[j] == '\'':
					closed = true
				default:
					lit.WriteByte(s[j])
					j++
				}
				if closed {
					break
				}
			}
			if !closed {
				return Pattern{}, fmt.Errorf("pattern.Parse: unterminated literal at %d in %q", i, s)
			}
			if lit.Len() == 0 {
				return Pattern{}, fmt.Errorf("pattern.Parse: empty literal at %d in %q", i, s)
			}
			i = j + 1
			q, n := parseQuant(s[i:])
			if q == 0 {
				return Pattern{}, fmt.Errorf("pattern.Parse: quantifier must be >= 1 at %d in %q", i, s)
			}
			i += n
			t := token.Lit(lit.String())
			t.Quant = q
			toks = append(toks, t)
		default:
			return Pattern{}, fmt.Errorf("pattern.Parse: unexpected %q at %d in %q", s[i], i, s)
		}
	}
	return Pattern{toks: toks}, nil
}

// MustParse is Parse but panics on error; for tests and static definitions.
func MustParse(s string) Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// maxQuant bounds parsed quantifiers; beyond it the count is certainly not
// a data pattern (and would overflow arithmetic downstream).
const maxQuant = 1 << 20

func parseQuant(s string) (q, n int) {
	if s == "" {
		return 1, 0
	}
	if s[0] == '+' {
		return token.Plus, 1
	}
	q = 0
	for n < len(s) && s[n] >= '0' && s[n] <= '9' {
		q = q*10 + int(s[n]-'0')
		if q > maxQuant {
			return 0, n // rejected by the caller's q==0 check
		}
		n++
	}
	if n == 0 {
		return 1, 0
	}
	return q, n
}
