package pattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clx/internal/token"
)

func TestStringAndParseRoundTrip(t *testing.T) {
	cases := []string{
		"<U><L>2<D>3'@'<L>5'.'<L>3",
		"'('<D>3')'' '<D>3'-'<D>4",
		"<D>3'-'<D>3'-'<D>4",
		"<AN>+'@'<AN>+'.'<AN>+",
		"<U>+<L>+",
		"'Dr.'' '<U><L>+",
		"",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"<D", "<X>", "'abc", "''", "x", "<D>3x"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestFromString(t *testing.T) {
	p := FromString("(734) 645-8397")
	want := "'('<D>3')'' '<D>3'-'<D>4"
	if p.String() != want {
		t.Errorf("FromString pattern = %q, want %q", p.String(), want)
	}
	if !p.Matches("(734) 645-8397") {
		t.Error("pattern does not match its own source string")
	}
	if p.Matches("(73) 645-8397") {
		t.Error("pattern matches wrong string")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := MustParse("<D>3'-'<D>4")
	b := MustParse("<D>3'-'<D>4")
	c := MustParse("<D>3'.'<D>4")
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("identical patterns not Equal / keys differ")
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different patterns Equal / keys collide")
	}
}

func TestNLRegex(t *testing.T) {
	p := MustParse("'('<D>3')'' '<D>3'-'<D>4")
	want := `/^\({digit}{3}\) {digit}{3}\-{digit}{4}$/`
	if got := p.NLRegex(); got != want {
		t.Errorf("NLRegex = %q, want %q", got, want)
	}
}

func TestRegex(t *testing.T) {
	p := MustParse("'('<D>3')'' '<D>3'-'<D>4")
	want := `^\([0-9]{3}\) [0-9]{3}\-[0-9]{4}$`
	if got := p.Regex(); got != want {
		t.Errorf("Regex = %q, want %q", got, want)
	}
}

func TestGroupedRegex(t *testing.T) {
	// Paper Fig 4, op 2: /^({digit}{3})\-({digit}{3})\-({digit}{4})$/
	p := MustParse("<D>3'-'<D>3'-'<D>4")
	got := p.GroupedNLRegex([][2]int{{0, 1}, {2, 3}, {4, 5}})
	want := `/^({digit}{3})\-({digit}{3})\-({digit}{4})$/`
	if got != want {
		t.Errorf("GroupedNLRegex = %q, want %q", got, want)
	}
	// Multi-token group.
	got = p.GroupedRegex([][2]int{{0, 3}})
	want = `^([0-9]{3}\-[0-9]{3})\-[0-9]{4}$`
	if got != want {
		t.Errorf("GroupedRegex = %q, want %q", got, want)
	}
}

func TestFreq(t *testing.T) {
	// Paper Example 7.
	target := MustParse("'['<U>+'-'<D>+']'")
	if q := target.Freq(token.Digit); q != 1 {
		t.Errorf("Q(<D>, T) = %d, want 1", q)
	}
	if q := target.Freq(token.Upper); q != 1 {
		t.Errorf("Q(<U>, T) = %d, want 1", q)
	}
	src := MustParse("'['<U>3'-'<D>5")
	if q := src.Freq(token.Digit); q != 5 {
		t.Errorf("Q(<D>, p) = %d, want 5", q)
	}
	if q := src.Freq(token.Upper); q != 3 {
		t.Errorf("Q(<U>, p) = %d, want 3", q)
	}
	rejected := MustParse("'['<U>3'-'")
	if q := rejected.Freq(token.Digit); q != 0 {
		t.Errorf("Q(<D>, rejected) = %d, want 0", q)
	}
}

func TestFreqHierarchical(t *testing.T) {
	p := MustParse("<U><L>3<D>2")
	if q := p.FreqHierarchical(token.Alpha); q != 4 {
		t.Errorf("hierarchical Q(<A>) = %d, want 4", q)
	}
	if q := p.FreqHierarchical(token.AlphaNum); q != 6 {
		t.Errorf("hierarchical Q(<AN>) = %d, want 6", q)
	}
	if q := p.Freq(token.Alpha); q != 0 {
		t.Errorf("exact Q(<A>) = %d, want 0", q)
	}
}

func TestGeneralizesPatterns(t *testing.T) {
	tests := []struct {
		g, c string
		want bool
	}{
		{"<U>+<L>+", "<U><L>2", true},
		{"<A>+<D>+", "<U>+<D>+", true},
		{"<AN>+", "<D>3", true}, // any 3 digits match <AN>+
		{"<AN>+'@'<AN>+", "<L>3'@'<L>5", true},
		{"<D>+", "<L>+", false},
		{"<D>3", "<D>4", false},
		{"<AN>+", "'-'", true}, // AN subsumes hyphen literal
		{"<AN>+", "'.'", false},
		{"'x'", "'x'", true},
		{"'x'", "'y'", false},
	}
	for _, tc := range tests {
		g, c := MustParse(tc.g), MustParse(tc.c)
		if got := g.Generalizes(c); got != tc.want {
			t.Errorf("%q.Generalizes(%q) = %v, want %v", tc.g, tc.c, got, tc.want)
		}
	}
}

func TestMinLen(t *testing.T) {
	tests := map[string]int{
		"<D>3'-'<D>4":  8,
		"<AN>+":        1,
		"'Dr.'<L>+":    4,
		"":             0,
		"<U>+<L>+<D>+": 3,
	}
	for s, want := range tests {
		if got := MustParse(s).MinLen(); got != want {
			t.Errorf("MinLen(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestBaseTokens(t *testing.T) {
	p := MustParse("'('<D>3')'' '<D>3'-'<D>4")
	if got := p.BaseTokens(); got != 3 {
		t.Errorf("BaseTokens = %d, want 3", got)
	}
}

// Property: FromString(s) always matches s, and Parse∘String is identity.
func TestPatternProperties(t *testing.T) {
	gen := func(v []reflect.Value, r *rand.Rand) {
		n := r.Intn(30)
		b := make([]byte, n)
		const alphabet = "abXY01 -.@"
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		v[0] = reflect.ValueOf(string(b))
	}
	f := func(s string) bool {
		p := FromString(s)
		if !p.Matches(s) {
			return false
		}
		q, err := Parse(p.String())
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Values: gen}); err != nil {
		t.Error(err)
	}
}

// Property: if g.Generalizes(c), any string matching c also matches g.
func TestGeneralizesSemantics(t *testing.T) {
	pairs := []struct{ g, c, s string }{
		{"<U>+<L>+", "<U><L>2", "Bob"},
		{"<A>+<D>+", "<U>+<D>+", "CPT115"},
		{"<AN>+'@'<AN>+", "<L>3'@'<L>5", "bob@gmail"},
	}
	for _, pc := range pairs {
		g, c := MustParse(pc.g), MustParse(pc.c)
		if !g.Generalizes(c) {
			t.Errorf("%q should generalize %q", pc.g, pc.c)
			continue
		}
		if !c.Matches(pc.s) {
			t.Errorf("%q should match %q", pc.c, pc.s)
		}
		if !g.Matches(pc.s) {
			t.Errorf("%q should match %q (generalization semantics)", pc.g, pc.s)
		}
	}
}
