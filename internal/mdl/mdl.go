// Package mdl implements the Minimum Description Length ranking of atomic
// transformation plans (paper §6.3, Eq. 3–6). The plan with the smallest
// description length is presented as the default; the k next-best plans are
// kept as repair alternatives (§6.4).
package mdl

import (
	"math"
	"sort"

	"clx/internal/align"
	"clx/internal/pattern"
	"clx/internal/unifi"
)

// PrintableChars is c in Eq. 5: the size of the printable character set used
// to encode ConstStr parameters.
const PrintableChars = 95

// OpCost returns log L(f) of Eq. 5 for a single operator: 2·log|Pcand| for
// an Extract and |s̃|·log c for a ConstStr. Logarithms are base 2 (bits).
func OpCost(op unifi.Op, sourceLen int) float64 {
	switch op := op.(type) {
	case unifi.Extract:
		if sourceLen < 2 {
			sourceLen = 2 // log 1 = 0 would make all extracts free
		}
		return 2 * math.Log2(float64(sourceLen))
	case unifi.ConstStr:
		return float64(len(op.S)) * math.Log2(PrintableChars)
	}
	return math.Inf(1)
}

// PlanDL returns L(E, T) = L(E) + L(T|E) of Eq. 3: the model length
// |E|·log m (m = number of distinct operator types used by the plan) plus
// the sum of operator parameter costs.
func PlanDL(p unifi.Plan, sourceLen int) float64 {
	var hasExtract, hasConst bool
	data := 0.0
	for _, op := range p.Ops {
		switch op.(type) {
		case unifi.Extract:
			hasExtract = true
		case unifi.ConstStr:
			hasConst = true
		}
		data += OpCost(op, sourceLen)
	}
	m := 0
	if hasExtract {
		m++
	}
	if hasConst {
		m++
	}
	if m == 0 {
		return 0
	}
	model := float64(len(p.Ops)) * math.Log2(float64(m))
	return model + data
}

// Ranked is a plan with its description length and ranking metadata.
type Ranked struct {
	Plan unifi.Plan
	DL   float64
	// Monotone records whether the plan's extracts read the source
	// strictly left to right; monotone plans rank first (see TopK).
	Monotone bool
	// NoReuse records whether no source token is extracted twice; among
	// non-monotone plans, reorderings rank above token-reusing plans.
	NoReuse bool
	// LitExtracts counts multi-character literal source tokens the plan
	// copies into the target; plans copying less boilerplate rank higher.
	LitExtracts int
}

// TopK enumerates complete transformation plans of the alignment DAG
// against the source pattern and returns up to k of them ordered by the
// composite ranking documented on Ranked. Ties are broken by preferring
// plans with fewer operators, then plans whose extracts read the source
// left to right at earlier positions — the "good guess" order noted in
// §6.4.
//
// Enumeration uses dynamic programming over the DAG with an additive
// per-operator bound (each op charged log 2 + OpCost), then reranks the
// candidate pool with the exact non-additive formula of Eq. 3. The pool is
// overprovisioned (4k+8 suffixes per node) so the exact top k is recovered
// in all practical cases.
func TopK(d *align.DAG, src pattern.Pattern, k int) []Ranked {
	sourceLen := src.Len()
	if k <= 0 {
		return nil
	}
	pool := k*4 + 8
	// suffix[i] holds the best partial plans from node i to node N.
	type partial struct {
		ops  []unifi.Op
		cost float64
	}
	suffix := make([][]partial, d.N+1)
	suffix[d.N] = []partial{{}}
	outEdges := make(map[int][]align.Edge)
	for _, e := range d.Edges() {
		outEdges[e.From] = append(outEdges[e.From], e)
	}
	for i := d.N - 1; i >= 0; i-- {
		var cands []partial
		for _, e := range outEdges[i] {
			for _, op := range d.Ops[e] {
				c := 1 + OpCost(op, sourceLen) // log2(2) = 1 per op bound
				for _, tail := range suffix[e.To] {
					ops := make([]unifi.Op, 0, 1+len(tail.ops))
					ops = append(ops, op)
					ops = append(ops, tail.ops...)
					cands = append(cands, partial{ops, c + tail.cost})
				}
			}
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].cost != cands[b].cost {
				return cands[a].cost < cands[b].cost
			}
			return lessOps(cands[a].ops, cands[b].ops)
		})
		if len(cands) > pool {
			cands = cands[:pool]
		}
		suffix[i] = cands
	}
	out := make([]Ranked, 0, len(suffix[0]))
	for _, p := range suffix[0] {
		plan := unifi.Plan{Ops: p.ops}
		out = append(out, Ranked{
			Plan:        plan,
			DL:          PlanDL(plan, sourceLen),
			Monotone:    Monotone(plan),
			NoReuse:     noReuse(plan),
			LitExtracts: litExtracts(plan, src),
		})
	}
	sort.SliceStable(out, func(a, b int) bool {
		// Monotone plans — extracts reading the source strictly left to
		// right — rank above non-monotone ones regardless of DL. Pure
		// Eq-3 MDL can otherwise prefer degenerate plans that reuse one
		// source span repeatedly (a single-op-type plan pays no model
		// bits); reading order is the "good guess" §6.4 relies on, and
		// the reordered alternatives remain available for repair. Among
		// non-monotone plans, those that never extract the same source
		// token twice (field reorderings like "Last, F.") rank above
		// token-reusing ones. Plans extracting fewer constant (literal)
		// source tokens rank higher: the variable parts of a format carry
		// its data, the frozen boilerplate ('University', 'of') rarely
		// does — and a plan extracting only literals always has an
		// equivalent ConstStr form, so this costs nothing elsewhere.
		if out[a].Monotone != out[b].Monotone {
			return out[a].Monotone
		}
		if out[a].NoReuse != out[b].NoReuse {
			return out[a].NoReuse
		}
		if out[a].LitExtracts != out[b].LitExtracts {
			return out[a].LitExtracts < out[b].LitExtracts
		}
		if out[a].DL != out[b].DL {
			return out[a].DL < out[b].DL
		}
		if len(out[a].Plan.Ops) != len(out[b].Plan.Ops) {
			return len(out[a].Plan.Ops) < len(out[b].Plan.Ops)
		}
		return lessOps(out[a].Plan.Ops, out[b].Plan.Ops)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// litExtracts counts, across the plan's extracts, how many multi-character
// literal source tokens are pulled into the target. Single-character
// punctuation literals (separators spanned by a combined extract) are not
// counted — spanning a '/' is normal, copying 'University' is suspicious.
func litExtracts(p unifi.Plan, src pattern.Pattern) int {
	n := 0
	for _, op := range p.Ops {
		e, ok := op.(unifi.Extract)
		if !ok {
			continue
		}
		for j := e.I; j <= e.J && j <= src.Len(); j++ {
			t := src.At(j - 1)
			if t.IsLiteral() && len(t.Lit) > 1 {
				n++
			}
		}
	}
	return n
}

// noReuse reports whether no source token is extracted more than once.
func noReuse(p unifi.Plan) bool {
	used := make(map[int]bool)
	for _, op := range p.Ops {
		e, ok := op.(unifi.Extract)
		if !ok {
			continue
		}
		for j := e.I; j <= e.J; j++ {
			if used[j] {
				return false
			}
			used[j] = true
		}
	}
	return true
}

// Monotone reports whether the plan's extracts read the source pattern
// strictly left to right: each extract starts after the previous one ends.
func Monotone(p unifi.Plan) bool {
	last := 0
	for _, op := range p.Ops {
		e, ok := op.(unifi.Extract)
		if !ok {
			continue
		}
		if e.I <= last {
			return false
		}
		last = e.J
	}
	return true
}

// lessOps orders operator sequences preferring in-order, early source
// positions: the deterministic tie-break for equal description lengths.
func lessOps(a, b []unifi.Op) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		ka, kb := opKey(a[i]), opKey(b[i])
		for d := 0; d < len(ka); d++ {
			if ka[d] != kb[d] {
				return ka[d] < kb[d]
			}
		}
	}
	return len(a) < len(b)
}

func opKey(op unifi.Op) [3]int {
	switch op := op.(type) {
	case unifi.Extract:
		return [3]int{0, op.I, op.J}
	case unifi.ConstStr:
		return [3]int{1, len(op.S), 0}
	}
	return [3]int{2, 0, 0}
}
