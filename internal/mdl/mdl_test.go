package mdl

import (
	"math"
	"testing"

	"clx/internal/align"
	"clx/internal/pattern"
	"clx/internal/unifi"
)

func TestOpCost(t *testing.T) {
	if got := OpCost(unifi.Extract{I: 1, J: 3}, 5); math.Abs(got-2*math.Log2(5)) > 1e-9 {
		t.Errorf("Extract cost = %v, want 2·log2(5)", got)
	}
	if got := OpCost(unifi.ConstStr{S: "ab"}, 5); math.Abs(got-2*math.Log2(95)) > 1e-9 {
		t.Errorf("ConstStr cost = %v, want 2·log2(95)", got)
	}
}

// Paper Example 9: the single-extract plan must have a strictly smaller
// description length than the three-operator plan.
func TestExample9Ranking(t *testing.T) {
	const srcLen = 5 // <D>2'/'<D>2'/'<D>4
	e1 := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 3}}}
	e2 := unifi.Plan{Ops: []unifi.Op{
		unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: "/"}, unifi.Extract{I: 3, J: 3},
	}}
	d1, d2 := PlanDL(e1, srcLen), PlanDL(e2, srcLen)
	if d1 >= d2 {
		t.Errorf("DL(E1)=%v not < DL(E2)=%v", d1, d2)
	}
	// E1 uses a single op type: model length is zero.
	if want := 2 * math.Log2(5); math.Abs(d1-want) > 1e-9 {
		t.Errorf("DL(E1) = %v, want %v", d1, want)
	}
	// E2 uses both op types: |E| log 2 + 2 extracts + one 1-char const.
	want := 3 + 2*(2*math.Log2(5)) + math.Log2(95)
	if math.Abs(d2-want) > 1e-9 {
		t.Errorf("DL(E2) = %v, want %v", d2, want)
	}
}

func TestPlanDLEmpty(t *testing.T) {
	if got := PlanDL(unifi.Plan{}, 5); got != 0 {
		t.Errorf("empty plan DL = %v, want 0", got)
	}
}

func TestTopKExample9(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2'/'<D>4")
	tgt := pattern.MustParse("<D>2'/'<D>2")
	d := align.Align(tgt, src)
	ranked := TopK(d, src, 5)
	if len(ranked) == 0 {
		t.Fatal("no plans found")
	}
	want := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 3}}}
	if !ranked[0].Plan.Equal(want) {
		t.Errorf("top plan = %s, want %s", ranked[0].Plan, want)
	}
	// All returned plans are valid (apply without error and produce a
	// string matching the target) and sorted by DL.
	for i, r := range ranked {
		out, err := r.Plan.Apply(src, "31/12/2019")
		if err != nil {
			t.Errorf("plan %d (%s) failed: %v", i, r.Plan, err)
			continue
		}
		if !tgt.Matches(out) {
			t.Errorf("plan %d output %q does not match target", i, out)
		}
		if i > 0 && r.DL < ranked[i-1].DL {
			t.Errorf("plans not sorted: DL[%d]=%v < DL[%d]=%v", i, r.DL, i-1, ranked[i-1].DL)
		}
	}
}

// The top-k list contains the semantically distinct date alternatives
// Extract(1,3) (keep DD/MM) and Extract(3,5) (keep MM/YY... here MM/YYYY is
// invalid; the other two-digit pair) — i.e. ambiguity is preserved for
// repair (§6.4).
func TestTopKKeepsAlternatives(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2'/'<D>2")
	tgt := pattern.MustParse("<D>2'/'<D>2")
	d := align.Align(tgt, src)
	ranked := TopK(d, src, 10)
	var found13, found35 bool
	for _, r := range ranked {
		if r.Plan.Equal(unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 3}}}) {
			found13 = true
		}
		if r.Plan.Equal(unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 3, J: 5}}}) {
			found35 = true
		}
	}
	if !found13 || !found35 {
		t.Errorf("alternatives missing: Extract(1,3)=%v Extract(3,5)=%v; plans:", found13, found35)
		for _, r := range ranked {
			t.Logf("  %s (DL %.2f)", r.Plan, r.DL)
		}
	}
	// Deterministic tie-break: the in-order Extract(1,3) ranks above
	// Extract(3,5).
	if ranked[0].Plan.Equal(unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 3, J: 5}}}) {
		t.Error("tie-break should prefer the in-order extract")
	}
}

func TestTopKIncompleteDAG(t *testing.T) {
	d := align.Align(pattern.MustParse("<D>3"), pattern.MustParse("<U>3"))
	if got := TopK(d, pattern.MustParse("<U>3"), 5); len(got) != 0 {
		t.Errorf("plans = %v, want none for incomplete DAG", got)
	}
}

func TestTopKZero(t *testing.T) {
	src := pattern.MustParse("<D>2")
	d := align.Align(src, src)
	if got := TopK(d, src, 0); got != nil {
		t.Errorf("TopK(k=0) = %v, want nil", got)
	}
}

// Exhaustive check on a small DAG: TopK's first result equals the true
// minimum over all full paths.
func TestTopKMatchesExhaustive(t *testing.T) {
	src := pattern.MustParse("<U>+' '<U>+' '<D>4")
	tgt := pattern.MustParse("<U>+'-'<U>+")
	d := align.Align(tgt, src)
	ranked := TopK(d, src, 50)
	if len(ranked) == 0 {
		t.Fatal("no plans")
	}
	var all []unifi.Plan
	var walk func(node int, acc []unifi.Op)
	walk = func(node int, acc []unifi.Op) {
		if node == d.N {
			ops := make([]unifi.Op, len(acc))
			copy(ops, acc)
			all = append(all, unifi.Plan{Ops: ops})
			return
		}
		for _, e := range d.Edges() {
			if e.From != node {
				continue
			}
			for _, op := range d.Ops[e] {
				walk(e.To, append(acc, op))
			}
		}
	}
	walk(0, nil)
	if len(all) == 0 {
		t.Fatal("exhaustive walk found no plans")
	}
	// The top plan must be the minimum-DL plan within the preferred
	// (monotone, when any exist) stratum.
	best := math.Inf(1)
	anyMonotone := false
	for _, p := range all {
		anyMonotone = anyMonotone || Monotone(p)
	}
	for _, p := range all {
		if anyMonotone && !Monotone(p) {
			continue
		}
		if dl := PlanDL(p, src.Len()); dl < best {
			best = dl
		}
	}
	if ranked[0].Monotone != anyMonotone {
		t.Errorf("top plan monotone = %v, want %v", ranked[0].Monotone, anyMonotone)
	}
	if math.Abs(ranked[0].DL-best) > 1e-9 {
		t.Errorf("TopK best DL = %v, exhaustive best = %v", ranked[0].DL, best)
	}
	if want := min(len(all), 50); len(ranked) != want {
		t.Errorf("TopK returned %d plans, want %d (exhaustive found %d)",
			len(ranked), want, len(all))
	}
}
