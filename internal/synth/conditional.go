// Conditional plan synthesis — the §7.4 extension. When no single atomic
// transformation plan is correct for every row of a source pattern, the
// rows may still split cleanly on the *content* of one source token
// ("picture" rows vs "invoice" rows). ConditionalSplit discovers such a
// split and returns one guarded case per group, each synthesized against
// the group's own desired pattern (whose constants — 'PIC', 'DOC' — only
// emerge within the group).
package synth

import (
	"sort"

	"clx/internal/align"
	"clx/internal/cluster"
	"clx/internal/mdl"
	"clx/internal/pattern"
	"clx/internal/unifi"
)

// MaxConditionalGroups bounds how many guarded cases a split may produce;
// beyond this the "conditional" is really per-row patching and is rejected.
const MaxConditionalGroups = 4

// ConditionalSplit tries to cover the (input, want) rows of one source
// pattern with content-guarded cases. It returns the guarded cases and
// true on success: every row transformed correctly by the first applicable
// case. opts follows Synthesize.
func ConditionalSplit(src pattern.Pattern, inputs, wants []string, opts Options) ([]unifi.GuardedCase, bool) {
	if len(inputs) == 0 || len(inputs) != len(wants) {
		return nil, false
	}
	if opts.K <= 0 {
		opts.K = DefaultOptions().K
	}
	// When one unconditional plan covers every row, no guard is needed.
	all := make([]int, len(inputs))
	for i := range all {
		all[i] = i
	}
	if plan, ok := planForGroup(src, inputs, wants, all, opts); ok {
		return []unifi.GuardedCase{{Source: src, Plan: plan}}, true
	}
	// Try each source token position as the discriminator: group rows by
	// that token's content and synthesize one plan per group against the
	// group's own target pattern.
	for ti := 1; ti <= src.Len(); ti++ {
		groups, ok := groupByToken(src, inputs, ti)
		if !ok || len(groups) < 2 || len(groups) > MaxConditionalGroups {
			continue
		}
		cases := make([]unifi.GuardedCase, 0, len(groups))
		solved := true
		for _, g := range groups {
			plan, ok := planForGroup(src, inputs, wants, g.rows, opts)
			if !ok {
				solved = false
				break
			}
			cases = append(cases, unifi.GuardedCase{
				Source: src,
				Guard:  unifi.TokenIs{I: ti, Value: g.value},
				Plan:   plan,
			})
		}
		if solved {
			return cases, true
		}
	}
	return nil, false
}

type tokenGroup struct {
	value string
	rows  []int
}

// groupByToken groups row indices by the content of source token ti.
func groupByToken(src pattern.Pattern, inputs []string, ti int) ([]tokenGroup, bool) {
	byValue := map[string][]int{}
	var order []string
	for i, s := range inputs {
		spans, ok := src.Match(s)
		if !ok || ti > len(spans) {
			return nil, false
		}
		v := s[spans[ti-1].Start:spans[ti-1].End]
		if _, seen := byValue[v]; !seen {
			order = append(order, v)
		}
		byValue[v] = append(byValue[v], i)
	}
	sort.Strings(order)
	out := make([]tokenGroup, 0, len(order))
	for _, v := range order {
		out = append(out, tokenGroup{value: v, rows: byValue[v]})
	}
	return out, true
}

// planForGroup derives the group's target pattern from its desired outputs
// (constant discovery scoped to the group, so shared prefixes like 'PIC'
// freeze) and returns the first ranked plan correct for every group row.
func planForGroup(src pattern.Pattern, inputs, wants []string, rows []int, opts Options) (unifi.Plan, bool) {
	groupWants := make([]string, len(rows))
	for k, i := range rows {
		groupWants[k] = wants[i]
	}
	// Constants freeze only with two witnesses: from a single row it is
	// impossible to tell constant boilerplate from variable content, and a
	// frozen variable would memorize the row instead of generalizing.
	copts := cluster.DefaultOptions()
	copts.MinConstantSupport = 2
	copts.MinConstantRatio = 1
	cs := cluster.Initial(groupWants, copts)
	if len(cs) != 1 {
		return unifi.Plan{}, false // group outputs are not one format
	}
	// Try the exact target first, then its '+'-generalization: a '+'
	// source token can only produce a '+' target token (the CanProduce
	// soundness rule), so variable-width extractions need the generalized
	// form.
	targets := []pattern.Pattern{cs[0].Pattern, cluster.Generalize(cs[0].Pattern, cluster.QuantToPlus)}
	pool := opts.K * 8
	if pool < 64 {
		pool = 64
	}
	for _, target := range targets {
		var dag *align.DAG
		if opts.DisableCombine {
			dag = align.AlignSingle(target, src)
		} else {
			dag = align.Align(target, src)
		}
		if !dag.Complete() {
			continue
		}
		for _, r := range Dedup(mdl.TopK(dag, src, pool), src) {
			ok := true
			for _, i := range rows {
				out, err := r.Plan.Apply(src, inputs[i])
				if err != nil || out != wants[i] {
					ok = false
					break
				}
			}
			if ok {
				return r.Plan, true
			}
		}
	}
	return unifi.Plan{}, false
}
