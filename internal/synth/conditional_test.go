package synth

import (
	"strings"
	"testing"

	"clx/internal/pattern"
	"clx/internal/unifi"
)

// The FlashFill "Example 13" analogue (benchsuite ff-ex13-picture): same
// source pattern, output constant depends on a keyword. Inexpressible in
// plain UniFi; solvable with the §7.4 guard extension.
func TestConditionalSplitPicture(t *testing.T) {
	src := pattern.MustParse("<L>7' '<D>3")
	inputs := []string{
		"picture 001", "invoice 001", "picture 002", "invoice 002",
	}
	wants := []string{
		"PIC-001", "DOC-001", "PIC-002", "DOC-002",
	}
	cases, ok := ConditionalSplit(src, inputs, wants, DefaultOptions())
	if !ok {
		t.Fatal("ConditionalSplit failed")
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(cases))
	}
	prog := unifi.GuardedProgram{Cases: cases}
	for i, in := range inputs {
		out, err := prog.Apply(in)
		if err != nil || out != wants[i] {
			t.Errorf("Apply(%q) = %q, %v; want %q", in, out, err, wants[i])
		}
	}
	// The program generalizes: new ids of known keywords work; unknown
	// keywords are rejected, not guessed.
	out, err := prog.Apply("picture 777")
	if err != nil || out != "PIC-777" {
		t.Errorf("novel picture row = %q, %v", out, err)
	}
	if _, err := prog.Apply("receipt 001"); err == nil {
		t.Error("unknown keyword should not match any guard")
	}
	// Guards render readably.
	if s := prog.String(); !strings.Contains(s, `token 1 is "picture"`) {
		t.Errorf("program rendering lacks guard: %s", s)
	}
}

func TestConditionalSplitRejectsUnsplittable(t *testing.T) {
	src := pattern.MustParse("<L>3")
	// Every row needs a different output and there are more distinct
	// values than MaxConditionalGroups.
	inputs := []string{"aaa", "bbb", "ccc", "ddd", "eee"}
	wants := []string{"1", "2", "3", "4", "5"}
	if _, ok := ConditionalSplit(src, inputs, wants, DefaultOptions()); ok {
		t.Error("per-row patching should not pass as a conditional")
	}
}

func TestConditionalSplitUnconditionalWhenPossible(t *testing.T) {
	// When one plan covers every row, a single unguarded case comes back.
	src := pattern.MustParse("<L>3' '<D>2")
	inputs := []string{"abc 12", "abc 34"}
	wants := []string{"12", "34"}
	cases, ok := ConditionalSplit(src, inputs, wants, DefaultOptions())
	if !ok || len(cases) != 1 || cases[0].Guard != nil {
		t.Errorf("cases = %v ok = %v, want one unguarded case", cases, ok)
	}
}

func TestConditionalSplitMismatchedRows(t *testing.T) {
	src := pattern.MustParse("<L>3")
	if _, ok := ConditionalSplit(src, []string{"abc"}, nil, DefaultOptions()); ok {
		t.Error("misaligned inputs/wants should fail")
	}
	if _, ok := ConditionalSplit(src, nil, nil, DefaultOptions()); ok {
		t.Error("empty rows should fail")
	}
}

func TestGuardTokenIs(t *testing.T) {
	src := pattern.MustParse("<L>+' '<D>+")
	g := unifi.TokenIs{I: 1, Value: "picture"}
	if !g.Holds(src, "picture 001") {
		t.Error("guard should hold")
	}
	if g.Holds(src, "invoice 001") {
		t.Error("guard should not hold")
	}
	if g.Holds(src, "no-match!") {
		t.Error("guard on non-matching string should not hold")
	}
	if (unifi.TokenIs{I: 99, Value: "x"}).Holds(src, "picture 001") {
		t.Error("out-of-range token index should not hold")
	}
}

func TestGuardedProgramLift(t *testing.T) {
	prog := unifi.Program{Cases: []unifi.Case{{
		Source: pattern.MustParse("<D>2"),
		Plan:   unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 1}}},
	}}}
	gp := prog.Lift()
	out, err := gp.Apply("42")
	if err != nil || out != "42" {
		t.Errorf("lifted program Apply = %q, %v", out, err)
	}
	if _, err := gp.Apply("xx"); err == nil {
		t.Error("lifted program matched garbage")
	}
}
