package synth

import (
	"testing"

	"clx/internal/cluster"
	"clx/internal/mdl"
	"clx/internal/pattern"
	"clx/internal/unifi"
)

func profile(data ...string) *cluster.Hierarchy {
	return cluster.Profile(data, cluster.DefaultOptions())
}

// Paper Example 7: validate via token-frequency count.
func TestValidateExample7(t *testing.T) {
	target := pattern.MustParse("'['<U>+'-'<D>+']'")
	ok := pattern.MustParse("'['<U>3'-'<D>5")
	rejected := pattern.MustParse("'['<U>3'-'")
	if !Validate(ok, target, false) {
		t.Errorf("Validate(%s) = false, want true", ok)
	}
	if Validate(rejected, target, false) {
		t.Errorf("Validate(%s) = true, want false", rejected)
	}
}

func TestValidateTooGeneral(t *testing.T) {
	// §6.1 reason 3: "<AN>+','<AN>+" is not a candidate for
	// "<U><L>+':'<D>+" because it lacks <U>, <L> and <D> counts.
	src := pattern.MustParse("<AN>+','<AN>+")
	target := pattern.MustParse("<U><L>+':'<D>+")
	if Validate(src, target, false) {
		t.Error("over-general pattern should be rejected")
	}
}

func TestValidateHierarchical(t *testing.T) {
	src := pattern.MustParse("<U>2<L>3")
	target := pattern.MustParse("<A>4")
	if Validate(src, target, false) {
		t.Error("exact counting should reject <A> target vs <U>/<L> source")
	}
	if !Validate(src, target, true) {
		t.Error("hierarchical counting should accept")
	}
}

// End-to-end phone normalization (paper §2, Figures 1–4).
func TestSynthesizePhones(t *testing.T) {
	data := []string{
		"(734) 645-8397",
		"(734)586-7252",
		"734-422-8073",
		"734.236.3466",
		"(313) 263-1192",
		"248 555 1234",
	}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	res := Synthesize(profile(data...), target, DefaultOptions())
	if len(res.CleanRows) != 1 || res.CleanRows[0] != 2 {
		t.Errorf("CleanRows = %v, want [2]", res.CleanRows)
	}
	if len(res.UnmatchedRows) != 0 {
		t.Errorf("UnmatchedRows = %v, want none", res.UnmatchedRows)
	}
	out, flagged := res.Transform()
	want := []string{
		"734-645-8397", "734-586-7252", "734-422-8073",
		"734-236-3466", "313-263-1192", "248-555-1234",
	}
	if len(flagged) != 0 {
		t.Errorf("flagged = %v, want none", flagged)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

// Paper Example 5: medical billing codes with the target labeled at
// hierarchy level 1 ("[CPT-XXXX]" with '+' quantifiers).
func TestSynthesizeMedicalCodes(t *testing.T) {
	data := []string{"CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"}
	target := pattern.MustParse("'['<U>+'-'<D>+']'")
	res := Synthesize(profile(data...), target, DefaultOptions())
	out, flagged := res.Transform()
	want := []string{"[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"}
	if len(flagged) != 0 {
		t.Errorf("flagged = %v, want none", flagged)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want[i])
		}
	}
}

func TestUnmatchedFlagged(t *testing.T) {
	data := []string{"734-422-8073", "(734) 645-8397", "N/A"}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	res := Synthesize(profile(data...), target, DefaultOptions())
	if len(res.UnmatchedRows) != 1 || res.UnmatchedRows[0] != 2 {
		t.Errorf("UnmatchedRows = %v, want [2]", res.UnmatchedRows)
	}
	out, flagged := res.Transform()
	if out[2] != "N/A" {
		t.Errorf("unmatched row mutated: %q", out[2])
	}
	if len(flagged) != 1 || flagged[0] != 2 {
		t.Errorf("flagged = %v, want [2]", flagged)
	}
}

// Appendix B example: [Extract(3),ConstStr('/'),Extract(1)] is equivalent to
// [Extract(3),Extract(2),Extract(1)] when source token 2 is the literal '/'.
func TestDedupEquivalentPlans(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2")
	e1 := unifi.Plan{Ops: []unifi.Op{
		unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "/"}, unifi.Extract{I: 1, J: 1},
	}}
	e2 := unifi.Plan{Ops: []unifi.Op{
		unifi.Extract{I: 3, J: 3}, unifi.Extract{I: 2, J: 2}, unifi.Extract{I: 1, J: 1},
	}}
	e3 := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 3}}}
	in := []mdl.Ranked{{Plan: e3, DL: 1}, {Plan: e1, DL: 2}, {Plan: e2, DL: 3}}
	out := Dedup(in, src)
	if len(out) != 2 {
		t.Fatalf("Dedup kept %d plans, want 2: %v", len(out), out)
	}
	if !out[0].Plan.Equal(e3) || !out[1].Plan.Equal(e1) {
		t.Errorf("Dedup kept %s, %s; want E3, E1", out[0].Plan, out[1].Plan)
	}
}

// Multi-token extracts split before comparison: Extract(1,3) is equivalent
// to [Extract(1),ConstStr('/'),Extract(3)].
func TestDedupSplitsExtracts(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2")
	a := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 3}}}
	b := unifi.Plan{Ops: []unifi.Op{
		unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: "/"}, unifi.Extract{I: 3, J: 3},
	}}
	out := Dedup([]mdl.Ranked{{Plan: a}, {Plan: b}}, src)
	if len(out) != 1 {
		t.Errorf("Dedup kept %d plans, want 1", len(out))
	}
}

func TestDedupKeepsDistinct(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2")
	a := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 1}}}
	b := unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 3, J: 3}}}
	out := Dedup([]mdl.Ranked{{Plan: a}, {Plan: b}}, src)
	if len(out) != 2 {
		t.Errorf("Dedup kept %d plans, want 2 (semantically different extracts)", len(out))
	}
}

// §6.4: date-field ambiguity is repairable — the correct plan is among the
// ranked alternatives.
func TestRepairDateAmbiguity(t *testing.T) {
	data := []string{"31/12/2019", "28/02/2020", "12-31-2019"}
	// Target: MM-DD-YYYY style <D>2'-'<D>2'-'<D>4.
	target := pattern.MustParse("<D>2'-'<D>2'-'<D>4")
	res := Synthesize(profile(data...), target, DefaultOptions())
	if len(res.Sources) != 1 {
		t.Fatalf("sources = %d, want 1", len(res.Sources))
	}
	s := res.Sources[0]
	// The correct plan swaps day and month: Extract(3),'-',Extract(1),'-',Extract(5).
	wantPlan := unifi.Plan{Ops: []unifi.Op{
		unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "-"},
		unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: "-"},
		unifi.Extract{I: 5, J: 5},
	}}
	found := -1
	for i, r := range s.Plans {
		if r.Plan.Equal(wantPlan) {
			found = i
		}
	}
	if found < 0 {
		t.Fatalf("correct swap plan not among %d alternatives", len(s.Plans))
	}
	if err := res.Repair(0, found); err != nil {
		t.Fatal(err)
	}
	out, _ := res.Transform()
	if out[0] != "12-31-2019" {
		t.Errorf("after repair, out[0] = %q, want 12-31-2019", out[0])
	}
}

func TestRepairErrors(t *testing.T) {
	data := []string{"12/34", "56-78"}
	target := pattern.MustParse("<D>2'-'<D>2")
	res := Synthesize(profile(data...), target, DefaultOptions())
	if err := res.Repair(99, 0); err == nil {
		t.Error("Repair with bad source index should error")
	}
	if len(res.Sources) > 0 {
		if err := res.Repair(0, 999); err == nil {
			t.Error("Repair with bad plan index should error")
		}
	}
}

// The hierarchy lets one source candidate cover several leaf patterns: the
// two parenthesized phone formats share the level-1 parent.
func TestHierarchySimplifiesProgram(t *testing.T) {
	data := []string{
		"(734) 645-8397", "(313) 263-1192", // '('<D>3')'' '<D>3'-'<D>4
		"(734)586-7252", "(313)555-0101", // '('<D>3')'<D>3'-'<D>4
		"734-422-8073",
	}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	res := Synthesize(profile(data...), target, DefaultOptions())
	// Both parenthesized formats have distinct fixed patterns; the level-1
	// parents differ too ('(' <D>+ ')' ' ' ... vs without space), so we
	// expect one source per format — but each format's rows must all be
	// covered and transform correctly.
	out, flagged := res.Transform()
	if len(flagged) != 0 {
		t.Fatalf("flagged = %v", flagged)
	}
	for i, want := range []string{
		"734-645-8397", "313-263-1192", "734-586-7252", "313-555-0101", "734-422-8073",
	} {
		if out[i] != want {
			t.Errorf("out[%d] = %q, want %q", i, out[i], want)
		}
	}
}

func TestProgramAssembly(t *testing.T) {
	data := []string{"12/34", "99-00"}
	target := pattern.MustParse("<D>2'-'<D>2")
	res := Synthesize(profile(data...), target, DefaultOptions())
	prog := res.Program()
	if len(prog.Cases) != len(res.Sources) {
		t.Errorf("program cases = %d, want %d", len(prog.Cases), len(res.Sources))
	}
	got, err := prog.Apply("12/34")
	if err != nil || got != "12-34" {
		t.Errorf("Apply = %q, %v; want 12-34", got, err)
	}
}

// Ablation hooks: disabling validate still synthesizes correct programs
// (alignment completeness still filters), just more slowly.
func TestDisableValidate(t *testing.T) {
	data := []string{"734.236.3466", "734-422-8073"}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	opts := DefaultOptions()
	opts.DisableValidate = true
	res := Synthesize(profile(data...), target, opts)
	out, flagged := res.Transform()
	if len(flagged) != 0 || out[0] != "734-236-3466" {
		t.Errorf("out = %v flagged = %v", out, flagged)
	}
}

// Disabling sequential-extract combining still yields correct output here
// (plans just use more operators).
func TestDisableCombine(t *testing.T) {
	data := []string{"12/34/5678", "12-34-5678"}
	target := pattern.MustParse("<D>2'-'<D>2'-'<D>4")
	opts := DefaultOptions()
	opts.DisableCombine = true
	res := Synthesize(profile(data...), target, opts)
	out, flagged := res.Transform()
	if len(flagged) != 0 || out[0] != "12-34-5678" {
		t.Errorf("out = %v flagged = %v", out, flagged)
	}
	if len(res.Sources) != 1 {
		t.Fatalf("sources = %d", len(res.Sources))
	}
	for _, op := range res.Sources[0].Plan().Ops {
		if e, ok := op.(unifi.Extract); ok && e.J > e.I {
			t.Errorf("combined extract %v present despite DisableCombine", e)
		}
	}
}

// Property (Theorem A.1 soundness at program level): every ranked plan of
// every source produces output matching the target on that source's rows.
func TestAllRankedPlansSound(t *testing.T) {
	data := []string{
		"(734) 645-8397", "(734)586-7252", "734.236.3466",
		"248 555 1234", "734-422-8073",
	}
	target := pattern.MustParse("<D>3'-'<D>3'-'<D>4")
	res := Synthesize(profile(data...), target, DefaultOptions())
	for _, s := range res.Sources {
		for _, leaf := range s.Node.Leaves {
			for _, ri := range leaf.Rows {
				for pi, r := range s.Plans {
					out, err := r.Plan.Apply(s.Source, data[ri])
					if err != nil {
						t.Errorf("source %s plan %d on %q: %v", s.Source, pi, data[ri], err)
						continue
					}
					if !target.Matches(out) {
						t.Errorf("source %s plan %d on %q produced %q (not target)",
							s.Source, pi, data[ri], out)
					}
				}
			}
		}
	}
}
