// Package synth implements the UniFi program synthesis of paper §6
// (Algorithm 2): it traverses the pattern cluster hierarchy top-down,
// validates candidate source patterns with the token-frequency count
// (Eq. 1–2), aligns each candidate against the target (Algorithm 3), ranks
// the resulting atomic transformation plans by description length (§6.3),
// deduplicates equivalent plans (Appendix B), and assembles the final
// Switch program. Program repair (§6.4) replaces a source's default plan
// with one of its ranked alternatives.
package synth

import (
	"fmt"
	"sync/atomic"

	"clx/internal/align"
	"clx/internal/cluster"
	"clx/internal/mdl"
	"clx/internal/parallel"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/token"
	"clx/internal/unifi"
)

// Options configure synthesis.
type Options struct {
	// K is the number of ranked transformation plans kept per source
	// pattern, including the default (paper: "we also list the other k
	// transformation plans with lowest description lengths").
	K int
	// HierarchicalCount makes validate credit subsumed classes (<U>/<L>
	// count toward <A>); the paper counts classes exactly. Ablation option.
	HierarchicalCount bool
	// DisableValidate skips the Eq-2 pruning and descends to leaves,
	// attempting alignment everywhere. Ablation option.
	DisableValidate bool
	// DisableCombine uses single-token alignment only (no sequential
	// extract combining). Ablation option.
	DisableCombine bool
	// Workers bounds the goroutine fan-out of synthesis and transform: the
	// per-source trySolve calls of Algorithm 2 are independent, as are the
	// per-row applications of the synthesized program. 0 means one worker
	// per CPU, 1 runs serially. Output is byte-identical for every worker
	// count.
	Workers int
}

// DefaultOptions returns the options used by the CLX prototype.
func DefaultOptions() Options { return Options{K: 12} }

// SourceSynthesis is the synthesis outcome for one candidate source pattern.
type SourceSynthesis struct {
	// Source is the candidate source pattern (a node of the hierarchy).
	Source pattern.Pattern
	// Node is the hierarchy node the pattern came from.
	Node *cluster.Node
	// Plans are the deduplicated transformation plans in ascending
	// description-length order; Plans[Chosen] is in effect.
	Plans []mdl.Ranked
	// Chosen indexes the currently selected plan (0 = MDL default).
	Chosen int
}

// Plan returns the currently selected plan.
func (s *SourceSynthesis) Plan() unifi.Plan { return s.Plans[s.Chosen].Plan }

// Result is the outcome of Synthesize.
type Result struct {
	// Target is the labeled target pattern.
	Target pattern.Pattern
	// Sources are the solved source candidates in hierarchy traversal
	// order (Qsolved of Algorithm 2).
	Sources []*SourceSynthesis
	// CleanRows are input rows that already match the target pattern and
	// are left untouched.
	CleanRows []int
	// UnmatchedRows are input rows covered by no source candidate; they
	// are left unchanged and flagged for review (§6.1).
	UnmatchedRows []int
	// Hierarchy is the profiled input.
	Hierarchy *cluster.Hierarchy

	opts Options
}

// synthesizeCalls counts Synthesize invocations process-wide. The
// verify-once / apply-many split promises that serving a stored program
// never re-runs Algorithm 2; tests pin that promise by reading the counter
// around an apply path.
var synthesizeCalls atomic.Int64

// SynthesizeCalls returns the number of Synthesize (Algorithm 2) runs in
// this process.
func SynthesizeCalls() int64 { return synthesizeCalls.Load() }

// Synthesize runs Algorithm 2 over the hierarchy h with the labeled target
// pattern.
func Synthesize(h *cluster.Hierarchy, target pattern.Pattern, opts Options) *Result {
	synthesizeCalls.Add(1)
	if opts.K <= 0 {
		opts.K = DefaultOptions().K
	}
	res := &Result{Target: target, Hierarchy: h, opts: opts}

	// Clean-row detection matches every row against one pattern: shard the
	// rows, share one cached compiled target across shards (and with the
	// later Transform).
	tgt := rematch.CompileCached(target.Tokens())
	clean := make([]bool, len(h.Data))
	parallel.For(opts.Workers, len(h.Data), func(i int) {
		clean[i] = tgt.Matches(h.Data[i])
	})
	for i, c := range clean {
		if c {
			res.CleanRows = append(res.CleanRows, i)
		}
	}

	// Qunsolved seeded with the hierarchy roots (a virtual root's
	// children). The serial algorithm pops nodes FIFO, but each node's
	// outcome (skip / solved / descend) depends only on the node itself —
	// never on the outcome of another node — so every frontier batch fans
	// the expensive trySolve calls out across workers and then reduces the
	// outcomes serially in queue order. Source order, unmatched-row order
	// and the enqueue order of children are exactly those of the serial
	// traversal, for any worker count.
	queue := append([]*cluster.Node{}, h.Roots()...)
	for len(queue) > 0 {
		batch := queue
		queue = nil
		outcomes := make([]synthOutcome, len(batch))
		parallel.For(opts.Workers, len(batch), func(i int) {
			outcomes[i] = solveNode(batch[i], target, clean, opts)
		})
		for i, node := range batch {
			o := outcomes[i]
			switch {
			case o.skip:
				// Nothing to transform under this node, or identity with
				// the target; rows handled via CleanRows.
			case o.ss != nil:
				res.Sources = append(res.Sources, o.ss)
			case len(node.Children) == 0:
				// Rejected leaf: its rows match no source candidate.
				for _, c := range node.Leaves {
					for _, ri := range c.Rows {
						if !clean[ri] {
							res.UnmatchedRows = append(res.UnmatchedRows, ri)
						}
					}
				}
			default:
				queue = append(queue, node.Children...)
			}
		}
	}
	return res
}

// synthOutcome is the per-node result of one frontier batch: skip (all rows
// clean or identity with the target), solved (ss != nil), or neither —
// descend into children / flag leaf rows.
type synthOutcome struct {
	ss   *SourceSynthesis
	skip bool
}

// solveNode classifies one hierarchy node; it only reads the node, the
// target and the frozen clean set (a dense per-row bitmap — the row scans
// here are hot, and slice indexing beats map lookups), so frontier batches
// may run it concurrently.
func solveNode(node *cluster.Node, target pattern.Pattern, clean []bool, opts Options) synthOutcome {
	if nodeAllClean(node, clean) {
		return synthOutcome{skip: true}
	}
	if node.Pattern.Equal(target) {
		return synthOutcome{skip: true}
	}
	if ss, ok := trySolve(node, target, opts); ok {
		return synthOutcome{ss: ss}
	}
	return synthOutcome{}
}

func nodeAllClean(n *cluster.Node, clean []bool) bool {
	for _, c := range n.Leaves {
		for _, ri := range c.Rows {
			if !clean[ri] {
				return false
			}
		}
	}
	return true
}

// trySolve validates the node's pattern as a source candidate and, when it
// qualifies, synthesizes its ranked plans.
func trySolve(node *cluster.Node, target pattern.Pattern, opts Options) (*SourceSynthesis, bool) {
	src := node.Pattern
	if !opts.DisableValidate && !Validate(src, target, opts.HierarchicalCount) {
		return nil, false
	}
	var dag *align.DAG
	if opts.DisableCombine {
		dag = align.AlignSingle(target, src)
	} else {
		dag = align.Align(target, src)
	}
	if !dag.Complete() {
		// Validation passed but no full plan exists (e.g. the pattern is
		// too general, §6.1 reason 3): treat as unqualified.
		return nil, false
	}
	// Overprovision before deduplication: many ranked plans collapse into
	// one equivalence class (Extract of a literal ≡ ConstStr), and the
	// correct reordering for ambiguous sources can sit far down the raw
	// list.
	pool := opts.K * 8
	if pool < 64 {
		pool = 64
	}
	ranked := mdl.TopK(dag, src, pool)
	ranked = Dedup(ranked, src)
	if len(ranked) > opts.K {
		ranked = ranked[:opts.K]
	}
	if len(ranked) == 0 {
		return nil, false
	}
	return &SourceSynthesis{Source: src, Node: node, Plans: ranked}, true
}

// PlansFor runs the per-source half of Algorithm 2 directly: validate the
// source pattern, align it against the target and return the ranked,
// deduplicated plans (empty when the pattern is rejected or no complete
// plan exists). Used by the simulated user's drill-down and the
// RegexReplace oracle.
func PlansFor(src, target pattern.Pattern, opts Options) []mdl.Ranked {
	if opts.K <= 0 {
		opts.K = DefaultOptions().K
	}
	node := &cluster.Node{Pattern: src}
	ss, ok := trySolve(node, target, opts)
	if !ok {
		return nil
	}
	return ss.Plans
}

// Validate implements V(p1, p2) of Eq. 2: p1 qualifies as a source
// candidate for target p2 if for every base token class the class frequency
// in p1 is at least that in p2. hierarchical selects the subsumption-aware
// counting variant.
func Validate(src, target pattern.Pattern, hierarchical bool) bool {
	for _, c := range token.BaseClasses {
		var qs, qt int
		if hierarchical {
			qs, qt = src.FreqHierarchical(c), target.FreqHierarchical(c)
		} else {
			// The source side also credits characters inside discovered
			// constants ('CPT-' still supplies <U> tokens); the target
			// side keeps the paper's base-token count, since target
			// literals come from ConstStr.
			qs, qt = src.FreqWithLiterals(c), target.Freq(c)
		}
		if qs < qt {
			return false
		}
	}
	return true
}

// Dedup removes plans equivalent to an earlier (simpler, lower-DL) plan in
// the list, per Definition 6.2 and Appendix B: plans are equivalent when,
// after splitting multi-token extracts into single-token extracts, they
// agree operator-by-operator up to swapping an Extract of a constant literal
// source token with the ConstStr of the same content.
func Dedup(ranked []mdl.Ranked, src pattern.Pattern) []mdl.Ranked {
	seen := make(map[string]bool, len(ranked))
	out := ranked[:0:0]
	for _, r := range ranked {
		k := canonicalKey(r.Plan, src)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// canonicalKey renders a plan as its sequence of single-token effects, with
// extracts of fixed literal source tokens replaced by their constant
// content. Two plans are equivalent iff their keys are equal.
func canonicalKey(p unifi.Plan, src pattern.Pattern) string {
	key := ""
	for _, op := range p.Ops {
		switch op := op.(type) {
		case unifi.ConstStr:
			key += fmt.Sprintf("C%q;", op.S)
		case unifi.Extract:
			for j := op.I; j <= op.J; j++ {
				t := src.At(j - 1)
				if t.IsLiteral() && t.Quant != token.Plus {
					key += fmt.Sprintf("C%q;", t.Expand())
				} else {
					key += fmt.Sprintf("X%d;", j)
				}
			}
		}
	}
	return key
}

// Program assembles the UniFi Switch program from the currently selected
// plans.
func (r *Result) Program() unifi.Program {
	prog := unifi.Program{}
	for _, s := range r.Sources {
		prog.Cases = append(prog.Cases, unifi.Case{Source: s.Source, Plan: s.Plan()})
	}
	return prog
}

// Repair selects the planIdx-th ranked alternative for source srcIdx
// (paper §6.4).
func (r *Result) Repair(srcIdx, planIdx int) error {
	if srcIdx < 0 || srcIdx >= len(r.Sources) {
		return fmt.Errorf("synth: source index %d out of range [0,%d)", srcIdx, len(r.Sources))
	}
	s := r.Sources[srcIdx]
	if planIdx < 0 || planIdx >= len(s.Plans) {
		return fmt.Errorf("synth: plan index %d out of range [0,%d) for source %s",
			planIdx, len(s.Plans), s.Source)
	}
	s.Chosen = planIdx
	return nil
}

// Refine replaces source srcIdx with solved entries for its child patterns
// in the cluster hierarchy — the drill-down a user performs when none of a
// generic pattern's suggested plans is right (§4.2's hierarchical display
// exists exactly for this). Children that fail validation or alignment
// descend further; leaves that cannot be solved leave their rows unmatched.
func (r *Result) Refine(srcIdx int) error {
	if srcIdx < 0 || srcIdx >= len(r.Sources) {
		return fmt.Errorf("synth: source index %d out of range [0,%d)", srcIdx, len(r.Sources))
	}
	node := r.Sources[srcIdx].Node
	if node == nil || len(node.Children) == 0 {
		return fmt.Errorf("synth: source %s has no child patterns to refine into", r.Sources[srcIdx].Source)
	}
	var solved []*SourceSynthesis
	queue := append([]*cluster.Node{}, node.Children...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.Pattern.Equal(r.Target) {
			continue
		}
		if ss, ok := trySolve(n, r.Target, r.opts); ok {
			solved = append(solved, ss)
			continue
		}
		if len(n.Children) == 0 {
			for _, c := range n.Leaves {
				r.UnmatchedRows = append(r.UnmatchedRows, c.Rows...)
			}
			continue
		}
		queue = append(queue, n.Children...)
	}
	r.Sources = append(r.Sources[:srcIdx], append(solved, r.Sources[srcIdx+1:]...)...)
	return nil
}

// Transform applies the synthesized program to the profiled data: rows
// already matching the target are copied through; rows covered by no source
// are copied through and flagged. Rows are independent, so application is
// sharded across the configured workers; output rows are written by index
// and flagged indices gathered in shard order, so both are byte-identical
// to a serial scan.
func (r *Result) Transform() (out []string, flagged []int) {
	data := r.Hierarchy.Data
	prog := r.Program().Compile()
	target := rematch.CompileCached(r.Target.Tokens())
	out = make([]string, len(data))
	flagged = parallel.Gather(r.opts.Workers, len(data), func(lo, hi int, emit func(int)) {
		for i := lo; i < hi; i++ {
			s := data[i]
			if target.Matches(s) {
				out[i] = s
				continue
			}
			t, err := prog.Apply(s)
			if err != nil {
				out[i] = s
				emit(i)
				continue
			}
			out[i] = t
		}
	})
	return out, flagged
}
