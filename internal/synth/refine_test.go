package synth

import (
	"testing"

	"clx/internal/cluster"
	"clx/internal/pattern"
)

// Refine replaces an over-general source with its solvable child patterns.
func TestRefine(t *testing.T) {
	data := []string{
		"John Smith, INRIA, France",
		"Ada Byron, MIT, USA",
		"Tom Ford, KTH, Sweden",
		"INRIA", "MIT",
	}
	target := pattern.MustParse("<U>+")
	h := cluster.Profile(data, cluster.DefaultOptions())
	res := Synthesize(h, target, DefaultOptions())
	if len(res.Sources) == 0 {
		t.Fatal("no sources")
	}
	before := len(res.Sources)
	beforePattern := res.Sources[0].Source

	if err := res.Refine(0); err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if len(res.Sources) < before {
		t.Errorf("sources shrank from %d to %d", before, len(res.Sources))
	}
	for _, s := range res.Sources {
		if s.Source.Equal(beforePattern) {
			t.Errorf("refined source %s still present", beforePattern)
		}
	}
	// Every refined source still has ranked plans producing the target.
	for _, s := range res.Sources {
		for _, r := range s.Plans {
			for _, row := range data {
				if !s.Source.Matches(row) {
					continue
				}
				out, err := r.Plan.Apply(s.Source, row)
				if err != nil {
					t.Errorf("refined plan failed on %q: %v", row, err)
					continue
				}
				if !target.Matches(out) {
					t.Errorf("refined plan output %q does not match target", out)
				}
			}
		}
	}
}

func TestRefineErrors(t *testing.T) {
	data := []string{"12/34", "56-78"}
	target := pattern.MustParse("<D>2'-'<D>2")
	res := Synthesize(cluster.Profile(data, cluster.DefaultOptions()), target, DefaultOptions())
	if err := res.Refine(99); err == nil {
		t.Error("out-of-range index should error")
	}
	// Drill to the bottom: refining repeatedly eventually reaches leaves.
	fuel := 10
	for fuel > 0 && len(res.Sources) > 0 {
		if err := res.Refine(0); err != nil {
			break // reached a leaf
		}
		fuel--
	}
	if fuel == 0 {
		t.Error("refinement did not terminate at leaves")
	}
}
