package experiments

import (
	"testing"
)

func TestFig11Series(t *testing.T) {
	a := Fig11aCompletionTime()
	b := Fig11bInteractions()
	v := Fig12VerificationTime()
	if len(a) != 3 || len(b) != 3 || len(v) != 3 {
		t.Fatalf("series lengths: %d %d %d, want 3 each", len(a), len(b), len(v))
	}
	for i, row := range a {
		if row.CLX <= 0 || row.FF <= 0 || row.RR <= 0 {
			t.Errorf("fig11a row %d has non-positive time: %+v", i, row)
		}
		if v[i].CLX > row.CLX || v[i].FF > row.FF {
			t.Errorf("verification exceeds completion in case %s", row.Label)
		}
	}
	if a[0].Label != "10(2)" || a[2].Label != "300(6)" {
		t.Errorf("labels = %v", []string{a[0].Label, a[1].Label, a[2].Label})
	}
}

func TestFig11cTimestamps(t *testing.T) {
	rr, ff, clx := Fig11cTimestamps()
	for name, ts := range map[string][]float64{"rr": rr, "ff": ff, "clx": clx} {
		if len(ts) == 0 {
			t.Errorf("%s has no interactions", name)
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				t.Errorf("%s timestamps not increasing: %v", name, ts)
			}
		}
	}
}

func TestVerificationGrowthHeadline(t *testing.T) {
	clx, ff, _ := VerificationGrowth()
	if clx >= ff/2.5 {
		t.Errorf("growth: clx %.1fx vs ff %.1fx — paper reports 1.3x vs 11.4x", clx, ff)
	}
}

func TestTable5(t *testing.T) {
	rows := Table5()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Size != 10 || rows[1].Size != 10 || rows[2].Size != 100 {
		t.Errorf("sizes = %d %d %d, want 10 10 100", rows[0].Size, rows[1].Size, rows[2].Size)
	}
}

func TestTable7AndFig15Consistent(t *testing.T) {
	vsFF, vsRR := Table7()
	if vsFF.Wins+vsFF.Ties+vsFF.Losses != 47 {
		t.Errorf("vsFF tally = %+v does not sum to 47", vsFF)
	}
	if vsRR.Wins+vsRR.Ties+vsRR.Losses != 47 {
		t.Errorf("vsRR tally = %+v does not sum to 47", vsRR)
	}
	// §7.4 shape: CLX often requires less or equal effort than both; vs
	// RegexReplace it almost always wins.
	if vsFF.Wins < vsFF.Losses {
		t.Errorf("vsFF = %+v: wins should be >= losses", vsFF)
	}
	if vsRR.Wins < 25 || vsRR.Losses > 8 {
		t.Errorf("vsRR = %+v: paper reports 33 wins, 2 losses", vsRR)
	}
	// Fig 15 ratios agree with the tallies.
	sp := Fig15Speedups()
	if len(sp) != 47 {
		t.Fatalf("speedups = %d", len(sp))
	}
	wins := 0
	for _, s := range sp {
		if s.VsFF > 1 {
			wins++
		}
	}
	if wins != vsFF.Wins {
		t.Errorf("fig15 wins %d != table7 wins %d", wins, vsFF.Wins)
	}
}

func TestExpressivityHeadline(t *testing.T) {
	e := Expressivity()
	if e.Total != 47 {
		t.Fatalf("total = %d", e.Total)
	}
	// Paper: CLX 42 (~90%), FlashFill 45 (~96%), RegexReplace 46 (~98%).
	if e.CLX < 40 || e.CLX > 44 {
		t.Errorf("CLX = %d/47, want ~42", e.CLX)
	}
	if e.FF < e.CLX {
		t.Errorf("FF = %d should be >= CLX = %d", e.FF, e.CLX)
	}
	if e.RR < e.FF {
		t.Errorf("RR = %d should be >= FF = %d", e.RR, e.FF)
	}
}

func TestAppendixE(t *testing.T) {
	s := AppendixE()
	// Paper: ~79% perfect within two Steps, ~79% single selection, ~50%
	// zero adjustments, ~85% at most one.
	if s.PerfectWithin2Steps < 0.5 {
		t.Errorf("perfect within 2 steps = %.2f, want ~0.79", s.PerfectWithin2Steps)
	}
	if s.SingleSelection < 0.6 {
		t.Errorf("single selection = %.2f, want ~0.79", s.SingleSelection)
	}
	if s.ZeroAdjust < 0.3 {
		t.Errorf("zero adjust = %.2f, want ~0.5", s.ZeroAdjust)
	}
	if s.AtMostOneAdjust < s.ZeroAdjust {
		t.Error("at-most-one must include zero")
	}
}

func TestFig16StepsCoverSuite(t *testing.T) {
	steps := Fig16Steps()
	if len(steps) != 47 {
		t.Fatalf("steps = %d", len(steps))
	}
	for _, st := range steps {
		if st.Total < st.Selection+st.Adjust {
			t.Errorf("%s: total %d < selection %d + adjust %d",
				st.Task, st.Total, st.Selection, st.Adjust)
		}
	}
}

func TestFig13AndFig14(t *testing.T) {
	quiz := Fig13Comprehension()
	if len(quiz) != 3 {
		t.Fatalf("quiz systems = %d", len(quiz))
	}
	f14 := Fig14TaskCompletion()
	if len(f14) != 3 {
		t.Fatalf("fig14 rows = %d", len(f14))
	}
	for _, row := range f14 {
		if row.CLX <= 0 || row.FF <= 0 || row.RR <= 0 {
			t.Errorf("fig14 %s has non-positive time", row.Label)
		}
	}
}

// CLX user effort (Steps) is independent of data size: growing the column
// 100x leaves the Step count unchanged.
func TestStepsVsSize(t *testing.T) {
	rows := StepsVsSize()
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	first := rows[0].CLXSteps
	for _, r := range rows {
		if r.CLXSteps != first {
			t.Errorf("CLX steps at %d rows = %d, want constant %d",
				r.Rows, r.CLXSteps, first)
		}
		if !perfectRow(r) {
			t.Errorf("row %d: some system imperfect: %+v", r.Rows, r)
		}
	}
}

func perfectRow(r SizeRow) bool {
	// Steps bounded by a small constant per system implies no punishment
	// term (failed rows would add one Step each).
	return r.CLXSteps <= 4 && r.FFSteps <= 12 && r.RRSteps <= 12
}
