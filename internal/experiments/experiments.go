// Package experiments computes every table and figure of the paper's
// evaluation (§7, Appendices D–E). Each exported function returns the typed
// series for one exhibit; cmd/clxbench prints them in the paper's layout
// and bench_test.go reports them as benchmark metrics. EXPERIMENTS.md
// records paper-vs-measured for each.
package experiments

import (
	"sync"

	"clx/internal/benchsuite"
	"clx/internal/dataset"
	"clx/internal/simuser"
	"clx/internal/userstudy"
)

// taskRun caches one full three-system simulation of a benchmark task.
type taskRun struct {
	Task benchsuite.Task
	CLX  simuser.CLXResult
	FF   simuser.FFResult
	RR   simuser.RRResult
}

var (
	suiteOnce sync.Once
	suiteRuns []taskRun

	studyOnce sync.Once
	studyRes  []userstudy.CaseResult
)

// SuiteRuns simulates the lazy user on all 47 benchmark tasks with all
// three systems, once.
func SuiteRuns() []taskRun {
	suiteOnce.Do(func() {
		for _, task := range benchsuite.Tasks() {
			suiteRuns = append(suiteRuns, taskRun{
				Task: task,
				CLX:  simuser.SimulateCLX(task.Inputs, task.Outputs, simuser.DefaultOptions()),
				FF:   simuser.SimulateFlashFill(task.Inputs, task.Outputs),
				RR:   simuser.SimulateRegexReplace(task.Inputs, task.Outputs),
			})
		}
	})
	return suiteRuns
}

// Study runs (and caches) the §7.2 verification study.
func Study() []userstudy.CaseResult {
	studyOnce.Do(func() {
		studyRes = userstudy.RunVerificationStudy(userstudy.DefaultCosts())
	})
	return studyRes
}

// SystemsRow is one bar group of Figures 11a/12/14: a value per system in
// the paper's plotting order.
type SystemsRow struct {
	Label       string
	RR, FF, CLX float64
}

// Fig11aCompletionTime returns overall completion time (s) by study case.
func Fig11aCompletionTime() []SystemsRow {
	var out []SystemsRow
	for _, r := range Study() {
		out = append(out, SystemsRow{
			Label: r.Case.Name,
			RR:    r.RR.Total(), FF: r.FF.Total(), CLX: r.CLX.Total(),
		})
	}
	return out
}

// Fig11bInteractions returns rounds of interactions by study case.
func Fig11bInteractions() []SystemsRow {
	var out []SystemsRow
	for _, r := range Study() {
		out = append(out, SystemsRow{
			Label: r.Case.Name,
			RR:    float64(r.RR.CountedInteractions()),
			FF:    float64(r.FF.CountedInteractions()),
			CLX:   float64(r.CLX.CountedInteractions()),
		})
	}
	return out
}

// Fig11cTimestamps returns the per-interaction timestamps (s) of the
// 300(6) sessions, one series per system.
func Fig11cTimestamps() (rr, ff, clx []float64) {
	r := Study()[2]
	series := func(s userstudy.Session) []float64 {
		var ts []float64
		for _, it := range s.Interactions {
			if it.Kind == "final-check" {
				continue
			}
			ts = append(ts, it.At)
		}
		return ts
	}
	return series(r.RR), series(r.FF), series(r.CLX)
}

// Fig12VerificationTime returns verification time (s) by study case.
func Fig12VerificationTime() []SystemsRow {
	var out []SystemsRow
	for _, r := range Study() {
		out = append(out, SystemsRow{
			Label: r.Case.Name,
			RR:    r.RR.VerificationTime(),
			FF:    r.FF.VerificationTime(),
			CLX:   r.CLX.VerificationTime(),
		})
	}
	return out
}

// VerificationGrowth returns the §7.2 headline factors: verification-time
// growth from 10(2) to 300(6) per system (paper: CLX 1.3×, FlashFill
// 11.4×).
func VerificationGrowth() (clx, ff, rr float64) {
	res := Study()
	g := func(f func(userstudy.CaseResult) float64) float64 { return userstudy.Growth(res, f) }
	return g(func(r userstudy.CaseResult) float64 { return r.CLX.VerificationTime() }),
		g(func(r userstudy.CaseResult) float64 { return r.FF.VerificationTime() }),
		g(func(r userstudy.CaseResult) float64 { return r.RR.VerificationTime() })
}

// Fig13Comprehension returns the §7.3 quiz correct rates.
func Fig13Comprehension() []userstudy.QuizResult { return userstudy.RunQuiz() }

// Fig14TaskCompletion returns completion time (s) for the three Table 5
// tasks.
func Fig14TaskCompletion() []SystemsRow {
	sessions := userstudy.TaskSessions(userstudy.DefaultCosts())
	labels := []string{"task1", "task2", "task3"}
	var out []SystemsRow
	for ti, row := range sessions {
		out = append(out, SystemsRow{
			Label: labels[ti],
			CLX:   row[0].Total(), FF: row[1].Total(), RR: row[2].Total(),
		})
	}
	return out
}

// Table5Row is one row of Table 5 (explainability test cases).
type Table5Row struct {
	TaskID   string
	Size     int
	AvgLen   float64
	MaxLen   int
	DataType string
}

// Table5 returns the explainability test-case statistics.
func Table5() []Table5Row {
	tasks := benchsuite.ExplainabilityTasks()
	ids := []string{"Task1", "Task2", "Task3"}
	var out []Table5Row
	for i, t := range tasks {
		out = append(out, Table5Row{
			TaskID: ids[i], Size: t.Size(), AvgLen: t.AvgLen(),
			MaxLen: t.MaxLen(), DataType: t.DataType,
		})
	}
	return out
}

// Table6 returns the benchmark statistics of Table 6.
func Table6() []benchsuite.SourceStats { return benchsuite.Table6() }

// WTL is a wins/ties/losses tally.
type WTL struct {
	Wins, Ties, Losses int
}

// Table7 returns the §7.4 user-effort comparison: CLX versus each baseline
// over the 47 tasks.
func Table7() (vsFF, vsRR WTL) {
	for _, r := range SuiteRuns() {
		tally(&vsFF, r.CLX.Steps(), r.FF.Steps())
		tally(&vsRR, r.CLX.Steps(), r.RR.Steps())
	}
	return vsFF, vsRR
}

func tally(w *WTL, clx, other int) {
	switch {
	case clx < other:
		w.Wins++
	case clx == other:
		w.Ties++
	default:
		w.Losses++
	}
}

// SpeedupRow is one bar of Figure 15: Steps ratio baseline/CLX per task.
type SpeedupRow struct {
	Task string
	VsFF float64
	VsRR float64
}

// Fig15Speedups returns the per-task Step speedups of CLX over both
// baselines.
func Fig15Speedups() []SpeedupRow {
	var out []SpeedupRow
	for _, r := range SuiteRuns() {
		clx := float64(r.CLX.Steps())
		if clx == 0 {
			clx = 1
		}
		out = append(out, SpeedupRow{
			Task: r.Task.Name,
			VsFF: float64(r.FF.Steps()) / clx,
			VsRR: float64(r.RR.Steps()) / clx,
		})
	}
	return out
}

// StepBreakdown is one task's CLX Step decomposition (Figure 16 /
// Appendix E).
type StepBreakdown struct {
	Task      string
	Selection int
	Adjust    int
	Total     int
	Perfect   bool
}

// Fig16Steps returns the per-task CLX Step breakdowns.
func Fig16Steps() []StepBreakdown {
	var out []StepBreakdown
	for _, r := range SuiteRuns() {
		out = append(out, StepBreakdown{
			Task:      r.Task.Name,
			Selection: r.CLX.Selections,
			Adjust:    r.CLX.Repairs,
			Total:     r.CLX.Steps(),
			Perfect:   r.CLX.Perfect(),
		})
	}
	return out
}

// AppendixEStats are the summary fractions of Appendix E.
type AppendixEStats struct {
	// PerfectWithin2Steps: tasks solved perfectly with total Steps <= 2
	// (paper: ~79%).
	PerfectWithin2Steps float64
	// SingleSelection: tasks needing exactly one target selection (paper:
	// ~79%).
	SingleSelection float64
	// ZeroAdjust: tasks with no plan repair (paper: ~50%).
	ZeroAdjust float64
	// AtMostOneAdjust: tasks with <= 1 repair (paper: ~85%).
	AtMostOneAdjust float64
}

// AppendixE computes the Appendix E user-effort breakdown.
func AppendixE() AppendixEStats {
	steps := Fig16Steps()
	n := float64(len(steps))
	var s AppendixEStats
	for _, st := range steps {
		if st.Perfect && st.Total <= 2 {
			s.PerfectWithin2Steps++
		}
		if st.Selection == 1 {
			s.SingleSelection++
		}
		if st.Adjust == 0 {
			s.ZeroAdjust++
		}
		if st.Adjust <= 1 {
			s.AtMostOneAdjust++
		}
	}
	s.PerfectWithin2Steps /= n
	s.SingleSelection /= n
	s.ZeroAdjust /= n
	s.AtMostOneAdjust /= n
	return s
}

// Panel returns the §7.2 study means over the nine simulated participant
// cost profiles.
func Panel() []userstudy.PanelResult {
	return userstudy.RunVerificationPanel(userstudy.NumParticipants)
}

// SizeRow is one row of the Steps-versus-size sweep.
type SizeRow struct {
	Rows                       int
	CLXSteps, FFSteps, RRSteps int
}

// StepsVsSize sweeps the phone-normalization scenario across input sizes
// (the SyGus track shipped each scenario at four sizes; this is the
// corresponding robustness check): CLX's user effort in Steps must not
// grow with the row count — the heart of the paper's scalability claim —
// while the baselines' effort tracks format count at best.
func StepsVsSize() []SizeRow {
	var out []SizeRow
	for _, n := range []int{10, 30, 100, 300, 1000} {
		in, want := dataset.Phones(n, 4, 4242)
		clx := simuser.SimulateCLX(in, want, simuser.DefaultOptions())
		ff := simuser.SimulateFlashFill(in, want)
		rr := simuser.SimulateRegexReplace(in, want)
		out = append(out, SizeRow{
			Rows: n, CLXSteps: clx.Steps(), FFSteps: ff.Steps(), RRSteps: rr.Steps(),
		})
	}
	return out
}

// ExpressivityResult is the §7.4 coverage comparison.
type ExpressivityResult struct {
	Total, CLX, FF, RR int
}

// Expressivity counts perfectly solved tasks per system (paper: CLX 42/47,
// FlashFill 45/47, RegexReplace 46/47).
func Expressivity() ExpressivityResult {
	res := ExpressivityResult{Total: len(SuiteRuns())}
	for _, r := range SuiteRuns() {
		if r.CLX.Perfect() {
			res.CLX++
		}
		if r.FF.Perfect() {
			res.FF++
		}
		if r.RR.Perfect() {
			res.RR++
		}
	}
	return res
}
