package intern

import (
	"fmt"
	"sync"
	"testing"

	"clx/internal/token"
	"clx/internal/tokenize"
)

func TestInternIdentity(t *testing.T) {
	tbl := NewTable()
	a := tbl.Intern(tokenize.Tokenize("(734) 645-8397"))
	b := tbl.Intern(tokenize.Tokenize("(313) 263-1192")) // same shape
	c := tbl.Intern(tokenize.Tokenize("734-422-8073"))   // different shape
	if a != b {
		t.Errorf("equal sequences got distinct ids %d, %d", a, b)
	}
	if a == c {
		t.Error("distinct sequences share an id")
	}
	if got := tbl.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestInternCanonicalTokens(t *testing.T) {
	tbl := NewTable()
	toks := tokenize.Tokenize("Dr. Who42")
	id := tbl.Intern(toks)
	got := tbl.Tokens(id)
	if len(got) != len(toks) {
		t.Fatalf("Tokens(%d) has %d tokens, want %d", id, len(got), len(toks))
	}
	for i := range toks {
		if got[i] != toks[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], toks[i])
		}
	}
	// The canonical copy must not alias the caller's buffer.
	toks[0] = token.Lit("CLOBBER")
	if tbl.Tokens(id)[0] == toks[0] {
		t.Error("interned sequence aliases the caller's mutated slice")
	}
}

// TestInternScratchBufferReuse pins the hot-path contract: interning from a
// truncated-and-refilled scratch buffer yields stable ids.
func TestInternScratchBufferReuse(t *testing.T) {
	tbl := NewTable()
	buf := make([]token.Token, 0, 32)
	values := []string{"734-422-8073", "ab12", "734-422-8073", "(1) 2", "ab12"}
	ids := make([]PatternID, len(values))
	for i, v := range values {
		buf = tokenize.AppendTokenize(buf[:0], v)
		ids[i] = tbl.Intern(buf)
	}
	if ids[0] != ids[2] || ids[1] != ids[4] {
		t.Errorf("repeat values changed ids: %v", ids)
	}
	if ids[0] == ids[1] || ids[0] == ids[3] || ids[1] == ids[3] {
		t.Errorf("distinct shapes collide: %v", ids)
	}
}

// TestHashSensitivity checks the key covers every token component: class,
// quantifier (including '+'), and literal content.
func TestHashSensitivity(t *testing.T) {
	pairs := [][2][]token.Token{
		{{token.Base(token.Digit, 3)}, {token.Base(token.Lower, 3)}},
		{{token.Base(token.Digit, 3)}, {token.Base(token.Digit, 4)}},
		{{token.Base(token.Digit, 1)}, {token.Base(token.Digit, token.Plus)}},
		{{token.Lit("a")}, {token.Lit("b")}},
		{{token.Lit("ab")}, {token.Lit("a"), token.Lit("b")}},
		{{token.Lit("-")}, {token.Base(token.AlphaNum, 1)}},
	}
	for i, p := range pairs {
		if Hash(p[0]) == Hash(p[1]) {
			t.Errorf("pair %d: distinct sequences hash equal (%v vs %v)", i, p[0], p[1])
		}
	}
	// Equal content must hash equal regardless of backing storage.
	a := tokenize.Tokenize("x1-y2")
	b := tokenize.AppendTokenize(make([]token.Token, 0, 8), "x1-y2")
	if Hash(a) != Hash(b) {
		t.Error("equal sequences hash differently")
	}
}

func TestInternConcurrent(t *testing.T) {
	tbl := NewTable()
	const goroutines = 8
	const distinct = 200
	ids := make([][]PatternID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]PatternID, distinct)
			for i := 0; i < distinct; i++ {
				// Distinct sequences: vary both a fixed quantifier and a
				// literal so every i maps to its own pattern shape.
				toks := []token.Token{
					token.Base(token.Digit, i+1),
					token.Lit(fmt.Sprintf("#%d", i)),
				}
				ids[g][i] = tbl.Intern(toks)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d sees id %d for value %d, goroutine 0 sees %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if got := tbl.Len(); got != distinct {
		t.Errorf("Len = %d, want %d", got, distinct)
	}
}

// TestInternConcurrentShardGrowth models the sharded-profile caller: many
// workers interning large, heavily-overlapping pattern sets that force
// every shard's bucket map and canonical-sequence slice to grow while
// other goroutines concurrently resolve ids back to tokens and read Len.
// Identity must hold (equal sequences → equal id), every id must resolve
// to its exact sequence, and the final table must hold exactly the
// distinct set. The race tier runs this with -race.
func TestInternConcurrentShardGrowth(t *testing.T) {
	tbl := NewTable()
	const goroutines = 8
	const distinct = 1500 // >> 16 shards, so every shard grows repeatedly

	seq := func(i int) []token.Token {
		// Mix shapes so literals, quantifiers, and classes all vary and
		// hash across shards.
		return []token.Token{
			token.Base(token.Digit, 1+i%9),
			token.Lit(fmt.Sprintf("v%d", i)),
			token.Base(token.Upper, token.Plus),
		}
	}

	ids := make([][]PatternID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]PatternID, distinct)
			buf := make([]token.Token, 0, 8)
			for i := 0; i < distinct; i++ {
				// Reused scratch buffer, like the profile workers.
				buf = append(buf[:0], seq(i)...)
				id := tbl.Intern(buf)
				ids[g][i] = id
				// Interleave reads with concurrent growth.
				if i%7 == 0 {
					if got := tbl.Tokens(id); !tokensEqual(got, seq(i)) {
						t.Errorf("Tokens(%d) = %v, want %v", id, got, seq(i))
						return
					}
					_ = tbl.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d sees id %d for sequence %d, goroutine 0 sees %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if got := tbl.Len(); got != distinct {
		t.Errorf("Len = %d, want %d", got, distinct)
	}
	for i := 0; i < distinct; i++ {
		if got := tbl.Tokens(ids[0][i]); !tokensEqual(got, seq(i)) {
			t.Fatalf("canonical sequence %d corrupted: %v", i, got)
		}
	}
}

// TestHashString covers the exported value-sharding hash: equality on
// equal strings, sensitivity to content (including bytes beyond the
// 8-byte fold boundary), and stability for the shapes the sharded index
// partitions — empty strings, CRLF, and multi-byte UTF-8.
func TestHashString(t *testing.T) {
	if HashString("") != HashString("") {
		t.Error("empty string hash is unstable")
	}
	pairs := [][2]string{
		{"", "a"},
		{"a", "b"},
		{"ab", "ba"},
		{"12345678", "123456789"},            // boundary of the 8-byte fold
		{"abcdefghX", "abcdefghY"},           // tail byte beyond the fold
		{"line1\nline2", "line1\r\nline2"},   // CRLF vs LF
		{"café", "café"},               // composed vs decomposed UTF-8
		{"日本", "日木"},                         // multi-byte, one byte apart
	}
	for _, p := range pairs {
		if HashString(p[0]) == HashString(p[1]) {
			t.Errorf("HashString(%q) == HashString(%q)", p[0], p[1])
		}
	}
	// Same content, different backing storage.
	s := "x1-y2-z3"
	if HashString(s[:4]) != HashString(string([]byte(s[:4]))) {
		t.Error("equal strings hash differently")
	}
}

func BenchmarkIntern(b *testing.B) {
	tbl := NewTable()
	toks := tokenize.Tokenize("(734) 645-8397")
	tbl.Intern(toks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Intern(toks)
	}
}
