// Package intern hash-conses token sequences into dense PatternIDs so the
// profiling hot path can treat pattern identity as an integer: map keys,
// cluster membership, and equality checks all become O(1) id comparisons
// instead of token-slice walks or rendered-string compares.
//
// A Table is scoped to one Profile call and shared across its workers.
// Sixteen lock-sharded segments keep interning cheap under fan-out; ids are
// racy in *numeric order* (whichever worker interns a new sequence first
// assigns the next local index) but stable in *identity* — equal sequences
// always receive the same id within a table — and nothing downstream depends
// on id order, so profiling output stays byte-identical for any worker
// count (see DESIGN.md §9).
package intern

import (
	"math/bits"
	"sync"

	"clx/internal/token"
)

// PatternID identifies an interned token sequence within one Table. The
// low shardBits select the shard; the remaining bits are the index within
// it, so ids are dense enough to use as map keys or (per shard) slice
// indices.
type PatternID uint32

const (
	shardBits = 4
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

// Table is a hash-consing table for token sequences. The zero value is not
// usable; call NewTable. A Table is safe for concurrent use.
type Table struct {
	shards [numShards]shard
}

type shard struct {
	mu sync.Mutex
	// buckets maps a sequence hash to the ids carrying it (collisions are
	// resolved by token-wise comparison).
	buckets map[uint64][]PatternID
	// toks holds the canonical (owned, immutable) token sequence of each
	// local index.
	toks [][]token.Token
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].buckets = make(map[uint64][]PatternID)
	}
	return t
}

// Intern returns the id of the token sequence toks, assigning a fresh id on
// first sight. The slice is only copied when the sequence is new, so
// callers may (and should) pass a reused scratch buffer: the hot path of a
// repeated pattern does one hash, one shard lock, and one bucket probe,
// with zero allocations.
func (t *Table) Intern(toks []token.Token) PatternID {
	h := Hash(toks)
	sh := &t.shards[h&shardMask]
	sh.mu.Lock()
	for _, id := range sh.buckets[h] {
		if tokensEqual(sh.toks[id>>shardBits], toks) {
			sh.mu.Unlock()
			return id
		}
	}
	own := make([]token.Token, len(toks))
	copy(own, toks)
	id := PatternID(len(sh.toks))<<shardBits | PatternID(h&shardMask)
	sh.toks = append(sh.toks, own)
	sh.buckets[h] = append(sh.buckets[h], id)
	sh.mu.Unlock()
	return id
}

// Tokens returns the canonical token sequence of id. The returned slice is
// shared and must not be mutated. Passing an id not produced by this
// table's Intern panics.
func (t *Table) Tokens(id PatternID) []token.Token {
	sh := &t.shards[id&shardMask]
	sh.mu.Lock()
	toks := sh.toks[id>>shardBits]
	sh.mu.Unlock()
	return toks
}

// Len returns the number of distinct sequences interned so far.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.toks)
		sh.mu.Unlock()
	}
	return n
}

// Local is a single-goroutine memo in front of a shared Table: repeated
// sequences resolve through a private map with no locking, so a worker
// that interns the same handful of shapes thousands of times (the profile
// absorb loop: many values, few patterns) stops serializing on the
// table's shard mutexes. A memo hit is verified token-wise against the
// canonical sequence, so a 64-bit hash collision degrades to a table call,
// never to a wrong id. Not safe for concurrent use; give each worker its
// own Local.
type Local struct {
	tbl *Table
	ids map[uint64]PatternID
}

// NewLocal returns an empty memo over tbl.
func NewLocal(tbl *Table) *Local {
	return &Local{tbl: tbl, ids: make(map[uint64]PatternID, 32)}
}

// Intern is Table.Intern through the memo: lock-free on repeat sequences,
// one table call (then memoized) on first sight.
func (l *Local) Intern(toks []token.Token) PatternID {
	h := Hash(toks)
	if id, ok := l.ids[h]; ok && tokensEqual(l.tbl.Tokens(id), toks) {
		return id
	}
	id := l.tbl.Intern(toks)
	l.ids[h] = id
	return id
}

// xxhash-style 64-bit primes (xxh64's multipliers); the mixing below is a
// compact rotate-multiply in the same family, not the full algorithm —
// sequences are a handful of tokens, so per-call setup matters more than
// bulk throughput.
const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
)

// Hash returns a 64-bit key over the class, quantifier, and literal bytes
// of toks. Equal sequences hash equal; the table resolves collisions by
// comparison, so Hash only needs to be well-distributed, not injective.
func Hash(toks []token.Token) uint64 {
	h := prime3 + uint64(len(toks))
	for _, t := range toks {
		// Class and quantifier pack into one word: the quantifier is either
		// Plus (-1) or a natural number far below 2^32 (pattern.maxQuant).
		h = mix(h, uint64(t.Class)<<32|uint64(uint32(int32(t.Quant))))
		if t.Class == token.Literal {
			h = hashString(h, t.Lit)
		}
	}
	// Final avalanche so low bits (the shard selector) depend on every
	// input byte.
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// HashString returns a 64-bit key over the raw bytes of s, using the same
// rotate-multiply family as Hash and the same final avalanche, so low bits
// are safe to use as a shard selector. The profiling distinct-value index
// shards column values with it (see cluster.Index); equal strings hash
// equal, and the empty string has a well-defined key.
func HashString(s string) uint64 {
	h := hashString(prime3+uint64(len(s)), s)
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func mix(h, v uint64) uint64 {
	h ^= v * prime2
	return bits.RotateLeft64(h, 31) * prime1
}

func hashString(h uint64, s string) uint64 {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(s[i+j])
		}
		h = mix(h, v)
	}
	var v uint64
	for ; i < len(s); i++ {
		v = v<<8 | uint64(s[i])
	}
	return mix(h, v|uint64(len(s))<<56)
}

func tokensEqual(a, b []token.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
