// Package progstore is a concurrency-safe, persistent registry of
// synthesized CLX programs — the serving-side half of the paper's
// verifiable-artifact story (§5, §7). A program is synthesized and
// verified once (the expensive Algorithm-2 path), registered here, and
// then applied many times by id without any synthesis: the store keeps
// the exported program JSON, its source-pattern profile and synthesis
// metadata under a monotonic version, survives daemon restarts through an
// append-only JSON-lines WAL with periodic snapshot compaction, and
// extends verifiability to serving time by reporting *drift* — rows of a
// live column that match none of the program's recorded patterns — on
// every apply.
package progstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	clx "clx"
	"clx/internal/obs"
)

// Registry durability metrics: every mutation is a fsynced WAL append and
// every compaction rewrites the snapshot, so their latencies are the
// daemon's write-path floor — the first place to look when registrations
// slow down.
var (
	mWALAppends = obs.NewCounter("clx_wal_appends_total",
		"Program-registry WAL records appended (each fsynced).")
	mWALAppendDur = obs.NewHistogram("clx_wal_append_duration_seconds",
		"Latency of one fsynced program-registry WAL append.", nil)
	mCompactions = obs.NewCounter("clx_wal_compactions_total",
		"Program-registry WAL compactions into snapshot.json.")
	mCompactDur = obs.NewHistogram("clx_wal_compaction_duration_seconds",
		"Latency of folding the registry WAL into its snapshot.", nil)
)

// Repair is one plan-repair choice recorded at synthesis time (§6.4):
// source Source's default plan was replaced by its Alt-th alternative.
type Repair struct {
	Source int `json:"source"`
	Alt    int `json:"alt"`
}

// Entry is one registered program. All fields are written by the store;
// callers treat entries as immutable snapshots.
type Entry struct {
	// ID identifies the program; assigned on first registration.
	ID string `json:"id"`
	// Version increases monotonically each time the id is re-registered.
	Version int `json:"version"`
	// CreatedAtUnix is the registration time of this version.
	CreatedAtUnix int64 `json:"created_at_unix"`
	// Name is an optional human label.
	Name string `json:"name,omitempty"`
	// Target is the program's target pattern (compact notation).
	Target string `json:"target"`
	// Sources are the source patterns the program covers — the recorded
	// format profile drift detection checks live rows against.
	Sources []string `json:"sources"`
	// RowCount is the size of the column the program was synthesized from.
	RowCount int `json:"row_count,omitempty"`
	// Repairs are the plan choices applied before export.
	Repairs []Repair `json:"repairs,omitempty"`
	// Program is the exported program (clx.Transformation.Export), the
	// same human-auditable JSON the user verified.
	Program json.RawMessage `json:"program"`
}

// Meta is the caller-supplied registration metadata.
type Meta struct {
	// ID re-registers an existing program, bumping its version; empty
	// allocates a fresh id.
	ID string
	// Name is an optional human label.
	Name string
	// RowCount records the synthesis column size.
	RowCount int
	// Repairs records the plan-repair choices applied before export.
	Repairs []Repair
}

// Store is the registry. All methods are safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	dir string // "" = ephemeral (no durability)

	entries map[string]*Entry
	order   []string // ids in first-registration order
	seq     int64    // id allocator, monotonic across restarts

	// loaded caches the decoded program per id so the apply path never
	// re-parses JSON; invalidated on re-register and delete. Guarded by mu
	// (write-locked on fill — decode is cheap and happens once per
	// version).
	loaded map[string]*loadedProgram

	wal          *walFile
	walRecords   int // records appended since the last snapshot
	compactEvery int

	// lastIdx is the replication log index of the newest mutation. Every
	// Register/Delete (and every follower ApplyRecord) advances it by one,
	// so the sequence of records a leader ships is gap-free and a follower
	// can detect a missed record by arithmetic alone.
	lastIdx int64

	// onAppend, when set, observes every locally originated record after
	// its durable WAL append — the leader-side replication tap. Called with
	// mu held so observed records are totally ordered by Idx; the hook must
	// not call back into the store.
	onAppend func(Record)

	// Follower-side replication accounting (see ReplicationStats).
	recordsApplied     int64
	snapshotsInstalled int64

	now func() int64
}

// loadedProgram is the hot-path form of an entry: the decoded program and
// its compiled-matcher-backed profile.
type loadedProgram struct {
	version int
	sp      *clx.SavedProgram
	target  clx.Pattern
}

// CompactEvery is the default snapshot cadence: after this many WAL
// records the store folds the log into snapshot.json and truncates it.
const CompactEvery = 64

// Open opens (or creates) the registry in dir, recovering the full state
// from snapshot + WAL. An empty dir yields an ephemeral in-memory store.
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:          dir,
		entries:      make(map[string]*Entry),
		loaded:       make(map[string]*loadedProgram),
		compactEvery: CompactEvery,
		now:          func() int64 { return time.Now().Unix() },
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("progstore: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	n, err := s.replayWAL()
	if err != nil {
		return nil, err
	}
	s.walRecords = n
	w, err := openWAL(s.walPath())
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

func (s *Store) walPath() string      { return filepath.Join(s.dir, "wal.jsonl") }
func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Register validates and stores an exported program. With meta.ID empty a
// new id is allocated; otherwise the existing entry's version is bumped
// (registering an unknown explicit id starts it at version 1). The entry
// is durable — WAL-appended and fsynced — before Register returns.
func (s *Store) Register(program json.RawMessage, meta Meta) (Entry, error) {
	sp, err := clx.LoadProgram(program)
	if err != nil {
		return Entry{}, fmt.Errorf("progstore: invalid program: %w", err)
	}
	// Store the program compacted: WAL and snapshot serialization compact
	// embedded JSON anyway, so normalizing here keeps the registered bytes
	// byte-identical across every recovery path.
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, program); err != nil {
		return Entry{}, fmt.Errorf("progstore: invalid program: %w", err)
	}
	sources := make([]string, 0, len(sp.Sources()))
	for _, p := range sp.Sources() {
		sources = append(sources, p.String())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	e := &Entry{
		ID:            meta.ID,
		Version:       1,
		CreatedAtUnix: s.now(),
		Name:          meta.Name,
		Target:        sp.Target().String(),
		Sources:       sources,
		RowCount:      meta.RowCount,
		Repairs:       append([]Repair(nil), meta.Repairs...),
		Program:       json.RawMessage(compacted.Bytes()),
	}
	if e.ID == "" {
		s.seq++
		e.ID = fmt.Sprintf("p%06d", s.seq)
	}
	prev, existed := s.entries[e.ID]
	if existed {
		e.Version = prev.Version + 1
		if e.Name == "" {
			e.Name = prev.Name
		}
	} else {
		s.order = append(s.order, e.ID)
	}
	// State first, WAL second: the append may fold the state into a
	// snapshot (compaction), which must already see this entry. On WAL
	// failure the registration is rolled back — a client must never hold
	// an id the store cannot recover after a crash.
	s.entries[e.ID] = e
	s.loaded[e.ID] = &loadedProgram{version: e.Version, sp: sp, target: sp.Target()}
	s.lastIdx++
	rec := Record{Op: OpPut, Seq: s.seq, Idx: s.lastIdx, Entry: e}
	if err := s.append(rec); err != nil {
		s.lastIdx--
		if existed {
			s.entries[e.ID] = prev
			delete(s.loaded, e.ID)
		} else {
			delete(s.entries, e.ID)
			delete(s.loaded, e.ID)
			s.order = s.order[:len(s.order)-1]
		}
		return Entry{}, err
	}
	if s.onAppend != nil {
		s.onAppend(rec)
	}
	return *e, nil
}

// Get returns the entry for id.
func (s *Store) Get(id string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// List returns every entry in first-registration order.
func (s *Store) List() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, len(s.entries))
	for _, id := range s.order {
		if e, ok := s.entries[id]; ok {
			out = append(out, *e)
		}
	}
	return out
}

// Len returns the number of registered programs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Delete removes id, durably. It reports whether the id existed.
func (s *Store) Delete(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.entries[id]
	if !ok {
		return false, nil
	}
	delete(s.entries, id)
	delete(s.loaded, id)
	pos := -1
	for i, oid := range s.order {
		if oid == id {
			pos = i
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.lastIdx++
	rec := Record{Op: OpDelete, Seq: s.seq, Idx: s.lastIdx, ID: id}
	if err := s.append(rec); err != nil {
		s.lastIdx--
		s.entries[id] = prev
		if pos >= 0 {
			s.order = append(s.order[:pos], append([]string{id}, s.order[pos:]...)...)
		}
		return false, err
	}
	if s.onAppend != nil {
		s.onAppend(rec)
	}
	return true, nil
}

// program returns the cached decoded program for id, filling the cache on
// a version miss (only after a restart — Register pre-fills it).
func (s *Store) program(id string) (*loadedProgram, int, error) {
	s.mu.RLock()
	e, ok := s.entries[id]
	var lp *loadedProgram
	if ok {
		lp = s.loaded[id]
	}
	s.mu.RUnlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	if lp != nil && lp.version == e.Version {
		return lp, e.Version, nil
	}
	sp, err := clx.LoadProgram(e.Program)
	if err != nil {
		return nil, 0, fmt.Errorf("progstore: stored program %s is corrupt: %w", id, err)
	}
	lp = &loadedProgram{version: e.Version, sp: sp, target: sp.Target()}
	s.mu.Lock()
	// Another goroutine may have raced the fill or re-registered; keep the
	// newest version.
	if cur, ok2 := s.loaded[id]; !ok2 || cur.version < lp.version {
		s.loaded[id] = lp
	}
	s.mu.Unlock()
	return lp, lp.version, nil
}

// ErrNotFound is returned for operations on an unknown program id.
var ErrNotFound = fmt.Errorf("progstore: program not found")

// SetCompactEvery overrides the snapshot cadence (n WAL records per
// compaction). Aggressive cadences are how tests force compaction to race
// concurrent writers and replication shipping; n <= 0 restores the
// default.
func (s *Store) SetCompactEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = CompactEvery
	}
	s.compactEvery = n
}

// Flush compacts the WAL into a snapshot, leaving an empty log. Called on
// graceful shutdown so restart recovery is a single snapshot read.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" || s.wal == nil {
		return nil
	}
	return s.compactLocked()
}

// Close flushes and releases the WAL. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// append writes one WAL record (fsynced) and triggers compaction at the
// configured cadence. Callers hold the write lock. Ephemeral stores are a
// no-op.
func (s *Store) append(rec Record) error {
	if s.dir == "" || s.wal == nil {
		return nil
	}
	t0 := time.Now()
	err := s.wal.Append(rec)
	mWALAppendDur.Observe(time.Since(t0))
	if err != nil {
		return err
	}
	mWALAppends.Inc()
	s.walRecords++
	if s.walRecords >= s.compactEvery {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// snapshotDoc is the snapshot.json document: the full registry plus the id
// allocator and the replication log index, so recovery is snapshot ∘ WAL
// replay. It is also the replication snapshot a leader pushes to a
// follower that cannot be caught up record by record (see State).
type snapshotDoc struct {
	Seq     int64    `json:"seq"`
	LastIdx int64    `json:"last_idx,omitempty"`
	Order   []string `json:"order"`
	Entries []*Entry `json:"entries"`
}

// compactLocked folds the current state into snapshot.json (write-temp,
// fsync, rename) and truncates the WAL. Callers hold the write lock.
func (s *Store) compactLocked() error {
	defer func(t0 time.Time) {
		mCompactions.Inc()
		mCompactDur.Observe(time.Since(t0))
	}(time.Now())
	doc := snapshotDoc{Seq: s.seq, LastIdx: s.lastIdx, Order: append([]string(nil), s.order...)}
	for _, id := range s.order {
		doc.Entries = append(doc.Entries, s.entries[id])
	}
	// Encode without HTML escaping so the embedded program JSON (full of
	// "<D>3" patterns) stays byte-identical across snapshot round-trips.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("progstore: snapshot: %w", err)
	}
	raw := buf.Bytes()
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("progstore: snapshot: %w", err)
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("progstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return fmt.Errorf("progstore: snapshot: %w", err)
	}
	if err := s.wal.Truncate(); err != nil {
		return err
	}
	s.walRecords = 0
	return nil
}

// loadSnapshot restores state from snapshot.json if present.
func (s *Store) loadSnapshot() error {
	raw, err := os.ReadFile(s.snapshotPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("progstore: snapshot: %w", err)
	}
	var doc snapshotDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("progstore: snapshot corrupt: %w", err)
	}
	s.seq = doc.Seq
	s.lastIdx = doc.LastIdx
	for _, e := range doc.Entries {
		s.entries[e.ID] = e
	}
	// Order comes from the document; tolerate older snapshots without it.
	s.order = doc.Order
	if len(s.order) == 0 && len(doc.Entries) > 0 {
		for _, e := range doc.Entries {
			s.order = append(s.order, e.ID)
		}
		sort.Strings(s.order)
	}
	return nil
}

// replayWAL applies the log on top of the snapshot, tolerating a partial
// tail: a crash mid-append leaves a final record without a newline or
// with malformed JSON, which replay drops by truncating the file back to
// the last intact record. It returns the number of live records.
func (s *Store) replayWAL() (int, error) {
	recs, err := replay(s.walPath())
	if err != nil {
		return 0, err
	}
	for _, rec := range recs {
		s.applyRecordLocked(rec)
	}
	return len(recs), nil
}

// applyRecordLocked folds one record into the in-memory state — the
// single mutation path shared by crash-recovery replay and follower
// replication, so the two can never diverge. Callers hold the write
// lock. Idempotent over duplicate records (a retried append, a re-shipped
// replication record).
func (s *Store) applyRecordLocked(rec Record) {
	if rec.Seq > s.seq {
		s.seq = rec.Seq
	}
	if rec.Idx > s.lastIdx {
		s.lastIdx = rec.Idx
	}
	switch rec.Op {
	case OpPut:
		if rec.Entry == nil {
			return
		}
		if _, ok := s.entries[rec.Entry.ID]; !ok {
			s.order = append(s.order, rec.Entry.ID)
		}
		s.entries[rec.Entry.ID] = rec.Entry
		// Replay and replication bypass Register's cache pre-fill; drop any
		// stale decode so the next apply re-parses the new version.
		delete(s.loaded, rec.Entry.ID)
	case OpDelete:
		if _, ok := s.entries[rec.ID]; ok {
			delete(s.entries, rec.ID)
			delete(s.loaded, rec.ID)
			for i, oid := range s.order {
				if oid == rec.ID {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
}
