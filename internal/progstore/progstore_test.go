package progstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	clx "clx"
	"clx/internal/synth"
)

// phoneRows is a small heterogeneous column every test program is
// synthesized from.
var phoneRows = []string{
	"(734) 645-8397", "(734)586-7252", "734.236.3466", "734-422-8073",
}

const phoneTarget = "<D>3'-'<D>3'-'<D>4"

// makeProgram synthesizes and exports a verified program for rows→target.
func makeProgram(t *testing.T, rows []string, target string) json.RawMessage {
	t.Helper()
	sess := clx.NewSession(rows)
	tr, err := sess.Label(clx.MustParsePattern(target))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRegisterGetListDelete(t *testing.T) {
	s, err := Open("") // ephemeral
	if err != nil {
		t.Fatal(err)
	}
	prog := makeProgram(t, phoneRows, phoneTarget)

	e1, err := s.Register(prog, Meta{Name: "phones", RowCount: len(phoneRows)})
	if err != nil {
		t.Fatal(err)
	}
	if e1.ID == "" || e1.Version != 1 || e1.Target != phoneTarget {
		t.Fatalf("entry = %+v", e1)
	}
	if len(e1.Sources) == 0 {
		t.Fatal("entry has no recorded source patterns")
	}
	e2, err := s.Register(prog, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if e2.ID == e1.ID {
		t.Fatal("fresh registration reused an id")
	}
	if got, ok := s.Get(e1.ID); !ok || got.Name != "phones" {
		t.Fatalf("Get(%s) = %+v, %v", e1.ID, got, ok)
	}
	if l := s.List(); len(l) != 2 || l[0].ID != e1.ID || l[1].ID != e2.ID {
		t.Fatalf("List order = %v", l)
	}

	// Re-registering an existing id bumps the version monotonically and
	// keeps the name.
	e1v2, err := s.Register(prog, Meta{ID: e1.ID})
	if err != nil {
		t.Fatal(err)
	}
	if e1v2.Version != 2 || e1v2.Name != "phones" {
		t.Fatalf("version bump = %+v", e1v2)
	}

	if ok, err := s.Delete(e2.ID); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, err := s.Delete(e2.ID); err != nil || ok {
		t.Fatalf("second Delete = %v, %v", ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestApplyHotPathAndDrift(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e, err := s.Register(makeProgram(t, phoneRows, phoneTarget), Meta{})
	if err != nil {
		t.Fatal(err)
	}

	live := []string{
		"(917) 555-0100",  // covered source format
		"212.555.0188",    // covered source format
		"646-555-0143",    // already clean
		"+1 917 555 0199", // novel format: drift
		"unknown",         // novel format: drift
	}
	before := synth.SynthesizeCalls()
	res, err := s.Apply(e.ID, live, 1)
	if err != nil {
		t.Fatal(err)
	}
	if synth.SynthesizeCalls() != before {
		t.Fatal("Apply ran Algorithm 2; the apply path must not synthesize")
	}
	want := []string{"917-555-0100", "212-555-0188", "646-555-0143", "+1 917 555 0199", "unknown"}
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	if !reflect.DeepEqual(res.Flagged, []int{3, 4}) {
		t.Fatalf("flagged = %v", res.Flagged)
	}
	if res.Drift.Checked != 5 || res.Drift.Drifted != 2 {
		t.Fatalf("drift = %+v", res.Drift)
	}
	if len(res.Drift.Clusters) != 2 {
		t.Fatalf("drift clusters = %+v", res.Drift.Clusters)
	}
	for _, c := range res.Drift.Clusters {
		if c.Count != 1 || len(c.Samples) != 1 || c.Pattern == "" || c.NL == "" {
			t.Errorf("cluster = %+v", c)
		}
	}
	// The digit-bearing novel format passes Eq-2 validation (re-synthesis
	// could cover it); the all-letter one cannot produce three digit runs.
	bysample := map[string]bool{}
	for _, c := range res.Drift.Clusters {
		bysample[c.Samples[0]] = c.Resynthesizable
	}
	if !bysample["+1 917 555 0199"] {
		t.Error("digit-bearing drift format should validate as resynthesizable")
	}
	if bysample["unknown"] {
		t.Error("letters-only drift format cannot pass Eq-2 validation")
	}

	if _, err := s.Apply("p999999", live, 1); err != ErrNotFound {
		t.Fatalf("Apply unknown id err = %v", err)
	}
}

// Registered programs survive a daemon restart: state is rebuilt from
// snapshot + WAL, entries compare equal field by field, and the recovered
// program applies identically.
func TestRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.compactEvery = 4 // force snapshot compactions mid-run
	prog := makeProgram(t, phoneRows, phoneTarget)
	var want []Entry
	for i := 0; i < 10; i++ {
		e, err := s.Register(prog, Meta{Name: fmt.Sprintf("prog-%d", i), RowCount: i})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	if ok, err := s.Delete(want[3].ID); err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	want = append(want[:3], want[4:]...)
	// Crash-style handoff: no Close, no Flush.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.List()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered entries differ:\n got %+v\nwant %+v", got, want)
	}
	// Fresh ids never collide with recovered ones.
	e, err := s2.Register(prog, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if w.ID == e.ID {
			t.Fatalf("id %s reused after recovery", e.ID)
		}
	}
	res, err := s2.Apply(want[0].ID, []string{"(917) 555-0100"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "917-555-0100" {
		t.Fatalf("recovered apply output = %v", res.Output)
	}
}

// A crash mid-append leaves a torn final WAL record; recovery keeps every
// acknowledged program and truncates the log back to a clean tail.
func TestCrashRecoveryTruncatedTail(t *testing.T) {
	for name, tear := range map[string]func(t *testing.T, wal string){
		"garbage-no-newline": func(t *testing.T, wal string) {
			f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteString(`{"op":"put","seq":99,"entry":{"id":"torn`); err != nil {
				t.Fatal(err)
			}
		},
		"cut-mid-record": func(t *testing.T, wal string) {
			st, err := os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			// Cut into the final record (records are hundreds of bytes).
			if err := os.Truncate(wal, st.Size()-40); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			prog := makeProgram(t, phoneRows, phoneTarget)
			const n = 5
			var ids []string
			for i := 0; i < n; i++ {
				e, err := s.Register(prog, Meta{})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, e.ID)
			}
			wal := filepath.Join(dir, "wal.jsonl")
			tear(t, wal)
			if name == "cut-mid-record" {
				// The cut destroys the last acknowledged record.
				ids = ids[:n-1]
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if s2.Len() != len(ids) {
				t.Fatalf("recovered %d programs, want %d", s2.Len(), len(ids))
			}
			for _, id := range ids {
				if _, ok := s2.Get(id); !ok {
					t.Fatalf("program %s lost", id)
				}
			}
			// The tail is clean: appends after recovery replay fine.
			e, err := s2.Register(prog, Meta{Name: "after-crash"})
			if err != nil {
				t.Fatal(err)
			}
			s3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if got, ok := s3.Get(e.ID); !ok || got.Name != "after-crash" {
				t.Fatalf("post-crash append not recovered: %+v %v", got, ok)
			}
			if s3.Len() != len(ids)+1 {
				t.Fatalf("final Len = %d, want %d", s3.Len(), len(ids)+1)
			}
		})
	}
}

// A malformed record with intact records after it is corruption, not a
// torn tail: recovery must fail loudly instead of dropping acknowledged
// writes.
func TestCorruptWALMidFileFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := makeProgram(t, phoneRows, phoneTarget)
	for i := 0; i < 3; i++ {
		if _, err := s.Register(prog, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	wal := filepath.Join(dir, "wal.jsonl")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes inside the first record.
	copy(raw[10:14], "\x00\x00\x00\x00")
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt mid-file WAL recovered silently")
	}
}

// Close folds everything into the snapshot; a reopened store starts from
// an empty WAL.
func TestCloseCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog := makeProgram(t, phoneRows, phoneTarget)
	e, err := s.Register(prog, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL not empty after Close: %d bytes", st.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("snapshot missing after Close: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(e.ID); !ok {
		t.Fatal("entry lost across Close/Open")
	}
}

// Concurrent register / apply / delete / list traffic; run under -race.
func TestConcurrentStress(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.compactEvery = 8 // compact under load too
	prog := makeProgram(t, phoneRows, phoneTarget)
	seed, err := s.Register(prog, Meta{Name: "seed"})
	if err != nil {
		t.Fatal(err)
	}
	live := []string{"(917) 555-0100", "212.555.0188", "drift row"}

	const (
		workers = 8
		iters   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					e, err := s.Register(prog, Meta{Name: fmt.Sprintf("w%d-%d", w, i)})
					if err != nil {
						errs <- err
						continue
					}
					if i%2 == 0 {
						if _, err := s.Delete(e.ID); err != nil {
							errs <- err
						}
					}
				case 1:
					res, err := s.Apply(seed.ID, live, 2)
					if err != nil {
						errs <- err
						continue
					}
					if res.Output[0] != "917-555-0100" || res.Drift.Drifted != 1 {
						errs <- fmt.Errorf("apply under load: %+v", res)
					}
				case 2:
					s.List()
					s.Get(seed.ID)
				case 3:
					if _, err := s.Register(prog, Meta{ID: seed.ID}); err != nil {
						errs <- err
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The survivors all recover.
	want := s.List()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.List(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-stress recovery differs:\n got %d entries\nwant %d entries", len(got), len(want))
	}
}
