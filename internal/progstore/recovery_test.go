// Table-driven recovery scenarios beyond the torn-tail cases: duplicate
// records in the WAL, version bumps replayed over a snapshot, and
// interleaved put/delete histories. Each scenario builds a store state —
// possibly editing the WAL by hand the way a crash or a retried append
// would — then reopens crash-style (no Close) and checks the recovered
// registry entry for entry: ids, versions, listing order, and that the
// next id allocation never collides.
package progstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendLastWALRecord re-appends the final intact WAL line verbatim — the
// artifact of an append retried after a lost acknowledgment.
func appendLastWALRecord(t *testing.T, wal string) {
	t.Helper()
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	last := lines[len(lines)-1]
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(last + "\n"); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryScenarios(t *testing.T) {
	type want struct {
		// ids in listing order; versions by id.
		ids      []string
		versions map[string]int
	}
	cases := []struct {
		name string
		// build mutates a fresh store at dir and returns the expected
		// post-recovery state. It must NOT Close the final store handle —
		// recovery runs crash-style.
		build func(t *testing.T, dir string) want
	}{
		{
			// A retried append duplicates the final put record (same seq,
			// same entry, same version). Replay must be idempotent: one
			// entry, listed once.
			name: "duplicate-put-record",
			build: func(t *testing.T, dir string) want {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				prog := makeProgram(t, phoneRows, phoneTarget)
				a, err := s.Register(prog, Meta{Name: "a"})
				if err != nil {
					t.Fatal(err)
				}
				b, err := s.Register(prog, Meta{Name: "b"})
				if err != nil {
					t.Fatal(err)
				}
				appendLastWALRecord(t, filepath.Join(dir, "wal.jsonl"))
				return want{ids: []string{a.ID, b.ID},
					versions: map[string]int{a.ID: 1, b.ID: 1}}
			},
		},
		{
			// Re-registering the same id writes one put record per
			// version; replay must keep the newest version, not the count
			// of records, and the duplicate id must not duplicate the
			// listing entry.
			name: "duplicate-version-entries",
			build: func(t *testing.T, dir string) want {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				prog := makeProgram(t, phoneRows, phoneTarget)
				if _, err := s.Register(prog, Meta{ID: "px", Name: "v1"}); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Register(prog, Meta{ID: "px", Name: "v2"}); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Register(prog, Meta{ID: "px", Name: "v3"}); err != nil {
					t.Fatal(err)
				}
				// And a retried append of the final (v3) record on top.
				appendLastWALRecord(t, filepath.Join(dir, "wal.jsonl"))
				return want{ids: []string{"px"}, versions: map[string]int{"px": 3}}
			},
		},
		{
			// Snapshot and WAL compose in order: entries folded into the
			// snapshot by Close, then a version bump, a delete, and a new
			// put appended to the fresh WAL. Recovery must apply the WAL
			// over the snapshot, not beside it.
			name: "snapshot-then-wal-ordering",
			build: func(t *testing.T, dir string) want {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				prog := makeProgram(t, phoneRows, phoneTarget)
				if _, err := s.Register(prog, Meta{ID: "pa"}); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Register(prog, Meta{ID: "pb"}); err != nil {
					t.Fatal(err)
				}
				if err := s.Close(); err != nil { // folds both into snapshot.json
					t.Fatal(err)
				}
				s, err = Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Register(prog, Meta{ID: "pa"}); err != nil { // pa -> v2
					t.Fatal(err)
				}
				if ok, err := s.Delete("pb"); err != nil || !ok {
					t.Fatalf("Delete(pb) = %v, %v", ok, err)
				}
				if _, err := s.Register(prog, Meta{ID: "pc"}); err != nil {
					t.Fatal(err)
				}
				return want{ids: []string{"pa", "pc"},
					versions: map[string]int{"pa": 2, "pc": 1}}
			},
		},
		{
			// Delete then re-put of the same id within one WAL: the id is
			// live again, starting over at version 1, listed at its new
			// position (the end).
			name: "delete-then-reput",
			build: func(t *testing.T, dir string) want {
				s, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				prog := makeProgram(t, phoneRows, phoneTarget)
				if _, err := s.Register(prog, Meta{ID: "pd"}); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Register(prog, Meta{ID: "pe"}); err != nil {
					t.Fatal(err)
				}
				if ok, err := s.Delete("pd"); err != nil || !ok {
					t.Fatalf("Delete(pd) = %v, %v", ok, err)
				}
				if _, err := s.Register(prog, Meta{ID: "pd"}); err != nil {
					t.Fatal(err)
				}
				return want{ids: []string{"pe", "pd"},
					versions: map[string]int{"pe": 1, "pd": 1}}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := tc.build(t, dir)

			s, err := Open(dir)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s.Close()
			got := s.List()
			if len(got) != len(w.ids) {
				t.Fatalf("recovered %d entries, want %d: %+v", len(got), len(w.ids), got)
			}
			for i, e := range got {
				if e.ID != w.ids[i] {
					t.Fatalf("listing[%d] = %s, want %s", i, e.ID, w.ids[i])
				}
				if e.Version != w.versions[e.ID] {
					t.Fatalf("%s recovered at version %d, want %d", e.ID, e.Version, w.versions[e.ID])
				}
			}
			// Each recovered program still loads and applies.
			for _, id := range w.ids {
				sp, version, err := s.Load(id)
				if err != nil {
					t.Fatalf("Load(%s): %v", id, err)
				}
				if version != w.versions[id] {
					t.Fatalf("Load(%s) version %d, want %d", id, version, w.versions[id])
				}
				out, _ := sp.Transform([]string{"(917) 555-0100"})
				if out[0] != "917-555-0100" {
					t.Fatalf("Load(%s) program output = %q", id, out[0])
				}
			}
			// The recovered sequence allocator never re-issues a live id.
			prog := makeProgram(t, phoneRows, phoneTarget)
			e, err := s.Register(prog, Meta{})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range w.ids {
				if e.ID == id {
					t.Fatalf("fresh id %s collides with a recovered entry", e.ID)
				}
			}
		})
	}
}
