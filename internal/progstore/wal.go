// Append-only JSON-lines write-ahead log. One record per line:
//
//	{"op":"put","seq":12,"idx":17,"entry":{...}}    register / version bump
//	{"op":"del","seq":12,"idx":18,"id":"p000003"}   delete
//
// Appends are fsynced before the mutating call returns, so an
// acknowledged registration survives a crash. Replay tolerates a partial
// tail — the one failure mode an fsynced append-only file has: a crash
// mid-write leaves a final line that is incomplete JSON (or lacks its
// newline), which recovery drops by truncating the file back to the end
// of the last intact record. A malformed record anywhere earlier is
// corruption, not a crash artifact, and aborts recovery loudly rather
// than silently dropping acknowledged writes.
//
// The JSON-lines record doubles as the replication wire format: a leader
// ships exactly the records it appended, and a follower applies them
// through ApplyRecord — the same mutation path crash recovery replays —
// so "what a follower applies" and "what a restart recovers" can never
// drift apart.
package progstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

const (
	// OpPut registers or version-bumps an entry; OpDelete removes one.
	OpPut    = "put"
	OpDelete = "del"
)

// Record is one log line — and one replication message. Idx is the
// store's replication log index: every mutation gets the next index, so
// a follower can detect gaps (a missed record means it must resync from
// a snapshot) and idempotently ignore records it already holds.
type Record struct {
	Op    string `json:"op"`
	Seq   int64  `json:"seq"`
	Idx   int64  `json:"idx"`
	Entry *Entry `json:"entry,omitempty"`
	ID    string `json:"id,omitempty"`
}

// walFile wraps the open log file.
type walFile struct {
	f *os.File
}

func openWAL(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("progstore: wal: %w", err)
	}
	return &walFile{f: f}, nil
}

// Append writes one record and fsyncs.
func (w *walFile) Append(rec Record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false) // keep "<D>3" readable
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("progstore: wal: %w", err)
	}
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("progstore: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("progstore: wal: %w", err)
	}
	return nil
}

// Truncate empties the log (after its contents were folded into a
// snapshot).
func (w *walFile) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("progstore: wal: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("progstore: wal: %w", err)
	}
	return w.f.Sync()
}

func (w *walFile) Close() error { return w.f.Close() }

// replay reads every intact record of the log at path. The tail is
// partial when the final bytes are not a newline-terminated valid record
// — a record without its newline, or cut mid-JSON; either way the tail is
// truncated away in place so the next append starts on a clean record
// boundary. A malformed record *followed by* intact records fails
// recovery: that is corruption, not a crash artifact.
func replay(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("progstore: wal: %w", err)
	}

	var (
		recs []Record
		good int // offset just past the last intact record
	)
	for off := 0; off < len(raw); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // newline-less tail: partial append
		}
		line := raw[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" {
			if off+nl+1 < len(raw) {
				return nil, fmt.Errorf("progstore: wal corrupt at offset %d: intact records follow a malformed record", off)
			}
			break // malformed final line: torn tail
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	if good < len(raw) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return nil, fmt.Errorf("progstore: wal: truncate tail: %w", err)
		}
	}
	return recs, nil
}
