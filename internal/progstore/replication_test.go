// In-package tests of the store-as-replica surface: the onAppend tap,
// the gap-free replication log, ApplyRecord's dedupe / out-of-order /
// durability contracts, snapshot install, and the fingerprint that the
// cluster suites build on. The fleet-level tests drive the same API over
// HTTP; these pin the store-local semantics directly.
package progstore

import (
	"errors"
	"path/filepath"
	"testing"
)

// leaderAndTap opens an ephemeral store with a recording replication tap.
func leaderAndTap(t *testing.T) (*Store, *[]Record) {
	t.Helper()
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	var shipped []Record
	s.SetOnAppend(func(rec Record) { shipped = append(shipped, rec) })
	return s, &shipped
}

func TestOnAppendTapOrderAndContents(t *testing.T) {
	s, shipped := leaderAndTap(t)
	prog := makeProgram(t, phoneRows, phoneTarget)

	e1, err := s.Register(prog, Meta{Name: "phones"})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Register(prog, Meta{ID: "explicit-id"})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Delete(e1.ID); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}

	recs := *shipped
	if len(recs) != 3 {
		t.Fatalf("tap observed %d records, want 3", len(recs))
	}
	// Idx is gap-free and starts at 1; ops and payloads match the
	// mutations that produced them.
	for i, rec := range recs {
		if rec.Idx != int64(i+1) {
			t.Fatalf("record %d has idx %d, want %d", i, rec.Idx, i+1)
		}
	}
	if recs[0].Op != OpPut || recs[0].Entry == nil || recs[0].Entry.ID != e1.ID {
		t.Fatalf("record 0 = %+v, want put of %s", recs[0], e1.ID)
	}
	if recs[1].Op != OpPut || recs[1].Entry == nil || recs[1].Entry.ID != e2.ID {
		t.Fatalf("record 1 = %+v, want put of %s", recs[1], e2.ID)
	}
	if recs[2].Op != OpDelete || recs[2].ID != e1.ID {
		t.Fatalf("record 2 = %+v, want delete of %s", recs[2], e1.ID)
	}
	if s.LastIdx() != 3 {
		t.Fatalf("leader LastIdx = %d, want 3", s.LastIdx())
	}

	// Removing the tap stops observation but the log keeps advancing.
	s.SetOnAppend(nil)
	if _, err := s.Register(prog, Meta{Name: "untapped"}); err != nil {
		t.Fatal(err)
	}
	if len(*shipped) != 3 || s.LastIdx() != 4 {
		t.Fatalf("after detach: %d observed (want 3), lastIdx %d (want 4)", len(*shipped), s.LastIdx())
	}
}

func TestApplyRecordConvergesDedupesAndRejectsGaps(t *testing.T) {
	leader, shipped := leaderAndTap(t)
	prog := makeProgram(t, phoneRows, phoneTarget)
	e1, err := leader.Register(prog, Meta{Name: "phones"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Register(prog, Meta{ID: "keeper"}); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Delete(e1.ID); err != nil {
		t.Fatal(err)
	}

	follower, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	recs := *shipped
	// A gap is refused before any state changes.
	if err := follower.ApplyRecord(recs[2]); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("gap apply returned %v, want ErrOutOfOrder", err)
	}
	for _, rec := range recs {
		if err := follower.ApplyRecord(rec); err != nil {
			t.Fatalf("apply idx %d: %v", rec.Idx, err)
		}
	}
	// Re-shipped records are ignored, not double-applied.
	if err := follower.ApplyRecord(recs[1]); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}

	if got, want := follower.Fingerprint(), leader.Fingerprint(); got != want {
		t.Fatalf("fingerprints diverge: follower %s leader %s", got, want)
	}
	if follower.Len() != leader.Len() || follower.Len() != 1 {
		t.Fatalf("follower %d entries, leader %d, want 1", follower.Len(), leader.Len())
	}
	if _, ok := follower.Get("keeper"); !ok {
		t.Fatal("follower missing surviving entry")
	}
	rs := follower.ReplicationStats()
	if rs.LastIdx != 3 || rs.RecordsApplied != 3 || rs.SnapshotsInstalled != 0 {
		t.Fatalf("follower ledger %+v, want last_idx 3, applied 3, snapshots 0", rs)
	}
	// The applied entries serve the hot path like local ones.
	res, err := follower.Apply("keeper", []string{"(313) 263-1192"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "313-263-1192" {
		t.Fatalf("follower apply = %q", res.Output[0])
	}
}

func TestInstallStateResyncsAndPersists(t *testing.T) {
	leader, shipped := leaderAndTap(t)
	prog := makeProgram(t, phoneRows, phoneTarget)
	for i := 0; i < 3; i++ {
		if _, err := leader.Register(prog, Meta{Name: "phones"}); err != nil {
			t.Fatal(err)
		}
	}

	dir := filepath.Join(t.TempDir(), "follower")
	follower, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the follower with unrelated state; the install must replace
	// it wholesale.
	if _, err := follower.Register(prog, Meta{ID: "stale"}); err != nil {
		t.Fatal(err)
	}

	if err := follower.InstallState(leader.State()); err != nil {
		t.Fatal(err)
	}
	if got, want := follower.Fingerprint(), leader.Fingerprint(); got != want {
		t.Fatalf("fingerprints diverge after install: %s vs %s", got, want)
	}
	if _, ok := follower.Get("stale"); ok {
		t.Fatal("stale entry survived the install")
	}
	rs := follower.ReplicationStats()
	if rs.SnapshotsInstalled != 1 || rs.LastIdx != 3 {
		t.Fatalf("ledger %+v, want 1 snapshot at last_idx 3", rs)
	}

	// Shipping resumes from the snapshot's index...
	if _, err := leader.Register(prog, Meta{ID: "after-sync"}); err != nil {
		t.Fatal(err)
	}
	recs := *shipped
	tail := recs[len(recs)-1]
	if err := follower.ApplyRecord(tail); err != nil {
		t.Fatalf("post-install apply: %v", err)
	}

	// ...and a follower restart recovers installed state ∘ WAL replay,
	// exactly like a leader crash recovery.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got, want := reopened.Fingerprint(), leader.Fingerprint(); got != want {
		t.Fatalf("fingerprints diverge after follower restart: %s vs %s", got, want)
	}
	if _, ok := reopened.Get("after-sync"); !ok {
		t.Fatal("restarted follower lost the post-install record")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	prog := makeProgram(t, phoneRows, phoneTarget)
	a, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("empty stores should have equal fingerprints")
	}
	if _, err := a.Register(prog, Meta{ID: "p1"}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint ignored a registration")
	}
	if _, err := b.Register(prog, Meta{ID: "p1"}); err != nil {
		t.Fatal(err)
	}
	// Same mutations, but b's entry has its own created-at; equality is
	// only guaranteed for replicated entries, which carry the leader's
	// bytes. Replicate properly and the digests match.
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.InstallState(a.State()); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("replicated store fingerprint diverges from its leader")
	}
}
