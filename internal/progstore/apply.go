// The hot apply path and its drift check. Apply runs rows through a
// stored program without any synthesis — matching goes through the
// process-wide rematch compile cache and row fan-out through the shared
// worker pool — and extends the paper's verifiability story to serving
// time: rows matching none of the program's recorded patterns (neither
// the target nor any source) are counted, clustered into the novel
// formats they exhibit, and checked against the Eq 1–2 validation filter,
// so a client learns not just *that* its saved program no longer covers
// the live column but *which* new formats appeared and whether
// re-synthesis could cover them.
package progstore

import (
	clx "clx"

	"clx/internal/cluster"
	"clx/internal/synth"
)

// ApplyResult is the outcome of applying a stored program to a column.
type ApplyResult struct {
	// ID and Version identify the program version that ran.
	ID      string `json:"id"`
	Version int    `json:"version"`
	// Output is the transformed column; Flagged the indices of rows left
	// unchanged because no recorded pattern covers them (§6.1:
	// flag, don't touch).
	Output  []string `json:"output"`
	Flagged []int    `json:"flagged,omitempty"`
	// Drift describes the flagged rows as format drift.
	Drift DriftReport `json:"drift"`
}

// DriftReport summarizes the rows of a live column that escaped the
// program's recorded source-pattern profile.
type DriftReport struct {
	// Checked is the number of rows applied; Drifted how many matched no
	// recorded pattern. Drifted == 0 means the saved program still covers
	// the column exactly as at synthesis time.
	Checked int `json:"checked"`
	Drifted int `json:"drifted"`
	// Clusters are the novel formats among the drifted rows, profiled
	// with the same §4.1 clustering the synthesis side uses.
	Clusters []DriftCluster `json:"clusters,omitempty"`
}

// DriftCluster is one novel format.
type DriftCluster struct {
	// Pattern (compact) and NL (display regexp) render the format.
	Pattern string `json:"pattern"`
	NL      string `json:"nl"`
	// Count is the number of drifted rows with this format; Samples holds
	// up to driftSampleCap of them.
	Count   int      `json:"count"`
	Samples []string `json:"samples"`
	// Resynthesizable reports the Eq-2 validation verdict V(p, target):
	// whether the format passes the token-frequency filter a fresh
	// Algorithm-2 run would apply, i.e. whether re-registering the program
	// over the drifted data could cover it.
	Resynthesizable bool `json:"resynthesizable"`
}

// driftSampleCap bounds the sample rows carried per drift cluster.
const driftSampleCap = 3

// Load returns the decoded program for id together with its version — the
// entry point for callers that drive the program themselves, e.g. the
// streaming bulk-apply engine. The returned program is a private shallow
// copy: setting Workers on it never races another apply of the same id.
func (s *Store) Load(id string) (*clx.SavedProgram, int, error) {
	lp, version, err := s.program(id)
	if err != nil {
		return nil, 0, err
	}
	sp := *lp.sp
	return &sp, version, nil
}

// Apply runs rows through stored program id with the given worker
// fan-out. It performs no synthesis: the decoded program is cached per
// version, and its matchers are shared process-wide.
func (s *Store) Apply(id string, rows []string, workers int) (*ApplyResult, error) {
	lp, version, err := s.program(id)
	if err != nil {
		return nil, err
	}
	// Shallow-copy the shared program so the per-request worker count
	// never races another apply on the same id.
	sp := *lp.sp
	sp.Workers = workers
	out, flagged := sp.Transform(rows)
	res := &ApplyResult{
		ID:      id,
		Version: version,
		Output:  out,
		Flagged: flagged,
		Drift:   driftReport(rows, flagged, lp, workers),
	}
	return res, nil
}

// driftReport profiles the flagged rows into their novel formats. Flagged
// rows are exactly the drifted ones: Transform leaves a row unchanged
// with ok=false iff it matches neither the target nor any case source.
func driftReport(rows []string, flagged []int, lp *loadedProgram, workers int) DriftReport {
	rep := DriftReport{Checked: len(rows), Drifted: len(flagged)}
	if len(flagged) == 0 {
		return rep
	}
	drifted := make([]string, len(flagged))
	for i, ri := range flagged {
		drifted[i] = rows[ri]
	}
	co := cluster.DefaultOptions()
	co.Workers = workers
	h := cluster.Profile(drifted, co)
	for _, c := range h.Clusters {
		dc := DriftCluster{
			Pattern:         c.Pattern.String(),
			NL:              c.Pattern.NLRegex(),
			Count:           c.Count(),
			Resynthesizable: synth.Validate(c.Pattern, lp.target, false),
		}
		for _, ri := range c.Rows {
			if len(dc.Samples) == driftSampleCap {
				break
			}
			dc.Samples = append(dc.Samples, drifted[ri])
		}
		rep.Clusters = append(rep.Clusters, dc)
	}
	return rep
}
