// Follower-side replication: the store as a replica. A leader ships the
// exact records it WAL-appended (the JSON-lines log is the wire format);
// a follower applies them through ApplyRecord, which reuses the
// crash-recovery mutation path and appends each record to the follower's
// own fsynced WAL — so a follower restart recovers through snapshot ∘
// WAL replay exactly like a leader restart, and a converged follower is
// byte-identical to its leader (Fingerprint pins this).
//
// Records are totally ordered by Idx with no gaps. A follower that
// detects a gap (it missed records while down, or it connected after the
// leader compacted) refuses the record with ErrOutOfOrder; the leader
// then pushes a full state snapshot (InstallState), after which shipping
// resumes from the snapshot's LastIdx. Registries are small — entries,
// not rows — so snapshot-on-gap is cheaper than retaining a record
// backlog per follower.
package progstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"clx/internal/obs"
)

var (
	mReplApplied = obs.NewCounter("clx_repl_records_applied_total",
		"Replication records applied by this process's follower stores.")
	mReplSnapshots = obs.NewCounter("clx_repl_snapshots_installed_total",
		"Full-state replication snapshots installed by this process's follower stores.")
)

// ErrOutOfOrder is returned by ApplyRecord when a record's Idx is not the
// next index the store expects — the follower missed records and must be
// resynced from a snapshot. Use errors.Is.
var ErrOutOfOrder = fmt.Errorf("progstore: replication record out of order")

// SetOnAppend installs the replication tap: fn observes every locally
// originated record (Register, Delete) immediately after its durable WAL
// append, in Idx order. fn runs with the store lock held and must not
// call back into the store; keep it to enqueueing. A nil fn removes the
// tap. Records applied via ApplyRecord are not observed — replication
// does not chain through followers.
func (s *Store) SetOnAppend(fn func(Record)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAppend = fn
}

// LastIdx returns the replication log index of the newest mutation.
func (s *Store) LastIdx() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastIdx
}

// ApplyRecord applies one shipped record to a follower store, durably
// (appended to the follower's own WAL before returning). The record must
// be the next in the log: rec.Idx == LastIdx()+1. A record at or below
// LastIdx is a re-ship and is ignored (nil error); a record further
// ahead returns ErrOutOfOrder and the follower must be resynced via
// InstallState.
func (s *Store) ApplyRecord(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case rec.Idx <= s.lastIdx:
		return nil // duplicate of an already-applied record
	case rec.Idx != s.lastIdx+1:
		return fmt.Errorf("%w: got idx %d, want %d", ErrOutOfOrder, rec.Idx, s.lastIdx+1)
	}
	s.applyRecordLocked(rec)
	if err := s.append(rec); err != nil {
		// The in-memory state is ahead of the follower's WAL now; surface
		// the error so the leader marks this follower for a snapshot resync
		// rather than acking a record the replica cannot recover.
		return err
	}
	s.recordsApplied++
	mReplApplied.Inc()
	return nil
}

// State returns the full registry state — the replication snapshot a
// leader pushes to a follower that cannot be caught up record by record.
// Entries are shared immutable snapshots; callers must not mutate them.
type State = snapshotDoc

// State captures the current registry state under the read lock.
func (s *Store) State() State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := State{Seq: s.seq, LastIdx: s.lastIdx, Order: append([]string(nil), s.order...)}
	for _, id := range s.order {
		st.Entries = append(st.Entries, s.entries[id])
	}
	return st
}

// InstallState replaces the follower's entire registry with the leader's
// snapshot and persists it (snapshot.json rewritten, WAL truncated), so
// a restart after the install recovers the installed state. Subsequent
// ApplyRecord calls continue from st.LastIdx+1.
func (s *Store) InstallState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq = st.Seq
	s.lastIdx = st.LastIdx
	s.order = append([]string(nil), st.Order...)
	s.entries = make(map[string]*Entry, len(st.Entries))
	s.loaded = make(map[string]*loadedProgram)
	for _, e := range st.Entries {
		s.entries[e.ID] = e
	}
	s.snapshotsInstalled++
	mReplSnapshots.Inc()
	if s.dir == "" || s.wal == nil {
		return nil
	}
	return s.compactLocked()
}

// Fingerprint is a deterministic digest of the full registry state —
// seq, log index, listing order, and every entry byte-for-byte. Two
// stores with equal fingerprints serve byte-identical registries; the
// cluster parity and convergence suites assert exactly this.
func (s *Store) Fingerprint() string {
	st := s.State()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(st); err != nil {
		// State is always encodable (it round-trips through the snapshot);
		// an error here is a programmer error.
		panic(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// ReplicationStats is the follower-side replication ledger for one
// store, surfaced per node under /v1/stats so an in-process multi-node
// fixture can reconcile shipping exactly (the process-wide /metrics
// series aggregate across stores).
type ReplicationStats struct {
	// LastIdx is the newest applied replication log index.
	LastIdx int64 `json:"last_idx"`
	// RecordsApplied counts records applied via ApplyRecord.
	RecordsApplied int64 `json:"records_applied"`
	// SnapshotsInstalled counts full-state resyncs via InstallState.
	SnapshotsInstalled int64 `json:"snapshots_installed"`
}

// ReplicationStats returns this store's follower-side ledger.
func (s *Store) ReplicationStats() ReplicationStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ReplicationStats{
		LastIdx:            s.lastIdx,
		RecordsApplied:     s.recordsApplied,
		SnapshotsInstalled: s.snapshotsInstalled,
	}
}
