// Snapshot compaction racing WAL shipping. The leader's store folds its
// WAL into a snapshot every few records; the replicator reads record
// streams and full states off the same store concurrently. These tests
// pin that every interleaving — follower attached before the writes,
// follower joining after compaction already truncated the WAL it would
// have needed, and a follower coming back empty mid-stream — converges
// to the leader's exact fingerprint. Run under -race; writers, the
// flusher, and compaction all overlap.
package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clx"
	"clx/internal/daemon"
	"clx/internal/fleet"
	"clx/internal/progstore"
)

// exportedProgram synthesizes one real program export — Register
// validates program JSON, so fixtures need the genuine article.
func exportedProgram(t *testing.T) json.RawMessage {
	t.Helper()
	target, err := clx.ParseAnyPattern("<D>3'-'<D>3'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	sess := clx.NewSession([]string{"(734) 645-8397", "(734)586-7252", "734.236.3466"}, clx.Options{})
	tr, err := sess.Label(target)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// newFollowerNode serves a fresh in-memory store behind the replication
// endpoints and returns the store plus its base URL.
func newFollowerNode(t *testing.T) (*progstore.Store, string) {
	t.Helper()
	st, err := progstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := daemon.New(st, daemon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return st, hs.URL
}

// registerN registers programs [from, to) on the leader from `writers`
// goroutines while `flush` runs concurrently, so WAL appends, compaction,
// and shipping genuinely interleave.
func registerN(t *testing.T, leader *progstore.Store, program json.RawMessage, from, to, writers int, flush func()) {
	t.Helper()
	ids := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ids {
				if _, err := leader.Register(program, progstore.Meta{
					ID:   fmt.Sprintf("prog-%03d", i),
					Name: "compaction-race",
				}); err != nil {
					t.Errorf("register %d: %v", i, err)
					return
				}
				flush()
			}
		}()
	}
	for i := from; i < to; i++ {
		ids <- i
	}
	close(ids)
	wg.Wait()
}

func TestReplicationRacesCompaction(t *testing.T) {
	program := exportedProgram(t)

	// Each scenario returns the leader store and a fully converged
	// replicator; the shared postlude asserts fingerprint identity and a
	// sane shipping ledger.
	scenarios := []struct {
		name string
		// wantSnapshots constrains FollowerStats.SnapshotsPushed.
		wantSnapshots func(int64) bool
		run           func(t *testing.T, leader *progstore.Store) (*fleet.Replicator, *progstore.Store)
	}{
		{
			// The follower is attached before any write: records ship as
			// compaction repeatedly truncates the WAL under the shipper.
			name:          "follower-from-start",
			wantSnapshots: func(n int64) bool { return n == 0 },
			run: func(t *testing.T, leader *progstore.Store) (*fleet.Replicator, *progstore.Store) {
				fst, url := newFollowerNode(t)
				repl := fleet.NewReplicator(leader, []string{url}, fleet.ReplicatorOptions{})
				t.Cleanup(repl.Close)
				registerN(t, leader, program, 0, 32, 4, func() { repl.Flush() })
				return repl, fst
			},
		},
		{
			// The follower joins after compaction already folded the
			// records it missed into the snapshot — only a full-state
			// resync can catch it up.
			name:          "join-after-compaction",
			wantSnapshots: func(n int64) bool { return n >= 1 },
			run: func(t *testing.T, leader *progstore.Store) (*fleet.Replicator, *progstore.Store) {
				registerN(t, leader, program, 0, 24, 4, func() {})
				fst, url := newFollowerNode(t)
				repl := fleet.NewReplicator(leader, []string{url}, fleet.ReplicatorOptions{})
				t.Cleanup(repl.Close)
				registerN(t, leader, program, 24, 32, 4, func() { repl.Flush() })
				return repl, fst
			},
		},
		{
			// Mid-stream the follower is replaced by an empty one (an
			// in-memory node restarting): the log gap forces a snapshot
			// resync while writers and compaction keep going.
			name:          "restart-empty-mid-stream",
			wantSnapshots: func(n int64) bool { return n >= 1 },
			run: func(t *testing.T, leader *progstore.Store) (*fleet.Replicator, *progstore.Store) {
				_, url := newFollowerNode(t)
				repl := fleet.NewReplicator(leader, []string{url}, fleet.ReplicatorOptions{})
				t.Cleanup(repl.Close)
				registerN(t, leader, program, 0, 16, 4, func() { repl.Flush() })
				fst, url2 := newFollowerNode(t)
				repl.SetFollowerURL(0, url2)
				registerN(t, leader, program, 16, 32, 4, func() { repl.Flush() })
				return repl, fst
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			leader, err := progstore.Open(filepath.Join(t.TempDir(), "leader"))
			if err != nil {
				t.Fatal(err)
			}
			defer leader.Close()
			// Compact every 4 records: a 32-write run folds the WAL eight
			// times while records are in flight.
			leader.SetCompactEvery(4)

			repl, followerStore := sc.run(t, leader)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := repl.Sync(ctx); err != nil {
				t.Fatalf("sync: %v\nstats: %+v", err, repl.Stats())
			}

			if lf, ff := leader.Fingerprint(), followerStore.Fingerprint(); lf != ff {
				t.Fatalf("fingerprints diverge after convergence: leader %s follower %s\nstats: %+v",
					lf, ff, repl.Stats())
			}
			if got, want := followerStore.Len(), leader.Len(); got != want {
				t.Fatalf("follower has %d programs, leader %d", got, want)
			}
			st := repl.Stats()
			f := st.Followers[0]
			if f.Lag != 0 || f.NeedsResync {
				t.Fatalf("follower not converged: %+v", f)
			}
			if !sc.wantSnapshots(f.SnapshotsPushed) {
				t.Fatalf("snapshots pushed = %d, outside the scenario's contract (%+v)",
					f.SnapshotsPushed, f)
			}
		})
	}
}
