// The cluster front: an http.Handler that spreads CLX requests over N
// clxd nodes with a pluggable routing policy. Program-bound applies and
// stateless compute are routed by policy; registry mutations and reads
// go to the leader (node 0), whose daemon replicates them to the
// followers before acknowledging — so the proxy can route the very next
// apply anywhere and the answer is byte-identical to a single node's.
//
// Two transparency guarantees the parity and fault suites pin:
//
//   - Backpressure is the node's, not the proxy's: a 429 from a routed
//     node is forwarded verbatim — same Retry-After header (the node's
//     EWMA-derived hint), same error envelope. For idempotent buffered
//     applies the proxy first retries the remaining nodes; only when
//     every node says 429 does the client see one (the last node's).
//   - A routed node dying mid-stream surfaces as the documented
//     mid-stream error-frame contract, never a hang or a torn line: the
//     proxy forwards NDJSON line-by-line (bytes preserved exactly), and
//     on an upstream failure it drops any partial line and appends a
//     {"done":false,"error":...} frame of its own.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clx/internal/fleet/routing"
	"clx/internal/obs"
)

var (
	mProxyRouted = obs.NewCounter("clx_proxy_routed_total",
		"Requests the cluster proxy routed to a backend (policy-picked or leader-pinned).")
	mProxyRetries = obs.NewCounter("clx_proxy_retries_total",
		"Idempotent applies retried on another node after a 429 or transport failure.")
	mProxyStreamUpstreamFailures = obs.NewCounter("clx_proxy_stream_upstream_failures_total",
		"Streams whose routed node failed mid-response; the proxy synthesized the error frame.")
)

// maxRetryBody caps the buffered body for retryable applies — the same
// 32 MiB the daemon itself accepts, so buffering never admits more than
// a node would.
const maxRetryBody int64 = 32 << 20

// defaultProbeTTL caches a node's scraped in-flight gauge briefly so the
// least-loaded policy does not turn every apply into a stats round trip.
const defaultProbeTTL = 250 * time.Millisecond

// ProxyOptions configure a Proxy.
type ProxyOptions struct {
	// Policy picks the node for routed requests; nil means round-robin.
	Policy routing.Policy
	// Client performs upstream requests; nil uses http.DefaultClient
	// (streams must not carry an overall timeout).
	Client *http.Client
	// ProbeTTL is the scrape cache lifetime for the least-loaded policy;
	// 0 means defaultProbeTTL, negative disables scraping (local in-flight
	// deltas only — what the deterministic tests use).
	ProbeTTL time.Duration
}

// backend is one clxd node as the proxy sees it.
type backend struct {
	id string

	mu  sync.RWMutex
	url string

	// localInFlight counts requests this proxy has routed to the node and
	// not yet seen complete — the freshest load signal available between
	// stats scrapes.
	localInFlight atomic.Int64
	picks         atomic.Int64

	probeMu      sync.Mutex
	probeAt      time.Time
	probeVal     int64
	probeErrors  atomic.Int64
	probeScrapes atomic.Int64
}

func (b *backend) baseURL() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.url
}

// Proxy is the cluster front handler.
type Proxy struct {
	backends []*backend
	policy   routing.Policy
	client   *http.Client
	probeTTL time.Duration
	retries  atomic.Int64
	streamUp atomic.Int64 // upstream mid-stream failures
}

// NewProxy builds a proxy over the given node base URLs; nodeURLs[0] is
// the leader.
func NewProxy(nodeURLs []string, opts ProxyOptions) (*Proxy, error) {
	if len(nodeURLs) == 0 {
		return nil, fmt.Errorf("fleet: proxy needs at least one node")
	}
	pol := opts.Policy
	if pol == nil {
		pol = &routing.RoundRobin{}
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	ttl := opts.ProbeTTL
	if ttl == 0 {
		ttl = defaultProbeTTL
	}
	p := &Proxy{policy: pol, client: client, probeTTL: ttl}
	for i, u := range nodeURLs {
		p.backends = append(p.backends, &backend{id: fmt.Sprintf("node-%d", i), url: strings.TrimRight(u, "/")})
	}
	return p, nil
}

// SetBackendURL repoints node i — a restarted in-process node comes back
// on a fresh address.
func (p *Proxy) SetBackendURL(i int, url string) {
	p.backends[i].mu.Lock()
	defer p.backends[i].mu.Unlock()
	p.backends[i].url = strings.TrimRight(url, "/")
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The proxy's own surface.
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/v1/proxy/stats":
		p.handleStats(w)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		// The proxy's own process registry (clx_proxy_routed_total,
		// clx_proxy_retries_total, ...). Node metrics are per-node by
		// nature; scrape the nodes directly, not through the proxy.
		obs.Handler().ServeHTTP(w, r)
		return
	}

	// Interactive sessions are stateful on exactly one node, so session
	// routing is rendezvous-on-session-id regardless of the configured
	// policy. Create decides ownership up front: the proxy mints the id
	// (unless the client pinned one), hands it to the owner via
	// X-Session-ID, and every follow-up request hashes to the same node.
	// Two documented limitations in multi-node clusters: GET /v1/sessions
	// (the list) falls through to the leader below and reports the
	// leader's sessions only, and a session commit registers the program
	// on the session's owner node — only commits owned by the leader
	// replicate to followers (routing follower commits through the leader
	// needs a raw-program registration hop and is future work).
	if r.Method == http.MethodPost && r.URL.Path == "/v1/sessions" {
		id := r.Header.Get("X-Session-ID")
		if id == "" {
			id = "s-" + obs.NewRequestID()
			r.Header.Set("X-Session-ID", id)
		}
		p.forwardTo(w, r, p.backends[p.sessionOwner(id)], nil)
		return
	}
	if id, ok := sessionPath(r); ok {
		p.forwardTo(w, r, p.backends[p.sessionOwner(id)], nil)
		return
	}

	if id, ok := streamPath(r); ok {
		p.serveStream(w, r, id)
		return
	}
	if id, ok := applyPath(r); ok {
		p.serveBuffered(w, r, id)
		return
	}
	if r.Method == http.MethodPost && statelessCompute[r.URL.Path] {
		p.serveBuffered(w, r, "")
		return
	}
	// Everything else — registry mutations and reads, stats, metrics —
	// is the leader's.
	p.forwardTo(w, r, p.backends[0], nil)
}

// statelessCompute are the POST endpoints with no registry state: any
// node computes the same answer, so they are policy-routed too.
var statelessCompute = map[string]bool{
	"/v1/cluster":      true,
	"/v1/transform":    true,
	"/v1/apply":        true,
	"/v1/tables/unify": true,
}

// applyPath matches POST /v1/programs/{id}/apply.
func applyPath(r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		return "", false
	}
	id, ok := strings.CutPrefix(r.URL.Path, "/v1/programs/")
	if !ok {
		return "", false
	}
	id, ok = strings.CutSuffix(id, "/apply")
	if !ok || id == "" || strings.Contains(id, "/") {
		return "", false
	}
	return id, true
}

// sessionPath matches /v1/sessions/{id} and /v1/sessions/{id}/<verb>,
// any method.
func sessionPath(r *http.Request) (string, bool) {
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/sessions/")
	if !ok {
		return "", false
	}
	id, _, _ := strings.Cut(rest, "/")
	return id, id != ""
}

// sessionOwner resolves a session id to its owning node by rendezvous
// hash over the stable backend ids.
func (p *Proxy) sessionOwner(id string) int {
	snap := make([]routing.Backend, len(p.backends))
	for i, b := range p.backends {
		snap[i] = routing.Backend{ID: b.id}
	}
	return routing.Rendezvous(id, snap)
}

// streamPath matches POST /v1/programs/{id}/apply/stream.
func streamPath(r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		return "", false
	}
	id, ok := strings.CutPrefix(r.URL.Path, "/v1/programs/")
	if !ok {
		return "", false
	}
	id, ok = strings.CutSuffix(id, "/apply/stream")
	if !ok || id == "" || strings.Contains(id, "/") {
		return "", false
	}
	return id, true
}

// pick snapshots the backends and asks the policy for a node.
func (p *Proxy) pick(programID string) int {
	needLoad := p.policy.Name() == "least-loaded"
	snap := make([]routing.Backend, len(p.backends))
	for i, b := range p.backends {
		load := b.localInFlight.Load()
		if needLoad {
			load += p.scrapeInFlight(b)
		}
		snap[i] = routing.Backend{ID: b.id, InFlight: load}
	}
	i := p.policy.Pick(programID, snap)
	if i < 0 || i >= len(p.backends) {
		i = 0
	}
	return i
}

// scrapeInFlight reads the node's streams-in-flight gauge from
// /v1/stats, cached for probeTTL.
func (p *Proxy) scrapeInFlight(b *backend) int64 {
	if p.probeTTL < 0 {
		return 0
	}
	b.probeMu.Lock()
	defer b.probeMu.Unlock()
	if time.Since(b.probeAt) < p.probeTTL {
		return b.probeVal
	}
	b.probeScrapes.Add(1)
	b.probeAt = time.Now()
	resp, err := p.client.Get(b.baseURL() + "/v1/stats")
	if err != nil {
		b.probeErrors.Add(1)
		return b.probeVal
	}
	defer resp.Body.Close()
	var doc struct {
		Admission struct {
			InFlight int64 `json:"in_flight"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		b.probeErrors.Add(1)
		return b.probeVal
	}
	b.probeVal = doc.Admission.InFlight
	return b.probeVal
}

// serveBuffered routes a JSON request whose body fits in memory — the
// idempotent case, so a 429 or an unreachable node triggers a retry on
// each remaining node before the client hears a failure. The final
// response, success or not, is forwarded verbatim: in particular a 429's
// Retry-After stays the node's own EWMA-derived hint.
func (p *Proxy) serveBuffered(w http.ResponseWriter, r *http.Request, programID string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRetryBody+1))
	if err != nil {
		writeProxyError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %v", err))
		return
	}
	if int64(len(body)) > maxRetryBody {
		writeProxyError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the %d-byte cap", maxRetryBody))
		return
	}
	first := p.pick(programID)
	order := make([]int, 0, len(p.backends))
	order = append(order, first)
	for i := range p.backends {
		if i != first {
			order = append(order, i)
		}
	}
	for attempt, i := range order {
		b := p.backends[i]
		if attempt > 0 {
			p.retries.Add(1)
			mProxyRetries.Inc()
		}
		resp, err := p.roundTrip(r, b, bytes.NewReader(body))
		if err != nil {
			if attempt == len(order)-1 {
				writeProxyError(w, http.StatusBadGateway, fmt.Errorf("all nodes unreachable; last: %v", err))
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < len(order)-1 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
}

// serveStream routes a streaming apply. The body streams through (no
// buffering, no retry), and the response is forwarded line-by-line so an
// upstream failure can be turned into the documented error frame instead
// of a truncated body.
func (p *Proxy) serveStream(w http.ResponseWriter, r *http.Request, programID string) {
	// Same full-duplex contract as the node itself: the client may still
	// be producing rows while result frames flow back, so the proxy must
	// not let its own server drain the unread request body before
	// releasing response headers. Best-effort, as in the daemon.
	http.NewResponseController(w).EnableFullDuplex()
	b := p.backends[p.pick(programID)]
	resp, err := p.roundTrip(r, b, r.Body)
	if err != nil {
		writeProxyError(w, http.StatusBadGateway, fmt.Errorf("node unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		io.Copy(w, resp.Body) // error envelope, not the NDJSON protocol
		return
	}
	flusher, _ := w.(http.Flusher)
	br := newLineForwarder(resp.Body)
	for {
		line, err := br.next()
		if len(line) > 0 {
			if _, werr := w.Write(line); werr != nil {
				return // client gone; nothing left to preserve
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			// The routed node died mid-stream. Any partial line was held
			// back, so the client's last line is this well-formed frame.
			p.streamUp.Add(1)
			mProxyStreamUpstreamFailures.Inc()
			frame, _ := json.Marshal(map[string]any{
				"done":  false,
				"error": fmt.Sprintf("upstream node failed mid-stream: %v", err),
			})
			w.Write(append(frame, '\n'))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

// lineForwarder yields complete newline-terminated lines (newline
// included), holding back a partial tail until its newline arrives. At a
// clean EOF any unterminated tail is released as-is, preserving byte
// identity with the upstream body.
type lineForwarder struct {
	r   io.Reader
	buf []byte
}

func newLineForwarder(r io.Reader) *lineForwarder { return &lineForwarder{r: r} }

// next returns the next chunk of complete lines. On error, held-back
// partial bytes are dropped (err != io.EOF) or flushed (io.EOF).
func (lf *lineForwarder) next() ([]byte, error) {
	chunk := make([]byte, 32<<10)
	for {
		n, err := lf.r.Read(chunk[:cap(chunk)])
		lf.buf = append(lf.buf, chunk[:n]...)
		if i := bytes.LastIndexByte(lf.buf, '\n'); i >= 0 {
			out := lf.buf[:i+1]
			lf.buf = append([]byte(nil), lf.buf[i+1:]...)
			return out, err
		}
		if err == io.EOF {
			out := lf.buf
			lf.buf = nil
			return out, io.EOF
		}
		if err != nil {
			lf.buf = nil // partial line: hold it back forever
			return nil, err
		}
	}
}

// forwardTo proxies one request to a fixed backend verbatim.
func (p *Proxy) forwardTo(w http.ResponseWriter, r *http.Request, b *backend, body io.Reader) {
	if body == nil {
		body = r.Body
	}
	resp, err := p.roundTrip(r, b, body)
	if err != nil {
		writeProxyError(w, http.StatusBadGateway, fmt.Errorf("leader unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// roundTrip sends r's method/path/query/headers with the given body to
// backend b, counting local in-flight for the duration.
func (p *Proxy) roundTrip(r *http.Request, b *backend, body io.Reader) (*http.Response, error) {
	url := b.baseURL() + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	if req.Header.Get("X-Request-ID") == "" {
		// Mint here so the routed node's access log correlates with ours.
		req.Header.Set("X-Request-ID", obs.NewRequestID())
	}
	b.picks.Add(1)
	mProxyRouted.Inc()
	b.localInFlight.Add(1)
	resp, err := p.client.Do(req)
	if err != nil {
		b.localInFlight.Add(-1)
		return nil, err
	}
	resp.Body = &releaseOnClose{ReadCloser: resp.Body, release: func() { b.localInFlight.Add(-1) }}
	return resp, nil
}

// releaseOnClose decrements the local in-flight count exactly once when
// the response body is closed.
type releaseOnClose struct {
	io.ReadCloser
	once    sync.Once
	release func()
}

func (rc *releaseOnClose) Close() error {
	rc.once.Do(rc.release)
	return rc.ReadCloser.Close()
}

// hop-by-hop headers are never forwarded (RFC 9110 §7.6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeProxyError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(map[string]string{"error": err.Error()})
}

// ProxyBackendStats is one node's routing ledger.
type ProxyBackendStats struct {
	ID            string `json:"id"`
	URL           string `json:"url"`
	Picks         int64  `json:"picks"`
	LocalInFlight int64  `json:"local_in_flight"`
	ProbeScrapes  int64  `json:"probe_scrapes"`
	ProbeErrors   int64  `json:"probe_errors"`
}

// ProxyStats is the GET /v1/proxy/stats document.
type ProxyStats struct {
	Policy                 string              `json:"policy"`
	Backends               []ProxyBackendStats `json:"backends"`
	Retries                int64               `json:"retries"`
	StreamUpstreamFailures int64               `json:"stream_upstream_failures"`
}

// Stats snapshots the proxy's routing ledger.
func (p *Proxy) Stats() ProxyStats {
	st := ProxyStats{
		Policy:                 p.policy.Name(),
		Retries:                p.retries.Load(),
		StreamUpstreamFailures: p.streamUp.Load(),
	}
	for _, b := range p.backends {
		st.Backends = append(st.Backends, ProxyBackendStats{
			ID:            b.id,
			URL:           b.baseURL(),
			Picks:         b.picks.Load(),
			LocalInFlight: b.localInFlight.Load(),
			ProbeScrapes:  b.probeScrapes.Load(),
			ProbeErrors:   b.probeErrors.Load(),
		})
	}
	return st
}

func (p *Proxy) handleStats(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(p.Stats())
}
