// Replication wire envelopes shared by the leader-side shipper here and
// the follower-side endpoints in internal/daemon. The payloads
// themselves — progstore.Record and progstore.State — are the registry's
// own WAL and snapshot formats; replication adds only these thin frames.
package fleet

import "clx/internal/progstore"

// WALShipRequest is the POST /v1/replication/wal body: a contiguous,
// Idx-ordered batch of records.
type WALShipRequest struct {
	Records []progstore.Record `json:"records"`
}

// ReplResponse is the uniform response to both replication posts. On 200
// LastIdx acknowledges the follower's new log position; on 409 it names
// the position the follower actually holds (the leader resyncs from a
// snapshot); on other errors Error explains.
type ReplResponse struct {
	LastIdx int64  `json:"last_idx"`
	Error   string `json:"error,omitempty"`
}
