// Cluster smoke: one fixed, fully deterministic workload through a
// 2-node in-process cluster, reconciled counter-by-counter. Nothing here
// is a floor or a tolerance — every ledger entry (replication ships,
// follower applies, proxy picks, per-node admission decisions) must
// account exactly for what the client observed, which is what `make
// cluster-smoke` gates on.
package fleet_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"clx/internal/fleet/fleettest"
)

// smokeStats is the slice of a node's /v1/stats this test reconciles.
type smokeStats struct {
	Admission struct {
		Admitted int64 `json:"admitted"`
		Rejected int64 `json:"rejected"`
		InFlight int64 `json:"in_flight"`
	} `json:"admission"`
	Replication struct {
		LastIdx            int64 `json:"last_idx"`
		RecordsApplied     int64 `json:"records_applied"`
		SnapshotsInstalled int64 `json:"snapshots_installed"`
	} `json:"replication"`
}

func nodeStats(t *testing.T, baseURL string) smokeStats {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st smokeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestClusterSmoke(t *testing.T) {
	c := fleettest.New(t, fleettest.Options{Nodes: 2})

	const (
		registers = 8
		deletes   = 2
		applies   = 6
		streams   = 4
	)
	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(c.URL()+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	// Fixed workload, no randomness: ids, rows, and request order are all
	// literals, so every counter below has exactly one right value.
	for i := 0; i < registers; i++ {
		resp, raw := post("/v1/programs", fmt.Sprintf(
			`{"rows":["(734) 645-8397","(734)586-7252","734.236.3466"],`+
				`"target":"<D>3'-'<D>3'-'<D>4","id":"smoke-%02d"}`, i))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	for i := 0; i < deletes; i++ {
		req, _ := http.NewRequest("DELETE", c.URL()+fmt.Sprintf("/v1/programs/smoke-%02d", i), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete %d: status %d", i, resp.StatusCode)
		}
	}
	var applyOK int
	for i := 0; i < applies; i++ {
		resp, raw := post("/v1/programs/smoke-07/apply", `{"rows":["(313) 263-1192"]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("apply %d: status %d: %s", i, resp.StatusCode, raw)
		}
		applyOK++
	}
	var streamOK, stream429 int
	for i := 0; i < streams; i++ {
		resp, raw := post("/v1/programs/smoke-07/apply/stream?chunk=2", "(313) 263-1192\n555.955.1234\n")
		switch resp.StatusCode {
		case http.StatusOK:
			streamOK++
		case http.StatusTooManyRequests:
			stream429++
		default:
			t.Fatalf("stream %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	if streamOK != streams {
		t.Fatalf("streams: %d ok, %d rejected; a sequential fixed workload must all be admitted",
			streamOK, stream429)
	}

	// Replication ledger: every write shipped, every ship applied, no
	// resyncs, no errors, zero lag — and identical registry fingerprints.
	const walRecords = registers + deletes
	rs := c.Repl.Stats()
	if rs.LeaderIdx != walRecords {
		t.Fatalf("leader idx %d, want %d", rs.LeaderIdx, walRecords)
	}
	f := rs.Followers[0]
	if f.AckedIdx != walRecords || f.Lag != 0 {
		t.Fatalf("follower acked %d lag %d, want %d and 0", f.AckedIdx, f.Lag, walRecords)
	}
	if f.RecordsShipped != walRecords || f.SnapshotsPushed != 0 || f.ShipErrors != 0 {
		t.Fatalf("shipping ledger %+v, want exactly %d records, 0 snapshots, 0 errors", f, walRecords)
	}
	follower := nodeStats(t, c.Nodes[1].URL())
	if follower.Replication.LastIdx != walRecords ||
		follower.Replication.RecordsApplied != walRecords ||
		follower.Replication.SnapshotsInstalled != 0 {
		t.Fatalf("follower replication %+v, want last_idx=records_applied=%d, snapshots 0",
			follower.Replication, walRecords)
	}
	if lf, ff := c.Nodes[0].Store.Fingerprint(), c.Nodes[1].Store.Fingerprint(); lf != ff {
		t.Fatalf("fingerprints diverge: leader %s follower %s", lf, ff)
	}

	// Routing ledger: registry writes always round-trip to the leader;
	// the 10 routed requests alternate round-robin starting at node 0.
	ps := c.Proxy.Stats()
	if ps.Retries != 0 || ps.StreamUpstreamFailures != 0 {
		t.Fatalf("proxy retries=%d upstream failures=%d, want 0 and 0",
			ps.Retries, ps.StreamUpstreamFailures)
	}
	routed := applies + streams
	wantPicks := []int64{int64(registers + deletes + routed/2), int64(routed / 2)}
	for i, b := range ps.Backends {
		if b.Picks != wantPicks[i] {
			t.Fatalf("node %d picks %d, want %d (stats %+v)", i, b.Picks, wantPicks[i], ps)
		}
		if b.LocalInFlight != 0 {
			t.Fatalf("node %d local in-flight %d after quiesce, want 0", i, b.LocalInFlight)
		}
	}

	// Admission ledger: the nodes' own admitted/rejected counters must sum
	// to exactly the stream responses the client saw.
	leader := nodeStats(t, c.Nodes[0].URL())
	gotAdmitted := leader.Admission.Admitted + follower.Admission.Admitted
	gotRejected := leader.Admission.Rejected + follower.Admission.Rejected
	if gotAdmitted != int64(streamOK) || gotRejected != int64(stream429) {
		t.Fatalf("admission admitted=%d rejected=%d, want %d and %d",
			gotAdmitted, gotRejected, streamOK, stream429)
	}
	if leader.Admission.InFlight != 0 || follower.Admission.InFlight != 0 {
		t.Fatalf("in-flight gauges %d/%d after quiesce, want 0/0",
			leader.Admission.InFlight, follower.Admission.InFlight)
	}

	// The Prometheus surfaces exist on both tiers: the proxy serves its
	// own routing counters, the nodes their replication counters. (Values
	// are process-global across in-process fixtures, so exact conservation
	// is asserted on the per-instance stats above; here the series just
	// have to be exposed.)
	mustExpose := func(baseURL, series string) {
		t.Helper()
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(raw), series) {
			t.Fatalf("%s/metrics does not expose %s", baseURL, series)
		}
	}
	mustExpose(c.URL(), "clx_proxy_routed_total")
	mustExpose(c.Nodes[0].URL(), "clx_repl_records_shipped_total")
	mustExpose(c.Nodes[1].URL(), "clx_streams_in_flight")
}
