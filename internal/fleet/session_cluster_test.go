// End-to-end session loop through the cluster front: the proxy mints
// the session id, pins every follow-up to the owner, and the committed
// program serves /v1/programs/{id}/apply through the proxy with output
// byte-identical to the library path.
package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	clx "clx"
	"clx/internal/fleet/fleettest"
)

func proxyJSON(t *testing.T, method, url, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: unmarshal %s: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

func TestClusterSessionLoop(t *testing.T) {
	// A single-node cluster exercises the whole proxy session path —
	// minted id, rendezvous pinning, commit — without the follower-commit
	// caveat (see the proxy's session routing comment): with one node the
	// owner is always the leader.
	c := fleettest.New(t, fleettest.Options{Nodes: 1, Policy: "round-robin"})
	base := c.URL()

	var created struct {
		ID   string `json:"id"`
		Rows int    `json:"rows"`
	}
	if code := proxyJSON(t, "POST", base+"/v1/sessions",
		`{"rows":["31/12/2019","28/02/2020","12-31-2019"]}`, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if created.ID == "" || created.Rows != 3 {
		t.Fatalf("created = %+v (the proxy should have minted an id)", created)
	}
	sess := base + "/v1/sessions/" + created.ID

	var clusters struct {
		Clusters []struct {
			Pattern string `json:"pattern"`
		} `json:"clusters"`
	}
	if code := proxyJSON(t, "GET", sess+"/clusters", "", &clusters); code != http.StatusOK || len(clusters.Clusters) == 0 {
		t.Fatalf("clusters: %d %+v", code, clusters)
	}

	if code := proxyJSON(t, "POST", sess+"/append", `{"rows":["01/07/2021"]}`, nil); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	if code := proxyJSON(t, "POST", sess+"/label", `{"target":"<D>2'-'<D>2'-'<D>4"}`, nil); code != http.StatusOK {
		t.Fatalf("label: %d", code)
	}

	var cands struct {
		Candidates []struct {
			Source   int  `json:"source"`
			Alt      int  `json:"alt"`
			Selected bool `json:"selected"`
		} `json:"candidates"`
	}
	if code := proxyJSON(t, "GET", sess+"/repair?source=0", "", &cands); code != http.StatusOK || len(cands.Candidates) < 2 {
		t.Fatalf("candidates: %d %+v", code, cands)
	}
	pick := cands.Candidates[0]
	if pick.Selected {
		pick = cands.Candidates[1]
	}
	if code := proxyJSON(t, "POST", sess+"/repair",
		fmt.Sprintf(`{"source":%d,"alt":%d}`, pick.Source, pick.Alt), nil); code != http.StatusOK {
		t.Fatalf("repair: %d", code)
	}

	var entry struct {
		ID string `json:"id"`
	}
	if code := proxyJSON(t, "POST", sess+"/commit", `{"name":"cluster-dates"}`, &entry); code != http.StatusCreated || entry.ID == "" {
		t.Fatalf("commit: %d %+v", code, entry)
	}

	// Byte-parity through the proxy's policy-routed apply.
	lib := clx.NewSession([]string{"31/12/2019", "28/02/2020", "12-31-2019", "01/07/2021"})
	tr, err := lib.Label(clx.MustParsePattern("<D>2'-'<D>2'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Repair(pick.Source, pick.Alt); err != nil {
		t.Fatal(err)
	}
	want, _ := tr.Run()

	var applied struct {
		Output []string `json:"output"`
	}
	if code := proxyJSON(t, "POST", base+"/v1/programs/"+entry.ID+"/apply",
		`{"rows":["31/12/2019","28/02/2020","12-31-2019","01/07/2021"]}`, &applied); code != http.StatusOK {
		t.Fatalf("apply: %d", code)
	}
	if len(applied.Output) != len(want) {
		t.Fatalf("apply rows = %d, want %d", len(applied.Output), len(want))
	}
	for i := range want {
		if applied.Output[i] != want[i] {
			t.Fatalf("parity broken at row %d: %q != %q", i, applied.Output[i], want[i])
		}
	}
}
