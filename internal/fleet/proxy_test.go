// Proxy backpressure contract, pinned against stub nodes: a 429's
// Retry-After header always reaches the client exactly as the node wrote
// it (the proxy never mints its own hint), idempotent buffered applies
// are retried on the remaining nodes first, and streaming applies are
// never retried.
package fleet_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clx/internal/fleet"
	"clx/internal/fleet/routing"
)

// stubNode is a scripted clxd stand-in that records every request it saw.
type stubNode struct {
	mu      sync.Mutex
	hits    []string // request paths in arrival order
	handler http.HandlerFunc
	srv     *httptest.Server
}

func newStubNode(t *testing.T, handler http.HandlerFunc) *stubNode {
	t.Helper()
	n := &stubNode{handler: handler}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		n.hits = append(n.hits, r.URL.Path)
		n.mu.Unlock()
		n.handler(w, r)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func (n *stubNode) hitCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hits)
}

func busyHandler(retryAfter string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"too many concurrent streams"}`+"\n")
	}
}

func okHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}
}

// newStubProxy fronts the given stubs with a round-robin proxy (the
// policy is deterministic: request k goes to node k mod n first).
func newStubProxy(t *testing.T, stubs ...*stubNode) (*fleet.Proxy, *httptest.Server) {
	t.Helper()
	var urls []string
	for _, s := range stubs {
		urls = append(urls, s.srv.URL)
	}
	pol, err := routing.New("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := fleet.NewProxy(urls, fleet.ProxyOptions{Policy: pol, ProbeTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)
	return proxy, front
}

// TestProxyApplyRetriesBusyNode: the first-picked node says 429, so the
// proxy retries the apply on the other node and the client sees its 200 —
// never the 429.
func TestProxyApplyRetriesBusyNode(t *testing.T) {
	busy := newStubNode(t, busyHandler("17"))
	ok := newStubNode(t, okHandler(`{"rows":["a"]}`+"\n"))
	proxy, front := newStubProxy(t, busy, ok)

	resp, err := http.Post(front.URL+"/v1/programs/p1/apply", "application/json",
		strings.NewReader(`{"rows":["x"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry; body %s", resp.StatusCode, body)
	}
	if got := string(body); got != `{"rows":["a"]}`+"\n" {
		t.Fatalf("body %q not forwarded verbatim", got)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatalf("success response carries Retry-After %q", resp.Header.Get("Retry-After"))
	}
	if busy.hitCount() != 1 || ok.hitCount() != 1 {
		t.Fatalf("hits: busy=%d ok=%d, want 1 and 1", busy.hitCount(), ok.hitCount())
	}
	if st := proxy.Stats(); st.Retries != 1 {
		t.Fatalf("proxy retries = %d, want 1", st.Retries)
	}
}

// TestProxyApplyAllBusyForwardsLastRetryAfter: when every node is busy the
// client gets the last-attempted node's own Retry-After verbatim — the
// proxy neither strips nor mints the hint.
func TestProxyApplyAllBusyForwardsLastRetryAfter(t *testing.T) {
	a := newStubNode(t, busyHandler("17"))
	b := newStubNode(t, busyHandler("23"))
	proxy, front := newStubProxy(t, a, b)

	resp, err := http.Post(front.URL+"/v1/programs/p1/apply", "application/json",
		strings.NewReader(`{"rows":["x"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// Round-robin picks node 0 first, so node 1's hint is the one the
	// client must see.
	if got := resp.Header.Get("Retry-After"); got != "23" {
		t.Fatalf("Retry-After %q, want node b's own %q", got, "23")
	}
	if a.hitCount() != 1 || b.hitCount() != 1 {
		t.Fatalf("hits: a=%d b=%d, want both tried once", a.hitCount(), b.hitCount())
	}
	if st := proxy.Stats(); st.Retries != 1 {
		t.Fatalf("proxy retries = %d, want 1", st.Retries)
	}
}

// TestProxyStreamBusyNotRetried: a streaming apply is not idempotent from
// the proxy's seat (the body already streamed out), so a 429 passes
// through untouched and no other node is bothered.
func TestProxyStreamBusyNotRetried(t *testing.T) {
	a := newStubNode(t, busyHandler("9"))
	b := newStubNode(t, busyHandler("31"))
	proxy, front := newStubProxy(t, a, b)

	resp, err := http.Post(front.URL+"/v1/programs/p1/apply/stream", "application/x-ndjson",
		strings.NewReader("row1\nrow2\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After %q, want the routed node's own %q", got, "9")
	}
	if a.hitCount() != 1 || b.hitCount() != 0 {
		t.Fatalf("hits: a=%d b=%d, want the stream routed once and never retried",
			a.hitCount(), b.hitCount())
	}
	if st := proxy.Stats(); st.Retries != 0 {
		t.Fatalf("proxy retries = %d, want 0 for streams", st.Retries)
	}
}

// TestProxySessionAffinity pins the session-routing contract: the proxy
// mints the session id at create time (X-Session-ID), every
// /v1/sessions/{id}/* request for that id lands on the same node, and a
// client-pinned id is honored. Round-robin is configured on purpose —
// session routing must override the policy, because session state lives
// on exactly one node.
func TestProxySessionAffinity(t *testing.T) {
	var mu sync.Mutex
	headerSeen := map[string]string{} // path -> X-Session-ID forwarded
	record := func(name string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			headerSeen[name+" "+r.URL.Path] = r.Header.Get("X-Session-ID")
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"ok":true}`+"\n")
		}
	}
	a := newStubNode(t, record("a"))
	b := newStubNode(t, record("b"))
	_, front := newStubProxy(t, a, b)

	// Create without a pinned id: the proxy must mint one and hand it to
	// the routed node.
	resp, err := http.Post(front.URL+"/v1/sessions", "application/json", strings.NewReader(`{"rows":["x1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	mu.Lock()
	var minted string
	for k, v := range headerSeen {
		if strings.HasSuffix(k, " /v1/sessions") {
			minted = v
		}
	}
	mu.Unlock()
	if minted == "" {
		t.Fatal("create reached the node without a minted X-Session-ID")
	}
	ownerHits := func() (int, int) { return a.hitCount(), b.hitCount() }
	aBefore, bBefore := ownerHits()
	owner := a
	if bBefore > aBefore {
		owner = b
	}

	// Every follow-up for the minted id must hit the owner, none the other.
	other := b
	if owner == b {
		other = a
	}
	otherBefore := other.hitCount()
	for _, path := range []string{
		"/v1/sessions/" + minted,
		"/v1/sessions/" + minted + "/clusters",
		"/v1/sessions/" + minted + "/repair?source=0",
	} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := other.hitCount(); got != otherBefore {
		t.Fatalf("non-owner node saw %d session requests", got-otherBefore)
	}

	// A client-pinned id is honored verbatim and routed consistently.
	req, _ := http.NewRequest("POST", front.URL+"/v1/sessions", strings.NewReader(`{"rows":["x1"]}`))
	req.Header.Set("X-Session-ID", "s-client-pin")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	mu.Lock()
	pinForwarded := false
	for _, v := range headerSeen {
		if v == "s-client-pin" {
			pinForwarded = true
		}
	}
	mu.Unlock()
	if !pinForwarded {
		t.Fatal("client-pinned X-Session-ID not forwarded")
	}
}
