// Package routing holds the pluggable request-routing policies a CLX
// cluster front (cmd/clxproxy, internal/fleet.Proxy) chooses a node
// with. A policy is a pure decision function over a snapshot of the
// backends — it owns no sockets and does no IO — so policies are cheap
// to test exhaustively and the differential cluster-parity suite can
// sweep every policy knowing the only thing a policy changes is *which*
// node serves a request, never *what* the node answers.
//
// Following the quantitative-objective framing (pick the route that
// minimizes a measurable cost, not an ad-hoc heuristic), each policy
// names its objective:
//
//   - round-robin: minimize worst-case drift from a uniform request
//     count, with zero state beyond a cursor.
//   - least-loaded: minimize the routed node's streams-in-flight gauge
//     (scraped from /v1/stats), i.e. queueing cost now.
//   - affinity: minimize compiled-matcher / automaton / rematch cache
//     misses by pinning each program id to a stable owner (rendezvous
//     hashing), i.e. cache-miss cost over the request stream.
package routing

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Backend is the routing-time snapshot of one node: its stable identity
// (the hash key affinity pins programs to) and its current load (the
// clx_streams_in_flight gauge, plus any in-flight requests the proxy
// itself has routed but not yet seen complete).
type Backend struct {
	ID       string
	InFlight int64
}

// Policy picks which backend serves one request. Pick returns an index
// into backends; backends is never empty and the order is stable across
// calls (the proxy's configured node order). programID is empty for
// requests not tied to a registered program (stateless compute).
type Policy interface {
	Name() string
	Pick(programID string, backends []Backend) int
}

// Names lists the built-in policies the factory accepts.
var Names = []string{"round-robin", "least-loaded", "affinity"}

// New builds a policy by name.
func New(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "affinity":
		return Affinity{}, nil
	default:
		return nil, fmt.Errorf("routing: unknown policy %q (want round-robin, least-loaded, or affinity)", name)
	}
}

// RoundRobin cycles through the backends in order, ignoring program and
// load. The cursor is shared across programs: the objective is a uniform
// request count per node, not per program.
type RoundRobin struct {
	cursor atomic.Uint64
}

func (p *RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(_ string, backends []Backend) int {
	return int((p.cursor.Add(1) - 1) % uint64(len(backends)))
}

// LeastLoaded picks the backend with the fewest streams in flight,
// breaking ties by lowest index so the decision is deterministic for a
// given snapshot.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Pick(_ string, backends []Backend) int {
	best := 0
	for i, b := range backends {
		if b.InFlight < backends[best].InFlight {
			best = i
		}
	}
	return best
}

// Affinity pins each program id to a stable owner via rendezvous
// (highest-random-weight) hashing: every (program, backend) pair gets a
// deterministic weight and the heaviest backend owns the program. Unlike
// a modulo hash, removing one node only reassigns the programs that node
// owned — every other node keeps its hot compiled-matcher, automaton,
// and rematch caches.
type Affinity struct{}

func (Affinity) Name() string { return "affinity" }

func (Affinity) Pick(programID string, backends []Backend) int {
	return Rendezvous(programID, backends)
}

// Rendezvous returns the index of key's stable owner among backends by
// highest-random-weight hashing. It is the shared pinning primitive:
// the affinity policy runs it over program ids as a cache-locality
// optimization, and the proxy runs it over session ids as a correctness
// requirement — interactive session state lives on exactly one node, so
// every /v1/sessions/{id}/* request must resolve to the same owner for
// as long as the node set stands.
func Rendezvous(key string, backends []Backend) int {
	best, bestW := 0, uint64(0)
	for i, b := range backends {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0xff}) // separator: ("ab","c") must not collide with ("a","bc")
		h.Write([]byte(b.ID))
		if w := h.Sum64(); i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}
