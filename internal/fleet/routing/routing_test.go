// Policy decision tests: uniformity for round-robin, objective
// minimization for least-loaded, and the two properties affinity exists
// for — stability (same program, same owner, always) and minimal
// reassignment when a node leaves.
package routing

import (
	"fmt"
	"sync"
	"testing"
)

func backends(n int) []Backend {
	bs := make([]Backend, n)
	for i := range bs {
		bs[i] = Backend{ID: fmt.Sprintf("node-%d", i)}
	}
	return bs
}

func TestFactory(t *testing.T) {
	for _, name := range append([]string{""}, Names...) {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRoundRobinUniform(t *testing.T) {
	p := &RoundRobin{}
	bs := backends(4)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[p.Pick("p1", bs)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("node %d picked %d times, want 100", i, c)
		}
	}
}

func TestRoundRobinConcurrentCoversAll(t *testing.T) {
	p := &RoundRobin{}
	bs := backends(3)
	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := p.Pick("", bs)
				mu.Lock()
				seen[k]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := 0
	for i := 0; i < 3; i++ {
		if seen[i] != 800 {
			t.Errorf("node %d picked %d times, want exactly 800 (atomic cursor)", i, seen[i])
		}
		total += seen[i]
	}
	if total != 2400 {
		t.Errorf("total picks %d, want 2400", total)
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	p := LeastLoaded{}
	bs := backends(3)
	bs[0].InFlight, bs[1].InFlight, bs[2].InFlight = 5, 2, 9
	if got := p.Pick("p1", bs); got != 1 {
		t.Errorf("Pick = %d, want 1 (least loaded)", got)
	}
	// Deterministic tie-break: lowest index.
	bs[0].InFlight, bs[1].InFlight, bs[2].InFlight = 3, 3, 3
	if got := p.Pick("p1", bs); got != 0 {
		t.Errorf("tied Pick = %d, want 0", got)
	}
}

func TestAffinityStableAndSpread(t *testing.T) {
	p := Affinity{}
	bs := backends(4)
	owners := map[string]int{}
	counts := make([]int, 4)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p%06d", i)
		owner := p.Pick(id, bs)
		owners[id] = owner
		counts[owner]++
		for rep := 0; rep < 3; rep++ {
			if again := p.Pick(id, bs); again != owner {
				t.Fatalf("program %s moved from node %d to %d with no topology change", id, owner, again)
			}
		}
	}
	// Rendezvous hashing spreads ownership: no node owns everything and
	// none is starved (200 programs over 4 nodes; a uniform hash puts ~50
	// on each — allow a wide band, fail only on gross skew).
	for i, c := range counts {
		if c == 0 || c > 150 {
			t.Errorf("node %d owns %d/200 programs — not a spreading hash", i, c)
		}
	}
}

func TestAffinityMinimalReassignment(t *testing.T) {
	p := Affinity{}
	all := backends(4)
	without := all[:3] // node-3 leaves
	moved := 0
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p%06d", i)
		before := p.Pick(id, all)
		after := p.Pick(id, without)
		if all[before].ID != "node-3" && without[after].ID != all[before].ID {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d programs owned by surviving nodes were reassigned; rendezvous hashing should move only the lost node's programs", moved)
	}
}

func TestAffinityEmptyProgramIDIsStable(t *testing.T) {
	p := Affinity{}
	bs := backends(3)
	first := p.Pick("", bs)
	for i := 0; i < 5; i++ {
		if got := p.Pick("", bs); got != first {
			t.Fatalf("empty program id not stable: %d then %d", first, got)
		}
	}
}

// Rendezvous is the exported pinning primitive behind both the affinity
// policy (program ids) and the proxy's session routing (session ids):
// the two must agree exactly, and keys must spread across nodes.
func TestRendezvousMatchesAffinityAndSpreads(t *testing.T) {
	bs := backends(4)
	owners := map[int]bool{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("s-%d", i)
		want := Affinity{}.Pick(key, bs)
		got := Rendezvous(key, bs)
		if got != want {
			t.Fatalf("Rendezvous(%q) = %d, Affinity.Pick = %d", key, got, want)
		}
		if again := Rendezvous(key, bs); again != got {
			t.Fatalf("Rendezvous(%q) unstable: %d then %d", key, got, again)
		}
		owners[got] = true
	}
	if len(owners) != len(bs) {
		t.Errorf("200 keys landed on %d of %d nodes", len(owners), len(bs))
	}
}
