// Package fleettest runs a whole CLX cluster — N clxd nodes, a
// leader-side WAL replicator, and a routing proxy — inside one test
// process over httptest servers. No ports are chosen by the fixture
// (httptest binds :0 and the kernel picks), no subprocesses are spawned,
// and every node's store lives in its own temp directory, so fixtures
// are cheap enough for the differential parity harness to sweep every
// routing policy × node count and race-clean under -race -count=5.
//
// Topology: node 0 is the leader — the proxy sends it every registry
// write, and its replicator ships the resulting WAL records to nodes
// 1..N-1 before the write is acknowledged. Reads and applies are routed
// across all nodes by the configured policy.
package fleettest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"clx/internal/daemon"
	"clx/internal/fleet"
	"clx/internal/fleet/routing"
	"clx/internal/progstore"
)

// Options tune a test cluster; the zero value is 2 nodes, round-robin,
// local-only load accounting.
type Options struct {
	// Nodes is the cluster size (including the leader); 0 means 2.
	Nodes int
	// Policy is the routing policy name ("" = round-robin).
	Policy string
	// ProbeTTL is passed to the proxy; 0 keeps scraping off (negative
	// TTL), so tests are deterministic unless they opt in.
	ProbeTTL time.Duration
	// MaxStreams caps each node's concurrent streaming applies (0 = the
	// daemon default).
	MaxStreams int
	// Durable gives each node an on-disk store (WAL + snapshot in a temp
	// dir) so a killed node recovers state on restart; false keeps
	// registries in memory, which is faster for pure parity sweeps.
	Durable bool
}

// Node is one in-process clxd.
type Node struct {
	Dir    string // store directory ("" when in-memory)
	Store  *progstore.Store
	Server *daemon.Server
	HTTP   *httptest.Server
}

// URL is the node's base URL.
func (n *Node) URL() string { return n.HTTP.URL }

// Cluster is the running fixture.
type Cluster struct {
	t     testing.TB
	opts  Options
	Nodes []*Node
	// Repl is the leader's shipper (nil for a 1-node cluster).
	Repl  *fleet.Replicator
	Proxy *fleet.Proxy
	// Front serves the proxy; Front.URL is what clients hit.
	Front *httptest.Server
}

// New starts a cluster and registers its teardown with t.Cleanup.
func New(t testing.TB, opts Options) *Cluster {
	t.Helper()
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	pol, err := routing.New(opts.Policy)
	if err != nil {
		t.Fatalf("fleettest: %v", err)
	}
	c := &Cluster{t: t, opts: opts}

	// Followers first: the leader's replicator needs their URLs before
	// the leader's server can exist.
	c.Nodes = make([]*Node, opts.Nodes)
	for i := 1; i < opts.Nodes; i++ {
		st, dir := c.openStore(i)
		c.Nodes[i] = c.serveNode(i, st, dir, nil)
	}
	leaderStore, leaderDir := c.openStore(0)
	if opts.Nodes > 1 {
		var urls []string
		for _, n := range c.Nodes[1:] {
			urls = append(urls, n.URL())
		}
		c.Repl = fleet.NewReplicator(leaderStore, urls, fleet.ReplicatorOptions{
			Client: &http.Client{Timeout: 5 * time.Second},
		})
	}
	c.Nodes[0] = c.serveNode(0, leaderStore, leaderDir, c.Repl)

	ttl := opts.ProbeTTL
	if ttl == 0 {
		ttl = -1 // deterministic by default: local in-flight only
	}
	var urls []string
	for _, n := range c.Nodes {
		urls = append(urls, n.URL())
	}
	c.Proxy, err = fleet.NewProxy(urls, fleet.ProxyOptions{Policy: pol, ProbeTTL: ttl})
	if err != nil {
		t.Fatalf("fleettest: %v", err)
	}
	c.Front = httptest.NewServer(c.Proxy)

	t.Cleanup(c.Close)
	return c
}

// openStore opens node i's registry — on disk under a temp dir when the
// cluster is durable, in memory otherwise.
func (c *Cluster) openStore(i int) (*progstore.Store, string) {
	c.t.Helper()
	dir := ""
	if c.opts.Durable {
		dir = filepath.Join(c.t.TempDir(), fmt.Sprintf("node-%d", i))
	}
	st, err := progstore.Open(dir)
	if err != nil {
		c.t.Fatalf("fleettest: node %d store: %v", i, err)
	}
	return st, dir
}

// serveNode wraps a store in a daemon server and serves it; repl is
// non-nil only for the leader.
func (c *Cluster) serveNode(i int, st *progstore.Store, dir string, repl *fleet.Replicator) *Node {
	c.t.Helper()
	srv, err := daemon.New(st, daemon.Config{
		MaxStreams: c.opts.MaxStreams,
		Replicator: repl,
	})
	if err != nil {
		c.t.Fatalf("fleettest: node %d server: %v", i, err)
	}
	return &Node{Dir: dir, Store: st, Server: srv, HTTP: httptest.NewServer(srv.Handler())}
}

// URL is the cluster's client-facing base URL (the proxy).
func (c *Cluster) URL() string { return c.Front.URL }

// Leader is node 0.
func (c *Cluster) Leader() *Node { return c.Nodes[0] }

// Kill simulates a crash of node i: its listener closes and every open
// connection (including mid-stream responses) is severed. The node's
// store object is abandoned un-closed — nothing graceful happens, which
// is the point; a durable store's WAL stays as the crash left it.
func (c *Cluster) Kill(i int) {
	c.t.Helper()
	c.Nodes[i].HTTP.CloseClientConnections()
	c.Nodes[i].HTTP.Close()
}

// Restart brings a killed node back on a fresh address, recovering a
// durable store from its snapshot + WAL (the crash-recovery path), and
// repoints the leader's replicator and the proxy at the new address.
// Restarting the leader is not supported — the fault suite kills
// followers and routed nodes, not the replication source.
func (c *Cluster) Restart(i int) {
	c.t.Helper()
	if i == 0 {
		c.t.Fatalf("fleettest: leader restart not supported")
	}
	old := c.Nodes[i]
	var st *progstore.Store
	if old.Dir != "" {
		// Recover from disk exactly as a restarted clxd would.
		var err error
		st, err = progstore.Open(old.Dir)
		if err != nil {
			c.t.Fatalf("fleettest: node %d reopen: %v", i, err)
		}
	} else {
		// In-memory node: state died with the process; the replicator's
		// snapshot resync must rebuild it.
		var err error
		st, err = progstore.Open("")
		if err != nil {
			c.t.Fatalf("fleettest: node %d reopen: %v", i, err)
		}
	}
	srv, err := daemon.New(st, daemon.Config{MaxStreams: c.opts.MaxStreams})
	if err != nil {
		c.t.Fatalf("fleettest: node %d server: %v", i, err)
	}
	n := &Node{Dir: old.Dir, Store: st, Server: srv}
	n.HTTP = httptest.NewServer(srv.Handler())
	c.Nodes[i] = n
	if c.Repl != nil {
		c.Repl.SetFollowerURL(i-1, n.URL())
	}
	c.Proxy.SetBackendURL(i, n.URL())
}

// Converge drives replication until every follower holds the leader's
// log position, then asserts fingerprint equality across all nodes.
func (c *Cluster) Converge(timeout time.Duration) {
	c.t.Helper()
	if c.Repl != nil {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := c.Repl.Sync(ctx); err != nil {
			c.t.Fatalf("fleettest: %v\nreplicator: %+v", err, c.Repl.Stats())
		}
	}
	want := c.Nodes[0].Store.Fingerprint()
	for i, n := range c.Nodes[1:] {
		if got := n.Store.Fingerprint(); got != want {
			c.t.Fatalf("fleettest: node %d fingerprint %s != leader %s", i+1, got, want)
		}
	}
}

// Close tears the cluster down: proxy first (no new routed requests),
// then the replicator (detaches the store hook), then every node.
func (c *Cluster) Close() {
	c.Front.Close()
	if c.Repl != nil {
		c.Repl.Close()
		c.Repl = nil
	}
	for _, n := range c.Nodes {
		n.HTTP.Close()
		n.Store.Close()
	}
	c.Nodes = nil
}
