// Leader-side WAL shipping. A Replicator taps the program registry's
// append stream (progstore.SetOnAppend) and ships every record to each
// follower clxd over HTTP — POST /v1/replication/wal — in log order.
// Shipping is pull-the-trigger synchronous: records accumulate in a
// per-follower pending queue under the store lock (cheap), and the write
// handler calls Flush before acknowledging the client, so a successful
// registration is on every healthy follower by the time the leader's
// 201 reaches the proxy. That is what lets the differential parity
// harness route the very next apply to any node and demand byte-equal
// answers.
//
// A follower that refuses a record (gap: it was down, or it joined after
// the leader compacted its WAL away) or cannot be reached is marked for
// resync; the next Flush/Sync pushes a full state snapshot — POST
// /v1/replication/snapshot — and resumes shipping from the snapshot's
// log index. Registries hold program entries, not data rows, so a full
// snapshot is small and resync-by-snapshot beats retaining a per-follower
// record backlog.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"clx/internal/obs"
	"clx/internal/progstore"
)

var (
	mShipped = obs.NewCounter("clx_repl_records_shipped_total",
		"Replication records shipped to followers (one count per record per follower).")
	mShipErrors = obs.NewCounter("clx_repl_ship_errors_total",
		"Failed replication ship attempts (transport errors and non-2xx responses).")
	mSnapshotsPushed = obs.NewCounter("clx_repl_snapshots_pushed_total",
		"Full-state snapshots pushed to followers for resync.")
)

// pendingCap bounds the per-follower queue: a follower that falls this
// far behind is cheaper to resync by snapshot than record by record.
const pendingCap = 1024

// ReplicatorOptions tune a Replicator.
type ReplicatorOptions struct {
	// Client is the HTTP client for shipping; nil uses a 5s-timeout
	// client (shipping happens on the write path — a hung follower must
	// not hold registrations hostage).
	Client *http.Client
	// RetryInterval enables a background loop that re-Syncs lagging or
	// unreachable followers every interval; 0 disables it (tests drive
	// Sync explicitly so convergence is deterministic, daemons enable it).
	RetryInterval time.Duration
}

// FollowerStats is one follower's shipping ledger.
type FollowerStats struct {
	URL string `json:"url"`
	// AckedIdx is the newest log index the follower acknowledged; Lag is
	// the leader's LastIdx minus AckedIdx (0 = converged).
	AckedIdx int64 `json:"acked_idx"`
	Lag      int64 `json:"lag"`
	// RecordsShipped counts acknowledged record ships; SnapshotsPushed
	// counts full-state resyncs; ShipErrors counts failed attempts.
	RecordsShipped  int64 `json:"records_shipped"`
	SnapshotsPushed int64 `json:"snapshots_pushed"`
	ShipErrors      int64 `json:"ship_errors"`
	// NeedsResync reports a follower waiting on a snapshot push; LastError
	// is the most recent failure, cleared on success.
	NeedsResync bool   `json:"needs_resync"`
	LastError   string `json:"last_error,omitempty"`
}

// ReplicatorStats is the leader-side replication section of /v1/stats.
type ReplicatorStats struct {
	LeaderIdx int64           `json:"leader_idx"`
	Followers []FollowerStats `json:"followers"`
}

// follower is the per-follower shipping state. Its mutex only guards the
// pending queue (appended under the store lock); everything else is
// guarded by the Replicator's ship mutex.
type follower struct {
	mu      sync.Mutex
	url     string
	pending []progstore.Record

	ackedIdx    int64
	shipped     int64
	snapshots   int64
	errors      int64
	needsResync bool
	lastErr     string
}

func (f *follower) enqueue(rec progstore.Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) >= pendingCap {
		// Too far behind — drop the queue, a snapshot will cover it.
		f.pending = f.pending[:0]
		f.needsResync = true
		return
	}
	f.pending = append(f.pending, rec)
}

func (f *follower) takePending() []progstore.Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	recs := f.pending
	f.pending = nil
	return recs
}

// Replicator ships the store's append stream to a set of followers.
type Replicator struct {
	st     *progstore.Store
	client *http.Client

	// shipMu serializes Flush/Sync so records reach each follower in log
	// order even when several write handlers flush concurrently.
	shipMu    sync.Mutex
	followers []*follower

	stop chan struct{}
	done chan struct{}
}

// NewReplicator attaches a replicator to st, tapping every subsequent
// append. followerURLs are the base URLs of follower clxd nodes (e.g.
// http://host:8081). Call Close to detach.
func NewReplicator(st *progstore.Store, followerURLs []string, opts ReplicatorOptions) *Replicator {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	r := &Replicator{st: st, client: client, stop: make(chan struct{}), done: make(chan struct{})}
	for _, u := range followerURLs {
		// A follower joining a leader that already has state starts behind;
		// the first ship detects the gap and pushes a snapshot.
		r.followers = append(r.followers, &follower{url: u, needsResync: st.LastIdx() > 0})
	}
	st.SetOnAppend(r.observe)
	if opts.RetryInterval > 0 {
		go r.retryLoop(opts.RetryInterval)
	} else {
		close(r.done)
	}
	return r
}

// observe runs under the store's write lock: enqueue only.
func (r *Replicator) observe(rec progstore.Record) {
	for _, f := range r.followers {
		f.enqueue(rec)
	}
}

// Flush ships every pending record to every follower, pushing a snapshot
// first to any follower marked for resync. Write handlers call this
// before acknowledging a mutation. Per-follower failures are recorded in
// the stats, not returned: one dead follower must not fail the write.
func (r *Replicator) Flush() {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	for _, f := range r.followers {
		r.flushFollower(f)
	}
}

// Sync flushes and then drives every follower to the leader's current
// log index, resyncing as needed, until done or ctx expires. The
// convergence primitive fault-injection tests and graceful shutdown use.
func (r *Replicator) Sync(ctx context.Context) error {
	for {
		r.Flush()
		lag := int64(0)
		r.shipMu.Lock()
		leaderIdx := r.st.LastIdx()
		for _, f := range r.followers {
			if d := leaderIdx - f.ackedIdx; d > lag {
				lag = d
			}
		}
		r.shipMu.Unlock()
		if lag == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: sync: followers still lag %d records: %w", lag, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// flushFollower ships f's pending queue (snapshot first if flagged).
// Callers hold shipMu.
func (r *Replicator) flushFollower(f *follower) {
	recs := f.takePending()
	if f.needsResync {
		if !r.pushSnapshot(f) {
			return
		}
		// The snapshot captured every record appended before it was taken;
		// drop the queue entries it covers.
		live := recs[:0]
		for _, rec := range recs {
			if rec.Idx > f.ackedIdx {
				live = append(live, rec)
			}
		}
		recs = live
	}
	if len(recs) == 0 {
		return
	}
	// Drop duplicates of already-acked records (a Flush raced the enqueue).
	for len(recs) > 0 && recs[0].Idx <= f.ackedIdx {
		recs = recs[1:]
	}
	if len(recs) == 0 {
		return
	}
	if recs[0].Idx != f.ackedIdx+1 {
		// Gap — the queue overflowed or this follower joined late.
		f.needsResync = true
		if r.pushSnapshot(f) {
			f.needsResync = false
		}
		return
	}
	body, err := encodeWire(WALShipRequest{Records: recs})
	if err != nil {
		panic(err) // records round-trip through the WAL; never non-encodable
	}
	status, resp, err := r.post(f.url+"/v1/replication/wal", body)
	switch {
	case err != nil:
		f.errors++
		mShipErrors.Inc()
		f.lastErr = err.Error()
		f.needsResync = true
	case status == http.StatusConflict:
		// Follower is on a different log position (restarted empty, or a
		// stray direct write forked it) — snapshot heals either way.
		f.needsResync = true
		if r.pushSnapshot(f) {
			f.needsResync = false
		}
	case status != http.StatusOK:
		f.errors++
		mShipErrors.Inc()
		f.lastErr = fmt.Sprintf("ship: follower returned %d: %s", status, resp.Error)
		f.needsResync = true
	default:
		f.ackedIdx = resp.LastIdx
		f.shipped += int64(len(recs))
		mShipped.Add(int64(len(recs)))
		f.lastErr = ""
	}
}

// pushSnapshot installs the leader's full state on f, reporting success.
// Callers hold shipMu.
func (r *Replicator) pushSnapshot(f *follower) bool {
	state := r.st.State()
	body, err := encodeWire(state)
	if err != nil {
		panic(err)
	}
	status, resp, err := r.post(f.url+"/v1/replication/snapshot", body)
	if err != nil || status != http.StatusOK {
		f.errors++
		mShipErrors.Inc()
		if err != nil {
			f.lastErr = err.Error()
		} else {
			f.lastErr = fmt.Sprintf("snapshot: follower returned %d: %s", status, resp.Error)
		}
		return false
	}
	f.ackedIdx = state.LastIdx
	f.snapshots++
	mSnapshotsPushed.Inc()
	f.needsResync = false
	f.lastErr = ""
	return true
}

// encodeWire marshals without HTML escaping. Program entries embed
// json.RawMessage full of "<D>3" patterns; the follower stores whatever
// bytes arrive, so escaping here would make replicated registries
// byte-diverge from the leader's even though they are JSON-equal.
func encodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// post sends one replication message and decodes the uniform response.
func (r *Replicator) post(url string, body []byte) (int, ReplResponse, error) {
	var out ReplResponse
	resp, err := r.client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, out, err
	}
	_ = json.Unmarshal(raw, &out) // error detail is best-effort
	return resp.StatusCode, out, nil
}

// SetFollowerURL repoints follower i (a restarted node listens on a new
// address) and marks it for resync on the next flush.
func (r *Replicator) SetFollowerURL(i int, url string) {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	r.followers[i].url = url
	r.followers[i].needsResync = true
}

// Stats snapshots the shipping ledger.
func (r *Replicator) Stats() ReplicatorStats {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	leaderIdx := r.st.LastIdx()
	st := ReplicatorStats{LeaderIdx: leaderIdx}
	for _, f := range r.followers {
		st.Followers = append(st.Followers, FollowerStats{
			URL:             f.url,
			AckedIdx:        f.ackedIdx,
			Lag:             leaderIdx - f.ackedIdx,
			RecordsShipped:  f.shipped,
			SnapshotsPushed: f.snapshots,
			ShipErrors:      f.errors,
			NeedsResync:     f.needsResync,
			LastError:       f.lastErr,
		})
	}
	return st
}

// retryLoop re-Syncs lagging followers until Close.
func (r *Replicator) retryLoop(interval time.Duration) {
	defer close(r.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Flush()
		}
	}
}

// Close detaches the replicator from the store and stops the retry loop.
func (r *Replicator) Close() {
	r.st.SetOnAppend(nil)
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}
