package unifi

import (
	"errors"
	"reflect"
	"testing"

	"clx/internal/pattern"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Extract{1, 1}, "Extract(1)"},
		{Extract{1, 4}, "Extract(1,4)"},
		{ConstStr{"]"}, `ConstStr("]")`},
	}
	for _, tc := range tests {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Ops: []Op{Extract{1, 4}, ConstStr{"]"}}}
	want := `Concat(Extract(1,4),ConstStr("]"))`
	if got := p.String(); got != want {
		t.Errorf("Plan.String() = %q, want %q", got, want)
	}
}

// Paper Example 5: normalizing messy medical billing codes.
func medicalProgram() Program {
	return Program{Cases: []Case{
		{
			Source: pattern.MustParse("'['<U>+'-'<D>+"),
			Plan:   Plan{Ops: []Op{Extract{1, 4}, ConstStr{"]"}}},
		},
		{
			Source: pattern.MustParse("<U>+'-'<D>+"),
			Plan:   Plan{Ops: []Op{ConstStr{"["}, Extract{1, 3}, ConstStr{"]"}}},
		},
		{
			Source: pattern.MustParse("<U>+<D>+"),
			Plan: Plan{Ops: []Op{
				ConstStr{"["}, Extract{1, 1}, ConstStr{"-"}, Extract{2, 2}, ConstStr{"]"},
			}},
		},
	}}
}

func TestApplyMedicalCodes(t *testing.T) {
	prog := medicalProgram()
	tests := map[string]string{
		"CPT-00350":  "[CPT-00350]",
		"[CPT-00340": "[CPT-00340]",
		"CPT115":     "[CPT-115]",
	}
	for in, want := range tests {
		got, err := prog.Apply(in)
		if err != nil {
			t.Errorf("Apply(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Apply(%q) = %q, want %q", in, got, want)
		}
	}
	// "[CPT-11536]" matches no case (it is already the target pattern and
	// the program has no identity case): ErrNoMatch.
	if _, err := prog.Apply("[CPT-11536]"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("Apply([CPT-11536]) err = %v, want ErrNoMatch", err)
	}
}

// Paper Example 6: normalizing employee names.
func TestApplyNames(t *testing.T) {
	prog := Program{Cases: []Case{
		{ // Dr. Eran Yahav -> Yahav, E.
			Source: pattern.MustParse("<U><L>+'.'' '<U><L>+' '<U><L>+"),
			Plan: Plan{Ops: []Op{
				Extract{8, 9}, ConstStr{","}, ConstStr{" "}, Extract{5, 5}, ConstStr{"."},
			}},
		},
		{ // Bill Gates, Sr. -> Gates, B.
			Source: pattern.MustParse("<U><L>+' '<U><L>+','' '<U><L>+'.'"),
			Plan: Plan{Ops: []Op{
				Extract{4, 5}, ConstStr{","}, ConstStr{" "}, Extract{1, 1}, ConstStr{"."},
			}},
		},
		{ // Oege de Moor -> Moor, O.
			Source: pattern.MustParse("<U><L>+' '<L>+' '<U><L>+"),
			Plan: Plan{Ops: []Op{
				Extract{6, 7}, ConstStr{","}, ConstStr{" "}, Extract{1, 1}, ConstStr{"."},
			}},
		},
	}}
	tests := map[string]string{
		"Dr. Eran Yahav":  "Yahav, E.",
		"Bill Gates, Sr.": "Gates, B.",
		"Oege de Moor":    "Moor, O.",
	}
	for in, want := range tests {
		got, err := prog.Apply(in)
		if err != nil {
			t.Errorf("Apply(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Apply(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	src := pattern.MustParse("<D>2")
	bad := Plan{Ops: []Op{Extract{1, 5}}}
	if _, err := bad.Apply(src, "12"); err == nil {
		t.Error("out-of-range Extract did not error")
	}
	if _, err := (Plan{}).Apply(src, "xx"); err == nil {
		t.Error("non-matching input did not error")
	}
	empty := Plan{}
	got, err := empty.Apply(src, "12")
	if err != nil || got != "" {
		t.Errorf("empty plan = %q, %v; want \"\"", got, err)
	}
}

func TestTransformFlagsUnmatched(t *testing.T) {
	prog := medicalProgram()
	data := []string{"CPT-00350", "N/A", "CPT115"}
	out, flagged := prog.Transform(data)
	if !reflect.DeepEqual(out, []string{"[CPT-00350]", "N/A", "[CPT-115]"}) {
		t.Errorf("Transform out = %v", out)
	}
	if !reflect.DeepEqual(flagged, []int{1}) {
		t.Errorf("flagged = %v, want [1]", flagged)
	}
}

func TestProgramString(t *testing.T) {
	prog := Program{Cases: []Case{{
		Source: pattern.MustParse("<U>+<D>+"),
		Plan:   Plan{Ops: []Op{Extract{1, 1}}},
	}}}
	want := `Switch((Match("<U>+<D>+"), Concat(Extract(1))))`
	if got := prog.String(); got != want {
		t.Errorf("Program.String() = %q, want %q", got, want)
	}
}

func TestPlanEqual(t *testing.T) {
	a := Plan{Ops: []Op{Extract{1, 2}, ConstStr{"x"}}}
	b := Plan{Ops: []Op{Extract{1, 2}, ConstStr{"x"}}}
	c := Plan{Ops: []Op{Extract{1, 2}}}
	d := Plan{Ops: []Op{Extract{1, 2}, ConstStr{"y"}}}
	if !a.Equal(b) {
		t.Error("identical plans not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different plans reported Equal")
	}
}
