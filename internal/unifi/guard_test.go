package unifi

import (
	"errors"
	"strings"
	"testing"

	"clx/internal/pattern"
)

func guardedPicture() GuardedProgram {
	src := pattern.MustParse("<L>+' '<D>+")
	return GuardedProgram{Cases: []GuardedCase{
		{
			Source: src,
			Guard:  TokenIs{I: 1, Value: "picture"},
			Plan:   Plan{Ops: []Op{ConstStr{"PIC-"}, Extract{3, 3}}},
		},
		{
			Source: src,
			Guard:  TokenIs{I: 1, Value: "invoice"},
			Plan:   Plan{Ops: []Op{ConstStr{"DOC-"}, Extract{3, 3}}},
		},
	}}
}

func TestGuardedProgramDispatch(t *testing.T) {
	gp := guardedPicture()
	tests := map[string]string{
		"picture 001": "PIC-001",
		"invoice 042": "DOC-042",
	}
	for in, want := range tests {
		got, err := gp.Apply(in)
		if err != nil || got != want {
			t.Errorf("Apply(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := gp.Apply("receipt 001"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("unknown keyword err = %v, want ErrNoMatch", err)
	}
	if _, err := gp.Apply("no digits here"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("non-matching pattern err = %v, want ErrNoMatch", err)
	}
}

func TestGuardedProgramOrder(t *testing.T) {
	// The first case whose guard holds wins; an unconditional case after a
	// guarded one acts as the default branch.
	src := pattern.MustParse("<L>+' '<D>+")
	gp := GuardedProgram{Cases: []GuardedCase{
		{
			Source: src,
			Guard:  TokenIs{I: 1, Value: "picture"},
			Plan:   Plan{Ops: []Op{ConstStr{"PIC-"}, Extract{3, 3}}},
		},
		{
			Source: src,
			Plan:   Plan{Ops: []Op{ConstStr{"OTHER-"}, Extract{3, 3}}},
		},
	}}
	got, _ := gp.Apply("picture 001")
	if got != "PIC-001" {
		t.Errorf("guarded case should win: %q", got)
	}
	got, _ = gp.Apply("anything 002")
	if got != "OTHER-002" {
		t.Errorf("default case should catch the rest: %q", got)
	}
}

func TestGuardedProgramString(t *testing.T) {
	s := guardedPicture().String()
	if !strings.Contains(s, `&& token 1 is "picture"`) {
		t.Errorf("rendering = %q", s)
	}
	if !strings.Contains(s, "Switch(") {
		t.Errorf("rendering = %q", s)
	}
}

// CompiledProgram behaves exactly like Program on every input.
func TestCompiledProgramEquivalence(t *testing.T) {
	prog := Program{Cases: []Case{
		{
			Source: pattern.MustParse("'('<D>3')'' '<D>3'-'<D>4"),
			Plan: Plan{Ops: []Op{
				Extract{2, 2}, ConstStr{"-"}, Extract{5, 7},
			}},
		},
		{
			Source: pattern.MustParse("<D>3'.'<D>3'.'<D>4"),
			Plan: Plan{Ops: []Op{
				Extract{1, 1}, ConstStr{"-"}, Extract{3, 3}, ConstStr{"-"}, Extract{5, 5},
			}},
		},
	}}
	cp := prog.Compile()
	inputs := []string{
		"(734) 645-8397", "734.236.3466", "N/A", "", "(99) 111-2222",
		"(123) 456-7890", "111.222.3333",
	}
	for _, in := range inputs {
		want, wantErr := prog.Apply(in)
		got, gotErr := cp.Apply(in)
		if (wantErr == nil) != (gotErr == nil) || got != want {
			t.Errorf("Apply(%q): compiled (%q,%v) != plain (%q,%v)",
				in, got, gotErr, want, wantErr)
		}
	}
}

func TestCompiledProgramConcurrent(t *testing.T) {
	prog := Program{Cases: []Case{{
		Source: pattern.MustParse("<D>3'.'<D>3'.'<D>4"),
		Plan: Plan{Ops: []Op{
			Extract{1, 1}, ConstStr{"-"}, Extract{3, 3}, ConstStr{"-"}, Extract{5, 5},
		}},
	}}}
	cp := prog.Compile()
	done := make(chan bool, 4)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for i := 0; i < 300; i++ {
				out, err := cp.Apply("734.236.3466")
				if err != nil || out != "734-236-3466" {
					ok = false
					break
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("concurrent compiled apply failed")
		}
	}
}
