// JSON serialization for UniFi programs, so a verified transformation can
// be saved and applied later (or elsewhere) without re-synthesis.
//
// Wire format:
//
//	{"cases": [
//	  {"source": "'('<D>3')'' '<D>3'-'<D>4",
//	   "guard": {"token": 1, "value": "picture"},      // optional
//	   "plan": [
//	     {"op": "extract", "i": 2, "j": 2},
//	     {"op": "const", "s": "-"}
//	   ]}
//	]}
//
// Source patterns use the compact notation (Pattern.String / Parse).
package unifi

import (
	"encoding/json"
	"fmt"

	"clx/internal/pattern"
)

type opJSON struct {
	Op string `json:"op"`
	S  string `json:"s,omitempty"`
	I  int    `json:"i,omitempty"`
	J  int    `json:"j,omitempty"`
}

type guardJSON struct {
	Token int    `json:"token"`
	Value string `json:"value"`
}

type caseJSON struct {
	Source string     `json:"source"`
	Guard  *guardJSON `json:"guard,omitempty"`
	Plan   []opJSON   `json:"plan"`
}

type programJSON struct {
	Cases []caseJSON `json:"cases"`
}

// MarshalJSON implements json.Marshaler.
func (p Plan) MarshalJSON() ([]byte, error) {
	ops := make([]opJSON, len(p.Ops))
	for i, op := range p.Ops {
		switch op := op.(type) {
		case ConstStr:
			ops[i] = opJSON{Op: "const", S: op.S}
		case Extract:
			ops[i] = opJSON{Op: "extract", I: op.I, J: op.J}
		default:
			return nil, fmt.Errorf("unifi: cannot marshal operator %T", op)
		}
	}
	return json.Marshal(ops)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var ops []opJSON
	if err := json.Unmarshal(data, &ops); err != nil {
		return err
	}
	p.Ops = nil
	for _, o := range ops {
		switch o.Op {
		case "const":
			p.Ops = append(p.Ops, ConstStr{S: o.S})
		case "extract":
			if o.I < 1 || o.J < o.I {
				return fmt.Errorf("unifi: bad extract range (%d,%d)", o.I, o.J)
			}
			p.Ops = append(p.Ops, Extract{I: o.I, J: o.J})
		default:
			return fmt.Errorf("unifi: unknown operator %q", o.Op)
		}
	}
	return nil
}

func caseToJSON(source pattern.Pattern, guard Guard, plan Plan) (caseJSON, error) {
	cj := caseJSON{Source: source.String()}
	if guard != nil {
		ti, ok := guard.(TokenIs)
		if !ok {
			return caseJSON{}, fmt.Errorf("unifi: cannot marshal guard %T", guard)
		}
		cj.Guard = &guardJSON{Token: ti.I, Value: ti.Value}
	}
	raw, err := plan.MarshalJSON()
	if err != nil {
		return caseJSON{}, err
	}
	var ops []opJSON
	if err := json.Unmarshal(raw, &ops); err != nil {
		return caseJSON{}, err
	}
	cj.Plan = ops
	return cj, nil
}

func caseFromJSON(cj caseJSON) (pattern.Pattern, Guard, Plan, error) {
	src, err := pattern.Parse(cj.Source)
	if err != nil {
		return pattern.Pattern{}, nil, Plan{}, err
	}
	var plan Plan
	raw, err := json.Marshal(cj.Plan)
	if err != nil {
		return pattern.Pattern{}, nil, Plan{}, err
	}
	if err := plan.UnmarshalJSON(raw); err != nil {
		return pattern.Pattern{}, nil, Plan{}, err
	}
	if err := checkPlanRange(plan, src); err != nil {
		return pattern.Pattern{}, nil, Plan{}, err
	}
	var guard Guard
	if cj.Guard != nil {
		if cj.Guard.Token < 1 || cj.Guard.Token > src.Len() {
			return pattern.Pattern{}, nil, Plan{}, fmt.Errorf(
				"unifi: guard token %d out of range for source of %d tokens",
				cj.Guard.Token, src.Len())
		}
		guard = TokenIs{I: cj.Guard.Token, Value: cj.Guard.Value}
	}
	return src, guard, plan, nil
}

func checkPlanRange(p Plan, src pattern.Pattern) error {
	for _, op := range p.Ops {
		if e, ok := op.(Extract); ok && e.J > src.Len() {
			return fmt.Errorf("unifi: extract (%d,%d) exceeds source of %d tokens",
				e.I, e.J, src.Len())
		}
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (pr Program) MarshalJSON() ([]byte, error) {
	out := programJSON{Cases: make([]caseJSON, len(pr.Cases))}
	for i, c := range pr.Cases {
		cj, err := caseToJSON(c.Source, nil, c.Plan)
		if err != nil {
			return nil, err
		}
		out.Cases[i] = cj
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. Guarded cases are rejected;
// use GuardedProgram for those.
func (pr *Program) UnmarshalJSON(data []byte) error {
	var in programJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	pr.Cases = nil
	for _, cj := range in.Cases {
		src, guard, plan, err := caseFromJSON(cj)
		if err != nil {
			return err
		}
		if guard != nil {
			return fmt.Errorf("unifi: guarded case in plain Program; use GuardedProgram")
		}
		pr.Cases = append(pr.Cases, Case{Source: src, Plan: plan})
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (gp GuardedProgram) MarshalJSON() ([]byte, error) {
	out := programJSON{Cases: make([]caseJSON, len(gp.Cases))}
	for i, c := range gp.Cases {
		cj, err := caseToJSON(c.Source, c.Guard, c.Plan)
		if err != nil {
			return nil, err
		}
		out.Cases[i] = cj
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (gp *GuardedProgram) UnmarshalJSON(data []byte) error {
	var in programJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	gp.Cases = nil
	for _, cj := range in.Cases {
		src, guard, plan, err := caseFromJSON(cj)
		if err != nil {
			return err
		}
		gp.Cases = append(gp.Cases, GuardedCase{Source: src, Guard: guard, Plan: plan})
	}
	return nil
}
