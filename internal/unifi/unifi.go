// Package unifi defines the UniFi domain-specific language of paper §5
// (Figure 7) and its evaluator. A UniFi program is a Switch of
// (Match(pattern), expression) cases; an expression is a Concat of ConstStr
// and Extract string operators — an "atomic transformation plan"
// (Definition 5.1).
package unifi

import (
	"fmt"
	"strings"

	"clx/internal/pattern"
)

// Op is one string operator of an atomic transformation plan: ConstStr or
// Extract.
type Op interface {
	fmt.Stringer
	isOp()
}

// ConstStr denotes a constant string s̃.
type ConstStr struct {
	S string
}

func (ConstStr) isOp() {}

// String renders the operator as in the paper, e.g. ConstStr('[').
func (c ConstStr) String() string { return fmt.Sprintf("ConstStr(%q)", c.S) }

// Extract extracts from the I-th to the J-th token (1-based, inclusive) of
// the source pattern. Extract{i, i} is written Extract(i) in the paper.
type Extract struct {
	I, J int
}

func (Extract) isOp() {}

// String renders the operator as in the paper: Extract(1,4) or Extract(2).
func (e Extract) String() string {
	if e.I == e.J {
		return fmt.Sprintf("Extract(%d)", e.I)
	}
	return fmt.Sprintf("Extract(%d,%d)", e.I, e.J)
}

// Plan is an atomic transformation plan: a Concat of operators converting a
// given source pattern into the target pattern (Definition 5.1).
type Plan struct {
	Ops []Op
}

// String renders the plan as in the paper, e.g.
// Concat(Extract(1,4),ConstStr("]")).
func (p Plan) String() string {
	parts := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		parts[i] = op.String()
	}
	return "Concat(" + strings.Join(parts, ",") + ")"
}

// Len returns |E|, the number of operators in the plan.
func (p Plan) Len() int { return len(p.Ops) }

// Case is one (b, E) pair of a Switch: strings matching Source are
// transformed by Plan.
type Case struct {
	Source pattern.Pattern
	Plan   Plan
}

// Program is a UniFi program: Switch((b1,E1),...,(bn,En)). Cases are tried
// in order; the first whose source pattern matches wins.
type Program struct {
	Cases []Case
}

// String renders the program in the paper's surface syntax.
func (pr Program) String() string {
	var b strings.Builder
	b.WriteString("Switch(")
	for i, c := range pr.Cases {
		if i > 0 {
			b.WriteString(",\n       ")
		}
		fmt.Fprintf(&b, "(Match(%q), %s)", c.Source.String(), c.Plan.String())
	}
	b.WriteString(")")
	return b.String()
}

// ErrNoMatch is returned by Apply when no case's pattern matches the input.
var ErrNoMatch = fmt.Errorf("unifi: no case matches input")

// Apply evaluates the plan against s, which must match source exactly. The
// spans of the match bind Extract operators to substrings of s.
func (p Plan) Apply(source pattern.Pattern, s string) (string, error) {
	spans, ok := source.Match(s)
	if !ok {
		return "", fmt.Errorf("unifi: %q does not match source pattern %s", s, source)
	}
	return p.applySpans(s, spans)
}

// Apply transforms s with the first matching case. It returns ErrNoMatch
// when no case applies — such records are left unchanged and flagged for
// review by callers (paper §6.1).
func (pr Program) Apply(s string) (string, error) {
	for _, c := range pr.Cases {
		if c.Source.Matches(s) {
			return c.Plan.Apply(c.Source, s)
		}
	}
	return "", ErrNoMatch
}

// Transform applies the program to every string of data. Unmatched rows are
// copied through unchanged and their indices returned in flagged.
func (pr Program) Transform(data []string) (out []string, flagged []int) {
	out = make([]string, len(data))
	for i, s := range data {
		t, err := pr.Apply(s)
		if err != nil {
			out[i] = s
			flagged = append(flagged, i)
			continue
		}
		out[i] = t
	}
	return out, flagged
}

// Equal reports structural equality of two plans.
func (p Plan) Equal(q Plan) bool {
	if len(p.Ops) != len(q.Ops) {
		return false
	}
	for i, op := range p.Ops {
		if op != q.Ops[i] {
			return false
		}
	}
	return true
}
