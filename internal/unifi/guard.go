// Content-conditional guards: the UniFi extension sketched in paper §7.4
// ("Example 13 requires the inference of advanced conditionals … adding
// support for these conditionals in UniFi is straightforward"). A guard
// refines a Switch case's Match predicate with a condition on the matched
// content, so two cases can share a source pattern and dispatch on a
// keyword — e.g. rows shaped <L>+' '<D>3 where the word is "picture"
// versus "invoice".
package unifi

import (
	"fmt"

	"clx/internal/pattern"
	"clx/internal/rematch"
)

// Guard is an optional content condition on a Switch case.
type Guard interface {
	fmt.Stringer
	// Holds reports whether the condition is met for s, which is known to
	// match source exactly.
	Holds(source pattern.Pattern, s string) bool
}

// TokenIs holds when the I-th token (1-based) of the matched string equals
// Value — the structured form of a "contains keyword" conditional.
type TokenIs struct {
	I     int
	Value string
}

// Holds implements Guard. Matching goes through the process-wide compile
// cache: a guard is evaluated once per row of its column.
func (g TokenIs) Holds(source pattern.Pattern, s string) bool {
	spans, ok := rematch.CompileCached(source.Tokens()).Match(s)
	if !ok || g.I < 1 || g.I > len(spans) {
		return false
	}
	return s[spans[g.I-1].Start:spans[g.I-1].End] == g.Value
}

// String renders the guard as shown to the user.
func (g TokenIs) String() string { return fmt.Sprintf("token %d is %q", g.I, g.Value) }

// GuardedCase is a Switch case with an optional content guard.
type GuardedCase struct {
	Source pattern.Pattern
	Guard  Guard // nil means unconditional
	Plan   Plan
}

// GuardedProgram is a UniFi program whose cases may carry content guards;
// cases are tried in order and the first whose pattern matches and guard
// holds wins. A plain Program is the special case with all guards nil.
type GuardedProgram struct {
	Cases []GuardedCase
}

// Apply transforms s with the first applicable case. Case patterns match
// through the process-wide compile cache, and the match spans feed the plan
// directly, so each row is matched once per candidate case rather than once
// for the predicate and again for the evaluation.
func (gp GuardedProgram) Apply(s string) (string, error) {
	for _, c := range gp.Cases {
		spans, ok := rematch.CompileCached(c.Source.Tokens()).Match(s)
		if !ok {
			continue
		}
		if c.Guard != nil && !c.Guard.Holds(c.Source, s) {
			continue
		}
		return c.Plan.applySpans(s, spans)
	}
	return "", ErrNoMatch
}

// String renders the program, guards included.
func (gp GuardedProgram) String() string {
	out := "Switch("
	for i, c := range gp.Cases {
		if i > 0 {
			out += ",\n       "
		}
		cond := fmt.Sprintf("Match(%q)", c.Source.String())
		if c.Guard != nil {
			cond += " && " + c.Guard.String()
		}
		out += fmt.Sprintf("(%s, %s)", cond, c.Plan.String())
	}
	return out + ")"
}

// Lift converts a plain Program into a GuardedProgram.
func (pr Program) Lift() GuardedProgram {
	gp := GuardedProgram{Cases: make([]GuardedCase, len(pr.Cases))}
	for i, c := range pr.Cases {
		gp.Cases[i] = GuardedCase{Source: c.Source, Plan: c.Plan}
	}
	return gp
}
