// Compiled programs: a UniFi Switch prepared for applying to many rows.
// Each case's source pattern is compiled once (quick rejects + pooled
// matcher state) and plans are evaluated directly over the match spans.
package unifi

import (
	"fmt"
	"strings"

	"clx/internal/rematch"
)

// CompiledProgram is a Program prepared for repeated application. It is
// safe for concurrent use.
type CompiledProgram struct {
	cases []compiledCase
}

type compiledCase struct {
	matcher *rematch.Compiled
	plan    Plan
}

// Compile prepares the program for repeated application. Case matchers
// come from the process-wide compile cache, so recompiling the same program
// — or another program sharing source patterns, e.g. across clxd requests
// over similar columns — reuses the prepared matchers.
func (pr Program) Compile() *CompiledProgram {
	cp := &CompiledProgram{cases: make([]compiledCase, len(pr.Cases))}
	for i, c := range pr.Cases {
		cp.cases[i] = compiledCase{
			matcher: rematch.CompileCached(c.Source.Tokens()),
			plan:    c.Plan,
		}
	}
	return cp
}

// Apply transforms s with the first matching case, like Program.Apply.
func (cp *CompiledProgram) Apply(s string) (string, error) {
	for _, c := range cp.cases {
		spans, ok := c.matcher.Match(s)
		if !ok {
			continue
		}
		return c.plan.applySpans(s, spans)
	}
	return "", ErrNoMatch
}

// applySpans evaluates the plan over precomputed match spans.
func (p Plan) applySpans(s string, spans []rematch.Span) (string, error) {
	var b strings.Builder
	for _, op := range p.Ops {
		switch op := op.(type) {
		case ConstStr:
			b.WriteString(op.S)
		case Extract:
			if op.I < 1 || op.J > len(spans) || op.I > op.J {
				return "", fmt.Errorf("unifi: Extract(%d,%d) out of range for source of %d tokens",
					op.I, op.J, len(spans))
			}
			b.WriteString(s[spans[op.I-1].Start:spans[op.J-1].End])
		default:
			return "", fmt.Errorf("unifi: unknown operator %T", op)
		}
	}
	return b.String(), nil
}
