// Compiled programs: a UniFi Switch prepared for applying to many rows.
// Each case's source pattern is compiled once (quick rejects + pooled
// matcher state) and plans are evaluated directly over the match spans.
package unifi

import (
	"fmt"
	"strings"
	"sync"

	"clx/internal/pattern"
	"clx/internal/rematch"
)

// spanBufs pools per-call span buffers for the guarded-dispatch hot
// paths: one buffer serves every candidate case of a row, replacing the
// per-case span allocation inside Compiled.Match.
var spanBufs = sync.Pool{New: func() any { return new([]rematch.Span) }}

// CompiledProgram is a Program prepared for repeated application. It is
// safe for concurrent use.
type CompiledProgram struct {
	cases []compiledCase
}

type compiledCase struct {
	matcher *rematch.Compiled
	plan    Plan
}

// Compile prepares the program for repeated application. Case matchers
// come from the process-wide compile cache, so recompiling the same program
// — or another program sharing source patterns, e.g. across clxd requests
// over similar columns — reuses the prepared matchers.
func (pr Program) Compile() *CompiledProgram {
	cp := &CompiledProgram{cases: make([]compiledCase, len(pr.Cases))}
	for i, c := range pr.Cases {
		cp.cases[i] = compiledCase{
			matcher: rematch.CompileCached(c.Source.Tokens()),
			plan:    c.Plan,
		}
	}
	return cp
}

// Apply transforms s with the first matching case, like Program.Apply.
func (cp *CompiledProgram) Apply(s string) (string, error) {
	for _, c := range cp.cases {
		spans, ok := c.matcher.Match(s)
		if !ok {
			continue
		}
		return c.plan.applySpans(s, spans)
	}
	return "", ErrNoMatch
}

// CompiledGuardedProgram is a GuardedProgram prepared for repeated
// application — the serving-time hot path. GuardedProgram.Apply resolves
// each case's matcher through the compile cache on every call, which
// rebuilds the canonical pattern key per row per case; here the matchers
// are bound once, so per-row dispatch is just quick-reject and match work.
// It is safe for concurrent use.
type CompiledGuardedProgram struct {
	cases []compiledGuardedCase
}

type compiledGuardedCase struct {
	matcher *rematch.Compiled
	source  pattern.Pattern
	guard   Guard
	plan    Plan
}

// spanGuard is implemented by guards that can be evaluated against the
// dispatch match's spans, sparing a second match of the row.
type spanGuard interface {
	holdsSpans(s string, spans []rematch.Span) bool
}

func (g TokenIs) holdsSpans(s string, spans []rematch.Span) bool {
	if g.I < 1 || g.I > len(spans) {
		return false
	}
	return s[spans[g.I-1].Start:spans[g.I-1].End] == g.Value
}

// Compile binds every case to its process-wide cached matcher.
func (gp GuardedProgram) Compile() *CompiledGuardedProgram {
	cp := &CompiledGuardedProgram{cases: make([]compiledGuardedCase, len(gp.Cases))}
	for i, c := range gp.Cases {
		cp.cases[i] = compiledGuardedCase{
			matcher: rematch.CompileCached(c.Source.Tokens()),
			source:  c.Source,
			guard:   c.Guard,
			plan:    c.Plan,
		}
	}
	return cp
}

// Apply transforms s with the first applicable case, exactly as
// GuardedProgram.Apply does.
func (cp *CompiledGuardedProgram) Apply(s string) (string, error) {
	bp := spanBufs.Get().(*[]rematch.Span)
	defer spanBufs.Put(bp)
	for _, c := range cp.cases {
		spans, ok := c.matcher.MatchInto(s, *bp)
		if cap(spans) > cap(*bp) {
			*bp = spans
		}
		if !ok {
			continue
		}
		if c.guard != nil {
			if sg, ok := c.guard.(spanGuard); ok {
				if !sg.holdsSpans(s, spans) {
					continue
				}
			} else if !c.guard.Holds(c.source, s) {
				continue
			}
		}
		return c.plan.applySpans(s, spans)
	}
	return "", ErrNoMatch
}

// AppendApply transforms s exactly as Apply does but appends the result to
// dst instead of allocating a string — the bulk-apply hot path, where the
// caller owns a reusable per-chunk buffer. On any error dst is returned
// grown only by whatever the failing plan wrote; callers that need
// all-or-nothing truncate back to their own mark.
func (cp *CompiledGuardedProgram) AppendApply(dst []byte, s string) ([]byte, error) {
	bp := spanBufs.Get().(*[]rematch.Span)
	defer spanBufs.Put(bp)
	for _, c := range cp.cases {
		spans, ok := c.matcher.MatchInto(s, *bp)
		if cap(spans) > cap(*bp) {
			*bp = spans
		}
		if !ok {
			continue
		}
		if c.guard != nil {
			if sg, ok := c.guard.(spanGuard); ok {
				if !sg.holdsSpans(s, spans) {
					continue
				}
			} else if !c.guard.Holds(c.source, s) {
				continue
			}
		}
		return c.plan.appendSpans(dst, s, spans)
	}
	return dst, ErrNoMatch
}

// applySpans evaluates the plan over precomputed match spans. A sizing
// pass validates every operator and totals the exact output length first,
// so the builder grows once instead of doubling through appends — and
// since the old code discarded partial output on error anyway, erroring
// before any write is observably identical.
func (p Plan) applySpans(s string, spans []rematch.Span) (string, error) {
	size := 0
	for _, op := range p.Ops {
		switch op := op.(type) {
		case ConstStr:
			size += len(op.S)
		case Extract:
			if op.I < 1 || op.J > len(spans) || op.I > op.J {
				return "", fmt.Errorf("unifi: Extract(%d,%d) out of range for source of %d tokens",
					op.I, op.J, len(spans))
			}
			size += spans[op.J-1].End - spans[op.I-1].Start
		default:
			return "", fmt.Errorf("unifi: unknown operator %T", op)
		}
	}
	var b strings.Builder
	b.Grow(size)
	for _, op := range p.Ops {
		switch op := op.(type) {
		case ConstStr:
			b.WriteString(op.S)
		case Extract:
			b.WriteString(s[spans[op.I-1].Start:spans[op.J-1].End])
		}
	}
	return b.String(), nil
}

// appendSpans is applySpans into a caller-owned buffer.
func (p Plan) appendSpans(dst []byte, s string, spans []rematch.Span) ([]byte, error) {
	for _, op := range p.Ops {
		switch op := op.(type) {
		case ConstStr:
			dst = append(dst, op.S...)
		case Extract:
			if op.I < 1 || op.J > len(spans) || op.I > op.J {
				return dst, fmt.Errorf("unifi: Extract(%d,%d) out of range for source of %d tokens",
					op.I, op.J, len(spans))
			}
			dst = append(dst, s[spans[op.I-1].Start:spans[op.J-1].End]...)
		default:
			return dst, fmt.Errorf("unifi: unknown operator %T", op)
		}
	}
	return dst, nil
}
