// Trace expression DAGs for the FlashFill baseline: construction from a
// single input-output example, intersection across examples (version-space
// algebra), and extraction of a best concrete program.
package flashfill

import (
	"fmt"
	"sort"
	"strings"
)

// expr is an atomic string expression on a DAG edge.
type expr interface{ isExpr() }

// constExpr produces a constant string.
type constExpr struct{ s string }

func (constExpr) isExpr() {}

// substrExpr produces v[p1:p2] of the input; P1 and P2 are the sets of
// position expressions consistent with all examples seen so far.
type substrExpr struct {
	p1, p2 posSet
}

func (substrExpr) isExpr() {}

// edge joins DAG nodes From -> To with alternative expressions.
type edge struct {
	from, to int
	exprs    []expr
}

// dag is a version space of concatenation programs: every path from node 0
// to node n spells the output, each edge labeled with the expressions that
// can produce that output fragment.
type dag struct {
	n     int // nodes are 0..n
	edges map[[2]int]*edge
}

func newDag(n int) *dag { return &dag{n: n, edges: make(map[[2]int]*edge)} }

func (d *dag) add(from, to int, e expr) {
	key := [2]int{from, to}
	ed := d.edges[key]
	if ed == nil {
		ed = &edge{from: from, to: to}
		d.edges[key] = ed
	}
	ed.exprs = append(ed.exprs, e)
}

// traceDag builds the single-example DAG for transforming in into out.
func traceDag(in, out string) *dag {
	b := analyze(in)
	d := newDag(len(out))
	for i := 0; i <= len(out); i++ {
		for j := i + 1; j <= len(out); j++ {
			sub := out[i:j]
			d.add(i, j, constExpr{s: sub})
			// Every occurrence of sub in the input yields a substring
			// expression with the position sets of its endpoints.
			for at := 0; ; {
				k := strings.Index(in[at:], sub)
				if k < 0 {
					break
				}
				l := at + k
				d.add(i, j, substrExpr{p1: b.positions(l), p2: b.positions(l + len(sub))})
				at = l + 1
			}
		}
	}
	return d
}

// intersect computes the product DAG whose programs are exactly those valid
// for both operands. It returns nil when the intersection admits no complete
// program.
func (d *dag) intersect(o *dag) *dag {
	// Product nodes (a, b) relabeled to a*(o.n+1)+b; prune afterwards.
	id := func(a, b int) int { return a*(o.n+1) + b }
	prod := newDag(id(d.n, o.n))
	for _, e1 := range d.sorted() {
		for _, e2 := range o.sorted() {
			var merged []expr
			for _, x1 := range e1.exprs {
				for _, x2 := range e2.exprs {
					if m, ok := meet(x1, x2); ok {
						merged = append(merged, m)
					}
				}
			}
			if len(merged) == 0 {
				continue
			}
			key := [2]int{id(e1.from, e2.from), id(e1.to, e2.to)}
			ed := prod.edges[key]
			if ed == nil {
				ed = &edge{from: key[0], to: key[1]}
				prod.edges[key] = ed
			}
			ed.exprs = append(ed.exprs, merged...)
		}
	}
	if !prod.prune(0, id(d.n, o.n)) {
		return nil
	}
	return prod
}

// meet intersects two atomic expressions.
func meet(a, b expr) (expr, bool) {
	switch a := a.(type) {
	case constExpr:
		if b, ok := b.(constExpr); ok && a.s == b.s {
			return a, true
		}
	case substrExpr:
		if b, ok := b.(substrExpr); ok {
			p1 := a.p1.intersect(b.p1)
			if len(p1) == 0 {
				return nil, false
			}
			p2 := a.p2.intersect(b.p2)
			if len(p2) == 0 {
				return nil, false
			}
			return substrExpr{p1: p1, p2: p2}, true
		}
	}
	return nil, false
}

// prune relabels the DAG to the subgraph reachable from start and reaching
// end, with start -> 0 and end -> n. It reports whether any path survives.
func (d *dag) prune(start, end int) bool {
	fwd := map[int]bool{start: true}
	changed := true
	for changed {
		changed = false
		for _, e := range d.edges {
			if fwd[e.from] && !fwd[e.to] {
				fwd[e.to] = true
				changed = true
			}
		}
	}
	if !fwd[end] {
		return false
	}
	bwd := map[int]bool{end: true}
	changed = true
	for changed {
		changed = false
		for _, e := range d.edges {
			if bwd[e.to] && !bwd[e.from] {
				bwd[e.from] = true
				changed = true
			}
		}
	}
	// Relabel surviving nodes compactly, keeping start=0 and end last.
	var nodes []int
	for n := range fwd {
		if bwd[n] {
			nodes = append(nodes, n)
		}
	}
	sort.Ints(nodes)
	label := make(map[int]int, len(nodes))
	for i, n := range nodes {
		label[n] = i
	}
	// start is the smallest surviving original node only if start==0 and
	// relabeling preserves topological order of the original DAG, which it
	// does because original node ids increase along edges.
	edges := d.edges
	d.edges = make(map[[2]int]*edge)
	d.n = len(nodes) - 1
	for _, e := range edges {
		lf, okF := label[e.from]
		lt, okT := label[e.to]
		if !okF || !okT {
			continue
		}
		e.from, e.to = lf, lt
		d.edges[[2]int{lf, lt}] = e
	}
	return true
}

// sorted returns edges in deterministic order.
func (d *dag) sorted() []*edge {
	out := make([]*edge, 0, len(d.edges))
	for _, e := range d.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].from != out[b].from {
			return out[a].from < out[b].from
		}
		return out[a].to < out[b].to
	})
	return out
}

// atom is one step of an extracted concrete program.
type atom struct {
	isConst bool
	s       string
	p1, p2  posExpr
}

func (a atom) String() string {
	if a.isConst {
		return fmt.Sprintf("ConstStr(%q)", a.s)
	}
	return fmt.Sprintf("SubStr(%s, %s)", a.p1, a.p2)
}

// exprScore ranks an edge's best expression (lower is better): substring
// extraction generalizes better than constants.
func exprScore(x expr) (float64, atom, bool) {
	switch x := x.(type) {
	case constExpr:
		// Constants are charged two units per character so extraction from
		// the input is preferred when available, even when splitting a
		// single constant edge into const+substr+const segments (Gulwani's
		// ranking prefers programs that use the input).
		return 2 + 2*float64(len(x.s)), atom{isConst: true, s: x.s}, true
	case substrExpr:
		p1, ok1 := bestPos(x.p1)
		p2, ok2 := bestPos(x.p2)
		if !ok1 || !ok2 {
			return 0, atom{}, false
		}
		return p1.score() + p2.score(), atom{p1: p1, p2: p2}, true
	}
	return 0, atom{}, false
}

// extract picks the best concrete program from the DAG: the minimum-cost
// path where each edge costs 1 plus its best expression's score, so fewer,
// more general steps win.
func (d *dag) extract() ([]atom, bool) {
	const inf = 1e18
	cost := make([]float64, d.n+1)
	from := make([]int, d.n+1)
	via := make([]atom, d.n+1)
	for i := 1; i <= d.n; i++ {
		cost[i] = inf
	}
	for _, e := range d.sorted() { // ascending from => topological
		if cost[e.from] >= inf {
			continue
		}
		bestScore := inf
		var bestAtom atom
		for _, x := range e.exprs {
			if s, a, ok := exprScore(x); ok && s < bestScore {
				bestScore, bestAtom = s, a
			}
		}
		if bestScore >= inf {
			continue
		}
		c := cost[e.from] + 1 + bestScore
		if c < cost[e.to] {
			cost[e.to], from[e.to], via[e.to] = c, e.from, bestAtom
		}
	}
	if cost[d.n] >= inf {
		return nil, false
	}
	var rev []atom
	for at := d.n; at != 0; at = from[at] {
		rev = append(rev, via[at])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// run evaluates a concrete program on a new input.
func run(prog []atom, in string) (string, error) {
	b := analyze(in)
	var out strings.Builder
	for _, a := range prog {
		if a.isConst {
			out.WriteString(a.s)
			continue
		}
		l, ok1 := b.eval(a.p1)
		r, ok2 := b.eval(a.p2)
		if !ok1 || !ok2 || l > r {
			return "", fmt.Errorf("flashfill: %s failed on %q", a, in)
		}
		out.WriteString(in[l:r])
	}
	return out.String(), nil
}
