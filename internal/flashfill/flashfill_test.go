package flashfill

import (
	"strings"
	"testing"
)

func learn(t *testing.T, examples ...Example) *Program {
	t.Helper()
	p, err := Learn(examples)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	return p
}

func apply(t *testing.T, p *Program, in string) string {
	t.Helper()
	out, err := p.Apply(in)
	if err != nil {
		t.Fatalf("Apply(%q): %v", in, err)
	}
	return out
}

// One example generalizes to same-format inputs (the FlashFill sales pitch).
func TestSingleExampleGeneralizes(t *testing.T) {
	p := learn(t, Example{"734-422-8073", "(734) 422-8073"})
	if got := apply(t, p, "313-263-1192"); got != "(313) 263-1192" {
		t.Errorf("Apply = %q", got)
	}
	if got := apply(t, p, "999-111-0000"); got != "(999) 111-0000" {
		t.Errorf("Apply = %q", got)
	}
}

func TestSubstringExtraction(t *testing.T) {
	p := learn(t, Example{"Bob Smith", "Smith"})
	if got := apply(t, p, "Alice Jones"); got != "Jones" {
		t.Errorf("Apply = %q", got)
	}
	if got := apply(t, p, "X Y"); got != "Y" {
		t.Errorf("Apply = %q", got)
	}
}

// Two examples disambiguate: extract the digits, not a fixed offset.
func TestTwoExamplesRefine(t *testing.T) {
	p := learn(t,
		Example{"order 123 shipped", "123"},
		Example{"order 77 shipped", "77"},
	)
	if got := apply(t, p, "order 4589 shipped"); got != "4589" {
		t.Errorf("Apply = %q", got)
	}
}

// Truly incompatible examples open branches (conditional program): the
// constant prefixes differ and cannot come from the inputs.
func TestBranching(t *testing.T) {
	p := learn(t,
		Example{"apple", "FRUIT: apple"},
		Example{"123", "NUM: 123"},
	)
	if p.Branches() != 2 {
		t.Fatalf("branches = %d, want 2", p.Branches())
	}
	if got := apply(t, p, "pear"); got != "FRUIT: pear" {
		t.Errorf("letters input: %q", got)
	}
	if got := apply(t, p, "9"); got != "NUM: 9" {
		t.Errorf("digits input: %q", got)
	}
}

// Different phone formats may be unified by the version space (e.g. via
// from-the-right absolute positions); whatever the partition, both training
// formats must keep transforming correctly.
func TestMixedPhoneFormats(t *testing.T) {
	p := learn(t,
		Example{"734-422-8073", "(734) 422-8073"},
		Example{"(734)586-7252", "(734) 586-7252"},
	)
	if got := apply(t, p, "313-263-1192"); got != "(313) 263-1192" {
		t.Errorf("dash input: %q", got)
	}
	if got := apply(t, p, "(917)555-0199"); got != "(917) 555-0199" {
		t.Errorf("paren input: %q", got)
	}
}

// Same-format examples intersect into one branch.
func TestCompatibleExamplesShareBranch(t *testing.T) {
	p := learn(t,
		Example{"734-422-8073", "(734) 422-8073"},
		Example{"313-263-1192", "(313) 263-1192"},
		Example{"999-111-0000", "(999) 111-0000"},
	)
	if p.Branches() != 1 {
		t.Errorf("branches = %d, want 1", p.Branches())
	}
}

// The paper's motivating failure (Example 1): a program learned from
// ten-digit phones behaves unexpectedly on "+1 724-285-5210"-style input
// instead of rejecting it. We assert it produces *something incorrect or
// fails* — i.e. it does not magically normalize the new format.
func TestUnexpectedBehaviourOnNovelFormat(t *testing.T) {
	p := learn(t,
		Example{"734-422-8073", "(734) 422-8073"},
		Example{"313.263.1192", "(313) 263-1192"},
	)
	out, err := p.Apply("+1 724-285-5210")
	if err == nil && out == "(724) 285-5210" {
		t.Skip("baseline happened to normalize novel format; acceptable but unexpected")
	}
	// Either an error or a wrong output is the expected unreliable
	// behaviour.
	t.Logf("novel-format result: %q, err=%v (unreliable as expected)", out, err)
}

func TestConstantOnly(t *testing.T) {
	p := learn(t, Example{"whatever", "N/A"}, Example{"else", "N/A"})
	if got := apply(t, p, "anything at all"); got != "N/A" {
		t.Errorf("Apply = %q, want N/A", got)
	}
}

func TestMixedConstAndSubstr(t *testing.T) {
	p := learn(t,
		Example{"CPT-00350", "[CPT-00350]"},
		Example{"CPT-00340", "[CPT-00340]"},
	)
	if got := apply(t, p, "CPT-11536"); got != "[CPT-11536]" {
		t.Errorf("Apply = %q", got)
	}
}

// FlashFill paper Example 9 style: name reformatting within one format.
func TestNameReformat(t *testing.T) {
	p := learn(t,
		Example{"Eran Yahav", "Yahav, E."},
		Example{"Bill Gates", "Gates, B."},
	)
	if got := apply(t, p, "Sumit Gulwani"); got != "Gulwani, S." {
		t.Errorf("Apply = %q", got)
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(nil); err != ErrNoExamples {
		t.Errorf("Learn(nil) err = %v, want ErrNoExamples", err)
	}
	var l Learner
	if _, err := l.Program(); err != ErrNoExamples {
		t.Errorf("empty learner Program() err = %v", err)
	}
}

func TestProgramString(t *testing.T) {
	p := learn(t, Example{"12", "x12"})
	s := p.String()
	if !strings.Contains(s, "case 1") {
		t.Errorf("String() = %q", s)
	}
}

func TestEmptyInputExample(t *testing.T) {
	p := learn(t, Example{"", "empty"})
	if got := apply(t, p, ""); got != "empty" {
		t.Errorf("Apply = %q", got)
	}
}

func TestApplyNoBranch(t *testing.T) {
	p := learn(t, Example{"abc def", "def"})
	// An input where even fallback evaluation fails: no space boundary.
	if _, err := p.Apply("x"); err == nil {
		t.Log("fallback produced output; acceptable")
	}
}

// Determinism: learning twice from the same examples produces a program
// with identical behaviour on probes.
func TestDeterminism(t *testing.T) {
	examples := []Example{
		{"734-422-8073", "(734) 422-8073"},
		{"(734)586-7252", "(734) 586-7252"},
		{"313.263.1192", "(313) 263-1192"},
	}
	p1 := learn(t, examples...)
	p2 := learn(t, examples...)
	probes := []string{"111-222-3333", "(999)888-7777", "123.456.7890"}
	for _, probe := range probes {
		o1, e1 := p1.Apply(probe)
		o2, e2 := p2.Apply(probe)
		if o1 != o2 || (e1 == nil) != (e2 == nil) {
			t.Errorf("probe %q: %q/%v vs %q/%v", probe, o1, e1, o2, e2)
		}
	}
}

// Position evaluation internals.
func TestBoundariesEval(t *testing.T) {
	b := analyze("ab 12")
	// CPos round trip.
	for k := 0; k <= 5; k++ {
		for p := range b.positions(k) {
			got, ok := b.eval(p)
			if !ok || got != k {
				t.Errorf("eval(%s) = %d,%v, want %d", p, got, ok, k)
			}
		}
	}
	// Out-of-range CPos fails.
	if _, ok := b.eval(posExpr{Kind: cposLeft, K: 99}); ok {
		t.Error("CPos(99) should fail on short string")
	}
	// Regex position absent from the string fails.
	if _, ok := b.eval(posExpr{Kind: posRegex, Left: tokPunct | '@', Right: tokNone, C: 1}); ok {
		t.Error("position after '@' should fail when input has no '@'")
	}
}

func TestTraceDagHasSubstrAndConst(t *testing.T) {
	d := traceDag("ab", "b!")
	e := d.edges[[2]int{0, 1}]
	if e == nil {
		t.Fatal("missing edge (0,1)")
	}
	var hasConst, hasSub bool
	for _, x := range e.exprs {
		switch x.(type) {
		case constExpr:
			hasConst = true
		case substrExpr:
			hasSub = true
		}
	}
	if !hasConst || !hasSub {
		t.Errorf("edge (0,1): const=%v substr=%v, want both", hasConst, hasSub)
	}
	// '!' does not occur in input: only ConstStr on edge (1,2).
	e = d.edges[[2]int{1, 2}]
	for _, x := range e.exprs {
		if _, ok := x.(substrExpr); ok {
			t.Error("edge (1,2) should have no substring source")
		}
	}
}
