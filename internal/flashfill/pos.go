// Position expressions and token specs for the FlashFill baseline.
//
// A position expression identifies a boundary position in an input string
// either absolutely (CPos from the left or right) or by the token context
// around it (Pos(r1, r2, c): the c-th position where a token of kind r1 ends
// and a token of kind r2 begins). Token kinds are maximal character-class
// runs plus per-character punctuation runs, mirroring Gulwani (2011).
package flashfill

import (
	"fmt"
	"sort"
)

// tokSpec encodes a token kind for position expressions: tokNone, one of the
// class tokens, or a punctuation character token (tokPunct | char).
type tokSpec uint16

const (
	tokNone tokSpec = iota
	tokDigit
	tokLower
	tokUpper
	tokAlpha
	tokWord // [a-zA-Z0-9]
	tokSpace
	tokPunct tokSpec = 1 << 8 // tokPunct | rune for single punctuation chars
)

func (t tokSpec) String() string {
	if t&tokPunct != 0 {
		return fmt.Sprintf("%q", rune(t&0xff))
	}
	switch t {
	case tokNone:
		return "ε"
	case tokDigit:
		return "Digit"
	case tokLower:
		return "Lower"
	case tokUpper:
		return "Upper"
	case tokAlpha:
		return "Alpha"
	case tokWord:
		return "Word"
	case tokSpace:
		return "Space"
	}
	return "?"
}

func classOf(b byte) []tokSpec {
	switch {
	case b >= '0' && b <= '9':
		return []tokSpec{tokDigit, tokWord}
	case b >= 'a' && b <= 'z':
		return []tokSpec{tokLower, tokAlpha, tokWord}
	case b >= 'A' && b <= 'Z':
		return []tokSpec{tokUpper, tokAlpha, tokWord}
	case b == ' ' || b == '\t':
		return []tokSpec{tokSpace}
	default:
		return []tokSpec{tokPunct | tokSpec(b)}
	}
}

func inSpec(t tokSpec, b byte) bool {
	for _, s := range classOf(b) {
		if s == t {
			return true
		}
	}
	return false
}

// posKind discriminates position expressions.
type posKind uint8

const (
	cposLeft  posKind = iota // K characters from the left (0..len)
	cposRight                // K characters from the right (0..len)
	posRegex                 // Pos(Left, Right, C)
)

// posExpr is a single position expression. It is a comparable value so
// position sets can be intersected as map keys.
type posExpr struct {
	Kind  posKind
	K     int // cpos offset
	Left  tokSpec
	Right tokSpec
	C     int // occurrence index; >0 from start, <0 from end
}

func (p posExpr) String() string {
	switch p.Kind {
	case cposLeft:
		return fmt.Sprintf("CPos(%d)", p.K)
	case cposRight:
		return fmt.Sprintf("CPos(-%d)", p.K)
	default:
		return fmt.Sprintf("Pos(%s,%s,%d)", p.Left, p.Right, p.C)
	}
}

// posSet is a set of position expressions that all denote the same position
// in the example input.
type posSet map[posExpr]struct{}

func (s posSet) intersect(t posSet) posSet {
	if len(t) < len(s) {
		s, t = t, s
	}
	out := make(posSet)
	for p := range s {
		if _, ok := t[p]; ok {
			out[p] = struct{}{}
		}
	}
	return out
}

// boundaries precomputes, for a string v, every (left, right) token-kind
// pair at every position, used both to generate position expressions during
// learning and to evaluate them on new inputs.
type boundaries struct {
	v string
	// at[k] lists the (left, right) kinds present at position k.
	at [][][2]tokSpec
	// occ[(l, r)] lists the positions where that pair occurs, in order.
	occ map[[2]tokSpec][]int
}

func analyze(v string) *boundaries {
	b := &boundaries{v: v, at: make([][][2]tokSpec, len(v)+1), occ: make(map[[2]tokSpec][]int)}
	ends := make(map[int][]tokSpec)   // token kinds with a maximal run ending at k
	starts := make(map[int][]tokSpec) // token kinds with a maximal run starting at k
	for _, spec := range enumSpecs(v) {
		for k := 0; k <= len(v); k++ {
			endsHere := k > 0 && inSpec(spec, v[k-1]) && (k == len(v) || !inSpec(spec, v[k]))
			startsHere := k < len(v) && inSpec(spec, v[k]) && (k == 0 || !inSpec(spec, v[k-1]))
			if endsHere {
				ends[k] = append(ends[k], spec)
			}
			if startsHere {
				starts[k] = append(starts[k], spec)
			}
		}
	}
	for k := 0; k <= len(v); k++ {
		var pairs [][2]tokSpec
		le := append([]tokSpec{tokNone}, ends[k]...)
		rs := append([]tokSpec{tokNone}, starts[k]...)
		for _, l := range le {
			for _, r := range rs {
				if l == tokNone && r == tokNone {
					continue
				}
				pairs = append(pairs, [2]tokSpec{l, r})
				key := [2]tokSpec{l, r}
				b.occ[key] = append(b.occ[key], k)
			}
		}
		b.at[k] = pairs
	}
	return b
}

// enumSpecs lists the token kinds occurring in v, deterministically.
func enumSpecs(v string) []tokSpec {
	set := make(map[tokSpec]bool)
	for i := 0; i < len(v); i++ {
		for _, s := range classOf(v[i]) {
			set[s] = true
		}
	}
	specs := make([]tokSpec, 0, len(set))
	for s := range set {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(a, b int) bool { return specs[a] < specs[b] })
	return specs
}

// positions generates every position expression denoting position k of the
// analyzed string.
func (b *boundaries) positions(k int) posSet {
	out := make(posSet)
	out[posExpr{Kind: cposLeft, K: k}] = struct{}{}
	out[posExpr{Kind: cposRight, K: len(b.v) - k}] = struct{}{}
	for _, pair := range b.at[k] {
		occ := b.occ[pair]
		idx := sort.SearchInts(occ, k)
		out[posExpr{Kind: posRegex, Left: pair[0], Right: pair[1], C: idx + 1}] = struct{}{}
		out[posExpr{Kind: posRegex, Left: pair[0], Right: pair[1], C: idx - len(occ)}] = struct{}{}
	}
	return out
}

// eval resolves a position expression against the analyzed string, returning
// the position and whether it exists.
func (b *boundaries) eval(p posExpr) (int, bool) {
	switch p.Kind {
	case cposLeft:
		if p.K > len(b.v) {
			return 0, false
		}
		return p.K, true
	case cposRight:
		if p.K > len(b.v) {
			return 0, false
		}
		return len(b.v) - p.K, true
	default:
		occ := b.occ[[2]tokSpec{p.Left, p.Right}]
		i := p.C
		if i < 0 {
			i += len(occ)
		} else {
			i--
		}
		if i < 0 || i >= len(occ) {
			return 0, false
		}
		return occ[i], true
	}
}

// score ranks position expressions for extraction: token-relative positions
// generalize better than absolute offsets, and first/last occurrences better
// than middle ones.
func (p posExpr) score() float64 {
	switch p.Kind {
	case posRegex:
		c := p.C
		if c < 0 {
			c = -c
		}
		s := float64(c) * 0.01
		if p.Left == tokNone || p.Right == tokNone {
			s += 0.005
		}
		return s
	default:
		return 1 + float64(p.K)*0.001
	}
}

// bestPos picks the highest-ranked expression of a set, deterministically.
func bestPos(s posSet) (posExpr, bool) {
	var best posExpr
	found := false
	for p := range s {
		if !found || less(p, best) {
			best, found = p, true
		}
	}
	return best, found
}

func less(a, b posExpr) bool {
	sa, sb := a.score(), b.score()
	if sa != sb {
		return sa < sb
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	// Prefer general token kinds: a Word- or Alpha-anchored position keeps
	// working on inputs where a narrower class (e.g. Lower) is absent.
	if ga, gb := genRank(a.Left)+genRank(a.Right), genRank(b.Left)+genRank(b.Right); ga != gb {
		return ga < gb
	}
	if a.Left != b.Left {
		return a.Left < b.Left
	}
	if a.Right != b.Right {
		return a.Right < b.Right
	}
	if a.C != b.C {
		return a.C < b.C
	}
	return a.K < b.K
}

// genRank orders token kinds by generality (lower = more general).
func genRank(t tokSpec) int {
	switch t {
	case tokWord:
		return 0
	case tokAlpha:
		return 1
	case tokDigit:
		return 2
	case tokLower, tokUpper:
		return 3
	case tokSpace:
		return 4
	case tokNone:
		return 5
	default: // punctuation
		return 6
	}
}
