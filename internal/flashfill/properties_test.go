package flashfill

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Property: a learned program reproduces every training example exactly.
func TestLearnedProgramReproducesExamples(t *testing.T) {
	gen := func(v []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(4)
		exs := make([]Example, n)
		// One extraction rule for the whole set: if structurally identical
		// inputs demanded different parts (a per-example random pick could
		// ask for the first token of "12.alpha 12" and the second of
		// "9042.alpha 9042"), no input classifier could separate them and
		// the set would be unlearnable by construction rather than by any
		// fault of the learner.
		pick := r.Intn(8)
		// A duplicate input must keep one output: two examples with the
		// same In and different Outs are contradictory, and no
		// deterministic program could reproduce both.
		outOf := make(map[string]string)
		for i := range exs {
			in := randRow(r)
			// Output built from input pieces plus constants, so it is
			// always expressible.
			out, seen := outOf[in]
			if !seen {
				parts := strings.FieldsFunc(in, func(c rune) bool { return c == ' ' || c == '-' })
				out = "X:"
				if len(parts) > 0 {
					out += parts[pick%len(parts)]
				}
				outOf[in] = out
			}
			exs[i] = Example{In: in, Out: out}
		}
		v[0] = reflect.ValueOf(exs)
	}
	f := func(exs []Example) bool {
		p, err := Learn(exs)
		if err != nil {
			return false
		}
		for _, ex := range exs {
			out, err := p.Apply(ex.In)
			if err != nil || out != ex.Out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Values: gen}); err != nil {
		t.Error(err)
	}
}

func randRow(r *rand.Rand) string {
	words := []string{"alpha", "Beta", "GAMMA", "12", "9042", "x7"}
	seps := []string{" ", "-", " ", "."}
	n := 1 + r.Intn(3)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(seps[r.Intn(len(seps))])
		}
		b.WriteString(words[r.Intn(len(words))])
	}
	return b.String()
}

// Property: DAG intersection is sound — a program extracted from the
// intersection of two example DAGs is consistent with both examples.
func TestIntersectionSound(t *testing.T) {
	pairs := [][2]Example{
		{{"734-422-8073", "(734) 422-8073"}, {"313-263-1192", "(313) 263-1192"}},
		{{"Bob Smith", "Smith"}, {"Ann Lee", "Lee"}},
		{{"a 1", "1:a"}, {"zz 42", "42:zz"}},
		{{"CPT-00350", "[CPT-00350]"}, {"CPT-00340", "[CPT-00340]"}},
	}
	for _, pair := range pairs {
		d1 := traceDag(pair[0].In, pair[0].Out)
		d2 := traceDag(pair[1].In, pair[1].Out)
		merged := d1.intersect(d2)
		if merged == nil {
			t.Errorf("intersection of %v empty", pair)
			continue
		}
		prog, ok := merged.extract()
		if !ok {
			t.Errorf("no program in intersection of %v", pair)
			continue
		}
		for _, ex := range pair {
			out, err := run(prog, ex.In)
			if err != nil || out != ex.Out {
				t.Errorf("intersected program on %q = %q, %v; want %q",
					ex.In, out, err, ex.Out)
			}
		}
	}
}

// Property: position expressions generated for a string always evaluate
// back to the position they were generated for, on that same string.
func TestPositionsRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		b := analyze(s)
		for k := 0; k <= len(s); k++ {
			for p := range b.positions(k) {
				got, ok := b.eval(p)
				if !ok || got != k {
					return false
				}
			}
		}
		return true
	}
	gen := func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(randRow(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: gen}); err != nil {
		t.Error(err)
	}
}

// Property: an intersected version space never grows — merging a third
// compatible example keeps the program consistent with all three.
func TestThreeWayIntersection(t *testing.T) {
	exs := []Example{
		{"734-422-8073", "734"},
		{"313-263-1192", "313"},
		{"999-111-0000", "999"},
	}
	var l Learner
	for _, ex := range exs {
		if err := l.Add(ex); err != nil {
			t.Fatal(err)
		}
	}
	p, err := l.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Branches() != 1 {
		t.Errorf("branches = %d, want 1 (all compatible)", p.Branches())
	}
	for _, ex := range exs {
		out, err := p.Apply(ex.In)
		if err != nil || out != ex.Out {
			t.Errorf("Apply(%q) = %q, %v", ex.In, out, err)
		}
	}
	if out, err := p.Apply("123-456-7890"); err != nil || out != "123" {
		t.Errorf("generalization: %q, %v", out, err)
	}
}
