// Package flashfill is a from-scratch reimplementation of the FlashFill
// string-transformation-by-example synthesizer (Gulwani, POPL 2011) used as
// the PBE baseline in the paper's evaluation (§7.1).
//
// It implements the loop-free core of the FlashFill language: programs are
// Switch statements over input partitions; each branch is a concatenation of
// ConstStr and SubStr(p1, p2) expressions, with positions given absolutely
// (CPos) or by token context (Pos(r1, r2, c)). Learning builds a trace DAG
// per input-output example and intersects DAGs within a branch
// (version-space algebra); examples incompatible with every existing branch
// open a new branch. Branch classifiers are generalized token patterns of
// the branch's example inputs — the pattern-based approximation of
// Gulwani's conditional inference (see DESIGN.md).
//
// Loops are intentionally unsupported, matching the paper's benchmark
// construction (Appendix D excludes loop tasks).
package flashfill

import (
	"errors"
	"fmt"
	"strings"

	"clx/internal/cluster"
	"clx/internal/pattern"
)

// Example is one input-output example provided by the user.
type Example struct {
	In, Out string
}

// branch is one conditional branch: the version space intersected over its
// examples plus its classifier patterns.
type branch struct {
	examples []Example
	space    *dag
	// classifiers are the generalized (quantifier-free) patterns of the
	// branch's example inputs; an input belongs to the branch when it
	// matches any of them.
	classifiers []pattern.Pattern
	// program is the concrete program extracted from space.
	program []atom
}

// accepts reports whether any of the branch's classifiers matches the input.
func (br *branch) accepts(in string) bool {
	for _, c := range br.classifiers {
		if c.Matches(in) {
			return true
		}
	}
	return false
}

// Learner incrementally learns a FlashFill program from examples.
type Learner struct {
	branches []*branch
}

// Program is a learned FlashFill transformation.
type Program struct {
	branches []*branch
}

// ErrNoExamples is returned by Learn and Learner.Program before any example
// has been added.
var ErrNoExamples = errors.New("flashfill: no examples")

// ErrNoBranch is returned by Apply when no branch classifier accepts the
// input.
var ErrNoBranch = errors.New("flashfill: no branch matches input")

// Add incorporates one example. It returns an error when the example's
// output cannot be expressed at all (never happens for the loop-free
// language: a ConstStr-only program always exists).
func (l *Learner) Add(ex Example) error {
	exDag := traceDag(ex.In, ex.Out)
	for _, br := range l.branches {
		// Only branches whose classifier accepts the input may absorb the
		// example. Without this, the version space occasionally finds a
		// freak program unifying visibly different formats (e.g.
		// ConstStr("A")+SubStr(...) covering both "Austin"->"Austin" and
		// "University of Austin"->"Austin"), which then hijacks apply-time
		// routing for one of them.
		if !br.accepts(ex.In) {
			continue
		}
		merged := br.space.intersect(exDag)
		if merged == nil {
			continue
		}
		prog, ok := merged.extract()
		if !ok {
			continue
		}
		// Re-verify on all of the branch's examples: extraction picks one
		// concrete program; it must still reproduce every output.
		all := append(append([]Example{}, br.examples...), ex)
		if !consistent(prog, all) {
			continue
		}
		br.space = merged
		br.examples = all
		br.program = prog
		br.classifiers = append(br.classifiers, classifier(ex.In))
		return nil
	}
	prog, ok := exDag.extract()
	if !ok || !consistent(prog, []Example{ex}) {
		return fmt.Errorf("flashfill: cannot express example %q -> %q", ex.In, ex.Out)
	}
	l.branches = append(l.branches, &branch{
		examples:    []Example{ex},
		space:       exDag,
		classifiers: []pattern.Pattern{classifier(ex.In)},
		program:     prog,
	})
	return nil
}

func consistent(prog []atom, examples []Example) bool {
	for _, ex := range examples {
		out, err := run(prog, ex.In)
		if err != nil || out != ex.Out {
			return false
		}
	}
	return true
}

// classifier generalizes an input string to its '+'-quantified token
// pattern.
func classifier(in string) pattern.Pattern {
	return cluster.Generalize(pattern.FromString(in), cluster.QuantToPlus)
}

// Program returns the currently learned program.
func (l *Learner) Program() (*Program, error) {
	if len(l.branches) == 0 {
		return nil, ErrNoExamples
	}
	return &Program{branches: l.branches}, nil
}

// Learn learns a program from a fixed example set.
func Learn(examples []Example) (*Program, error) {
	var l Learner
	for _, ex := range examples {
		if err := l.Add(ex); err != nil {
			return nil, err
		}
	}
	return l.Program()
}

// Apply transforms a new input. The first branch whose classifier matches
// is used; its failure is the transformation's failure (the paper's
// "functions unexpectedly on new input" behaviour surfaces here).
func (p *Program) Apply(in string) (string, error) {
	for _, br := range p.branches {
		for _, c := range br.classifiers {
			if c.Matches(in) {
				return run(br.program, in)
			}
		}
	}
	// Fall back to the first branch whose program runs — FlashFill always
	// produces some output for inputs it has no good partition for.
	for _, br := range p.branches {
		if out, err := run(br.program, in); err == nil {
			return out, nil
		}
	}
	return "", ErrNoBranch
}

// Branches returns the number of conditional branches learned.
func (p *Program) Branches() int { return len(p.branches) }

// String renders the opaque internal program — deliberately low-level; the
// paper's point is that this is what a FlashFill user cannot inspect
// meaningfully.
func (p *Program) String() string {
	var b strings.Builder
	for i, br := range p.branches {
		fmt.Fprintf(&b, "case %d (%d examples):", i+1, len(br.examples))
		for _, a := range br.program {
			fmt.Fprintf(&b, " %s", a)
		}
		b.WriteString("\n")
	}
	return b.String()
}
