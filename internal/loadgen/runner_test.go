package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer fakes the three clxd endpoints with configurable behavior.
type stubServer struct {
	applies, streams, registers atomic.Int64
	reject429                   atomic.Bool // streams get 429 when set
	brokenTrailer               atomic.Bool // streams end without done
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", func(w http.ResponseWriter, r *http.Request) {
		s.registers.Add(1)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintln(w, `{"id":"stub-id","version":1}`)
	})
	mux.HandleFunc("POST /v1/programs/{id}/apply", func(w http.ResponseWriter, r *http.Request) {
		s.applies.Add(1)
		var req struct {
			Rows []string `json:"rows"`
		}
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `{"output":%s}`, body)
	})
	mux.HandleFunc("POST /v1/programs/{id}/apply/stream", func(w http.ResponseWriter, r *http.Request) {
		s.streams.Add(1)
		if s.reject429.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"too many concurrent streams"}`)
			return
		}
		body, _ := io.ReadAll(r.Body)
		rows := strings.Count(string(body), "\n")
		for i := 0; i < rows; i++ {
			fmt.Fprintln(w, `"x"`)
		}
		if !s.brokenTrailer.Load() {
			fmt.Fprintf(w, `{"done":true,"rows":%d}`+"\n", rows)
		}
	})
	return mux
}

func testSchedule(n int) []Request {
	return BuildSchedule(NewFixedRate(2000, n), WorkloadOptions{
		Mix: Mix{Apply: 1, Stream: 1, Register: 1}, Rows: RowsDist{Min: 3, Max: 8}, Seed: 1,
	})
}

func TestRunAgainstStub(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	sched := testSchedule(60)
	res, err := Run(context.Background(), Target{BaseURL: srv.URL, ProgramID: "stub-id"}, sched)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.Arrivals != 60 || s.OK != 60 || s.Errors != 0 || s.Rejected != 0 {
		t.Fatalf("summary = %+v", s)
	}
	hits := stub.applies.Load() + stub.streams.Load() + stub.registers.Load()
	if hits != 60 {
		t.Fatalf("server saw %d requests, want 60", hits)
	}
	if s.P99MS <= 0 || s.GoodputRowsPerSec <= 0 {
		t.Errorf("p99 = %v, goodput = %v — expected positive", s.P99MS, s.GoodputRowsPerSec)
	}
	// Ops and payload sizes survive into samples.
	for i, sm := range res.Samples {
		if sm.Op != sched[i].Op || sm.Rows != len(sched[i].Rows) {
			t.Fatalf("sample %d = {%v %d rows}, schedule has {%v %d rows}",
				i, sm.Op, sm.Rows, sched[i].Op, len(sched[i].Rows))
		}
	}
}

func TestRunCounts429AsRejected(t *testing.T) {
	stub := &stubServer{}
	stub.reject429.Store(true)
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	sched := BuildSchedule(NewFixedRate(2000, 30), WorkloadOptions{
		Mix: Mix{Stream: 1}, Rows: RowsDist{Min: 3, Max: 3}, Seed: 2,
	})
	res, err := Run(context.Background(), Target{BaseURL: srv.URL, ProgramID: "stub-id"}, sched)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.Rejected != 30 || s.OK != 0 || s.Errors != 0 {
		t.Fatalf("summary = %+v, want all 30 rejected", s)
	}
}

func TestRunBrokenStreamIsError(t *testing.T) {
	stub := &stubServer{}
	stub.brokenTrailer.Store(true)
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	sched := BuildSchedule(NewFixedRate(2000, 10), WorkloadOptions{
		Mix: Mix{Stream: 1}, Rows: RowsDist{Min: 3, Max: 3}, Seed: 3,
	})
	res, err := Run(context.Background(), Target{BaseURL: srv.URL, ProgramID: "stub-id"}, sched)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res)
	if s.Errors != 10 || s.OK != 0 {
		t.Fatalf("summary = %+v, want 10 errors (no done trailer)", s)
	}
}

func TestRunTransportErrors(t *testing.T) {
	// A closed server: every request is a transport error, none panic.
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	res, err := Run(context.Background(), Target{BaseURL: srv.URL, ProgramID: "x"}, testSchedule(5))
	if err != nil {
		t.Fatal(err)
	}
	if s := Summarize(res); s.Errors != 5 {
		t.Fatalf("summary = %+v, want 5 transport errors", s)
	}
}

func TestRunCancellation(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	// A long schedule cancelled early: the tail is marked, Run returns.
	sched := BuildSchedule(NewFixedRate(10, 100), WorkloadOptions{Seed: 4}) // 10s worth
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Target{BaseURL: srv.URL, ProgramID: "stub-id"}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 100 {
		t.Fatalf("samples = %d, want 100 (tail marked, not dropped)", len(res.Samples))
	}
	s := Summarize(res)
	if s.OK == 0 || s.Errors == 0 {
		t.Fatalf("summary = %+v, want some OK and a cancelled tail", s)
	}
}

func TestRegisterSeedProgramStub(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	id, err := RegisterSeedProgram(Target{BaseURL: srv.URL}, []string{"734-422-8073"})
	if err != nil || id != "stub-id" {
		t.Fatalf("id = %q, err = %v", id, err)
	}
	if stub.registers.Load() != 1 {
		t.Fatalf("registers = %d", stub.registers.Load())
	}
}

func TestRunEmptyBaseURL(t *testing.T) {
	if _, err := Run(context.Background(), Target{}, nil); err == nil {
		t.Fatal("no error on empty BaseURL")
	}
}
