package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	records := []TraceRecord{
		{At: 0, Op: OpApply, Rows: 12},
		{At: 1500 * time.Microsecond, Op: OpStream, Rows: 300},
		{At: 2 * time.Second, Op: OpRegister, Rows: 8},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "offset_ms,op,rows\n") {
		t.Fatalf("missing header: %q", buf.String())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip length %d, want %d", len(got), len(records))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", "0,apply,10\n"},
		{"wrong header", "time,operation,n\n0,apply,10\n"},
		{"bad offset", "offset_ms,op,rows\nx,apply,10\n"},
		{"negative offset", "offset_ms,op,rows\n-3,apply,10\n"},
		{"decreasing offset", "offset_ms,op,rows\n5,apply,10\n2,apply,10\n"},
		{"bad op", "offset_ms,op,rows\n0,delete,10\n"},
		{"bad rows", "offset_ms,op,rows\n0,apply,zero\n"},
		{"zero rows", "offset_ms,op,rows\n0,apply,0\n"},
		{"field count", "offset_ms,op,rows\n0,apply\n"},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestTraceOfFreezesSchedule(t *testing.T) {
	sched := BuildSchedule(NewFixedRate(100, 20), WorkloadOptions{Seed: 3})
	records := TraceOf(sched)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := ScheduleFromTrace(parsed, 3, 6)
	if Fingerprint(replayed) != Fingerprint(sched) {
		t.Fatal("freeze -> write -> read -> replay did not reproduce the schedule bytes")
	}
}
