// Workload generation: what each arrival actually sends. A Mix weights
// the three clxd operations (register / apply / apply-stream), a
// RowsDist draws the per-request column size, and the payload rows come
// from internal/dataset's deterministic phone generator — the same messy
// six-format column every other benchmark in the repo exercises, so
// loadgen results are comparable to the microbenches. Everything is
// derived from the schedule seed: request i's payload is a pure function
// of (seed, i), which is what makes trace replay and regression runs
// byte-deterministic.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"clx/internal/dataset"
)

// Op is one of the clxd operations a generated request exercises.
type Op uint8

const (
	// OpApply is POST /v1/programs/{id}/apply — the in-memory hot path.
	OpApply Op = iota
	// OpStream is POST /v1/programs/{id}/apply/stream — the admission-
	// controlled bulk path.
	OpStream
	// OpRegister is POST /v1/programs — the synthesis (write) path.
	OpRegister
)

// String renders the op the way traces and reports spell it.
func (o Op) String() string {
	switch o {
	case OpApply:
		return "apply"
	case OpStream:
		return "stream"
	case OpRegister:
		return "register"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseOp parses the trace spelling of an op.
func ParseOp(s string) (Op, error) {
	switch s {
	case "apply":
		return OpApply, nil
	case "stream":
		return OpStream, nil
	case "register":
		return OpRegister, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown op %q (want apply, stream, or register)", s)
	}
}

// Mix weights the operations of a generated workload. Zero weights drop
// the op; the zero Mix is invalid.
type Mix struct {
	Apply    int `json:"apply"`
	Stream   int `json:"stream"`
	Register int `json:"register"`
}

// DefaultMix is apply-heavy with a streaming and a synthesis component —
// the profile of a deployment that registered its programs once and now
// serves transformations.
var DefaultMix = Mix{Apply: 8, Stream: 2, Register: 1}

// ParseMix parses "apply:stream:register" weight notation, e.g. "8:2:1".
func ParseMix(s string) (Mix, error) {
	var m Mix
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &m.Apply, &m.Stream, &m.Register); err != nil {
		return Mix{}, fmt.Errorf("loadgen: mix %q is not apply:stream:register weights: %v", s, err)
	}
	if m.Apply < 0 || m.Stream < 0 || m.Register < 0 || m.Apply+m.Stream+m.Register == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q needs non-negative weights summing > 0", s)
	}
	return m, nil
}

// pick draws an op according to the weights.
func (m Mix) pick(r *rand.Rand) Op {
	total := m.Apply + m.Stream + m.Register
	n := r.Intn(total)
	if n < m.Apply {
		return OpApply
	}
	if n < m.Apply+m.Stream {
		return OpStream
	}
	return OpRegister
}

// RowsDist draws the number of rows a request carries — the value-length
// distribution knob. Min == Max is a fixed size; otherwise uniform on
// [Min, Max].
type RowsDist struct {
	Min, Max int
}

// DefaultRowsDist is 20–200 rows per request: small enough that a single
// request is cheap, wide enough that per-request cost varies the way a
// real mixed column feed does.
var DefaultRowsDist = RowsDist{Min: 20, Max: 200}

func (d RowsDist) draw(r *rand.Rand) int {
	if d.Min < 1 {
		d.Min = 1
	}
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + r.Intn(d.Max-d.Min+1)
}

// Request is one scheduled arrival: when it fires, which operation, and
// the column it carries.
type Request struct {
	// At is the arrival offset from the start of the run.
	At time.Duration
	// Op selects the endpoint.
	Op Op
	// Rows is the input column for the request body.
	Rows []string
}

// WorkloadOptions configure schedule generation.
type WorkloadOptions struct {
	// Mix weights the ops (zero value → DefaultMix).
	Mix Mix
	// Rows draws per-request column sizes (zero value → DefaultRowsDist).
	Rows RowsDist
	// Formats is the phone-format variety per request column, 1..dataset.
	// NumPhoneFormats (0 → 6, the §7.2 study spread).
	Formats int
	// Seed drives every random choice. The same seed and arrival process
	// yield a byte-identical schedule.
	Seed int64
}

func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix
	}
	if o.Rows == (RowsDist{}) {
		o.Rows = DefaultRowsDist
	}
	if o.Formats == 0 {
		o.Formats = 6
	}
	return o
}

// BuildSchedule materializes the full request sequence: one Request per
// arrival the process emits, ops drawn from the mix, payloads from the
// dataset generator. Request i's payload depends only on (Seed, i), so
// regenerating with the same inputs is byte-identical.
func BuildSchedule(proc ArrivalProcess, opts WorkloadOptions) []Request {
	opts = opts.withDefaults()
	r := rand.New(rand.NewSource(opts.Seed))
	var out []Request
	for i := 0; ; i++ {
		at, ok := proc.Next()
		if !ok {
			return out
		}
		op := opts.Mix.pick(r)
		n := opts.Rows.draw(r)
		rows, _ := dataset.Phones(n, opts.Formats, payloadSeed(opts.Seed, i))
		out = append(out, Request{At: at, Op: op, Rows: rows})
	}
}

// payloadSeed derives request i's dataset seed from the schedule seed —
// a splitmix-style scramble so consecutive requests draw unrelated
// digits while staying a pure function of (seed, i).
func payloadSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Fingerprint hashes a schedule's observable bytes — arrival offsets,
// ops, and every payload row — into a stable 64-bit FNV-1a value. The
// determinism tests pin this, which is what the acceptance criterion
// "byte-deterministic for a fixed seed and trace" means mechanically.
func Fingerprint(schedule []Request) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, req := range schedule {
		putUint64(buf[:8], uint64(req.At))
		buf[8] = byte(req.Op)
		h.Write(buf[:9])
		for _, row := range req.Rows {
			h.Write([]byte(row))
			h.Write([]byte{0})
		}
		h.Write([]byte{0xFF})
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
