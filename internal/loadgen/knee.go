// The saturation-knee finder: a bisection over arrival rate for the
// highest rate whose p99 still meets the SLO. "Where does it saturate?"
// gets a measured number instead of a guess: below the knee the server
// tracks the offered rate with flat percentiles; above it, queueing (or
// admission rejection) dominates and p99 departs the SLO. The probe
// callback owns the actual run, so the finder works identically against
// an httptest server and a spawned daemon.
package loadgen

import "time"

// KneeOptions configure the search.
type KneeOptions struct {
	// TargetP99 is the SLO the knee is measured against.
	TargetP99 time.Duration
	// Lo and Hi bracket the search in arrivals/s. Lo is assumed (and
	// verified) to pass; Hi is expected to fail — if it passes, the
	// server's knee is above the bracket and Hi is returned as a lower
	// bound.
	Lo, Hi float64
	// Iters is the bisection depth; each iteration costs one probe run.
	// 0 selects 6 (bracket resolution Hi-Lo over 64).
	Iters int
	// MaxErrorRate fails a probe even when its p99 passes: an SLO met by
	// erroring most requests is not met. 0 selects 0.01.
	MaxErrorRate float64
}

// KneePoint is one probe of the search.
type KneePoint struct {
	Rate    float64 `json:"rate"`
	P99MS   float64 `json:"p99_ms"`
	Rate429 float64 `json:"rate_429"`
	Errors  float64 `json:"error_rate"`
	Pass    bool    `json:"pass"`
}

// KneeResult is the finished search.
type KneeResult struct {
	TargetP99MS float64 `json:"target_p99_ms"`
	// SaturationRate is the highest probed rate that met the SLO (the
	// bracket's passing edge after bisection).
	SaturationRate float64 `json:"saturation_rate"`
	// BracketLo and BracketHi are the final bisection bracket:
	// saturation lies within [lo, hi].
	BracketLo float64 `json:"bracket_lo"`
	BracketHi float64 `json:"bracket_hi"`
	// Points records every probe in order.
	Points []KneePoint `json:"points"`
}

// FindKnee bisects [opt.Lo, opt.Hi] for the saturation rate. probe runs
// one schedule at the given rate and returns its summary; it is called
// opt.Iters+2 times at most (both endpoints, then the bisection).
func FindKnee(probe func(rate float64) Summary, opt KneeOptions) KneeResult {
	if opt.Iters <= 0 {
		opt.Iters = 6
	}
	if opt.MaxErrorRate == 0 {
		opt.MaxErrorRate = 0.01
	}
	res := KneeResult{TargetP99MS: float64(opt.TargetP99) / float64(time.Millisecond)}
	pass := func(rate float64) bool {
		s := probe(rate)
		ok := s.OK > 0 && s.P99MS <= res.TargetP99MS && s.ErrorRate <= opt.MaxErrorRate
		res.Points = append(res.Points, KneePoint{
			Rate: rate, P99MS: s.P99MS, Rate429: s.Rate429, Errors: s.ErrorRate, Pass: ok,
		})
		return ok
	}

	// Endpoints first: they decide whether the bracket even contains the
	// knee.
	if pass(opt.Hi) {
		// The server is faster than the bracket: Hi is a lower bound.
		res.SaturationRate, res.BracketLo, res.BracketHi = opt.Hi, opt.Hi, opt.Hi
		return res
	}
	if !pass(opt.Lo) {
		// Saturated below the bracket: no passing rate found.
		res.SaturationRate, res.BracketLo, res.BracketHi = 0, 0, opt.Lo
		return res
	}
	lo, hi := opt.Lo, opt.Hi
	for i := 0; i < opt.Iters; i++ {
		mid := (lo + hi) / 2
		if pass(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.SaturationRate, res.BracketLo, res.BracketHi = lo, lo, hi
	return res
}
