// Deterministic trace replay. A trace is a CSV with header
//
//	offset_ms,op,rows
//
// where offset_ms is the arrival offset from the start of the run
// (fractional milliseconds allowed, nondecreasing), op is apply, stream,
// or register, and rows is the request's column size. Replaying a trace
// reproduces the exact request sequence — offsets, ops, and (given the
// same seed) payload bytes — so a saved trace is a regression test for
// the server's latency envelope: same input schedule, comparable output
// percentiles. WriteTrace inverts ReadTrace, so any generated schedule
// can be frozen into a trace file.
package loadgen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"clx/internal/dataset"
)

// TraceRecord is one parsed trace line.
type TraceRecord struct {
	At   time.Duration
	Op   Op
	Rows int
}

// ReadTrace parses the CSV trace format. The header line is required —
// a trace without one is almost always a column-order mistake.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("loadgen: trace header: %w", err)
	}
	if header[0] != "offset_ms" || header[1] != "op" || header[2] != "rows" {
		return nil, fmt.Errorf("loadgen: trace header %v, want offset_ms,op,rows", header)
	}
	var out []TraceRecord
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %w", line, err)
		}
		ms, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("loadgen: trace line %d: offset_ms %q is not a non-negative number", line, rec[0])
		}
		at := time.Duration(ms * float64(time.Millisecond))
		if n := len(out); n > 0 && at < out[n-1].At {
			return nil, fmt.Errorf("loadgen: trace line %d: offset %.3fms decreases", line, ms)
		}
		op, err := ParseOp(rec[1])
		if err != nil {
			return nil, fmt.Errorf("loadgen: trace line %d: %w", line, err)
		}
		rows, err := strconv.Atoi(rec[2])
		if err != nil || rows < 1 {
			return nil, fmt.Errorf("loadgen: trace line %d: rows %q is not a positive integer", line, rec[2])
		}
		out = append(out, TraceRecord{At: at, Op: op, Rows: rows})
	}
}

// WriteTrace renders records in the CSV trace format, header included.
func WriteTrace(w io.Writer, records []TraceRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"offset_ms", "op", "rows"}); err != nil {
		return err
	}
	for _, rec := range records {
		ms := strconv.FormatFloat(float64(rec.At)/float64(time.Millisecond), 'f', -1, 64)
		if err := cw.Write([]string{ms, rec.Op.String(), strconv.Itoa(rec.Rows)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TraceOf freezes a generated schedule into trace records (payload rows
// collapse to their count; replay regenerates them from the seed).
func TraceOf(schedule []Request) []TraceRecord {
	out := make([]TraceRecord, len(schedule))
	for i, req := range schedule {
		out[i] = TraceRecord{At: req.At, Op: req.Op, Rows: len(req.Rows)}
	}
	return out
}

// ScheduleFromTrace materializes a trace into a runnable schedule: the
// trace fixes offsets, ops, and row counts; the seed and format variety
// fix the payload bytes. The same (trace, seed, formats) triple always
// yields the same schedule.
func ScheduleFromTrace(records []TraceRecord, seed int64, formats int) []Request {
	if formats <= 0 {
		formats = 6
	}
	out := make([]Request, len(records))
	for i, rec := range records {
		rows, _ := dataset.Phones(rec.Rows, formats, payloadSeed(seed, i))
		out[i] = Request{At: rec.At, Op: rec.Op, Rows: rows}
	}
	return out
}
