package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("8:2:1")
	if err != nil || m != (Mix{Apply: 8, Stream: 2, Register: 1}) {
		t.Fatalf("ParseMix(8:2:1) = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "1:2", "a:b:c", "0:0:0", "-1:2:3"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestBuildScheduleShape(t *testing.T) {
	sched := BuildSchedule(NewFixedRate(1000, 300), WorkloadOptions{
		Mix:  Mix{Apply: 1, Stream: 1, Register: 1},
		Rows: RowsDist{Min: 5, Max: 40},
		Seed: 11,
	})
	if len(sched) != 300 {
		t.Fatalf("schedule length = %d, want 300", len(sched))
	}
	var ops [3]int
	for i, req := range sched {
		ops[req.Op]++
		if n := len(req.Rows); n < 5 || n > 40 {
			t.Fatalf("request %d rows = %d, outside [5,40]", i, n)
		}
		if i > 0 && req.At < sched[i-1].At {
			t.Fatalf("arrival offsets decrease at %d", i)
		}
	}
	// Every op of an equal-weight mix appears (300 draws, p(miss) ~ 0).
	for op, n := range ops {
		if n == 0 {
			t.Errorf("op %v never drawn in equal-weight mix", Op(op))
		}
	}
}

// TestScheduleDeterminism pins the byte-determinism acceptance criterion:
// a fixed seed (and a fixed trace) must regenerate the exact request
// sequence, fingerprinted over offsets, ops, and payload bytes.
func TestScheduleDeterminism(t *testing.T) {
	opts := WorkloadOptions{Seed: 77}
	a := BuildSchedule(NewPoisson(500, 200, opts.Seed), opts)
	b := BuildSchedule(NewPoisson(500, 200, opts.Seed), opts)
	fpA, fpB := Fingerprint(a), Fingerprint(b)
	if fpA != fpB {
		t.Fatalf("same seed, different fingerprints: %x vs %x", fpA, fpB)
	}
	// Pinned golden: a generator change that silently alters the request
	// sequence must fail here, not in a benchmark diff three PRs later.
	const golden = uint64(0x6608e2047e6ba80c)
	if fpA != golden {
		t.Errorf("schedule fingerprint = %#x, want %#x (seed 77, poisson 500/s x200);\n"+
			"if the generator changed deliberately, update the golden", fpA, golden)
	}
	// First request pinned field by field, so a fingerprint break is
	// debuggable.
	first := a[0]
	if first.Op != OpApply && first.Op != OpStream && first.Op != OpRegister {
		t.Fatalf("first op = %v", first.Op)
	}
	if len(first.Rows) == 0 || !strings.ContainsAny(first.Rows[0], "0123456789") {
		t.Fatalf("first payload rows = %v", first.Rows)
	}
	// Different seed, different bytes.
	c := BuildSchedule(NewPoisson(500, 200, 78), WorkloadOptions{Seed: 78})
	if Fingerprint(c) == fpA {
		t.Error("different seed produced an identical schedule")
	}
}

func TestTraceReplayDeterminism(t *testing.T) {
	records := []TraceRecord{
		{At: 0, Op: OpApply, Rows: 10},
		{At: 3 * time.Millisecond, Op: OpStream, Rows: 25},
		{At: 9 * time.Millisecond, Op: OpRegister, Rows: 4},
	}
	a := ScheduleFromTrace(records, 5, 6)
	b := ScheduleFromTrace(records, 5, 6)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("same trace + seed diverged")
	}
	for i, req := range a {
		if req.At != records[i].At || req.Op != records[i].Op || len(req.Rows) != records[i].Rows {
			t.Fatalf("replayed request %d = {%v %v %d rows}, want trace record %+v",
				i, req.At, req.Op, len(req.Rows), records[i])
		}
	}
	// Payloads differ under a different seed but the shape is trace-fixed.
	c := ScheduleFromTrace(records, 6, 6)
	if Fingerprint(c) == Fingerprint(a) {
		t.Error("different seed produced identical payloads")
	}
	for i := range c {
		if c[i].At != a[i].At || c[i].Op != a[i].Op || len(c[i].Rows) != len(a[i].Rows) {
			t.Fatalf("trace-fixed shape changed with seed at %d", i)
		}
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{OpApply, OpStream, OpRegister} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("delete"); err == nil {
		t.Error("ParseOp accepted unknown op")
	}
}
