// Package loadgen is the open-loop load-generation subsystem: arrival
// processes (Poisson, bursty on/off, fixed-rate, deterministic CSV trace
// replay), workload mixes over the clxd API (register / apply /
// apply-stream with value-length distributions drawn from
// internal/dataset), an open-loop HTTP runner, and the latency/goodput
// summaries clxload persists into BENCH_load.json.
//
// Open loop means arrivals are scheduled by the process alone — a slow
// server does not slow the generator down, it just accumulates in-flight
// requests. That is the property that makes saturation visible: a
// closed-loop client self-throttles and reports a flattering latency
// curve, an open-loop client exposes the queueing cliff. Everything is
// seeded: the same seed, trace, and options produce byte-identical
// request sequences (pinned by TestScheduleDeterminism), so a latency
// regression between two runs is attributable to the server, not the
// generator.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ArrivalProcess yields the arrival offsets of an open-loop schedule:
// each Next call returns the next request's offset from the start of the
// run, nondecreasing, until the process is exhausted.
type ArrivalProcess interface {
	// Next returns the next arrival offset, or ok=false when the process
	// has emitted every arrival.
	Next() (at time.Duration, ok bool)
	// Name identifies the process in reports ("poisson", "bursty", ...).
	Name() string
}

// FixedRate emits n arrivals at exactly rate per second — a deterministic
// uniform spacing, the baseline every stochastic process is compared to.
type FixedRate struct {
	interval time.Duration
	n, i     int
}

// NewFixedRate builds a fixed-rate process with n arrivals at rate/s.
func NewFixedRate(rate float64, n int) *FixedRate {
	if rate <= 0 {
		panic("loadgen: fixed rate must be positive")
	}
	return &FixedRate{interval: time.Duration(float64(time.Second) / rate), n: n}
}

func (f *FixedRate) Next() (time.Duration, bool) {
	if f.i >= f.n {
		return 0, false
	}
	at := time.Duration(f.i) * f.interval
	f.i++
	return at, true
}

func (f *FixedRate) Name() string { return "fixed" }

// Poisson emits n arrivals with exponentially distributed inter-arrival
// times at mean rate per second — the standard open-loop model for
// independent clients.
type Poisson struct {
	rate float64
	r    *rand.Rand
	at   time.Duration
	n, i int
}

// NewPoisson builds a Poisson process with n arrivals at mean rate/s,
// seeded deterministically.
func NewPoisson(rate float64, n int, seed int64) *Poisson {
	if rate <= 0 {
		panic("loadgen: poisson rate must be positive")
	}
	return &Poisson{rate: rate, r: rand.New(rand.NewSource(seed)), n: n}
}

func (p *Poisson) Next() (time.Duration, bool) {
	if p.i >= p.n {
		return 0, false
	}
	p.i++
	// ExpFloat64 has mean 1; scale to mean inter-arrival 1/rate.
	p.at += time.Duration(p.r.ExpFloat64() / p.rate * float64(time.Second))
	return p.at, true
}

func (p *Poisson) Name() string { return "poisson" }

// Bursty is an on/off modulated Poisson process: during an "on" phase
// arrivals come at burstRate, during "off" at baseRate (zero allowed —
// pure silence). This is the process that separates admission policies:
// a semaphore admits the head of every burst then rejects the tail, a
// token bucket banks idle-period credit and absorbs bursts up to its
// burst size.
type Bursty struct {
	base, burst float64
	onDur, off  time.Duration
	r           *rand.Rand
	at          time.Duration
	n, i        int
}

// NewBursty builds an on/off process with n arrivals: burstRate/s during
// on phases of onDur, baseRate/s during off phases of offDur, phases
// alternating from t=0 (on first), seeded deterministically.
func NewBursty(baseRate, burstRate float64, onDur, offDur time.Duration, n int, seed int64) *Bursty {
	if burstRate <= 0 {
		panic("loadgen: burst rate must be positive")
	}
	if baseRate < 0 {
		panic("loadgen: base rate must be non-negative")
	}
	if onDur <= 0 || offDur < 0 {
		panic("loadgen: phase durations must be positive (off may be zero)")
	}
	return &Bursty{base: baseRate, burst: burstRate, onDur: onDur, off: offDur,
		r: rand.New(rand.NewSource(seed)), n: n}
}

// phaseRate returns the rate in force at offset t.
func (b *Bursty) phaseRate(t time.Duration) float64 {
	cycle := b.onDur + b.off
	if cycle <= 0 {
		return b.burst
	}
	if t%cycle < b.onDur {
		return b.burst
	}
	return b.base
}

func (b *Bursty) Next() (time.Duration, bool) {
	if b.i >= b.n {
		return 0, false
	}
	b.i++
	// Draw exponential inter-arrivals against the rate in force at the
	// current offset; a zero off-phase rate skips to the next on phase.
	for {
		rate := b.phaseRate(b.at)
		if rate <= 0 {
			// Silent phase: jump to its end and continue drawing there.
			cycle := b.onDur + b.off
			b.at = (b.at/cycle + 1) * cycle
			continue
		}
		step := time.Duration(b.r.ExpFloat64() / rate * float64(time.Second))
		// If the step crosses a phase boundary, restart the draw at the
		// boundary (memorylessness makes this exact for the exponential).
		boundary := b.nextBoundary(b.at)
		if b.at+step > boundary && b.phaseRate(boundary) != rate {
			b.at = boundary
			continue
		}
		b.at += step
		return b.at, true
	}
}

// nextBoundary returns the first phase boundary strictly after t.
func (b *Bursty) nextBoundary(t time.Duration) time.Duration {
	cycle := b.onDur + b.off
	into := t % cycle
	if into < b.onDur {
		return t - into + b.onDur
	}
	return t - into + cycle
}

func (b *Bursty) Name() string { return "bursty" }

// sliceProcess replays a fixed offset slice — the trace-replay arrival
// process and the building block for tests.
type sliceProcess struct {
	name    string
	offsets []time.Duration
	i       int
}

func (s *sliceProcess) Next() (time.Duration, bool) {
	if s.i >= len(s.offsets) {
		return 0, false
	}
	at := s.offsets[s.i]
	s.i++
	return at, true
}

func (s *sliceProcess) Name() string { return s.name }

// NewOffsets wraps an explicit, nondecreasing offset slice as an arrival
// process. It panics on a decreasing sequence — a trace with time going
// backwards is operator error, not load.
func NewOffsets(name string, offsets []time.Duration) ArrivalProcess {
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			panic(fmt.Sprintf("loadgen: offsets decrease at %d (%v after %v)", i, offsets[i], offsets[i-1]))
		}
	}
	return &sliceProcess{name: name, offsets: offsets}
}

// ProcessFor builds the named arrival process — the factory the clxload
// flags and the bench harness share. Trace replay does not route through
// here (it carries its own offsets and ops; see ScheduleFromTrace).
func ProcessFor(name string, rate float64, n int, seed int64, burst BurstShape) (ArrivalProcess, error) {
	switch name {
	case "fixed":
		return NewFixedRate(rate, n), nil
	case "poisson":
		return NewPoisson(rate, n, seed), nil
	case "bursty":
		sh := burst
		if sh.OnDur <= 0 {
			sh = DefaultBurstShape(rate)
		}
		return NewBursty(sh.BaseRate, sh.BurstRate, sh.OnDur, sh.OffDur, n, seed), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want fixed, poisson, or bursty)", name)
	}
}

// BurstShape parameterizes the bursty process.
type BurstShape struct {
	BaseRate  float64
	BurstRate float64
	OnDur     time.Duration
	OffDur    time.Duration
}

// DefaultBurstShape derives an on/off shape whose long-run mean is the
// given rate: 4× the mean during on phases, 250ms on / 750ms off, so a
// "bursty at R" run is comparable to a "poisson at R" run.
func DefaultBurstShape(meanRate float64) BurstShape {
	return BurstShape{
		BaseRate:  0,
		BurstRate: 4 * meanRate,
		OnDur:     250 * time.Millisecond,
		OffDur:    750 * time.Millisecond,
	}
}

// MeanRate reports the long-run arrival rate of the shape.
func (s BurstShape) MeanRate() float64 {
	cycle := (s.OnDur + s.OffDur).Seconds()
	if cycle == 0 {
		return s.BurstRate
	}
	return (s.BurstRate*s.OnDur.Seconds() + s.BaseRate*s.OffDur.Seconds()) / cycle
}

// arrivalsFor sizes a schedule: the expected arrival count of rate/s
// over the duration, at least 1.
func arrivalsFor(rate float64, d time.Duration) int {
	n := int(math.Round(rate * d.Seconds()))
	if n < 1 {
		n = 1
	}
	return n
}
