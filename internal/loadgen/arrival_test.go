package loadgen

import (
	"math"
	"testing"
	"time"
)

func drain(p ArrivalProcess) []time.Duration {
	var out []time.Duration
	for {
		at, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, at)
	}
}

func TestFixedRateSpacing(t *testing.T) {
	offs := drain(NewFixedRate(100, 5))
	if len(offs) != 5 {
		t.Fatalf("arrivals = %d, want 5", len(offs))
	}
	for i, at := range offs {
		want := time.Duration(i) * 10 * time.Millisecond
		if at != want {
			t.Errorf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestPoissonDeterministicAndCalibrated(t *testing.T) {
	a := drain(NewPoisson(1000, 5000, 42))
	b := drain(NewPoisson(1000, 5000, 42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := drain(NewPoisson(1000, 5000, 43))
	if a[100] == c[100] && a[2000] == c[2000] {
		t.Error("different seeds produced identical offsets")
	}
	// Nondecreasing, and the empirical rate is within 5% of nominal over
	// 5000 draws.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("offsets decrease at %d", i)
		}
	}
	got := float64(len(a)) / a[len(a)-1].Seconds()
	if math.Abs(got-1000)/1000 > 0.05 {
		t.Errorf("empirical rate %.1f/s, want ~1000/s", got)
	}
}

func TestBurstyPhases(t *testing.T) {
	// 100ms on at 2000/s, 100ms off at 0/s: every arrival must land in an
	// on phase, and the long-run mean must be ~half the burst rate.
	p := NewBursty(0, 2000, 100*time.Millisecond, 100*time.Millisecond, 2000, 7)
	offs := drain(p)
	if len(offs) != 2000 {
		t.Fatalf("arrivals = %d, want 2000", len(offs))
	}
	cycle := 200 * time.Millisecond
	for i, at := range offs {
		if at%cycle >= 100*time.Millisecond {
			t.Fatalf("arrival %d at %v falls in a silent off phase", i, at)
		}
		if i > 0 && at < offs[i-1] {
			t.Fatalf("offsets decrease at %d", i)
		}
	}
	mean := float64(len(offs)) / offs[len(offs)-1].Seconds()
	if math.Abs(mean-1000)/1000 > 0.10 {
		t.Errorf("long-run rate %.1f/s, want ~1000/s (2000/s at 50%% duty)", mean)
	}
	// Determinism.
	again := drain(NewBursty(0, 2000, 100*time.Millisecond, 100*time.Millisecond, 2000, 7))
	for i := range offs {
		if offs[i] != again[i] {
			t.Fatalf("same seed diverges at arrival %d", i)
		}
	}
}

func TestBurstyNonzeroBase(t *testing.T) {
	// With a nonzero off rate both phases carry arrivals.
	p := NewBursty(100, 4000, 50*time.Millisecond, 150*time.Millisecond, 3000, 9)
	offs := drain(p)
	var on, off int
	cycle := 200 * time.Millisecond
	for _, at := range offs {
		if at%cycle < 50*time.Millisecond {
			on++
		} else {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("on=%d off=%d, want arrivals in both phases", on, off)
	}
	if on < off {
		t.Errorf("on=%d < off=%d despite 40x phase rate", on, off)
	}
}

func TestBurstShapeMeanRate(t *testing.T) {
	sh := DefaultBurstShape(400)
	if got := sh.MeanRate(); math.Abs(got-400) > 1e-9 {
		t.Errorf("DefaultBurstShape(400).MeanRate() = %v, want 400", got)
	}
}

func TestNewOffsetsRejectsDecreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on decreasing offsets")
		}
	}()
	NewOffsets("bad", []time.Duration{time.Second, 0})
}

func TestProcessForFactory(t *testing.T) {
	for _, name := range []string{"fixed", "poisson", "bursty"} {
		p, err := ProcessFor(name, 100, 10, 1, BurstShape{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ProcessFor(%q).Name() = %q", name, p.Name())
		}
		if offs := drain(p); len(offs) != 10 {
			t.Errorf("%s: arrivals = %d, want 10", name, len(offs))
		}
	}
	if _, err := ProcessFor("warp", 100, 10, 1, BurstShape{}); err == nil {
		t.Error("unknown process name did not error")
	}
}
