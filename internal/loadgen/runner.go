// The open-loop runner: fires a schedule at a live clxd over HTTP. The
// dispatch loop sleeps until each request's arrival offset and launches
// it in its own goroutine regardless of how many are still in flight —
// the generator never waits for the server, which is the property that
// exposes saturation instead of hiding it. Per-request outcomes land in
// a preallocated sample slice (one writer per index, no locks on the
// hot path) and are summarized after the run.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Target is the clxd instance a run drives.
type Target struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// ProgramID is the registered program apply/stream requests hit.
	ProgramID string
	// TargetPattern is the synthesis target register requests carry
	// (compact or NL notation). Empty selects the §7.2 phone target.
	TargetPattern string
	// Client is the HTTP client; nil selects a pooled default sized for
	// open-loop concurrency.
	Client *http.Client
}

// DefaultTargetPattern is the §7.2 study target.
const DefaultTargetPattern = "<D>3'-'<D>3'-'<D>4"

// NewClient builds the default load-test client: connection pooling
// sized so an open-loop burst does not serialize on idle-conn limits,
// and a per-request timeout that bounds tail samples without masking
// multi-second queueing.
func NewClient(timeout time.Duration) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	return &http.Client{Transport: tr, Timeout: timeout}
}

// Sample is one request's outcome.
type Sample struct {
	// Op and At echo the scheduled request.
	Op Op
	At time.Duration
	// Rows is the payload column size.
	Rows int
	// Latency is request issue to full response drain.
	Latency time.Duration
	// Status is the HTTP status, 0 on a transport error.
	Status int
	// OK means the request fully succeeded: 200/201 and, for streams, a
	// done trailer.
	OK bool
	// Err carries the transport error or protocol diagnosis when !OK.
	Err string
}

// RunResult is a completed run: every sample plus the wall time the
// schedule actually took (dispatch start to last response).
type RunResult struct {
	Samples []Sample
	Wall    time.Duration
}

// Run fires the schedule open-loop against the target and blocks until
// every response is in (or ctx is cancelled — in-flight requests are
// abandoned and recorded as transport errors). The returned error covers
// only setup problems; per-request failures are samples.
func Run(ctx context.Context, tgt Target, schedule []Request) (RunResult, error) {
	if tgt.BaseURL == "" {
		return RunResult{}, fmt.Errorf("loadgen: target BaseURL is empty")
	}
	if tgt.Client == nil {
		tgt.Client = NewClient(30 * time.Second)
	}
	if tgt.TargetPattern == "" {
		tgt.TargetPattern = DefaultTargetPattern
	}
	samples := make([]Sample, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
dispatch:
	for i, req := range schedule {
		if wait := req.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				// Mark the undispatched tail as cancelled and stop dispatching.
				for j := i; j < len(schedule); j++ {
					samples[j] = Sample{Op: schedule[j].Op, At: schedule[j].At,
						Rows: len(schedule[j].Rows), Err: "cancelled before dispatch"}
				}
				break dispatch
			}
		}
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			samples[i] = fire(ctx, tgt, req)
		}(i, req)
	}
	wg.Wait()
	return RunResult{Samples: samples, Wall: time.Since(start)}, nil
}

// fire issues one request and fully drains the response.
func fire(ctx context.Context, tgt Target, req Request) Sample {
	s := Sample{Op: req.Op, At: req.At, Rows: len(req.Rows)}
	var (
		url  string
		body io.Reader
	)
	switch req.Op {
	case OpApply:
		b, _ := json.Marshal(struct {
			Rows []string `json:"rows"`
		}{req.Rows})
		url = tgt.BaseURL + "/v1/programs/" + tgt.ProgramID + "/apply"
		body = bytes.NewReader(b)
	case OpStream:
		url = tgt.BaseURL + "/v1/programs/" + tgt.ProgramID + "/apply/stream"
		body = strings.NewReader(strings.Join(req.Rows, "\n") + "\n")
	case OpRegister:
		b, _ := json.Marshal(struct {
			Rows   []string `json:"rows"`
			Target string   `json:"target"`
			Name   string   `json:"name"`
		}{req.Rows, tgt.TargetPattern, "loadgen"})
		url = tgt.BaseURL + "/v1/programs"
		body = bytes.NewReader(b)
	default:
		s.Err = fmt.Sprintf("unknown op %d", req.Op)
		return s
	}

	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, body)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	httpReq.Header.Set("Content-Type", contentTypeFor(req.Op))
	t0 := time.Now()
	resp, err := tgt.Client.Do(httpReq)
	if err != nil {
		s.Latency = time.Since(t0)
		s.Err = err.Error()
		return s
	}
	respBody, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	s.Latency = time.Since(t0)
	s.Status = resp.StatusCode
	if readErr != nil {
		s.Err = readErr.Error()
		return s
	}
	switch req.Op {
	case OpStream:
		if resp.StatusCode == http.StatusOK {
			if streamDone(respBody) {
				s.OK = true
			} else {
				s.Err = "stream ended without done trailer"
			}
		} else if resp.StatusCode != http.StatusTooManyRequests {
			s.Err = fmt.Sprintf("status %d", resp.StatusCode)
		}
	case OpRegister:
		if resp.StatusCode == http.StatusCreated {
			s.OK = true
		} else {
			s.Err = fmt.Sprintf("status %d", resp.StatusCode)
		}
	default:
		if resp.StatusCode == http.StatusOK {
			s.OK = true
		} else if resp.StatusCode != http.StatusTooManyRequests {
			s.Err = fmt.Sprintf("status %d", resp.StatusCode)
		}
	}
	return s
}

func contentTypeFor(op Op) string {
	if op == OpStream {
		return "text/plain"
	}
	return "application/json"
}

// streamDone reports whether the NDJSON stream body ends in a done
// trailer frame.
func streamDone(body []byte) bool {
	body = bytes.TrimRight(body, "\n")
	i := bytes.LastIndexByte(body, '\n')
	last := body[i+1:]
	var trailer struct {
		Done bool `json:"done"`
	}
	return json.Unmarshal(last, &trailer) == nil && trailer.Done
}

// RegisterSeedProgram registers the standard phone program the apply and
// stream ops of a run need, returning its id. Runs share one program:
// the hot path under test is apply-by-id, not synthesis.
func RegisterSeedProgram(tgt Target, rows []string) (string, error) {
	if tgt.Client == nil {
		tgt.Client = NewClient(30 * time.Second)
	}
	if tgt.TargetPattern == "" {
		tgt.TargetPattern = DefaultTargetPattern
	}
	b, _ := json.Marshal(struct {
		Rows   []string `json:"rows"`
		Target string   `json:"target"`
		Name   string   `json:"name"`
	}{rows, tgt.TargetPattern, "loadgen-seed"})
	resp, err := tgt.Client.Post(tgt.BaseURL+"/v1/programs", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("loadgen: seed register status %d: %s", resp.StatusCode, raw)
	}
	var entry struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &entry); err != nil {
		return "", err
	}
	if entry.ID == "" {
		return "", fmt.Errorf("loadgen: seed register returned no id")
	}
	return entry.ID, nil
}
