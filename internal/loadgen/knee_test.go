package loadgen

import (
	"testing"
	"time"
)

// stepServer simulates a server that meets a 50ms p99 up to capacity and
// falls off a queueing cliff above it.
func stepServer(capacity float64) func(rate float64) Summary {
	return func(rate float64) Summary {
		s := Summary{OfferedRate: rate, Arrivals: 100, OK: 100}
		if rate <= capacity {
			s.P99MS = 20
		} else {
			s.P99MS = 500
		}
		return s
	}
}

func TestFindKneeBisects(t *testing.T) {
	probes := 0
	probe := func(rate float64) Summary {
		probes++
		return stepServer(700)(rate)
	}
	res := FindKnee(probe, KneeOptions{
		TargetP99: 50 * time.Millisecond, Lo: 100, Hi: 1600, Iters: 8,
	})
	if res.SaturationRate < 690 || res.SaturationRate > 700 {
		t.Errorf("saturation = %v, want within (690, 700]", res.SaturationRate)
	}
	if res.BracketLo > 700 || res.BracketHi < 700 {
		t.Errorf("final bracket [%v, %v] does not contain the knee", res.BracketLo, res.BracketHi)
	}
	if probes != 10 { // 2 endpoints + 8 bisections
		t.Errorf("probes = %d, want 10", probes)
	}
	if len(res.Points) != probes {
		t.Errorf("recorded points = %d, want %d", len(res.Points), probes)
	}
}

func TestFindKneeBracketTooLow(t *testing.T) {
	// Capacity above Hi: the search reports Hi as a lower bound.
	res := FindKnee(stepServer(5000), KneeOptions{
		TargetP99: 50 * time.Millisecond, Lo: 100, Hi: 1000, Iters: 4,
	})
	if res.SaturationRate != 1000 {
		t.Errorf("saturation = %v, want Hi=1000 as lower bound", res.SaturationRate)
	}
}

func TestFindKneeBracketTooHigh(t *testing.T) {
	// Capacity below Lo: no passing rate.
	res := FindKnee(stepServer(50), KneeOptions{
		TargetP99: 50 * time.Millisecond, Lo: 100, Hi: 1000, Iters: 4,
	})
	if res.SaturationRate != 0 {
		t.Errorf("saturation = %v, want 0 (below bracket)", res.SaturationRate)
	}
}

func TestFindKneeErrorRateFailsProbe(t *testing.T) {
	// p99 passes but errors exceed the cap above capacity 300 — the knee
	// must respect MaxErrorRate, not latency alone.
	probe := func(rate float64) Summary {
		s := Summary{Arrivals: 100, OK: 100, P99MS: 10}
		if rate > 300 {
			s.ErrorRate = 0.5
		}
		return s
	}
	res := FindKnee(probe, KneeOptions{
		TargetP99: 50 * time.Millisecond, Lo: 100, Hi: 1600, Iters: 8, MaxErrorRate: 0.01,
	})
	if res.SaturationRate < 290 || res.SaturationRate > 300 {
		t.Errorf("saturation = %v, want within (290, 300]", res.SaturationRate)
	}
}
