package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestSummarizePartitionsAndPercentiles(t *testing.T) {
	// 100 samples: 90 OK applies at 1..90ms (10 rows each), 6 rejected
	// streams, 4 transport errors.
	res := RunResult{Wall: 2 * time.Second}
	for i := 1; i <= 90; i++ {
		res.Samples = append(res.Samples, Sample{
			Op: OpApply, Rows: 10, Latency: time.Duration(i) * time.Millisecond,
			Status: 200, OK: true,
		})
	}
	for i := 0; i < 6; i++ {
		res.Samples = append(res.Samples, Sample{Op: OpStream, Rows: 10, Status: 429})
	}
	for i := 0; i < 4; i++ {
		res.Samples = append(res.Samples, Sample{Op: OpApply, Rows: 10, Err: "conn refused"})
	}
	s := Summarize(res)
	if s.Arrivals != 100 || s.OK != 90 || s.Rejected != 6 || s.Errors != 4 {
		t.Fatalf("partition = %d/%d/%d of %d", s.OK, s.Rejected, s.Errors, s.Arrivals)
	}
	// Nearest-rank over 1..90ms: p50 = 45ms, p95 = 86ms, p99 = 89ms.
	if s.P50MS != 45 || s.P95MS != 86 || s.P99MS != 89 || s.MaxMS != 90 {
		t.Errorf("percentiles p50=%v p95=%v p99=%v max=%v", s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	}
	// Goodput: 90 × 10 rows over 2s wall.
	if s.GoodputRowsPerSec != 450 {
		t.Errorf("goodput = %v rows/s, want 450", s.GoodputRowsPerSec)
	}
	if math.Abs(s.Rate429-0.06) > 1e-9 || math.Abs(s.ErrorRate-0.04) > 1e-9 {
		t.Errorf("rate429 = %v, errorRate = %v", s.Rate429, s.ErrorRate)
	}
	if s.AchievedRate != 50 {
		t.Errorf("achieved rate = %v, want 50/s", s.AchievedRate)
	}
}

func TestSummarizeRegisterRowsExcludedFromGoodput(t *testing.T) {
	res := RunResult{Wall: time.Second, Samples: []Sample{
		{Op: OpRegister, Rows: 100, Status: 201, OK: true, Latency: time.Millisecond},
		{Op: OpApply, Rows: 30, Status: 200, OK: true, Latency: time.Millisecond},
	}}
	if s := Summarize(res); s.GoodputRowsPerSec != 30 {
		t.Errorf("goodput = %v rows/s, want 30 (register rows are not output)", s.GoodputRowsPerSec)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(RunResult{})
	if s.Arrivals != 0 || s.P99MS != 0 || s.GoodputRowsPerSec != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestMedianByP99(t *testing.T) {
	runs := []Summary{{P99MS: 30}, {P99MS: 500}, {P99MS: 40}}
	if got := MedianByP99(runs); got.P99MS != 40 {
		t.Errorf("median p99 = %v, want 40", got.P99MS)
	}
	if got := MedianByP99(nil); got != (Summary{}) {
		t.Errorf("median of none = %+v", got)
	}
}

func TestQuantileEdges(t *testing.T) {
	one := []time.Duration{7 * time.Millisecond}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := quantile(one, q); got != 7*time.Millisecond {
			t.Errorf("quantile(1 sample, %v) = %v", q, got)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v", got)
	}
}
