// Run summaries: the per-rate numbers BENCH_load.json persists. All
// percentiles are exact (sort + nearest-rank) over the successful
// samples — at load-test sample counts there is no reason to
// approximate — and goodput counts only rows that came back transformed,
// so a run that 429s half its arrivals reports the throughput the
// clients actually got, not the throughput they asked for.
package loadgen

import (
	"sort"
	"time"
)

// Summary aggregates one run.
type Summary struct {
	// Process and OfferedRate describe the schedule (rate in arrivals/s).
	Process     string  `json:"process"`
	OfferedRate float64 `json:"offered_rate"`
	// Arrivals is the schedule length; AchievedRate is arrivals over the
	// measured wall time (dispatch jitter makes it differ slightly from
	// the offered rate).
	Arrivals     int     `json:"arrivals"`
	AchievedRate float64 `json:"achieved_rate"`
	DurationS    float64 `json:"duration_s"`
	// OK / Rejected / Errors partition the samples: 2xx-and-complete,
	// 429, everything else (transport errors, 5xx, broken streams).
	OK       int `json:"ok"`
	Rejected int `json:"rejected_429"`
	Errors   int `json:"errors"`
	// Latency percentiles over successful requests, in milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
	// GoodputRowsPerSec is transformed rows per second of wall time
	// (apply + stream rows on successful requests; register rows are
	// synthesis input, not transformation output).
	GoodputRowsPerSec float64 `json:"goodput_rows_per_sec"`
	// Rate429 and ErrorRate are fractions of arrivals.
	Rate429   float64 `json:"rate_429"`
	ErrorRate float64 `json:"error_rate"`
}

// Summarize reduces a run to its summary. Process and OfferedRate are
// the caller's to fill (the result does not know its schedule's shape).
func Summarize(res RunResult) Summary {
	s := Summary{
		Arrivals:  len(res.Samples),
		DurationS: res.Wall.Seconds(),
	}
	if res.Wall > 0 {
		s.AchievedRate = float64(len(res.Samples)) / res.Wall.Seconds()
	}
	var okLat []time.Duration
	var latSum time.Duration
	var goodRows int
	for _, sm := range res.Samples {
		switch {
		case sm.OK:
			s.OK++
			okLat = append(okLat, sm.Latency)
			latSum += sm.Latency
			if sm.Op == OpApply || sm.Op == OpStream {
				goodRows += sm.Rows
			}
		case sm.Status == 429:
			s.Rejected++
		default:
			s.Errors++
		}
	}
	if n := len(res.Samples); n > 0 {
		s.Rate429 = float64(s.Rejected) / float64(n)
		s.ErrorRate = float64(s.Errors) / float64(n)
	}
	if res.Wall > 0 {
		s.GoodputRowsPerSec = float64(goodRows) / res.Wall.Seconds()
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		s.P50MS = ms(quantile(okLat, 0.50))
		s.P95MS = ms(quantile(okLat, 0.95))
		s.P99MS = ms(quantile(okLat, 0.99))
		s.MaxMS = ms(okLat[len(okLat)-1])
		s.MeanMS = ms(latSum / time.Duration(len(okLat)))
	}
	return s
}

// quantile is the nearest-rank quantile of an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// MedianByP99 picks the median summary of reps by p99 latency — the
// repo's median-of-N discipline applied to whole runs, so one noisy rep
// does not write the report.
func MedianByP99(runs []Summary) Summary {
	if len(runs) == 0 {
		return Summary{}
	}
	sorted := append([]Summary(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P99MS < sorted[j].P99MS })
	return sorted[len(sorted)/2]
}
