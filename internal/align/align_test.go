package align

import (
	"reflect"
	"testing"

	"clx/internal/pattern"
	"clx/internal/unifi"
)

// Paper Example 8 / Figure 9: source [<D>3,'.',<D>3,'.',<D>4], target
// ['(',<D>3,')',' ',<D>3,'-',<D>4].
func TestAlignFigure9(t *testing.T) {
	src := pattern.MustParse("<D>3'.'<D>3'.'<D>4")
	tgt := pattern.MustParse("'('<D>3')'' '<D>3'-'<D>4")
	d := Align(tgt, src)
	if d.N != 7 {
		t.Fatalf("N = %d, want 7", d.N)
	}
	wantEdges := map[Edge][]unifi.Op{
		{0, 1}: {unifi.ConstStr{S: "("}},
		{1, 2}: {unifi.Extract{I: 1, J: 1}, unifi.Extract{I: 3, J: 3}},
		{2, 3}: {unifi.ConstStr{S: ")"}},
		{3, 4}: {unifi.ConstStr{S: " "}},
		{4, 5}: {unifi.Extract{I: 1, J: 1}, unifi.Extract{I: 3, J: 3}},
		{5, 6}: {unifi.ConstStr{S: "-"}},
		{6, 7}: {unifi.Extract{I: 5, J: 5}},
	}
	if len(d.Ops) != len(wantEdges) {
		t.Errorf("edges = %v, want %d edges", d.Edges(), len(wantEdges))
	}
	for e, want := range wantEdges {
		if got := d.Ops[e]; !reflect.DeepEqual(got, want) {
			t.Errorf("Ops[%v] = %v, want %v", e, got, want)
		}
	}
	if !d.Complete() {
		t.Error("DAG should be complete")
	}
}

// Figure 10: combining Extract(1) and Extract(2) into Extract(1,2).
func TestCombineSequentialExtracts(t *testing.T) {
	src := pattern.MustParse("<U><D>+")
	tgt := pattern.MustParse("<U><D>+")
	d := Align(tgt, src)
	got := d.Ops[Edge{0, 2}]
	want := []unifi.Op{unifi.Extract{I: 1, J: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("combined edge ops = %v, want %v", got, want)
	}
}

// Paper Example 9 setup: combining must discover Extract(1,3) spanning the
// literal '/' in the source.
func TestCombineAcrossLiterals(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2'/'<D>4")
	tgt := pattern.MustParse("<D>2'/'<D>2")
	d := Align(tgt, src)
	found := false
	for _, op := range d.Ops[Edge{0, 3}] {
		if op == (unifi.Extract{I: 1, J: 3}) {
			found = true
		}
	}
	if !found {
		t.Errorf("Extract(1,3) not discovered; edge (0,3) ops = %v", d.Ops[Edge{0, 3}])
	}
	// Extract(3,5) ending at the final <D>4... is NOT valid for this target
	// (target token 3 is <D>2, source token 5 is <D>4 — not similar), so
	// the only other (0,3) paths go through shorter combinations.
	for _, op := range d.Ops[Edge{0, 3}] {
		if e, ok := op.(unifi.Extract); ok && e.J > 4 {
			t.Errorf("invalid combined extract %v", e)
		}
	}
}

// Longer chains: combining is complete for arbitrary-length sequential
// extracts (Appendix A), here Extract(1,5).
func TestCombineLongChain(t *testing.T) {
	src := pattern.MustParse("<U>+'-'<D>+'-'<L>+")
	tgt := pattern.MustParse("<U>+'-'<D>+'-'<L>+")
	d := Align(tgt, src)
	found := false
	for _, op := range d.Ops[Edge{0, 5}] {
		if op == (unifi.Extract{I: 1, J: 5}) {
			found = true
		}
	}
	if !found {
		t.Errorf("Extract(1,5) not discovered; ops = %v", d.Ops[Edge{0, 5}])
	}
}

func TestPlusQuantifierProduction(t *testing.T) {
	// <U>3 in source aligns to a <U>+ target: any exact count matches '+'.
	d := Align(pattern.MustParse("<U>+"), pattern.MustParse("<U>3"))
	if got := d.Ops[Edge{0, 1}]; len(got) != 1 {
		t.Errorf("ops = %v, want one Extract", got)
	}
	// The reverse is rejected for soundness: a '+' source span of unknown
	// length cannot be guaranteed to satisfy an exact <U>3 target (see
	// token.CanProduce; Def 6.1's symmetric rule is unsound here).
	d = Align(pattern.MustParse("<U>3"), pattern.MustParse("<U>+"))
	if d.Complete() {
		t.Error("'+' source must not produce an exact-count target")
	}
	// <U>3 vs <U>4: not similar; target is literal-free so DAG incomplete.
	d = Align(pattern.MustParse("<U>3"), pattern.MustParse("<U>4"))
	if d.Complete() {
		t.Error("mismatched quantifiers should leave DAG incomplete")
	}
}

func TestIncompleteWhenNoSource(t *testing.T) {
	// Target needs digits; source has none and target token is not literal.
	d := Align(pattern.MustParse("<D>3"), pattern.MustParse("<U>3"))
	if d.Complete() {
		t.Error("DAG should be incomplete")
	}
	if len(d.Ops) != 0 {
		t.Errorf("ops = %v, want none", d.Ops)
	}
}

func TestEmptyTarget(t *testing.T) {
	d := Align(pattern.Pattern{}, pattern.MustParse("<D>3"))
	if !d.Complete() || d.N != 0 {
		t.Error("empty target should be trivially complete")
	}
}

// Soundness (Theorem A.1): every operator on edge (i-1, i+k) generates
// exactly target tokens i..i+k when evaluated — verified by applying
// single-edge plans to a concrete matching string.
func TestAlignmentSoundness(t *testing.T) {
	src := pattern.MustParse("<D>2'/'<D>2'/'<D>4")
	tgt := pattern.MustParse("<D>4'-'<D>2'-'<D>2")
	input := "31/12/2019"
	spansWant := map[Edge][]string{} // filled per op below
	_ = spansWant
	d := Align(tgt, src)
	srcSpans, ok := src.Match(input)
	if !ok {
		t.Fatal("input does not match source")
	}
	for e, ops := range d.Ops {
		for _, op := range ops {
			var produced string
			switch op := op.(type) {
			case unifi.ConstStr:
				produced = op.S
			case unifi.Extract:
				produced = input[srcSpans[op.I-1].Start:srcSpans[op.J-1].End]
			}
			// The produced fragment must match the sub-pattern of target
			// tokens e.From..e.To-1.
			sub := pattern.Of(tgt.Tokens()[e.From:e.To]...)
			if !sub.Matches(produced) {
				t.Errorf("edge %v op %v produced %q which does not match %s",
					e, op, produced, sub)
			}
		}
	}
}
