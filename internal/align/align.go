// Package align implements the token alignment algorithm of paper §6.2
// (Algorithm 3): it discovers, for a candidate source pattern and a target
// pattern, every ConstStr and Extract operation that can produce each token
// of the target, and stores them as edges of a directed acyclic graph whose
// nodes are positions in the target pattern. Sequential extracts are
// combined as in Figure 10, making the construction complete (Appendix A).
package align

import (
	"sort"

	"clx/internal/pattern"
	"clx/internal/token"
	"clx/internal/unifi"
)

// Edge identifies a DAG edge from node From to node To (positions in the
// target pattern, 0..len(target)).
type Edge struct {
	From, To int
}

// DAG is the token alignment result: Ops[e] lists the UniFi operators that
// generate target tokens From+1..To (1-based) of the target pattern.
type DAG struct {
	// N is the number of target tokens; nodes are 0..N with source node 0
	// and target node N.
	N int
	// Ops maps each edge to its candidate operators, deduplicated, in
	// deterministic order.
	Ops map[Edge][]unifi.Op
}

// Align runs Algorithm 3 on the target pattern T and candidate source
// pattern Pcand.
func Align(target, source pattern.Pattern) *DAG {
	return align(target, source, true)
}

// AlignSingle runs only the individual-token phase of Algorithm 3 (lines
// 2–9), without combining sequential extracts. It exists for the ablation
// benchmark measuring the value of the combining step (Figure 10).
func AlignSingle(target, source pattern.Pattern) *DAG {
	return align(target, source, false)
}

func align(target, source pattern.Pattern, combine bool) *DAG {
	m := target.Len()
	d := &DAG{N: m, Ops: make(map[Edge][]unifi.Op)}
	seen := make(map[Edge]map[unifi.Op]bool)
	add := func(e Edge, op unifi.Op) {
		if seen[e] == nil {
			seen[e] = make(map[unifi.Op]bool)
		}
		if seen[e][op] {
			return
		}
		seen[e][op] = true
		d.Ops[e] = append(d.Ops[e], op)
	}

	// Lines 2–9: align individual tokens.
	for i := 0; i < m; i++ {
		ti := target.At(i)
		e := Edge{i, i + 1}
		for j := 0; j < source.Len(); j++ {
			if token.CanProduce(source.At(j), ti) {
				add(e, unifi.Extract{I: j + 1, J: j + 1})
			}
		}
		if ti.IsLiteral() && ti.Quant != token.Plus {
			add(e, unifi.ConstStr{S: ti.Expand()})
		}
	}

	if !combine {
		return d
	}
	// Lines 10–17: combine sequential extracts. Processing the join node i
	// in ascending order lets previously combined incoming edges grow
	// further, which yields every Extract(p,q) (Appendix A completeness).
	for i := 1; i < m; i++ {
		var incoming []Edge
		for e := range d.Ops {
			if e.To == i {
				incoming = append(incoming, e)
			}
		}
		sort.Slice(incoming, func(a, b int) bool { return incoming[a].From < incoming[b].From })
		out := Edge{i, i + 1}
		outOps := d.Ops[out]
		for _, in := range incoming {
			for _, po := range d.Ops[in] {
				ep, ok := po.(unifi.Extract)
				if !ok {
					continue
				}
				for _, qo := range outOps {
					eq, ok := qo.(unifi.Extract)
					if !ok {
						continue
					}
					if ep.J+1 == eq.I {
						add(Edge{in.From, i + 1}, unifi.Extract{I: ep.I, J: eq.J})
					}
				}
			}
		}
	}
	return d
}

// Complete reports whether every node 1..N is reachable, i.e. at least one
// full transformation plan exists.
func (d *DAG) Complete() bool {
	if d.N == 0 {
		return true
	}
	reach := make([]bool, d.N+1)
	reach[0] = true
	for i := 0; i <= d.N; i++ {
		if !reach[i] {
			continue
		}
		for e := range d.Ops {
			if e.From == i {
				reach[e.To] = true
			}
		}
	}
	return reach[d.N]
}

// Edges returns the DAG's edges sorted by (From, To), for deterministic
// iteration.
func (d *DAG) Edges() []Edge {
	es := make([]Edge, 0, len(d.Ops))
	for e := range d.Ops {
		es = append(es, e)
	}
	sort.Slice(es, func(a, b int) bool {
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		return es[a].To < es[b].To
	})
	return es
}
