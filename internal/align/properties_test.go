package align

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clx/internal/pattern"
	"clx/internal/token"
	"clx/internal/unifi"
)

// randPattern generates a small random pattern over base tokens and
// punctuation literals.
func randPattern(r *rand.Rand, maxTokens int) pattern.Pattern {
	classes := []token.Class{token.Digit, token.Lower, token.Upper}
	puncts := []string{"-", ".", " ", "/", ":"}
	n := 1 + r.Intn(maxTokens)
	var toks []token.Token
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			toks = append(toks, token.Lit(puncts[r.Intn(len(puncts))]))
			continue
		}
		q := 1 + r.Intn(4)
		if r.Intn(4) == 0 {
			q = token.Plus
		}
		t := token.Base(classes[r.Intn(len(classes))], q)
		// Avoid adjacent same-class base tokens (the tokenizer never
		// produces them and matching could split runs arbitrarily).
		if len(toks) > 0 && !toks[len(toks)-1].IsLiteral() &&
			toks[len(toks)-1].Class == t.Class {
			toks = append(toks, token.Lit("-"))
		}
		toks = append(toks, t)
	}
	return pattern.Of(toks...)
}

// instantiate produces a concrete string matching p.
func instantiate(r *rand.Rand, p pattern.Pattern) string {
	out := ""
	for _, t := range p.Tokens() {
		n := t.Quant
		if n == token.Plus {
			n = 1 + r.Intn(3)
		}
		if t.IsLiteral() {
			for i := 0; i < n; i++ {
				out += t.Lit
			}
			continue
		}
		const digits = "0123456789"
		const lower = "abcdefghij"
		const upper = "KLMNOPQRST"
		for i := 0; i < n; i++ {
			switch t.Class {
			case token.Digit:
				out += string(digits[r.Intn(10)])
			case token.Lower:
				out += string(lower[r.Intn(10)])
			default:
				out += string(upper[r.Intn(10)])
			}
		}
	}
	return out
}

// Completeness (Theorem A.2, under the sound CanProduce rule): when every
// target token has at least one producer, the DAG admits a full plan — and
// identity alignment (target == source) always does.
func TestIdentityAlignmentComplete(t *testing.T) {
	gen := func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(randPattern(r, 6))
	}
	f := func(p pattern.Pattern) bool {
		d := Align(p, p)
		if !d.Complete() {
			return false
		}
		// The identity plan Extract(1..n) exists on the full edge.
		for _, op := range d.Ops[Edge{0, p.Len()}] {
			if op == (unifi.Extract{I: 1, J: p.Len()}) {
				return true
			}
		}
		return p.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: gen}); err != nil {
		t.Error(err)
	}
}

// Soundness over random pairs: every operator on every edge produces a
// fragment matching the corresponding target sub-pattern, for a concrete
// matching subject.
func TestRandomAlignmentSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		src := randPattern(r, 6)
		tgt := randPattern(r, 4)
		subject := instantiate(r, src)
		spans, ok := src.Match(subject)
		if !ok {
			t.Fatalf("instantiate(%s) = %q does not match", src, subject)
		}
		d := Align(tgt, src)
		for e, ops := range d.Ops {
			sub := pattern.Of(tgt.Tokens()[e.From:e.To]...)
			for _, op := range ops {
				var produced string
				switch op := op.(type) {
				case unifi.ConstStr:
					produced = op.S
				case unifi.Extract:
					produced = subject[spans[op.I-1].Start:spans[op.J-1].End]
				}
				if !sub.Matches(produced) {
					t.Fatalf("src %s tgt %s subject %q: edge %v op %v produced %q not matching %s",
						src, tgt, subject, e, op, produced, sub)
				}
			}
		}
	}
}

// The DAG never contains an edge escaping the node range or an extract
// referencing tokens outside the source.
func TestDAGWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		src := randPattern(r, 6)
		tgt := randPattern(r, 5)
		d := Align(tgt, src)
		for e, ops := range d.Ops {
			if e.From < 0 || e.To > d.N || e.From >= e.To {
				t.Fatalf("bad edge %v (N=%d)", e, d.N)
			}
			for _, op := range ops {
				if ex, ok := op.(unifi.Extract); ok {
					if ex.I < 1 || ex.J > src.Len() || ex.I > ex.J {
						t.Fatalf("bad extract %v for source of %d tokens", ex, src.Len())
					}
				}
			}
		}
	}
}
