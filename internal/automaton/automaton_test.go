package automaton_test

import (
	"bytes"
	"errors"
	"testing"

	"clx/internal/automaton"
	"clx/internal/pattern"
	"clx/internal/rematch"
	"clx/internal/token"
	"clx/internal/unifi"
)

func mustCompile(t *testing.T, gp unifi.GuardedProgram) *automaton.Machine {
	t.Helper()
	m, err := automaton.Compile(gp)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

// refSelect mirrors the reference engine's case-selection loop: first case
// whose pattern matches and guard holds.
func refSelect(gp unifi.GuardedProgram, s string) (int, []rematch.Span, bool) {
	for i, c := range gp.Cases {
		spans, ok := rematch.Match(c.Source.Tokens(), s)
		if !ok {
			continue
		}
		if c.Guard != nil && !c.Guard.Holds(c.Source, s) {
			continue
		}
		return i, spans, true
	}
	return 0, nil, false
}

// checkParity asserts the automaton and the reference engine agree on s in
// every observable way: Apply output/error, AppendApply bytes/error, and
// the chosen case and its spans.
func checkParity(t *testing.T, gp unifi.GuardedProgram, m *automaton.Machine, s string) {
	t.Helper()
	ref := gp.Compile()
	wantOut, wantErr := ref.Apply(s)
	gotOut, gotErr := m.Apply(s)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("Apply(%q): error mismatch: ref %v, automaton %v", s, wantErr, gotErr)
	}
	if wantErr != nil {
		if errors.Is(wantErr, unifi.ErrNoMatch) != errors.Is(gotErr, unifi.ErrNoMatch) {
			t.Fatalf("Apply(%q): ErrNoMatch mismatch: ref %v, automaton %v", s, wantErr, gotErr)
		}
		if !errors.Is(wantErr, unifi.ErrNoMatch) && wantErr.Error() != gotErr.Error() {
			t.Fatalf("Apply(%q): plan error mismatch: ref %q, automaton %q", s, wantErr, gotErr)
		}
	} else if wantOut != gotOut {
		t.Fatalf("Apply(%q): ref %q, automaton %q", s, wantOut, gotOut)
	}

	prefix := []byte("pre|")
	wantB, wantBErr := ref.AppendApply(append([]byte(nil), prefix...), s)
	a := m.NewArena()
	gotB, gotBErr := m.AppendApply(append([]byte(nil), prefix...), s, a)
	if (wantBErr == nil) != (gotBErr == nil) || !bytes.Equal(wantB, gotB) {
		t.Fatalf("AppendApply(%q): ref (%q, %v), automaton (%q, %v)", s, wantB, wantBErr, gotB, gotBErr)
	}

	wantCase, wantSpans, wantOK := refSelect(gp, s)
	gotCase, gotSpans, gotOK := m.Match(s)
	if wantOK != gotOK || wantCase != gotCase {
		t.Fatalf("Match(%q): ref (case %d, %v), automaton (case %d, %v)", s, wantCase, wantOK, gotCase, gotOK)
	}
	if wantOK && len(wantSpans) != len(gotSpans) {
		t.Fatalf("Match(%q): span count: ref %v, automaton %v", s, wantSpans, gotSpans)
	}
	for i := range wantSpans {
		if wantSpans[i] != gotSpans[i] {
			t.Fatalf("Match(%q): span %d: ref %v, automaton %v", s, i, wantSpans, gotSpans)
		}
	}
}

func TestAutomatonPhonesProgram(t *testing.T) {
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{
			Source: pattern.MustParse(`'('<D>3') '<D>3'-'<D>4`),
			Plan: unifi.Plan{Ops: []unifi.Op{
				unifi.Extract{I: 2, J: 2}, unifi.ConstStr{S: "-"},
				unifi.Extract{I: 4, J: 4}, unifi.ConstStr{S: "-"},
				unifi.Extract{I: 6, J: 6},
			}},
		},
		{
			Source: pattern.MustParse(`<D>3'.'<D>3'.'<D>4`),
			Plan: unifi.Plan{Ops: []unifi.Op{
				unifi.Extract{I: 1, J: 1}, unifi.ConstStr{S: "-"},
				unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "-"},
				unifi.Extract{I: 5, J: 5},
			}},
		},
	}}
	m := mustCompile(t, gp)
	for _, s := range []string{
		"(734) 645-8397", "734.645.8397", "734-645-8397", "7346458397",
		"(734)645-8397", "", "734.645.839", "(734) 645-83970", "x",
	} {
		checkParity(t, gp, m, s)
	}
	if got, err := m.Apply("(734) 645-8397"); err != nil || got != "734-645-8397" {
		t.Fatalf("Apply = (%q, %v), want 734-645-8397", got, err)
	}
}

func TestAutomatonGreedySpans(t *testing.T) {
	// The ambiguous-class corpora from rematch_test: overlapping classes and
	// literal-run patterns where greedy extent choice is observable.
	cases := []struct {
		pat  string
		subs []string
	}{
		{`<AN>+'.'<D>4`, []string{"abc123.2019", "a.2019", "-.2019", ".2019", "abc.123.2019"}},
		{`<AN>+<D>+`, []string{"ab12", "1", "12", "a1", "ab", "111"}},
		{`'ab'+<D>`, []string{"ababab1", "ab1", "aba1", "abab", "1"}},
		{`<AN>+' '<AN>+`, []string{"a b c", "a  b", "x y", "  "}},
		{`<A>+<AN>+<D>2`, []string{"ab1c22", "xyz99", "a122", "ab99"}},
	}
	for _, c := range cases {
		gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{{
			Source: pattern.MustParse(c.pat),
			Plan:   unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 1, J: 1}}},
		}}}
		m := mustCompile(t, gp)
		for _, s := range c.subs {
			checkParity(t, gp, m, s)
		}
	}
}

func TestAutomatonGuardDispatch(t *testing.T) {
	src := pattern.MustParse(`<L>+' '<D>3`)
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{Source: src, Guard: unifi.TokenIs{I: 1, Value: "picture"},
			Plan: unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "P-"}, unifi.Extract{I: 3, J: 3}}}},
		{Source: src, Guard: unifi.TokenIs{I: 1, Value: "invoice"},
			Plan: unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "I-"}, unifi.Extract{I: 3, J: 3}}}},
		{Source: src,
			Plan: unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "X-"}, unifi.Extract{I: 3, J: 3}}}},
	}}
	m := mustCompile(t, gp)
	for _, s := range []string{"picture 123", "invoice 456", "receipt 789", "picture123", "picture  12"} {
		checkParity(t, gp, m, s)
	}
	if got, _ := m.Apply("invoice 456"); got != "I-456" {
		t.Fatalf("guard dispatch: got %q, want I-456", got)
	}
}

func TestAutomatonDeadGuardCase(t *testing.T) {
	// A guard naming a token past the pattern can never hold; the case must
	// be compiled out with later cases still reachable — the reference
	// engine's holdsSpans returns false for it on every row.
	src := pattern.MustParse(`<D>3`)
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{Source: src, Guard: unifi.TokenIs{I: 5, Value: "x"},
			Plan: unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "dead"}}}},
		{Source: src, Plan: unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "live"}}}},
	}}
	m := mustCompile(t, gp)
	checkParity(t, gp, m, "123")
	if got, _ := m.Apply("123"); got != "live" {
		t.Fatalf("dead-guard case selected: got %q", got)
	}
}

func TestAutomatonIdentityCase(t *testing.T) {
	target := pattern.MustParse(`<D>3'-'<D>4`)
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{{
		Source: pattern.MustParse(`<D>7`),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.Extract{I: 1, J: 1}, // whole run; would mangle a clean row
		}},
	}}}
	m, err := automaton.CompileSaved(target, gp)
	if err != nil {
		t.Fatalf("CompileSaved: %v", err)
	}
	if got, err := m.Apply("645-8397"); err != nil || got != "645-8397" {
		t.Fatalf("identity row: (%q, %v), want passthrough", got, err)
	}
	if got, err := m.Apply("6458397"); err != nil || got != "6458397" {
		t.Fatalf("source row: (%q, %v)", got, err)
	}
	if _, err := m.Apply("abc"); !errors.Is(err, unifi.ErrNoMatch) {
		t.Fatalf("uncovered row: err = %v, want ErrNoMatch", err)
	}
	if m.Cases() != 2 {
		t.Fatalf("Cases() = %d, want 2 (identity + 1)", m.Cases())
	}
}

func TestAutomatonPlanErrorParity(t *testing.T) {
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{{
		Source: pattern.MustParse(`<D>3`),
		Plan: unifi.Plan{Ops: []unifi.Op{
			unifi.ConstStr{S: "pre-"}, unifi.Extract{I: 2, J: 9}, unifi.ConstStr{S: "-post"},
		}},
	}}}
	m := mustCompile(t, gp)
	checkParity(t, gp, m, "123")
	_, err := m.Apply("123")
	want := "unifi: Extract(2,9) out of range for source of 1 tokens"
	if err == nil || err.Error() != want {
		t.Fatalf("plan error = %v, want %q", err, want)
	}
	// The partial prefix before the failing op must append, like the
	// reference appendSpans.
	out, err := m.AppendApply([]byte("x|"), "123", m.NewArena())
	if err == nil || string(out) != "x|pre-" {
		t.Fatalf("partial append = (%q, %v)", out, err)
	}
}

type opaqueGuard struct{}

func (opaqueGuard) String() string                         { return "opaque" }
func (opaqueGuard) Holds(_ pattern.Pattern, _ string) bool { return true }

func TestAutomatonFallbacks(t *testing.T) {
	automaton.ResetGlobalStats()
	plan := unifi.Plan{Ops: []unifi.Op{unifi.ConstStr{S: "y"}}}

	var wide unifi.GuardedProgram
	for i := 0; i < 65; i++ {
		wide.Cases = append(wide.Cases, unifi.GuardedCase{Source: pattern.MustParse(`<D>`), Plan: plan})
	}
	if _, err := automaton.Compile(wide); err == nil {
		t.Fatal("65-case program compiled; want fallback")
	}

	guarded := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{Source: pattern.MustParse(`<D>`), Guard: opaqueGuard{}, Plan: plan}}}
	if _, err := automaton.Compile(guarded); err == nil {
		t.Fatal("opaque guard compiled; want fallback")
	}

	zeroQuant := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{Source: pattern.Of(token.Token{Class: token.Digit, Quant: 0}), Plan: plan}}}
	if _, err := automaton.Compile(zeroQuant); err == nil {
		t.Fatal("zero-quant token compiled; want fallback")
	}

	ok := unifi.GuardedProgram{Cases: []unifi.GuardedCase{
		{Source: pattern.MustParse(`<D>3`), Plan: plan}}}
	if _, err := automaton.Compile(ok); err != nil {
		t.Fatalf("plain program fell back: %v", err)
	}

	st := automaton.GlobalStats()
	if st.Fallback != 3 || st.Compiled != 1 {
		t.Fatalf("stats = %+v, want 3 fallbacks / 1 compiled", st)
	}
}

func TestAutomatonZeroAllocSteadyState(t *testing.T) {
	gp := unifi.GuardedProgram{Cases: []unifi.GuardedCase{{
		Source: pattern.MustParse(`<AN>+'.'<D>4`),
		Plan:   unifi.Plan{Ops: []unifi.Op{unifi.Extract{I: 3, J: 3}, unifi.ConstStr{S: "/"}, unifi.Extract{I: 1, J: 1}}},
	}}}
	m := mustCompile(t, gp)
	a := m.NewArena()
	dst := make([]byte, 0, 1024)
	subjects := []string{"abc123.2019", "x.1999", "a-b c.2024"}
	// Warm the arena, then measure.
	for _, s := range subjects {
		if _, err := m.AppendApply(dst, s, a); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, s := range subjects {
			dst = dst[:0]
			var err error
			if dst, err = m.AppendApply(dst, s, a); err != nil {
				t.Fatalf("AppendApply: %v", err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendApply allocates %.1f per run, want 0", allocs)
	}
}

// litAlphabet maps fuzz bytes onto characters that exercise every token
// class plus the literal set the generator draws from.
const litAlphabet = "ab zAB19-._()é\xff"

// fuzz literal pool: shared with genProgram and the subject mapping so
// generated patterns actually hit generated subjects.
var fuzzLits = []string{"-", ".", " ", "ab", "(", ")", "_"}

// genProgram decodes fuzz bytes into an arbitrary guarded program: 1-4
// cases, each 1-4 tokens (fixed/plus, class/literal), an optional TokenIs
// guard (sometimes out of range), and a 1-3 op plan whose Extract ranges
// are sometimes invalid — the same space the reference engine accepts.
func genProgram(data []byte) (unifi.GuardedProgram, []byte) {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	classes := []token.Class{token.Digit, token.Lower, token.Upper, token.Alpha, token.AlphaNum}
	var gp unifi.GuardedProgram
	nCases := 1 + int(next())%4
	for ci := 0; ci < nCases; ci++ {
		nToks := 1 + int(next())%4
		toks := make([]token.Token, 0, nToks)
		for ti := 0; ti < nToks; ti++ {
			b := next()
			switch b % 8 {
			case 0, 1, 2:
				toks = append(toks, token.Base(classes[int(b/8)%len(classes)], token.Plus))
			case 3, 4, 5:
				toks = append(toks, token.Base(classes[int(b/8)%len(classes)], 1+int(b/64)%3))
			case 6:
				toks = append(toks, token.Lit(fuzzLits[int(b/8)%len(fuzzLits)]))
			default:
				toks = append(toks, token.Token{Class: token.Literal,
					Lit: fuzzLits[int(b/8)%len(fuzzLits)], Quant: token.Plus})
			}
		}
		c := unifi.GuardedCase{Source: pattern.Of(toks...)}
		if g := next(); g%4 == 0 {
			c.Guard = unifi.TokenIs{I: int(g/4) % (nToks + 2), Value: fuzzLits[int(g)%len(fuzzLits)]}
		}
		nOps := 1 + int(next())%3
		for oi := 0; oi < nOps; oi++ {
			b := next()
			if b%2 == 0 {
				c.Plan.Ops = append(c.Plan.Ops, unifi.ConstStr{S: fuzzLits[int(b/2)%len(fuzzLits)]})
			} else {
				i := int(b/2) % (nToks + 2)
				j := i + int(b/32)%2
				c.Plan.Ops = append(c.Plan.Ops, unifi.Extract{I: i, J: j})
			}
		}
		gp.Cases = append(gp.Cases, c)
	}
	return gp, data
}

// FuzzAutomatonVsReference is the differential fuzz layer of the tentpole:
// for arbitrary programs and subjects the automaton must agree with the
// backtracking engine on match/no-match, chosen case, token spans, rendered
// output, and errors. Programs the compiler can't lower are skipped — those
// run on the reference engine in production too.
func FuzzAutomatonVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 0, 16, 1, 3}, "abc123.2019", true)
	f.Add([]byte{1, 2, 0, 24, 2, 2, 5}, "ab12", true)
	f.Add([]byte{0, 1, 55, 0, 1}, "ababab1", false)
	f.Add([]byte{2, 2, 0, 0, 4, 1, 1, 2, 16, 0, 3}, "aa zz 19", true)
	f.Add([]byte{3, 3, 8, 9, 10, 0, 2, 6, 14, 1, 1, 7}, "(ab) 9", false)
	f.Fuzz(func(t *testing.T, progData []byte, subject string, mapped bool) {
		gp, _ := genProgram(progData)
		m, err := automaton.Compile(gp)
		if err != nil {
			t.Skip("program not lowerable; reference engine serves it")
		}
		if mapped {
			// Project the subject onto the generator's alphabet so matches
			// are common; the raw branch keeps arbitrary (incl. non-ASCII)
			// bytes covered.
			b := []byte(subject)
			for i := range b {
				b[i] = litAlphabet[int(b[i])%len(litAlphabet)]
			}
			subject = string(b)
		}
		checkFuzzParity(t, gp, m, subject)
	})
}

func checkFuzzParity(t *testing.T, gp unifi.GuardedProgram, m *automaton.Machine, s string) {
	ref := gp.Compile()
	wantOut, wantErr := ref.Apply(s)
	gotOut, gotErr := m.Apply(s)
	switch {
	case (wantErr == nil) != (gotErr == nil):
		t.Fatalf("Apply(%q) on %s:\nref (%q, %v)\nautomaton (%q, %v)", s, gp, wantOut, wantErr, gotOut, gotErr)
	case wantErr != nil:
		if errors.Is(wantErr, unifi.ErrNoMatch) != errors.Is(gotErr, unifi.ErrNoMatch) ||
			wantErr.Error() != gotErr.Error() {
			t.Fatalf("Apply(%q) on %s: error mismatch:\nref %v\nautomaton %v", s, gp, wantErr, gotErr)
		}
	case wantOut != gotOut:
		t.Fatalf("Apply(%q) on %s:\nref %q\nautomaton %q", s, gp, wantOut, gotOut)
	}

	wantB, wantBErr := ref.AppendApply(nil, s)
	gotB, gotBErr := m.AppendApply(nil, s, m.NewArena())
	if !bytes.Equal(wantB, gotB) || (wantBErr == nil) != (gotBErr == nil) {
		t.Fatalf("AppendApply(%q) on %s:\nref (%q, %v)\nautomaton (%q, %v)", s, gp, wantB, wantBErr, gotB, gotBErr)
	}

	wantCase, wantSpans, wantOK := refSelect(gp, s)
	gotCase, gotSpans, gotOK := m.Match(s)
	if wantOK != gotOK || wantCase != gotCase || len(wantSpans) != len(gotSpans) {
		t.Fatalf("Match(%q) on %s:\nref (case %d, %v, %v)\nautomaton (case %d, %v, %v)",
			s, gp, wantCase, wantSpans, wantOK, gotCase, gotSpans, gotOK)
	}
	for i := range wantSpans {
		if wantSpans[i] != gotSpans[i] {
			t.Fatalf("Match(%q) on %s: span %d: ref %v, automaton %v", s, gp, i, wantSpans, gotSpans)
		}
	}
}
