// Process-wide automaton-compilation counters, backed by internal/obs so
// the same numbers serve GET /v1/stats (JSON) and GET /metrics
// (Prometheus text). A deployment watches the fallback counter: a nonzero
// rate means some registered programs still apply through the
// backtracking reference engine instead of the fused automaton.
package automaton

import "clx/internal/obs"

var (
	mCompiled = obs.NewCounter("clx_automaton_compiled_total",
		"Guarded programs successfully compiled to fused byte automata.")
	mFallback = obs.NewCounter("clx_automaton_fallback_total",
		"Guarded programs the automaton compiler could not lower (served by the backtracking engine).")
)

// Counters is a snapshot of the process-wide compilation totals.
type Counters struct {
	// Compiled counts programs lowered to automata; Fallback counts
	// programs that stayed on the backtracking reference engine.
	Compiled int64 `json:"compiled"`
	Fallback int64 `json:"fallback"`
}

// GlobalStats returns a snapshot of the process-wide counters.
func GlobalStats() Counters {
	return Counters{Compiled: mCompiled.Value(), Fallback: mFallback.Value()}
}

// ResetGlobalStats zeroes the process counters (tests and benchmarks).
func ResetGlobalStats() {
	mCompiled.Reset()
	mFallback.Reset()
}
