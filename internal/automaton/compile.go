// Lowering a guarded UniFi program into the Machine's tables: token
// lowering, the Glushkov position NFA over every case at once, the byte →
// alphabet-class map, and the subset-construction dispatch DFA. All of it
// runs once per program version at registry load time; none of it runs on
// the per-row path.
package automaton

import (
	"fmt"

	"clx/internal/pattern"
	"clx/internal/token"
	"clx/internal/unifi"
)

// Compilation caps. A program exceeding any of them falls back to the
// backtracking engine — correctness is never at stake, only the fused hot
// path. The caps are far above anything the synthesizer emits (benchmark
// programs run a handful of cases with one or two dozen tokens each).
const (
	// maxCases bounds the Switch width: case acceptance is a uint64
	// bitmask, bit i = case i, lowest set bit = first-case priority.
	maxCases = 64
	// maxUnits bounds the position NFA (one unit per consumed byte
	// position; '+' tokens contribute one unit per repeat-unit byte).
	maxUnits = 2048
	// maxStates bounds the subset-construction DFA.
	maxStates = 4096
)

// Lowered token kinds.
const (
	tFixedLit   uint8 = iota // exact byte string (literal, natural quantifier)
	tFixedClass              // exactly length bytes of class
	tPlusClass               // one or more bytes of class
	tPlusLit                 // one or more repetitions of lit
)

// ctok is a lowered pattern token.
type ctok struct {
	kind  uint8
	class token.Class
	// lit holds the expanded bytes (tFixedLit) or the repeat unit
	// (tPlusLit).
	lit string
	// length is the consumed byte count for fixed kinds and the repeat-unit
	// length for tPlusLit.
	length int
}

// Render-op kinds.
const (
	rConst        uint8 = iota // append a constant string
	rExtract                   // append the subject bytes spanning tokens i..j
	rExtractFixed              // append s[i:j] — token offsets resolved at compile time
	rErr                       // fail with a precomputed plan error
)

// rop is one lowered replace-plan operator.
type rop struct {
	kind uint8
	s    string
	i, j int
	err  error
}

// caseProg is one lowered Switch case.
type caseProg struct {
	toks []ctok
	// identity marks the synthetic target case CompileSaved prepends:
	// matching rows pass through unchanged.
	identity bool
	// guardTok/guardVal are the lowered TokenIs guard (guardTok 0 =
	// unguarded): the winning spans' guardTok-th token text must equal
	// guardVal.
	guardTok int
	guardVal string
	// dead marks cases that can never apply (guard token out of range);
	// they are excluded from dispatch entirely.
	dead bool
	// render is the flat op program; needSpans reports whether selection
	// must recover token spans (a guard or an extract op).
	render    []rop
	needSpans bool
	// fixedOffsets holds the cumulative byte offsets of a pattern with no
	// '+' tokens (len(toks)+1 entries): span i is
	// [fixedOffsets[i], fixedOffsets[i+1]) with no recovery scan at all.
	fixedOffsets []int
}

// Compile lowers gp — all cases at once — into a fused dispatch/guard/
// extract automaton. The error names the construct that could not be
// lowered (a non-TokenIs guard, more than 64 cases, a compilation cap);
// callers keep the backtracking engine for those programs. Outcomes are
// counted process-wide (GlobalStats, clx_automaton_* metrics).
func Compile(gp unifi.GuardedProgram) (*Machine, error) {
	m, err := compile(nil, gp)
	count(err)
	return m, err
}

// CompileSaved is Compile with the saved program's target pattern fused in
// as a highest-priority identity case: rows already in the target format
// pass through unchanged, which folds SavedProgram's separate target-match
// scan into the same single dispatch pass.
func CompileSaved(target pattern.Pattern, gp unifi.GuardedProgram) (*Machine, error) {
	m, err := compile(&target, gp)
	count(err)
	return m, err
}

func count(err error) {
	if err != nil {
		mFallback.Inc()
	} else {
		mCompiled.Inc()
	}
}

func compile(target *pattern.Pattern, gp unifi.GuardedProgram) (*Machine, error) {
	nCases := len(gp.Cases)
	if target != nil {
		nCases++
	}
	if nCases > maxCases {
		return nil, fmt.Errorf("automaton: %d cases exceeds the %d-case cap", nCases, maxCases)
	}
	m := &Machine{cases: make([]caseProg, 0, nCases)}
	if target != nil {
		toks, err := lowerTokens(target.Tokens())
		if err != nil {
			return nil, err
		}
		m.cases = append(m.cases, caseProg{toks: toks, identity: true, fixedOffsets: fixedOffsets(toks)})
	}
	for _, c := range gp.Cases {
		cp, err := lowerCase(c)
		if err != nil {
			return nil, err
		}
		m.cases = append(m.cases, cp)
	}
	for _, c := range m.cases {
		if len(c.toks) > m.maxToks {
			m.maxToks = len(c.toks)
		}
	}
	if err := buildDFA(m); err != nil {
		return nil, err
	}
	return m, nil
}

// lowerCase lowers one guarded case: pattern tokens, guard, and plan.
func lowerCase(c unifi.GuardedCase) (caseProg, error) {
	toks, err := lowerTokens(c.Source.Tokens())
	if err != nil {
		return caseProg{}, err
	}
	cp := caseProg{toks: toks, fixedOffsets: fixedOffsets(toks)}
	if c.Guard != nil {
		ti, ok := c.Guard.(unifi.TokenIs)
		if !ok {
			return caseProg{}, fmt.Errorf("automaton: cannot lower guard %T", c.Guard)
		}
		if ti.I < 1 || ti.I > len(toks) {
			// The guard can never hold (TokenIs.holdsSpans rejects the
			// range), so the case can never apply: compile it out of
			// dispatch instead of re-checking per row.
			cp.dead = true
			return cp, nil
		}
		cp.guardTok, cp.guardVal = ti.I, ti.Value
	}
	cp.render, err = lowerPlan(c.Plan, len(toks))
	if err != nil {
		return caseProg{}, err
	}
	if cp.fixedOffsets != nil {
		// Every token boundary is known at compile time: bind extract ops
		// straight to subject byte offsets (the guard reads fixedOffsets in
		// the selection loop) so matching rows render with no span
		// materialization at all.
		for k, op := range cp.render {
			if op.kind == rExtract {
				cp.render[k] = rop{kind: rExtractFixed,
					i: cp.fixedOffsets[op.i-1], j: cp.fixedOffsets[op.j]}
			}
		}
		return cp, nil
	}
	cp.needSpans = cp.guardTok > 0
	for _, op := range cp.render {
		if op.kind == rExtract {
			cp.needSpans = true
		}
	}
	return cp, nil
}

// lowerTokens lowers a pattern's token sequence.
func lowerTokens(toks []token.Token) ([]ctok, error) {
	out := make([]ctok, 0, len(toks))
	for _, t := range toks {
		if t.Quant != token.Plus && t.Quant < 1 {
			return nil, fmt.Errorf("automaton: cannot lower token %s (quantifier %d)", t, t.Quant)
		}
		if t.IsLiteral() && len(t.Lit) == 0 {
			return nil, fmt.Errorf("automaton: cannot lower empty literal token")
		}
		switch {
		case t.IsLiteral() && t.Quant == token.Plus:
			out = append(out, ctok{kind: tPlusLit, lit: t.Lit, length: len(t.Lit)})
		case t.IsLiteral():
			lit := t.Expand()
			out = append(out, ctok{kind: tFixedLit, lit: lit, length: len(lit)})
		case t.Quant == token.Plus:
			out = append(out, ctok{kind: tPlusClass, class: t.Class})
		default:
			out = append(out, ctok{kind: tFixedClass, class: t.Class, length: t.Quant})
		}
	}
	return out, nil
}

// fixedOffsets precomputes span boundaries for a pattern with no '+'
// tokens; nil when any token has one.
func fixedOffsets(toks []ctok) []int {
	off := make([]int, len(toks)+1)
	for i, t := range toks {
		if t.kind == tPlusClass || t.kind == tPlusLit {
			return nil
		}
		off[i+1] = off[i] + t.length
	}
	return off
}

// lowerPlan flattens a replace plan. An operator the evaluator would
// reject at run time (an out-of-range Extract) lowers to an rErr op
// carrying the exact error the reference engine produces, positioned so
// ops before it still render — parity for the partial-append contract of
// CompiledGuardedProgram.AppendApply.
func lowerPlan(p unifi.Plan, nTokens int) ([]rop, error) {
	out := make([]rop, 0, len(p.Ops))
	for _, op := range p.Ops {
		switch op := op.(type) {
		case unifi.ConstStr:
			out = append(out, rop{kind: rConst, s: op.S})
		case unifi.Extract:
			if op.I < 1 || op.J > nTokens || op.I > op.J {
				out = append(out, rop{kind: rErr, err: fmt.Errorf(
					"unifi: Extract(%d,%d) out of range for source of %d tokens",
					op.I, op.J, nTokens)})
				return out, nil // nothing after the failing op runs
			}
			out = append(out, rop{kind: rExtract, i: op.I, j: op.J})
		default:
			return nil, fmt.Errorf("automaton: cannot lower operator %T", op)
		}
	}
	return out, nil
}

// unit is one position of the Glushkov NFA: it consumes exactly one byte
// (an exact literal byte or any byte of a base class).
type unit struct {
	isByte bool
	b      byte
	class  token.Class
	// follow lists the units that may consume the next byte.
	follow []int32
	// end is the case-acceptance mask: bits of cases this unit can finish.
	end uint64
}

// buildNFA expands every live case into units, returning the units, the
// set of possible first units, and the mask of cases matching the empty
// subject.
func buildNFA(m *Machine) (units []unit, firsts []int32, emptyMask uint64, err error) {
	for ci, c := range m.cases {
		if c.dead {
			continue
		}
		if len(c.toks) == 0 {
			emptyMask |= 1 << uint(ci)
			continue
		}
		var prevExits []int32
		var caseEntry int32 = -1
		for ti, t := range c.toks {
			entry, exits, terr := addToken(&units, t)
			if terr != nil {
				return nil, nil, 0, terr
			}
			if ti == 0 {
				caseEntry = entry
			}
			for _, x := range prevExits {
				units[x].follow = append(units[x].follow, entry)
			}
			prevExits = exits
		}
		firsts = append(firsts, caseEntry)
		for _, x := range prevExits {
			units[x].end |= 1 << uint(ci)
		}
	}
	return units, firsts, emptyMask, nil
}

// addToken appends the units of one lowered token and returns its entry
// unit and exit units (whose follow sets the next token's entry joins).
func addToken(units *[]unit, t ctok) (int32, []int32, error) {
	add := func(u unit) (int32, error) {
		if len(*units) >= maxUnits {
			return 0, fmt.Errorf("automaton: pattern union exceeds the %d-position cap", maxUnits)
		}
		*units = append(*units, u)
		return int32(len(*units) - 1), nil
	}
	chain := func(n int, mk func(i int) unit) (int32, int32, error) {
		var first, last int32
		for i := 0; i < n; i++ {
			id, err := add(mk(i))
			if err != nil {
				return 0, 0, err
			}
			if i == 0 {
				first = id
			} else {
				(*units)[last].follow = append((*units)[last].follow, id)
			}
			last = id
		}
		return first, last, nil
	}
	switch t.kind {
	case tFixedLit:
		first, last, err := chain(len(t.lit), func(i int) unit { return unit{isByte: true, b: t.lit[i]} })
		return first, []int32{last}, err
	case tFixedClass:
		first, last, err := chain(t.length, func(int) unit { return unit{class: t.class} })
		return first, []int32{last}, err
	case tPlusClass:
		id, err := add(unit{class: t.class})
		if err != nil {
			return 0, nil, err
		}
		(*units)[id].follow = append((*units)[id].follow, id) // self-loop
		return id, []int32{id}, nil
	case tPlusLit:
		first, last, err := chain(len(t.lit), func(i int) unit { return unit{isByte: true, b: t.lit[i]} })
		if err != nil {
			return 0, nil, err
		}
		// Whole repetitions only: the loop closes from the last byte back
		// to the first.
		(*units)[last].follow = append((*units)[last].follow, first)
		return first, []int32{last}, nil
	}
	return 0, nil, fmt.Errorf("automaton: unknown lowered token kind %d", t.kind)
}

// buildAlphabet partitions the 256 byte values into equivalence classes:
// two bytes share a class iff every unit predicate treats them alike. The
// 128 ASCII entries carry the token-class structure (the same table-driven
// move as tokenize's classify table); bytes >= 0x80 can only be accepted
// by literal units, so they map to singleton literal classes or to the
// shared reject class.
func buildAlphabet(m *Machine, units []unit) error {
	var usedClasses []token.Class
	seen := map[token.Class]bool{}
	var litByte [256]bool
	for _, u := range units {
		if u.isByte {
			litByte[u.b] = true
		} else if !seen[u.class] {
			seen[u.class] = true
			usedClasses = append(usedClasses, u.class)
		}
	}
	sigToClass := map[uint32]uint8{}
	next := 0
	alloc := func() (uint8, error) {
		if next > 255 {
			return 0, fmt.Errorf("automaton: alphabet exceeds 256 classes")
		}
		id := uint8(next)
		next++
		return id, nil
	}
	for b := 0; b < 256; b++ {
		if litByte[b] {
			// A byte some literal unit tests for is its own class: no other
			// byte behaves identically under the "== b" predicate.
			id, err := alloc()
			if err != nil {
				return err
			}
			m.alpha[b] = id
			continue
		}
		var sig uint32
		for i, c := range usedClasses {
			if c.Contains(rune(b)) {
				sig |= 1 << uint(i)
			}
		}
		id, ok := sigToClass[sig]
		if !ok {
			var err error
			if id, err = alloc(); err != nil {
				return err
			}
			sigToClass[sig] = id
		}
		m.alpha[b] = id
	}
	m.numClasses = next
	return nil
}

// buildDFA runs the subset construction over the position NFA: DFA states
// are sets of "just consumed" units, the start state is virtual (nothing
// consumed), and a state's acceptance mask ORs the end masks of its units.
func buildDFA(m *Machine) error {
	units, firsts, emptyMask, err := buildNFA(m)
	if err != nil {
		return err
	}
	if err := buildAlphabet(m, units); err != nil {
		return err
	}
	words := (len(units) + 63) / 64
	if words == 0 {
		words = 1
	}
	// acceptU[a] = bitset of units whose predicate accepts alphabet class a.
	acceptU := make([][]uint64, m.numClasses)
	for a := range acceptU {
		acceptU[a] = make([]uint64, words)
	}
	for b := 0; b < 256; b++ {
		a := m.alpha[b]
		for ui, u := range units {
			ok := u.isByte && u.b == byte(b) || !u.isByte && u.class.Contains(rune(b))
			if ok {
				acceptU[a][ui>>6] |= 1 << uint(ui&63)
			}
		}
	}
	followBits := make([][]uint64, len(units))
	for ui, u := range units {
		fb := make([]uint64, words)
		for _, f := range u.follow {
			fb[f>>6] |= 1 << uint(f&63)
		}
		followBits[ui] = fb
	}
	firstBits := make([]uint64, words)
	for _, f := range firsts {
		firstBits[f>>6] |= 1 << uint(f&63)
	}

	// State 0 is the dead state (all-zero transition row); state 1 the
	// start state. The start set is virtual — nil, never deduplicated
	// against consumed sets, its acceptance is the empty-subject mask.
	nc := m.numClasses
	sets := [][]uint64{nil, nil}
	index := map[string]uint16{}
	m.trans = make([]uint32, 2*nc)
	m.accept = []uint64{0, emptyMask}
	keyBuf := make([]byte, words*8)
	key := func(set []uint64) string {
		for i, w := range set {
			for j := 0; j < 8; j++ {
				keyBuf[i*8+j] = byte(w >> uint(8*j))
			}
		}
		return string(keyBuf)
	}
	addState := func(set []uint64) (uint16, error) {
		zero := true
		for _, w := range set {
			if w != 0 {
				zero = false
				break
			}
		}
		if zero {
			return 0, nil
		}
		k := key(set)
		if id, ok := index[k]; ok {
			return id, nil
		}
		if len(sets) >= maxStates {
			return 0, fmt.Errorf("automaton: dispatch DFA exceeds the %d-state cap", maxStates)
		}
		id := uint16(len(sets))
		cp := make([]uint64, words)
		copy(cp, set)
		sets = append(sets, cp)
		index[k] = id
		var acc uint64
		for ui := range units {
			if cp[ui>>6]&(1<<uint(ui&63)) != 0 {
				acc |= units[ui].end
			}
		}
		m.accept = append(m.accept, acc)
		m.trans = append(m.trans, make([]uint32, nc)...)
		return id, nil
	}
	cand := make([]uint64, words)
	next := make([]uint64, words)
	for st := 1; st < len(sets); st++ {
		// Candidate next units: firsts from the start state, the union of
		// follow sets otherwise.
		if st == 1 {
			copy(cand, firstBits)
		} else {
			clear(cand)
			for ui := range units {
				if sets[st][ui>>6]&(1<<uint(ui&63)) != 0 {
					fb := followBits[ui]
					for w := range cand {
						cand[w] |= fb[w]
					}
				}
			}
		}
		for a := 0; a < nc; a++ {
			au := acceptU[a]
			for w := range next {
				next[w] = cand[w] & au[w]
			}
			id, err := addState(next)
			if err != nil {
				return err
			}
			// Premultiplied by the class count: the scan loop indexes
			// trans[st+class] with no per-byte multiply.
			m.trans[st*nc+a] = uint32(id) * uint32(nc)
		}
	}
	m.states = len(sets)
	return nil
}
