// Package automaton compiles a guarded UniFi program — every case at once —
// into a single byte-level tagged automaton: one anchored left-to-right scan
// over a table-driven DFA yields the winning case under first-case priority,
// span recovery runs only for cases whose guard or plan needs token
// boundaries, TokenIs guards fold into case selection, and replace plans
// render as flat op programs straight into the caller's buffer. The
// backtracking engine in internal/rematch + internal/unifi stays as the
// executable reference; the differential and fuzz layers pin this package to
// it byte for byte.
package automaton

import (
	"math/bits"
	"sync"

	"clx/internal/rematch"
	"clx/internal/unifi"
)

// Machine is a compiled guarded program. It is immutable after Compile and
// safe for concurrent use; per-call scratch lives in an Arena (streaming) or
// an internal pool (Apply).
type Machine struct {
	// alpha maps each byte to its alphabet equivalence class; trans is the
	// flat DFA transition table indexed state*numClasses + class, with
	// entries premultiplied by numClasses so the scan loop is one add and
	// one load per byte (no multiply). State 0 is dead (premultiplied 0
	// indexes its all-zero row), state 1 the start. accept[state] is the
	// bitmask of cases whose pattern matches when input ends in that state
	// (bit i = case i, lowest bit wins).
	alpha      [256]uint8
	numClasses int
	trans      []uint32
	accept     []uint64
	states     int
	cases      []caseProg
	maxToks    int
}

// States reports the DFA state count (including dead and start).
func (m *Machine) States() int { return m.states }

// AlphabetSize reports the number of byte equivalence classes.
func (m *Machine) AlphabetSize() int { return m.numClasses }

// Cases reports the compiled case count (including a fused identity case).
func (m *Machine) Cases() int { return len(m.cases) }

// scratch is the per-call working memory: feasibility bitsets for greedy
// span recovery, the recovered spans, and a render buffer for Apply.
type scratch struct {
	feas  []uint64
	spans []rematch.Span
	out   []byte
}

// Arena carries reusable scratch across many AppendApply calls so a
// steady-state streaming chunk performs zero per-row allocation. An Arena
// must not be used concurrently; acquire one per worker or per chunk.
type Arena struct {
	sc scratch
}

// NewArena returns an empty arena; buffers grow on first use and are
// retained across calls.
func (m *Machine) NewArena() *Arena { return &Arena{} }

var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// run executes the dispatch scan and returns the acceptance mask: bit i set
// iff case i's source pattern matches all of s.
func (m *Machine) run(s string) uint64 {
	nc := m.numClasses
	st := uint32(nc) // premultiplied start state (state 1)
	trans := m.trans
	for i := 0; i < len(s); i++ {
		st = trans[st+uint32(m.alpha[s[i]])]
		if st == 0 {
			return 0
		}
	}
	return m.accept[int(st)/nc]
}

// selectCase scans s and picks the first (lowest-index) matching case whose
// guard holds, recovering token spans only when the case needs them. The
// returned spans alias sc and are valid until its next use.
func (m *Machine) selectCase(s string, sc *scratch) (int, []rematch.Span, bool) {
	mask := m.run(s)
	for mask != 0 {
		ci := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(ci)
		c := &m.cases[ci]
		if c.fixedOffsets != nil {
			// Fixed-shape case: the guard reads compile-time offsets and
			// render ops carry their own; no span materialization at all.
			if c.guardTok > 0 {
				gs, ge := c.fixedOffsets[c.guardTok-1], c.fixedOffsets[c.guardTok]
				if s[gs:ge] != c.guardVal {
					continue
				}
			}
			return ci, nil, true
		}
		if !c.needSpans {
			return ci, nil, true
		}
		spans, ok := m.spansFor(c, s, sc)
		if !ok {
			continue
		}
		if c.guardTok > 0 {
			sp := spans[c.guardTok-1]
			if s[sp.Start:sp.End] != c.guardVal {
				continue
			}
		}
		return ci, spans, true
	}
	return 0, nil, false
}

// spansFor recovers the token spans the backtracking engine would produce
// for case c on s (which c's pattern is known to match). Fully-fixed
// patterns read precomputed offsets; patterns with '+' tokens run a
// backward feasibility pass then a forward greedy pass, which reproduces
// the backtracker's longest-extent-first search exactly: a '+' token takes
// the largest extent after which the remaining tokens can still match.
func (m *Machine) spansFor(c *caseProg, s string, sc *scratch) ([]rematch.Span, bool) {
	n := len(c.toks)
	if cap(sc.spans) < n {
		sc.spans = make([]rematch.Span, n)
	}
	spans := sc.spans[:n]
	if c.fixedOffsets != nil {
		off := c.fixedOffsets
		for i := 0; i < n; i++ {
			spans[i] = rematch.Span{Start: off[i], End: off[i+1]}
		}
		return spans, true
	}

	// Backward pass: feas row i, bit j ⇔ tokens i..n-1 match s[j:] exactly.
	words := len(s)>>6 + 1 // positions 0..len(s)
	need := (n + 1) * words
	if cap(sc.feas) < need {
		sc.feas = make([]uint64, need)
	}
	feas := sc.feas[:need]
	clear(feas)
	bset(feas[n*words:], len(s))
	for i := n - 1; i >= 0; i-- {
		t := &c.toks[i]
		cur := feas[i*words : (i+1)*words]
		nxt := feas[(i+1)*words : (i+2)*words]
		switch t.kind {
		case tFixedLit:
			L := t.length
			for j := len(s) - L; j >= 0; j-- {
				if bget(nxt, j+L) && s[j:j+L] == t.lit {
					bset(cur, j)
				}
			}
		case tFixedClass:
			run := 0
			for j := len(s) - 1; j >= 0; j-- {
				if t.class.Contains(rune(s[j])) {
					run++
				} else {
					run = 0
				}
				if run >= t.length && bget(nxt, j+t.length) {
					bset(cur, j)
				}
			}
		case tPlusClass:
			for j := len(s) - 1; j >= 0; j-- {
				if t.class.Contains(rune(s[j])) && (bget(nxt, j+1) || bget(cur, j+1)) {
					bset(cur, j)
				}
			}
		case tPlusLit:
			u := t.length
			for j := len(s) - u; j >= 0; j-- {
				if s[j:j+u] == t.lit && (bget(nxt, j+u) || bget(cur, j+u)) {
					bset(cur, j)
				}
			}
		}
	}

	// Forward greedy pass: fixed tokens have no choice; each '+' token takes
	// the largest extent e with the remainder still feasible (row i+1 at e).
	pos := 0
	for i := 0; i < n; i++ {
		t := &c.toks[i]
		switch t.kind {
		case tFixedLit, tFixedClass:
			spans[i] = rematch.Span{Start: pos, End: pos + t.length}
			pos += t.length
		case tPlusClass:
			nxt := feas[(i+1)*words : (i+2)*words]
			e, best := pos, -1
			for e < len(s) && t.class.Contains(rune(s[e])) {
				e++
				if bget(nxt, e) {
					best = e
				}
			}
			if best < 0 {
				return nil, false
			}
			spans[i] = rematch.Span{Start: pos, End: best}
			pos = best
		case tPlusLit:
			u := t.length
			nxt := feas[(i+1)*words : (i+2)*words]
			e, best := pos, -1
			for e+u <= len(s) && s[e:e+u] == t.lit {
				e += u
				if bget(nxt, e) {
					best = e
				}
			}
			if best < 0 {
				return nil, false
			}
			spans[i] = rematch.Span{Start: pos, End: best}
			pos = best
		}
	}
	return spans, true
}

// renderInto appends case c's plan output for s to dst. A plan that the
// reference engine would reject mid-render appends the same partial prefix
// and returns the same error.
func renderInto(dst []byte, c *caseProg, s string, spans []rematch.Span) ([]byte, error) {
	for _, op := range c.render {
		switch op.kind {
		case rConst:
			dst = append(dst, op.s...)
		case rExtract:
			dst = append(dst, s[spans[op.i-1].Start:spans[op.j-1].End]...)
		case rExtractFixed:
			dst = append(dst, s[op.i:op.j]...)
		case rErr:
			return dst, op.err
		}
	}
	return dst, nil
}

// AppendApply applies the program to s, appending the output to dst. A
// fused identity case appends s itself. No case matching (or every matching
// case's guard failing) returns unifi.ErrNoMatch; a plan error returns the
// reference engine's error after the same partial append. With a reused
// arena the call performs zero allocations beyond dst growth.
func (m *Machine) AppendApply(dst []byte, s string, a *Arena) ([]byte, error) {
	ci, spans, ok := m.selectCase(s, &a.sc)
	if !ok {
		return dst, unifi.ErrNoMatch
	}
	c := &m.cases[ci]
	if c.identity {
		return append(dst, s...), nil
	}
	return renderInto(dst, c, s, spans)
}

// Apply applies the program to s. It mirrors
// unifi.CompiledGuardedProgram.Apply: ("", unifi.ErrNoMatch) when no guarded
// case applies, ("", err) on a plan error. An identity-case hit returns s
// itself with no copy.
func (m *Machine) Apply(s string) (string, error) {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	ci, spans, ok := m.selectCase(s, &a.sc)
	if !ok {
		return "", unifi.ErrNoMatch
	}
	c := &m.cases[ci]
	if c.identity {
		return s, nil
	}
	out, err := renderInto(a.sc.out[:0], c, s, spans)
	a.sc.out = out[:0]
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Match reports the winning case and its token spans (a fresh slice) —
// the observability hook the fuzz and parity layers compare against the
// reference engine's per-case Match/guard loop.
func (m *Machine) Match(s string) (caseIdx int, spans []rematch.Span, ok bool) {
	var sc scratch
	ci, sp, ok := m.selectCase(s, &sc)
	if !ok {
		return 0, nil, false
	}
	if sp == nil {
		if sp, ok = m.spansFor(&m.cases[ci], s, &sc); !ok {
			return 0, nil, false
		}
	}
	out := make([]rematch.Span, len(sp))
	copy(out, sp)
	return ci, out, true
}

func bget(b []uint64, i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func bset(b []uint64, i int)      { b[i>>6] |= 1 << uint(i&63) }
