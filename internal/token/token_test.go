package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Digit:    "<D>",
		Lower:    "<L>",
		Upper:    "<U>",
		Alpha:    "<A>",
		AlphaNum: "<AN>",
		Literal:  "literal",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestClassCharSet(t *testing.T) {
	cases := map[Class]string{
		Digit:    "[0-9]",
		Lower:    "[a-z]",
		Upper:    "[A-Z]",
		Alpha:    "[a-zA-Z]",
		AlphaNum: "[a-zA-Z0-9 _-]",
	}
	for c, want := range cases {
		if got := c.CharSet(); got != want {
			t.Errorf("%v.CharSet() = %q, want %q", c, got, want)
		}
	}
}

func TestClassContains(t *testing.T) {
	tests := []struct {
		c   Class
		in  string
		out string
	}{
		{Digit, "0359", "aA -_."},
		{Lower, "az", "AZ09 -."},
		{Upper, "AZ", "az09 -."},
		{Alpha, "azAZ", "09 -._"},
		{AlphaNum, "azAZ09 -_", ".@/()"},
		{Literal, "", "aA0 -."},
	}
	for _, tc := range tests {
		for _, r := range tc.in {
			if !tc.c.Contains(r) {
				t.Errorf("%v.Contains(%q) = false, want true", tc.c, r)
			}
		}
		for _, r := range tc.out {
			if tc.c.Contains(r) {
				t.Errorf("%v.Contains(%q) = true, want false", tc.c, r)
			}
		}
	}
}

func TestGeneralizes(t *testing.T) {
	trues := [][2]Class{
		{Alpha, Lower}, {Alpha, Upper}, {Alpha, Alpha},
		{AlphaNum, Lower}, {AlphaNum, Upper}, {AlphaNum, Digit},
		{AlphaNum, Alpha}, {AlphaNum, AlphaNum},
		{Digit, Digit}, {Lower, Lower}, {Upper, Upper},
	}
	falses := [][2]Class{
		{Lower, Alpha}, {Upper, Alpha}, {Digit, AlphaNum},
		{Alpha, Digit}, {Alpha, AlphaNum}, {Lower, Upper},
		{Digit, Lower},
	}
	for _, p := range trues {
		if !p[0].Generalizes(p[1]) {
			t.Errorf("%v.Generalizes(%v) = false, want true", p[0], p[1])
		}
	}
	for _, p := range falses {
		if p[0].Generalizes(p[1]) {
			t.Errorf("%v.Generalizes(%v) = true, want false", p[0], p[1])
		}
	}
}

// Property: Generalizes is consistent with Contains — if c generalizes d,
// every rune in d's charset is in c's charset.
func TestGeneralizesImpliesContains(t *testing.T) {
	classes := []Class{Digit, Lower, Upper, Alpha, AlphaNum}
	for _, c := range classes {
		for _, d := range classes {
			if !c.Generalizes(d) {
				continue
			}
			for r := rune(0); r < 128; r++ {
				if d.Contains(r) && !c.Contains(r) {
					t.Errorf("%v generalizes %v but lacks %q", c, d, r)
				}
			}
		}
	}
}

func TestTokenString(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Base(Digit, 3), "<D>3"},
		{Base(Digit, 1), "<D>"},
		{Base(Lower, Plus), "<L>+"},
		{Lit("@"), "'@'"},
		{Lit("Dr."), "'Dr.'"},
		{Token{Class: Literal, Lit: "ab", Quant: 2}, "'ab'2"},
		{Token{Class: Literal, Lit: "-", Quant: Plus}, "'-'+"},
	}
	for _, tc := range tests {
		if got := tc.tok.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.tok, got, tc.want)
		}
	}
}

func TestSyntacticallySimilar(t *testing.T) {
	tests := []struct {
		a, b Token
		want bool
	}{
		{Base(Digit, 3), Base(Digit, 3), true},
		{Base(Digit, 3), Base(Digit, Plus), true},
		{Base(Digit, Plus), Base(Digit, 3), true},
		{Base(Digit, Plus), Base(Digit, Plus), true},
		{Base(Digit, 3), Base(Digit, 4), false},
		{Base(Digit, 3), Base(Lower, 3), false},
		{Lit("-"), Lit("-"), true},
		{Lit("-"), Lit("."), false},
		{Lit("-"), Base(Digit, 1), false},
	}
	for _, tc := range tests {
		if got := SyntacticallySimilar(tc.a, tc.b); got != tc.want {
			t.Errorf("SyntacticallySimilar(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMinLenFixedLen(t *testing.T) {
	tests := []struct {
		tok      Token
		min      int
		fixed    int
		hasFixed bool
	}{
		{Base(Digit, 3), 3, 3, true},
		{Base(Digit, Plus), 1, 0, false},
		{Lit("ab"), 2, 2, true},
		{Token{Class: Literal, Lit: "ab", Quant: 3}, 6, 6, true},
		{Token{Class: Literal, Lit: "ab", Quant: Plus}, 2, 0, false},
	}
	for _, tc := range tests {
		if got := tc.tok.MinLen(); got != tc.min {
			t.Errorf("%v.MinLen() = %d, want %d", tc.tok, got, tc.min)
		}
		f, ok := tc.tok.FixedLen()
		if ok != tc.hasFixed || (ok && f != tc.fixed) {
			t.Errorf("%v.FixedLen() = %d,%v, want %d,%v", tc.tok, f, ok, tc.fixed, tc.hasFixed)
		}
	}
}

func TestExpand(t *testing.T) {
	if got := (Token{Class: Literal, Lit: "ab", Quant: 2}).Expand(); got != "abab" {
		t.Errorf("Expand() = %q, want %q", got, "abab")
	}
	defer func() {
		if recover() == nil {
			t.Error("Expand on base token did not panic")
		}
	}()
	Base(Digit, 2).Expand()
}

func TestEscapeRegex(t *testing.T) {
	tests := map[string]string{
		"abc":    "abc",
		"(a)":    `\(a\)`,
		".+*?":   `\.\+\*\?`,
		"a|b":    `a\|b`,
		"[x]{2}": `\[x\]\{2\}`,
		`\`:      `\\`,
		"^$":     `\^\$`,
	}
	for in, want := range tests {
		if got := EscapeRegex(in); got != want {
			t.Errorf("EscapeRegex(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenRegex(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Base(Digit, 3), "[0-9]{3}"},
		{Base(Digit, 1), "[0-9]"},
		{Base(Lower, Plus), "[a-z]+"},
		{Lit("("), `\(`},
		{Lit("Dr."), `(?:Dr\.)`},
		{Token{Class: Literal, Lit: "ab", Quant: 2}, `(?:ab){2}`},
	}
	for _, tc := range tests {
		if got := tc.tok.Regex(); got != tc.want {
			t.Errorf("%v.Regex() = %q, want %q", tc.tok, got, tc.want)
		}
	}
}

func TestTokenNLRegex(t *testing.T) {
	tests := []struct {
		tok  Token
		want string
	}{
		{Base(Digit, 3), "{digit}{3}"},
		{Base(Upper, 1), "{upper}"},
		{Base(AlphaNum, Plus), "{alnum}+"},
		{Lit("-"), `\-`},
	}
	for _, tc := range tests {
		if got := tc.tok.NLRegex(); got != tc.want {
			t.Errorf("%v.NLRegex() = %q, want %q", tc.tok, got, tc.want)
		}
	}
}

// Property: escaping never changes the unescaped character content.
func TestEscapeRegexPreservesContent(t *testing.T) {
	f := func(s string) bool {
		esc := EscapeRegex(s)
		return strings.ReplaceAll(esc, `\`, "") ==
			strings.ReplaceAll(s, `\`, "")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Base(Literal)": func() { Base(Literal, 1) },
		"Lit empty":     func() { Lit("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
