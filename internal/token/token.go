// Package token defines the token classes and quantified tokens that make up
// CLX data patterns (paper §3.1, Table 2).
//
// A pattern is a sequence of tokens; each token is either a base token (a
// character-class token such as digit or lower) or a literal token carrying a
// constant string value. Every token has a quantifier: a natural number, or
// Plus meaning "one or more occurrences".
package token

import (
	"fmt"
	"strings"
)

// Class identifies a token class. Literal denotes a constant-value token; the
// remaining classes are the five base token classes of Table 2.
type Class uint8

const (
	// Literal is a token with a constant string value, e.g. '@' or 'Dr.'.
	Literal Class = iota
	// Digit is [0-9], notated <D>.
	Digit
	// Lower is [a-z], notated <L>.
	Lower
	// Upper is [A-Z], notated <U>.
	Upper
	// Alpha is [a-zA-Z], notated <A>.
	Alpha
	// AlphaNum is [a-zA-Z0-9 _-], notated <AN>.
	AlphaNum
)

// BaseClasses lists the five base token classes in the order used by the
// validate frequency count (paper Eq. 1–2).
var BaseClasses = [...]Class{Digit, Lower, Upper, Alpha, AlphaNum}

// Plus is the quantifier value meaning "one or more occurrences" ('+').
const Plus = -1

// String returns the notation of the class as used in the paper, e.g. "<D>".
func (c Class) String() string {
	switch c {
	case Literal:
		return "literal"
	case Digit:
		return "<D>"
	case Lower:
		return "<L>"
	case Upper:
		return "<U>"
	case Alpha:
		return "<A>"
	case AlphaNum:
		return "<AN>"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// NLName returns the natural-language token name used in Wrangler-style
// regexps (paper Fig. 4), e.g. "digit".
func (c Class) NLName() string {
	switch c {
	case Digit:
		return "digit"
	case Lower:
		return "lower"
	case Upper:
		return "upper"
	case Alpha:
		return "alpha"
	case AlphaNum:
		return "alnum"
	}
	return "literal"
}

// CharSet returns the regular-expression character set of the class
// (Table 2), e.g. "[0-9]" for Digit.
func (c Class) CharSet() string {
	switch c {
	case Digit:
		return "[0-9]"
	case Lower:
		return "[a-z]"
	case Upper:
		return "[A-Z]"
	case Alpha:
		return "[a-zA-Z]"
	case AlphaNum:
		return "[a-zA-Z0-9 _-]"
	}
	return ""
}

// Contains reports whether r belongs to the class's character set. It is
// false for Literal, which matches by exact value rather than by class.
func (c Class) Contains(r rune) bool {
	switch c {
	case Digit:
		return r >= '0' && r <= '9'
	case Lower:
		return r >= 'a' && r <= 'z'
	case Upper:
		return r >= 'A' && r <= 'Z'
	case Alpha:
		return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
	case AlphaNum:
		return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9') || r == ' ' || r == '_' || r == '-'
	}
	return false
}

// Generalizes reports whether class c subsumes class d: every string matching
// d also matches c. A class generalizes itself.
func (c Class) Generalizes(d Class) bool {
	if c == d {
		return true
	}
	switch c {
	case Alpha:
		return d == Lower || d == Upper
	case AlphaNum:
		return d == Lower || d == Upper || d == Digit || d == Alpha
	}
	return false
}

// Token is one element of a pattern: a base class or a literal value,
// together with a quantifier.
type Token struct {
	// Class is the token class; Literal means Lit holds the constant value.
	Class Class
	// Lit is the constant value of a Literal token; empty for base tokens.
	Lit string
	// Quant is the quantifier: a natural number >= 1, or Plus ('+').
	// For base tokens it counts characters; for literal tokens it counts
	// repetitions of Lit (almost always 1).
	Quant int
}

// Base constructs a base token of class c with quantifier q (a natural
// number, or Plus).
func Base(c Class, q int) Token {
	if c == Literal {
		panic("token.Base: class must not be Literal")
	}
	return Token{Class: c, Quant: q}
}

// Lit constructs a literal token with constant value s (quantifier 1).
func Lit(s string) Token {
	if s == "" {
		panic("token.Lit: empty literal")
	}
	return Token{Class: Literal, Lit: s, Quant: 1}
}

// IsLiteral reports whether the token is a literal (constant-value) token.
func (t Token) IsLiteral() bool { return t.Class == Literal }

// IsPlus reports whether the token's quantifier is '+'.
func (t Token) IsPlus() bool { return t.Quant == Plus }

// String renders the token in the paper's compact notation: "<D>3", "<L>+",
// or a quoted literal like "'@'". Quote and backslash characters inside a
// literal are backslash-escaped so the rendering always parses back.
func (t Token) String() string {
	if t.IsLiteral() {
		body := strings.ReplaceAll(t.Lit, `\`, `\\`)
		body = strings.ReplaceAll(body, `'`, `\'`)
		s := "'" + body + "'"
		if t.Quant == Plus {
			return s + "+"
		}
		if t.Quant > 1 {
			return fmt.Sprintf("%s%d", s, t.Quant)
		}
		return s
	}
	if t.Quant == Plus {
		return t.Class.String() + "+"
	}
	if t.Quant == 1 {
		return t.Class.String()
	}
	return fmt.Sprintf("%s%d", t.Class.String(), t.Quant)
}

// MinLen returns the minimum number of characters the token can match.
func (t Token) MinLen() int {
	unit := 1
	if t.IsLiteral() {
		unit = len(t.Lit)
	}
	if t.Quant == Plus {
		return unit
	}
	return unit * t.Quant
}

// FixedLen returns the exact number of characters the token matches and true,
// or 0 and false when the token has a '+' quantifier.
func (t Token) FixedLen() (int, bool) {
	if t.Quant == Plus {
		return 0, false
	}
	if t.IsLiteral() {
		return len(t.Lit) * t.Quant, true
	}
	return t.Quant, true
}

// SyntacticallySimilar implements Definition 6.1: two tokens are
// syntactically similar if they have the same class and their quantifiers are
// identical natural numbers, or at least one of them is '+'. Literal tokens
// are similar only when their constant values are identical.
func SyntacticallySimilar(a, b Token) bool {
	if a.Class != b.Class {
		return false
	}
	if a.IsLiteral() && a.Lit != b.Lit {
		return false
	}
	if a.Quant == b.Quant {
		return true
	}
	return a.Quant == Plus || b.Quant == Plus
}

// CanProduce reports whether extracting the source token src is guaranteed
// to produce a valid instance of the target token tgt.
//
// It differs from Definition 6.1's symmetric similarity in two ways:
//
//   - Soundness: a '+'-quantified source may only produce a '+'-quantified
//     target. Def 6.1 also admits '+' against an exact count, but
//     extracting a three-character digit run into a <D>1 target would
//     break the target pattern — the direction the paper's soundness
//     argument overlooks.
//   - Constants: a fixed literal source token can produce a base target
//     token when its constant content matches it — e.g. Extract of 'CPT'
//     yields a valid <U>+ or <U>3 (supports §4.1 constant discovery).
func CanProduce(src, tgt Token) bool {
	if tgt.IsLiteral() {
		if !src.IsLiteral() || src.Lit != tgt.Lit {
			return false
		}
		// Any repetition count >= 1 matches a '+' target; an exact target
		// needs the same exact count.
		return tgt.Quant == Plus || src.Quant == tgt.Quant
	}
	if !src.IsLiteral() {
		if src.Class != tgt.Class {
			return false
		}
		return tgt.Quant == Plus || src.Quant == tgt.Quant
	}
	// Literal source producing a base target: the constant content must
	// match the target token.
	if src.Quant == Plus {
		if tgt.Quant != Plus {
			return false
		}
		for _, r := range src.Lit {
			if !tgt.Class.Contains(r) {
				return false
			}
		}
		return true
	}
	content := src.Expand()
	if tgt.Quant != Plus && len(content) != tgt.Quant {
		return false
	}
	for _, r := range content {
		if !tgt.Class.Contains(r) {
			return false
		}
	}
	return true
}

// Expand returns the literal text of a literal token with a natural-number
// quantifier (Lit repeated Quant times). It panics on base or '+' tokens.
func (t Token) Expand() string {
	if !t.IsLiteral() || t.Quant == Plus {
		panic("token.Expand: not a fixed literal token")
	}
	return strings.Repeat(t.Lit, t.Quant)
}

// regexMeta are the characters escaped when rendering POSIX-style regexps.
// The hyphen is not a metacharacter outside character classes, but the paper
// escapes it in rendered patterns (Fig. 4), so we do too.
const regexMeta = `\.+*?()|[]{}^$-`

// EscapeRegex escapes regex metacharacters in s for use in a generated
// regular-expression string. Iteration is byte-wise (all metacharacters
// are ASCII) so arbitrary bytes pass through unchanged.
func EscapeRegex(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] < 0x80 && strings.ContainsRune(regexMeta, rune(s[i])) {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Regex renders the token as a fragment of a POSIX-style regular expression,
// e.g. "[0-9]{3}" or "\(".
func (t Token) Regex() string {
	if t.IsLiteral() {
		body := EscapeRegex(t.Lit)
		if len(t.Lit) > 1 {
			body = "(?:" + body + ")"
		}
		return body + quantRegex(t.Quant)
	}
	return t.Class.CharSet() + quantRegex(t.Quant)
}

func quantRegex(q int) string {
	switch {
	case q == Plus:
		return "+"
	case q == 1:
		return ""
	default:
		return fmt.Sprintf("{%d}", q)
	}
}

// NLRegex renders the token in the natural-language-like regexp style used
// by Wrangler and shown to end users (paper Fig. 4), e.g. "{digit}{3}".
func (t Token) NLRegex() string {
	if t.IsLiteral() {
		body := EscapeRegex(t.Lit)
		return body + quantRegex(t.Quant)
	}
	return "{" + t.Class.NLName() + "}" + quantRegex(t.Quant)
}
