// Package sessionstore is the concurrency-safe registry behind clxd's
// /v1/sessions endpoints (ROADMAP item 3): it owns the stateful
// cluster → label → transform → verify → repair loops that outlive a
// single request.
//
// Locking model (DESIGN.md §16). A clx.Session is not goroutine-safe, so
// every session lives inside a Handle with its own sync.Mutex; all use of
// the session — including the synthesis a handler runs between Acquire
// and the release func — happens under that lock. The store itself holds
// only the id → handle map under a sync.RWMutex, and never holds it while
// touching a session, so one slow synthesis cannot stall unrelated
// sessions. Create registers the handle (locked) before running the
// expensive initial profile, holding the store lock only for the map
// insert.
//
// Eviction. Sessions idle for longer than the TTL are evicted by a lazy
// sweep: no background goroutine, the scan piggybacks on Create and
// Acquire at most once per TTL/4 (Sweep may also be called directly).
// The sweep uses TryLock — a session mid-request is by definition not
// idle and is skipped, never blocked on. Deleting and evicting both
// remove the handle from the map first and then mark it evicted under
// its own lock, so an in-flight Acquire that already fetched the handle
// observes the tombstone and reports the session gone. The clock is
// injectable (Config.Now) so eviction is deterministic under test.
//
// Capacity. MaxSessions bounds the live set; Create past the bound
// returns ErrFull and RetryAfter estimates when the next TTL expiry will
// free a slot, which the daemon surfaces as 429 + Retry-After — the same
// admission envelope as stream admission.
package sessionstore

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clx"
	"clx/internal/obs"
)

var (
	// ErrFull reports that the store is at MaxSessions capacity.
	ErrFull = errors.New("sessionstore: session limit reached")
	// ErrNotFound reports that no live session has the requested id.
	ErrNotFound = errors.New("sessionstore: no such session")
)

// Process-wide session metrics, exported on /metrics next to the daemon's
// other clx_* families. Per-store numbers live in Store.Stats; these
// aggregate across stores (one per daemon in production, several in
// tests).
var (
	obsActive = obs.NewGauge("clx_sessions_active",
		"Live interactive sessions.")
	obsCreated = obs.NewCounter("clx_sessions_created_total",
		"Sessions created.")
	obsEvicted = obs.NewCounter("clx_sessions_evicted_total",
		"Sessions evicted by the TTL sweep.")
	obsDeleted = obs.NewCounter("clx_sessions_deleted_total",
		"Sessions deleted explicitly.")
	obsRejected = obs.NewCounter("clx_sessions_rejected_total",
		"Session creations rejected at MaxSessions capacity.")
)

// Config parameterizes a Store.
type Config struct {
	// TTL is the idle lifetime: a session untouched for longer is
	// eligible for eviction. Zero or negative disables eviction.
	TTL time.Duration
	// MaxSessions bounds the live session count; zero or negative means
	// unbounded.
	MaxSessions int
	// Now is the clock, for deterministic eviction under test. Nil means
	// time.Now.
	Now func() time.Time
}

// Counters is a point-in-time snapshot of one store's lifecycle
// counters. Active = Created - Evicted - Deleted always holds (the
// conservation the race test pins).
type Counters struct {
	Active   int64 `json:"active"`
	Created  int64 `json:"created"`
	Evicted  int64 `json:"evicted"`
	Deleted  int64 `json:"deleted"`
	Rejected int64 `json:"rejected"`
}

// Store is a concurrency-safe registry of live sessions.
type Store struct {
	cfg Config

	mu sync.RWMutex
	m  map[string]*Handle

	lastSweep atomic.Int64 // unixnano of the last piggybacked sweep

	created  atomic.Int64
	evicted  atomic.Int64
	deleted  atomic.Int64
	rejected atomic.Int64
}

// Handle is one live session plus the lock serializing access to it.
type Handle struct {
	id      string
	created time.Time

	mu       sync.Mutex // guards sess, tr, meta and evicted
	sess     *clx.Session
	tr       *clx.Transformation
	meta     any
	evicted  bool
	lastUsed atomic.Int64 // unixnano, touched at Acquire and release
}

// ID returns the session id.
func (h *Handle) ID() string { return h.id }

// CreatedAt returns the creation time.
func (h *Handle) CreatedAt() time.Time { return h.created }

// LastUsed returns the time of the last Acquire or release.
func (h *Handle) LastUsed() time.Time { return time.Unix(0, h.lastUsed.Load()) }

// Session returns the wrapped session. Only valid between Acquire and
// its release func (or inside Create's registration), when the caller
// holds the handle lock.
func (h *Handle) Session() *clx.Session { return h.sess }

// Transformation returns the session's current labeled transformation,
// nil before the first label. Same locking contract as Session.
func (h *Handle) Transformation() *clx.Transformation { return h.tr }

// SetTransformation installs the transformation a label produced (the
// repair/commit endpoints act on it). Same locking contract as Session.
func (h *Handle) SetTransformation(tr *clx.Transformation) { h.tr = tr }

// Meta and SetMeta hang an opaque caller attachment off the handle (the
// daemon's repair ledger). Same locking contract as Session; cleared on
// eviction and deletion.
func (h *Handle) Meta() any     { return h.meta }
func (h *Handle) SetMeta(v any) { h.meta = v }

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{cfg: cfg, m: make(map[string]*Handle)}
}

// Create registers a new session over data (the initial profile runs
// before Create returns, outside the store lock). A non-empty id pins
// the session id — the routing proxy mints ids so that rendezvous
// routing of later requests lands on the node that holds the session —
// otherwise one is generated. Returns ErrFull at capacity.
func (st *Store) Create(id string, data []string, opts clx.Options) (*Handle, error) {
	st.maybeSweep()
	if id == "" {
		id = "s-" + obs.NewRequestID()
	}
	now := st.cfg.Now()
	h := &Handle{id: id, created: now}
	h.lastUsed.Store(now.UnixNano())
	h.mu.Lock()

	st.mu.Lock()
	if st.cfg.MaxSessions > 0 && len(st.m) >= st.cfg.MaxSessions {
		st.mu.Unlock()
		st.rejected.Add(1)
		obsRejected.Inc()
		return nil, ErrFull
	}
	if _, dup := st.m[id]; dup {
		st.mu.Unlock()
		return nil, errors.New("sessionstore: duplicate session id " + id)
	}
	st.m[id] = h
	st.mu.Unlock()
	st.created.Add(1)
	obsCreated.Inc()
	obsActive.Add(1)

	// The slot is claimed; run the expensive initial profile holding only
	// the session lock. Concurrent Acquires of this id queue behind it.
	h.sess = clx.NewSession(data, opts)
	h.touch(st.cfg.Now())
	h.mu.Unlock()
	return h, nil
}

// Acquire locks the session id for exclusive use and returns the handle
// plus the release func the caller must run when done (it re-stamps the
// idle clock). Returns ErrNotFound for unknown or evicted ids.
func (st *Store) Acquire(id string) (*Handle, func(), error) {
	st.maybeSweep()
	st.mu.RLock()
	h := st.m[id]
	st.mu.RUnlock()
	if h == nil {
		return nil, nil, ErrNotFound
	}
	h.mu.Lock()
	if h.evicted {
		// Lost the race with the sweep or an explicit delete after we
		// fetched the handle.
		h.mu.Unlock()
		return nil, nil, ErrNotFound
	}
	h.touch(st.cfg.Now())
	return h, func() {
		h.touch(st.cfg.Now())
		h.mu.Unlock()
	}, nil
}

// Delete removes the session id, waiting out any in-flight use. Returns
// false if the id is unknown.
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	h := st.m[id]
	delete(st.m, id)
	st.mu.Unlock()
	if h == nil {
		return false
	}
	h.mu.Lock()
	h.evicted = true
	h.sess = nil
	h.tr = nil
	h.meta = nil
	h.mu.Unlock()
	st.deleted.Add(1)
	obsDeleted.Inc()
	obsActive.Add(-1)
	return true
}

// Sweep evicts every idle-expired session whose lock is free (a busy
// session is not idle) and returns how many it evicted. Handlers never
// need to call it — Create and Acquire sweep lazily — but tests drive it
// directly with an injected clock.
func (st *Store) Sweep() int {
	if st.cfg.TTL <= 0 {
		return 0
	}
	cutoff := st.cfg.Now().Add(-st.cfg.TTL).UnixNano()

	st.mu.RLock()
	var expired []*Handle
	for _, h := range st.m {
		if h.lastUsed.Load() <= cutoff {
			expired = append(expired, h)
		}
	}
	st.mu.RUnlock()
	if len(expired) == 0 {
		return 0
	}

	n := 0
	for _, h := range expired {
		if !h.mu.TryLock() {
			continue // in use right now — by definition not idle
		}
		// Re-check under the lock: the use that just released it may have
		// refreshed the idle clock, and a concurrent Delete may have won.
		if h.evicted || h.lastUsed.Load() > cutoff {
			h.mu.Unlock()
			continue
		}
		st.mu.Lock()
		delete(st.m, h.id)
		st.mu.Unlock()
		h.evicted = true
		h.sess = nil
		h.tr = nil
		h.meta = nil
		h.mu.Unlock()
		n++
		st.evicted.Add(1)
		obsEvicted.Inc()
		obsActive.Add(-1)
	}
	return n
}

// maybeSweep runs Sweep at most once per TTL/4, so the scan cost
// amortizes across requests instead of taxing each one.
func (st *Store) maybeSweep() {
	if st.cfg.TTL <= 0 {
		return
	}
	now := st.cfg.Now().UnixNano()
	last := st.lastSweep.Load()
	if now-last < int64(st.cfg.TTL/4) {
		return
	}
	if st.lastSweep.CompareAndSwap(last, now) {
		st.Sweep()
	}
}

// Len returns the live session count.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}

// RetryAfter estimates how long until the TTL frees a slot: the smallest
// remaining idle allowance across live sessions, at least a second. With
// eviction disabled it falls back to a flat second — the client can only
// poll.
func (st *Store) RetryAfter() time.Duration {
	if st.cfg.TTL <= 0 {
		return time.Second
	}
	now := st.cfg.Now().UnixNano()
	min := st.cfg.TTL
	st.mu.RLock()
	for _, h := range st.m {
		if left := st.cfg.TTL - time.Duration(now-h.lastUsed.Load()); left < min {
			min = left
		}
	}
	st.mu.RUnlock()
	if min < time.Second {
		min = time.Second
	}
	return min
}

// Info is one session's listing entry.
type Info struct {
	ID       string    `json:"id"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// List returns the live sessions ordered by id. It reads only handle
// metadata — no session locks — so it never blocks behind a synthesis.
func (st *Store) List() []Info {
	st.mu.RLock()
	out := make([]Info, 0, len(st.m))
	for _, h := range st.m {
		out = append(out, Info{ID: h.id, Created: h.created, LastUsed: h.LastUsed()})
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots this store's lifecycle counters.
func (st *Store) Stats() Counters {
	return Counters{
		Active:   st.created.Load() - st.evicted.Load() - st.deleted.Load(),
		Created:  st.created.Load(),
		Evicted:  st.evicted.Load(),
		Deleted:  st.deleted.Load(),
		Rejected: st.rejected.Load(),
	}
}

func (h *Handle) touch(now time.Time) { h.lastUsed.Store(now.UnixNano()) }
