package sessionstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clx"
)

var rows = []string{"415-555-0100", "(212) 555-0102", "646.555.0103"}

// fakeClock is a mutex-protected injectable clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCreateAcquireDelete(t *testing.T) {
	st := New(Config{})
	h, err := st.Create("", rows, clx.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "" {
		t.Fatal("empty generated id")
	}
	got, release, err := st.Acquire(h.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got != h || got.Session() == nil {
		t.Fatal("Acquire returned a different or empty handle")
	}
	if n := got.Session().ProfileStats().Rows; n != len(rows) {
		t.Errorf("session rows = %d, want %d", n, len(rows))
	}
	release()

	if !st.Delete(h.ID()) {
		t.Error("Delete of live session returned false")
	}
	if st.Delete(h.ID()) {
		t.Error("second Delete returned true")
	}
	if _, _, err := st.Acquire(h.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("Acquire after delete: %v, want ErrNotFound", err)
	}
	if c := st.Stats(); c.Created != 1 || c.Deleted != 1 || c.Active != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPinnedAndDuplicateIDs(t *testing.T) {
	st := New(Config{})
	if _, err := st.Create("s-pinned", rows, clx.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Acquire("s-pinned"); err != nil {
		t.Fatalf("pinned id not acquirable: %v", err)
	}
	if _, err := st.Create("s-pinned", rows, clx.DefaultOptions()); err == nil {
		t.Error("duplicate pinned id accepted")
	}
}

func TestCapacityAndRetryAfter(t *testing.T) {
	clk := newFakeClock()
	st := New(Config{MaxSessions: 2, TTL: 10 * time.Minute, Now: clk.Now})
	for i := 0; i < 2; i++ {
		if _, err := st.Create(fmt.Sprintf("s-%d", i), rows, clx.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Create("s-over", rows, clx.DefaultOptions()); !errors.Is(err, ErrFull) {
		t.Fatalf("create past capacity: %v, want ErrFull", err)
	}
	if c := st.Stats(); c.Rejected != 1 || c.Created != 2 {
		t.Errorf("counters = %+v", c)
	}
	// Both sessions were touched "now": a full TTL must pass before a
	// slot frees.
	if ra := st.RetryAfter(); ra != 10*time.Minute {
		t.Errorf("RetryAfter = %v, want full TTL", ra)
	}
	clk.Advance(9 * time.Minute)
	if ra := st.RetryAfter(); ra != time.Minute {
		t.Errorf("RetryAfter = %v, want 1m", ra)
	}
	clk.Advance(2 * time.Minute) // everything expired: floor at 1s
	if ra := st.RetryAfter(); ra != time.Second {
		t.Errorf("RetryAfter = %v, want 1s floor", ra)
	}
	// The lazy sweep on Create now frees both expired slots.
	if _, err := st.Create("s-after", rows, clx.DefaultOptions()); err != nil {
		t.Fatalf("create after expiry: %v", err)
	}
	if got := st.Len(); got != 1 {
		t.Errorf("Len = %d after sweep+create, want 1", got)
	}
}

// TTL eviction is deterministic under the injected clock: sessions fall
// out exactly when their idle time crosses the TTL, touches reset the
// clock, and a busy (locked) session is never evicted.
func TestTTLEvictionDeterminism(t *testing.T) {
	clk := newFakeClock()
	st := New(Config{TTL: time.Hour, Now: clk.Now})

	a, _ := st.Create("s-a", rows, clx.DefaultOptions())
	clk.Advance(30 * time.Minute)
	b, _ := st.Create("s-b", rows, clx.DefaultOptions())

	if n := st.Sweep(); n != 0 {
		t.Fatalf("sweep before expiry evicted %d", n)
	}

	// 30m later session a is exactly at its TTL (lastUsed <= cutoff),
	// session b is 30m short.
	clk.Advance(30 * time.Minute)
	if n := st.Sweep(); n != 1 {
		t.Fatalf("sweep at a's expiry evicted %d, want 1", n)
	}
	if _, _, err := st.Acquire(a.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted session still acquirable: %v", err)
	}

	// Touching b resets its idle clock: one more hour must pass.
	_, release, err := st.Acquire(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(59 * time.Minute)
	release() // release stamps lastUsed at +59m
	clk.Advance(59 * time.Minute)
	if n := st.Sweep(); n != 0 {
		t.Fatalf("sweep evicted touched session %d short of TTL: %d", 1, n)
	}
	clk.Advance(time.Minute)
	if n := st.Sweep(); n != 1 {
		t.Fatalf("sweep at b's expiry evicted %d, want 1", n)
	}

	// A busy session is skipped even when long expired.
	c, _ := st.Create("s-c", rows, clx.DefaultOptions())
	_, release, err = st.Acquire(c.ID())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Hour)
	if n := st.Sweep(); n != 0 {
		t.Fatalf("sweep evicted an in-use session: %d", n)
	}
	release() // refreshes the idle clock
	if n := st.Sweep(); n != 0 {
		t.Fatalf("sweep right after release evicted %d", n)
	}
	clk.Advance(2 * time.Hour)
	if n := st.Sweep(); n != 1 {
		t.Fatalf("sweep after release+TTL evicted %d, want 1", n)
	}

	if cts := st.Stats(); cts.Created != 3 || cts.Evicted != 3 || cts.Active != 0 {
		t.Errorf("counters = %+v", cts)
	}
}

// The race exercise: parallel create/append/label/repair/delete plus a
// hostile sweeper on one store, run under -race by make gate. At the end
// the active gauge must conserve exactly: created - evicted - deleted ==
// live == Len().
func TestConcurrentSessions(t *testing.T) {
	clk := newFakeClock()
	st := New(Config{TTL: time.Hour, MaxSessions: 64, Now: clk.Now})

	const workers = 8
	const opsPerWorker = 30
	var wg sync.WaitGroup
	var acquireMisses atomic.Int64

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("s-w%d", w)
			if _, err := st.Create(id, rows, clx.DefaultOptions()); err != nil {
				t.Errorf("worker %d create: %v", w, err)
				return
			}
			for i := 0; i < opsPerWorker; i++ {
				h, release, err := st.Acquire(id)
				if err != nil {
					// Sweeper or a neighbor's delete beat us; recreate.
					acquireMisses.Add(1)
					if _, err := st.Create(id, rows, clx.DefaultOptions()); err != nil {
						t.Errorf("worker %d recreate: %v", w, err)
						return
					}
					continue
				}
				sess := h.Session()
				switch i % 4 {
				case 0:
					sess.AppendAndReprofile([]string{fmt.Sprintf("917-555-%04d", i)})
				case 1:
					sess.AppendAndReprofile(nil)
				case 2:
					tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
					if err == nil && len(tr.Sources()) > 0 {
						_ = tr.RepairCandidates(0)
					}
				case 3:
					if i%8 == 3 {
						release()
						st.Delete(id)
						if _, err := st.Create(id, rows, clx.DefaultOptions()); err != nil {
							t.Errorf("worker %d recreate after delete: %v", w, err)
							return
						}
						continue
					}
					sess.ProfileStats()
				}
				release()
			}
		}()
	}

	// Hostile sweeper advancing the clock past the TTL.
	stop := make(chan struct{})
	var sweeperWG sync.WaitGroup
	sweeperWG.Add(1)
	go func() {
		defer sweeperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(2 * time.Hour)
				st.Sweep()
			}
		}
	}()

	wg.Wait()
	close(stop)
	sweeperWG.Wait()

	c := st.Stats()
	live := int64(st.Len())
	if c.Created-c.Evicted-c.Deleted != live {
		t.Errorf("gauge conservation violated: created %d - evicted %d - deleted %d != live %d (misses %d)",
			c.Created, c.Evicted, c.Deleted, live, acquireMisses.Load())
	}
	if c.Active != live {
		t.Errorf("Stats().Active = %d, Len = %d", c.Active, live)
	}
}

func TestListAndLen(t *testing.T) {
	st := New(Config{})
	for _, id := range []string{"s-b", "s-a", "s-c"} {
		if _, err := st.Create(id, rows, clx.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	infos := st.List()
	if len(infos) != 3 || st.Len() != 3 {
		t.Fatalf("List = %d entries, Len = %d", len(infos), st.Len())
	}
	for i, want := range []string{"s-a", "s-b", "s-c"} {
		if infos[i].ID != want {
			t.Errorf("List[%d] = %s, want %s", i, infos[i].ID, want)
		}
	}
}
