// Package obs is the daemon's observability core: process-wide metrics
// (atomic counters, gauges, fixed-bucket latency histograms) with a
// Prometheus text-format exporter, request-ID tracing over context, and a
// structured request logger. Every hot path in the system — the
// profile/synthesize/transform pipeline, the streaming bulk-apply engine,
// the compiled-matcher cache, the registry WAL — reports here, and clxd
// serves the result at GET /metrics.
//
// The package is deliberately dependency-free (stdlib only): the paper's
// verifiability claim extends to operations — an operator must be able to
// audit exactly what a metric means by reading this one file — and the
// repo's build contract forbids new modules. The exporter emits the
// Prometheus text exposition format, which every scraper in that ecosystem
// already speaks, so no client library is needed on either side.
//
// Metrics are registered once at package init of the instrumented package
// (NewCounter et al. return the existing metric on re-registration, so
// re-wiring in tests is safe) and are updated with single atomic
// operations; a histogram observation is one atomic add on the matched
// bucket plus two for count and sum. SetEnabled(false) freezes counters
// and histograms — the switch the overhead benchmark (clxbench -exp obs)
// uses to measure the instrumented hot path against the uninstrumented
// one in the same binary. Gauges stay live even when disabled: they track
// paired acquire/release state (in-flight streams) that must not drift.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates counter and histogram mutation. Default on; the overhead
// benchmark flips it to measure the uninstrumented baseline.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns counter/histogram recording on or off, returning the
// previous state. Off is strictly a measurement mode for overhead
// benchmarks: counters stop accumulating, so operational invariants (cache
// conservation, stream totals) hold only across windows where recording
// stayed on.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonic event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op while recording is disabled).
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Tests and benchmarks only — a live counter is
// monotonic by contract.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that goes up and down (in-flight requests, high-water
// marks). Gauge mutation ignores SetEnabled: gauges pair acquires with
// releases, and dropping one side would wedge the value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) Max(n int64) {
	for {
		p := g.v.Load()
		if n <= p || g.v.CompareAndSwap(p, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge (tests and benchmarks).
func (g *Gauge) Reset() { g.v.Store(0) }

// DefBuckets are the default latency histogram bounds, in seconds: 100µs
// to 10s in a coarse 1-2.5-5 progression. They cover everything the system
// times — sub-millisecond chunk applies, tens-of-milliseconds profiles,
// multi-second bulk streams — in 14 buckets, so a histogram costs 17
// atomics of memory and its text exposition stays short.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Buckets are cumulative
// only at export time; an observation touches exactly one bucket counter.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
}

// Observe records one duration (no-op while recording is disabled).
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	s := d.Seconds()
	// Linear scan: bounds are few and the common case lands early.
	placed := false
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Reset zeroes the histogram (tests and benchmarks).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.inf.Store(0)
	h.count.Store(0)
	h.sumNS.Store(0)
}

// metric is one registered series: a kind, a rendered label set, and the
// value writer used by the exporter.
type metric struct {
	labels string // rendered `k="v",...` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups series sharing a metric name; HELP/TYPE are emitted once
// per family.
type family struct {
	name, help, kind string
	series           []*metric
	byLabels         map[string]*metric
}

var registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// renderLabels formats alternating key, value pairs as `k="v",...`.
// Values are escaped per the exposition format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s=%q`, labels[i], v)
	}
	return b.String()
}

// register returns the series for (name, labels), creating family and
// series as needed. Re-registration with the same name and labels returns
// the existing series; a kind conflict panics (programmer error).
func register(name, help, kind string, labels []string) *metric {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.families == nil {
		registry.families = make(map[string]*family)
	}
	f := registry.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*metric)}
		registry.families[name] = f
		registry.order = append(registry.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	ls := renderLabels(labels)
	if m, ok := f.byLabels[ls]; ok {
		return m
	}
	m := &metric{labels: ls}
	f.byLabels[ls] = m
	f.series = append(f.series, m)
	return m
}

// NewCounter registers (or returns) the counter named name. labels are
// alternating key, value pairs rendered as constant series labels.
func NewCounter(name, help string, labels ...string) *Counter {
	m := register(name, help, "counter", labels)
	if m.c == nil {
		m.c = new(Counter)
	}
	return m.c
}

// NewGauge registers (or returns) the gauge named name.
func NewGauge(name, help string, labels ...string) *Gauge {
	m := register(name, help, "gauge", labels)
	if m.g == nil {
		m.g = new(Gauge)
	}
	return m.g
}

// NewHistogram registers (or returns) the histogram named name with the
// given bucket upper bounds in seconds (nil selects DefBuckets). The
// bounds of the first registration win.
func NewHistogram(name, help string, buckets []float64, labels ...string) *Histogram {
	m := register(name, help, "histogram", labels)
	if m.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		m.h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	}
	return m.h
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order.
func WritePrometheus(w io.Writer) error {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, name := range registry.order {
		f := registry.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.series {
			if err := writeSeries(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, m *metric) error {
	wrap := func(extra string) string {
		switch {
		case m.labels == "" && extra == "":
			return ""
		case m.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + m.labels + "}"
		default:
			return "{" + m.labels + "," + extra + "}"
		}
	}
	switch f.kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(""), m.c.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, wrap(""), m.g.Value())
		return err
	case "histogram":
		var cum int64
		for i, b := range m.h.bounds {
			cum += m.h.counts[i].Load()
			le := fmt.Sprintf(`le="%s"`, formatBound(b))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, wrap(le), cum); err != nil {
				return err
			}
		}
		cum += m.h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, wrap(`le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, wrap(""), m.h.Sum().Seconds()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, wrap(""), m.h.Count())
		return err
	}
	return nil
}

// formatBound renders a bucket bound without exponent noise ("0.005", not
// "5e-03"), matching what scrapers expect for le labels.
func formatBound(b float64) string {
	s := fmt.Sprintf("%g", b)
	if strings.ContainsAny(s, "eE") {
		s = strings.TrimRight(fmt.Sprintf("%.10f", b), "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Handler serves the registry in Prometheus text format — clxd mounts it
// at GET /metrics.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w)
	})
}
