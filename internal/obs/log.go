// Structured request logging. One Logger per process, one line per event,
// in either line-oriented JSON (machine ingestion) or a key=value text
// form (humans at a terminal) — the clxd -log-format flag. Every line
// carries the request ID from the context, which is what ties an access
// log entry to the pprof labels of the goroutines that served it.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Logger writes structured log lines. The zero value and the nil pointer
// are both valid no-op loggers, so call sites never guard.
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	// now is the clock; tests pin it for deterministic timestamps.
	now func() time.Time
}

// NewLogger returns a Logger writing to w in the given format: "json" for
// one JSON object per line, anything else (canonically "text") for
// key=value lines.
func NewLogger(w io.Writer, format string) *Logger {
	return &Logger{w: w, json: format == "json", now: time.Now}
}

// Log writes one event: a message plus alternating key, value pairs. The
// request ID in ctx, if any, is attached as request_id. A trailing odd key
// is dropped rather than panicking — logging must never take a request
// down.
func (l *Logger) Log(ctx context.Context, msg string, kv ...any) {
	if l == nil || l.w == nil {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	rid := RequestIDFrom(ctx)
	n := len(kv) - len(kv)%2

	var line []byte
	if l.json {
		var b strings.Builder
		b.WriteString(`{"ts":`)
		b.Write(mustJSON(ts))
		b.WriteString(`,"msg":`)
		b.Write(mustJSON(msg))
		if rid != "" {
			b.WriteString(`,"request_id":`)
			b.Write(mustJSON(rid))
		}
		for i := 0; i < n; i += 2 {
			b.WriteByte(',')
			b.Write(mustJSON(fmt.Sprint(kv[i])))
			b.WriteByte(':')
			b.Write(mustJSON(kv[i+1]))
		}
		b.WriteString("}\n")
		line = []byte(b.String())
	} else {
		var b strings.Builder
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(msg)
		if rid != "" {
			fmt.Fprintf(&b, " request_id=%s", rid)
		}
		for i := 0; i < n; i += 2 {
			fmt.Fprintf(&b, " %v=%s", kv[i], textValue(kv[i+1]))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(line)
}

// mustJSON marshals v, falling back to its fmt rendering — a log line must
// always be produced.
func mustJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprint(v))
	}
	return raw
}

// textValue renders one value for the text format, quoting strings that
// contain spaces.
func textValue(v any) string {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
