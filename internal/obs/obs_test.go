package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter("test_events_total", "test counter")
	c.Reset()
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Re-registration returns the same series.
	if again := NewCounter("test_events_total", "test counter"); again != c {
		t.Error("re-registration allocated a new counter")
	}

	g := NewGauge("test_inflight", "test gauge")
	g.Reset()
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Max(10)
	g.Max(4) // lower: ignored
	if g.Value() != 10 {
		t.Fatalf("gauge after Max = %d, want 10", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge after Set = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_latency_seconds", "test histogram", []float64{0.001, 0.01, 0.1})
	h.Reset()
	h.Observe(500 * time.Microsecond) // -> 0.001
	h.Observe(2 * time.Millisecond)   // -> 0.01
	h.Observe(3 * time.Millisecond)   // -> 0.01
	h.Observe(time.Second)            // -> +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	wantSum := 500*time.Microsecond + 5*time.Millisecond + time.Second
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}

	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_latency_seconds test histogram",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.001"} 1`,
		`test_latency_seconds_bucket{le="0.01"} 3`, // cumulative
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		"test_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeriesShareOneFamily(t *testing.T) {
	a := NewCounter("test_stage_total", "per-stage counter", "stage", "profile")
	b := NewCounter("test_stage_total", "per-stage counter", "stage", "synthesize")
	if a == b {
		t.Fatal("distinct label sets must be distinct series")
	}
	a.Reset()
	b.Reset()
	a.Add(2)
	b.Add(5)

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE test_stage_total counter") != 1 {
		t.Errorf("TYPE emitted more than once per family:\n%s", out)
	}
	for _, want := range []string{
		`test_stage_total{stage="profile"} 2`,
		`test_stage_total{stage="synthesize"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSetEnabledFreezesCountersNotGauges(t *testing.T) {
	c := NewCounter("test_frozen_total", "freeze test")
	h := NewHistogram("test_frozen_seconds", "freeze test", nil)
	g := NewGauge("test_frozen_gauge", "freeze test")
	c.Reset()
	h.Reset()
	g.Reset()

	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	h.Observe(time.Millisecond)
	g.Add(1)
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled recording still counted: counter=%d hist=%d", c.Value(), h.Count())
	}
	if g.Value() != 1 {
		t.Errorf("gauge must stay live when disabled, got %d", g.Value())
	}
	SetEnabled(true)
	c.Inc()
	h.Observe(time.Millisecond)
	if c.Value() != 1 || h.Count() != 1 {
		t.Errorf("re-enabled recording dropped events: counter=%d hist=%d", c.Value(), h.Count())
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	NewCounter("test_handler_total", "handler test").Inc()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_handler_total") {
		t.Errorf("handler output missing series:\n%s", rec.Body.String())
	}
}

func TestConcurrentMutation(t *testing.T) {
	c := NewCounter("test_concurrent_total", "race test")
	h := NewHistogram("test_concurrent_seconds", "race test", nil)
	c.Reset()
	h.Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("request IDs collide: %s", a)
	}
	if !strings.Contains(a, "-") {
		t.Errorf("request ID %q lacks the procid-seq shape", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Errorf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty context yielded %q", got)
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "json")
	l.now = func() time.Time { return time.Unix(1700000000, 0) }
	ctx := WithRequestID(context.Background(), "abc-000001")
	l.Log(ctx, "request", "method", "GET", "status", 200, "duration_ms", 1.5)

	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("log line is not JSON: %q: %v", buf.String(), err)
	}
	if doc["msg"] != "request" || doc["request_id"] != "abc-000001" ||
		doc["method"] != "GET" || doc["status"] != float64(200) {
		t.Errorf("log doc = %v", doc)
	}
	if _, ok := doc["ts"]; !ok {
		t.Error("log line missing ts")
	}
}

func TestLoggerText(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "text")
	ctx := WithRequestID(context.Background(), "abc-000002")
	l.Log(ctx, "request", "path", "/v1/stats", "note", "two words")
	line := buf.String()
	for _, want := range []string{"request", "request_id=abc-000002", "path=/v1/stats", `note="two words"`} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q: %q", want, line)
		}
	}
	// Odd trailing key is dropped, not a panic.
	buf.Reset()
	l.Log(context.Background(), "odd", "dangling")
	if !strings.Contains(buf.String(), "odd") || strings.Contains(buf.String(), "dangling") {
		t.Errorf("odd kv handling: %q", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Log(context.Background(), "nothing") // must not panic
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{0.0001: "0.0001", 0.25: "0.25", 1: "1", 10: "10", 0.00025: "0.00025"}
	for in, want := range cases {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
	}
}
