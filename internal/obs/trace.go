// Request tracing: a request ID minted once per clxd request and carried
// through context to structured logs and pprof goroutine labels, so one
// slow request can be followed from access log to CPU profile to the
// worker goroutines it fanned out.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// procID distinguishes processes in aggregated logs: request IDs are
// "procid-seq", unique per process lifetime and unlikely to collide across
// restarts.
var procID = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var reqSeq atomic.Int64

// NewRequestID mints a process-unique request ID ("3fa9c1d2-000017").
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", procID, reqSeq.Add(1))
}

// ctxKey is the private context key type for request IDs.
type ctxKey struct{}

// WithRequestID returns ctx carrying id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "" when there is
// none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
