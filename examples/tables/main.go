// Unifying heterogeneous tables: the second CLX instantiation (paper §9).
// Three organizations keep the same contact list with different column
// orders, header spellings, and phone formats; CLX clusters the tables,
// the user labels org-a's layout as the standard, and the others are
// converted — including a synthesized string transformation for the phone
// column.
//
//	go run ./examples/tables
package main

import (
	"fmt"
	"strings"

	"clx/tables"
)

func main() {
	all := []tables.Table{
		{
			Name:    "org-a",
			Headers: []string{"Name", "Phone", "City"},
			Rows: [][]string{
				{"Eran Yahav", "734-645-8397", "Ann Arbor"},
				{"Kate Fisher", "313-263-1192", "Detroit"},
			},
		},
		{
			Name:    "org-b",
			Headers: []string{"phone", "name", "city"},
			Rows: [][]string{
				{"(734) 645-0001", "Rosa Cole", "Lansing"},
				{"(517) 555-2222", "Omar Sy", "Flint"},
			},
		},
		{
			Name:    "org-c",
			Headers: []string{"Name", "City", "Phone "},
			Rows: [][]string{
				{"Max Koch", "Novi", "734.555.1234"},
				{"Ada Diaz", "Troy", "248.555.8888"},
			},
		},
		{
			Name:    "warehouse",
			Headers: []string{"sku", "qty"},
			Rows:    [][]string{{"A-1", "4"}},
		},
	}

	// Cluster: which tables store the same information?
	groups := tables.Cluster(all)
	fmt.Println("table groups:")
	for _, g := range groups {
		names := make([]string, len(g))
		for i, idx := range g {
			names[i] = all[idx].Name
		}
		fmt.Printf("  %s\n", strings.Join(names, ", "))
	}

	// Label org-a as the standard and transform its group.
	group := make([]tables.Table, 0, len(groups[0]))
	for _, idx := range groups[0] {
		group = append(group, all[idx])
	}
	unified, maps, err := tables.Unify(group, 0)
	if err != nil {
		panic(err)
	}

	fmt.Println("\nunified tables (org-a layout):")
	for i, t := range unified {
		fmt.Printf("  %s:\n", t.Name)
		for _, row := range t.Rows {
			fmt.Printf("    %v\n", row)
		}
		for _, cm := range maps[i].Columns {
			if cm.Transform != nil {
				fmt.Printf("    column %q reformatted via synthesized CLX program\n",
					t.Headers[cm.Dst])
			}
		}
	}
}
