// Medical billing codes: the paper's Example 5 (BlinkFill's "Example 3").
// Messy CPT codes are normalized into the bracketed form "[CPT-XXXX]".
// The target is labeled at hierarchy level 1 — a '+'-quantified pattern
// covering codes of any length.
//
//	go run ./examples/medicalcodes
package main

import (
	"fmt"

	clx "clx"
)

func main() {
	column := []string{
		"CPT-00350",
		"[CPT-00340",
		"[CPT-11536]",
		"CPT115",
		"CPT-20110",
		"[CPT-33417",
		"CPT909",
	}

	sess := clx.NewSession(column)

	// The hierarchy groups the leaf patterns into progressively more
	// generic levels; level 1 turns exact counts into '+'.
	fmt.Println("pattern hierarchy:")
	for level := sess.Levels() - 1; level >= 0; level-- {
		fmt.Printf("  level %d:\n", level)
		for _, c := range sess.Level(level) {
			fmt.Printf("    %-28s %d rows\n", c.Pattern, c.Count)
		}
	}

	// Label with the desired "[CPT-XXXX]" shape.
	tr, err := sess.Label(clx.MustParsePattern("'['<U>+'-'<D>+']'"))
	if err != nil {
		panic(err)
	}
	fmt.Println("\nsuggested transformation:")
	fmt.Print(tr.Explain())

	out, flagged := tr.Run()
	fmt.Println("\nresult:")
	for i, s := range out {
		fmt.Printf("  %-12s -> %s\n", column[i], s)
	}
	if len(flagged) > 0 {
		fmt.Println("flagged rows:", flagged)
	}
}
