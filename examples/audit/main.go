// Audit workflow: using pattern clustering as a data-quality lens on a
// larger, noisy column (331 rows in the shape of the paper's §7.2 Times
// Square Food & Beverage study). CLX transforms only what it can prove
// matches a known format; everything else is flagged for review rather
// than silently mangled — the flag-don't-touch behaviour of §6.1.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"math/rand"

	clx "clx"
)

// messyPhones synthesizes the study column: six real-world phone formats
// in skewed proportions plus a few noise records.
func messyPhones() []string {
	r := rand.New(rand.NewSource(42))
	digits := func() (a, b, c string) {
		n := func(k int) string {
			s := ""
			for i := 0; i < k; i++ {
				s += string(byte('0' + r.Intn(10)))
			}
			return s
		}
		return n(3), n(3), n(4)
	}
	var rows []string
	add := func(count int, f func(a, b, c string) string) {
		for i := 0; i < count; i++ {
			a, b, c := digits()
			rows = append(rows, f(a, b, c))
		}
	}
	add(112, func(a, b, c string) string { return "(" + a + ") " + b + "-" + c })
	add(89, func(a, b, c string) string { return a + "-" + b + "-" + c })
	add(52, func(a, b, c string) string { return a + "." + b + "." + c })
	add(38, func(a, b, c string) string { return "(" + a + ")" + b + "-" + c })
	add(24, func(a, b, c string) string { return a + " " + b + " " + c })
	add(12, func(a, b, c string) string { return "+1 " + a + "-" + b + "-" + c })
	rows = append(rows, "N/A", "N/A", "call front desk", "unknown")
	r.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	return rows
}

func main() {
	column := messyPhones()
	sess := clx.NewSession(column)

	fmt.Printf("audit of %d rows — format inventory:\n", len(column))
	for _, c := range sess.Clusters() {
		fmt.Printf("  %6.1f%%  %-30s e.g. %q\n",
			100*float64(c.Count)/float64(len(column)), c.Pattern, c.Sample)
	}

	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		panic(err)
	}
	fmt.Println("\nnormalization program:")
	fmt.Print(tr.Explain())

	out, flagged := tr.Run()
	clean := 0
	for i := range out {
		if tr.Target().Matches(out[i]) {
			clean++
		}
	}
	fmt.Printf("\nnormalized %d/%d rows (%.1f%%)\n",
		clean, len(out), 100*float64(clean)/float64(len(out)))
	fmt.Printf("%d rows flagged for manual review:\n", len(flagged))
	seen := map[string]int{}
	for _, i := range flagged {
		seen[column[i]]++
	}
	for v, n := range seen {
		fmt.Printf("  %q × %d\n", v, n)
	}

	// Verify at the pattern level: after the transformation the column
	// should collapse to the target pattern plus the flagged leftovers.
	post := clx.NewSession(out)
	fmt.Println("\npost-transform format inventory:")
	for _, c := range post.Clusters() {
		fmt.Printf("  %6d rows  %s\n", c.Count, c.Pattern)
	}
}
