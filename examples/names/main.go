// Employee names: the paper's Example 6 (FlashFill's "Example 9"), plus a
// demonstration of program repair (§6.4). Heterogeneous name formats are
// normalized to "Last, F."; where the default plan guesses the wrong
// fields, the ranked alternatives contain the right one.
//
//	go run ./examples/names
package main

import (
	"fmt"

	clx "clx"
)

func main() {
	column := []string{
		"Dr. Eran Yahav",
		"Dr. Kathleen Fisher",
		"Dr. Rosa Cole",
		"Fisher, K.",
		"Miller, B.",
		"Oege de Moor",
		"Ana de Luca",
	}

	sess := clx.NewSession(column)
	fmt.Println("discovered patterns:")
	for _, c := range sess.Clusters() {
		fmt.Printf("  %-36s %d rows   e.g. %s\n", c.Pattern, c.Count, c.Sample)
	}

	target := clx.MustParsePattern("<U><L>+','' '<U>'.'")
	tr, err := sess.Label(target)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ndefault transformation:")
	fmt.Print(tr.Explain())

	// Verify at the pattern level: does each source's default plan do the
	// right thing? Inspect the alternatives and repair where needed.
	want := map[string]string{
		"Dr. Eran Yahav": "Yahav, E.",
		"Oege de Moor":   "Moor, O.",
	}
	for i, src := range tr.Sources() {
		alts := tr.Alternatives(i)
		// Find a sample row of this source.
		var sample string
		for _, row := range column {
			if src.Matches(row) {
				sample = row
				break
			}
		}
		expected, known := want[sample]
		if !known {
			continue
		}
		for j, op := range alts {
			if out, ok := op.Apply(sample); ok && out == expected {
				if j > 0 {
					fmt.Printf("\nrepair: source %d (%s) -> alternative %d\n", i, src, j)
					if err := tr.Repair(i, j); err != nil {
						panic(err)
					}
				}
				break
			}
		}
	}

	out, _ := tr.Run()
	fmt.Println("\nresult:")
	for i, s := range out {
		fmt.Printf("  %-22s -> %s\n", column[i], s)
	}
}
