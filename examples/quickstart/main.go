// Quickstart: normalize a messy phone-number column with CLX
// (Cluster–Label–Transform, paper §2).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	clx "clx"
)

func main() {
	column := []string{
		"(734) 645-8397",
		"(734)586-7252",
		"734-422-8073",
		"734.236.3466",
		"(313) 263-1192",
		"248 555 1234",
		"N/A",
	}

	// 1. Cluster: profile the column into pattern clusters. This is what
	// the user verifies — a handful of patterns instead of every record.
	sess := clx.NewSession(column)
	fmt.Println("discovered patterns:")
	for _, c := range sess.Clusters() {
		fmt.Printf("  %-28s %d rows   e.g. %s\n", c.Pattern, c.Count, c.Sample)
	}

	// 2. Label: pick the desired pattern. Here one of the discovered
	// patterns already has the right shape.
	target := clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")
	tr, err := sess.Label(target)
	if err != nil {
		panic(err)
	}

	// 3. Transform: the synthesized program is a set of regexp Replace
	// operations anyone can read and verify.
	fmt.Println("\nsuggested transformation:")
	fmt.Print(tr.Explain())

	out, flagged := tr.Run()
	fmt.Println("\ntransformed column:")
	for i, s := range out {
		marker := ""
		for _, f := range flagged {
			if f == i {
				marker = "   <- left unchanged, flagged for review"
			}
		}
		fmt.Printf("  %s%s\n", s, marker)
	}

	// The program also applies to new data of the known formats...
	newVal, ok := tr.Apply("(917) 555-0100")
	fmt.Printf("\nnew record (917) 555-0100 -> %s (ok=%v)\n", newVal, ok)
	// ...and refuses to guess on formats it has never seen, instead of
	// failing unexpectedly like an opaque PBE program (paper Example 1).
	odd, ok := tr.Apply("+1 724-285-5210")
	fmt.Printf("novel record +1 724-285-5210 -> %s (ok=%v)\n", odd, ok)
}
