package clx_test

import (
	"testing"

	"clx"
)

// Regression: empty appends must be cheap no-ops — no index build, no
// re-profile, no counter movement — returning the current stats.
func TestEmptyAppendNoOpCounters(t *testing.T) {
	sess := clx.NewSession([]string{"415-555-0100", "415-555-0101", "(212) 555-0102"})
	want := sess.ProfileStats()
	gen := sess.Generation()

	before := clx.ProfileIndexStats()
	for _, rows := range [][]string{nil, {}} {
		if got := sess.AppendAndReprofile(rows); got != want {
			t.Errorf("AppendAndReprofile(%v) = %+v, want current stats %+v", rows, got, want)
		}
	}
	after := clx.ProfileIndexStats()

	if before != after {
		t.Errorf("empty append moved profile counters: before %+v, after %+v", before, after)
	}
	if sess.Generation() != gen {
		t.Errorf("empty append bumped generation: %d -> %d", gen, sess.Generation())
	}
	if got := sess.ProfileStats(); got != want {
		t.Errorf("session stats changed: %+v -> %+v", want, got)
	}
}

// Regression: the session owns its column. Mutating the caller's input
// slice after NewSession, or the slice Data returns, must not reach
// session-internal state.
func TestSessionDataAliasing(t *testing.T) {
	input := []string{"a1", "b2", "c3"}
	sess := clx.NewSession(input)

	input[0] = "MUTATED"
	if got := sess.Data()[0]; got != "a1" {
		t.Errorf("caller mutation leaked into session: Data()[0] = %q", got)
	}

	d := sess.Data()
	d[1] = "MUTATED"
	if got := sess.Data()[1]; got != "b2" {
		t.Errorf("mutation of Data() result leaked into session: Data()[1] = %q", got)
	}

	sess.AppendAndReprofile([]string{"d4"})
	got := sess.Data()
	if len(got) != 4 || got[3] != "d4" {
		t.Errorf("Data() after append = %v, want 4 rows ending in d4", got)
	}
	if got[0] != "a1" || got[1] != "b2" {
		t.Errorf("Data() after append lost earlier protection: %v", got)
	}
}

// Regression: a transformation synthesized before an append must report
// itself stale instead of silently operating on the old snapshot.
func TestTransformationStaleness(t *testing.T) {
	sess := clx.NewSession([]string{"415-555-0100", "(212) 555-0102", "646.555.0103"})
	target := clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")

	tr, err := sess.Label(target)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stale() {
		t.Error("fresh transformation reports stale")
	}
	if tr.Generation() != sess.Generation() {
		t.Errorf("generation mismatch on fresh label: tr %d, sess %d", tr.Generation(), sess.Generation())
	}

	sess.AppendAndReprofile(nil)
	if tr.Stale() {
		t.Error("empty append marked transformation stale")
	}

	sess.AppendAndReprofile([]string{"(917) 555-0104"})
	if !tr.Stale() {
		t.Error("transformation not stale after a column-changing append")
	}

	tr2, err := sess.Label(target)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Stale() {
		t.Error("re-labeled transformation reports stale")
	}
	if !tr.Stale() {
		t.Error("old transformation lost staleness after re-label")
	}
}

func TestRepairCandidatesRanking(t *testing.T) {
	data := []string{"31/12/2019", "28/02/2020", "12-31-2019"}
	sess := clx.NewSession(data)
	tr, err := sess.Label(clx.MustParsePattern("<D>2'-'<D>2'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}

	cands := tr.RepairCandidates(0)
	if len(cands) != len(tr.Alternatives(0)) {
		t.Fatalf("candidates = %d, alternatives = %d", len(cands), len(tr.Alternatives(0)))
	}
	if len(cands) < 2 {
		t.Fatalf("candidates = %d, want several", len(cands))
	}

	selected := 0
	for _, c := range cands {
		if c.Selected {
			selected++
			if c.EditDistance != 0 {
				t.Errorf("selected plan has edit distance %d, want 0", c.EditDistance)
			}
			if c.Residual != 0 {
				t.Errorf("selected plan leaves %d residual rows, want 0", c.Residual)
			}
		}
	}
	if selected != 1 {
		t.Errorf("selected candidates = %d, want exactly 1", selected)
	}

	// Best-first under the lexicographic objective order.
	for i := 1; i < len(cands); i++ {
		a, b := cands[i-1], cands[i]
		if a.Residual > b.Residual ||
			(a.Residual == b.Residual && a.EditDistance > b.EditDistance) ||
			(a.Residual == b.Residual && a.EditDistance == b.EditDistance && a.DL > b.DL) {
			t.Errorf("candidates out of order at %d: %+v before %+v", i, a, b)
		}
	}

	// A candidate's (Source, Alt) address must feed straight into Repair:
	// adopt the day/month swap and confirm it takes effect.
	found := -1
	for _, c := range cands {
		if out, ok := c.Op.Apply("31/12/2019"); ok && out == "12-31-2019" {
			found = c.Alt
			if err := tr.Repair(c.Source, c.Alt); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if found < 0 {
		t.Fatal("swap plan not among candidates")
	}
	out, _ := tr.Run()
	if out[0] != "12-31-2019" {
		t.Errorf("after candidate repair out[0] = %q", out[0])
	}

	if tr.RepairCandidates(-1) != nil || tr.RepairCandidates(len(tr.Sources())) != nil {
		t.Error("out-of-range source should return nil candidates")
	}
}
