// Fuzz targets for the engine's parsing and matching hot paths. Run the
// seed corpus as part of `go test`; fuzz longer with e.g.
//
//	go test -fuzz FuzzTokenizeMatches -fuzztime 30s
package clx_test

import (
	"testing"

	"clx/internal/cluster"
	"clx/internal/pattern"
	"clx/internal/synth"
)

// FuzzTokenizeMatches checks the central profiling invariant on arbitrary
// input: every string matches its own derived pattern, the pattern's
// compact rendering parses back, and the NL rendering parses back — all
// three agreeing on the match.
func FuzzTokenizeMatches(f *testing.F) {
	for _, seed := range []string{
		"", "(734) 645-8397", "Bob123@gmail.com", "N/A", "Dr. Eran Yahav",
		"[CPT-115]", "a_b-c d", "++--", "   ", "é漢字", "\x00\xff",
		"12/34/5678", "https://x.y/z",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p := pattern.FromString(s)
		if !p.Matches(s) {
			t.Fatalf("pattern %s does not match its own source %q", p, s)
		}
		rt, err := pattern.Parse(p.String())
		if err != nil {
			t.Fatalf("compact rendering of %q does not parse: %v", s, err)
		}
		if !rt.Equal(p) {
			t.Fatalf("compact round trip changed pattern: %s vs %s", rt, p)
		}
		nl, err := pattern.ParseNL(p.NLRegex())
		if err != nil {
			t.Fatalf("NL rendering %q of %q does not parse: %v", p.NLRegex(), s, err)
		}
		if !nl.Matches(s) {
			t.Fatalf("NL round trip of %q does not match it (pattern %s)", s, nl)
		}
	})
}

// FuzzClusterPartition checks that profiling always partitions arbitrary
// row multisets and that generalization preserves membership.
func FuzzClusterPartition(f *testing.F) {
	f.Add("a\nb\nc")
	f.Add("(734) 645-8397\n734.236.3466\n\nN/A")
	f.Add("x1\nx1\nx1\nx2")
	f.Fuzz(func(t *testing.T, blob string) {
		var data []string
		start := 0
		for i := 0; i <= len(blob); i++ {
			if i == len(blob) || blob[i] == '\n' {
				data = append(data, blob[start:i])
				start = i + 1
			}
		}
		if len(data) > 64 {
			data = data[:64]
		}
		h := cluster.Profile(data, cluster.DefaultOptions())
		seen := make(map[int]bool)
		for _, c := range h.Clusters {
			for _, ri := range c.Rows {
				if seen[ri] {
					t.Fatalf("row %d in two clusters", ri)
				}
				seen[ri] = true
				if !c.Pattern.Matches(data[ri]) {
					t.Fatalf("cluster pattern %s does not match row %q", c.Pattern, data[ri])
				}
			}
		}
		if len(seen) != len(data) {
			t.Fatalf("clusters cover %d rows, want %d", len(seen), len(data))
		}
		for _, root := range h.Roots() {
			for _, leaf := range root.Leaves {
				for _, ri := range leaf.Rows {
					if !root.Pattern.Matches(data[ri]) {
						t.Fatalf("root %s does not cover row %q", root.Pattern, data[ri])
					}
				}
			}
		}
	})
}

// FuzzSynthesisSoundness checks Theorem A.1 end to end on arbitrary pairs:
// whatever program is synthesized, applying it to rows it claims to cover
// yields strings matching the target.
func FuzzSynthesisSoundness(f *testing.F) {
	f.Add("(734) 645-8397\n734.236.3466", "<D>3'-'<D>3'-'<D>4")
	f.Add("CPT115\n[CPT-00340", "'['<U>+'-'<D>+']'")
	f.Add("a b\nc d", "<L>','<L>")
	f.Fuzz(func(t *testing.T, blob, targetSpec string) {
		target, err := pattern.Parse(targetSpec)
		if err != nil || target.IsEmpty() {
			t.Skip()
		}
		var data []string
		start := 0
		for i := 0; i <= len(blob) && len(data) < 32; i++ {
			if i == len(blob) || blob[i] == '\n' {
				data = append(data, blob[start:i])
				start = i + 1
			}
		}
		h := cluster.Profile(data, cluster.DefaultOptions())
		res := synth.Synthesize(h, target, synth.DefaultOptions())
		out, flagged := res.Transform()
		flaggedSet := make(map[int]bool)
		for _, i := range flagged {
			flaggedSet[i] = true
		}
		for i := range data {
			if flaggedSet[i] {
				if out[i] != data[i] {
					t.Fatalf("flagged row %q was modified to %q", data[i], out[i])
				}
				continue
			}
			if !target.Matches(out[i]) {
				t.Fatalf("transformed row %q -> %q does not match target %s",
					data[i], out[i], target)
			}
		}
	})
}

// FuzzNLParse: the display-syntax parser never panics and, when it accepts
// an input, produces a pattern whose own NL rendering parses to an
// equivalent pattern (idempotent round trip).
func FuzzNLParse(f *testing.F) {
	for _, seed := range []string{
		"/^{digit}{3}-{digit}{4}$/", "{upper}{lower}+, {upper}.",
		"[{upper}+-{digit}+]", "{alnum}+@{alnum}+", `\{x\}`, "{digit}{lower}",
		"", "///", "{digit}{999}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := pattern.ParseNL(s)
		if err != nil {
			return
		}
		q, err := pattern.ParseNL(p.NLRegex())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.NLRegex(), s, err)
		}
		// Adjacent raw bytes can merge into one multi-byte literal on
		// re-parse (semantically identical), so compare the flattened
		// forms: merged literal bytes interleaved with base tokens.
		if flatten(q) != flatten(p) {
			t.Fatalf("NL round trip changed pattern: %s vs %s (input %q)", q, p, s)
		}
	})
}

// flatten canonicalizes a pattern for semantic comparison: adjacent fixed
// literal tokens merge, base tokens stay as (class, quant) markers.
func flatten(p pattern.Pattern) string {
	out := ""
	lit := ""
	flush := func() {
		if lit != "" {
			out += "L" + lit + "\x00"
			lit = ""
		}
	}
	for _, tk := range p.Tokens() {
		if tk.IsLiteral() && tk.Quant >= 1 {
			lit += tk.Expand()
			continue
		}
		flush()
		out += tk.String() + "\x00"
	}
	flush()
	return out
}

// FuzzCompactParse: Parse never panics and accepted inputs round-trip
// through String.
func FuzzCompactParse(f *testing.F) {
	for _, seed := range []string{
		"<D>3'-'<D>4", "'['<U>+'-'<D>+']'", "<AN>+", `'\''`, `'\\'`,
		"<D>", "''", "<D>0", "<D>99999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := pattern.Parse(s)
		if err != nil {
			return
		}
		q, err := pattern.Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if !q.Equal(p) {
			t.Fatalf("compact round trip changed pattern: %s vs %s", q, p)
		}
	})
}
