// Fuzz targets for the engine's parsing and matching hot paths. Run the
// seed corpus as part of `go test`; fuzz longer with e.g.
//
//	go test -fuzz FuzzTokenizeMatches -fuzztime 30s
package clx_test

import (
	"io"
	"strings"
	"testing"

	"clx/internal/cluster"
	"clx/internal/pattern"
	"clx/internal/stream"
	"clx/internal/synth"
)

// FuzzTokenizeMatches checks the central profiling invariant on arbitrary
// input: every string matches its own derived pattern, the pattern's
// compact rendering parses back, and the NL rendering parses back — all
// three agreeing on the match.
func FuzzTokenizeMatches(f *testing.F) {
	for _, seed := range []string{
		"", "(734) 645-8397", "Bob123@gmail.com", "N/A", "Dr. Eran Yahav",
		"[CPT-115]", "a_b-c d", "++--", "   ", "é漢字", "\x00\xff",
		"12/34/5678", "https://x.y/z",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p := pattern.FromString(s)
		if !p.Matches(s) {
			t.Fatalf("pattern %s does not match its own source %q", p, s)
		}
		rt, err := pattern.Parse(p.String())
		if err != nil {
			t.Fatalf("compact rendering of %q does not parse: %v", s, err)
		}
		if !rt.Equal(p) {
			t.Fatalf("compact round trip changed pattern: %s vs %s", rt, p)
		}
		nl, err := pattern.ParseNL(p.NLRegex())
		if err != nil {
			t.Fatalf("NL rendering %q of %q does not parse: %v", p.NLRegex(), s, err)
		}
		if !nl.Matches(s) {
			t.Fatalf("NL round trip of %q does not match it (pattern %s)", s, nl)
		}
	})
}

// FuzzClusterPartition checks that profiling always partitions arbitrary
// row multisets and that generalization preserves membership.
func FuzzClusterPartition(f *testing.F) {
	f.Add("a\nb\nc")
	f.Add("(734) 645-8397\n734.236.3466\n\nN/A")
	f.Add("x1\nx1\nx1\nx2")
	f.Fuzz(func(t *testing.T, blob string) {
		var data []string
		start := 0
		for i := 0; i <= len(blob); i++ {
			if i == len(blob) || blob[i] == '\n' {
				data = append(data, blob[start:i])
				start = i + 1
			}
		}
		if len(data) > 64 {
			data = data[:64]
		}
		h := cluster.Profile(data, cluster.DefaultOptions())
		seen := make(map[int]bool)
		for _, c := range h.Clusters {
			for _, ri := range c.Rows {
				if seen[ri] {
					t.Fatalf("row %d in two clusters", ri)
				}
				seen[ri] = true
				if !c.Pattern.Matches(data[ri]) {
					t.Fatalf("cluster pattern %s does not match row %q", c.Pattern, data[ri])
				}
			}
		}
		if len(seen) != len(data) {
			t.Fatalf("clusters cover %d rows, want %d", len(seen), len(data))
		}
		for _, root := range h.Roots() {
			for _, leaf := range root.Leaves {
				for _, ri := range leaf.Rows {
					if !root.Pattern.Matches(data[ri]) {
						t.Fatalf("root %s does not cover row %q", root.Pattern, data[ri])
					}
				}
			}
		}
	})
}

// FuzzSynthesisSoundness checks Theorem A.1 end to end on arbitrary pairs:
// whatever program is synthesized, applying it to rows it claims to cover
// yields strings matching the target.
func FuzzSynthesisSoundness(f *testing.F) {
	f.Add("(734) 645-8397\n734.236.3466", "<D>3'-'<D>3'-'<D>4")
	f.Add("CPT115\n[CPT-00340", "'['<U>+'-'<D>+']'")
	f.Add("a b\nc d", "<L>','<L>")
	f.Fuzz(func(t *testing.T, blob, targetSpec string) {
		target, err := pattern.Parse(targetSpec)
		if err != nil || target.IsEmpty() {
			t.Skip()
		}
		var data []string
		start := 0
		for i := 0; i <= len(blob) && len(data) < 32; i++ {
			if i == len(blob) || blob[i] == '\n' {
				data = append(data, blob[start:i])
				start = i + 1
			}
		}
		h := cluster.Profile(data, cluster.DefaultOptions())
		res := synth.Synthesize(h, target, synth.DefaultOptions())
		out, flagged := res.Transform()
		flaggedSet := make(map[int]bool)
		for _, i := range flagged {
			flaggedSet[i] = true
		}
		for i := range data {
			if flaggedSet[i] {
				if out[i] != data[i] {
					t.Fatalf("flagged row %q was modified to %q", data[i], out[i])
				}
				continue
			}
			if !target.Matches(out[i]) {
				t.Fatalf("transformed row %q -> %q does not match target %s",
					data[i], out[i], target)
			}
		}
	})
}

// FuzzNLParse: the display-syntax parser never panics and, when it accepts
// an input, produces a pattern whose own NL rendering parses to an
// equivalent pattern (idempotent round trip).
func FuzzNLParse(f *testing.F) {
	for _, seed := range []string{
		"/^{digit}{3}-{digit}{4}$/", "{upper}{lower}+, {upper}.",
		"[{upper}+-{digit}+]", "{alnum}+@{alnum}+", `\{x\}`, "{digit}{lower}",
		"", "///", "{digit}{999}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := pattern.ParseNL(s)
		if err != nil {
			return
		}
		q, err := pattern.ParseNL(p.NLRegex())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.NLRegex(), s, err)
		}
		// Adjacent raw bytes can merge into one multi-byte literal on
		// re-parse (semantically identical), so compare the flattened
		// forms: merged literal bytes interleaved with base tokens.
		if flatten(q) != flatten(p) {
			t.Fatalf("NL round trip changed pattern: %s vs %s (input %q)", q, p, s)
		}
	})
}

// flatten canonicalizes a pattern for semantic comparison: adjacent fixed
// literal tokens merge, base tokens stay as (class, quant) markers.
func flatten(p pattern.Pattern) string {
	out := ""
	lit := ""
	flush := func() {
		if lit != "" {
			out += "L" + lit + "\x00"
			lit = ""
		}
	}
	for _, tk := range p.Tokens() {
		if tk.IsLiteral() && tk.Quant >= 1 {
			lit += tk.Expand()
			continue
		}
		flush()
		out += tk.String() + "\x00"
	}
	flush()
	return out
}

// FuzzCompactParse: Parse never panics and accepted inputs round-trip
// through String.
func FuzzCompactParse(f *testing.F) {
	for _, seed := range []string{
		"<D>3'-'<D>4", "'['<U>+'-'<D>+']'", "<AN>+", `'\''`, `'\\'`,
		"<D>", "''", "<D>0", "<D>99999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := pattern.Parse(s)
		if err != nil {
			return
		}
		q, err := pattern.Parse(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), s, err)
		}
		if !q.Equal(p) {
			t.Fatalf("compact round trip changed pattern: %s vs %s", q, p)
		}
	})
}

// chunkedReader returns at most k bytes per Read, forcing records — and
// multi-byte UTF-8 sequences — to split across arbitrary read boundaries.
type chunkedReader struct {
	s string
	i int
	k int
}

func (r *chunkedReader) Read(p []byte) (int, error) {
	if r.i >= len(r.s) {
		return 0, io.EOF
	}
	n := r.k
	if n > len(p) {
		n = len(p)
	}
	if r.i+n > len(r.s) {
		n = len(r.s) - r.i
	}
	copy(p, r.s[r.i:r.i+n])
	r.i += n
	return n, nil
}

// FuzzStreamReader throws arbitrary bytes at the three streaming input
// readers under adversarial read boundaries: no panic ever; the line
// reader agrees with a reference in-memory split (so CRLF/LF mixes, empty
// records and UTF-8 cut mid-rune reassemble identically); NDJSON input the
// reader accepts survives a write∘read round trip.
func FuzzStreamReader(f *testing.F) {
	for _, seed := range []string{
		"", "\n", "\r\n", "a\nb\nc", "a\r\nb\r\n", "last without newline",
		"café 12\n日本語123\n", "mixed\r\nendings\nhere\r\n", "\n\n\n",
		"\"json string\"\n\"with\\nescape\"\n", "not json\n",
		"a,b,c\n\"quoted,comma\",x,y\n", "\"unterminated\nquote", "\xff\xfe\n\x80",
	} {
		f.Add(seed, uint8(1), uint8(1))
		f.Add(seed, uint8(3), uint8(4))
	}
	f.Fuzz(func(t *testing.T, blob string, k, max uint8) {
		readSize := int(k)%16 + 1
		batch := int(max)%8 + 1
		drain := func(r stream.Reader) ([]string, error) {
			var out []string
			for {
				vals, err := r.Next(batch)
				out = append(out, vals...)
				if err != nil {
					return out, err
				}
				if len(out) > len(blob)+8 {
					t.Fatalf("reader emits more values than the input could hold")
				}
			}
		}

		// Line reader: differential against a reference split, for every
		// read-boundary placement.
		wantLines := refLines(blob)
		gotLines, err := drain(stream.NewLineReader(&chunkedReader{s: blob, k: readSize}))
		if err != io.EOF {
			t.Fatalf("line reader error on arbitrary input: %v", err)
		}
		if len(gotLines) != len(wantLines) {
			t.Fatalf("readSize=%d: %d lines, want %d (%q)", readSize, len(gotLines), len(wantLines), blob)
		}
		for i := range wantLines {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("readSize=%d line %d: %q, want %q", readSize, i, gotLines[i], wantLines[i])
			}
		}

		// NDJSON reader: never panics; accepted input round-trips through
		// the encoder byte-compatibly.
		vals, err := drain(stream.NewNDJSONReader(&chunkedReader{s: blob, k: readSize}))
		if err == io.EOF {
			var buf []byte
			for _, v := range vals {
				buf = stream.NDJSONEncoder{}.AppendValue(buf, []byte(v))
			}
			again, err := drain(stream.NewNDJSONReader(&chunkedReader{s: string(buf), k: readSize}))
			if err != io.EOF {
				t.Fatalf("re-read of encoded values failed: %v", err)
			}
			if len(again) != len(vals) {
				t.Fatalf("round trip: %d values, want %d", len(again), len(vals))
			}
			for i := range vals {
				if again[i] != vals[i] {
					t.Fatalf("round trip value %d: %q, want %q", i, again[i], vals[i])
				}
			}
		}

		// CSV reader: malformed quoting and ragged rows must error, never
		// panic, for any column index.
		for _, col := range []int{0, 1} {
			_, _ = drain(stream.NewCSVReader(&chunkedReader{s: blob, k: readSize}, col, col == 1))
		}
	})
}

// refLines is the in-memory reference the streaming line reader must
// reproduce: values separated by '\n', each stripped of one trailing
// '\r', the final value kept when the input does not end in a newline.
func refLines(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, "\n")
	if parts[len(parts)-1] == "" {
		parts = parts[:len(parts)-1]
	}
	for i := range parts {
		parts[i] = strings.TrimSuffix(parts[i], "\r")
	}
	return parts
}
