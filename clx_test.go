package clx_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	clx "clx"
)

var phones = []string{
	"(734) 645-8397",
	"(734)586-7252",
	"734-422-8073",
	"734.236.3466",
	"(313) 263-1192",
	"N/A",
}

func TestSessionClusters(t *testing.T) {
	sess := clx.NewSession(phones)
	cs := sess.Clusters()
	if len(cs) != 5 {
		t.Fatalf("clusters = %d, want 5", len(cs))
	}
	if cs[0].Pattern.String() != "'('<D>3')'' '<D>3'-'<D>4" {
		t.Errorf("cluster 0 = %s", cs[0].Pattern)
	}
	if cs[0].Count != 2 || cs[0].Sample != "(734) 645-8397" {
		t.Errorf("cluster 0 = %+v", cs[0])
	}
	total := 0
	for _, c := range cs {
		total += c.Count
	}
	if total != len(phones) {
		t.Errorf("cluster counts sum to %d, want %d", total, len(phones))
	}
}

func TestSessionProfileStats(t *testing.T) {
	dup := append(append([]string{}, phones...), phones...)
	sess := clx.NewSession(dup)
	st := sess.ProfileStats()
	if st.Rows != len(dup) {
		t.Errorf("Rows = %d, want %d", st.Rows, len(dup))
	}
	if st.DistinctValues != len(phones) {
		t.Errorf("DistinctValues = %d, want %d (each phone appears twice)",
			st.DistinctValues, len(phones))
	}
	if st.LeafPatterns != len(sess.Clusters()) {
		t.Errorf("LeafPatterns = %d, clusters = %d", st.LeafPatterns, len(sess.Clusters()))
	}
}

func TestSessionLevels(t *testing.T) {
	sess := clx.NewSession(phones)
	if sess.Levels() != 4 {
		t.Fatalf("levels = %d", sess.Levels())
	}
	leaves := sess.Level(0)
	if len(leaves) != len(sess.Clusters()) {
		t.Error("level 0 should equal the leaf clusters")
	}
	if got := sess.Level(99); got != nil {
		t.Error("out-of-range level should be nil")
	}
	// Higher levels are no larger than lower ones.
	for l := 1; l < sess.Levels(); l++ {
		if len(sess.Level(l)) > len(sess.Level(l-1)) {
			t.Errorf("level %d larger than level %d", l, l-1)
		}
	}
}

func TestLabelAndRun(t *testing.T) {
	sess := clx.NewSession(phones)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	out, flagged := tr.Run()
	want := []string{
		"734-645-8397", "734-586-7252", "734-422-8073",
		"734-236-3466", "313-263-1192", "N/A",
	}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("out = %v, want %v", out, want)
	}
	if !reflect.DeepEqual(flagged, []int{5}) {
		t.Errorf("flagged = %v, want [5] (the N/A row)", flagged)
	}
	if !reflect.DeepEqual(tr.Unmatched(), []int{5}) {
		t.Errorf("Unmatched = %v", tr.Unmatched())
	}
	if !reflect.DeepEqual(tr.Clean(), []int{2}) {
		t.Errorf("Clean = %v", tr.Clean())
	}
}

func TestExplainIsReadable(t *testing.T) {
	sess := clx.NewSession(phones)
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	text := tr.Explain()
	if !strings.Contains(text, "Replace /^") || !strings.Contains(text, "{digit}{3}") {
		t.Errorf("Explain() = %q", text)
	}
	if len(tr.Sources()) == 0 {
		t.Error("no sources")
	}
	ops := tr.Replaces()
	if len(ops) != len(tr.Sources()) {
		t.Errorf("ops = %d, sources = %d", len(ops), len(tr.Sources()))
	}
}

func TestApplyNewData(t *testing.T) {
	sess := clx.NewSession(phones)
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	out, ok := tr.Apply("(917) 555-0100")
	if !ok || out != "917-555-0100" {
		t.Errorf("Apply = %q, %v", out, ok)
	}
	// Already-clean input stays.
	out, ok = tr.Apply("111-222-3333")
	if !ok || out != "111-222-3333" {
		t.Errorf("Apply clean = %q, %v", out, ok)
	}
	// Unknown format is returned unchanged with ok=false.
	out, ok = tr.Apply("+1 724-285-5210")
	if ok || out != "+1 724-285-5210" {
		t.Errorf("Apply unknown = %q, %v", out, ok)
	}
}

func TestRepair(t *testing.T) {
	data := []string{"31/12/2019", "28/02/2020", "12-31-2019"}
	sess := clx.NewSession(data)
	tr, err := sess.Label(clx.MustParsePattern("<D>2'-'<D>2'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	alts := tr.Alternatives(0)
	if len(alts) < 2 {
		t.Fatalf("alternatives = %d, want several", len(alts))
	}
	// Find the day/month swap among the alternatives and select it.
	found := -1
	for j, op := range alts {
		if out, ok := op.Apply("31/12/2019"); ok && out == "12-31-2019" {
			found = j
			break
		}
	}
	if found < 0 {
		t.Fatal("swap plan not among alternatives")
	}
	if err := tr.Repair(0, found); err != nil {
		t.Fatal(err)
	}
	out, _ := tr.Run()
	if out[0] != "12-31-2019" {
		t.Errorf("after repair out[0] = %q", out[0])
	}
	if tr.Repair(0, 9999) == nil || tr.Repair(99, 0) == nil {
		t.Error("bad repair indices should error")
	}
	if tr.Alternatives(-1) != nil {
		t.Error("Alternatives(-1) should be nil")
	}
}

func TestLabelEmptyTarget(t *testing.T) {
	sess := clx.NewSession(phones)
	if _, err := sess.Label(clx.Pattern{}); err == nil {
		t.Error("empty target should error")
	}
}

func TestPatternHelpers(t *testing.T) {
	p, err := clx.ParsePattern("<D>3'-'<D>4")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches("123-4567") {
		t.Error("parsed pattern does not match")
	}
	if clx.PatternOf("abc-12").String() != "<L>3'-'<D>2" {
		t.Errorf("PatternOf = %s", clx.PatternOf("abc-12"))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParsePattern on garbage did not panic")
		}
	}()
	clx.MustParsePattern("<bogus>")
}

// The package example from the doc comment, kept compiling.
func ExampleNewSession() {
	sess := clx.NewSession([]string{"(734) 645-8397", "734.236.3466", "734-422-8073"})
	tr, _ := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	out, _ := tr.Run()
	fmt.Println(out[0])
	// Output: 734-645-8397
}
