// Integration tests exercising the public API end to end over the full
// benchmark suite and the study dataset — the workflows a downstream user
// would run, kept honest against the internal simulation results.
package clx_test

import (
	"testing"

	clx "clx"
	"clx/internal/benchsuite"
	"clx/internal/dataset"
	"clx/internal/simuser"
)

// Every benchmark task is solvable through the public API by replaying the
// simulated user's choices: select the targets, repair each source to the
// plan the simulation verified, and compare the final column.
func TestPublicAPIReproducesSimulation(t *testing.T) {
	for _, task := range benchsuite.Tasks() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			sim := simuser.SimulateCLX(task.Inputs, task.Outputs, simuser.DefaultOptions())
			sess := clx.NewSession(task.Inputs)

			// Rebuild the simulated user's outcome with public calls: for
			// each selected target, label it and walk the ranked
			// alternatives exactly as the simulation's Steps say is
			// possible.
			got := append([]string(nil), task.Inputs...)
			// Route each dirty row to the first selected target its
			// desired output matches — the same routing the user performs
			// when transforming one format group at a time.
			routed := make([]int, len(task.Inputs))
			for ri := range task.Inputs {
				routed[ri] = -1
				if task.Inputs[ri] == task.Outputs[ri] {
					continue
				}
				for ti, target := range sim.Targets {
					if target.Matches(task.Outputs[ri]) {
						routed[ri] = ti
						break
					}
				}
			}
			for targetIdx, target := range sim.Targets {
				tr, err := sess.Label(target)
				if err != nil {
					t.Fatalf("Label(%s): %v", target, err)
				}
				// For each source, pick the alternative matching ground
				// truth on its routed rows; when none fits, drill into the
				// child patterns (Refine) and retry — the exact repair
				// affordances the UI offers.
				fuel := 64
				for i := 0; i < len(tr.Sources()) && fuel > 0; fuel-- {
					src := tr.Sources()[i]
					best, any := -1, false
					for j, op := range tr.Alternatives(i) {
						ok, hit := true, false
						for ri, in := range task.Inputs {
							if routed[ri] != targetIdx || !src.Matches(in) {
								continue
							}
							out, applied := op.Apply(in)
							if !applied {
								continue
							}
							hit = true
							if out != task.Outputs[ri] {
								ok = false
								break
							}
						}
						if hit {
							any = true
							if ok {
								best = j
								break
							}
						}
					}
					switch {
					case best > 0:
						if err := tr.Repair(i, best); err != nil {
							t.Fatalf("Repair: %v", err)
						}
						i++
					case best < 0 && any:
						// No plan fits the routed rows: drill down.
						if err := tr.Refine(i); err != nil {
							i++ // leaf without a fit: rows stay broken
						}
					default:
						i++
					}
				}
				out, _ := tr.Run()
				for ri := range got {
					// Only this target's rows take this pass's result.
					if routed[ri] != targetIdx {
						continue
					}
					if got[ri] == task.Inputs[ri] && out[ri] != task.Inputs[ri] {
						got[ri] = out[ri]
					}
				}
			}

			// The public API must do at least as well as the simulation on
			// rows the simulation solved.
			for ri := range task.Inputs {
				if sim.Outputs[ri] != task.Outputs[ri] {
					continue // known failure row (designed failure modes)
				}
				if task.Inputs[ri] == task.Outputs[ri] {
					if got[ri] != task.Inputs[ri] {
						t.Errorf("identity row %d mutated: %q -> %q",
							ri, task.Inputs[ri], got[ri])
					}
					continue
				}
				if got[ri] != task.Outputs[ri] {
					t.Errorf("row %d: public API got %q, want %q (sim solved it)",
						ri, got[ri], task.Outputs[ri])
				}
			}
		})
	}
}

// The §7.2 study column round-trips through the public API: after the
// transformation the column collapses to the target pattern plus flagged
// noise.
func TestStudyColumnEndToEnd(t *testing.T) {
	rows, want := dataset.TimesSquarePhones()
	sess := clx.NewSession(rows)
	target := clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")
	tr, err := sess.Label(target)
	if err != nil {
		t.Fatal(err)
	}
	out, flagged := tr.Run()
	// Plain ten-digit rows need a token split, which is outside UniFi's
	// token-granularity language: they are flagged, not transformed.
	unsolvable := func(s string) bool {
		return s == "N/A" || clx.PatternOf(s).String() == "<D>10"
	}
	wrong := 0
	for i := range out {
		if out[i] != want[i] && !unsolvable(rows[i]) {
			wrong++
		}
	}
	if wrong != 0 {
		t.Errorf("%d solvable rows wrong after transformation", wrong)
	}
	// Flagged rows are exactly the noise + plain records — flag, don't
	// touch (§6.1).
	for _, i := range flagged {
		if !unsolvable(rows[i]) {
			t.Errorf("row %d (%q) flagged; only noise/plain should be", i, rows[i])
		}
		if out[i] != rows[i] {
			t.Errorf("flagged row %d mutated", i)
		}
	}
	// Post-transform the column collapses to target + N/A + plain digits.
	post := clx.NewSession(out)
	if n := len(post.Clusters()); n != 3 {
		t.Errorf("post-transform clusters = %d, want 3 (target, N/A, <D>10)", n)
	}
	// The explanation names every transformable messy format once.
	if ops := tr.Replaces(); len(ops) != 5 {
		t.Errorf("replace ops = %d, want 5 (one per transformable format)", len(ops))
	}
}

// The Explain output round-trips through ParseNLPattern: every source
// regexp shown to the user parses back into a pattern matching the same
// rows.
func TestExplainRoundTrips(t *testing.T) {
	rows, _ := dataset.Phones(40, 5, 3)
	sess := clx.NewSession(rows)
	tr, err := sess.Label(clx.MustParsePattern("<D>3'-'<D>3'-'<D>4"))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tr.Replaces() {
		nl := op.Source.NLRegex()
		p, err := clx.ParseNLPattern(nl)
		if err != nil {
			t.Errorf("regexp %q does not parse back: %v", nl, err)
			continue
		}
		matched := 0
		for _, r := range rows {
			if p.Matches(r) {
				matched++
			}
		}
		if matched == 0 {
			t.Errorf("round-tripped pattern %s matches no input row", p)
		}
	}
}

// mustTask fetches a benchmark task for cross-file test helpers.
func mustTask(t *testing.T, name string) benchsuite.Task {
	t.Helper()
	task, ok := benchsuite.ByName(name)
	if !ok {
		t.Fatalf("task %s missing", name)
	}
	return task
}

// clxTargets derives the target patterns a user would label for a task's
// desired outputs.
func clxTargets(want []string) []clx.Pattern {
	return simuser.SelectTargets(nil, want)
}
