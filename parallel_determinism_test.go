// Determinism of the parallel pipeline: for every task of the 47-task
// benchmark suite and every worker count in {1, 2, 4, 8}, the full
// profile → synthesize → transform pipeline must produce output
// byte-identical to the serial (Workers=1) baseline — cluster order and
// hierarchy levels, plan ranking per source, transformed rows, and
// clean/unmatched/flagged index lists. This is the contract that lets
// Workers default to auto without perturbing anything the user verifies.
package clx_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	clx "clx"
	"clx/internal/benchsuite"
	"clx/internal/simuser"
	"clx/internal/stream"
)

// pipelineFingerprint renders everything user-visible about one session
// run — any parallel/serial divergence shows up as a text diff.
func pipelineFingerprint(inputs []string, targets []clx.Pattern, workers int) string {
	opts := clx.DefaultOptions()
	opts.Workers = workers
	sess := clx.NewSession(inputs, opts)

	var b strings.Builder
	b.WriteString("clusters:\n")
	for _, c := range sess.Clusters() {
		fmt.Fprintf(&b, "  %s count=%d sample=%q rows=%v\n", c.Pattern, c.Count, c.Sample, c.Rows)
	}
	for l := 0; l < sess.Levels(); l++ {
		fmt.Fprintf(&b, "level %d:\n", l)
		for _, c := range sess.Level(l) {
			fmt.Fprintf(&b, "  %s count=%d\n", c.Pattern, c.Count)
		}
	}
	for _, target := range targets {
		fmt.Fprintf(&b, "target %s\n", target)
		tr, err := sess.Label(target)
		if err != nil {
			fmt.Fprintf(&b, "  label error: %v\n", err)
			continue
		}
		b.WriteString(tr.Explain())
		for i := range tr.Sources() {
			fmt.Fprintf(&b, "  alternatives[%d]:\n", i)
			for _, alt := range tr.Alternatives(i) {
				fmt.Fprintf(&b, "    %s -> %q\n", alt.NLRegex(), alt.Replacement)
			}
		}
		out, flagged := tr.Run()
		fmt.Fprintf(&b, "  out=%q\n  flagged=%v clean=%v unmatched=%v\n",
			out, flagged, tr.Clean(), tr.Unmatched())
	}
	return b.String()
}

func TestParallelPipelineDeterminism(t *testing.T) {
	tasks := benchsuite.Tasks()
	if len(tasks) < 47 {
		t.Fatalf("benchmark suite has %d tasks, want >= 47", len(tasks))
	}
	for _, task := range tasks {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			t.Parallel()
			targets := simuser.SelectTargets(task.Inputs, task.Outputs)
			serial := pipelineFingerprint(task.Inputs, targets, 1)
			for _, w := range []int{2, 4, 8} {
				got := pipelineFingerprint(task.Inputs, targets, w)
				if got != serial {
					t.Fatalf("workers=%d diverges from serial:\n%s", w, firstDiff(serial, got))
				}
			}
		})
	}
}

// TestCountedPathDeterminism stresses the counted-cluster profile path
// specifically: a dup-heavy column (every distinct value repeated many
// times) mixed with empties and multi-byte unicode rows, the shapes where
// value deduplication, count weighting, and literal-run tokenization all
// carry weight. The fingerprint must be byte-identical across worker
// counts, with per-row indices intact.
func TestCountedPathDeterminism(t *testing.T) {
	base := []string{
		"(734) 645-8397", "734-645-8397", "CPT-00350", "N/A", "",
		"café 12", "Dr. Eran Yahav", "日本語123", "\xff\xfe", "   ",
	}
	var inputs []string
	for i := 0; i < 40; i++ { // 400 rows, 10 distinct values
		inputs = append(inputs, base...)
	}
	targets := []clx.Pattern{clx.MustParsePattern("<D>3'-'<D>3'-'<D>4")}
	serial := pipelineFingerprint(inputs, targets, 1)
	if !strings.Contains(serial, "rows=[0 10 20") {
		t.Fatalf("fingerprint lost per-row indices:\n%s", serial)
	}
	for _, w := range []int{2, 4, 8} {
		got := pipelineFingerprint(inputs, targets, w)
		if got != serial {
			t.Fatalf("workers=%d diverges from serial:\n%s", w, firstDiff(serial, got))
		}
	}
}

// TestStreamDifferentialBenchSuite is the differential layer over the
// 47-task suite: for every task, the streaming bulk-apply engine must
// produce output byte-identical to the in-memory SavedProgram.Transform —
// same bytes, same order, same flagged indices — for chunk sizes spanning
// one-row chunks through chunks larger than any task column, and worker
// counts spanning serial through oversubscribed. Chunk boundaries and
// fan-out must be invisible.
func TestStreamDifferentialBenchSuite(t *testing.T) {
	tasks := benchsuite.Tasks()
	if len(tasks) < 47 {
		t.Fatalf("benchmark suite has %d tasks, want >= 47", len(tasks))
	}
	programs := 0
	for _, task := range tasks {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			// A task contributes once any selected target labels and
			// exports; tasks where no target labels are the suite's known
			// expressivity failures, not streaming bugs.
			var sp *clx.SavedProgram
			for _, target := range simuser.SelectTargets(task.Inputs, task.Outputs) {
				tr, err := clx.NewSession(task.Inputs).Label(target)
				if err != nil {
					continue
				}
				raw, err := tr.Export()
				if err != nil {
					continue
				}
				if sp, err = clx.LoadProgram(raw); err != nil {
					t.Fatalf("exported program does not load: %v", err)
				}
				break
			}
			if sp == nil {
				t.Skip("no selected target labels this task")
			}
			wantOut, wantFlagged := sp.Transform(task.Inputs)
			var want bytes.Buffer
			for _, v := range wantOut {
				want.WriteString(v)
				want.WriteByte('\n')
			}
			for _, chunk := range []int{1, 7, 1024} {
				for _, workers := range []int{1, 4, 8} {
					var got bytes.Buffer
					var flagged []int
					st, err := stream.Run(sp, stream.NewSliceReader(task.Inputs),
						stream.LineEncoder{}, &got, stream.Options{
							ChunkSize: chunk, Workers: workers,
							OnFlagged: func(row int) { flagged = append(flagged, row) }})
					if err != nil {
						t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
					}
					if got.String() != want.String() {
						t.Fatalf("chunk=%d workers=%d: stream output diverges:\n%s",
							chunk, workers, firstDiff(want.String(), got.String()))
					}
					if !equalIndices(flagged, wantFlagged) {
						t.Fatalf("chunk=%d workers=%d: flagged %v, want %v",
							chunk, workers, flagged, wantFlagged)
					}
					if st.Rows != int64(len(task.Inputs)) {
						t.Fatalf("chunk=%d workers=%d: stats count %d rows, want %d",
							chunk, workers, st.Rows, len(task.Inputs))
					}
				}
			}
			programs++
		})
	}
	if programs < 40 {
		t.Fatalf("only %d/%d tasks produced a program; the differential layer lost coverage", programs, len(tasks))
	}
}

func equalIndices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstDiff locates the first differing line of two multi-line dumps.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: serial %d lines, parallel %d lines", len(al), len(bl))
}
